// Command dmsd serves fairDMS — the FAIR Data Service and the FAIR Model
// Service — over HTTP/JSON, the networked deployment of the paper's Fig. 5
// architecture: training jobs at the HPC endpoint and monitors at the
// facility call one daemon for PDF-matched labeled data and
// closest-checkpoint recommendations.
//
// The daemon wires a docstore backend (in-process, or a remote dstore via
// -store), a fairds.Service with a deterministic lazily-initialized
// embedder (input width is learned from the first ingested batch, and the
// clustering module is bootstrap-fitted on it), and a fairms.Zoo that can
// be snapshot-loaded at startup and is snapshot-saved at exit.
//
// At startup the daemon warms the in-process vector index from the store's
// persisted embeddings (no embedder pass needed), so a daemon adopting a
// pre-populated dstore serves nearest-label queries from memory from the
// first request instead of scanning the store over the wire until a
// reindex.
//
// The daemon also embeds the server-side rapid-train subsystem
// (internal/trainer): /v1/train jobs warm-start from the zoo's
// recommended checkpoint and register their result back with lineage
// metadata, running on a bounded worker pool (-train-workers) with a
// bounded queue (-train-queue; saturation sheds with 429).
//
// With -wal-dir the in-process store is opened WAL-durable
// (docstore.OpenDurable): every write is logged before it is applied,
// startup replays the log past the latest snapshot, a background loop
// compacts the log into the snapshot, and the wal counters surface on
// /statsz and /metricsz. -fsync picks the durability/latency trade
// (always, interval, off).
//
// Usage:
//
//	dmsd [-addr host:port] [-store addr] [-collection name] [-zoo path]
//	     [-wal-dir path] [-fsync always|interval|off] [-compact-interval 1m]
//	     [-k 8] [-embed-dim 8] [-embed-hidden 64] [-embed-scale 1]
//	     [-seed 1] [-max-inflight 64] [-cache 128] [-max-batch 8192]
//	     [-vecindex flat|ivf|off] [-nprobe 4]
//	     [-train-workers 2] [-train-queue 8]
//	     [-slow-threshold 250ms] [-slow-log 64] [-pprof] [-v]
//	     [-log-level info]
package main

import (
	"context"
	"errors"
	"flag"
	"io/fs"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"fairdms/internal/dmsapi"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/fairds"
	"fairdms/internal/fairms"
	"fairdms/internal/obs"
	"fairdms/internal/tensor"
	"fairdms/internal/vecindex"
	"fairdms/internal/wal"
)

// logger is the daemon's leveled key=value event log, configured by
// -log-level in main before anything can write to it. Startup failures
// still use log.Fatalf (they predate the flag parse or must exit).
var logger *obs.Logger

// lazyEmbedder defers constructing the embedding model until the first
// batch arrives, because the input width is a property of the data (e.g.
// 81 for 9×9 Bragg patches) and a daemon starts before seeing any. The
// inner model is seeded deterministically, so two daemons configured alike
// embed alike — which keeps stored embeddings comparable across restarts
// as long as the store snapshot and the seed travel together.
type lazyEmbedder struct {
	seed        int64
	hidden, dim int
	scale       float64

	mu    sync.Mutex
	inner embed.Embedder
}

func (l *lazyEmbedder) Dim() int { return l.dim }

func (l *lazyEmbedder) Embed(x *tensor.Tensor) *tensor.Tensor {
	l.mu.Lock()
	if l.inner == nil {
		rng := rand.New(rand.NewSource(l.seed))
		l.inner = embed.Scaled{
			E:      embed.NewAutoencoder(rng, x.Dim(1), l.hidden, l.dim),
			Factor: l.scale,
		}
		log.Printf("dmsd: embedder initialized for %d-feature inputs (dim %d)", x.Dim(1), l.dim)
	}
	e := l.inner
	l.mu.Unlock()
	return e.Embed(x)
}

// walStatsWire converts the store's durability counters to their wire form.
func walStatsWire(ws docstore.WalStats) dmsapi.WalStats {
	return dmsapi.WalStats{
		Enabled:          ws.Enabled,
		Policy:           ws.Policy,
		Appends:          ws.Appends,
		AppendedBytes:    ws.AppendedBytes,
		Syncs:            ws.Syncs,
		Replays:          ws.Replays,
		ReplayedRecords:  ws.ReplayedRecords,
		ReplayedTxns:     ws.ReplayedTxns,
		ReplaySkippedOps: ws.ReplaySkippedOps,
		TornTruncations:  ws.TornTruncations,
		CorruptRecords:   ws.CorruptRecords,
		Rotations:        ws.Rotations,
		Compactions:      ws.Compactions,
		SegmentsRemoved:  ws.SegmentsRemoved,
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7718", "listen address")
	storeAddr := flag.String("store", "", "external dstore address (empty = in-process store)")
	collection := flag.String("collection", "fairds", "docstore collection for labeled samples")
	nodeID := flag.String("node-id", "", "shard identity in a dmsrouter cluster; suffixes the collection so document IDs are namespaced per shard")
	walDir := flag.String("wal-dir", "", "directory for WAL-durable in-process store (empty = memory only; incompatible with -store)")
	fsyncPolicy := flag.String("fsync", "interval", "WAL fsync policy: always (fsync per commit), interval (background fsync), off")
	compactInterval := flag.Duration("compact-interval", time.Minute, "background WAL-into-snapshot compaction period (0 = only at exit)")
	zooPath := flag.String("zoo", "", "zoo snapshot to load at start and save at exit")
	k := flag.Int("k", 8, "cluster count for the bootstrap fit on the first ingest")
	embedDim := flag.Int("embed-dim", 8, "embedding dimensionality")
	embedHidden := flag.Int("embed-hidden", 64, "embedder hidden width")
	embedScale := flag.Float64("embed-scale", 1, "input scale factor (e.g. 1/255 for 8-bit images)")
	seed := flag.Int64("seed", 1, "determinism seed for embedder init and sampling")
	maxInflight := flag.Int("max-inflight", 64, "in-flight request bound before 429 shedding (<0 = unlimited)")
	cacheSize := flag.Int("cache", 128, "LRU capacity for hot recommend/PDF results (<0 = coalescing only)")
	maxBatch := flag.Int("max-batch", 8192, "documents per ingest:batch request before 413 (<0 = unlimited)")
	trainWorkers := flag.Int("train-workers", 2, "parallel server-side training jobs (0 disables /v1/train)")
	trainQueue := flag.Int("train-queue", 8, "queued training jobs before submissions shed with 429")
	slowThreshold := flag.Duration("slow-threshold", 250*time.Millisecond, "requests slower than this keep their span tree at /debug/slowz (0 disables)")
	slowLog := flag.Int("slow-log", 64, "slow-request ring size")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	indexKind := flag.String("vecindex", "flat", "nearest-label vector index: flat (exact), ivf (approximate, sublinear), off (store scans)")
	nprobe := flag.Int("nprobe", 4, "IVF sublists probed per query (higher = more accurate, slower)")
	verbose := flag.Bool("v", false, "log request failures")
	logLevel := flag.String("log-level", "info", "minimum log level for daemon events: debug, info, warn, error")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("dmsd: %v", err)
	}
	logger = obs.NewLogger(os.Stderr, level).With("component", "dmsd")
	if *nodeID != "" {
		logger = logger.With("node", *nodeID)
	}

	if *nodeID != "" {
		// Document IDs are sequential within a collection; a per-shard
		// collection suffix keeps them globally unique across a cluster.
		*collection = *collection + "-" + *nodeID
	}

	var backend fairds.DataStore
	var storeClient *docstore.Client
	var durable *docstore.DurableStore
	switch {
	case *storeAddr != "":
		if *walDir != "" {
			log.Fatalf("dmsd: -wal-dir applies to the in-process store; the external store at %s owns its own durability", *storeAddr)
		}
		client, err := docstore.Dial(*storeAddr, 8)
		if err != nil {
			log.Fatalf("dmsd: dialing store: %v", err)
		}
		defer client.Close()
		storeClient = client
		backend = fairds.RemoteCollection{Client: client, Name: *collection}
		logger.Info("using external store", "store", *storeAddr, "collection", *collection)
	case *walDir != "":
		policy, err := wal.ParsePolicy(*fsyncPolicy)
		if err != nil {
			log.Fatalf("dmsd: %v", err)
		}
		durable, err = docstore.OpenDurable(docstore.DurableOptions{Dir: *walDir, Policy: policy})
		if err != nil {
			log.Fatalf("dmsd: opening durable store: %v", err)
		}
		ws := durable.WalStats()
		logger.Info("durable store opened", "dir", *walDir, "fsync", ws.Policy,
			"replayed_txns", ws.ReplayedTxns, "torn", ws.TornTruncations, "corrupt", ws.CorruptRecords)
		backend = durable.Collection(*collection)
	default:
		backend = docstore.NewStore().Collection(*collection)
	}

	dsCfg := fairds.Config{Seed: *seed}
	switch *indexKind {
	case "flat":
		dsCfg.Index = vecindex.NewFlat()
	case "ivf":
		dsCfg.Index = vecindex.NewIVF(vecindex.IVFConfig{NProbe: *nprobe, Seed: *seed})
	case "off":
		dsCfg.DisableIndex = true
	default:
		log.Fatalf("dmsd: unknown -vecindex %q (want flat, ivf, or off)", *indexKind)
	}
	ds, err := fairds.New(&lazyEmbedder{
		seed: *seed, hidden: *embedHidden, dim: *embedDim, scale: *embedScale,
	}, backend, dsCfg)
	if err != nil {
		log.Fatalf("dmsd: building data service: %v", err)
	}
	if !dsCfg.DisableIndex {
		// Warm from the store's persisted embeddings: a daemon adopting a
		// pre-populated store answers nearest-label queries from memory
		// immediately. Non-fatal — a failed warm just leaves the store-scan
		// fallback in place.
		if n, err := ds.WarmIndex(); err != nil {
			logger.Warn("vector index warm failed; store-scan fallback stays active", "err", err)
		} else if n > 0 || ds.CorruptEmbeddings() > 0 {
			logger.Info("vector index warmed",
				"index", *indexKind, "embeddings", n, "corrupt_skipped", ds.CorruptEmbeddings())
		}
	}

	zoo := fairms.NewZoo()
	if *zooPath != "" {
		// Only a missing file means "fresh start". Any other stat failure
		// must abort: starting empty and then saving at exit would
		// atomically replace a real snapshot we merely failed to see.
		switch _, err := os.Stat(*zooPath); {
		case err == nil:
			zoo, err = fairms.LoadZoo(*zooPath)
			if err != nil {
				log.Fatalf("dmsd: loading zoo snapshot: %v", err)
			}
			logger.Info("zoo snapshot loaded", "path", *zooPath, "models", zoo.Len())
		case errors.Is(err, fs.ErrNotExist):
			logger.Info("no zoo snapshot, starting empty", "path", *zooPath)
		default:
			log.Fatalf("dmsd: checking zoo snapshot: %v", err)
		}
	}

	var reqLogger *log.Logger
	if *verbose {
		reqLogger = log.Default()
	}
	cfg := dmsapi.ServerConfig{
		DS: ds, Zoo: zoo,
		MaxInFlight:   *maxInflight,
		CacheSize:     *cacheSize,
		MaxBatchDocs:  *maxBatch,
		BootstrapK:    *k,
		TrainWorkers:  *trainWorkers,
		TrainQueue:    *trainQueue,
		SlowThreshold: *slowThreshold,
		SlowLogSize:   *slowLog,
		EnablePprof:   *enablePprof,
		Logger:        reqLogger,
	}
	if durable != nil {
		cfg.WalStats = func() dmsapi.WalStats { return walStatsWire(durable.WalStats()) }
	}
	srv, err := dmsapi.NewServer(cfg)
	if err != nil {
		log.Fatalf("dmsd: %v", err)
	}
	if storeClient != nil {
		// Surface store RPC traffic on the daemon's /metricsz: counters and
		// a latency summary keyed by wire op, fed by the docstore client's
		// round-trip hook.
		reg := srv.Registry()
		rpcs := reg.CounterVec("dms_store_rpcs_total", "docstore round trips by wire op", "op")
		rpcErrs := reg.CounterVec("dms_store_rpc_errors_total", "failed docstore round trips by wire op", "op")
		rpcLat := reg.HistogramVec("dms_store_rpc_seconds", "docstore round-trip latency by wire op", "op")
		storeClient.Instrument(func(op string, d time.Duration, err error) {
			rpcs.With(op).Inc()
			if err != nil {
				rpcErrs.With(op).Inc()
			}
			rpcLat.With(op).Record(d)
		})
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("dmsd: listen: %v", err)
	}
	logger.Info("serving", "addr", bound, "max_inflight", *maxInflight, "cache", *cacheSize)

	stopCompact := make(chan struct{})
	var compactWG sync.WaitGroup
	if durable != nil && *compactInterval > 0 {
		compactWG.Add(1)
		go func() {
			defer compactWG.Done()
			t := time.NewTicker(*compactInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := durable.Compact(); err != nil {
						logger.Error("wal compaction failed", "err", err)
					}
				case <-stopCompact:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down", "requests", srv.Requests(), "shed", srv.Shed())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("shutdown failed", "err", err)
	}
	if durable != nil {
		close(stopCompact)
		compactWG.Wait()
		// Compact at exit so the next startup loads one snapshot instead of
		// replaying the session's whole log; Close still fsyncs whatever the
		// compaction could not fold in.
		if err := durable.Compact(); err != nil {
			logger.Error("final wal compaction failed", "err", err)
		}
		if err := durable.Close(); err != nil {
			logger.Error("closing durable store failed", "err", err)
		}
	}
	if *zooPath != "" {
		if err := zoo.Save(*zooPath); err != nil {
			log.Fatalf("dmsd: saving zoo snapshot: %v", err)
		}
		logger.Info("zoo snapshot saved", "path", *zooPath, "models", zoo.Len())
	}
}
