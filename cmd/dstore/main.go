// Command dstore serves a fairDMS document store over TCP — the deployment
// unit that plays MongoDB's role in the paper's architecture. Two
// persistence modes:
//
//   - -snapshot: load a snapshot at startup, save one on shutdown
//     (SIGINT/SIGTERM), and with -snapshot-interval also snapshot
//     periodically, so a crash loses at most one interval of writes.
//   - -wal-dir: WAL-durable mode (docstore.OpenDurable). Every write is
//     logged before it is applied, startup replays the log past the latest
//     snapshot, and periodic background compaction folds the log into the
//     snapshot — so a crash loses at most the fsync window (-fsync) instead
//     of a snapshot interval, and there is no stop-the-world save.
//
// The two modes are mutually exclusive: WAL mode owns its snapshot inside
// -wal-dir.
//
// Usage:
//
//	dstore [-addr host:port] [-snapshot path] [-snapshot-interval 30s]
//	       [-wal-dir path] [-fsync always|interval|off] [-compact-interval 1m]
//	       [-latency 150us] [-v]
package main

import (
	"errors"
	"flag"
	"io/fs"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fairdms/internal/docstore"
	"fairdms/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7717", "listen address")
	snapshot := flag.String("snapshot", "", "snapshot file to load at start and save at exit")
	interval := flag.Duration("snapshot-interval", 0, "also snapshot periodically (0 = only at exit; needs -snapshot)")
	walDir := flag.String("wal-dir", "", "WAL-durable mode: directory for log segments and snapshot (incompatible with -snapshot)")
	fsyncPolicy := flag.String("fsync", "interval", "WAL fsync policy: always (fsync per commit), interval (background fsync), off")
	compactInterval := flag.Duration("compact-interval", time.Minute, "background WAL-into-snapshot compaction period (0 = only at exit)")
	latency := flag.Duration("latency", 0, "artificial per-request latency (emulates a remote link)")
	verbose := flag.Bool("v", false, "log request errors")
	flag.Parse()

	if *walDir != "" && *snapshot != "" {
		log.Fatal("dstore: -wal-dir and -snapshot are mutually exclusive (WAL mode keeps its snapshot inside -wal-dir)")
	}
	if *interval > 0 && *snapshot == "" {
		log.Fatal("dstore: -snapshot-interval needs -snapshot")
	}

	store := docstore.NewStore()
	var durable *docstore.DurableStore
	if *walDir != "" {
		policy, err := wal.ParsePolicy(*fsyncPolicy)
		if err != nil {
			log.Fatalf("dstore: %v", err)
		}
		durable, err = docstore.OpenDurable(docstore.DurableOptions{Dir: *walDir, Policy: policy})
		if err != nil {
			log.Fatalf("dstore: opening durable store: %v", err)
		}
		store = durable.Store
		ws := durable.WalStats()
		log.Printf("dstore: durable store in %s (fsync %s): replayed %d txns (%d torn, %d corrupt tails truncated)",
			*walDir, ws.Policy, ws.ReplayedTxns, ws.TornTruncations, ws.CorruptRecords)
	} else if *snapshot != "" {
		// Only a missing file means "fresh start": any other stat failure
		// must abort, or the exit-time save would replace a real snapshot
		// we merely failed to see.
		switch _, err := os.Stat(*snapshot); {
		case err == nil:
			loaded, err := docstore.Load(*snapshot)
			if err != nil {
				log.Fatalf("dstore: loading snapshot: %v", err)
			}
			store = loaded
			log.Printf("dstore: loaded snapshot %s (%d collections)", *snapshot, len(store.Names()))
		case errors.Is(err, fs.ErrNotExist):
			log.Printf("dstore: no snapshot at %s, starting empty", *snapshot)
		default:
			log.Fatalf("dstore: checking snapshot: %v", err)
		}
	}

	var logger *log.Logger
	if *verbose {
		logger = log.Default()
	}
	srv := docstore.NewServer(store, docstore.ServerConfig{Latency: *latency, Logger: logger})
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("dstore: listen: %v", err)
	}
	log.Printf("dstore: serving on %s (latency %v)", bound, *latency)

	// Background persistence loop. In snapshot mode this is the periodic
	// Store.Save (tmp+rename atomic; Save also serializes internally, so
	// even a racing shutdown save cannot corrupt the file — the stop/stopped
	// handshake below just guarantees the final save runs last and wins).
	// In WAL mode it is the compaction loop, which replaces stop-the-world
	// interval saves: writers keep committing while the snapshot is cut.
	stop := make(chan struct{})
	stopped := make(chan struct{})
	switch {
	case durable != nil && *compactInterval > 0:
		go func() {
			defer close(stopped)
			ticker := time.NewTicker(*compactInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					start := time.Now()
					if err := durable.Compact(); err != nil {
						log.Printf("dstore: wal compaction: %v", err)
						continue
					}
					log.Printf("dstore: wal compacted into snapshot in %v",
						time.Since(start).Round(time.Millisecond))
				case <-stop:
					return
				}
			}
		}()
	case durable == nil && *interval > 0:
		go func() {
			defer close(stopped)
			ticker := time.NewTicker(*interval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					start := time.Now()
					if err := store.Save(*snapshot); err != nil {
						log.Printf("dstore: periodic snapshot: %v", err)
						continue
					}
					log.Printf("dstore: periodic snapshot saved to %s in %v",
						*snapshot, time.Since(start).Round(time.Millisecond))
				case <-stop:
					return
				}
			}
		}()
	default:
		close(stopped)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	close(stop)
	<-stopped
	log.Printf("dstore: shutting down after %d requests", srv.Requests())
	if err := srv.Close(); err != nil {
		log.Printf("dstore: close: %v", err)
	}
	switch {
	case durable != nil:
		// Compact so the next startup loads one snapshot instead of replaying
		// the whole session's log; Close still fsyncs anything left over.
		start := time.Now()
		if err := durable.Compact(); err != nil {
			log.Printf("dstore: final wal compaction: %v", err)
		}
		if err := durable.Close(); err != nil {
			log.Fatalf("dstore: closing durable store: %v", err)
		}
		log.Printf("dstore: wal compacted and closed in %v", time.Since(start).Round(time.Millisecond))
	case *snapshot != "":
		start := time.Now()
		if err := store.Save(*snapshot); err != nil {
			log.Fatalf("dstore: saving snapshot: %v", err)
		}
		log.Printf("dstore: snapshot saved to %s in %v", *snapshot, time.Since(start).Round(time.Millisecond))
	}
}
