// Command dstore serves a fairDMS document store over TCP — the deployment
// unit that plays MongoDB's role in the paper's architecture. It optionally
// loads a snapshot at startup and saves one on shutdown (SIGINT/SIGTERM).
//
// Usage:
//
//	dstore [-addr host:port] [-snapshot path] [-latency 150us] [-v]
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fairdms/internal/docstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7717", "listen address")
	snapshot := flag.String("snapshot", "", "snapshot file to load at start and save at exit")
	latency := flag.Duration("latency", 0, "artificial per-request latency (emulates a remote link)")
	verbose := flag.Bool("v", false, "log request errors")
	flag.Parse()

	store := docstore.NewStore()
	if *snapshot != "" {
		if _, err := os.Stat(*snapshot); err == nil {
			loaded, err := docstore.Load(*snapshot)
			if err != nil {
				log.Fatalf("dstore: loading snapshot: %v", err)
			}
			store = loaded
			log.Printf("dstore: loaded snapshot %s (%d collections)", *snapshot, len(store.Names()))
		}
	}

	var logger *log.Logger
	if *verbose {
		logger = log.Default()
	}
	srv := docstore.NewServer(store, docstore.ServerConfig{Latency: *latency, Logger: logger})
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("dstore: listen: %v", err)
	}
	log.Printf("dstore: serving on %s (latency %v)", bound, *latency)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("dstore: shutting down after %d requests", srv.Requests())
	if err := srv.Close(); err != nil {
		log.Printf("dstore: close: %v", err)
	}
	if *snapshot != "" {
		start := time.Now()
		if err := store.Save(*snapshot); err != nil {
			log.Fatalf("dstore: saving snapshot: %v", err)
		}
		log.Printf("dstore: snapshot saved to %s in %v", *snapshot, time.Since(start).Round(time.Millisecond))
	}
}
