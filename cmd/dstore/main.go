// Command dstore serves a fairDMS document store over TCP — the deployment
// unit that plays MongoDB's role in the paper's architecture. It optionally
// loads a snapshot at startup, saves one on shutdown (SIGINT/SIGTERM), and
// with -snapshot-interval also snapshots periodically in the background so
// a crash loses at most one interval of writes instead of everything since
// startup.
//
// Usage:
//
//	dstore [-addr host:port] [-snapshot path] [-snapshot-interval 30s]
//	       [-latency 150us] [-v]
package main

import (
	"errors"
	"flag"
	"io/fs"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fairdms/internal/docstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7717", "listen address")
	snapshot := flag.String("snapshot", "", "snapshot file to load at start and save at exit")
	interval := flag.Duration("snapshot-interval", 0, "also snapshot periodically (0 = only at exit; needs -snapshot)")
	latency := flag.Duration("latency", 0, "artificial per-request latency (emulates a remote link)")
	verbose := flag.Bool("v", false, "log request errors")
	flag.Parse()

	store := docstore.NewStore()
	if *snapshot != "" {
		// Only a missing file means "fresh start": any other stat failure
		// must abort, or the exit-time save would replace a real snapshot
		// we merely failed to see.
		switch _, err := os.Stat(*snapshot); {
		case err == nil:
			loaded, err := docstore.Load(*snapshot)
			if err != nil {
				log.Fatalf("dstore: loading snapshot: %v", err)
			}
			store = loaded
			log.Printf("dstore: loaded snapshot %s (%d collections)", *snapshot, len(store.Names()))
		case errors.Is(err, fs.ErrNotExist):
			log.Printf("dstore: no snapshot at %s, starting empty", *snapshot)
		default:
			log.Fatalf("dstore: checking snapshot: %v", err)
		}
	}
	if *interval > 0 && *snapshot == "" {
		log.Fatal("dstore: -snapshot-interval needs -snapshot")
	}

	var logger *log.Logger
	if *verbose {
		logger = log.Default()
	}
	srv := docstore.NewServer(store, docstore.ServerConfig{Latency: *latency, Logger: logger})
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("dstore: listen: %v", err)
	}
	log.Printf("dstore: serving on %s (latency %v)", bound, *latency)

	// Background snapshotter: Store.Save writes tmp+rename atomically, so a
	// crash mid-snapshot leaves the previous one intact. stopped is closed
	// by the snapshot goroutine on exit so the final save below never runs
	// concurrently with a periodic one (two Saves would race on the .tmp
	// path).
	stop := make(chan struct{})
	stopped := make(chan struct{})
	if *interval > 0 {
		go func() {
			defer close(stopped)
			ticker := time.NewTicker(*interval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					start := time.Now()
					if err := store.Save(*snapshot); err != nil {
						log.Printf("dstore: periodic snapshot: %v", err)
						continue
					}
					log.Printf("dstore: periodic snapshot saved to %s in %v",
						*snapshot, time.Since(start).Round(time.Millisecond))
				case <-stop:
					return
				}
			}
		}()
	} else {
		close(stopped)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	close(stop)
	<-stopped
	log.Printf("dstore: shutting down after %d requests", srv.Requests())
	if err := srv.Close(); err != nil {
		log.Printf("dstore: close: %v", err)
	}
	if *snapshot != "" {
		start := time.Now()
		if err := store.Save(*snapshot); err != nil {
			log.Fatalf("dstore: saving snapshot: %v", err)
		}
		log.Printf("dstore: snapshot saved to %s in %v", *snapshot, time.Since(start).Round(time.Millisecond))
	}
}
