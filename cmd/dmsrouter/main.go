// Command dmsrouter is the scale-out routing tier for a dmsd cluster: a
// stateless HTTP front end that serves the same /v1 surface as a single
// dmsd while consistent-hashing documents across N shards, scattering
// queries to every shard with exact merges, and replicating model
// registrations cluster-wide (internal/dmscluster).
//
// Shards must run with the same -seed (replicated embedder and
// clustering models agree bit-for-bit, so scatter reductions are exact)
// and distinct -node-id values (per-shard document-ID namespaces). An
// unfitted cluster is bootstrapped by the first ingest: with -k > 0 the
// router fits every shard's clustering model on that same full batch.
//
// Membership is static with active health probing: a dead shard is
// ejected after -fail-after consecutive failures, ingest routes around
// it, reads merge the survivors (responses flagged "degraded"), and a
// recovered shard is re-admitted automatically. /statsz reports
// per-node health and the membership epoch; /metricsz serves the
// federated fleet exposition (every healthy shard's families relabeled
// with node=<addr> plus dms_fleet_* aggregates); /debug/tracez serves
// tail-retained span trees for slow, errored, and degraded requests; and
// -slo objectives surface as dms_slo_* burn-rate families.
//
// Usage:
//
//	dmsd -addr 127.0.0.1:7801 -node-id a -seed 1 &
//	dmsd -addr 127.0.0.1:7802 -node-id b -seed 1 &
//	dmsd -addr 127.0.0.1:7803 -node-id c -seed 1 &
//	dmsrouter -addr 127.0.0.1:7718 \
//	          -shards 127.0.0.1:7801,127.0.0.1:7802,127.0.0.1:7803 \
//	          -k 8 -seed 1 \
//	          -slo 'nearest:p99<50ms,err<1%' -trace-ring 256
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fairdms/internal/dmscluster"
	"fairdms/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7718", "listen address")
	shardsFlag := flag.String("shards", "", "comma-separated dmsd shard addresses, in ring order (required)")
	k := flag.Int("k", 8, "cluster count for the coordinated bootstrap fit on the first ingest (0 = shards must be pre-fitted)")
	seed := flag.Int64("seed", 1, "determinism seed for the lookup merge's sampling; must match the shards' -seed")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default 128)")
	probeInterval := flag.Duration("probe-interval", time.Second, "active health-probe cadence (negative disables; serving failures still eject)")
	failAfter := flag.Int("fail-after", 2, "consecutive failures before a shard is ejected")
	retries := flag.Int("retries", 1, "per-shard HTTP retry count")
	timeout := flag.Duration("timeout", 30*time.Second, "per-shard HTTP exchange timeout")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	sloSpec := flag.String("slo", "", "per-endpoint objectives, e.g. 'nearest:p99<5ms,err<0.1%;recommend:p95<20ms' (empty disables the SLO layer)")
	traceRing := flag.Int("trace-ring", 256, "tail-based trace retention ring size (0 disables /debug/tracez)")
	traceSlow := flag.Duration("trace-slow", 250*time.Millisecond, "retain any request slower than this, even when it succeeded (0 = only errored/degraded)")
	scrapeTimeout := flag.Duration("scrape-timeout", 2*time.Second, "per-request fleet metrics scrape budget for the federated /metricsz")
	flag.Parse()

	if *shardsFlag == "" {
		log.Fatal("dmsrouter: -shards is required")
	}
	var shards []string
	for _, s := range strings.Split(*shardsFlag, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shards = append(shards, s)
		}
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("dmsrouter: %v", err)
	}
	logger := obs.NewLogger(os.Stderr, level).With("component", "dmsrouter")

	slos, err := obs.ParseSLOs(*sloSpec)
	if err != nil {
		log.Fatalf("dmsrouter: -slo: %v", err)
	}

	cluster, err := dmscluster.New(dmscluster.Config{
		Shards:        shards,
		Vnodes:        *vnodes,
		BootstrapK:    *k,
		Seed:          *seed,
		ProbeInterval: *probeInterval,
		FailAfter:     *failAfter,
		Retries:       *retries,
		Timeout:       *timeout,
		Logger:        logger,
	})
	if err != nil {
		log.Fatalf("dmsrouter: %v", err)
	}
	cluster.Start()
	defer cluster.Close()

	router := dmscluster.NewRouter(cluster, dmscluster.RouterConfig{
		Logger:        logger,
		SLOs:          slos,
		TraceRing:     *traceRing,
		TraceSlow:     *traceSlow,
		ScrapeTimeout: *scrapeTimeout,
	})
	bound, err := router.Listen(*addr)
	if err != nil {
		log.Fatalf("dmsrouter: listen: %v", err)
	}
	logger.Info("serving", "addr", bound, "shards", len(shards), "slos", len(slos), "trace_ring", *traceRing)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	st := cluster.Stats()
	logger.Info("shutting down",
		"epoch", st.Epoch, "healthy", st.HealthyShards, "shards", st.Shards,
		"degraded_responses", st.DegradedResponses, "reroutes", st.Reroutes)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := router.Shutdown(ctx); err != nil {
		logger.Error("shutdown failed", "err", err)
	}
}
