// Command dmsrouter is the scale-out routing tier for a dmsd cluster: a
// stateless HTTP front end that serves the same /v1 surface as a single
// dmsd while consistent-hashing documents across N shards, scattering
// queries to every shard with exact merges, and replicating model
// registrations cluster-wide (internal/dmscluster).
//
// Shards must run with the same -seed (replicated embedder and
// clustering models agree bit-for-bit, so scatter reductions are exact)
// and distinct -node-id values (per-shard document-ID namespaces). An
// unfitted cluster is bootstrapped by the first ingest: with -k > 0 the
// router fits every shard's clustering model on that same full batch.
//
// Membership is static with active health probing: a dead shard is
// ejected after -fail-after consecutive failures, ingest routes around
// it, reads merge the survivors (responses flagged "degraded"), and a
// recovered shard is re-admitted automatically. /statsz reports
// per-node health and the membership epoch; /metricsz exports the same
// in Prometheus text form.
//
// Usage:
//
//	dmsd -addr 127.0.0.1:7801 -node-id a -seed 1 &
//	dmsd -addr 127.0.0.1:7802 -node-id b -seed 1 &
//	dmsd -addr 127.0.0.1:7803 -node-id c -seed 1 &
//	dmsrouter -addr 127.0.0.1:7718 \
//	          -shards 127.0.0.1:7801,127.0.0.1:7802,127.0.0.1:7803 \
//	          -k 8 -seed 1
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fairdms/internal/dmscluster"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7718", "listen address")
	shardsFlag := flag.String("shards", "", "comma-separated dmsd shard addresses, in ring order (required)")
	k := flag.Int("k", 8, "cluster count for the coordinated bootstrap fit on the first ingest (0 = shards must be pre-fitted)")
	seed := flag.Int64("seed", 1, "determinism seed for the lookup merge's sampling; must match the shards' -seed")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default 128)")
	probeInterval := flag.Duration("probe-interval", time.Second, "active health-probe cadence (negative disables; serving failures still eject)")
	failAfter := flag.Int("fail-after", 2, "consecutive failures before a shard is ejected")
	retries := flag.Int("retries", 1, "per-shard HTTP retry count")
	timeout := flag.Duration("timeout", 30*time.Second, "per-shard HTTP exchange timeout")
	verbose := flag.Bool("v", false, "log request failures (membership transitions always log)")
	flag.Parse()

	if *shardsFlag == "" {
		log.Fatal("dmsrouter: -shards is required")
	}
	var shards []string
	for _, s := range strings.Split(*shardsFlag, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shards = append(shards, s)
		}
	}

	cluster, err := dmscluster.New(dmscluster.Config{
		Shards:        shards,
		Vnodes:        *vnodes,
		BootstrapK:    *k,
		Seed:          *seed,
		ProbeInterval: *probeInterval,
		FailAfter:     *failAfter,
		Retries:       *retries,
		Timeout:       *timeout,
		Logger:        log.Default(),
	})
	if err != nil {
		log.Fatalf("dmsrouter: %v", err)
	}
	cluster.Start()
	defer cluster.Close()

	var reqLogger *log.Logger
	if *verbose {
		reqLogger = log.Default()
	}
	router := dmscluster.NewRouter(cluster, reqLogger)
	bound, err := router.Listen(*addr)
	if err != nil {
		log.Fatalf("dmsrouter: listen: %v", err)
	}
	log.Printf("dmsrouter: serving on http://%s over %d shards", bound, len(shards))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	st := cluster.Stats()
	log.Printf("dmsrouter: shutting down (epoch %d, %d/%d shards healthy, %d degraded responses, %d reroutes)",
		st.Epoch, st.HealthyShards, st.Shards, st.DegradedResponses, st.Reroutes)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := router.Shutdown(ctx); err != nil {
		log.Printf("dmsrouter: shutdown: %v", err)
	}
}
