// Command dmsbench load-tests a live dmsd daemon: a closed-loop worker
// pool drives a weighted mix of the serving-path operations (batch ingest,
// certainty, nearest-label, recommend, and end-to-end server-side train
// jobs), measures client-side latency histograms plus the server's /statsz
// delta, prints a human summary, and writes the machine-readable
// BENCH_dmsapi.json that records the serving tier's performance trajectory
// across PRs (see docs/BENCHMARKS.md).
//
// Usage:
//
//	dmsd -addr 127.0.0.1:7718 &
//	dmsbench -addr 127.0.0.1:7718 -workers 4 -duration 5s \
//	         -mix ingest_batch:1,certainty:2,nearest:4,recommend:4,train:1 \
//	         -out BENCH_dmsapi.json
//
// With -fail-on-errors the exit status is non-zero if any request failed —
// the contract the CI bench-smoke gate relies on. -slo-check evaluates
// the run against router-style objectives ("nearest:p99<50ms,err<1%")
// and fails the same way when one is breached.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"fairdms/internal/loadgen"
	"fairdms/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7718", "dmsd address to drive")
	workers := flag.Int("workers", 4, "closed-loop worker count")
	duration := flag.Duration("duration", 5*time.Second, "measured phase length")
	mixFlag := flag.String("mix", "ingest_batch:1,certainty:2,nearest:4,recommend:4",
		"operation mix as op:weight,... (ops: ingest_batch, certainty, nearest, recommend, train)")
	trainEpochs := flag.Int("train-epochs", 3, "epochs per train-op job")
	batch := flag.Int("batch", 64, "documents per ingest_batch request")
	query := flag.Int("query", 8, "samples per certainty/nearest request")
	patch := flag.Int("patch", 11, "square Bragg patch edge for generated samples")
	setupDocs := flag.Int("setup-docs", 256, "corpus documents seeded before measuring")
	seed := flag.Int64("seed", 1, "determinism seed for samples and scheduling")
	traceSample := flag.Int("trace-sample", 16, "trace every Nth request end to end, keeping the slowest span trees in the report (0 disables)")
	cluster := flag.Bool("cluster", false, "treat -addr as a dmsrouter: same workload, skip the single-daemon /statsz delta")
	out := flag.String("out", "BENCH_dmsapi.json", "report path (empty = don't write)")
	failOnErrors := flag.Bool("fail-on-errors", false, "exit non-zero if any request failed")
	sloCheck := flag.String("slo-check", "", "objectives to assert against the run, router -slo grammar (e.g. 'nearest:p99<50ms,err<1%'); breaches exit non-zero")
	quiet := flag.Bool("q", false, "suppress progress logging")
	flag.Parse()

	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		log.Fatalf("dmsbench: %v", err)
	}
	slos, err := obs.ParseSLOs(*sloCheck)
	if err != nil {
		log.Fatalf("dmsbench: -slo-check: %v", err)
	}
	cfg := loadgen.Config{
		Addr:        *addr,
		Workers:     *workers,
		Duration:    *duration,
		Mix:         mix,
		BatchSize:   *batch,
		QuerySize:   *query,
		Patch:       *patch,
		SetupDocs:   *setupDocs,
		TrainEpochs: *trainEpochs,
		Seed:        *seed,
		TraceSample: *traceSample,
		Cluster:     *cluster,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}

	rep, err := loadgen.Run(cfg)
	if err != nil {
		log.Fatalf("dmsbench: %v", err)
	}
	fmt.Print(rep.Summary())
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			log.Fatalf("dmsbench: writing %s: %v", *out, err)
		}
		if !*quiet {
			log.Printf("dmsbench: report written to %s", *out)
		}
	}
	var serverErrors int64
	if rep.Server != nil {
		serverErrors = rep.Server.Errors
	}
	if *failOnErrors && (rep.TotalErrors > 0 || serverErrors > 0) {
		log.Printf("dmsbench: FAIL — %d client errors, %d server endpoint errors",
			rep.TotalErrors, serverErrors)
		os.Exit(1)
	}
	if violations := loadgen.CheckSLOs(rep, slos); len(violations) > 0 {
		for _, v := range violations {
			log.Printf("dmsbench: SLO breach — %s", v)
		}
		os.Exit(1)
	} else if len(slos) > 0 && !*quiet {
		log.Printf("dmsbench: all %d SLO objectives held", len(slos))
	}
}
