// Command dmstop is a live terminal dashboard for a fairDMS fleet: it
// polls a dmsrouter's /statsz (and each shard's, via the router's
// membership list) and redraws one screen of per-shard health, RPS,
// latency quantiles, WAL lag, ejections, and SLO burn rates. Pointed at
// a single dmsd instead, it shows that daemon's endpoint table.
//
// Built on stdlib only — plain ANSI clear-and-redraw, no terminal
// library — so it runs anywhere the daemons do.
//
// Usage:
//
//	dmstop -addr 127.0.0.1:7718              # live, redraw every 2s
//	dmstop -addr 127.0.0.1:7718 -once        # one snapshot (scripts, CI)
//	dmstop -addr 127.0.0.1:7718 -interval 1s
//
// -once prints a single snapshot without clearing the screen and exits 0
// on success, making it usable as a smoke probe.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"fairdms/internal/dmsapi"
	"fairdms/internal/dmscluster"
)

// poller fetches and joins the fleet state, remembering the previous
// request counters so RPS is a true delta between polls.
type poller struct {
	addr     string
	client   *http.Client
	lastPoll time.Time
	lastReqs map[string]int64 // addr (or "" for the router) → requests at lastPoll
}

func newPoller(addr string, timeout time.Duration) *poller {
	return &poller{
		addr:     addr,
		client:   &http.Client{Timeout: timeout},
		lastReqs: make(map[string]int64),
	}
}

func (p *poller) getJSON(addr, path string, v any) error {
	resp, err := p.client.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s%s: %s", addr, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// rps converts a request counter into requests/second: delta against the
// previous poll when there is one, lifetime average otherwise.
func (p *poller) rps(key string, requests int64, uptime float64, now time.Time) float64 {
	prev, seen := p.lastReqs[key]
	p.lastReqs[key] = requests
	if seen && !p.lastPoll.IsZero() {
		if dt := now.Sub(p.lastPoll).Seconds(); dt > 0 {
			return float64(requests-prev) / dt
		}
	}
	if uptime > 0 {
		return float64(requests) / uptime
	}
	return 0
}

// walLag reports the shard's unsynced WAL appends (appends - syncs): a
// growing lag means the fsync loop is falling behind the write rate.
func walLag(ws *dmsapi.WalStats) string {
	if ws == nil || !ws.Enabled {
		return "-"
	}
	lag := ws.Appends - ws.Syncs
	if lag < 0 {
		lag = 0
	}
	return fmt.Sprintf("%d", lag)
}

func fmtMS(v float64) string { return fmt.Sprintf("%.2f", v) }

// render draws one frame into a builder; the caller decides whether to
// clear the screen first.
func render(b *strings.Builder, p *poller, now time.Time) error {
	// The router's RouterStats and a bare dmsd's Stats share field names
	// but differ in shape; probe for the cluster block to tell them apart.
	var probe struct {
		Cluster *dmscluster.ClusterStats `json:"cluster"`
	}
	raw := json.RawMessage{}
	if err := p.getJSON(p.addr, dmsapi.PathStats, &raw); err != nil {
		return err
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return err
	}
	if probe.Cluster == nil || probe.Cluster.Shards == 0 {
		var st dmsapi.Stats
		if err := json.Unmarshal(raw, &st); err != nil {
			return err
		}
		renderSingle(b, p, st, now)
		return nil
	}
	var st dmscluster.RouterStats
	if err := json.Unmarshal(raw, &st); err != nil {
		return err
	}
	renderCluster(b, p, st, now)
	return nil
}

func header(b *strings.Builder, kind, addr string, uptime float64, version, revision string) {
	rev := revision
	if len(rev) > 10 {
		rev = rev[:10]
	}
	fmt.Fprintf(b, "dmstop · %s %s · up %s · build %s@%s\n\n",
		kind, addr, (time.Duration(uptime) * time.Second).String(), version, rev)
}

func renderCluster(b *strings.Builder, p *poller, st dmscluster.RouterStats, now time.Time) {
	header(b, "router", p.addr, st.UptimeSeconds, st.Version, st.Revision)
	fmt.Fprintf(b, "cluster: epoch %d · %d/%d shards healthy · %d degraded responses · %d reroutes · router %.1f rps\n\n",
		st.Cluster.Epoch, st.Cluster.HealthyShards, st.Cluster.Shards,
		st.Cluster.DegradedResponses, st.Cluster.Reroutes,
		p.rps("", st.Requests, st.UptimeSeconds, now))

	// Shards: the router's health view joined with each live shard's own
	// /statsz for RPS, latency, and WAL lag.
	fmt.Fprintf(b, "%-22s %-8s %-6s %9s %9s %9s %9s %8s %5s\n",
		"SHARD", "HEALTH", "FAILS", "RPS", "P50 MS", "P99 MS", "P999 MS", "WAL LAG", "EJECT")
	for _, ns := range st.Cluster.Nodes {
		// Each shard row joins the router's health view with the shard's
		// own /statsz (skipped while the shard is ejected).
		var shardStats *dmsapi.Stats
		if ns.Healthy {
			var ss dmsapi.Stats
			if err := p.getJSON(ns.Addr, dmsapi.PathStats, &ss); err == nil {
				shardStats = &ss
			}
		}
		health := "ok"
		if !ns.Healthy {
			health = "DOWN"
		}
		rps, p50, p99, p999, lag := "-", "-", "-", "-", "-"
		if s := shardStats; s != nil {
			rps = fmt.Sprintf("%.1f", p.rps(ns.Addr, s.Requests, s.UptimeSeconds, now))
			var agg dmsapi.EndpointStats
			// Worst-case view across endpoints: the slowest quantile any
			// endpoint reports this poll.
			for _, ep := range s.Endpoints {
				agg.P50MS = max(agg.P50MS, ep.P50MS)
				agg.P99MS = max(agg.P99MS, ep.P99MS)
				agg.P999MS = max(agg.P999MS, ep.P999MS)
			}
			p50, p99, p999 = fmtMS(agg.P50MS), fmtMS(agg.P99MS), fmtMS(agg.P999MS)
			lag = walLag(s.Wal)
		}
		fmt.Fprintf(b, "%-22s %-8s %-6d %9s %9s %9s %9s %8s %5d\n",
			ns.Addr, health, ns.ConsecutiveFails, rps, p50, p99, p999, lag, ns.Ejections)
	}

	// Router endpoint table (top by request count).
	b.WriteString("\n")
	fmt.Fprintf(b, "%-22s %10s %8s %9s %9s %9s\n", "ENDPOINT", "COUNT", "ERRORS", "P50 MS", "P99 MS", "MAX MS")
	names := make([]string, 0, len(st.Endpoints))
	for name, ep := range st.Endpoints {
		if ep.Count > 0 {
			names = append(names, name)
		}
	}
	sort.Slice(names, func(i, j int) bool { return st.Endpoints[names[i]].Count > st.Endpoints[names[j]].Count })
	for _, name := range names {
		ep := st.Endpoints[name]
		fmt.Fprintf(b, "%-22s %10d %8d %9s %9s %9s\n",
			name, ep.Count, ep.Errors, fmtMS(ep.P50MS), fmtMS(ep.P99MS), fmtMS(ep.MaxMS))
	}

	if len(st.SLO) > 0 {
		b.WriteString("\n")
		fmt.Fprintf(b, "%-28s %10s %10s %10s %8s\n", "SLO", "BUDGET", "FAST BURN", "SLOW BURN", "STATE")
		for _, s := range st.SLO {
			state := "ok"
			if s.Breaching {
				state = "BREACH"
			}
			fmt.Fprintf(b, "%-28s %10.4f %10.2f %10.2f %8s\n",
				s.Objective, s.Budget, s.FastBurn, s.SlowBurn, state)
		}
	}
}

func renderSingle(b *strings.Builder, p *poller, st dmsapi.Stats, now time.Time) {
	header(b, "dmsd", p.addr, st.UptimeSeconds, st.Version, st.Revision)
	fmt.Fprintf(b, "%.1f rps · %d in flight · %d shed · wal lag %s\n\n",
		p.rps("", st.Requests, st.UptimeSeconds, now), st.InFlight, st.Shed, walLag(st.Wal))
	fmt.Fprintf(b, "%-22s %10s %8s %9s %9s %9s %9s\n",
		"ENDPOINT", "COUNT", "ERRORS", "P50 MS", "P99 MS", "P999 MS", "MAX MS")
	names := make([]string, 0, len(st.Endpoints))
	for name, ep := range st.Endpoints {
		if ep.Count > 0 {
			names = append(names, name)
		}
	}
	sort.Slice(names, func(i, j int) bool { return st.Endpoints[names[i]].Count > st.Endpoints[names[j]].Count })
	for _, name := range names {
		ep := st.Endpoints[name]
		fmt.Fprintf(b, "%-22s %10d %8d %9s %9s %9s %9s\n",
			name, ep.Count, ep.Errors, fmtMS(ep.P50MS), fmtMS(ep.P99MS), fmtMS(ep.P999MS), fmtMS(ep.MaxMS))
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7718", "router or dmsd address to poll")
	interval := flag.Duration("interval", 2*time.Second, "poll and redraw cadence")
	timeout := flag.Duration("timeout", 3*time.Second, "per-request HTTP timeout")
	once := flag.Bool("once", false, "print one snapshot and exit (scripts, CI)")
	flag.Parse()

	p := newPoller(*addr, *timeout)
	for {
		now := time.Now()
		var b strings.Builder
		err := render(&b, p, now)
		p.lastPoll = now
		if err != nil {
			if *once {
				fmt.Fprintf(os.Stderr, "dmstop: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "dmstop: %v (retrying in %s)\n", err, *interval)
		} else {
			if !*once {
				// ANSI clear screen + home: full redraw each frame.
				fmt.Print("\x1b[2J\x1b[H")
			}
			fmt.Print(b.String())
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}
