// Command trainsmoke is the CI probe for the server-side training plane:
// against a live dmsd it ingests a small labeled corpus (bootstrap-fitting
// a fresh daemon), submits one tiny /v1/train job, polls it to "done",
// and verifies the checkpoint landed in the zoo and the /statsz train
// gauges moved. Exit status is non-zero on any failure, which is the
// contract the CI dmsd-smoke step relies on.
//
// Usage:
//
//	dmsd -addr 127.0.0.1:7718 &
//	trainsmoke -addr 127.0.0.1:7718 [-timeout 2m]
package main

import (
	"flag"
	"log"
	"math/rand"
	"time"

	"fairdms/internal/datagen"
	"fairdms/internal/dmsapi"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7718", "dmsd address to probe")
	timeout := flag.Duration("timeout", 2*time.Minute, "end-to-end deadline for the train job")
	flag.Parse()

	client, err := dmsapi.Dial(*addr)
	if err != nil {
		log.Fatalf("trainsmoke: %v", err)
	}
	defer client.Close()

	// A small labeled Bragg corpus: enough to bootstrap-fit a fresh
	// daemon's clustering module and feed one quick job.
	regime := datagen.DefaultBraggRegime()
	regime.Patch = 11
	samples := regime.Generate(rand.New(rand.NewSource(1)), 96)
	if _, err := client.Ingest("trainsmoke", samples); err != nil {
		log.Fatalf("trainsmoke: ingest: %v", err)
	}
	log.Printf("trainsmoke: ingested %d samples", len(samples))

	job, sd, err := client.RapidTrain(dmsapi.TrainRequest{
		Dataset:   "trainsmoke",
		Model:     "mlp",
		Hidden:    16,
		Epochs:    3,
		BatchSize: 16,
		Seed:      1,
		ModelID:   "trainsmoke-model",
	}, *timeout)
	if err != nil {
		log.Fatalf("trainsmoke: rapid-train: %v (job %+v)", err, job)
	}
	if job.Epochs == 0 || len(sd.Values) == 0 {
		log.Fatalf("trainsmoke: job done but empty: epochs=%d params=%d", job.Epochs, len(sd.Values))
	}
	log.Printf("trainsmoke: job %s done in %d epochs (warm=%v), checkpoint %s has %d params",
		job.ID, job.Epochs, job.Warm, job.ModelID, len(sd.Values))

	stats, err := client.ServerStats()
	if err != nil {
		log.Fatalf("trainsmoke: /statsz: %v", err)
	}
	if stats.Train == nil {
		log.Fatal("trainsmoke: /statsz has no train block (training disabled?)")
	}
	if stats.Train.Completed < 1 {
		log.Fatalf("trainsmoke: train gauges did not move: %+v", stats.Train)
	}
	log.Printf("trainsmoke: OK — train gauges %+v", *stats.Train)
}
