// Command fairvet is the repo's multichecker: it runs the custom analyzer
// suite under internal/analyzers over module packages and exits non-zero
// on any finding. It is a required CI gate (after go vet, before tests).
//
// Usage:
//
//	go run ./cmd/fairvet ./...              # whole module
//	go run ./cmd/fairvet ./internal/dmsapi  # one package
//	go run ./cmd/fairvet -only wiretags,guardedby ./...
//	go run ./cmd/fairvet -list
//
// Exit status: 0 clean, 1 findings, 2 infrastructure failure (unloadable
// package, type error, unknown analyzer).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"fairdms/internal/analyzers"
	"fairdms/internal/analyzers/anzkit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fairvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root (or any directory inside it)")
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer subset to run")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*anzkit.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*anzkit.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "fairvet: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "fairvet: %v\n", err)
		return 2
	}
	loader, err := anzkit.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "fairvet: %v\n", err)
		return 2
	}
	paths, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "fairvet: %v\n", err)
		return 2
	}
	diags, err := loader.Run(suite, paths)
	if err != nil {
		fmt.Fprintf(stderr, "fairvet: %v\n", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		// Print paths relative to the module root for stable, clickable
		// output in CI logs.
		pos := d.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s (%s)\n", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	fmt.Fprintf(stderr, "fairvet: %d finding(s)\n", len(diags))
	return 1
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
