// Fixture module with nothing to flag.
package ok

// Add sums two ints.
func Add(a, b int) int { return a + b }
