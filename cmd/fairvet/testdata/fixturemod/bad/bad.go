// Fixture module for the fairvet smoke test: exactly one live violation
// plus one suppressed by the escape hatch.
package bad

import "os"

// Save persists data without fsync — the violation fairvet must report.
func Save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// Scratch writes a throwaway file a crash may truncate harmlessly.
func Scratch(path string) error {
	//lint:ignore fsyncrename scratch output, losing it on crash is fine
	return os.WriteFile(path, []byte("scratch"), 0o644)
}
