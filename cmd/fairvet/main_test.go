package main

import (
	"strings"
	"testing"
)

// TestFixtureModule smoke-tests the driver end to end against a tiny
// module: one live violation (reported, exit 1) and one suppressed by
// //lint:ignore (absent from the output).
func TestFixtureModule(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-dir", "testdata/fixturemod", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	got := out.String()
	for _, want := range []string{"bad/bad.go:9:", "cannot fsync", "(fsyncrename)"} {
		if !strings.Contains(got, want) {
			t.Errorf("stdout missing %q:\n%s", want, got)
		}
	}
	if n := strings.Count(got, "(fsyncrename)"); n != 1 {
		t.Errorf("got %d findings, want 1 (the Scratch one is lint:ignored):\n%s", n, got)
	}
	if !strings.Contains(errb.String(), "1 finding(s)") {
		t.Errorf("stderr missing summary: %s", errb.String())
	}
}

func TestCleanModule(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-dir", "testdata/cleanmod", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean module produced output:\n%s", out.String())
	}
}

func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"atomicstat", "errboundary", "fsyncrename", "guardedby", "obsnames", "wiretags"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-only", "nosuch", "-dir", "testdata/cleanmod", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2 (infrastructure failure)", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", errb.String())
	}
}
