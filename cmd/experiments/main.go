// Command experiments regenerates the data behind every figure of the
// fairDMS paper's evaluation (§III) and prints the series as text tables.
//
// Usage:
//
//	experiments [-fig all|2|6|7|8|9|10|11|12|13|14|15|16] [-full] [-seed N]
//
// The default "quick" scale runs every figure in a few minutes on a laptop;
// -full uses paper-sized parameters where feasible (larger patches, more
// datasets) and takes correspondingly longer. Absolute numbers differ from
// the paper (different hardware, synthetic data); shapes are the target.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fairdms/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (2, 6-16, or all)")
	full := flag.Bool("full", false, "paper-scale parameters (slower)")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	run := func(name string, fn func() (interface{ Table() string }, error)) {
		if !all && !want[name] {
			return
		}
		start := time.Now()
		res, err := fn()
		if err != nil {
			log.Fatalf("fig %s: %v", name, err)
		}
		fmt.Println(res.Table())
		fmt.Printf("[fig %s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	patch := 0 // harness defaults (quick)
	perDS := 0
	if *full {
		patch = 15
		perDS = 200
	}

	run("2", func() (interface{ Table() string }, error) {
		return experiments.Fig02(experiments.Fig02Config{Patch: patch, PerDataset: perDS, Seed: *seed})
	})
	for _, sk := range []struct {
		name string
		kind experiments.StorageKind
	}{
		{"6", experiments.StorageTomography},
		{"7", experiments.StorageCookieBox},
		{"8", experiments.StorageBragg},
	} {
		kind := sk.kind
		run(sk.name, func() (interface{ Table() string }, error) {
			dir, err := os.MkdirTemp("", "fairdms-exp-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			samples := 192
			if *full {
				samples = 512
			}
			return experiments.StorageSweep(experiments.StorageConfig{
				Kind: kind, Samples: samples,
				Dir: filepath.Join(dir, string(kind)), Seed: *seed,
			})
		})
	}
	run("9", func() (interface{ Table() string }, error) {
		cfg := experiments.Fig09Config{Seed: *seed}
		if *full {
			cfg.Historical = 600
			cfg.NewSamples = 300
		}
		return experiments.Fig09(cfg)
	})
	run("10", func() (interface{ Table() string }, error) {
		return experiments.ErrVsJSD(experiments.ErrJSDConfig{
			App: experiments.AppBragg, Patch: patch, TestDatasets: 4, Seed: *seed,
		})
	})
	run("11", func() (interface{ Table() string }, error) {
		return experiments.ErrVsJSD(experiments.ErrJSDConfig{
			App: experiments.AppCookie, TestDatasets: 4, Seed: *seed,
		})
	})
	run("12", func() (interface{ Table() string }, error) {
		return experiments.Fig12(experiments.Fig12Config{Patch: patch, PerDataset: perDS, Seed: *seed})
	})
	run("13", func() (interface{ Table() string }, error) {
		return experiments.LearningCurves(experiments.CurvesConfig{
			App: experiments.AppCookie, TestDatasets: 4, Seed: *seed,
		})
	})
	run("14", func() (interface{ Table() string }, error) {
		return experiments.LearningCurves(experiments.CurvesConfig{
			App: experiments.AppBragg, Patch: patch, TestDatasets: 4, Seed: *seed,
		})
	})
	run("15", func() (interface{ Table() string }, error) {
		cfg := experiments.Fig15Config{Patch: patch, Seed: *seed}
		if *full {
			cfg.ScanPeaks = 1_000_000
		}
		return experiments.Fig15(cfg)
	})
	run("16", func() (interface{ Table() string }, error) {
		cfg := experiments.Fig16Config{Patch: patch, Seed: *seed}
		if !*full {
			// Quick scale keeps the paper's 36-dataset shape but smaller
			// per-dataset counts; the harness defaults handle the rest.
			cfg.PerDataset = 30
			cfg.Clusters = 10
		}
		return experiments.Fig16(cfg)
	})
}
