// Command fairdms runs the paper's end-to-end orchestrated workflow
// (Fig. 5 + §III-C): a Globus-Flows-style DAG coordinates funcX-style
// function execution and simulated Globus transfers between an
// "experimental facility" endpoint and an "HPC" endpoint:
//
//	acquire (facility) ──► transfer-data ──► rapid-train (hpc) ──► transfer-model ──► deploy (facility)
//
// The rapid-train action is fairDMS proper: certainty check, PDF-matched
// label retrieval, JSD model recommendation, fine-tuning, zoo update.
//
// Usage:
//
//	fairdms [-scans N] [-peaks N] [-store addr] [-dms addr] [-server-train]
//	        [-timescale f]
//
// With -store, historical data lives in an external dstore server;
// otherwise an in-process store is used. With -dms, the data and model
// services themselves are remote: the rapid-train action talks to a dmsd
// daemon over HTTP — certainty, label lookup, PDF, recommendation, and
// checkpoint download all cross the network — and only the fine-tuning
// happens locally, exercising the paper's service deployment end to end
// (-store is then ignored; the daemon owns the store). Adding
// -server-train moves even the training into the daemon: each scan
// becomes one async /v1/train job that warm-starts from the zoo's
// recommendation and registers its checkpoint with lineage, and the
// workflow just polls the job and downloads the result.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/core"
	"fairdms/internal/datagen"
	"fairdms/internal/dmsapi"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/fairds"
	"fairdms/internal/fairms"
	"fairdms/internal/flow"
	"fairdms/internal/funcx"
	"fairdms/internal/models"
	"fairdms/internal/nn"
	"fairdms/internal/tensor"
	"fairdms/internal/transfer"
)

const patch = 9

// backend abstracts where the fairDMS services live: in-process (the
// seed's single-binary mode) or behind a dmsd daemon reached over HTTP.
type backend interface {
	// rapidTrain runs the user-plane workflow for one scan's samples and
	// returns the trained model plus the per-stage report.
	rapidTrain(scan int, samples []*codec.Sample) (*nn.Model, *core.Report, error)
	// ingest registers a scan's samples as labeled historical data.
	ingest(scan int, samples []*codec.Sample) error
	// summary describes the final system state.
	summary() string
}

func main() {
	scans := flag.Int("scans", 10, "number of scans in the simulated experiment")
	peaks := flag.Int("peaks", 60, "peaks per scan")
	storeAddr := flag.String("store", "", "external dstore address (empty = in-process)")
	dmsAddr := flag.String("dms", "", "external dmsd address (empty = in-process services)")
	serverTrain := flag.Bool("server-train", false,
		"with -dms: train server-side via async /v1/train jobs (daemon warm-starts and registers)")
	timescale := flag.Float64("timescale", 0.001, "transfer time compression (0 = no sleeping)")
	flag.Parse()

	rng := rand.New(rand.NewSource(41))
	schedule := datagen.DefaultBraggDrift(*scans * 6 / 10)
	schedule.Base.Patch = patch
	schedule.JumpWidth = 0.1 * patch
	seq := schedule.BraggExperiment(42, *scans, *peaks)

	var warmup []*codec.Sample
	for i := 0; i < 3; i++ {
		warmup = append(warmup, seq[i]...)
	}

	var be backend
	if *dmsAddr != "" {
		b, err := newRemoteBackend(*dmsAddr, rng, warmup)
		check(err)
		defer b.client.Close()
		b.serverTrain = *serverTrain
		be = b
		mode := "local fine-tuning"
		if *serverTrain {
			mode = "server-side /v1/train jobs"
		}
		log.Printf("fairdms: using remote fairDMS services at %s (%s)", *dmsAddr, mode)
	} else {
		b := newLocalBackend(rng, *storeAddr, warmup, seq)
		if b.closer != nil {
			defer b.closer()
		}
		be = b
	}

	// --- Orchestration fabric -------------------------------------------
	facility := transfer.NewEndpoint("facility")
	hpc := transfer.NewEndpoint("hpc")
	mover := transfer.NewService(*timescale)
	// 100 GbE facility↔HPC link, as in the paper's testbed.
	mover.SetLink("facility", "hpc", transfer.Link{Bandwidth: 12.5e9, Latency: 500 * time.Microsecond})
	mover.SetLink("hpc", "facility", transfer.Link{Bandwidth: 12.5e9, Latency: 500 * time.Microsecond})

	registry := funcx.NewRegistry()
	check(registry.Register("acquire", func(ctx context.Context, in any) (any, error) {
		scan := in.(int)
		// Serialize the scan to the facility endpoint, as the detector would.
		var buf bytes.Buffer
		for _, s := range seq[scan] {
			raw, err := (codec.Block{}).Encode(s)
			if err != nil {
				return nil, err
			}
			var lenb [4]byte
			putU32(lenb[:], uint32(len(raw)))
			buf.Write(lenb[:])
			buf.Write(raw)
		}
		facility.Put(blobName(scan), buf.Bytes())
		return len(seq[scan]), nil
	}))
	check(registry.Register("rapid-train", func(ctx context.Context, in any) (any, error) {
		scan := in.(int)
		raw, err := hpc.Get(blobName(scan))
		if err != nil {
			return nil, err
		}
		samples, err := decodeBlob(raw)
		if err != nil {
			return nil, err
		}
		model, rep, err := be.rapidTrain(scan, samples)
		if err != nil {
			return nil, err
		}
		state, err := model.State().Bytes()
		if err != nil {
			return nil, err
		}
		hpc.Put(modelName(scan), state)
		return rep, nil
	}))

	edge := funcx.NewEndpoint("facility-edge", registry, 1, 8)
	defer edge.Close()
	compute := funcx.NewEndpoint("hpc-compute", registry, 2, 8)
	defer compute.Close()

	// --- Per-scan workflow ----------------------------------------------
	for scan := 3; scan < *scans; scan++ {
		wf := flow.New(fmt.Sprintf("update-scan-%02d", scan))
		wf.Add(flow.Action{
			Name: "acquire",
			Run: func(ctx context.Context, rc *flow.RunContext) error {
				n, err := edge.Call(ctx, "acquire", scan)
				if err != nil {
					return err
				}
				rc.Set("acquired", n)
				return nil
			},
		})
		wf.Add(flow.Action{
			Name: "transfer-data", DependsOn: []string{"acquire"}, Retries: 2,
			Run: func(ctx context.Context, rc *flow.RunContext) error {
				res, err := mover.Transfer(ctx, facility, hpc, blobName(scan))
				if err != nil {
					return err
				}
				rc.Set("data-transfer", res)
				return nil
			},
		})
		wf.Add(flow.Action{
			Name: "rapid-train", DependsOn: []string{"transfer-data"},
			Run: func(ctx context.Context, rc *flow.RunContext) error {
				rep, err := compute.Call(ctx, "rapid-train", scan)
				if err != nil {
					return err
				}
				rc.Set("report", rep)
				return nil
			},
		})
		wf.Add(flow.Action{
			Name: "transfer-model", DependsOn: []string{"rapid-train"}, Retries: 2,
			Run: func(ctx context.Context, rc *flow.RunContext) error {
				_, err := mover.Transfer(ctx, hpc, facility, modelName(scan))
				return err
			},
		})
		wf.Add(flow.Action{
			Name: "deploy", DependsOn: []string{"transfer-model"},
			Run: func(ctx context.Context, rc *flow.RunContext) error {
				return nil // the facility would hot-swap the surrogate here
			},
		})

		rc := flow.NewRunContext()
		report, err := wf.Execute(context.Background(), rc)
		check(err)
		rep := mustReport(rc)
		xfer, _ := rc.Get("data-transfer")
		mode := "fine-tuned " + rep.Foundation
		if !rep.FineTuned {
			mode = "scratch"
		}
		fmt.Printf("scan %02d: flow %v | data %s | labels %d in %v | %s (JSD %.4f) | train %v\n",
			scan, report.Duration.Round(time.Millisecond),
			transferSummary(xfer), rep.Labeled, rep.LabelTime.Round(time.Millisecond),
			mode, rep.JSD, rep.TrainTime.Round(time.Millisecond))

		// Scan data becomes historical for subsequent scans.
		check(be.ingest(scan, seq[scan]))
	}
	fmt.Printf("workflow complete: %s\n", be.summary())
}

// ---------------------------------------------------------------------------
// Local backend: the seed's in-process wiring.

type localBackend struct {
	sys    *core.System
	ds     *fairds.Service
	zoo    *fairms.Zoo
	rng    *rand.Rand
	closer func() // closes the external docstore client pool, if any
}

func newLocalBackend(rng *rand.Rand, storeAddr string, warmup []*codec.Sample, seq [][]*codec.Sample) *localBackend {
	var store fairds.DataStore
	var closer func()
	if storeAddr != "" {
		client, err := docstore.Dial(storeAddr, 8)
		check(err)
		closer = client.Close
		store = fairds.RemoteCollection{Client: client, Name: "bragg"}
		log.Printf("fairdms: using external store at %s", storeAddr)
	} else {
		store = docstore.NewStore().Collection("bragg")
	}

	wx, err := fairds.Collate(warmup)
	check(err)
	aug := embed.ImageAugmenter{H: patch, W: patch, Noise: 0.1, ScaleRange: 0.1}
	byol := embed.NewBYOL(rng, wx.Dim(1), 64, 8, aug.View, 0.95)
	byol.Train(wx, embed.TrainConfig{Epochs: 15, BatchSize: 32, LR: 2e-3, Seed: 43})

	ds, err := fairds.New(byol, store, fairds.Config{Seed: 44})
	check(err)
	check(ds.FitClustersK(wx, 8))
	for i := 0; i < 3; i++ {
		_, err := ds.IngestLabeled(seq[i], fmt.Sprintf("scan-%02d", i))
		check(err)
	}

	zoo := fairms.NewZoo()
	seedModel := models.NewBraggNN(rng, patch)
	wy := labelTensor(warmup)
	nn.Fit(seedModel.Net, nn.NewAdam(seedModel.Net.Params(), 2e-3),
		wx, seedModel.Targets(wy), wx, seedModel.Targets(wy),
		nn.TrainConfig{Epochs: 40, BatchSize: 16, Seed: 45})
	pdf, err := ds.DatasetPDF(wx)
	check(err)
	check(zoo.Add("braggnn-warmup", seedModel.Net.State(), pdf, nil))

	sys, err := core.New(ds, zoo, core.Config{Seed: 46})
	check(err)
	return &localBackend{sys: sys, ds: ds, zoo: zoo, rng: rng, closer: closer}
}

func (b *localBackend) rapidTrain(scan int, samples []*codec.Sample) (*nn.Model, *core.Report, error) {
	return b.sys.RapidTrain(core.Request{
		Input: samples,
		NewModel: func() *nn.Model {
			return models.NewBraggNN(b.rng, patch).Net
		},
		Prep: func(ss []*codec.Sample) (*tensor.Tensor, *tensor.Tensor, error) {
			x, err := fairds.Collate(ss)
			if err != nil {
				return nil, nil, err
			}
			helper := &models.BraggNN{Patch: patch}
			return x, helper.Targets(labelTensor(ss)), nil
		},
		Train:   nn.TrainConfig{Epochs: 25, BatchSize: 16, Seed: int64(50 + scan)},
		ModelID: fmt.Sprintf("braggnn-scan%02d", scan),
	})
}

func (b *localBackend) ingest(scan int, samples []*codec.Sample) error {
	_, err := b.ds.IngestLabeled(samples, fmt.Sprintf("scan-%02d", scan))
	return err
}

func (b *localBackend) summary() string {
	return fmt.Sprintf("zoo holds %d models, store holds %d samples", b.zoo.Len(), b.ds.StoreCount())
}

// ---------------------------------------------------------------------------
// Remote backend: the same user-plane workflow, but every fairDMS service
// call — certainty, label lookup, PDF, recommendation, checkpoint download,
// model registration — crosses the network to a dmsd daemon. Only the
// fine-tuning itself runs locally (it is the HPC job).

type remoteBackend struct {
	client      *dmsapi.Client
	rng         *rand.Rand
	jsdMax      float64
	serverTrain bool // train via /v1/train jobs instead of locally
}

func newRemoteBackend(addr string, rng *rand.Rand, warmup []*codec.Sample) (*remoteBackend, error) {
	client, err := dmsapi.Dial(addr)
	if err != nil {
		return nil, err
	}
	b := &remoteBackend{client: client, rng: rng, jsdMax: core.DefaultJSDThreshold}

	// Warm-up: one combined ingest so the daemon's bootstrap fit sees all
	// three scans, then a locally trained seed model registered under the
	// warm-up data's PDF.
	if _, err := client.Ingest("warmup", warmup); err != nil {
		return nil, fmt.Errorf("warmup ingest: %w", err)
	}
	pdf, err := client.PDF(warmup)
	if err != nil {
		return nil, fmt.Errorf("warmup pdf: %w", err)
	}
	wx, err := fairds.Collate(warmup)
	if err != nil {
		return nil, err
	}
	seedModel := models.NewBraggNN(rng, patch)
	wy := labelTensor(warmup)
	nn.Fit(seedModel.Net, nn.NewAdam(seedModel.Net.Params(), 2e-3),
		wx, seedModel.Targets(wy), wx, seedModel.Targets(wy),
		nn.TrainConfig{Epochs: 40, BatchSize: 16, Seed: 45})
	dup, err := addModelTolerateDuplicate(client, "braggnn-warmup", seedModel.Net.State(), pdf, nil)
	if err != nil {
		return nil, fmt.Errorf("warmup model: %w", err)
	}
	if dup {
		log.Printf("fairdms: daemon already holds braggnn-warmup, reusing it")
	}
	return b, nil
}

// addModelTolerateDuplicate registers a model, treating "already exists"
// as success: a long-lived daemon keeps models across fairdms runs, and a
// re-run reusing its registry is the service working as intended. Returns
// whether the model was already present.
func addModelTolerateDuplicate(client *dmsapi.Client, id string, state *nn.StateDict, pdf []float64, meta map[string]string) (bool, error) {
	err := client.AddModel(id, state, pdf, meta)
	if err == nil {
		return false, nil
	}
	var se *dmsapi.StatusError
	if errors.As(err, &se) && se.Code == http.StatusConflict {
		return true, nil
	}
	return false, err
}

func (b *remoteBackend) rapidTrain(scan int, samples []*codec.Sample) (*nn.Model, *core.Report, error) {
	if b.serverTrain {
		return b.rapidTrainServer(scan, samples)
	}
	rep := &core.Report{}

	cert, err := b.client.Certainty(samples, core.DefaultMembershipCut)
	if err != nil {
		return nil, nil, fmt.Errorf("remote certainty: %w", err)
	}
	rep.Certainty = cert

	labelStart := time.Now()
	labeled, err := b.client.Lookup(samples)
	if err != nil {
		return nil, nil, fmt.Errorf("remote label lookup: %w", err)
	}
	rep.LabelTime = time.Since(labelStart)
	rep.Labeled = len(labeled)

	pdf, err := b.client.PDF(samples)
	if err != nil {
		return nil, nil, fmt.Errorf("remote pdf: %w", err)
	}
	rep.PDF = pdf

	model := models.NewBraggNN(b.rng, patch).Net
	lr := core.DefaultScratchLR
	rec, err := b.client.Recommend(pdf, b.jsdMax)
	if err != nil {
		return nil, nil, fmt.Errorf("remote recommend: %w", err)
	}
	if rec.OK {
		sd, err := b.client.Checkpoint(rec.ID)
		if err != nil {
			return nil, nil, fmt.Errorf("remote checkpoint %s: %w", rec.ID, err)
		}
		if err := model.LoadState(sd); err != nil {
			return nil, nil, fmt.Errorf("loading foundation %q: %w", rec.ID, err)
		}
		rep.FineTuned = true
		rep.Foundation = rec.ID
		rep.JSD = rec.JSD
		lr = core.DefaultFineTuneLR
	}

	x, err := fairds.Collate(labeled)
	if err != nil {
		return nil, nil, err
	}
	helper := &models.BraggNN{Patch: patch}
	y := helper.Targets(labelTensor(labeled))
	// Same holdout split as the in-process core.RapidTrain path (its
	// ValFraction default, the local backend's seed), so -dms runs report
	// comparable numbers.
	trainX, trainY, valX, valY := core.Split(x, y, core.DefaultValFraction, 46)
	trainStart := time.Now()
	rep.Result = nn.Fit(model, nn.NewAdam(model.Params(), lr), trainX, trainY, valX, valY,
		nn.TrainConfig{Epochs: 25, BatchSize: 16, Seed: int64(50 + scan)})
	rep.TrainTime = time.Since(trainStart)

	id := fmt.Sprintf("braggnn-scan%02d", scan)
	dup, err := addModelTolerateDuplicate(b.client, id, model.State(), pdf, map[string]string{"scan": fmt.Sprint(scan)})
	if err != nil {
		return nil, nil, fmt.Errorf("registering %s: %w", id, err)
	}
	if dup {
		log.Printf("fairdms: daemon already holds %s, keeping its copy", id)
	}
	return model, rep, nil
}

// rapidTrainServer pushes the training of the rapid-train action into
// the daemon: the workflow still runs the certainty check and the
// pseudo-labeling Lookup (so both -dms modes train on the same
// PDF-matched historical labels and report comparable numbers), then one
// /v1/train job computes the PDF, picks the warm-start foundation,
// trains, and registers the checkpoint with lineage — the workflow polls
// and downloads the result for deploy.
func (b *remoteBackend) rapidTrainServer(scan int, samples []*codec.Sample) (*nn.Model, *core.Report, error) {
	rep := &core.Report{}
	cert, err := b.client.Certainty(samples, core.DefaultMembershipCut)
	if err != nil {
		return nil, nil, fmt.Errorf("remote certainty: %w", err)
	}
	rep.Certainty = cert

	labelStart := time.Now()
	labeled, err := b.client.Lookup(samples)
	if err != nil {
		return nil, nil, fmt.Errorf("remote label lookup: %w", err)
	}
	rep.LabelTime = time.Since(labelStart)
	rep.Labeled = len(labeled)

	id := fmt.Sprintf("braggnn-scan%02d", scan)
	job, sd, err := b.client.RapidTrain(dmsapi.TrainRequest{
		Samples:   dmsapi.FromCodecSlice(labeled),
		Model:     "braggnn",
		Epochs:    25,
		BatchSize: 16,
		MaxJSD:    b.jsdMax,
		Seed:      int64(50 + scan),
		ModelID:   id,
		Meta:      map[string]string{"scan": fmt.Sprint(scan)},
	}, 10*time.Minute)
	if err != nil {
		// A re-run against a long-lived daemon finds the scan's model
		// already registered; reuse it like the local path does. The
		// failed job's training numbers describe a run whose checkpoint
		// was discarded, so the report stays empty rather than claiming
		// them for the previous run's model we actually deploy.
		if job.State == "failed" && strings.Contains(job.Error, "duplicate model id") {
			log.Printf("fairdms: daemon already holds %s, reusing its copy", id)
			if sd, err = b.client.Checkpoint(id); err != nil {
				return nil, nil, fmt.Errorf("fetching existing %s: %w", id, err)
			}
		} else {
			return nil, nil, fmt.Errorf("server train job: %w", err)
		}
	} else {
		rep.FineTuned = job.Warm
		rep.Foundation = job.Foundation
		rep.JSD = job.JSD
		if !job.StartedAt.IsZero() && !job.FinishedAt.IsZero() {
			rep.TrainTime = job.FinishedAt.Sub(job.StartedAt)
		}
		rep.Result = &nn.TrainResult{
			TrainLoss: job.TrainLoss,
			ValLoss:   job.ValLoss,
			Epochs:    job.Epochs,
			Converged: job.Converged,
		}
	}

	model := models.NewBraggNN(b.rng, patch).Net
	if err := model.LoadState(sd); err != nil {
		return nil, nil, fmt.Errorf("loading server-trained %s: %w", id, err)
	}
	return model, rep, nil
}

func (b *remoteBackend) ingest(scan int, samples []*codec.Sample) error {
	_, err := b.client.Ingest(fmt.Sprintf("scan-%02d", scan), samples)
	return err
}

func (b *remoteBackend) summary() string {
	h, err := b.client.Health()
	if err != nil {
		return fmt.Sprintf("daemon unreachable: %v", err)
	}
	return fmt.Sprintf("remote zoo holds %d models, remote store holds %d samples", h.Models, h.Samples)
}

// ---------------------------------------------------------------------------

func blobName(scan int) string  { return fmt.Sprintf("scan-%02d.dat", scan) }
func modelName(scan int) string { return fmt.Sprintf("model-%02d.sd", scan) }

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func decodeBlob(raw []byte) ([]*codec.Sample, error) {
	var out []*codec.Sample
	for len(raw) >= 4 {
		n := int(getU32(raw[:4]))
		raw = raw[4:]
		if len(raw) < n {
			return nil, fmt.Errorf("fairdms: truncated scan blob")
		}
		s, err := (codec.Block{}).Decode(raw[:n])
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		raw = raw[n:]
	}
	return out, nil
}

func labelTensor(samples []*codec.Sample) *tensor.Tensor {
	y := tensor.New(len(samples), 2)
	for i, s := range samples {
		y.Set(s.Label[0], i, 0)
		y.Set(s.Label[1], i, 1)
	}
	return y
}

func mustReport(rc *flow.RunContext) *core.Report {
	v := rc.MustGet("report")
	rep, ok := v.(*core.Report)
	if !ok {
		log.Fatalf("fairdms: unexpected report type %T", v)
	}
	return rep
}

func transferSummary(v any) string {
	res, ok := v.(*transfer.Result)
	if !ok {
		return "?"
	}
	return fmt.Sprintf("%dB in %v (modeled)", res.Bytes, res.Modeled.Round(time.Microsecond))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
