package funcx

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("double", func(ctx context.Context, in any) (any, error) {
		return in.(int) * 2, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("double", nil); err == nil {
		t.Fatal("expected error for nil function")
	}
	if err := r.Register("double", func(ctx context.Context, in any) (any, error) { return nil, nil }); err == nil {
		t.Fatal("expected duplicate registration error")
	}
	if _, err := r.Lookup("missing"); err == nil {
		t.Fatal("expected lookup error")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "double" {
		t.Fatalf("Names = %v", names)
	}
}

func TestEndpointCallAndSubmit(t *testing.T) {
	r := NewRegistry()
	r.Register("add1", func(ctx context.Context, in any) (any, error) { return in.(int) + 1, nil })
	e := NewEndpoint("edge", r, 2, 8)
	defer e.Close()

	v, err := e.Call(context.Background(), "add1", 41)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("Call = %v", v)
	}

	f, err := e.Submit(context.Background(), "add1", 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err = f.Wait(context.Background())
	if err != nil || v != 2 {
		t.Fatalf("future = %v, %v", v, err)
	}
	if !f.Done() {
		t.Fatal("future should be done after Wait")
	}
	if e.Executed() != 2 {
		t.Fatalf("Executed = %d", e.Executed())
	}
}

func TestSubmitUnknownFunction(t *testing.T) {
	e := NewEndpoint("edge", NewRegistry(), 1, 1)
	defer e.Close()
	if _, err := e.Submit(context.Background(), "nope", nil); err == nil {
		t.Fatal("expected unknown-function error")
	}
}

func TestFunctionErrorsPropagate(t *testing.T) {
	r := NewRegistry()
	boom := errors.New("boom")
	r.Register("fail", func(ctx context.Context, in any) (any, error) { return nil, boom })
	e := NewEndpoint("edge", r, 1, 1)
	defer e.Close()
	_, err := e.Call(context.Background(), "fail", nil)
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v", err)
	}
}

func TestMapPreservesOrderAndParallelizes(t *testing.T) {
	r := NewRegistry()
	var peak, inFlight atomic.Int64
	r.Register("slowSquare", func(ctx context.Context, in any) (any, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		inFlight.Add(-1)
		n := in.(int)
		return n * n, nil
	})
	e := NewEndpoint("hpc", r, 4, 16)
	defer e.Close()

	inputs := []any{1, 2, 3, 4, 5, 6}
	out, err := e.Map(context.Background(), "slowSquare", inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		want := (i + 1) * (i + 1)
		if v != want {
			t.Fatalf("out[%d] = %v, want %d", i, v, want)
		}
	}
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d, want >= 2", peak.Load())
	}
}

func TestMapReportsFirstError(t *testing.T) {
	r := NewRegistry()
	r.Register("failOdd", func(ctx context.Context, in any) (any, error) {
		if in.(int)%2 == 1 {
			return nil, errors.New("odd input")
		}
		return in, nil
	})
	e := NewEndpoint("e", r, 2, 8)
	defer e.Close()
	out, err := e.Map(context.Background(), "failOdd", []any{0, 1, 2})
	if err == nil {
		t.Fatal("expected error")
	}
	if out[0] != 0 || out[2] != 2 {
		t.Fatalf("successful results lost: %v", out)
	}
}

func TestClosedEndpointRejectsSubmissions(t *testing.T) {
	r := NewRegistry()
	r.Register("id", func(ctx context.Context, in any) (any, error) { return in, nil })
	e := NewEndpoint("e", r, 1, 1)
	e.Close()
	if _, err := e.Submit(context.Background(), "id", 1); err == nil {
		t.Fatal("expected closed-endpoint error")
	}
	e.Close() // idempotent
}

func TestWaitHonorsContext(t *testing.T) {
	r := NewRegistry()
	release := make(chan struct{})
	r.Register("block", func(ctx context.Context, in any) (any, error) {
		<-release
		return nil, nil
	})
	e := NewEndpoint("e", r, 1, 1)
	defer func() {
		close(release)
		e.Close()
	}()
	f, err := e.Submit(context.Background(), "block", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := f.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait error = %v", err)
	}
}
