// Package funcx is fairDMS's stand-in for the funcX federated
// function-serving fabric (paper §III-C): named functions are registered
// once, then submitted for asynchronous execution on named endpoints —
// bounded worker pools that model the compute sites (beamline edge node,
// HPC cluster) of the end-to-end workflow. Submissions return futures.
//
// Pair with internal/flow (DAG orchestration) and internal/transfer
// (simulated data movement) to model the full §III-C fabric.
package funcx

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Function is an executable registered with the fabric.
type Function func(ctx context.Context, input any) (any, error)

// Registry maps function names to implementations. Safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	funcs map[string]Function
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{funcs: make(map[string]Function)}
}

// Register adds a function under name, failing on duplicates.
func (r *Registry) Register(name string, fn Function) error {
	if fn == nil {
		return fmt.Errorf("funcx: nil function %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.funcs[name]; dup {
		return fmt.Errorf("funcx: function %q already registered", name)
	}
	r.funcs[name] = fn
	return nil
}

// Lookup returns the named function.
func (r *Registry) Lookup(name string) (Function, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.funcs[name]
	if !ok {
		return nil, fmt.Errorf("funcx: unknown function %q", name)
	}
	return fn, nil
}

// Names lists registered function names (unordered).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.funcs))
	for n := range r.funcs {
		out = append(out, n)
	}
	return out
}

// Result is a completed execution.
type Result struct {
	Value any
	Err   error
}

// Future resolves to the result of an asynchronous submission.
type Future struct {
	done chan struct{}
	res  Result
}

// Wait blocks until the result is available or ctx is canceled.
func (f *Future) Wait(ctx context.Context) (any, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-f.done:
		return f.res.Value, f.res.Err
	}
}

// Done reports whether the result is available without blocking.
func (f *Future) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Endpoint is a named worker pool executing submitted functions, the
// funcX notion of a compute site.
type Endpoint struct {
	Name string

	registry *Registry
	tasks    chan *task
	wg       sync.WaitGroup
	closed   atomic.Bool
	executed atomic.Int64
}

type task struct {
	fn     Function
	input  any
	future *Future
	ctx    context.Context
}

// NewEndpoint starts an endpoint with the given parallelism (workers >= 1)
// and submission queue depth.
func NewEndpoint(name string, registry *Registry, workers, queueDepth int) *Endpoint {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 64
	}
	e := &Endpoint{Name: name, registry: registry, tasks: make(chan *task, queueDepth)}
	for w := 0; w < workers; w++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for t := range e.tasks {
				if err := t.ctx.Err(); err != nil {
					t.future.res = Result{Err: err}
				} else {
					v, err := t.fn(t.ctx, t.input)
					t.future.res = Result{Value: v, Err: err}
				}
				e.executed.Add(1)
				close(t.future.done)
			}
		}()
	}
	return e
}

// Submit schedules the named function with input and returns its future.
func (e *Endpoint) Submit(ctx context.Context, name string, input any) (*Future, error) {
	if e.closed.Load() {
		return nil, errors.New("funcx: endpoint closed")
	}
	fn, err := e.registry.Lookup(name)
	if err != nil {
		return nil, err
	}
	f := &Future{done: make(chan struct{})}
	t := &task{fn: fn, input: input, future: f, ctx: ctx}
	select {
	case e.tasks <- t:
		return f, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Call submits and waits — the synchronous convenience path.
func (e *Endpoint) Call(ctx context.Context, name string, input any) (any, error) {
	f, err := e.Submit(ctx, name, input)
	if err != nil {
		return nil, err
	}
	return f.Wait(ctx)
}

// Map submits the named function once per input and waits for all results,
// returning them in input order. The first error is returned but every
// future is awaited.
func (e *Endpoint) Map(ctx context.Context, name string, inputs []any) ([]any, error) {
	futures := make([]*Future, len(inputs))
	for i, in := range inputs {
		f, err := e.Submit(ctx, name, in)
		if err != nil {
			return nil, err
		}
		futures[i] = f
	}
	out := make([]any, len(inputs))
	var firstErr error
	for i, f := range futures {
		v, err := f.Wait(ctx)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("funcx: input %d: %w", i, err)
		}
		out[i] = v
	}
	return out, firstErr
}

// Executed reports how many tasks the endpoint has completed.
func (e *Endpoint) Executed() int64 { return e.executed.Load() }

// Close drains the queue and stops the workers. Pending submissions
// complete; new submissions fail.
func (e *Endpoint) Close() {
	if e.closed.Swap(true) {
		return
	}
	close(e.tasks)
	e.wg.Wait()
}
