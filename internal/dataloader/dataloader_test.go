package dataloader

import (
	"errors"
	"sync/atomic"
	"testing"

	"fairdms/internal/codec"
	"fairdms/internal/docstore"
	"fairdms/internal/filestore"
)

// makeSamples builds n tiny labeled samples whose first element equals the
// sample index, so ordering is checkable after batching.
func makeSamples(n int) []*codec.Sample {
	out := make([]*codec.Sample, n)
	for i := range out {
		out[i] = codec.SampleFromFloats(
			[]float64{float64(i), 1, 2, 3},
			[]int{4}, codec.F64,
			[]float64{float64(i) * 10},
		)
	}
	return out
}

func TestSequentialEpochCoversDatasetInOrder(t *testing.T) {
	ds := &InMemory{Samples: makeSamples(10)}
	l, err := New(ds, Config{BatchSize: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if l.Batches() != 4 {
		t.Fatalf("Batches = %d, want 4", l.Batches())
	}
	var seen []float64
	for r := range l.Epoch(0) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		for i := 0; i < r.Batch.X.Dim(0); i++ {
			seen = append(seen, r.Batch.X.At(i, 0))
		}
		if r.Batch.Fetch < 0 {
			t.Fatal("negative fetch time")
		}
	}
	if len(seen) != 10 {
		t.Fatalf("epoch visited %d samples, want 10", len(seen))
	}
	for i, v := range seen {
		if v != float64(i) {
			t.Fatalf("sequential order violated at %d: %v", i, seen)
		}
	}
}

func TestDropLast(t *testing.T) {
	ds := &InMemory{Samples: makeSamples(10)}
	l, err := New(ds, Config{BatchSize: 3, DropLast: true})
	if err != nil {
		t.Fatal(err)
	}
	if l.Batches() != 3 {
		t.Fatalf("Batches = %d, want 3 with DropLast", l.Batches())
	}
	count := 0
	for r := range l.Epoch(0) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Batch.X.Dim(0) != 3 {
			t.Fatalf("batch size %d, want 3", r.Batch.X.Dim(0))
		}
		count++
	}
	if count != 3 {
		t.Fatalf("received %d batches, want 3", count)
	}
}

func TestRandomSamplerShufflesButCovers(t *testing.T) {
	n := 32
	ds := &InMemory{Samples: makeSamples(n)}
	l, err := New(ds, Config{BatchSize: 8, Workers: 3, Sampler: RandomSampler{N: n, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	inOrder := true
	prev := -1.0
	for r := range l.Epoch(0) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		for i := 0; i < r.Batch.X.Dim(0); i++ {
			v := r.Batch.X.At(i, 0)
			if seen[v] {
				t.Fatalf("sample %v delivered twice", v)
			}
			seen[v] = true
			if v < prev {
				inOrder = false
			}
			prev = v
		}
	}
	if len(seen) != n {
		t.Fatalf("covered %d of %d samples", len(seen), n)
	}
	if inOrder {
		t.Fatal("random sampler produced identity permutation")
	}
	// Different epochs use different permutations.
	s := RandomSampler{N: n, Seed: 1}
	a, b := s.Order(0), s.Order(1)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("epochs 0 and 1 produced identical permutations")
	}
}

func TestLabelsCollated(t *testing.T) {
	ds := &InMemory{Samples: makeSamples(4)}
	l, _ := New(ds, Config{BatchSize: 4})
	for r := range l.Epoch(0) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Batch.Y == nil {
			t.Fatal("labels missing from batch")
		}
		for i := 0; i < 4; i++ {
			if r.Batch.Y.At(i, 0) != r.Batch.X.At(i, 0)*10 {
				t.Fatalf("label mismatch at row %d", i)
			}
		}
	}
}

func TestUnlabeledSamplesYieldNilY(t *testing.T) {
	samples := []*codec.Sample{
		codec.SampleFromFloats([]float64{1}, []int{1}, codec.F64, nil),
		codec.SampleFromFloats([]float64{2}, []int{1}, codec.F64, nil),
	}
	b, err := Collate(samples)
	if err != nil {
		t.Fatal(err)
	}
	if b.Y != nil {
		t.Fatal("Y must be nil for unlabeled samples")
	}
}

func TestCollateRejectsMixedShapes(t *testing.T) {
	samples := []*codec.Sample{
		codec.SampleFromFloats([]float64{1}, []int{1}, codec.F64, nil),
		codec.SampleFromFloats([]float64{1, 2}, []int{2}, codec.F64, nil),
	}
	if _, err := Collate(samples); err == nil {
		t.Fatal("expected error for mixed element counts")
	}
	mixedLabels := []*codec.Sample{
		codec.SampleFromFloats([]float64{1}, []int{1}, codec.F64, []float64{1}),
		codec.SampleFromFloats([]float64{2}, []int{1}, codec.F64, nil),
	}
	if _, err := Collate(mixedLabels); err == nil {
		t.Fatal("expected error for mixed label dims")
	}
}

type failingDataset struct {
	n      int
	failAt int
	calls  atomic.Int64
}

func (d *failingDataset) Len() int { return d.n }
func (d *failingDataset) Get(i int) (*codec.Sample, error) {
	d.calls.Add(1)
	if i == d.failAt {
		return nil, errors.New("injected failure")
	}
	return codec.SampleFromFloats([]float64{float64(i)}, []int{1}, codec.F64, nil), nil
}

func TestEpochSurfacesDatasetError(t *testing.T) {
	ds := &failingDataset{n: 12, failAt: 7}
	l, _ := New(ds, Config{BatchSize: 4, Workers: 2})
	sawErr := false
	for r := range l.Epoch(0) {
		if r.Err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("dataset error was swallowed")
	}
}

func TestNewRejectsBadBatchSize(t *testing.T) {
	if _, err := New(&InMemory{}, Config{BatchSize: 0}); err == nil {
		t.Fatal("expected error for batch size 0")
	}
}

func TestInMemoryOutOfRange(t *testing.T) {
	ds := &InMemory{Samples: makeSamples(2)}
	if _, err := ds.Get(5); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestFileDatasetEndToEnd(t *testing.T) {
	store, err := filestore.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range makeSamples(9) {
		if _, err := store.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	ds := &FileDataset{Store: store}
	l, _ := New(ds, Config{BatchSize: 4, Workers: 3})
	total := 0
	for r := range l.Epoch(0) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		total += r.Batch.X.Dim(0)
	}
	if total != 9 {
		t.Fatalf("loaded %d samples from filestore, want 9", total)
	}
}

func TestDocDatasetEndToEnd(t *testing.T) {
	srv := docstore.NewServer(docstore.NewStore(), docstore.ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := docstore.Dial(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	enc := codec.Block{}
	var ids []string
	for _, s := range makeSamples(8) {
		raw, err := enc.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		id, err := cl.Insert("train", "", docstore.Fields{"payload": raw})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	ds := &DocDataset{Client: cl, Collection: "train", IDs: ids, Codec: enc}
	l, _ := New(ds, Config{BatchSize: 3, Workers: 2})
	var first []float64
	for r := range l.Epoch(0) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		for i := 0; i < r.Batch.X.Dim(0); i++ {
			first = append(first, r.Batch.X.At(i, 0))
		}
	}
	if len(first) != 8 {
		t.Fatalf("loaded %d samples via docstore, want 8", len(first))
	}
	for i, v := range first {
		if v != float64(i) {
			t.Fatalf("docstore round trip reordered samples: %v", first)
		}
	}
}

func TestDocDatasetBadPayloadField(t *testing.T) {
	srv := docstore.NewServer(docstore.NewStore(), docstore.ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := docstore.Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	id, err := cl.Insert("c", "", docstore.Fields{"payload": "not bytes"})
	if err != nil {
		t.Fatal(err)
	}
	ds := &DocDataset{Client: cl, Collection: "c", IDs: []string{id}, Codec: codec.Raw{}}
	if _, err := ds.Get(0); err == nil {
		t.Fatal("expected error for non-[]byte payload")
	}
}
