// Package dataloader reimplements the PyTorch data-loading pipeline the
// fairDMS paper extends (§III-D): a Dataset abstraction returning one
// sample per index, a Sampler producing index permutations, and a Loader
// that fans batch fetches out across worker goroutines with bounded
// prefetch, hiding storage latency behind compute — exactly the mechanism
// whose batch-size and worker-count sensitivity Figs. 6–8 measure.
//
// Datasets are backed by internal/docstore collections or
// internal/filestore directories (see datasets.go); examples/storagebench
// runs the full sweep.
package dataloader

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/tensor"
)

// Dataset returns a data item corresponding to a given index.
type Dataset interface {
	Len() int
	Get(i int) (*codec.Sample, error)
}

// Sampler creates the index order for one epoch.
type Sampler interface {
	Order(epoch int) []int
}

// SequentialSampler yields 0..n-1 in order.
type SequentialSampler struct{ N int }

// Order returns the identity permutation.
func (s SequentialSampler) Order(int) []int {
	out := make([]int, s.N)
	for i := range out {
		out[i] = i
	}
	return out
}

// RandomSampler yields a seeded random permutation per epoch.
type RandomSampler struct {
	N    int
	Seed int64
}

// Order returns a permutation that differs per epoch but is reproducible
// for a given seed.
func (s RandomSampler) Order(epoch int) []int {
	rng := rand.New(rand.NewSource(s.Seed + int64(epoch)*1_000_003))
	out := rng.Perm(s.N)
	return out
}

// Batch is one mini-batch of decoded samples in training-ready form.
type Batch struct {
	X       *tensor.Tensor // (B, features)
	Y       *tensor.Tensor // (B, labelDim); nil when samples carry no label
	Indices []int          // dataset indices of the rows
	Fetch   time.Duration  // wall time spent fetching + decoding this batch
}

// Result delivers a batch or the error that produced it.
type Result struct {
	Batch *Batch
	Err   error
}

// Config tunes a Loader.
type Config struct {
	BatchSize int // required
	// Workers sets both the number of batches fetched concurrently and the
	// number of concurrent sample fetches within a batch — the fairDMS
	// extension of the PyTorch loader ("fetch using multiple clients" to
	// hide per-fetch latency, paper §III-D). Default 1.
	Workers  int
	Prefetch int  // extra batches buffered ahead of the consumer; default 2
	DropLast bool // drop a trailing partial batch
	Sampler  Sampler
}

// Loader iterates a dataset in batches using a worker pool.
type Loader struct {
	ds  Dataset
	cfg Config
}

// New validates the configuration and returns a Loader.
func New(ds Dataset, cfg Config) (*Loader, error) {
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("dataloader: batch size %d < 1", cfg.BatchSize)
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Prefetch < 1 {
		cfg.Prefetch = 2
	}
	if cfg.Sampler == nil {
		cfg.Sampler = SequentialSampler{N: ds.Len()}
	}
	return &Loader{ds: ds, cfg: cfg}, nil
}

// Batches returns the number of batches per epoch.
func (l *Loader) Batches() int {
	n := l.ds.Len() / l.cfg.BatchSize
	if !l.cfg.DropLast && l.ds.Len()%l.cfg.BatchSize != 0 {
		n++
	}
	return n
}

// Epoch launches the worker pool for one epoch and returns a channel of
// batches delivered in order. The caller must drain the channel (or read
// until it sees an error) so the workers can exit; the channel closes when
// the epoch completes.
func (l *Loader) Epoch(epoch int) <-chan Result {
	order := l.cfg.Sampler.Order(epoch)
	type job struct {
		seq     int
		indices []int
	}
	var jobs []job
	for lo := 0; lo < len(order); lo += l.cfg.BatchSize {
		hi := lo + l.cfg.BatchSize
		if hi > len(order) {
			if l.cfg.DropLast {
				break
			}
			hi = len(order)
		}
		jobs = append(jobs, job{seq: len(jobs), indices: order[lo:hi]})
	}

	jobCh := make(chan job)
	results := make([]chan Result, len(jobs))
	for i := range results {
		results[i] = make(chan Result, 1)
	}

	var wg sync.WaitGroup
	for w := 0; w < l.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				b, err := l.fetchBatch(j.indices)
				results[j.seq] <- Result{Batch: b, Err: err}
			}
		}()
	}
	go func() {
		for _, j := range jobs {
			jobCh <- j
		}
		close(jobCh)
		wg.Wait()
	}()

	// Reorder: deliver batch seq 0, 1, 2, ... regardless of completion
	// order, with Prefetch slots of buffering toward the consumer.
	out := make(chan Result, l.cfg.Prefetch)
	go func() {
		defer close(out)
		for i := range results {
			out <- <-results[i]
		}
	}()
	return out
}

// fetchBatch retrieves and decodes one batch, timing the I/O. Sample
// fetches within the batch run on up to cfg.Workers goroutines so that
// per-fetch round-trip latency overlaps (the multi-client extension).
func (l *Loader) fetchBatch(indices []int) (*Batch, error) {
	start := time.Now()
	samples := make([]*codec.Sample, len(indices))
	par := l.cfg.Workers
	if par > len(indices) {
		par = len(indices)
	}
	if par <= 1 {
		for i, idx := range indices {
			s, err := l.ds.Get(idx)
			if err != nil {
				return nil, fmt.Errorf("dataloader: sample %d: %w", idx, err)
			}
			samples[i] = s
		}
	} else {
		errs := make([]error, len(indices))
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					s, err := l.ds.Get(indices[i])
					if err != nil {
						errs[i] = fmt.Errorf("dataloader: sample %d: %w", indices[i], err)
						continue
					}
					samples[i] = s
				}
			}()
		}
		for i := range indices {
			next <- i
		}
		close(next)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	b, err := Collate(samples)
	if err != nil {
		return nil, err
	}
	b.Indices = append([]int(nil), indices...)
	b.Fetch = time.Since(start)
	return b, nil
}

// Collate stacks decoded samples into batch tensors. All samples must share
// an element count; labels must share a length (or all be absent).
func Collate(samples []*codec.Sample) (*Batch, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("dataloader: empty batch")
	}
	feat := samples[0].Elems()
	labelDim := len(samples[0].Label)
	x := tensor.New(len(samples), feat)
	var y *tensor.Tensor
	if labelDim > 0 {
		y = tensor.New(len(samples), labelDim)
	}
	for i, s := range samples {
		if s.Elems() != feat {
			return nil, fmt.Errorf("dataloader: sample %d has %d elements, batch has %d", i, s.Elems(), feat)
		}
		if len(s.Label) != labelDim {
			return nil, fmt.Errorf("dataloader: sample %d has label dim %d, batch has %d", i, len(s.Label), labelDim)
		}
		copy(x.Row(i), s.Floats())
		if y != nil {
			copy(y.Row(i), s.Label)
		}
	}
	return &Batch{X: x, Y: y}, nil
}
