package dataloader

import (
	"fmt"

	"fairdms/internal/codec"
	"fairdms/internal/docstore"
	"fairdms/internal/filestore"
)

// InMemory is a Dataset over a slice of samples, the zero-I/O baseline.
type InMemory struct{ Samples []*codec.Sample }

// Len returns the number of samples.
func (d *InMemory) Len() int { return len(d.Samples) }

// Get returns sample i.
func (d *InMemory) Get(i int) (*codec.Sample, error) {
	if i < 0 || i >= len(d.Samples) {
		return nil, fmt.Errorf("dataloader: index %d out of range [0, %d)", i, len(d.Samples))
	}
	return d.Samples[i], nil
}

// FileDataset reads samples from a filestore — the "NFS" configuration of
// the paper's storage study.
type FileDataset struct{ Store *filestore.Store }

// Len returns the number of stored samples.
func (d *FileDataset) Len() int { return d.Store.Len() }

// Get reads and decodes sample i from disk.
func (d *FileDataset) Get(i int) (*codec.Sample, error) { return d.Store.Get(i) }

// DocDataset reads codec-encoded sample payloads from a remote docstore —
// the "MongoDB + Blosc/Pickle" configurations of the paper's storage study.
// Each document must carry the encoded sample bytes under PayloadField.
type DocDataset struct {
	Client       *docstore.Client
	Collection   string
	IDs          []string // document IDs in dataset order
	Codec        codec.Codec
	PayloadField string // default "payload"
}

// Len returns the number of addressable documents.
func (d *DocDataset) Len() int { return len(d.IDs) }

// Get fetches document i over the wire and decodes its payload.
func (d *DocDataset) Get(i int) (*codec.Sample, error) {
	if i < 0 || i >= len(d.IDs) {
		return nil, fmt.Errorf("dataloader: index %d out of range [0, %d)", i, len(d.IDs))
	}
	field := d.PayloadField
	if field == "" {
		field = "payload"
	}
	doc, err := d.Client.Get(d.Collection, d.IDs[i])
	if err != nil {
		return nil, err
	}
	raw, ok := doc.F[field].([]byte)
	if !ok {
		return nil, fmt.Errorf("dataloader: doc %s field %q is %T, want []byte", d.IDs[i], field, doc.F[field])
	}
	return d.Codec.Decode(raw)
}
