// Package experiments contains the harnesses that regenerate every figure
// of the fairDMS paper's evaluation (§III). Each harness builds its
// workload from the datagen substrates, runs the relevant fairDMS
// machinery, and returns a structured result whose Table method prints the
// same series the paper plots. cmd/experiments runs them all;
// bench_test.go wraps each in a testing.B benchmark.
//
// Scale note: workloads default to laptop-sized variants of the paper's
// datasets (see DESIGN.md); Config fields let callers scale up.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"fairdms/internal/codec"
	"fairdms/internal/dataloader"
	"fairdms/internal/nn"
	"fairdms/internal/tensor"
)

// collate stacks samples into (x, y) tensors, failing the experiment on
// malformed data (programmer error in a harness).
func collate(samples []*codec.Sample) (*tensor.Tensor, *tensor.Tensor) {
	b, err := dataloader.Collate(samples)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return b.X, b.Y
}

// table formats aligned columns for experiment reports.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// randFor returns a seeded *rand.Rand (helper so harnesses stay terse).
func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// holdout splits (x, y) into train and validation parts with a seeded
// permutation.
func holdout(x, y *tensor.Tensor, valFrac float64, seed int64) (tx, ty, vx, vy *tensor.Tensor) {
	n := x.Dim(0)
	nVal := int(float64(n) * valFrac)
	if nVal < 1 {
		nVal = 1
	}
	if nVal >= n {
		nVal = n - 1
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	return nn.Gather(x, perm[nVal:]), nn.Gather(y, perm[nVal:]),
		nn.Gather(x, perm[:nVal]), nn.Gather(y, perm[:nVal])
}

// vconcat stacks two 2-D tensors vertically (same column count).
func vconcat(a, b *tensor.Tensor) *tensor.Tensor {
	if a.Dim(1) != b.Dim(1) {
		panic(fmt.Sprintf("experiments: vconcat width mismatch %d vs %d", a.Dim(1), b.Dim(1)))
	}
	out := tensor.New(a.Dim(0)+b.Dim(0), a.Dim(1))
	copy(out.Data()[:a.Len()], a.Data())
	copy(out.Data()[a.Len():], b.Data())
	return out
}
