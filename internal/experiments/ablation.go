package experiments

import (
	"math"
	"math/rand"

	"fairdms/internal/codec"
	"fairdms/internal/datagen"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/fairds"
	"fairdms/internal/stats"
	"fairdms/internal/tensor"
)

// EmbedAblationConfig sizes the embedding-method ablation reproducing the
// paper's §IV failure analysis: an autoencoder embedding is sensitive to
// pixel-level pose, so a rotated Bragg peak — physically identical — lands
// far from its original; BYOL trained with rotation augmentations is
// pose-invariant.
type EmbedAblationConfig struct {
	Patch   int
	Samples int
	Epochs  int
	Seed    int64
}

func (c *EmbedAblationConfig) defaults() {
	if c.Patch <= 0 {
		c.Patch = 11
	}
	if c.Samples <= 0 {
		c.Samples = 80
	}
	if c.Epochs <= 0 {
		c.Epochs = 25
	}
}

// EmbedAblationResult reports per-method rotation-retrieval accuracy: the
// fraction of rotated probes whose nearest original (embedding space) is
// their own unrotated source.
type EmbedAblationResult struct {
	AERetrieval   float64
	BYOLRetrieval float64
	// Mean embedding distance between a peak and its rotation, normalized
	// by the mean distance between unrelated peaks (lower = more
	// rotation-invariant).
	AERotationDist   float64
	BYOLRotationDist float64
}

// Table renders the ablation.
func (r *EmbedAblationResult) Table() string {
	t := &table{header: []string{"embedding", "rot-retrieval", "rot-dist/unrelated-dist"}}
	t.add("autoencoder", f3(r.AERetrieval), f3(r.AERotationDist))
	t.add("byol", f3(r.BYOLRetrieval), f3(r.BYOLRotationDist))
	return "Ablation (§IV) — autoencoder vs BYOL under physics augmentations\n" + t.String()
}

// EmbedAblation trains both embedders on the same peaks and measures
// rotation-retrieval quality.
func EmbedAblation(cfg EmbedAblationConfig) (*EmbedAblationResult, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	regime := datagen.DefaultBraggRegime()
	regime.Patch = cfg.Patch
	// Use strong center jitter so peaks are distinguishable from each
	// other (retrieval needs identity, not just regime).
	regime.CenterJitter = 2.0
	samples := regime.Generate(rng, cfg.Samples)
	x, _ := collate(samples)

	// Rotated probes: each sample rotated 90°.
	rot := tensor.New(x.Dim(0), x.Dim(1))
	for i := 0; i < x.Dim(0); i++ {
		copy(rot.Row(i), x.Row(i))
		rotate90InPlace(rot.Row(i), cfg.Patch)
	}

	ae := embed.NewAutoencoder(rng, x.Dim(1), 64, 8)
	ae.Train(x, embed.TrainConfig{Epochs: cfg.Epochs, BatchSize: 16, LR: 1e-3, Seed: cfg.Seed + 1})

	aug := embed.ImageAugmenter{H: cfg.Patch, W: cfg.Patch, Noise: 0.05, ScaleRange: 0.05}
	byol := embed.NewBYOL(rng, x.Dim(1), 64, 8, aug.View, 0.95)
	byol.Train(x, embed.TrainConfig{Epochs: cfg.Epochs, BatchSize: 16, LR: 2e-3, Seed: cfg.Seed + 2})

	res := &EmbedAblationResult{}
	res.AERetrieval, res.AERotationDist = retrievalScore(ae, x, rot)
	res.BYOLRetrieval, res.BYOLRotationDist = retrievalScore(byol, x, rot)
	return res, nil
}

// retrievalScore computes (a) the top-1 retrieval accuracy of rotated
// probes against originals and (b) mean self-rotation distance over mean
// unrelated distance.
func retrievalScore(e embed.Embedder, x, rot *tensor.Tensor) (float64, float64) {
	zo := e.Embed(x)
	zr := e.Embed(rot)
	n := x.Dim(0)
	hits := 0
	var selfDist, crossDist float64
	for i := 0; i < n; i++ {
		best := math.Inf(1)
		bestJ := -1
		for j := 0; j < n; j++ {
			if d := tensor.SquaredDistance(zr.Row(i), zo.Row(j)); d < best {
				best = d
				bestJ = j
			}
		}
		if bestJ == i {
			hits++
		}
		selfDist += math.Sqrt(tensor.SquaredDistance(zr.Row(i), zo.Row(i)))
		crossDist += math.Sqrt(tensor.SquaredDistance(zo.Row(i), zo.Row((i+n/2)%n)))
	}
	return float64(hits) / float64(n), selfDist / crossDist
}

func rotate90InPlace(img []float64, n int) {
	tmp := make([]float64, len(img))
	copy(tmp, img)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			img[(n-1-x)*n+y] = tmp[y*n+x]
		}
	}
}

// ---------------------------------------------------------------------------

// RetrievalAblationConfig sizes the PDF-matched vs uniform-random label
// retrieval ablation: fairDS retrieves labeled data whose cluster
// distribution matches the input's; the ablation asks how much that
// matching matters compared to sampling the store uniformly.
type RetrievalAblationConfig struct {
	Patch     int
	PerRegime int
	QuerySize int
	Seed      int64
}

func (c *RetrievalAblationConfig) defaults() {
	if c.Patch <= 0 {
		c.Patch = 9
	}
	if c.PerRegime <= 0 {
		c.PerRegime = 120
	}
	if c.QuerySize <= 0 {
		c.QuerySize = 60
	}
}

// RetrievalAblationResult compares distribution fidelity of the two
// sampling strategies.
type RetrievalAblationResult struct {
	MatchedJSD float64 // JSD(input PDF, PDF-matched retrieval PDF)
	UniformJSD float64 // JSD(input PDF, uniform-random retrieval PDF)
}

// Table renders the ablation.
func (r *RetrievalAblationResult) Table() string {
	t := &table{header: []string{"strategy", "jsd-to-input"}}
	t.add("pdf-matched (fairDS)", f4(r.MatchedJSD))
	t.add("uniform-random", f4(r.UniformJSD))
	return "Ablation — PDF-matched vs uniform label retrieval\n" + t.String()
}

// RetrievalAblation builds a two-regime store, queries with single-regime
// input, and compares the retrieved sets' distributions.
func RetrievalAblation(cfg RetrievalAblationConfig) (*RetrievalAblationResult, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ra := datagen.DefaultBraggRegime()
	ra.Patch = cfg.Patch
	rb := ra
	rb.WidthMean += 1.2
	rb.EtaMean = 0.8
	histA := ra.Generate(rng, cfg.PerRegime)
	histB := rb.Generate(rng, cfg.PerRegime)
	all := append(append([]*codec.Sample(nil), histA...), histB...)
	x, _ := collate(all)

	aug := embed.ImageAugmenter{H: cfg.Patch, W: cfg.Patch, Noise: 0.1, ScaleRange: 0.1}
	byol := embed.NewBYOL(rng, x.Dim(1), 64, 8, aug.View, 0.95)
	byol.Train(x, embed.TrainConfig{Epochs: 15, BatchSize: 32, LR: 2e-3, Seed: cfg.Seed + 1})

	store := docstore.NewStore().Collection("ablate")
	ds, err := fairds.New(byol, store, fairds.Config{Seed: cfg.Seed + 2})
	if err != nil {
		return nil, err
	}
	if err := ds.FitClustersK(x, 6); err != nil {
		return nil, err
	}
	if _, err := ds.IngestLabeled(all, "history"); err != nil {
		return nil, err
	}

	// Query: pure regime-A input.
	query := ra.Generate(rng, cfg.QuerySize)
	qx, _ := collate(query)
	inputPDF, err := ds.DatasetPDF(qx)
	if err != nil {
		return nil, err
	}

	// fairDS PDF-matched retrieval.
	matched, err := ds.LookupLabeled(qx)
	if err != nil {
		return nil, err
	}
	mx, _ := collate(matched)
	matchedPDF, err := ds.DatasetPDF(mx)
	if err != nil {
		return nil, err
	}

	// Uniform-random retrieval of the same count.
	ids, err := store.SampleIDs(docstore.Query{}, len(matched), cfg.Seed+3)
	if err != nil {
		return nil, err
	}
	uniform, err := ds.GetSamples(ids)
	if err != nil {
		return nil, err
	}
	ux, _ := collate(uniform)
	uniformPDF, err := ds.DatasetPDF(ux)
	if err != nil {
		return nil, err
	}

	return &RetrievalAblationResult{
		MatchedJSD: stats.JSDivergence(inputPDF, matchedPDF),
		UniformJSD: stats.JSDivergence(inputPDF, uniformPDF),
	}, nil
}
