package experiments

import (
	"fmt"
	"time"

	"fairdms/internal/nn"
	"fairdms/internal/simcluster"
	"fairdms/internal/voigt"
)

// Fig15Config sizes the end-to-end case study (paper Fig. 15 / §III-H):
// dataset 22 of an HEDM series triggers retraining; four methods are
// compared on labeling time, training time, and end-to-end time:
//
//	fairDMS    — fairDS label reuse + fairMS fine-tuning
//	Retrain    — fairDS label reuse + training from scratch
//	Voigt-80   — pseudo-Voigt labeling on an 80-core workstation + scratch
//	Voigt-1440 — pseudo-Voigt labeling on a 1440-core cluster + scratch
//
// Voigt label costs are measured on real Levenberg–Marquardt fits and
// extrapolated to the paper's core counts by simcluster (perfect scaling,
// i.e. the baseline's best case).
type Fig15Config struct {
	Patch       int
	Historical  int     // labeled samples in the store
	NewSamples  int     // dataset-22 size used for training
	ScanPeaks   int     // peaks a full scan must label conventionally (paper: 1400–3600 frames × many peaks)
	FitSamples  int     // real Voigt fits used to calibrate per-peak cost
	Epochs      int     // training epoch cap
	TargetScale float64 // convergence target = TargetScale × foundation loss
	Seed        int64
}

func (c *Fig15Config) defaults() {
	if c.Patch <= 0 {
		c.Patch = 9
	}
	if c.Historical <= 0 {
		c.Historical = 300
	}
	if c.NewSamples <= 0 {
		c.NewSamples = 100
	}
	if c.ScanPeaks <= 0 {
		c.ScanPeaks = 100_000
	}
	if c.FitSamples <= 0 {
		c.FitSamples = 10
	}
	if c.Epochs <= 0 {
		c.Epochs = 60
	}
	if c.TargetScale <= 0 {
		c.TargetScale = 1.5
	}
}

// Fig15Method is one bar group of the figure.
type Fig15Method struct {
	Name      string
	LabelTime time.Duration
	TrainTime time.Duration
}

// Total is the end-to-end model updating time.
func (m Fig15Method) Total() time.Duration { return m.LabelTime + m.TrainTime }

// Fig15Result holds the four methods.
type Fig15Result struct {
	Methods    []Fig15Method // fairDMS, Retrain, Voigt-80, Voigt-1440
	PerFitCost time.Duration // calibrated single-peak Voigt cost
}

// Table renders the Fig. 15 bars.
func (r *Fig15Result) Table() string {
	t := &table{header: []string{"method", "label", "train", "end-to-end"}}
	for _, m := range r.Methods {
		t.add(m.Name,
			m.LabelTime.Round(time.Microsecond).String(),
			m.TrainTime.Round(time.Millisecond).String(),
			m.Total().Round(time.Millisecond).String())
	}
	return fmt.Sprintf("Fig. 15 — BraggNN retraining case study (per-fit cost %v)\n%s\nspeedups vs fairDMS: %s",
		r.PerFitCost, t, r.SpeedupSummary())
}

// Speedup returns method i's end-to-end time over fairDMS's.
func (r *Fig15Result) Speedup(name string) float64 {
	var base, other time.Duration
	for _, m := range r.Methods {
		if m.Name == "fairDMS" {
			base = m.Total()
		}
		if m.Name == name {
			other = m.Total()
		}
	}
	if base <= 0 {
		return 0
	}
	return float64(other) / float64(base)
}

// SpeedupSummary formats all end-to-end speedups relative to fairDMS.
func (r *Fig15Result) SpeedupSummary() string {
	out := ""
	for _, m := range r.Methods {
		if m.Name == "fairDMS" {
			continue
		}
		out += fmt.Sprintf("%s %.0f×  ", m.Name, r.Speedup(m.Name))
	}
	return out
}

// Fig15 runs the case study.
func Fig15(cfg Fig15Config) (*Fig15Result, error) {
	cfg.defaults()
	env, err := newBraggEnv(braggEnvConfig{
		patch:       cfg.Patch,
		numDatasets: 5,
		perDataset:  cfg.Historical / 5,
		driftAt:     1 << 30, // dataset 22 resembles history (that is the premise)
		embedOn:     3,
		zooOn:       4,
		zooEpochs:   40,
		seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	// "Dataset 22": new data needing a model update.
	d22 := env.schedule.RegimeAt(6).Generate(env.rng, cfg.NewSamples)
	x22, _ := collate(d22)

	// --- Labeling costs -------------------------------------------------
	// fairDS: PDF-matched retrieval, measured.
	labelStart := time.Now()
	retrieved, err := env.ds.LookupLabeled(x22)
	if err != nil {
		return nil, err
	}
	fairLabel := time.Since(labelStart)

	// Voigt: calibrate per-fit cost on real fits, extrapolate to a scan.
	fitIdx := 0
	perFit := simcluster.MeasurePerTask(func() {
		s := d22[fitIdx%len(d22)]
		fitIdx++
		if _, err := voigt.Fit(s.Floats(), cfg.Patch, cfg.Patch, voigt.FitConfig{}); err != nil {
			panic("experiments: voigt calibration fit failed: " + err.Error())
		}
	}, cfg.FitSamples)
	v80 := simcluster.Workstation80.EstimateWallTime(cfg.ScanPeaks, perFit)
	v1440 := simcluster.Cluster1440.EstimateWallTime(cfg.ScanPeaks, perFit)

	// --- Training costs -------------------------------------------------
	// Fine-tune path: best zoo recommendation.
	pdf, err := env.ds.DatasetPDF(x22)
	if err != nil {
		return nil, err
	}
	best, err := env.zoo.Recommend(pdf)
	if err != nil {
		return nil, err
	}
	rx, ry := collate(retrieved)
	helper, _ := env.braggModel(nil)
	targets := helper.Targets(ry)
	trainX, trainY, valX, valY := holdout(rx, targets, 0.25, cfg.Seed+30)

	foundation, err := env.braggModel(best.Record.State)
	if err != nil {
		return nil, err
	}
	target := nn.Evaluate(foundation.Net, valX, valY, nn.MSE) * cfg.TargetScale

	ftStart := time.Now()
	ftModel, err := env.braggModel(best.Record.State)
	if err != nil {
		return nil, err
	}
	nn.Fit(ftModel.Net, nn.NewAdam(ftModel.Net.Params(), 5e-4), trainX, trainY, valX, valY,
		nn.TrainConfig{Epochs: cfg.Epochs, BatchSize: 32, TargetLoss: target, Seed: cfg.Seed + 31})
	ftTrain := time.Since(ftStart)

	// Scratch path to the same target (shared by Retrain and both Voigts).
	scStart := time.Now()
	scModel, err := env.braggModel(nil)
	if err != nil {
		return nil, err
	}
	nn.Fit(scModel.Net, nn.NewAdam(scModel.Net.Params(), 2e-3), trainX, trainY, valX, valY,
		nn.TrainConfig{Epochs: cfg.Epochs, BatchSize: 32, TargetLoss: target, Seed: cfg.Seed + 32})
	scTrain := time.Since(scStart)

	return &Fig15Result{
		PerFitCost: perFit,
		Methods: []Fig15Method{
			{Name: "fairDMS", LabelTime: fairLabel, TrainTime: ftTrain},
			{Name: "Retrain", LabelTime: fairLabel, TrainTime: scTrain},
			{Name: "Voigt-80", LabelTime: v80, TrainTime: scTrain},
			{Name: "Voigt-1440", LabelTime: v1440, TrainTime: scTrain},
		},
	}, nil
}
