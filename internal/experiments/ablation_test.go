package experiments

import (
	"strings"
	"testing"
)

func TestEmbedAblationBYOLBeatsAE(t *testing.T) {
	res, err := EmbedAblation(EmbedAblationConfig{Samples: 60, Epochs: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §IV observation: BYOL with physics augmentations is far
	// more rotation-invariant than the autoencoder.
	if res.BYOLRetrieval <= res.AERetrieval {
		t.Fatalf("BYOL retrieval %.3f not above AE %.3f", res.BYOLRetrieval, res.AERetrieval)
	}
	if res.BYOLRotationDist >= res.AERotationDist {
		t.Fatalf("BYOL rotation distance ratio %.3f not below AE %.3f",
			res.BYOLRotationDist, res.AERotationDist)
	}
	if !strings.Contains(res.Table(), "byol") {
		t.Fatal("table malformed")
	}
}

func TestRetrievalAblationMatchedBeatsUniform(t *testing.T) {
	res, err := RetrievalAblation(RetrievalAblationConfig{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// PDF-matched retrieval must track the input distribution much more
	// closely than uniform sampling of a mixed-regime store.
	if res.MatchedJSD >= res.UniformJSD {
		t.Fatalf("matched JSD %.4f not below uniform %.4f", res.MatchedJSD, res.UniformJSD)
	}
	if res.MatchedJSD > 0.15 {
		t.Fatalf("matched retrieval diverges from input: JSD %.4f", res.MatchedJSD)
	}
	if !strings.Contains(res.Table(), "pdf-matched") {
		t.Fatal("table malformed")
	}
}
