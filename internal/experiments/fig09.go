package experiments

import (
	"fmt"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/models"
	"fairdms/internal/nn"
	"fairdms/internal/stats"
	"fairdms/internal/voigt"
)

// Fig09Config sizes the data-service validation (paper Fig. 9 / §III-E):
// a new experiment BR is labeled two ways — conventionally (pseudo-Voigt
// fits on every sample) and via fairDS (embedding-space nearest-neighbor
// reuse under threshold T, Voigt only for out-of-threshold samples) — and
// two BraggNNs trained on the two labeled sets are compared on a holdout.
type Fig09Config struct {
	Patch       int
	Historical  int     // historical labeled samples in the store
	NewSamples  int     // |BR|
	HoldoutFrac float64 // |BH| / |BR|
	Threshold   float64 // T, embedding-space reuse distance
	TrainEpochs int
	Seed        int64
}

func (c *Fig09Config) defaults() {
	// Fig. 9 defaults to the paper's 15×15 patch: the labeling-speed
	// comparison is only faithful when the Levenberg–Marquardt fit pays
	// its full per-peak cost.
	if c.Patch <= 0 {
		c.Patch = 15
	}
	if c.Historical <= 0 {
		c.Historical = 240
	}
	if c.NewSamples <= 0 {
		c.NewSamples = 120
	}
	if c.HoldoutFrac <= 0 {
		c.HoldoutFrac = 0.3
	}
	if c.TrainEpochs <= 0 {
		c.TrainEpochs = 30
	}
}

// Fig09Result compares the two labeling paths.
type Fig09Result struct {
	// Error percentiles on the holdout (pixels).
	ConvP50, ConvP75, ConvP95    float64
	FairP50, FairP75, FairP95    float64
	ConvLabelTime, FairLabelTime time.Duration
	Reused                       int // samples labeled by reuse
	Fitted                       int // samples that still needed a Voigt fit
}

// Table renders the Fig. 9 summary.
func (r *Fig09Result) Table() string {
	t := &table{header: []string{"labeling", "P50(px)", "P75(px)", "P95(px)", "label-time"}}
	t.add("conventional", f3(r.ConvP50), f3(r.ConvP75), f3(r.ConvP95), r.ConvLabelTime.Round(time.Millisecond).String())
	t.add("fairDS", f3(r.FairP50), f3(r.FairP75), f3(r.FairP95), r.FairLabelTime.Round(time.Millisecond).String())
	return fmt.Sprintf("Fig. 9 — conventional vs fairDS labeling (%d reused, %d fitted, %.0f× labeling speedup)\n%s",
		r.Reused, r.Fitted, r.Speedup(), t)
}

// Speedup returns conventional labeling time over fairDS labeling time.
func (r *Fig09Result) Speedup() float64 {
	if r.FairLabelTime <= 0 {
		return 0
	}
	return float64(r.ConvLabelTime) / float64(r.FairLabelTime)
}

// Fig09 runs the validation.
func Fig09(cfg Fig09Config) (*Fig09Result, error) {
	cfg.defaults()
	env, err := newBraggEnv(braggEnvConfig{
		patch:       cfg.Patch,
		numDatasets: 4,
		perDataset:  cfg.Historical / 4,
		driftAt:     1 << 30, // single regime family: BR must resemble history
		embedOn:     4,
		seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	// The new experiment BR, drawn from a nearby (slow-drift) regime.
	br := env.schedule.RegimeAt(5).Generate(env.rng, cfg.NewSamples)
	nHold := int(float64(len(br)) * cfg.HoldoutFrac)
	bh := br[:nHold]      // holdout
	bwork := br[nHold:]   // BR \ BH
	res := &Fig09Result{} // fill as we go

	// --- Conventional path: pseudo-Voigt fit for every sample. ---------
	convStart := time.Now()
	convSet := make([]*codec.Sample, len(bwork))
	for i, s := range bwork {
		fit, err := voigt.Fit(s.Floats(), cfg.Patch, cfg.Patch, voigt.FitConfig{})
		if err != nil {
			return nil, err
		}
		labeled := *s
		labeled.Label = []float64{fit.Params.Cx, fit.Params.Cy}
		convSet[i] = &labeled
	}
	res.ConvLabelTime = time.Since(convStart)

	// --- fairDS path: nearest-neighbor reuse under threshold T. --------
	// Calibrate T automatically when unset: the 75th-percentile NN
	// distance of a probe subset, so most samples reuse labels.
	threshold := cfg.Threshold
	if threshold <= 0 {
		probeN := len(bwork)
		if probeN > 20 {
			probeN = 20
		}
		probes, err := env.ds.NearestMatches(bwork[:probeN], false)
		if err != nil {
			return nil, err
		}
		var dists []float64
		for _, m := range probes {
			dists = append(dists, m.Dist)
		}
		threshold = stats.Percentile(dists, 75)
	}
	fairStart := time.Now()
	matches, err := env.ds.NearestMatches(bwork, true)
	if err != nil {
		return nil, err
	}
	var reuseIDs []string
	var fitIdx []int
	for i, m := range matches {
		if m.DocID != "" && m.Dist < threshold {
			reuseIDs = append(reuseIDs, m.DocID)
		} else {
			fitIdx = append(fitIdx, i)
		}
	}
	// Reused: the historical samples with their labels, {p, l(p)}.
	fairSet, err := env.ds.GetSamples(reuseIDs)
	if err != nil {
		return nil, err
	}
	res.Reused = len(fairSet)
	// Out-of-threshold: pseudo-Voigt labels computed conventionally.
	for _, i := range fitIdx {
		s := bwork[i]
		fit, err := voigt.Fit(s.Floats(), cfg.Patch, cfg.Patch, voigt.FitConfig{})
		if err != nil {
			return nil, err
		}
		labeled := *s
		labeled.Label = []float64{fit.Params.Cx, fit.Params.Cy}
		fairSet = append(fairSet, &labeled)
		res.Fitted++
	}
	res.FairLabelTime = time.Since(fairStart)

	// --- Train the two models and evaluate on BH. -----------------------
	trainEval := func(set []*codec.Sample, seed int64) ([]float64, error) {
		m := models.NewBraggNN(env.rng, cfg.Patch)
		x, y := collate(set)
		opt := nn.NewAdam(m.Net.Params(), 2e-3)
		nn.Fit(m.Net, opt, x, m.Targets(y), x, m.Targets(y),
			nn.TrainConfig{Epochs: cfg.TrainEpochs, BatchSize: 16, Seed: seed})
		hx, hy := collate(bh)
		return m.ErrorsPx(hx, hy), nil
	}
	convErrs, err := trainEval(convSet, cfg.Seed+20)
	if err != nil {
		return nil, err
	}
	fairErrs, err := trainEval(fairSet, cfg.Seed+21)
	if err != nil {
		return nil, err
	}
	res.ConvP50 = stats.Percentile(convErrs, 50)
	res.ConvP75 = stats.Percentile(convErrs, 75)
	res.ConvP95 = stats.Percentile(convErrs, 95)
	res.FairP50 = stats.Percentile(fairErrs, 50)
	res.FairP75 = stats.Percentile(fairErrs, 75)
	res.FairP95 = stats.Percentile(fairErrs, 95)
	return res, nil
}
