package experiments

import (
	"fmt"

	"fairdms/internal/fairms"
	"fairdms/internal/nn"
	"fairdms/internal/stats"
	"fairdms/internal/tensor"
)

// CurvesConfig sizes the learning-curve comparison (Figs. 13–14): for each
// held-out dataset, validation loss per epoch when training from scratch
// (Retrain) vs fine-tuning the Best/Median/Worst zoo recommendation.
type CurvesConfig struct {
	App          App
	ZooModels    int
	TestDatasets int // paper: 4
	PerDataset   int
	Patch        int // bragg patch / cookie size
	Epochs       int
	FineTuneLR   float64
	ScratchLR    float64
	Seed         int64
}

func (c *CurvesConfig) defaults() {
	if c.App == "" {
		c.App = AppBragg
	}
	if c.ZooModels <= 0 {
		c.ZooModels = 5
	}
	if c.TestDatasets <= 0 {
		c.TestDatasets = 2
	}
	// Zoo models must generalize within their regime (see ErrJSDConfig).
	if c.PerDataset <= 0 {
		c.PerDataset = 120
	}
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.FineTuneLR <= 0 {
		c.FineTuneLR = 5e-4
	}
	if c.ScratchLR <= 0 {
		c.ScratchLR = 2e-3
	}
}

// Strategy names match the paper's legend.
const (
	StrategyRetrain   = "Retrain"
	StrategyFineTuneB = "FineTune-B"
	StrategyFineTuneM = "FineTune-M"
	StrategyFineTuneW = "FineTune-W"
)

// CurveSet holds the four learning curves for one test dataset.
type CurveSet struct {
	TestDataset int
	Curves      map[string][]float64 // strategy → per-epoch validation loss
}

// EpochsTo returns how many epochs each strategy needs to reach the target
// validation loss (-1 if never reached).
func (c *CurveSet) EpochsTo(target float64) map[string]int {
	out := make(map[string]int, len(c.Curves))
	for s, curve := range c.Curves {
		out[s] = -1
		for i, v := range curve {
			if v <= target {
				out[s] = i + 1
				break
			}
		}
	}
	return out
}

// CurvesResult covers all test datasets.
type CurvesResult struct {
	App  App
	Sets []CurveSet
}

// Table prints the curves at a few epochs plus convergence summaries.
func (r *CurvesResult) Table() string {
	out := fmt.Sprintf("Figs. 13/14 — learning curves, %s\n", r.App)
	for _, set := range r.Sets {
		t := &table{header: []string{"epoch", StrategyRetrain, StrategyFineTuneB, StrategyFineTuneM, StrategyFineTuneW}}
		n := len(set.Curves[StrategyRetrain])
		for e := 0; e < n; e++ {
			if n > 12 && e%2 == 1 && e != n-1 {
				continue // thin long curves for readability
			}
			t.add(fmt.Sprintf("%d", e+1),
				f4(set.Curves[StrategyRetrain][e]),
				f4(set.Curves[StrategyFineTuneB][e]),
				f4(set.Curves[StrategyFineTuneM][e]),
				f4(set.Curves[StrategyFineTuneW][e]))
		}
		out += fmt.Sprintf("test dataset %d\n%s", set.TestDataset, t)
	}
	return out
}

// BAlwaysFirst reports whether FineTune-B's first-epoch loss beats
// Retrain's on every test dataset — the headline shape of Figs. 13–14
// (the best recommendation starts near convergence).
func (r *CurvesResult) BAlwaysFirst() bool {
	for _, set := range r.Sets {
		if set.Curves[StrategyFineTuneB][0] >= set.Curves[StrategyRetrain][0] {
			return false
		}
	}
	return true
}

// curveRunner abstracts the app-specific pieces of a curve-set run.
type curveRunner struct {
	zoo      *fairms.Zoo
	newModel func(state *nn.StateDict) (*nn.Model, error)
	tensors  func(i int) (x, y *tensor.Tensor) // training-ready tensors
	pdfOf    func(i int) (stats.PDF, error)
}

// LearningCurves builds the zoo and runs the four strategies per test
// dataset.
func LearningCurves(cfg CurvesConfig) (*CurvesResult, error) {
	cfg.defaults()
	total := cfg.ZooModels + cfg.TestDatasets
	var r curveRunner

	switch cfg.App {
	case AppBragg:
		env, err := newBraggEnv(braggEnvConfig{
			patch:       cfg.Patch,
			numDatasets: total,
			perDataset:  cfg.PerDataset,
			driftAt:     cfg.ZooModels / 2,
			embedOn:     3,
			zooOn:       cfg.ZooModels,
			seed:        cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		r = curveRunner{
			zoo: env.zoo,
			newModel: func(state *nn.StateDict) (*nn.Model, error) {
				m, err := env.braggModel(state)
				if err != nil {
					return nil, err
				}
				return m.Net, nil
			},
			tensors: func(i int) (*tensor.Tensor, *tensor.Tensor) {
				x, y := env.datasetTensors(i)
				helper, _ := env.braggModel(nil)
				return x, helper.Targets(y)
			},
			pdfOf: func(i int) (stats.PDF, error) {
				x, _ := env.datasetTensors(i)
				return env.ds.DatasetPDF(x)
			},
		}
	case AppCookie:
		// Span the historical trajectory (see ErrVsJSD's cookie note).
		env, err := newCookieEnv(cookieEnvConfig{
			size:        cfg.Patch,
			numDatasets: total,
			perDataset:  cfg.PerDataset,
			embedOn:     cfg.ZooModels,
			zooOn:       cfg.ZooModels,
			seed:        cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		r = curveRunner{
			zoo: env.zoo,
			newModel: func(state *nn.StateDict) (*nn.Model, error) {
				m, err := env.cookieModel(state)
				if err != nil {
					return nil, err
				}
				return m.Net, nil
			},
			tensors: func(i int) (*tensor.Tensor, *tensor.Tensor) {
				x, y := env.datasetTensors(i)
				helper, _ := env.cookieModel(nil)
				return scaleCookie(x), helper.Targets(y)
			},
			pdfOf: func(i int) (stats.PDF, error) {
				x, _ := env.datasetTensors(i)
				return env.ds.DatasetPDF(x)
			},
		}
	default:
		return nil, fmt.Errorf("experiments: unknown app %q", cfg.App)
	}

	res := &CurvesResult{App: cfg.App}
	for tdi := cfg.ZooModels; tdi < total; tdi++ {
		set, err := r.runCurveSet(tdi, cfg)
		if err != nil {
			return nil, err
		}
		res.Sets = append(res.Sets, *set)
	}
	return res, nil
}

// runCurveSet executes the four strategies on one test dataset.
func (r *curveRunner) runCurveSet(tdi int, cfg CurvesConfig) (*CurveSet, error) {
	pdf, err := r.pdfOf(tdi)
	if err != nil {
		return nil, err
	}
	best, median, worst, err := r.zoo.BestMedianWorst(pdf)
	if err != nil {
		return nil, err
	}
	x, y := r.tensors(tdi)
	trainX, trainY, valX, valY := holdout(x, y, 0.25, cfg.Seed+int64(tdi))

	run := func(state *nn.StateDict, lr float64) ([]float64, error) {
		model, err := r.newModel(state)
		if err != nil {
			return nil, err
		}
		opt := nn.NewAdam(model.Params(), lr)
		res := nn.Fit(model, opt, trainX, trainY, valX, valY,
			nn.TrainConfig{Epochs: cfg.Epochs, BatchSize: 16, Seed: cfg.Seed + 50})
		return res.ValLoss, nil
	}

	set := &CurveSet{TestDataset: tdi, Curves: make(map[string][]float64, 4)}
	if set.Curves[StrategyRetrain], err = run(nil, cfg.ScratchLR); err != nil {
		return nil, err
	}
	if set.Curves[StrategyFineTuneB], err = run(best.Record.State, cfg.FineTuneLR); err != nil {
		return nil, err
	}
	if set.Curves[StrategyFineTuneM], err = run(median.Record.State, cfg.FineTuneLR); err != nil {
		return nil, err
	}
	if set.Curves[StrategyFineTuneW], err = run(worst.Record.State, cfg.FineTuneLR); err != nil {
		return nil, err
	}
	return set, nil
}
