package experiments

import (
	"fmt"

	"fairdms/internal/models"
	"fairdms/internal/nn"
	"fairdms/internal/stats"
	"fairdms/internal/uq"
)

// Fig02Config sizes the model-degradation experiment (paper Fig. 2):
// a BraggNN trained on the early phase of a drifting HEDM sequence is
// evaluated on every subsequent dataset, tracking prediction error and
// MC-dropout uncertainty.
type Fig02Config struct {
	Patch       int
	NumDatasets int
	PerDataset  int
	DriftAt     int
	TrainOn     int // datasets used for training (the "up to scan 402" phase)
	TrainEpochs int
	MCSamples   int
	Seed        int64
}

func (c *Fig02Config) defaults() {
	if c.Patch <= 0 {
		c.Patch = 9
	}
	if c.NumDatasets <= 0 {
		c.NumDatasets = 16
	}
	if c.PerDataset <= 0 {
		c.PerDataset = 50
	}
	if c.DriftAt <= 0 {
		c.DriftAt = c.NumDatasets * 6 / 10
	}
	if c.TrainOn <= 0 {
		c.TrainOn = 3
	}
	if c.TrainEpochs <= 0 {
		c.TrainEpochs = 30
	}
	if c.MCSamples <= 0 {
		c.MCSamples = 15
	}
}

// Fig02Point is one dataset's evaluation.
type Fig02Point struct {
	Dataset     int
	ErrorPx     float64
	Uncertainty float64
}

// Fig02Result is the degradation series.
type Fig02Result struct {
	Points  []Fig02Point
	DriftAt int
}

// Table renders the Fig. 2 series.
func (r *Fig02Result) Table() string {
	t := &table{header: []string{"dataset", "error(px)", "uncertainty", "phase"}}
	for _, p := range r.Points {
		phase := "pre-drift"
		if p.Dataset >= r.DriftAt {
			phase = "POST-DRIFT"
		}
		t.add(fmt.Sprintf("%d", p.Dataset), f3(p.ErrorPx), f4(p.Uncertainty), phase)
	}
	return "Fig. 2 — model degradation over a drifting scan sequence\n" + t.String()
}

// ErrorRise returns mean post-drift error over mean pre-drift error — the
// degradation factor the figure visualizes.
func (r *Fig02Result) ErrorRise() float64 {
	var pre, post []float64
	for _, p := range r.Points {
		if p.Dataset < r.DriftAt {
			pre = append(pre, p.ErrorPx)
		} else {
			post = append(post, p.ErrorPx)
		}
	}
	return stats.Mean(post) / stats.Mean(pre)
}

// UncertaintyRise returns the analogous factor for MC-dropout uncertainty.
func (r *Fig02Result) UncertaintyRise() float64 {
	var pre, post []float64
	for _, p := range r.Points {
		if p.Dataset < r.DriftAt {
			pre = append(pre, p.Uncertainty)
		} else {
			post = append(post, p.Uncertainty)
		}
	}
	return stats.Mean(post) / stats.Mean(pre)
}

// Fig02 trains a BraggNN on the pre-drift phase and evaluates error +
// uncertainty across the full sequence.
func Fig02(cfg Fig02Config) (*Fig02Result, error) {
	cfg.defaults()
	env, err := newBraggEnv(braggEnvConfig{
		patch:       cfg.Patch,
		numDatasets: cfg.NumDatasets,
		perDataset:  cfg.PerDataset,
		driftAt:     cfg.DriftAt,
		embedOn:     cfg.TrainOn,
		seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	// Train on the early phase.
	m := models.NewBraggNN(env.rng, cfg.Patch)
	var xs, ys = env.datasetTensors(0)
	for i := 1; i < cfg.TrainOn; i++ {
		x2, y2 := env.datasetTensors(i)
		xs = vconcat(xs, x2)
		ys = vconcat(ys, y2)
	}
	opt := nn.NewAdam(m.Net.Params(), 2e-3)
	nn.Fit(m.Net, opt, xs, m.Targets(ys), xs, m.Targets(ys),
		nn.TrainConfig{Epochs: cfg.TrainEpochs, BatchSize: 32, Seed: cfg.Seed + 10})

	res := &Fig02Result{DriftAt: cfg.DriftAt}
	for i := 0; i < cfg.NumDatasets; i++ {
		x, y := env.datasetTensors(i)
		errPx := m.MeanErrorPx(x, y)
		unc, err := uq.MeanUncertainty(m.Net, x, cfg.MCSamples)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig02Point{Dataset: i, ErrorPx: errPx, Uncertainty: unc})
	}
	return res, nil
}
