package experiments

import (
	"fmt"

	"fairdms/internal/stats"
)

// App selects the benchmark application for cross-app experiments.
type App string

// The two paper applications.
const (
	AppBragg  App = "bragg"  // BraggNN (Figs. 10, 14)
	AppCookie App = "cookie" // CookieNetAE (Figs. 11, 13)
)

// ErrJSDConfig sizes the model-service validation (Figs. 10–11): for every
// zoo model, its prediction error on a test dataset is plotted against the
// JSD between the model's training data and the test data.
type ErrJSDConfig struct {
	App          App
	ZooModels    int // models in the zoo (each trained on one drift stage)
	TestDatasets int // how many held-out datasets to evaluate (paper: 4)
	PerDataset   int
	Patch        int // bragg patch / cookie size
	Seed         int64
}

func (c *ErrJSDConfig) defaults() {
	if c.App == "" {
		c.App = AppBragg
	}
	if c.ZooModels <= 0 {
		c.ZooModels = 6
	}
	if c.TestDatasets <= 0 {
		c.TestDatasets = 4
	}
	// Zoo models must generalize within their regime for the error-vs-JSD
	// relation to be visible above training noise; ~100+ samples per
	// dataset achieves that at the quick patch size.
	if c.PerDataset <= 0 {
		c.PerDataset = 120
	}
}

// ErrJSDPoint is one (model, test-dataset) pair.
type ErrJSDPoint struct {
	ModelID string
	JSD     float64
	Error   float64 // px error for Bragg, MSE for Cookie
}

// ErrJSDSeries is the scatter for one test dataset.
type ErrJSDSeries struct {
	TestDataset int
	Points      []ErrJSDPoint
	Correlation float64 // Pearson r between JSD and error
}

// ErrJSDResult covers all test datasets.
type ErrJSDResult struct {
	App    App
	Series []ErrJSDSeries
}

// Table renders the scatter data per test dataset.
func (r *ErrJSDResult) Table() string {
	out := fmt.Sprintf("Figs. 10/11 — prediction error vs dataset JSD (%s)\n", r.App)
	for _, s := range r.Series {
		t := &table{header: []string{"model", "jsd", "error"}}
		for _, p := range s.Points {
			t.add(p.ModelID, f4(p.JSD), f4(p.Error))
		}
		out += fmt.Sprintf("test dataset %d (pearson r = %.3f)\n%s", s.TestDataset, s.Correlation, t)
	}
	return out
}

// MeanCorrelation averages the per-dataset Pearson correlations — the
// figure's qualitative claim is that this is clearly positive.
func (r *ErrJSDResult) MeanCorrelation() float64 {
	var rs []float64
	for _, s := range r.Series {
		rs = append(rs, s.Correlation)
	}
	return stats.Mean(rs)
}

// BestIsAccurate reports the fraction of test datasets where the
// JSD-closest model is also within the top-2 most accurate — the property
// that makes fairMS's ranking useful.
func (r *ErrJSDResult) BestIsAccurate() float64 {
	hits := 0
	for _, s := range r.Series {
		bestJSD, bestErr := 0, 0
		for i, p := range s.Points {
			if p.JSD < s.Points[bestJSD].JSD {
				bestJSD = i
			}
			if p.Error < s.Points[bestErr].Error {
				bestErr = i
			}
		}
		// Rank of the JSD-best model by error.
		rank := 0
		for _, p := range s.Points {
			if p.Error < s.Points[bestJSD].Error {
				rank++
			}
		}
		if rank <= 1 {
			hits++
		}
	}
	return float64(hits) / float64(len(r.Series))
}

// ErrVsJSD builds the drifting sequence, trains one model per early
// dataset, then scores every model against each late (held-out) dataset.
func ErrVsJSD(cfg ErrJSDConfig) (*ErrJSDResult, error) {
	cfg.defaults()
	total := cfg.ZooModels + cfg.TestDatasets
	res := &ErrJSDResult{App: cfg.App}

	switch cfg.App {
	case AppBragg:
		env, err := newBraggEnv(braggEnvConfig{
			patch:       cfg.Patch,
			numDatasets: total,
			perDataset:  cfg.PerDataset,
			driftAt:     cfg.ZooModels / 2, // bimodal: jump mid-zoo (paper Fig. 10)
			embedOn:     3,
			zooOn:       cfg.ZooModels,
			seed:        cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		for tdi := cfg.ZooModels; tdi < total; tdi++ {
			x, y := env.datasetTensors(tdi)
			pdf, err := env.ds.DatasetPDF(x)
			if err != nil {
				return nil, err
			}
			series := ErrJSDSeries{TestDataset: tdi}
			var jsds, errs []float64
			for _, id := range env.zoo.IDs() {
				rec, err := env.zoo.Get(id)
				if err != nil {
					return nil, err
				}
				m, err := env.braggModel(rec.State)
				if err != nil {
					return nil, err
				}
				p := ErrJSDPoint{
					ModelID: id,
					JSD:     stats.JSDivergence(pdf, rec.TrainPDF),
					Error:   m.MeanErrorPx(x, y),
				}
				series.Points = append(series.Points, p)
				jsds = append(jsds, p.JSD)
				errs = append(errs, p.Error)
			}
			series.Correlation = stats.PearsonCorrelation(jsds, errs)
			res.Series = append(res.Series, series)
		}
	case AppCookie:
		// The CookieBox drift is gradual, so the embedding + clustering
		// must span the full historical trajectory or every dataset's PDF
		// saturates onto the early clusters and JSD loses resolution.
		env, err := newCookieEnv(cookieEnvConfig{
			size:        cfg.Patch,
			numDatasets: total,
			perDataset:  cfg.PerDataset,
			embedOn:     cfg.ZooModels,
			zooOn:       cfg.ZooModels,
			seed:        cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		for tdi := cfg.ZooModels; tdi < total; tdi++ {
			rawX, y := env.datasetTensors(tdi)
			pdf, err := env.ds.DatasetPDF(rawX)
			if err != nil {
				return nil, err
			}
			series := ErrJSDSeries{TestDataset: tdi}
			var jsds, errs []float64
			for _, id := range env.zoo.IDs() {
				rec, err := env.zoo.Get(id)
				if err != nil {
					return nil, err
				}
				m, err := env.cookieModel(rec.State)
				if err != nil {
					return nil, err
				}
				p := ErrJSDPoint{
					ModelID: id,
					JSD:     stats.JSDivergence(pdf, rec.TrainPDF),
					Error:   m.Loss(scaleCookie(rawX), y),
				}
				series.Points = append(series.Points, p)
				jsds = append(jsds, p.JSD)
				errs = append(errs, p.Error)
			}
			series.Correlation = stats.PearsonCorrelation(jsds, errs)
			res.Series = append(res.Series, series)
		}
	default:
		return nil, fmt.Errorf("experiments: unknown app %q", cfg.App)
	}
	return res, nil
}
