package experiments

import (
	"fmt"

	"fairdms/internal/codec"
	"fairdms/internal/datagen"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/fairds"
)

// Fig16Config sizes the uncertainty-trigger experiment (paper Fig. 16 /
// §III-I): a sequence of drifting datasets is monitored with fuzzy-k-means
// certainty. The "Before Trigger" series keeps the embedding/clustering
// models trained on the first warmup datasets; the "After Trigger" series
// refreshes them (system plane) whenever certainty drops below the
// trigger level.
type Fig16Config struct {
	Patch         int
	NumDatasets   int // paper: 36
	PerDataset    int
	DriftAt       int     // paper observes the collapse at dataset 23
	Warmup        int     // datasets used for the initial models (paper: 5)
	Clusters      int     // paper: 15
	MembershipCut float64 // paper: 0.5
	Trigger       float64 // paper: 0.8
	RefreshWindow int     // recent datasets used when refreshing
	Fuzzifier     float64 // fuzzy c-means exponent; 1.4 calibrates our
	// embedding space to the paper's ~97% familiar-data certainty
	EmbedEpochs int // BYOL training epochs per (re)fit
	Seed        int64
}

func (c *Fig16Config) defaults() {
	if c.Patch <= 0 {
		c.Patch = 9
	}
	if c.NumDatasets <= 0 {
		c.NumDatasets = 36
	}
	if c.PerDataset <= 0 {
		c.PerDataset = 40
	}
	if c.DriftAt <= 0 {
		c.DriftAt = 23
	}
	if c.Warmup <= 0 {
		c.Warmup = 5
	}
	if c.Clusters <= 0 {
		c.Clusters = 15
	}
	if c.MembershipCut <= 0 {
		c.MembershipCut = 0.5
	}
	if c.Trigger <= 0 {
		c.Trigger = 0.8
	}
	if c.RefreshWindow <= 0 {
		c.RefreshWindow = 3
	}
	if c.Fuzzifier <= 1 {
		c.Fuzzifier = 1.4
	}
	if c.EmbedEpochs <= 0 {
		c.EmbedEpochs = 30
	}
}

// Fig16Result holds the two certainty series.
type Fig16Result struct {
	Before    []float64 // static models
	After     []float64 // with uncertainty-triggered refresh
	Triggers  []int     // dataset indices where a refresh fired
	DriftAt   int
	TriggerAt float64
}

// Table renders the Fig. 16 series.
func (r *Fig16Result) Table() string {
	t := &table{header: []string{"dataset", "before(%)", "after(%)", "event"}}
	trig := map[int]bool{}
	for _, i := range r.Triggers {
		trig[i] = true
	}
	for i := range r.Before {
		ev := ""
		if trig[i] {
			ev = "REFRESH"
		}
		if i == r.DriftAt {
			ev += " drift"
		}
		t.add(fmt.Sprintf("%d", i), f3(100*r.Before[i]), f3(100*r.After[i]), ev)
	}
	return fmt.Sprintf("Fig. 16 — clustering certainty without vs with the %.0f%% trigger\n%s", 100*r.TriggerAt, t)
}

// MinAfterTrigger returns the lowest post-warmup certainty of the
// refreshed series — the paper's claim is that it stays high.
func (r *Fig16Result) MinAfterTrigger() float64 {
	lo := 1.0
	for i, v := range r.After {
		// Certainty is allowed to dip at the trigger dataset itself; the
		// refresh restores it afterwards.
		if i < len(r.Before) && contains(r.Triggers, i) {
			continue
		}
		if v < lo {
			lo = v
		}
	}
	return lo
}

// MinBeforePostDrift returns the lowest post-drift certainty of the static
// series — the collapse the trigger mechanism exists to catch.
func (r *Fig16Result) MinBeforePostDrift() float64 {
	lo := 1.0
	for i := r.DriftAt; i < len(r.Before); i++ {
		if r.Before[i] < lo {
			lo = r.Before[i]
		}
	}
	return lo
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// fig16Pipeline bundles an embedder + fairDS refreshed on demand.
type fig16Pipeline struct {
	patch     int
	k         int
	fuzzifier float64
	epochs    int
	seed      int64
	ds        *fairds.Service
}

// fitOn (re)builds the embedder and clustering on the given datasets.
func (p *fig16Pipeline) fitOn(datasets [][]*codec.Sample) error {
	var all []*codec.Sample
	for _, d := range datasets {
		all = append(all, d...)
	}
	x, _ := collate(all)
	rng := randFor(p.seed)
	aug := embed.ImageAugmenter{H: p.patch, W: p.patch, Noise: 0.1, ScaleRange: 0.1}
	byol := embed.NewBYOL(rng, x.Dim(1), 64, 8, aug.View, 0.95)
	byol.Train(x, embed.TrainConfig{Epochs: p.epochs, BatchSize: 32, LR: 2e-3, Seed: p.seed + 1})

	store := docstore.NewStore().Collection("fig16")
	ds, err := fairds.New(byol, store, fairds.Config{Seed: p.seed + 2, Fuzzifier: p.fuzzifier})
	if err != nil {
		return err
	}
	if err := ds.FitClustersK(x, p.k); err != nil {
		return err
	}
	p.ds = ds
	return nil
}

// Fig16 runs both monitoring series over the drifting sequence.
func Fig16(cfg Fig16Config) (*Fig16Result, error) {
	cfg.defaults()
	schedule := datagen.DefaultBraggDrift(cfg.DriftAt)
	schedule.Base.Patch = cfg.Patch
	seq := schedule.BraggExperiment(cfg.Seed, cfg.NumDatasets, cfg.PerDataset)

	res := &Fig16Result{DriftAt: cfg.DriftAt, TriggerAt: cfg.Trigger}

	// Before: models fixed after warmup.
	static := &fig16Pipeline{
		patch: cfg.Patch, k: cfg.Clusters,
		fuzzifier: cfg.Fuzzifier, epochs: cfg.EmbedEpochs, seed: cfg.Seed + 10,
	}
	if err := static.fitOn(seq[:cfg.Warmup]); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.NumDatasets; i++ {
		x, _ := collate(seq[i])
		c, err := static.ds.Certainty(x, cfg.MembershipCut)
		if err != nil {
			return nil, err
		}
		res.Before = append(res.Before, c)
	}

	// After: refresh on trigger using the recent window.
	dynamic := &fig16Pipeline{
		patch: cfg.Patch, k: cfg.Clusters,
		fuzzifier: cfg.Fuzzifier, epochs: cfg.EmbedEpochs, seed: cfg.Seed + 20,
	}
	if err := dynamic.fitOn(seq[:cfg.Warmup]); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.NumDatasets; i++ {
		x, _ := collate(seq[i])
		c, err := dynamic.ds.Certainty(x, cfg.MembershipCut)
		if err != nil {
			return nil, err
		}
		if c < cfg.Trigger {
			// System plane: retrain embedding + clustering on the recent
			// window including this dataset, then remeasure.
			lo := i - cfg.RefreshWindow + 1
			if lo < 0 {
				lo = 0
			}
			dynamic.seed += 100 // fresh weights per refresh
			if err := dynamic.fitOn(seq[lo : i+1]); err != nil {
				return nil, err
			}
			res.Triggers = append(res.Triggers, i)
			if c, err = dynamic.ds.Certainty(x, cfg.MembershipCut); err != nil {
				return nil, err
			}
		}
		res.After = append(res.After, c)
	}
	return res, nil
}
