package experiments

import (
	"fmt"
	"math/rand"

	"fairdms/internal/codec"
	"fairdms/internal/datagen"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/fairds"
	"fairdms/internal/fairms"
	"fairdms/internal/models"
	"fairdms/internal/nn"
	"fairdms/internal/stats"
	"fairdms/internal/tensor"
)

// braggEnv is the shared scaffold for the Bragg-based experiments: a
// drifting scan sequence, a BYOL embedder trained on the early phase (the
// paper's embedding choice for Bragg data, §IV), a fitted fairDS over a
// local docstore, and a zoo with one BraggNN per historical dataset.
type braggEnv struct {
	patch    int
	schedule datagen.BraggDriftSchedule
	seq      [][]*codec.Sample
	ds       *fairds.Service
	zoo      *fairms.Zoo
	rng      *rand.Rand
}

// braggEnvConfig sizes the scaffold.
type braggEnvConfig struct {
	patch       int // Bragg patch size (9 = quick, 15 = paper)
	numDatasets int
	perDataset  int
	driftAt     int // dataset index of the deformation event
	embedOn     int // first N datasets train the embedder + clusters
	k           int // cluster count (0 = elbow selection)
	zooOn       int // first N datasets contribute zoo models (0 = none)
	zooEpochs   int
	seed        int64
}

func (c *braggEnvConfig) defaults() {
	if c.patch <= 0 {
		c.patch = 9
	}
	if c.numDatasets <= 0 {
		c.numDatasets = 12
	}
	if c.perDataset <= 0 {
		c.perDataset = 60
	}
	if c.driftAt <= 0 {
		c.driftAt = (c.numDatasets * 6) / 10
	}
	if c.embedOn <= 0 {
		c.embedOn = 3
	}
	if c.zooEpochs <= 0 {
		c.zooEpochs = 40
	}
}

// newBraggEnv builds the scaffold. All historical datasets are ingested
// into the store with their ground-truth labels.
func newBraggEnv(cfg braggEnvConfig) (*braggEnv, error) {
	cfg.defaults()
	schedule := datagen.DefaultBraggDrift(cfg.driftAt)
	schedule.Base.Patch = cfg.patch
	// The deformation jump scales with the patch so post-drift peaks stay
	// resolvable inside small quick-run patches (the paper's 15×15 patch
	// pairs with its absolute jump; 0.1×patch reproduces that ratio).
	schedule.JumpWidth = 0.1 * float64(cfg.patch)
	seq := schedule.BraggExperiment(cfg.seed, cfg.numDatasets, cfg.perDataset)
	rng := rand.New(rand.NewSource(cfg.seed + 1))

	// Embedder: BYOL with physics-inspired augmentations, trained on the
	// early phase (system plane).
	var early []*codec.Sample
	for i := 0; i < cfg.embedOn && i < len(seq); i++ {
		early = append(early, seq[i]...)
	}
	ex, _ := collate(early)
	aug := embed.ImageAugmenter{H: cfg.patch, W: cfg.patch, Noise: 0.1, ScaleRange: 0.1}
	byol := embed.NewBYOL(rng, ex.Dim(1), 64, 8, aug.View, 0.95)
	byol.Train(ex, embed.TrainConfig{Epochs: 15, BatchSize: 32, LR: 2e-3, Seed: cfg.seed + 2})

	store := docstore.NewStore().Collection("bragg")
	ds, err := fairds.New(byol, store, fairds.Config{Seed: cfg.seed + 3})
	if err != nil {
		return nil, err
	}
	if cfg.k > 0 {
		err = ds.FitClustersK(ex, cfg.k)
	} else {
		err = ds.FitClusters(ex)
	}
	if err != nil {
		return nil, err
	}
	// Ingest all historical datasets with labels.
	for i, d := range seq {
		if _, err := ds.IngestLabeled(d, fmt.Sprintf("scan-%03d", i)); err != nil {
			return nil, err
		}
	}

	env := &braggEnv{patch: cfg.patch, schedule: schedule, seq: seq, ds: ds, zoo: fairms.NewZoo(), rng: rng}
	for i := 0; i < cfg.zooOn && i < len(seq); i++ {
		if err := env.addZooModel(i, cfg.zooEpochs); err != nil {
			return nil, err
		}
	}
	return env, nil
}

// addZooModel trains a BraggNN on dataset i and registers it. Batch 16
// gives enough optimizer steps to converge on modest dataset sizes.
func (e *braggEnv) addZooModel(i, epochs int) error {
	m := models.NewBraggNN(e.rng, e.patch)
	x, y := collate(e.seq[i])
	opt := nn.NewAdam(m.Net.Params(), 2e-3)
	nn.Fit(m.Net, opt, x, m.Targets(y), x, m.Targets(y),
		nn.TrainConfig{Epochs: epochs, BatchSize: 16, Seed: int64(100 + i)})
	pdf, err := e.ds.DatasetPDF(x)
	if err != nil {
		return err
	}
	return e.zoo.Add(fmt.Sprintf("braggnn-%03d", i), m.Net.State(), pdf, map[string]string{"dataset": fmt.Sprintf("%d", i)})
}

// braggModel wraps a zoo state into a usable BraggNN.
func (e *braggEnv) braggModel(state *nn.StateDict) (*models.BraggNN, error) {
	m := models.NewBraggNN(e.rng, e.patch)
	if state != nil {
		if err := m.Net.LoadState(state); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// datasetTensors returns dataset i as (x, labels-in-pixels).
func (e *braggEnv) datasetTensors(i int) (*tensor.Tensor, *tensor.Tensor) {
	return collate(e.seq[i])
}

// cookieEnv is the analogous scaffold for CookieNetAE experiments: a
// gradually drifting CookieBox sequence with an autoencoder embedder (the
// paper's successful choice for CookieBox data).
type cookieEnv struct {
	size int
	seq  [][]*codec.Sample
	ds   *fairds.Service
	zoo  *fairms.Zoo
	rng  *rand.Rand
}

type cookieEnvConfig struct {
	size        int // image size (16 = quick; paper is 128)
	numDatasets int
	perDataset  int
	embedOn     int
	k           int
	zooOn       int
	zooEpochs   int
	seed        int64
}

func (c *cookieEnvConfig) defaults() {
	if c.size <= 0 {
		c.size = 16
	}
	if c.numDatasets <= 0 {
		c.numDatasets = 10
	}
	if c.perDataset <= 0 {
		c.perDataset = 40
	}
	if c.embedOn <= 0 {
		c.embedOn = 3
	}
	if c.zooEpochs <= 0 {
		c.zooEpochs = 20
	}
}

func newCookieEnv(cfg cookieEnvConfig) (*cookieEnv, error) {
	cfg.defaults()
	drift := datagen.DefaultCookieDrift()
	drift.Base.Size = cfg.size
	seq := drift.CookieExperiment(cfg.seed, cfg.numDatasets, cfg.perDataset)
	rng := rand.New(rand.NewSource(cfg.seed + 1))

	var early []*codec.Sample
	for i := 0; i < cfg.embedOn && i < len(seq); i++ {
		early = append(early, seq[i]...)
	}
	ex, _ := collate(early)
	// The autoencoder trains on [0,1]-scaled counts; the Scaled wrapper
	// keeps fairDS's raw-count interface while avoiding Tanh saturation.
	ae := embed.NewAutoencoder(rng, ex.Dim(1), 64, 8)
	ae.Train(tensor.Scale(ex, 1.0/255), embed.TrainConfig{Epochs: 20, BatchSize: 32, LR: 1e-3, Seed: cfg.seed + 2})
	embedder := embed.Scaled{E: ae, Factor: 1.0 / 255}

	store := docstore.NewStore().Collection("cookie")
	ds, err := fairds.New(embedder, store, fairds.Config{Seed: cfg.seed + 3})
	if err != nil {
		return nil, err
	}
	if cfg.k > 0 {
		err = ds.FitClustersK(ex, cfg.k)
	} else {
		err = ds.FitClusters(ex)
	}
	if err != nil {
		return nil, err
	}
	for i, d := range seq {
		if _, err := ds.IngestLabeled(d, fmt.Sprintf("run-%03d", i)); err != nil {
			return nil, err
		}
	}

	env := &cookieEnv{size: cfg.size, seq: seq, ds: ds, zoo: fairms.NewZoo(), rng: rng}
	for i := 0; i < cfg.zooOn && i < len(seq); i++ {
		if err := env.addZooModel(i, cfg.zooEpochs); err != nil {
			return nil, err
		}
	}
	return env, nil
}

// addZooModel trains a CookieNetAE on dataset i and registers it.
func (e *cookieEnv) addZooModel(i, epochs int) error {
	m := models.NewCookieNetAE(e.rng, e.size)
	x, y := collate(e.seq[i])
	x = models.ScaleInputs(x)
	opt := nn.NewAdam(m.Net.Params(), 1e-3)
	nn.Fit(m.Net, opt, x, m.Targets(y), x, m.Targets(y),
		nn.TrainConfig{Epochs: epochs, BatchSize: 16, Seed: int64(200 + i)})
	// PDF computed over raw (unscaled) inputs, like ingestion.
	rawX, _ := collate(e.seq[i])
	pdf, err := e.ds.DatasetPDF(rawX)
	if err != nil {
		return err
	}
	return e.zoo.Add(fmt.Sprintf("cookienetae-%03d", i), m.Net.State(), pdf, map[string]string{"dataset": fmt.Sprintf("%d", i)})
}

func (e *cookieEnv) cookieModel(state *nn.StateDict) (*models.CookieNetAE, error) {
	m := models.NewCookieNetAE(e.rng, e.size)
	if state != nil {
		if err := m.Net.LoadState(state); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// datasetTensors returns dataset i as (raw x, clean-density labels).
func (e *cookieEnv) datasetTensors(i int) (*tensor.Tensor, *tensor.Tensor) {
	return collate(e.seq[i])
}

// scaleCookie maps 8-bit detector counts into [0, 1].
func scaleCookie(x *tensor.Tensor) *tensor.Tensor { return models.ScaleInputs(x) }

// meanPDF is a diagnostic helper returning the average PDF across datasets.
func meanPDF(pdfs []stats.PDF) stats.PDF {
	if len(pdfs) == 0 {
		return nil
	}
	out := make(stats.PDF, len(pdfs[0]))
	for _, p := range pdfs {
		for i, v := range p {
			out[i] += v
		}
	}
	return out.Normalize()
}
