package experiments

import (
	"strings"
	"testing"
	"time"

	"fairdms/internal/tensor"
)

func TestFig02DegradationShape(t *testing.T) {
	res, err := Fig02(Fig02Config{
		NumDatasets: 10, PerDataset: 40, DriftAt: 6, TrainOn: 3,
		TrainEpochs: 25, MCSamples: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 10 {
		t.Fatalf("got %d points", len(res.Points))
	}
	// Paper shape: error degrades sharply after the drift.
	if rise := res.ErrorRise(); rise < 1.3 {
		t.Fatalf("post-drift error rise %.2f×, want >= 1.3×", rise)
	}
	// Uncertainty rises alongside error (right axis of Fig. 2).
	if rise := res.UncertaintyRise(); rise <= 1.0 {
		t.Fatalf("post-drift uncertainty rise %.2f×, want > 1×", rise)
	}
	if !strings.Contains(res.Table(), "POST-DRIFT") {
		t.Fatal("table missing drift annotation")
	}
}

func TestStorageSweepShapes(t *testing.T) {
	res, err := StorageSweep(StorageConfig{
		Kind: StorageBragg, Samples: 96,
		BatchSizes: []int{8, 32}, Workers: []int{1, 8},
		FixedWorkers: 4, FixedBatch: 16,
		Dir: t.TempDir(), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("got %d series", len(res.Series))
	}
	for _, s := range res.Series {
		// (a) Larger batches never make the epoch dramatically slower
		// (per-batch overhead amortizes). Wall-clock epochs are noisy
		// under parallel-test CPU contention, so the margin is loose;
		// the worker sweep below carries the precise shape claim.
		if s.EpochTime[1] > s.EpochTime[0]*5 {
			t.Fatalf("%s: epoch time grew sharply with batch size: %v -> %v",
				s.Backend, s.EpochTime[0], s.EpochTime[1])
		}
		if len(s.IOPerIter) != 2 {
			t.Fatalf("%s: missing worker sweep", s.Backend)
		}
	}
	// (b) For the remote store backends, more workers reduce per-iteration
	// time (parallel fetch hides round trips) — the paper's Fig. 8b shape.
	for _, s := range res.Series {
		if s.Backend == "nfs" {
			continue
		}
		if s.IOPerIter[1] >= s.IOPerIter[0] {
			t.Fatalf("%s: workers did not reduce I/O time: %v -> %v",
				s.Backend, s.IOPerIter[0], s.IOPerIter[1])
		}
	}
	if !strings.Contains(res.Table(), "epoch-time") {
		t.Fatal("table malformed")
	}
}

func TestFig09LabelReuseQuality(t *testing.T) {
	res, err := Fig09(Fig09Config{
		Historical: 160, NewSamples: 60, TrainEpochs: 20, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Some labels must be reused for the experiment to be meaningful.
	if res.Reused == 0 {
		t.Fatal("no labels reused — threshold calibration broken")
	}
	// Paper shape: the two models perform equivalently (P50 within 2×).
	if res.FairP50 > 2*res.ConvP50+0.2 {
		t.Fatalf("fairDS-labeled model much worse: P50 %.3f vs %.3f", res.FairP50, res.ConvP50)
	}
	// And labeling is cheaper (paper: hour → minute). Uncontended runs
	// measure ~8× here; under parallel-test CPU contention the wall-clock
	// gap compresses, so the test only requires a clear win — the bench
	// (BenchmarkFig09) reports the full factor.
	if res.Speedup() < 1.05 {
		t.Fatalf("labeling speedup %.2f×, want > 1×", res.Speedup())
	}
	if res.ConvP50 <= 0 || res.ConvP95 < res.ConvP75 || res.ConvP75 < res.ConvP50 {
		t.Fatalf("percentiles inconsistent: %+v", res)
	}
}

func TestErrVsJSDBraggPositiveCorrelation(t *testing.T) {
	res, err := ErrVsJSD(ErrJSDConfig{
		App: AppBragg, ZooModels: 6, TestDatasets: 2, PerDataset: 120, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("got %d series", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 6 {
			t.Fatalf("series has %d points", len(s.Points))
		}
	}
	// Paper shape: error and JSD positively correlated.
	if r := res.MeanCorrelation(); r < 0.2 {
		t.Fatalf("mean correlation %.3f, want clearly positive", r)
	}
}

func TestErrVsJSDCookieMonotone(t *testing.T) {
	res, err := ErrVsJSD(ErrJSDConfig{
		App: AppCookie, ZooModels: 5, TestDatasets: 2, PerDataset: 30, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 11 is near-monotone thanks to the gradual drift.
	if r := res.MeanCorrelation(); r < 0.3 {
		t.Fatalf("cookie mean correlation %.3f, want strongly positive", r)
	}
}

func TestFig12PDFComparison(t *testing.T) {
	res, err := Fig12(Fig12Config{ZooModels: 6, PerDataset: 50, Clusters: 15, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Input) != 15 || len(res.Best) != 15 || len(res.Worst) != 15 {
		t.Fatalf("PDF lengths %d/%d/%d, want 15", len(res.Input), len(res.Best), len(res.Worst))
	}
	if err := res.Input.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper shape: best follows the input, worst diverges.
	if res.BestJSD >= res.WorstJSD {
		t.Fatalf("best JSD %.4f not below worst %.4f", res.BestJSD, res.WorstJSD)
	}
	if !strings.Contains(res.Table(), "cluster") {
		t.Fatal("table malformed")
	}
}

func TestLearningCurvesBraggShape(t *testing.T) {
	res, err := LearningCurves(CurvesConfig{
		App: AppBragg, ZooModels: 5, TestDatasets: 2, PerDataset: 40,
		Epochs: 15, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 2 {
		t.Fatalf("got %d curve sets", len(res.Sets))
	}
	for _, set := range res.Sets {
		if len(set.Curves) != 4 {
			t.Fatalf("set has %d strategies", len(set.Curves))
		}
		for s, c := range set.Curves {
			if len(c) != 15 {
				t.Fatalf("strategy %s has %d epochs", s, len(c))
			}
		}
	}
	// Paper shape: FineTune-B starts far ahead of Retrain.
	if !res.BAlwaysFirst() {
		t.Fatal("FineTune-B does not start ahead of Retrain")
	}
}

func TestFig15CaseStudyOrdering(t *testing.T) {
	res, err := Fig15(Fig15Config{
		Historical: 200, NewSamples: 80, ScanPeaks: 500_000,
		FitSamples: 6, Epochs: 40, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) != 4 {
		t.Fatalf("got %d methods", len(res.Methods))
	}
	byName := map[string]Fig15Method{}
	for _, m := range res.Methods {
		byName[m.Name] = m
	}
	// Paper shape: fairDMS fastest end-to-end; Voigt-80 slowest;
	// Voigt-1440 beats Voigt-80 by ~18×; fairDMS beats Retrain.
	if byName["fairDMS"].Total() >= byName["Retrain"].Total() {
		t.Fatalf("fairDMS (%v) not faster than Retrain (%v)",
			byName["fairDMS"].Total(), byName["Retrain"].Total())
	}
	if byName["Voigt-1440"].LabelTime >= byName["Voigt-80"].LabelTime {
		t.Fatal("Voigt-1440 labeling not faster than Voigt-80")
	}
	if byName["fairDMS"].LabelTime >= byName["Voigt-1440"].LabelTime {
		t.Fatalf("fairDS labeling (%v) not faster than Voigt-1440 (%v)",
			byName["fairDMS"].LabelTime, byName["Voigt-1440"].LabelTime)
	}
	if sp := res.Speedup("Voigt-80"); sp < 10 {
		t.Fatalf("Voigt-80 end-to-end speedup %.1f×, want large", sp)
	}
	if res.PerFitCost <= 0 {
		t.Fatal("per-fit calibration missing")
	}
}

func TestFig16TriggerRestoresCertainty(t *testing.T) {
	res, err := Fig16(Fig16Config{
		NumDatasets: 18, PerDataset: 30, DriftAt: 10, Warmup: 4,
		Clusters: 8, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Before) != 18 || len(res.After) != 18 {
		t.Fatalf("series lengths %d/%d", len(res.Before), len(res.After))
	}
	// Paper shape: the static series collapses after the drift...
	if res.MinBeforePostDrift() >= res.TriggerAt {
		t.Fatalf("static certainty never collapsed (min %.3f)", res.MinBeforePostDrift())
	}
	// ...a refresh fires...
	if len(res.Triggers) == 0 {
		t.Fatal("no refresh triggered")
	}
	// ...and the refreshed series ends healthy.
	lastAfter := res.After[len(res.After)-1]
	lastBefore := res.Before[len(res.Before)-1]
	if lastAfter <= lastBefore {
		t.Fatalf("refreshed certainty %.3f not above static %.3f at the end", lastAfter, lastBefore)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &table{header: []string{"a", "long-column"}}
	tb.add("1", "2")
	out := tb.String()
	if !strings.Contains(out, "long-column") || !strings.Contains(out, "---") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestVconcat(t *testing.T) {
	a := tensor.FromSlice([]float64{1, 2}, 1, 2)
	b := tensor.FromSlice([]float64{3, 4, 5, 6}, 2, 2)
	c := vconcat(a, b)
	if c.Dim(0) != 3 || c.At(2, 1) != 6 {
		t.Fatalf("vconcat = %v", c.Data())
	}
}

func TestHoldoutSizes(t *testing.T) {
	x := tensor.New(8, 2)
	y := tensor.New(8, 1)
	tx, ty, vx, vy := holdout(x, y, 0.25, 1)
	if tx.Dim(0) != 6 || vx.Dim(0) != 2 || ty.Dim(0) != 6 || vy.Dim(0) != 2 {
		t.Fatalf("holdout %d/%d", tx.Dim(0), vx.Dim(0))
	}
}

func TestStorageGenerateKinds(t *testing.T) {
	for _, k := range []StorageKind{StorageTomography, StorageCookieBox, StorageBragg} {
		s := generateStorageSamples(k, 3, 1)
		if len(s) != 3 {
			t.Fatalf("%s: generated %d", k, len(s))
		}
		if err := s[0].Validate(); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
	}
}

func TestSimulateComputeDuration(t *testing.T) {
	x := tensor.New(10, 4)
	start := time.Now()
	simulateCompute(x, 200*time.Microsecond)
	if time.Since(start) < 2*time.Millisecond-500*time.Microsecond {
		t.Fatal("simulated compute returned too quickly")
	}
}
