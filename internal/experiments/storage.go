package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/datagen"
	"fairdms/internal/dataloader"
	"fairdms/internal/docstore"
	"fairdms/internal/filestore"
	"fairdms/internal/tensor"
)

// StorageKind selects the dataset for a storage sweep.
type StorageKind string

// The three datasets of Figs. 6–8.
const (
	StorageTomography StorageKind = "tomography" // Fig. 6
	StorageCookieBox  StorageKind = "cookiebox"  // Fig. 7
	StorageBragg      StorageKind = "bragg"      // Fig. 8
)

// StorageConfig sizes a Figs. 6–8 style sweep.
type StorageConfig struct {
	Kind       StorageKind
	Samples    int   // dataset size (default 256)
	BatchSizes []int // default {16, 32, 64, 128}
	Workers    []int // default {1, 2, 4, 8, 16}
	// FixedWorkers is used during the batch-size sweep (paper: 50).
	FixedWorkers int
	// FixedBatch is used during the worker sweep (paper: 512).
	FixedBatch int
	// ComputePerSample models the per-sample training compute an epoch
	// overlaps with I/O (prefetch hides I/O behind it). Default 40µs.
	ComputePerSample time.Duration
	// ServerLatency adds per-request delay on the docstore server,
	// emulating the remote (100GbE) placement. Default 150µs.
	ServerLatency time.Duration
	// PoolSize caps the docstore client's connection pool. The cap is
	// hard: loader workers beyond it block until a connection frees up,
	// which is itself part of the paper's client-count ablation. Default:
	// max worker count + 2.
	PoolSize int
	Dir      string // scratch directory for the filestore ("NFS")
	Seed     int64
}

func (c *StorageConfig) defaults() {
	if c.Samples <= 0 {
		c.Samples = 256
	}
	if len(c.BatchSizes) == 0 {
		c.BatchSizes = []int{16, 32, 64, 128}
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8, 16}
	}
	if c.FixedWorkers <= 0 {
		c.FixedWorkers = 8
	}
	if c.FixedBatch <= 0 {
		c.FixedBatch = 64
	}
	if c.ComputePerSample <= 0 {
		c.ComputePerSample = 40 * time.Microsecond
	}
	if c.ServerLatency <= 0 {
		c.ServerLatency = 150 * time.Microsecond
	}
}

// StorageSeries is the measured series for one backend.
type StorageSeries struct {
	Backend   string          // "blosc", "pickle", "nfs"
	EpochTime []time.Duration // per batch size
	IOPerIter []time.Duration // per worker count
}

// StorageResult holds a full sweep.
type StorageResult struct {
	Kind       StorageKind
	BatchSizes []int
	Workers    []int
	Series     []StorageSeries
}

// Table renders the two subfigures' data.
func (r *StorageResult) Table() string {
	ta := &table{header: append([]string{"epoch-time/batch"}, intsToStrings(r.BatchSizes)...)}
	for _, s := range r.Series {
		row := []string{s.Backend}
		for _, d := range s.EpochTime {
			row = append(row, d.Round(time.Millisecond).String())
		}
		ta.add(row...)
	}
	tb := &table{header: append([]string{"io-time/workers"}, intsToStrings(r.Workers)...)}
	for _, s := range r.Series {
		row := []string{s.Backend}
		for _, d := range s.IOPerIter {
			row = append(row, d.Round(10*time.Microsecond).String())
		}
		tb.add(row...)
	}
	return fmt.Sprintf("Storage sweep (%s)\n(a) epoch time vs batch size [workers=fixed]\n%s\n(b) I/O time per iteration vs workers [batch=fixed]\n%s",
		r.Kind, ta, tb)
}

func intsToStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}

// generateStorageSamples builds the dataset for the sweep.
func generateStorageSamples(kind StorageKind, n int, seed int64) []*codec.Sample {
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case StorageTomography:
		r := datagen.DefaultTomoRegime()
		return r.Generate(rng, n)
	case StorageCookieBox:
		r := datagen.DefaultCookieRegime()
		out := make([]*codec.Sample, n)
		for i := range out {
			s := r.GenerateOne(rng)
			s.Label = nil // labels are large; the storage study reads images only
			out[i] = s
		}
		return out
	default:
		r := datagen.DefaultBraggRegime()
		return r.Generate(rng, n)
	}
}

// StorageSweep measures epoch time vs batch size and I/O time per
// iteration vs worker count for the three backends of Figs. 6–8:
// docstore+Block ("blosc"), docstore+Gob ("pickle"), filestore ("nfs").
func StorageSweep(cfg StorageConfig) (*StorageResult, error) {
	cfg.defaults()
	samples := generateStorageSamples(cfg.Kind, cfg.Samples, cfg.Seed)

	// --- Backends -----------------------------------------------------
	// Remote docstore with both codecs.
	srv := docstore.NewServer(docstore.NewStore(), docstore.ServerConfig{Latency: cfg.ServerLatency})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	pool := cfg.PoolSize
	if pool <= 0 {
		maxWorkers := cfg.FixedWorkers
		for _, w := range cfg.Workers {
			if w > maxWorkers {
				maxWorkers = w
			}
		}
		pool = maxWorkers + 2
	}
	client, err := docstore.Dial(addr, pool)
	if err != nil {
		return nil, err
	}
	defer client.Close()

	codecs := map[string]codec.Codec{"blosc": codec.Block{}, "pickle": codec.Gob{}}
	docIDs := map[string][]string{}
	for name, c := range codecs {
		var batch []docstore.Fields
		for _, s := range samples {
			raw, err := c.Encode(s)
			if err != nil {
				return nil, fmt.Errorf("encoding for %s: %w", name, err)
			}
			batch = append(batch, docstore.Fields{"payload": raw})
		}
		ids, err := client.InsertMany("train-"+name, batch)
		if err != nil {
			return nil, err
		}
		docIDs[name] = ids
	}

	// Local filestore ("NFS").
	fs, err := filestore.Create(cfg.Dir)
	if err != nil {
		return nil, err
	}
	for _, s := range samples {
		if _, err := fs.Append(s); err != nil {
			return nil, err
		}
	}

	datasets := []struct {
		name string
		ds   dataloader.Dataset
	}{
		{"blosc", &dataloader.DocDataset{Client: client, Collection: "train-blosc", IDs: docIDs["blosc"], Codec: codec.Block{}}},
		{"pickle", &dataloader.DocDataset{Client: client, Collection: "train-pickle", IDs: docIDs["pickle"], Codec: codec.Gob{}}},
		{"nfs", &dataloader.FileDataset{Store: fs}},
	}

	res := &StorageResult{Kind: cfg.Kind, BatchSizes: cfg.BatchSizes, Workers: cfg.Workers}
	for _, d := range datasets {
		series := StorageSeries{Backend: d.name}
		// (a) Epoch time vs batch size at the fixed worker count: wall
		// time for one epoch where each batch also pays a per-sample
		// compute cost, overlapped with prefetching.
		for _, bs := range cfg.BatchSizes {
			loader, err := dataloader.New(d.ds, dataloader.Config{
				BatchSize: bs, Workers: cfg.FixedWorkers, Prefetch: 4,
			})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			for r := range loader.Epoch(0) {
				if r.Err != nil {
					return nil, r.Err
				}
				simulateCompute(r.Batch.X, cfg.ComputePerSample)
			}
			series.EpochTime = append(series.EpochTime, time.Since(start))
		}
		// (b) Mean I/O time per iteration vs worker count at the fixed
		// batch size: fetch-only epochs, averaging each batch's fetch
		// duration.
		for _, w := range cfg.Workers {
			loader, err := dataloader.New(d.ds, dataloader.Config{
				BatchSize: cfg.FixedBatch, Workers: w, Prefetch: 4,
			})
			if err != nil {
				return nil, err
			}
			var total time.Duration
			start := time.Now()
			iters := 0
			for r := range loader.Epoch(1) {
				if r.Err != nil {
					return nil, r.Err
				}
				iters++
			}
			// Wall time per delivered iteration measures effective I/O
			// throughput including worker overlap.
			total = time.Since(start)
			series.IOPerIter = append(series.IOPerIter, total/time.Duration(iters))
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// simulateCompute burns a deterministic amount of CPU proportional to the
// batch's row count, standing in for the forward/backward pass the loader
// overlaps with prefetch.
func simulateCompute(x *tensor.Tensor, perSample time.Duration) {
	deadline := time.Now().Add(time.Duration(x.Dim(0)) * perSample)
	s := 0.0
	for time.Now().Before(deadline) {
		for i := 0; i < 64; i++ {
			s += float64(i) * 1.0000001
		}
	}
	_ = s
}
