package experiments

import (
	"fmt"

	"fairdms/internal/stats"
)

// Fig12Config sizes the PDF-comparison experiment (paper Fig. 12): the
// cluster distribution of an input dataset against the training-data
// distributions of the best- and worst-ranked zoo models.
type Fig12Config struct {
	Patch      int
	Clusters   int // the paper uses 15
	ZooModels  int
	PerDataset int
	Seed       int64
}

func (c *Fig12Config) defaults() {
	if c.Clusters <= 0 {
		c.Clusters = 15
	}
	if c.ZooModels <= 0 {
		c.ZooModels = 6
	}
	if c.PerDataset <= 0 {
		c.PerDataset = 60
	}
}

// Fig12Result holds the three distributions.
type Fig12Result struct {
	Input     stats.PDF
	Best      stats.PDF
	Worst     stats.PDF
	BestID    string
	WorstID   string
	BestJSD   float64
	WorstJSD  float64
	InputJSDs []float64 // JSD of every zoo model, for context
}

// Table renders the per-cluster bars of Fig. 12.
func (r *Fig12Result) Table() string {
	t := &table{header: []string{"cluster", "input", "best", "worst"}}
	for i := range r.Input {
		t.add(fmt.Sprintf("%d", i), f3(r.Input[i]), f3(r.Best[i]), f3(r.Worst[i]))
	}
	return fmt.Sprintf("Fig. 12 — input vs best (%s, JSD %.4f) vs worst (%s, JSD %.4f) training distributions\n%s",
		r.BestID, r.BestJSD, r.WorstID, r.WorstJSD, t)
}

// Fig12 builds a drifting Bragg sequence with a fixed cluster count, ranks
// the zoo for a late input dataset, and reports the three distributions.
func Fig12(cfg Fig12Config) (*Fig12Result, error) {
	cfg.defaults()
	env, err := newBraggEnv(braggEnvConfig{
		patch:       cfg.Patch,
		numDatasets: cfg.ZooModels + 1,
		perDataset:  cfg.PerDataset,
		driftAt:     cfg.ZooModels / 2,
		embedOn:     3,
		k:           cfg.Clusters,
		zooOn:       cfg.ZooModels,
		zooEpochs:   5, // ranking only needs PDFs, not accurate models
		seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	x, _ := env.datasetTensors(cfg.ZooModels) // the held-out input dataset
	input, err := env.ds.DatasetPDF(x)
	if err != nil {
		return nil, err
	}
	best, _, worst, err := env.zoo.BestMedianWorst(input)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{
		Input: input,
		Best:  best.Record.TrainPDF, Worst: worst.Record.TrainPDF,
		BestID: best.Record.ID, WorstID: worst.Record.ID,
		BestJSD: best.JSD, WorstJSD: worst.JSD,
	}
	ranked, err := env.zoo.Rank(input)
	if err != nil {
		return nil, err
	}
	for _, rk := range ranked {
		res.InputJSDs = append(res.InputJSDs, rk.JSD)
	}
	return res, nil
}
