// Package codec implements the sample-serialization formats the fairDMS
// storage evaluation compares (paper §III-D):
//
//   - Raw: header + little-endian payload bytes, the cost class of reading a
//     raw tensor file from NFS — no per-element transformation.
//   - Gob: generic Go serialization of a float64 view of the sample. Like
//     Python pickle, it pays a per-element encode/decode cost, which is what
//     makes "Pickle" lose to NFS at large batch sizes in Figs. 6–8.
//   - Block: Blosc-style codec — byte-shuffle to group significant bytes,
//     then per-block DEFLATE with blocks compressed/decompressed in
//     parallel. Smaller on the wire, with a moderate (de)compression cost.
//
// All codecs are stateless and safe for concurrent use.
package codec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sync"
)

// Dtype identifies the element type of a sample payload.
type Dtype uint8

// Supported element types.
const (
	U8  Dtype = iota + 1 // unsigned 8-bit (CookieBox images)
	U16                  // unsigned 16-bit (tomography slices)
	F32                  // float32 (Bragg peak patches)
	F64                  // float64
)

// Size returns the element width in bytes.
func (d Dtype) Size() int {
	switch d {
	case U8:
		return 1
	case U16:
		return 2
	case F32:
		return 4
	case F64:
		return 8
	}
	panic(fmt.Sprintf("codec: unknown dtype %d", d))
}

// String names the dtype.
func (d Dtype) String() string {
	switch d {
	case U8:
		return "u8"
	case U16:
		return "u16"
	case F32:
		return "f32"
	case F64:
		return "f64"
	}
	return fmt.Sprintf("dtype(%d)", d)
}

// Sample is one stored data item: a shaped, typed raw byte payload plus its
// ground-truth label vector (e.g. a Bragg peak's center of mass).
type Sample struct {
	Shape []int
	Dtype Dtype
	Data  []byte    // little-endian elements, len = prod(Shape) * Dtype.Size()
	Label []float64 // ground-truth label (may be empty for unlabeled data)
}

// Elems returns the number of elements implied by the shape.
func (s *Sample) Elems() int {
	n := 1
	for _, d := range s.Shape {
		n *= d
	}
	return n
}

// Validate checks payload length against shape and dtype.
func (s *Sample) Validate() error {
	want := s.Elems() * s.Dtype.Size()
	if len(s.Data) != want {
		return fmt.Errorf("codec: sample payload %d bytes, shape %v dtype %s needs %d",
			len(s.Data), s.Shape, s.Dtype, want)
	}
	return nil
}

// Floats decodes the payload into float64s (allocating), the form model
// training consumes.
func (s *Sample) Floats() []float64 {
	out := make([]float64, s.Elems())
	s.FloatsInto(out)
	return out
}

// FloatsInto decodes the payload into dst, which must hold Elems() values —
// the allocation-free form batch pipelines use when collating thousands of
// samples into pre-sized tensor rows.
func (s *Sample) FloatsInto(dst []float64) {
	n := s.Elems()
	out := dst[:n]
	switch s.Dtype {
	case U8:
		for i := 0; i < n; i++ {
			out[i] = float64(s.Data[i])
		}
	case U16:
		for i := 0; i < n; i++ {
			out[i] = float64(binary.LittleEndian.Uint16(s.Data[2*i:]))
		}
	case F32:
		for i := 0; i < n; i++ {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(s.Data[4*i:])))
		}
	case F64:
		for i := 0; i < n; i++ {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(s.Data[8*i:]))
		}
	}
}

// SampleFromFloats builds a sample of the given dtype from float64 values,
// clamping integers into range.
func SampleFromFloats(vals []float64, shape []int, dt Dtype, label []float64) *Sample {
	s := &Sample{Shape: append([]int(nil), shape...), Dtype: dt, Label: append([]float64(nil), label...)}
	s.Data = make([]byte, len(vals)*dt.Size())
	switch dt {
	case U8:
		for i, v := range vals {
			s.Data[i] = byte(clamp(v, 0, 255))
		}
	case U16:
		for i, v := range vals {
			binary.LittleEndian.PutUint16(s.Data[2*i:], uint16(clamp(v, 0, 65535)))
		}
	case F32:
		for i, v := range vals {
			binary.LittleEndian.PutUint32(s.Data[4*i:], math.Float32bits(float32(v)))
		}
	case F64:
		for i, v := range vals {
			binary.LittleEndian.PutUint64(s.Data[8*i:], math.Float64bits(v))
		}
	}
	return s
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Codec serializes samples to bytes and back.
type Codec interface {
	Name() string
	Encode(s *Sample) ([]byte, error)
	Decode(b []byte) (*Sample, error)
}

// ---------------------------------------------------------------------------
// Raw codec

// Raw is the no-transformation codec: a fixed header plus the payload bytes.
type Raw struct{}

// Name returns "raw".
func (Raw) Name() string { return "raw" }

// header layout: magic(1) dtype(1) ndim(1) shape(8*ndim) labelLen(2) label(8*labelLen)
const rawMagic = 0xFA

// Encode writes the header and copies the payload.
func (Raw) Encode(s *Sample) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Grow(len(s.Data) + 16 + 8*len(s.Shape) + 8*len(s.Label))
	buf.WriteByte(rawMagic)
	buf.WriteByte(byte(s.Dtype))
	buf.WriteByte(byte(len(s.Shape)))
	var scratch [8]byte
	for _, d := range s.Shape {
		binary.LittleEndian.PutUint64(scratch[:], uint64(d))
		buf.Write(scratch[:])
	}
	binary.LittleEndian.PutUint16(scratch[:2], uint16(len(s.Label)))
	buf.Write(scratch[:2])
	for _, l := range s.Label {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(l))
		buf.Write(scratch[:])
	}
	buf.Write(s.Data)
	return buf.Bytes(), nil
}

// Decode parses the header and references the payload bytes.
func (Raw) Decode(b []byte) (*Sample, error) {
	if len(b) < 3 || b[0] != rawMagic {
		return nil, fmt.Errorf("codec: raw: bad header")
	}
	s := &Sample{Dtype: Dtype(b[1])}
	ndim := int(b[2])
	off := 3
	if len(b) < off+8*ndim+2 {
		return nil, fmt.Errorf("codec: raw: truncated shape")
	}
	for i := 0; i < ndim; i++ {
		s.Shape = append(s.Shape, int(binary.LittleEndian.Uint64(b[off:])))
		off += 8
	}
	nl := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+8*nl {
		return nil, fmt.Errorf("codec: raw: truncated label")
	}
	for i := 0; i < nl; i++ {
		s.Label = append(s.Label, math.Float64frombits(binary.LittleEndian.Uint64(b[off:])))
		off += 8
	}
	s.Data = b[off:]
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// Gob ("pickle") codec

// Gob serializes a float64 view of the sample with encoding/gob. The
// per-element float conversion plus gob's reflective encoding reproduce
// pickle's CPU-bound (de)serialization profile.
type Gob struct{}

// Name returns "pickle".
func (Gob) Name() string { return "pickle" }

// gobSample is the wire form: a generic, reflective representation.
type gobSample struct {
	Shape  []int
	Dtype  uint8
	Values []float64
	Label  []float64
}

// Encode gob-encodes the float64 view.
func (Gob) Encode(s *Sample) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(gobSample{
		Shape:  s.Shape,
		Dtype:  uint8(s.Dtype),
		Values: s.Floats(),
		Label:  s.Label,
	})
	if err != nil {
		return nil, fmt.Errorf("codec: gob encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode gob-decodes and re-quantizes to the original dtype.
func (Gob) Decode(b []byte) (*Sample, error) {
	var gs gobSample
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&gs); err != nil {
		return nil, fmt.Errorf("codec: gob decode: %w", err)
	}
	s := SampleFromFloats(gs.Values, gs.Shape, Dtype(gs.Dtype), gs.Label)
	return s, nil
}

// ---------------------------------------------------------------------------
// Block ("blosc") codec

// Block is a Blosc-style codec: the payload is byte-shuffled (transposed so
// byte k of every element is contiguous, which groups zero high bytes of
// detector data), split into fixed-size blocks, and each block DEFLATE-
// compressed. Blocks are processed in parallel on encode and decode.
type Block struct {
	// BlockSize is the uncompressed bytes per block; 0 means 64 KiB.
	BlockSize int
	// Level is the flate level; 0 means flate.BestSpeed.
	Level int
	// MinCompress is the smallest block worth running DEFLATE on; smaller
	// blocks are stored shuffled-but-raw. Building a dynamic Huffman tree
	// costs tens of microseconds and, on sub-KiB float detector payloads,
	// usually *expands* the data — c-blosc's memcpy fallback exists for the
	// same reason. 0 means 1 KiB; negative means always try to compress.
	MinCompress int
}

// Name returns "blosc".
func (Block) Name() string { return "blosc" }

func (c Block) blockSize() int {
	if c.BlockSize > 0 {
		return c.BlockSize
	}
	return 64 << 10
}

func (c Block) level() int {
	if c.Level != 0 {
		return c.Level
	}
	return flate.BestSpeed
}

func (c Block) minCompress() int {
	if c.MinCompress != 0 {
		return c.MinCompress
	}
	return 1 << 10
}

// storedFlag marks an entry of the per-block size table as stored (raw)
// rather than DEFLATE-compressed. Block sizes are bounded by BlockSize, so
// bit 31 is always free. Frames written before this flag existed decode
// unchanged (flag unset = compressed).
const storedFlag = 1 << 31

// flateWriters pools *flate.Writer instances per compression level: each
// NewWriter allocates ~1.5 MB of hash-table state, which made per-document
// Encode calls GC-bound on high-rate ingest (the allocation profile of a
// 1k-document batch was >98% flate.NewWriter). Reset reuses that state.
var flateWriters sync.Map // int (level) -> *sync.Pool of *flate.Writer

func acquireFlateWriter(dst io.Writer, level int) (*flate.Writer, error) {
	if p, ok := flateWriters.Load(level); ok {
		if w, _ := p.(*sync.Pool).Get().(*flate.Writer); w != nil {
			w.Reset(dst)
			return w, nil
		}
	}
	return flate.NewWriter(dst, level)
}

func releaseFlateWriter(level int, w *flate.Writer) {
	p, _ := flateWriters.LoadOrStore(level, &sync.Pool{})
	p.(*sync.Pool).Put(w)
}

// flateReaders pools decompressors the same way (NewReader allocates a
// ~32 KiB window plus decode tables per call).
var flateReaders sync.Pool

func acquireFlateReader(src io.Reader) io.ReadCloser {
	if r, _ := flateReaders.Get().(io.ReadCloser); r != nil {
		r.(flate.Resetter).Reset(src, nil)
		return r
	}
	return flate.NewReader(src)
}

// encodeBlock compresses one shuffled block with a pooled writer, falling
// back to storing it raw when compression cannot pay: blocks under
// MinCompress skip DEFLATE entirely, and a compressed result at least as
// large as the input is discarded for the raw bytes.
func (c Block) encodeBlock(chunk []byte) (cb []byte, stored bool, err error) {
	if mc := c.minCompress(); mc > 0 && len(chunk) < mc {
		return chunk, true, nil
	}
	var buf bytes.Buffer
	w, err := acquireFlateWriter(&buf, c.level())
	if err != nil {
		return nil, false, err
	}
	if _, err := w.Write(chunk); err != nil {
		return nil, false, err
	}
	if err := w.Close(); err != nil {
		return nil, false, err
	}
	releaseFlateWriter(c.level(), w)
	if buf.Len() >= len(chunk) {
		return chunk, true, nil
	}
	return buf.Bytes(), false, nil
}

// Encode shuffles and compresses the payload.
func (c Block) Encode(s *Sample) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// The shuffled view is transient (the frame assembly below copies out
	// of it), so byte-wide dtypes use the payload directly and wider ones a
	// pooled scratch buffer — no per-document allocation either way.
	var shuffled []byte
	if width := s.Dtype.Size(); width <= 1 {
		shuffled = s.Data
	} else {
		scratch := acquireShuffleBuf(len(s.Data))
		defer shuffleBufs.Put(scratch)
		shuffled = (*scratch)[:len(s.Data)]
		shuffleBytesInto(shuffled, s.Data, width)
	}
	bs := c.blockSize()
	nblocks := (len(shuffled) + bs - 1) / bs
	if nblocks == 0 {
		nblocks = 1
	}
	comp := make([][]byte, nblocks)
	raw := make([]bool, nblocks)
	if nblocks == 1 {
		// The common small-sample case: no goroutine fan-out overhead.
		cb, stored, err := c.encodeBlock(shuffled)
		if err != nil {
			return nil, fmt.Errorf("codec: block encode: %w", err)
		}
		comp[0], raw[0] = cb, stored
	} else {
		var wg sync.WaitGroup
		errs := make([]error, nblocks)
		for i := 0; i < nblocks; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				lo := i * bs
				hi := lo + bs
				if hi > len(shuffled) {
					hi = len(shuffled)
				}
				comp[i], raw[i], errs[i] = c.encodeBlock(shuffled[lo:hi])
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("codec: block encode: %w", err)
			}
		}
	}

	// Frame: header (same layout as raw) + rawLen(8) + nblocks(4) +
	// per-block sizes + blocks. Pre-sized so assembly never regrows.
	frameLen := 3 + 8*len(s.Shape) + 2 + 8*len(s.Label) + 12 + 4*nblocks
	for _, cb := range comp {
		frameLen += len(cb)
	}
	var buf bytes.Buffer
	buf.Grow(frameLen)
	buf.WriteByte(rawMagic)
	buf.WriteByte(byte(s.Dtype))
	buf.WriteByte(byte(len(s.Shape)))
	var scratch [8]byte
	for _, d := range s.Shape {
		binary.LittleEndian.PutUint64(scratch[:], uint64(d))
		buf.Write(scratch[:])
	}
	binary.LittleEndian.PutUint16(scratch[:2], uint16(len(s.Label)))
	buf.Write(scratch[:2])
	for _, l := range s.Label {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(l))
		buf.Write(scratch[:])
	}
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(shuffled)))
	buf.Write(scratch[:])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(nblocks))
	buf.Write(scratch[:4])
	for i, cb := range comp {
		entry := uint32(len(cb))
		if raw[i] {
			entry |= storedFlag
		}
		binary.LittleEndian.PutUint32(scratch[:4], entry)
		buf.Write(scratch[:4])
	}
	for _, cb := range comp {
		buf.Write(cb)
	}
	return buf.Bytes(), nil
}

// Decode decompresses blocks in parallel and unshuffles.
func (c Block) Decode(b []byte) (*Sample, error) {
	if len(b) < 3 || b[0] != rawMagic {
		return nil, fmt.Errorf("codec: block: bad header")
	}
	s := &Sample{Dtype: Dtype(b[1])}
	ndim := int(b[2])
	off := 3
	if len(b) < off+8*ndim+2 {
		return nil, fmt.Errorf("codec: block: truncated shape")
	}
	for i := 0; i < ndim; i++ {
		s.Shape = append(s.Shape, int(binary.LittleEndian.Uint64(b[off:])))
		off += 8
	}
	nl := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	for i := 0; i < nl; i++ {
		s.Label = append(s.Label, math.Float64frombits(binary.LittleEndian.Uint64(b[off:])))
		off += 8
	}
	if len(b) < off+12 {
		return nil, fmt.Errorf("codec: block: truncated frame")
	}
	rawLen := int(binary.LittleEndian.Uint64(b[off:]))
	off += 8
	nblocks := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	sizes := make([]int, nblocks)
	rawBlk := make([]bool, nblocks)
	for i := range sizes {
		if len(b) < off+4 {
			return nil, fmt.Errorf("codec: block: truncated block table")
		}
		entry := binary.LittleEndian.Uint32(b[off:])
		rawBlk[i] = entry&storedFlag != 0
		sizes[i] = int(entry &^ storedFlag)
		off += 4
	}
	blocks := make([][]byte, nblocks)
	for i, sz := range sizes {
		if len(b) < off+sz {
			return nil, fmt.Errorf("codec: block: truncated block %d", i)
		}
		blocks[i] = b[off : off+sz]
		off += sz
	}

	bs := c.blockSize()
	shuffled := make([]byte, rawLen)
	decodeBlock := func(i int) error {
		lo := i * bs
		hi := lo + bs
		if hi > rawLen {
			hi = rawLen
		}
		if rawBlk[i] {
			if len(blocks[i]) != hi-lo {
				return fmt.Errorf("stored block %d is %d bytes, want %d", i, len(blocks[i]), hi-lo)
			}
			copy(shuffled[lo:hi], blocks[i])
			return nil
		}
		r := acquireFlateReader(bytes.NewReader(blocks[i]))
		if _, err := io.ReadFull(r, shuffled[lo:hi]); err != nil {
			return err
		}
		if err := r.Close(); err != nil {
			return err
		}
		flateReaders.Put(r)
		return nil
	}
	if nblocks == 1 {
		if err := decodeBlock(0); err != nil {
			return nil, fmt.Errorf("codec: block decode: %w", err)
		}
	} else {
		var wg sync.WaitGroup
		errs := make([]error, nblocks)
		for i := range blocks {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = decodeBlock(i)
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("codec: block decode: %w", err)
			}
		}
	}
	s.Data = unshuffleBytes(shuffled, s.Dtype.Size())
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// shuffleBufs pools Encode's transient shuffle scratch: the shuffled bytes
// live only until they are copied into the output frame, so high-rate
// ingest would otherwise allocate (and GC) one payload-sized buffer per
// document.
var shuffleBufs sync.Pool

func acquireShuffleBuf(n int) *[]byte {
	if p, _ := shuffleBufs.Get().(*[]byte); p != nil && cap(*p) >= n {
		return p
	}
	b := make([]byte, n)
	return &b
}

// shuffleBytes regroups the payload so byte k of every element is
// contiguous: Blosc's shuffle filter, which makes detector data with small
// dynamic range highly compressible.
func shuffleBytes(data []byte, width int) []byte {
	if width <= 1 {
		return append([]byte(nil), data...)
	}
	out := make([]byte, len(data))
	shuffleBytesInto(out, data, width)
	return out
}

// shuffleBytesInto is shuffleBytes with a caller-provided destination
// (len(dst) >= len(data)), for pooled scratch buffers.
func shuffleBytesInto(dst, data []byte, width int) {
	n := len(data) / width
	for k := 0; k < width; k++ {
		base := k * n
		for i := 0; i < n; i++ {
			dst[base+i] = data[i*width+k]
		}
	}
	// Trailing bytes (payloads not divisible by width) pass through.
	copy(dst[n*width:len(data)], data[n*width:])
}

// unshuffleBytes inverts shuffleBytes.
func unshuffleBytes(data []byte, width int) []byte {
	if width <= 1 {
		return append([]byte(nil), data...)
	}
	n := len(data) / width
	out := make([]byte, len(data))
	for k := 0; k < width; k++ {
		base := k * n
		for i := 0; i < n; i++ {
			out[i*width+k] = data[base+i]
		}
	}
	copy(out[n*width:], data[n*width:])
	return out
}
