package codec

import (
	"math/rand"
	"testing"
)

// benchSample mimics a 128×128 16-bit detector frame with small dynamic
// range (the compressible case Blosc targets).
func benchSample() *Sample {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 128*128)
	for i := range vals {
		vals[i] = float64(100 + rng.Intn(50))
	}
	return SampleFromFloats(vals, []int{128, 128}, U16, []float64{1, 2})
}

func benchEncode(b *testing.B, c Codec) {
	s := benchSample()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		enc, err := c.Encode(s)
		if err != nil {
			b.Fatal(err)
		}
		n = len(enc)
	}
	b.SetBytes(int64(len(s.Data)))
	b.ReportMetric(float64(len(s.Data))/float64(n), "compression-x")
}

func benchDecode(b *testing.B, c Codec) {
	s := benchSample()
	enc, err := c.Encode(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(s.Data)))
}

func BenchmarkEncodeRaw(b *testing.B)    { benchEncode(b, Raw{}) }
func BenchmarkEncodePickle(b *testing.B) { benchEncode(b, Gob{}) }
func BenchmarkEncodeBlosc(b *testing.B)  { benchEncode(b, Block{}) }
func BenchmarkDecodeRaw(b *testing.B)    { benchDecode(b, Raw{}) }
func BenchmarkDecodePickle(b *testing.B) { benchDecode(b, Gob{}) }
func BenchmarkDecodeBlosc(b *testing.B)  { benchDecode(b, Block{}) }

func BenchmarkShuffleBytes(b *testing.B) {
	data := make([]byte, 128*128*2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shuffleBytes(data, 2)
	}
	b.SetBytes(int64(len(data)))
}
