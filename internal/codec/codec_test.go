package codec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSample(rng *rand.Rand, dt Dtype, shape []int) *Sample {
	n := 1
	for _, d := range shape {
		n *= d
	}
	vals := make([]float64, n)
	for i := range vals {
		switch dt {
		case U8:
			vals[i] = float64(rng.Intn(256))
		case U16:
			vals[i] = float64(rng.Intn(65536))
		default:
			vals[i] = rng.NormFloat64() * 100
		}
	}
	return SampleFromFloats(vals, shape, dt, []float64{rng.Float64(), rng.Float64()})
}

func codecsUnderTest() []Codec {
	return []Codec{Raw{}, Gob{}, Block{}, Block{BlockSize: 128, Level: 6}}
}

func TestRoundTripAllCodecsAllDtypes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dt := range []Dtype{U8, U16, F32, F64} {
		for _, c := range codecsUnderTest() {
			s := randomSample(rng, dt, []int{4, 5})
			enc, err := c.Encode(s)
			if err != nil {
				t.Fatalf("%s/%s encode: %v", c.Name(), dt, err)
			}
			dec, err := c.Decode(enc)
			if err != nil {
				t.Fatalf("%s/%s decode: %v", c.Name(), dt, err)
			}
			if !bytes.Equal(dec.Data, s.Data) {
				t.Fatalf("%s/%s payload mismatch", c.Name(), dt)
			}
			if len(dec.Shape) != 2 || dec.Shape[0] != 4 || dec.Shape[1] != 5 {
				t.Fatalf("%s/%s shape = %v", c.Name(), dt, dec.Shape)
			}
			if dec.Dtype != dt {
				t.Fatalf("%s/%s dtype = %v", c.Name(), dt, dec.Dtype)
			}
			for i := range s.Label {
				if dec.Label[i] != s.Label[i] {
					t.Fatalf("%s/%s label mismatch", c.Name(), dt)
				}
			}
		}
	}
}

func TestFloatsRoundTrip(t *testing.T) {
	vals := []float64{0, 1, 127, 255}
	s := SampleFromFloats(vals, []int{4}, U8, nil)
	got := s.Floats()
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("Floats = %v, want %v", got, vals)
		}
	}
	// Float32 path preserves values representable in float32.
	f := SampleFromFloats([]float64{1.5, -2.25}, []int{2}, F32, nil)
	g := f.Floats()
	if g[0] != 1.5 || g[1] != -2.25 {
		t.Fatalf("F32 Floats = %v", g)
	}
}

func TestSampleFromFloatsClamps(t *testing.T) {
	s := SampleFromFloats([]float64{-10, 300}, []int{2}, U8, nil)
	f := s.Floats()
	if f[0] != 0 || f[1] != 255 {
		t.Fatalf("clamped = %v, want [0 255]", f)
	}
}

func TestValidateCatchesBadPayload(t *testing.T) {
	s := &Sample{Shape: []int{4}, Dtype: U16, Data: make([]byte, 3)}
	if err := s.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDecodeGarbageFails(t *testing.T) {
	for _, c := range codecsUnderTest() {
		if _, err := c.Decode([]byte{1, 2, 3}); err == nil {
			t.Fatalf("%s decoded garbage without error", c.Name())
		}
	}
}

func TestDecodeTruncatedBlockFails(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randomSample(rng, U16, []int{64, 64})
	enc, err := Block{}.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Block{}).Decode(enc[:len(enc)/2]); err == nil {
		t.Fatal("expected error decoding truncated frame")
	}
}

func TestBlockCompressesLowEntropyData(t *testing.T) {
	// Detector-like data: 16-bit values with small dynamic range should
	// compress well after byte shuffling.
	n := 128 * 128
	vals := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range vals {
		vals[i] = float64(100 + rng.Intn(40))
	}
	s := SampleFromFloats(vals, []int{128, 128}, U16, nil)
	enc, err := Block{}.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(s.Data) {
		t.Fatalf("blosc output %d bytes >= raw %d bytes on compressible data", len(enc), len(s.Data))
	}
}

func TestShuffleUnshuffleInverse(t *testing.T) {
	f := func(data []byte, widthSeed uint8) bool {
		width := int(widthSeed%8) + 1
		out := unshuffleBytes(shuffleBytes(data, width), width)
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleGroupsHighBytes(t *testing.T) {
	// u16 values < 256 have zero high bytes; after shuffling, the second
	// half of the buffer must be all zeros.
	data := make([]byte, 8)
	for i := 0; i < 4; i++ {
		data[2*i] = byte(i + 1) // low byte
		data[2*i+1] = 0         // high byte
	}
	sh := shuffleBytes(data, 2)
	for i := 4; i < 8; i++ {
		if sh[i] != 0 {
			t.Fatalf("shuffled = %v, high bytes not grouped", sh)
		}
	}
	for i := 0; i < 4; i++ {
		if sh[i] != byte(i+1) {
			t.Fatalf("shuffled = %v, low bytes not grouped", sh)
		}
	}
}

// Property: round trip through every codec preserves payload exactly.
func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(dtSeed uint8, dimA, dimB uint8) bool {
		dts := []Dtype{U8, U16, F32, F64}
		dt := dts[int(dtSeed)%len(dts)]
		a, b := int(dimA%8)+1, int(dimB%8)+1
		s := randomSample(rng, dt, []int{a, b})
		for _, c := range codecsUnderTest() {
			enc, err := c.Encode(s)
			if err != nil {
				return false
			}
			dec, err := c.Decode(enc)
			if err != nil {
				return false
			}
			if !bytes.Equal(dec.Data, s.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDtypeSizes(t *testing.T) {
	if U8.Size() != 1 || U16.Size() != 2 || F32.Size() != 4 || F64.Size() != 8 {
		t.Fatal("dtype sizes wrong")
	}
	if U8.String() != "u8" || F64.String() != "f64" {
		t.Fatal("dtype names wrong")
	}
}

func TestF64PayloadExact(t *testing.T) {
	vals := []float64{math.Pi, -math.E, 0, math.MaxFloat64}
	s := SampleFromFloats(vals, []int{4}, F64, nil)
	got := s.Floats()
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("F64 round trip lost precision: %v vs %v", got, vals)
		}
	}
}

func TestBlockStoredFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(4))

	// Sub-MinCompress payloads skip DEFLATE and are stored shuffled-raw:
	// output is the frame header plus exactly the raw bytes, and the
	// round trip is lossless.
	small := randomSample(rng, F32, []int{11, 11})
	enc, err := Block{}.Encode(small)
	if err != nil {
		t.Fatal(err)
	}
	overhead := len(enc) - len(small.Data)
	if overhead <= 0 || overhead > 64 {
		t.Fatalf("stored small payload: %d bytes for %d raw (want raw + small header)", len(enc), len(small.Data))
	}
	back, err := Block{}.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Data, small.Data) {
		t.Fatal("stored-block round trip corrupted payload")
	}

	// Incompressible data above MinCompress: the compression attempt runs
	// but its larger output is discarded for the raw block, so the frame
	// never expands beyond header overhead.
	big := randomSample(rng, F64, []int{64, 64}) // random float64s do not compress
	enc, err = Block{}.Encode(big)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > len(big.Data)+64 {
		t.Fatalf("incompressible payload expanded: %d bytes for %d raw", len(enc), len(big.Data))
	}
	back, err = Block{}.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Data, big.Data) {
		t.Fatal("incompressible round trip corrupted payload")
	}

	// MinCompress < 0 forces the DEFLATE attempt even on tiny payloads —
	// the compatibility knob for data that is small but redundant — and
	// both configurations must decode each other's frames (the stored
	// flag travels in the size table).
	flat := SampleFromFloats(make([]float64, 121), []int{11, 11}, U16, nil)
	forced, err := Block{MinCompress: -1}.Encode(flat)
	if err != nil {
		t.Fatal(err)
	}
	if len(forced) >= len(flat.Data) {
		t.Fatalf("forced compression of all-zero payload did not shrink: %d vs %d", len(forced), len(flat.Data))
	}
	back, err = Block{}.Decode(forced)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Data, flat.Data) {
		t.Fatal("cross-config round trip corrupted payload")
	}
}
