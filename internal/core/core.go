// Package core assembles fairDS and fairMS into fairDMS, the end-to-end
// rapid model-training system of the paper's Fig. 5. It implements the two
// planes:
//
//   - User plane: RapidTrain — given new unlabeled data, compute its
//     cluster PDF, retrieve PDF-matched labeled historical data (pseudo-
//     labeling), recommend the closest zoo model by JSD, fine-tune it (or
//     train from scratch past the distance threshold), and register the
//     result back into the zoo.
//   - System plane: uncertainty monitoring — fuzzy-clustering certainty of
//     each incoming dataset is checked against a trigger threshold; when
//     it drops, a registered refresh callback retrains the embedding and
//     clustering modules and rebuilds the store index (paper §III-I).
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/fairds"
	"fairdms/internal/fairms"
	"fairdms/internal/nn"
	"fairdms/internal/stats"
	"fairdms/internal/tensor"
)

// Config tunes the fairDMS control loop.
type Config struct {
	// CertaintyTrigger is the clustering-certainty level below which the
	// system plane refresh fires (the paper uses 0.8).
	CertaintyTrigger float64
	// MembershipCut is the fuzzy-membership confidence defining a
	// "certain" assignment (the paper uses 0.5).
	MembershipCut float64
	// JSDThreshold is the user-defined distance beyond which no zoo model
	// is a suitable foundation and training starts from scratch.
	JSDThreshold float64
	// FineTuneLR and ScratchLR are the learning rates for the two paths;
	// fine-tuning conventionally uses a smaller rate.
	FineTuneLR float64
	ScratchLR  float64
	// ValFraction of retrieved labeled data is held out for convergence
	// tracking (default 0.2).
	ValFraction float64
	// Seed drives the train/val split.
	Seed int64
}

// Default Config values, exported so clients that replicate the user-plane
// workflow against remote services (cmd/fairdms -dms) share one source of
// truth instead of hardcoding drifting copies.
const (
	DefaultCertaintyTrigger = 0.8
	DefaultMembershipCut    = 0.5
	DefaultJSDThreshold     = 0.5
	DefaultFineTuneLR       = 2e-4
	DefaultScratchLR        = 1e-3
	DefaultValFraction      = 0.2
)

func (c *Config) defaults() {
	if c.CertaintyTrigger <= 0 {
		c.CertaintyTrigger = DefaultCertaintyTrigger
	}
	if c.MembershipCut <= 0 {
		c.MembershipCut = DefaultMembershipCut
	}
	if c.JSDThreshold <= 0 {
		c.JSDThreshold = DefaultJSDThreshold
	}
	if c.FineTuneLR <= 0 {
		c.FineTuneLR = DefaultFineTuneLR
	}
	if c.ScratchLR <= 0 {
		c.ScratchLR = DefaultScratchLR
	}
	if c.ValFraction <= 0 || c.ValFraction >= 1 {
		c.ValFraction = DefaultValFraction
	}
}

// RefreshFunc is the system-plane action fired on low clustering certainty:
// it should retrain the embedding model and clustering module on recent
// data and re-ingest the store (the caller owns that data).
type RefreshFunc func(certainty float64) error

// System is a running fairDMS instance.
type System struct {
	DS  *fairds.Service
	Zoo *fairms.Zoo

	cfg     Config
	refresh RefreshFunc
	events  []Event
}

// Event records a control-plane occurrence for observability.
type Event struct {
	At   time.Time
	Kind string // "trigger", "finetune", "scratch", "ingest"
	Info string
}

// New assembles a system from its two services.
func New(ds *fairds.Service, zoo *fairms.Zoo, cfg Config) (*System, error) {
	if ds == nil || zoo == nil {
		return nil, errors.New("core: nil data or model service")
	}
	cfg.defaults()
	return &System{DS: ds, Zoo: zoo, cfg: cfg}, nil
}

// SetRefresh registers the system-plane refresh callback.
func (s *System) SetRefresh(fn RefreshFunc) { s.refresh = fn }

// Events returns the recorded control-plane events.
func (s *System) Events() []Event { return append([]Event(nil), s.events...) }

func (s *System) log(kind, format string, args ...any) {
	s.events = append(s.events, Event{At: time.Now(), Kind: kind, Info: fmt.Sprintf(format, args...)})
}

// Request describes one user-plane rapid-training job.
type Request struct {
	// Input is the new, unlabeled data that the model must handle.
	Input []*codec.Sample
	// NewModel constructs a fresh, randomly initialized model instance.
	NewModel func() *nn.Model
	// Prep converts labeled samples into training tensors (x, y) — it owns
	// model-specific label normalization.
	Prep func(samples []*codec.Sample) (x, y *tensor.Tensor, err error)
	// Train configures the optimization run (epochs, batch, target loss).
	Train nn.TrainConfig
	// ModelID names the resulting zoo entry.
	ModelID string
	// Meta is attached to the zoo entry.
	Meta map[string]string
}

// Report describes what RapidTrain did and how long each stage took —
// the per-stage numbers behind the paper's Fig. 15.
type Report struct {
	Certainty  float64
	Triggered  bool
	LabelTime  time.Duration
	TrainTime  time.Duration
	FineTuned  bool
	Foundation string  // zoo ID of the fine-tuning foundation ("" if scratch)
	JSD        float64 // divergence of the foundation's training data
	PDF        stats.PDF
	Result     *nn.TrainResult
	Labeled    int // number of labeled samples retrieved
}

// Total returns the end-to-end model updating time.
func (r *Report) Total() time.Duration { return r.LabelTime + r.TrainTime }

// RapidTrain executes the full fairDMS user-plane workflow and returns the
// trained model with its report.
func (s *System) RapidTrain(req Request) (*nn.Model, *Report, error) {
	if len(req.Input) == 0 {
		return nil, nil, errors.New("core: empty input dataset")
	}
	if req.NewModel == nil || req.Prep == nil {
		return nil, nil, errors.New("core: request needs NewModel and Prep")
	}
	x, err := fairds.Collate(req.Input)
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{}

	// System plane: certainty check and (possibly) refresh.
	cert, err := s.DS.Certainty(x, s.cfg.MembershipCut)
	if err != nil {
		return nil, nil, err
	}
	rep.Certainty = cert
	if cert < s.cfg.CertaintyTrigger && s.refresh != nil {
		s.log("trigger", "certainty %.3f below %.3f", cert, s.cfg.CertaintyTrigger)
		if err := s.refresh(cert); err != nil {
			return nil, nil, fmt.Errorf("core: system-plane refresh: %w", err)
		}
		rep.Triggered = true
	}

	// fairDS: pseudo-labeling via PDF-matched retrieval.
	labelStart := time.Now()
	labeled, err := s.DS.LookupLabeled(x)
	if err != nil {
		return nil, nil, fmt.Errorf("core: label lookup: %w", err)
	}
	rep.LabelTime = time.Since(labelStart)
	rep.Labeled = len(labeled)

	pdf, err := s.DS.DatasetPDF(x)
	if err != nil {
		return nil, nil, err
	}
	rep.PDF = pdf

	// fairMS: foundation-model recommendation.
	model := req.NewModel()
	lr := s.cfg.ScratchLR
	if rec, ok := s.Zoo.RecommendWithThreshold(pdf, s.cfg.JSDThreshold); ok {
		if err := model.LoadState(rec.Record.State); err != nil {
			return nil, nil, fmt.Errorf("core: loading foundation %q: %w", rec.Record.ID, err)
		}
		rep.FineTuned = true
		rep.Foundation = rec.Record.ID
		rep.JSD = rec.JSD
		lr = s.cfg.FineTuneLR
		s.log("finetune", "foundation %s at JSD %.4f", rec.Record.ID, rec.JSD)
	} else {
		s.log("scratch", "no foundation within JSD %.3f", s.cfg.JSDThreshold)
	}

	// Training on the retrieved labeled data.
	tx, ty, err := req.Prep(labeled)
	if err != nil {
		return nil, nil, fmt.Errorf("core: preparing training data: %w", err)
	}
	trainX, trainY, valX, valY := Split(tx, ty, s.cfg.ValFraction, s.cfg.Seed)
	trainStart := time.Now()
	opt := nn.NewAdam(model.Params(), lr)
	rep.Result = nn.Fit(model, opt, trainX, trainY, valX, valY, req.Train)
	rep.TrainTime = time.Since(trainStart)

	// Register the updated model for future reuse.
	if req.ModelID != "" {
		if err := s.Zoo.Add(req.ModelID, model.State(), pdf, req.Meta); err != nil {
			return nil, nil, fmt.Errorf("core: registering model: %w", err)
		}
		s.log("ingest", "model %s added to zoo (%d entries)", req.ModelID, s.Zoo.Len())
	}
	return model, rep, nil
}

// CheckDataset runs only the system-plane certainty check (with trigger) on
// a dataset — the Fig. 16 monitoring loop.
func (s *System) CheckDataset(samples []*codec.Sample) (certainty float64, triggered bool, err error) {
	x, err := fairds.Collate(samples)
	if err != nil {
		return 0, false, err
	}
	cert, err := s.DS.Certainty(x, s.cfg.MembershipCut)
	if err != nil {
		return 0, false, err
	}
	if cert < s.cfg.CertaintyTrigger && s.refresh != nil {
		s.log("trigger", "certainty %.3f below %.3f", cert, s.cfg.CertaintyTrigger)
		if err := s.refresh(cert); err != nil {
			return cert, false, fmt.Errorf("core: system-plane refresh: %w", err)
		}
		return cert, true, nil
	}
	return cert, false, nil
}

// Split partitions (x, y) into train and validation subsets — the holdout
// RapidTrain uses for convergence tracking, exported so remote-service
// clients replicating the user-plane workflow split identically.
func Split(x, y *tensor.Tensor, valFrac float64, seed int64) (tx, ty, vx, vy *tensor.Tensor) {
	n := x.Dim(0)
	nVal := int(float64(n) * valFrac)
	if nVal < 1 {
		nVal = 1
	}
	if nVal >= n {
		nVal = n - 1
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	val := perm[:nVal]
	train := perm[nVal:]
	return nn.Gather(x, train), nn.Gather(y, train), nn.Gather(x, val), nn.Gather(y, val)
}
