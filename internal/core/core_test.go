package core

import (
	"errors"
	"math/rand"
	"testing"

	"fairdms/internal/codec"
	"fairdms/internal/datagen"
	"fairdms/internal/docstore"
	"fairdms/internal/fairds"
	"fairdms/internal/fairms"
	"fairdms/internal/models"
	"fairdms/internal/nn"
	"fairdms/internal/tensor"
)

// statEmbedder is a deterministic, training-free embedder: block means of
// the image. Sufficient to separate width/amplitude regimes.
type statEmbedder struct{ dim int }

func (e statEmbedder) Dim() int { return e.dim }
func (e statEmbedder) Embed(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Dim(0), e.dim)
	feats := x.Dim(1)
	chunk := (feats + e.dim - 1) / e.dim
	for i := 0; i < x.Dim(0); i++ {
		row := x.Row(i)
		for d := 0; d < e.dim; d++ {
			lo, hi := d*chunk, (d+1)*chunk
			if hi > feats {
				hi = feats
			}
			s := 0.0
			for _, v := range row[lo:hi] {
				s += v
			}
			if hi > lo {
				out.Set(s/float64(hi-lo), i, d)
			}
		}
	}
	return out
}

const testPatch = 9

func regimeAt(i int) datagen.BraggRegime {
	r := datagen.DefaultBraggRegime()
	r.Patch = testPatch
	r.WidthMean += 0.5 * float64(i)
	r.AmpMean += 4 * float64(i)
	return r
}

// buildSystem assembles a fairDMS with historical data from regimes 0..2
// and a zoo of per-regime models. perRegime sets the historical dataset
// size per regime and zooEpochs how well each zoo model is pre-trained.
func buildSystemSized(t *testing.T, perRegimeN, zooEpochs int) *System {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	store := docstore.NewStore().Collection("peaks")
	ds, err := fairds.New(statEmbedder{dim: 5}, store, fairds.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Historical data across three regimes.
	var all []*codec.Sample
	perRegime := make([][]*codec.Sample, 3)
	for i := 0; i < 3; i++ {
		perRegime[i] = regimeAt(i).Generate(rng, perRegimeN)
		all = append(all, perRegime[i]...)
	}
	xAll, err := fairds.Collate(all)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.FitClustersK(xAll, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.IngestLabeled(all, "history"); err != nil {
		t.Fatal(err)
	}

	// Zoo: one model per regime, pre-trained on that regime's data.
	zoo := fairms.NewZoo()
	for i := 0; i < 3; i++ {
		m := models.NewBraggNN(rng, testPatch)
		x, _ := fairds.Collate(perRegime[i])
		y := labelsOf(perRegime[i])
		opt := nn.NewAdam(m.Net.Params(), 2e-3)
		nn.Fit(m.Net, opt, x, m.Targets(y), x, m.Targets(y), nn.TrainConfig{Epochs: zooEpochs, BatchSize: 32, Seed: 3})
		pdf, err := ds.DatasetPDF(x)
		if err != nil {
			t.Fatal(err)
		}
		if err := zoo.Add(zooID(i), m.Net.State(), pdf, nil); err != nil {
			t.Fatal(err)
		}
	}

	sys, err := New(ds, zoo, Config{Seed: 4, JSDThreshold: 0.9, FineTuneLR: 5e-4, ScratchLR: 2e-3})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func buildSystem(t *testing.T) *System { return buildSystemSized(t, 60, 15) }

func zooID(i int) string {
	return []string{"model-r0", "model-r1", "model-r2"}[i]
}

func labelsOf(samples []*codec.Sample) *tensor.Tensor {
	y := tensor.New(len(samples), 2)
	for i, s := range samples {
		y.Set(s.Label[0], i, 0)
		y.Set(s.Label[1], i, 1)
	}
	return y
}

func braggRequest(t *testing.T, input []*codec.Sample, id string) Request {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	return Request{
		Input: input,
		NewModel: func() *nn.Model {
			return models.NewBraggNN(rng, testPatch).Net
		},
		Prep: func(samples []*codec.Sample) (*tensor.Tensor, *tensor.Tensor, error) {
			x, err := fairds.Collate(samples)
			if err != nil {
				return nil, nil, err
			}
			helper := &models.BraggNN{Patch: testPatch}
			return x, helper.Targets(labelsOf(samples)), nil
		},
		Train:   nn.TrainConfig{Epochs: 10, BatchSize: 32, Seed: 8},
		ModelID: id,
	}
}

func TestRapidTrainFineTunesFromZoo(t *testing.T) {
	sys := buildSystem(t)
	rng := rand.New(rand.NewSource(9))
	input := regimeAt(1).Generate(rng, 40)

	model, rep, err := sys.RapidTrain(braggRequest(t, input, "updated-1"))
	if err != nil {
		t.Fatal(err)
	}
	if model == nil {
		t.Fatal("nil model")
	}
	if !rep.FineTuned {
		t.Fatal("expected fine-tuning path with a well-matched zoo")
	}
	if rep.Foundation != "model-r1" {
		t.Fatalf("foundation = %s, want model-r1 (same regime)", rep.Foundation)
	}
	if rep.Labeled != 40 {
		t.Fatalf("retrieved %d labeled samples, want 40", rep.Labeled)
	}
	if rep.LabelTime <= 0 || rep.TrainTime <= 0 {
		t.Fatalf("timings missing: %+v", rep)
	}
	if rep.Total() != rep.LabelTime+rep.TrainTime {
		t.Fatal("Total() inconsistent")
	}
	// The new model must be in the zoo now.
	if _, err := sys.Zoo.Get("updated-1"); err != nil {
		t.Fatal(err)
	}
	// Events recorded.
	kinds := map[string]bool{}
	for _, e := range sys.Events() {
		kinds[e.Kind] = true
	}
	if !kinds["finetune"] || !kinds["ingest"] {
		t.Fatalf("events missing: %v", sys.Events())
	}
}

func TestRapidTrainScratchWhenZooTooFar(t *testing.T) {
	sys := buildSystem(t)
	// Tighten the threshold so nothing qualifies.
	sys.cfg.JSDThreshold = 1e-9
	rng := rand.New(rand.NewSource(10))
	input := regimeAt(2).Generate(rng, 30)
	_, rep, err := sys.RapidTrain(braggRequest(t, input, "scratch-1"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FineTuned {
		t.Fatal("expected scratch path below threshold")
	}
	if rep.Foundation != "" {
		t.Fatalf("foundation = %q", rep.Foundation)
	}
}

func TestRapidTrainValidations(t *testing.T) {
	sys := buildSystem(t)
	if _, _, err := sys.RapidTrain(Request{}); err == nil {
		t.Fatal("expected error for empty request")
	}
	rng := rand.New(rand.NewSource(11))
	input := regimeAt(0).Generate(rng, 4)
	if _, _, err := sys.RapidTrain(Request{Input: input}); err == nil {
		t.Fatal("expected error for missing factory")
	}
}

func TestFineTuneConvergesFasterThanScratch(t *testing.T) {
	// The core claim of the paper: fine-tuning from the JSD-matched
	// foundation reaches the loss target in fewer epochs than training
	// from random initialization. Uses well-pre-trained zoo models so the
	// foundation starts near the target.
	sys := buildSystemSized(t, 150, 40)
	rng := rand.New(rand.NewSource(12))
	input := regimeAt(1).Generate(rng, 100)

	// Pick a target between the foundation's starting loss and scratch's:
	// first measure where the foundation starts.
	rec, err := sys.Zoo.Get("model-r1")
	if err != nil {
		t.Fatal(err)
	}
	probe := models.NewBraggNN(rand.New(rand.NewSource(99)), testPatch)
	if err := probe.Net.LoadState(rec.State); err != nil {
		t.Fatal(err)
	}
	px, _ := fairds.Collate(input)
	foundationLoss := nn.Evaluate(probe.Net, px, probe.Targets(labelsOf(input)), nn.MSE)
	target := foundationLoss * 1.5 // reachable quickly from the foundation

	req := braggRequest(t, input, "ft")
	req.Train = nn.TrainConfig{Epochs: 80, BatchSize: 32, TargetLoss: target, Seed: 13}
	_, repFT, err := sys.RapidTrain(req)
	if err != nil {
		t.Fatal(err)
	}

	sys2 := buildSystemSized(t, 150, 40)
	sys2.cfg.JSDThreshold = 1e-12 // force scratch
	req2 := braggRequest(t, input, "sc")
	req2.Train = req.Train
	_, repSC, err := sys2.RapidTrain(req2)
	if err != nil {
		t.Fatal(err)
	}

	if !repFT.Result.Converged {
		t.Fatalf("fine-tune did not converge in %d epochs to %.4f (val=%v)",
			repFT.Result.Epochs, target, last(repFT.Result.ValLoss))
	}
	if repSC.Result.Converged && repSC.Result.Epochs <= repFT.Result.Epochs {
		t.Fatalf("scratch (%d epochs) not slower than fine-tune (%d epochs)",
			repSC.Result.Epochs, repFT.Result.Epochs)
	}
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return -1
	}
	return xs[len(xs)-1]
}

func TestCheckDatasetTriggersRefresh(t *testing.T) {
	sys := buildSystem(t)
	refreshed := false
	sys.SetRefresh(func(cert float64) error {
		refreshed = true
		return nil
	})

	// Familiar data: high certainty, no trigger.
	rng := rand.New(rand.NewSource(14))
	familiar := regimeAt(0).Generate(rng, 40)
	cert, triggered, err := sys.CheckDataset(familiar)
	if err != nil {
		t.Fatal(err)
	}
	if triggered || refreshed {
		t.Fatalf("trigger fired on familiar data (certainty %.3f)", cert)
	}

	// Radically novel data: certainty collapse → trigger.
	novel := datagen.DefaultBraggRegime()
	novel.Patch = testPatch
	novel.WidthMean = 6
	novel.AmpMean = 120
	novel.Noise = 4
	nsamples := novel.Generate(rng, 40)
	certN, triggeredN, err := sys.CheckDataset(nsamples)
	if err != nil {
		t.Fatal(err)
	}
	if certN >= cert {
		t.Fatalf("novel certainty %.3f not below familiar %.3f", certN, cert)
	}
	if !triggeredN || !refreshed {
		t.Fatalf("trigger did not fire at certainty %.3f", certN)
	}
}

func TestRefreshErrorPropagates(t *testing.T) {
	sys := buildSystem(t)
	boom := errors.New("refresh failed")
	sys.SetRefresh(func(float64) error { return boom })
	rng := rand.New(rand.NewSource(15))
	novel := datagen.DefaultBraggRegime()
	novel.Patch = testPatch
	novel.WidthMean = 6
	novel.AmpMean = 120
	novel.Noise = 4
	_, _, err := sys.CheckDataset(novel.Generate(rng, 30))
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped refresh error", err)
	}
}

func TestSplitSizes(t *testing.T) {
	x := tensor.New(10, 2)
	y := tensor.New(10, 1)
	tx, ty, vx, vy := Split(x, y, 0.2, 1)
	if tx.Dim(0) != 8 || vx.Dim(0) != 2 || ty.Dim(0) != 8 || vy.Dim(0) != 2 {
		t.Fatalf("split sizes %d/%d", tx.Dim(0), vx.Dim(0))
	}
	// Tiny sets still keep at least one row on each side.
	tx, _, vx, _ = Split(tensor.New(2, 1), tensor.New(2, 1), 0.9, 1)
	if tx.Dim(0) < 1 || vx.Dim(0) < 1 {
		t.Fatal("degenerate split")
	}
}
