package simcluster

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestEstimateWallTimePerfectScaling(t *testing.T) {
	p := Platform{Name: "test", Cores: 10}
	per := 100 * time.Millisecond
	// 10 tasks on 10 cores: one wave.
	if got := p.EstimateWallTime(10, per); got != per {
		t.Fatalf("10 tasks = %v, want %v", got, per)
	}
	// 11 tasks: two waves.
	if got := p.EstimateWallTime(11, per); got != 2*per {
		t.Fatalf("11 tasks = %v, want %v", got, 2*per)
	}
	if got := p.EstimateWallTime(0, per); got != 0 {
		t.Fatalf("0 tasks = %v", got)
	}
}

func TestEstimateWallTimeDegeneratePlatform(t *testing.T) {
	p := Platform{Cores: 0}
	if got := p.EstimateWallTime(3, time.Second); got != 3*time.Second {
		t.Fatalf("coreless platform = %v, want serial 3s", got)
	}
}

func TestMeasurePerTaskCounts(t *testing.T) {
	var runs atomic.Int64
	per := MeasurePerTask(func() { runs.Add(1) }, 7)
	if runs.Load() != 7 {
		t.Fatalf("task ran %d times, want 7", runs.Load())
	}
	if per < 0 {
		t.Fatal("negative per-task time")
	}
	// n < 1 clamps to 1.
	runs.Store(0)
	MeasurePerTask(func() { runs.Add(1) }, 0)
	if runs.Load() != 1 {
		t.Fatalf("clamped run count = %d", runs.Load())
	}
}

func TestRunParallelExecutesAll(t *testing.T) {
	var runs atomic.Int64
	tasks := make([]func(), 25)
	for i := range tasks {
		tasks[i] = func() { runs.Add(1) }
	}
	RunParallel(tasks, 4)
	if runs.Load() != 25 {
		t.Fatalf("ran %d of 25 tasks", runs.Load())
	}
	// Default worker count.
	runs.Store(0)
	RunParallel(tasks[:5], 0)
	if runs.Load() != 5 {
		t.Fatalf("default workers ran %d of 5", runs.Load())
	}
}

func TestExtrapolateEndToEnd(t *testing.T) {
	e := Extrapolate(Workstation80, func() { time.Sleep(time.Microsecond) }, 3, 800)
	if e.Tasks != 800 || e.Platform.Cores != 80 {
		t.Fatalf("extrapolation fields wrong: %+v", e)
	}
	// 800 tasks / 80 cores = 10 waves.
	if e.Wall != 10*e.PerTask {
		t.Fatalf("wall %v != 10 × %v", e.Wall, e.PerTask)
	}
	s := e.String()
	if !strings.Contains(s, "Voigt-80") || !strings.Contains(s, "800 tasks") {
		t.Fatalf("String() = %q", s)
	}
}

func TestClusterBeatsWorkstation(t *testing.T) {
	per := time.Second
	n := 10000
	w := Workstation80.EstimateWallTime(n, per)
	c := Cluster1440.EstimateWallTime(n, per)
	if c >= w {
		t.Fatalf("1440 cores (%v) not faster than 80 cores (%v)", c, w)
	}
	// Roughly 18× for large task counts.
	ratio := float64(w) / float64(c)
	if ratio < 15 || ratio > 20 {
		t.Fatalf("speedup ratio %g, want ≈ 18", ratio)
	}
}
