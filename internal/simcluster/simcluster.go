// Package simcluster models the compute platforms of the paper's case study
// (§III-H): an 80-core workstation ("Voigt-80") and an 18-node, 1440-core
// cluster ("Voigt-1440") running embarrassingly parallel pseudo-Voigt
// labeling. Neither machine exists here, so the package measures real
// per-task cost on the host's cores and extrapolates wall time under a
// perfect-scaling assumption — the most favorable case for the
// conventional baseline, making fairDMS's reported speedups conservative.
//
// The per-task cost it measures is the pseudo-Voigt fit from
// internal/voigt; internal/experiments uses the extrapolations for the
// §III-H comparison tables.
package simcluster

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Platform is a named pool of cores.
type Platform struct {
	Name  string
	Cores int
}

// Standard platforms from the paper.
var (
	Workstation80 = Platform{Name: "Voigt-80", Cores: 80}
	Cluster1440   = Platform{Name: "Voigt-1440", Cores: 1440}
)

// EstimateWallTime returns the wall time for nTasks independent tasks of
// the given mean duration under perfect scaling on the platform: ceil
// division of task count over cores times the per-task cost.
func (p Platform) EstimateWallTime(nTasks int, perTask time.Duration) time.Duration {
	if nTasks <= 0 {
		return 0
	}
	if p.Cores < 1 {
		return time.Duration(nTasks) * perTask
	}
	waves := (nTasks + p.Cores - 1) / p.Cores
	return time.Duration(waves) * perTask
}

// MeasurePerTask runs the task n times on this machine and returns the mean
// wall time per execution, the calibration input to EstimateWallTime.
func MeasurePerTask(task func(), n int) time.Duration {
	if n < 1 {
		n = 1
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		task()
	}
	return time.Since(start) / time.Duration(n)
}

// RunParallel executes tasks on up to workers goroutines (default: host
// cores) and returns the elapsed wall time. It is the honest local
// execution path used when the task count is small enough to run for real.
func RunParallel(tasks []func(), workers int) time.Duration {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	ch := make(chan func())
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				t()
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
	return time.Since(start)
}

// Extrapolation reports a calibrated estimate for one platform.
type Extrapolation struct {
	Platform Platform
	PerTask  time.Duration // measured mean per-task time on this host
	Tasks    int
	Wall     time.Duration // estimated wall time on the platform
}

// String formats the estimate for experiment reports.
func (e Extrapolation) String() string {
	return fmt.Sprintf("%s: %d tasks × %v/task ⇒ %v wall (%d cores, perfect scaling)",
		e.Platform.Name, e.Tasks, e.PerTask, e.Wall, e.Platform.Cores)
}

// Extrapolate calibrates per-task cost by running sampleN real executions
// of task on this host, then estimates wall time for nTasks on the platform.
func Extrapolate(p Platform, task func(), sampleN, nTasks int) Extrapolation {
	per := MeasurePerTask(task, sampleN)
	return Extrapolation{Platform: p, PerTask: per, Tasks: nTasks, Wall: p.EstimateWallTime(nTasks, per)}
}
