// Package fairds implements the FAIR Data Service (paper Fig. 3, §II-A):
// the pipeline that makes high-velocity scientific data findable and
// reusable without human labeling. It combines
//
//   - an Embedding module (any embed.Embedder) that compresses images into
//     compact semantic vectors,
//   - a Clustering module (k-means with automatic K via the elbow method)
//     that groups the embedding space for two-level hierarchical search,
//   - a Data Store (docstore collection, local or remote) holding labeled
//     historical samples indexed by cluster ID and embedding, and
//   - lookup operations: dataset PDFs (cluster occupancy distributions),
//     PDF-matched labeled-dataset retrieval (pseudo-labeling), per-sample
//     nearest-neighbor label reuse, and fuzzy-clustering certainty for the
//     uncertainty-triggered refresh of the system plane.
package fairds

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"fairdms/internal/cluster"
	"fairdms/internal/codec"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/stats"
	"fairdms/internal/tensor"
)

// DataStore is the slice of docstore behaviour fairDS needs. Both a local
// *docstore.Collection and the RemoteCollection adapter satisfy it.
type DataStore interface {
	InsertMany(fs []docstore.Fields) ([]string, error)
	GetMany(ids []string) ([]*docstore.Doc, error)
	Find(q docstore.Query) ([]*docstore.Doc, error)
	FindIDs(q docstore.Query) ([]string, error)
	SampleIDs(q docstore.Query, n int, seed int64) ([]string, error)
	Update(id string, f docstore.Fields) error
	CreateHashIndex(field string) error
	Count() int
}

// RemoteCollection adapts a docstore.Client to the DataStore interface for
// one named collection, making the backing MongoDB-equivalent location
// (in-process or across the network) transparent to fairDS.
type RemoteCollection struct {
	Client *docstore.Client
	Name   string
}

// InsertMany forwards to the remote collection.
func (r RemoteCollection) InsertMany(fs []docstore.Fields) ([]string, error) {
	return r.Client.InsertMany(r.Name, fs)
}

// GetMany forwards to the remote collection.
func (r RemoteCollection) GetMany(ids []string) ([]*docstore.Doc, error) {
	return r.Client.GetMany(r.Name, ids)
}

// Find forwards to the remote collection.
func (r RemoteCollection) Find(q docstore.Query) ([]*docstore.Doc, error) {
	return r.Client.Find(r.Name, q)
}

// FindIDs forwards to the remote collection.
func (r RemoteCollection) FindIDs(q docstore.Query) ([]string, error) {
	return r.Client.FindIDs(r.Name, q)
}

// SampleIDs forwards to the remote collection.
func (r RemoteCollection) SampleIDs(q docstore.Query, n int, seed int64) ([]string, error) {
	return r.Client.SampleIDs(r.Name, q, n, seed)
}

// Update forwards to the remote collection.
func (r RemoteCollection) Update(id string, f docstore.Fields) error {
	return r.Client.Update(r.Name, id, f)
}

// CreateHashIndex forwards to the remote collection.
func (r RemoteCollection) CreateHashIndex(field string) error {
	return r.Client.CreateHashIndex(r.Name, field)
}

// Count forwards to the remote collection.
func (r RemoteCollection) Count() int {
	n, err := r.Client.Count(r.Name, docstore.Query{})
	if err != nil {
		return 0
	}
	return n
}

// Config tunes the data service.
type Config struct {
	// Codec encodes sample payloads into store documents. Default: Block
	// (the "blosc" codec).
	Codec codec.Codec
	// KMin/KMax bound the elbow search for the cluster count.
	KMin, KMax int
	// Fuzzifier for certainty computation (default 2).
	Fuzzifier float64
	// Seed drives clustering and sampling determinism.
	Seed int64
}

func (c *Config) defaults() {
	if c.Codec == nil {
		c.Codec = codec.Block{}
	}
	if c.KMin <= 0 {
		c.KMin = 2
	}
	if c.KMax < c.KMin+2 {
		c.KMax = c.KMin + 8
	}
	if c.Fuzzifier <= 1 {
		c.Fuzzifier = 2
	}
}

// Service is a configured FAIR data service instance.
type Service struct {
	cfg      Config
	embedder embed.Embedder
	store    DataStore
	km       *cluster.KMeans
	wss      []float64 // WSS curve from the last SelectK run
}

// New builds a data service over an embedder and a store. The clustering
// model starts unset; call FitClusters (system plane) before lookups.
func New(embedder embed.Embedder, store DataStore, cfg Config) (*Service, error) {
	if embedder == nil {
		return nil, errors.New("fairds: nil embedder")
	}
	if store == nil {
		return nil, errors.New("fairds: nil store")
	}
	cfg.defaults()
	if err := store.CreateHashIndex("cluster"); err != nil {
		return nil, fmt.Errorf("fairds: indexing cluster field: %w", err)
	}
	return &Service{cfg: cfg, embedder: embedder, store: store}, nil
}

// Embedder returns the configured embedding module.
func (s *Service) Embedder() embed.Embedder { return s.embedder }

// Clusters returns the fitted clustering model (nil before FitClusters).
func (s *Service) Clusters() *cluster.KMeans { return s.km }

// WSSCurve returns the within-cluster-sum-of-squares curve from the last
// automatic K selection, for elbow diagnostics.
func (s *Service) WSSCurve() []float64 { return append([]float64(nil), s.wss...) }

// K returns the current cluster count (0 before FitClusters).
func (s *Service) K() int {
	if s.km == nil {
		return 0
	}
	return s.km.K()
}

// FitClusters (system plane) fits the clustering module on the embeddings
// of x, choosing K automatically by the elbow method.
func (s *Service) FitClusters(x *tensor.Tensor) error {
	rows := embed.EmbedRows(s.embedder, x)
	k, km, wss, err := cluster.SelectK(rows, s.cfg.KMin, s.cfg.KMax, s.cfg.Seed)
	if err != nil {
		return fmt.Errorf("fairds: selecting K: %w", err)
	}
	_ = k
	s.km = km
	s.wss = wss
	return nil
}

// FitClustersK (system plane) fits the clustering module with a fixed K,
// for experiments that pin the cluster count (the paper uses 15 for the
// Bragg data in Figs. 12 and 16).
func (s *Service) FitClustersK(x *tensor.Tensor, k int) error {
	rows := embed.EmbedRows(s.embedder, x)
	km, err := cluster.Fit(rows, cluster.Config{K: k, Seed: s.cfg.Seed})
	if err != nil {
		return fmt.Errorf("fairds: fitting %d clusters: %w", k, err)
	}
	s.km = km
	s.wss = nil
	return nil
}

// ErrNotFitted is returned by lookup paths called before FitClusters; it
// lets remote front ends distinguish "not ready yet" from internal failure.
var ErrNotFitted = errors.New("fairds: clustering model not fitted (run FitClusters first)")

// requireClusters guards lookup paths.
func (s *Service) requireClusters() error {
	if s.km == nil {
		return ErrNotFitted
	}
	return nil
}

// IngestLabeled (system plane) embeds labeled samples, assigns clusters,
// and stores them with payload, embedding, cluster ID, and dataset tag —
// building the index as data are written, which is what makes later label
// lookups cheap.
func (s *Service) IngestLabeled(samples []*codec.Sample, dataset string) ([]string, error) {
	if err := s.requireClusters(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, nil
	}
	x, err := collate(samples)
	if err != nil {
		return nil, err
	}
	rows := embed.EmbedRows(s.embedder, x)
	assign := s.km.Predict(rows)
	fields := make([]docstore.Fields, len(samples))
	for i, smp := range samples {
		raw, err := s.cfg.Codec.Encode(smp)
		if err != nil {
			return nil, fmt.Errorf("fairds: encoding sample %d: %w", i, err)
		}
		fields[i] = docstore.Fields{
			"payload":   raw,
			"cluster":   assign[i],
			"embedding": rows[i],
			"dataset":   dataset,
		}
	}
	ids, err := s.store.InsertMany(fields)
	if err != nil {
		return nil, fmt.Errorf("fairds: storing samples: %w", err)
	}
	return ids, nil
}

// DatasetPDF computes the cluster probability distribution of a dataset:
// the fraction of its samples assigned to each cluster. This compact
// signature is what fairMS indexes models by.
func (s *Service) DatasetPDF(x *tensor.Tensor) (stats.PDF, error) {
	if err := s.requireClusters(); err != nil {
		return nil, err
	}
	rows := embed.EmbedRows(s.embedder, x)
	return s.km.PDF(rows), nil
}

// Certainty returns the fraction of samples clustered with fuzzy
// membership of at least threshold — the §III-I trigger signal.
func (s *Service) Certainty(x *tensor.Tensor, threshold float64) (float64, error) {
	if err := s.requireClusters(); err != nil {
		return 0, err
	}
	rows := embed.EmbedRows(s.embedder, x)
	return s.km.Certainty(rows, s.cfg.Fuzzifier, threshold), nil
}

// LookupLabeled returns len(input) labeled historical samples whose cluster
// distribution matches the input dataset's PDF: for each cluster, a number
// of random labeled documents proportional to the input's occupancy
// (paper §II-A, "Data Store"). This is the pseudo-labeling operation that
// replaces expensive physics-based label computation. Per-cluster sample
// and fetch round trips run concurrently — the paper's "fetch using
// multiple clients" (§III-D) applied to the lookup path, which overlaps
// network latency when the store is remote and shard locks when it is
// local. Results are assembled in cluster order, so output is
// deterministic regardless of fetch completion order.
func (s *Service) LookupLabeled(x *tensor.Tensor) ([]*codec.Sample, error) {
	if err := s.requireClusters(); err != nil {
		return nil, err
	}
	pdf, err := s.DatasetPDF(x)
	if err != nil {
		return nil, err
	}
	want := x.Dim(0)
	counts := apportion(pdf, want)

	perCluster := make([][]*codec.Sample, len(counts))
	errs := make([]error, len(counts))
	var wg sync.WaitGroup
	for k, n := range counts {
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(k, n int) {
			defer wg.Done()
			ids, err := s.store.SampleIDs(docstore.Query{
				Filters: []docstore.Filter{docstore.Eq("cluster", k)},
			}, n, s.cfg.Seed+int64(k))
			if err != nil {
				errs[k] = fmt.Errorf("fairds: sampling cluster %d: %w", k, err)
				return
			}
			docs, err := s.store.GetMany(ids)
			if err != nil {
				errs[k] = fmt.Errorf("fairds: fetching cluster %d: %w", k, err)
				return
			}
			samples := make([]*codec.Sample, 0, len(docs))
			for _, d := range docs {
				smp, err := s.decodeDoc(d)
				if err != nil {
					errs[k] = err
					return
				}
				samples = append(samples, smp)
			}
			perCluster[k] = samples
		}(k, n)
	}
	wg.Wait()
	var out []*codec.Sample
	for k := range counts {
		if errs[k] != nil {
			return nil, errs[k]
		}
		out = append(out, perCluster[k]...)
	}
	if len(out) == 0 {
		return nil, errors.New("fairds: no labeled historical data matches the input distribution")
	}
	return out, nil
}

// NearestLabeled finds, for one unlabeled sample, the closest labeled
// historical sample in embedding space using two-level search (cluster
// first, then intra-cluster scan). It returns the sample and the embedding
// distance — the |b − p| the Fig. 9 threshold rule compares against T.
func (s *Service) NearestLabeled(sample *codec.Sample) (*codec.Sample, float64, error) {
	_, smp, dist, err := s.NearestLabeledExcluding(sample, nil)
	return smp, dist, err
}

// NearestLabeledExcluding is NearestLabeled with an exclusion set of
// document IDs, letting callers that reuse many labels (Fig. 9's BO
// construction) draw distinct historical samples. It also returns the
// matched document's ID. A nil sample with +Inf distance means the cluster
// holds no eligible documents.
func (s *Service) NearestLabeledExcluding(sample *codec.Sample, exclude map[string]bool) (string, *codec.Sample, float64, error) {
	if err := s.requireClusters(); err != nil {
		return "", nil, 0, err
	}
	x, err := collate([]*codec.Sample{sample})
	if err != nil {
		return "", nil, 0, err
	}
	rows := embed.EmbedRows(s.embedder, x)
	z := rows[0]
	k, _ := s.km.PredictOne(z)

	// Projected scan: only embeddings travel, not payloads — the store's
	// "efficient lookup by embedding indexing" requirement (paper §II-A).
	docs, err := s.store.Find(docstore.Query{
		Filters: []docstore.Filter{docstore.Eq("cluster", k)},
		Project: []string{"embedding"},
	})
	if err != nil {
		return "", nil, 0, fmt.Errorf("fairds: scanning cluster %d: %w", k, err)
	}
	best := math.Inf(1)
	bestID := ""
	for _, d := range docs {
		if exclude[d.ID] {
			continue
		}
		emb, ok := d.F["embedding"].([]float64)
		if !ok || len(emb) != len(z) {
			continue
		}
		if dist := tensor.SquaredDistance(z, emb); dist < best {
			best = dist
			bestID = d.ID
		}
	}
	if bestID == "" {
		return "", nil, math.Inf(1), nil
	}
	full, err := s.store.GetMany([]string{bestID})
	if err != nil {
		return "", nil, 0, err
	}
	smp, err := s.decodeDoc(full[0])
	if err != nil {
		return "", nil, 0, err
	}
	return bestID, smp, math.Sqrt(best), nil
}

// Match pairs an input sample with its nearest labeled historical document.
type Match struct {
	DocID string  // "" when the sample's cluster holds no eligible docs
	Dist  float64 // embedding distance (+Inf when DocID is "")
}

// NearestMatches finds the nearest labeled historical document for every
// input sample using one batched embedding pass and one projected
// embedding scan per touched cluster. With distinct=true, each document is
// matched at most once (greedy, in input order). Payloads are not fetched;
// use GetSamples on the IDs the caller decides to reuse. This is the
// high-throughput path for Fig. 9-style bulk label reuse.
func (s *Service) NearestMatches(samples []*codec.Sample, distinct bool) ([]Match, error) {
	if err := s.requireClusters(); err != nil {
		return nil, err
	}
	x, err := collate(samples)
	if err != nil {
		return nil, err
	}
	rows := embed.EmbedRows(s.embedder, x)
	assign := s.km.Predict(rows)

	// One projected scan per distinct cluster.
	type entry struct {
		id  string
		emb []float64
	}
	clusterDocs := make(map[int][]entry)
	for _, k := range assign {
		if _, done := clusterDocs[k]; done {
			continue
		}
		docs, err := s.store.Find(docstore.Query{
			Filters: []docstore.Filter{docstore.Eq("cluster", k)},
			Project: []string{"embedding"},
		})
		if err != nil {
			return nil, fmt.Errorf("fairds: scanning cluster %d: %w", k, err)
		}
		var entries []entry
		for _, d := range docs {
			if emb, ok := d.F["embedding"].([]float64); ok {
				entries = append(entries, entry{id: d.ID, emb: emb})
			}
		}
		clusterDocs[k] = entries
	}

	used := make(map[string]bool)
	out := make([]Match, len(samples))
	for i := range samples {
		best := math.Inf(1)
		bestID := ""
		for _, e := range clusterDocs[assign[i]] {
			if distinct && used[e.id] {
				continue
			}
			if len(e.emb) != len(rows[i]) {
				continue
			}
			if d := tensor.SquaredDistance(rows[i], e.emb); d < best {
				best = d
				bestID = e.id
			}
		}
		if bestID != "" && distinct {
			used[bestID] = true
		}
		out[i] = Match{DocID: bestID, Dist: math.Sqrt(best)}
	}
	return out, nil
}

// GetSamples fetches and decodes the stored samples with the given IDs.
func (s *Service) GetSamples(ids []string) ([]*codec.Sample, error) {
	docs, err := s.store.GetMany(ids)
	if err != nil {
		return nil, err
	}
	out := make([]*codec.Sample, len(docs))
	for i, d := range docs {
		smp, err := s.decodeDoc(d)
		if err != nil {
			return nil, err
		}
		out[i] = smp
	}
	return out, nil
}

// StoreCount reports how many labeled samples the store holds.
func (s *Service) StoreCount() int { return s.store.Count() }

// Reindex is the system-plane maintenance pass of paper §II-C: after the
// embedding model has been retrained (or replaced via SetEmbedder), every
// stored document's embedding is recomputed, the clustering model is refit
// with k clusters on the refreshed embeddings, and each document's cluster
// assignment is updated in place. Batched in chunks so memory stays
// bounded on large stores. Returns the number of documents reindexed.
func (s *Service) Reindex(k int) (int, error) {
	ids, err := s.store.FindIDs(docstore.Query{})
	if err != nil {
		return 0, fmt.Errorf("fairds: reindex scan: %w", err)
	}
	if len(ids) == 0 {
		return 0, errors.New("fairds: reindex of an empty store")
	}

	// Pass 1: re-embed every document.
	const chunk = 256
	embeddings := make([][]float64, len(ids))
	for lo := 0; lo < len(ids); lo += chunk {
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		docs, err := s.store.GetMany(ids[lo:hi])
		if err != nil {
			return 0, fmt.Errorf("fairds: reindex fetch: %w", err)
		}
		samples := make([]*codec.Sample, len(docs))
		for i, d := range docs {
			smp, err := s.decodeDoc(d)
			if err != nil {
				return 0, err
			}
			samples[i] = smp
		}
		x, err := collate(samples)
		if err != nil {
			return 0, err
		}
		rows := embed.EmbedRows(s.embedder, x)
		copy(embeddings[lo:hi], rows)
	}

	// Refit the clustering model on the refreshed embeddings.
	km, err := cluster.Fit(embeddings, cluster.Config{K: k, Seed: s.cfg.Seed})
	if err != nil {
		return 0, fmt.Errorf("fairds: reindex clustering: %w", err)
	}
	assign := km.Predict(embeddings)

	// Pass 2: write back embeddings + cluster assignments.
	for i, id := range ids {
		err := s.store.Update(id, docstore.Fields{
			"embedding": embeddings[i],
			"cluster":   assign[i],
		})
		if err != nil {
			return i, fmt.Errorf("fairds: reindex update %s: %w", id, err)
		}
	}
	s.km = km
	s.wss = nil
	return len(ids), nil
}

// SetEmbedder swaps the embedding module (e.g. after system-plane
// retraining). Callers must Reindex afterwards so stored embeddings and
// cluster assignments match the new model.
func (s *Service) SetEmbedder(e embed.Embedder) error {
	if e == nil {
		return errors.New("fairds: nil embedder")
	}
	s.embedder = e
	return nil
}

// decodeDoc decodes the payload field of a stored document.
func (s *Service) decodeDoc(d *docstore.Doc) (*codec.Sample, error) {
	raw, ok := d.F["payload"].([]byte)
	if !ok {
		return nil, fmt.Errorf("fairds: doc %s has no []byte payload", d.ID)
	}
	smp, err := s.cfg.Codec.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("fairds: decoding doc %s: %w", d.ID, err)
	}
	return smp, nil
}

// apportion converts a PDF into integer per-cluster counts summing to n
// (largest-remainder method).
func apportion(pdf stats.PDF, n int) []int {
	counts := make([]int, len(pdf))
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, len(pdf))
	total := 0
	for i, p := range pdf {
		exact := p * float64(n)
		counts[i] = int(exact)
		fracs[i] = frac{idx: i, rem: exact - float64(counts[i])}
		total += counts[i]
	}
	// Distribute the remainder to the largest fractional parts.
	for total < n {
		best := -1
		for i := range fracs {
			if best < 0 || fracs[i].rem > fracs[best].rem {
				best = i
			}
		}
		counts[fracs[best].idx]++
		fracs[best].rem = -1
		total++
	}
	return counts
}

// collate stacks samples into a (N, features) tensor.
func collate(samples []*codec.Sample) (*tensor.Tensor, error) {
	if len(samples) == 0 {
		return nil, errors.New("fairds: empty sample set")
	}
	feat := samples[0].Elems()
	x := tensor.New(len(samples), feat)
	for i, smp := range samples {
		if smp.Elems() != feat {
			return nil, fmt.Errorf("fairds: sample %d has %d elements, expected %d", i, smp.Elems(), feat)
		}
		copy(x.Row(i), smp.Floats())
	}
	return x, nil
}

// Collate is the exported form used by callers assembling tensors from
// retrieved samples.
func Collate(samples []*codec.Sample) (*tensor.Tensor, error) { return collate(samples) }
