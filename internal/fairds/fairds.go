// Package fairds implements the FAIR Data Service (paper Fig. 3, §II-A):
// the pipeline that makes high-velocity scientific data findable and
// reusable without human labeling. It combines
//
//   - an Embedding module (any embed.Embedder) that compresses images into
//     compact semantic vectors,
//   - a Clustering module (k-means with automatic K via the elbow method)
//     that groups the embedding space for two-level hierarchical search,
//   - a Data Store (docstore collection, local or remote) holding labeled
//     historical samples indexed by cluster ID and embedding, and
//   - lookup operations: dataset PDFs (cluster occupancy distributions),
//     PDF-matched labeled-dataset retrieval (pseudo-labeling), per-sample
//     nearest-neighbor label reuse, and fuzzy-clustering certainty for the
//     uncertainty-triggered refresh of the system plane.
package fairds

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"sync"
	"sync/atomic"

	"fairdms/internal/cluster"
	"fairdms/internal/codec"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/obs"
	"fairdms/internal/stats"
	"fairdms/internal/tensor"
	"fairdms/internal/vecindex"
)

// DataStore is the slice of docstore behaviour fairDS needs. Both a local
// *docstore.Collection and the RemoteCollection adapter satisfy it.
type DataStore interface {
	InsertMany(fs []docstore.Fields) ([]string, error)
	GetMany(ids []string) ([]*docstore.Doc, error)
	Find(q docstore.Query) ([]*docstore.Doc, error)
	FindIDs(q docstore.Query) ([]string, error)
	SampleIDs(q docstore.Query, n int, seed int64) ([]string, error)
	Update(id string, f docstore.Fields) error
	CreateHashIndex(field string) error
	Count() int
}

// RemoteCollection adapts a docstore.Client to the DataStore interface for
// one named collection, making the backing MongoDB-equivalent location
// (in-process or across the network) transparent to fairDS.
type RemoteCollection struct {
	Client *docstore.Client
	Name   string
}

// InsertMany forwards to the remote collection.
func (r RemoteCollection) InsertMany(fs []docstore.Fields) ([]string, error) {
	return r.Client.InsertMany(r.Name, fs)
}

// GetMany forwards to the remote collection.
func (r RemoteCollection) GetMany(ids []string) ([]*docstore.Doc, error) {
	return r.Client.GetMany(r.Name, ids)
}

// Find forwards to the remote collection.
func (r RemoteCollection) Find(q docstore.Query) ([]*docstore.Doc, error) {
	return r.Client.Find(r.Name, q)
}

// FindIDs forwards to the remote collection.
func (r RemoteCollection) FindIDs(q docstore.Query) ([]string, error) {
	return r.Client.FindIDs(r.Name, q)
}

// SampleIDs forwards to the remote collection.
func (r RemoteCollection) SampleIDs(q docstore.Query, n int, seed int64) ([]string, error) {
	return r.Client.SampleIDs(r.Name, q, n, seed)
}

// Update forwards to the remote collection.
func (r RemoteCollection) Update(id string, f docstore.Fields) error {
	return r.Client.Update(r.Name, id, f)
}

// CreateHashIndex forwards to the remote collection.
func (r RemoteCollection) CreateHashIndex(field string) error {
	return r.Client.CreateHashIndex(r.Name, field)
}

// ApplyTxn forwards a whole transaction to the remote collection.
func (r RemoteCollection) ApplyTxn(ops []docstore.TxnOp) ([]string, error) {
	return r.Client.ApplyTxn(r.Name, ops)
}

// CountChecked is Count with the RPC error preserved, so callers that must
// distinguish "empty" from "unreachable" (the New readiness decision) can.
func (r RemoteCollection) CountChecked() (int, error) {
	return r.Client.Count(r.Name, docstore.Query{})
}

// Count forwards to the remote collection.
func (r RemoteCollection) Count() int {
	n, err := r.Client.Count(r.Name, docstore.Query{})
	if err != nil {
		return 0
	}
	return n
}

// Config tunes the data service.
type Config struct {
	// Codec encodes sample payloads into store documents. Default: Block
	// (the "blosc" codec).
	Codec codec.Codec
	// KMin/KMax bound the elbow search for the cluster count.
	KMin, KMax int
	// Fuzzifier for certainty computation (default 2).
	Fuzzifier float64
	// Seed drives clustering and sampling determinism.
	Seed int64
	// Index is the in-process vector index consulted by the nearest-label
	// paths (vecindex.NewFlat by default; pass vecindex.NewIVF for
	// approximate sublinear probes on very large clusters). Set
	// DisableIndex to force the store-scan path instead.
	Index vecindex.Index
	// DisableIndex turns the vector index off entirely: every
	// nearest-label query scans the store. Useful as the parity and
	// benchmark baseline.
	DisableIndex bool
	// Logger receives corrupt-embedding and index-maintenance warnings;
	// nil silences them.
	Logger *log.Logger
}

func (c *Config) defaults() {
	if c.Codec == nil {
		c.Codec = codec.Block{}
	}
	if c.KMin <= 0 {
		c.KMin = 2
	}
	if c.KMax < c.KMin+2 {
		c.KMax = c.KMin + 8
	}
	if c.Fuzzifier <= 1 {
		c.Fuzzifier = 2
	}
}

// Service is a configured FAIR data service instance.
type Service struct {
	cfg      Config
	embedder embed.Embedder
	store    DataStore
	km       *cluster.KMeans
	wss      []float64 // WSS curve from the last SelectK run

	// idx mirrors (doc ID, cluster, embedding) in process so nearest-label
	// queries probe memory instead of scanning the store over the wire.
	// idxReady reports whether the index covers the store: true from the
	// start for a store born empty (ingests keep it current), and after
	// WarmIndex or Reindex otherwise. While false, nearest-label queries
	// fall back to the brute-force store scan.
	idx      vecindex.Index
	idxReady atomic.Bool

	idxHits   atomic.Int64 // nearest-label queries answered by the index
	idxMisses atomic.Int64 // queries that fell back to a store scan
	corrupt   atomic.Int64 // stored embeddings rejected as corrupt
}

// New builds a data service over an embedder and a store. The clustering
// model starts unset; call FitClusters (system plane) before lookups.
func New(embedder embed.Embedder, store DataStore, cfg Config) (*Service, error) {
	if embedder == nil {
		return nil, errors.New("fairds: nil embedder")
	}
	if store == nil {
		return nil, errors.New("fairds: nil store")
	}
	cfg.defaults()
	if err := store.CreateHashIndex("cluster"); err != nil {
		return nil, fmt.Errorf("fairds: indexing cluster field: %w", err)
	}
	s := &Service{cfg: cfg, embedder: embedder, store: store}
	if !cfg.DisableIndex {
		s.idx = cfg.Index
		if s.idx == nil {
			s.idx = vecindex.NewFlat()
		}
		// A store that is empty at construction stays covered by ingests
		// alone; a pre-populated one needs WarmIndex (or Reindex) first.
		// Crucially, "empty" must not be confused with "unreachable": a
		// remote store whose count RPC failed must start cold, or the index
		// would confidently answer no-neighbor for every existing document.
		s.idxReady.Store(storeKnownEmpty(store))
	}
	return s, nil
}

// countChecker is an optional DataStore upgrade: a Count that can report
// failure. RemoteCollection implements it; a local *docstore.Collection
// cannot fail and does not need to.
type countChecker interface {
	CountChecked() (int, error)
}

// TxnStore is an optional DataStore upgrade: a backend that can commit a
// batch of operations as one all-or-nothing transaction (one WAL commit
// record when the backing store is durable). Both *docstore.Collection
// and RemoteCollection implement it; batch ingest uses it to commit each
// chunk atomically.
type TxnStore interface {
	ApplyTxn(ops []docstore.TxnOp) ([]string, error)
}

// storeKnownEmpty reports whether the store is verifiably empty —
// errors count as "unknown", never as empty.
func storeKnownEmpty(store DataStore) bool {
	if cc, ok := store.(countChecker); ok {
		n, err := cc.CountChecked()
		return err == nil && n == 0
	}
	return store.Count() == 0
}

// Embedder returns the configured embedding module.
func (s *Service) Embedder() embed.Embedder { return s.embedder }

// Clusters returns the fitted clustering model (nil before FitClusters).
func (s *Service) Clusters() *cluster.KMeans { return s.km }

// WSSCurve returns the within-cluster-sum-of-squares curve from the last
// automatic K selection, for elbow diagnostics.
func (s *Service) WSSCurve() []float64 { return append([]float64(nil), s.wss...) }

// K returns the current cluster count (0 before FitClusters).
func (s *Service) K() int {
	if s.km == nil {
		return 0
	}
	return s.km.K()
}

// FitClusters (system plane) fits the clustering module on the embeddings
// of x, choosing K automatically by the elbow method.
func (s *Service) FitClusters(x *tensor.Tensor) error {
	rows := embed.EmbedRows(s.embedder, x)
	k, km, wss, err := cluster.SelectK(rows, s.cfg.KMin, s.cfg.KMax, s.cfg.Seed)
	if err != nil {
		return fmt.Errorf("fairds: selecting K: %w", err)
	}
	_ = k
	s.km = km
	s.wss = wss
	return nil
}

// FitClustersK (system plane) fits the clustering module with a fixed K,
// for experiments that pin the cluster count (the paper uses 15 for the
// Bragg data in Figs. 12 and 16).
func (s *Service) FitClustersK(x *tensor.Tensor, k int) error {
	rows := embed.EmbedRows(s.embedder, x)
	km, err := cluster.Fit(rows, cluster.Config{K: k, Seed: s.cfg.Seed})
	if err != nil {
		return fmt.Errorf("fairds: fitting %d clusters: %w", k, err)
	}
	s.km = km
	s.wss = nil
	return nil
}

// ErrNotFitted is returned by lookup paths called before FitClusters; it
// lets remote front ends distinguish "not ready yet" from internal failure.
var ErrNotFitted = errors.New("fairds: clustering model not fitted (run FitClusters first)")

// requireClusters guards lookup paths.
func (s *Service) requireClusters() error {
	if s.km == nil {
		return ErrNotFitted
	}
	return nil
}

// IngestLabeled (system plane) embeds labeled samples, assigns clusters,
// and stores them with payload, embedding, cluster ID, and dataset tag —
// building the index as data are written, which is what makes later label
// lookups cheap.
func (s *Service) IngestLabeled(samples []*codec.Sample, dataset string) ([]string, error) {
	return s.IngestLabeledContext(context.Background(), samples, dataset)
}

// IngestLabeledContext is IngestLabeled with a context carrying an
// optional obs trace; stage spans (embed, encode, store_insert,
// index_add) attach to it. The database/sql QueryContext convention:
// serving paths call the Context form, batch/offline callers keep the
// plain one.
func (s *Service) IngestLabeledContext(ctx context.Context, samples []*codec.Sample, dataset string) ([]string, error) {
	if err := s.requireClusters(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, nil
	}
	_, sp := obs.StartSpan(ctx, "embed")
	x, err := collate(samples)
	if err != nil {
		sp.End()
		return nil, err
	}
	rows := embed.EmbedRows(s.embedder, x)
	assign := s.km.Predict(rows)
	sp.End()

	_, sp = obs.StartSpan(ctx, "encode")
	fields := make([]docstore.Fields, len(samples))
	for i, smp := range samples {
		raw, err := s.cfg.Codec.Encode(smp)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("fairds: encoding sample %d: %w", i, err)
		}
		fields[i] = docstore.Fields{
			"payload":   raw,
			"cluster":   assign[i],
			"embedding": rows[i],
			"dataset":   dataset,
		}
	}
	sp.End()

	_, sp = obs.StartSpan(ctx, "store_insert")
	ids, err := s.store.InsertMany(fields)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("fairds: storing samples: %w", err)
	}
	// A cold index is skipped entirely: it needs a wholesale WarmIndex or
	// Reindex anyway, and after SetEmbedder the new-dimension rows would
	// only produce a flood of false "corrupt" rejections.
	if s.indexReady() {
		_, sp = obs.StartSpan(ctx, "index_add")
		for i, id := range ids {
			if err := s.idx.Add(id, assign[i], rows[i]); err != nil {
				// The store write already succeeded; an index refusal (a
				// dimension drift the caller never reconciled via Reindex)
				// degrades that document to fallback-only lookup.
				s.noteCorrupt(id, err)
			}
		}
		sp.End()
	}
	return ids, nil
}

// DatasetPDF computes the cluster probability distribution of a dataset:
// the fraction of its samples assigned to each cluster. This compact
// signature is what fairMS indexes models by.
func (s *Service) DatasetPDF(x *tensor.Tensor) (stats.PDF, error) {
	return s.DatasetPDFContext(context.Background(), x)
}

// DatasetPDFContext is DatasetPDF with trace-span stages (embed, pdf).
func (s *Service) DatasetPDFContext(ctx context.Context, x *tensor.Tensor) (stats.PDF, error) {
	if err := s.requireClusters(); err != nil {
		return nil, err
	}
	_, sp := obs.StartSpan(ctx, "embed")
	rows := embed.EmbedRows(s.embedder, x)
	sp.End()
	_, sp = obs.StartSpan(ctx, "pdf")
	defer sp.End()
	return s.km.PDF(rows), nil
}

// Certainty returns the fraction of samples clustered with fuzzy
// membership of at least threshold — the §III-I trigger signal.
func (s *Service) Certainty(x *tensor.Tensor, threshold float64) (float64, error) {
	return s.CertaintyContext(context.Background(), x, threshold)
}

// CertaintyContext is Certainty with trace-span stages (embed,
// certainty).
func (s *Service) CertaintyContext(ctx context.Context, x *tensor.Tensor, threshold float64) (float64, error) {
	if err := s.requireClusters(); err != nil {
		return 0, err
	}
	_, sp := obs.StartSpan(ctx, "embed")
	rows := embed.EmbedRows(s.embedder, x)
	sp.End()
	_, sp = obs.StartSpan(ctx, "certainty")
	defer sp.End()
	return s.km.Certainty(rows, s.cfg.Fuzzifier, threshold), nil
}

// LookupLabeled returns len(input) labeled historical samples whose cluster
// distribution matches the input dataset's PDF: for each cluster, a number
// of random labeled documents proportional to the input's occupancy
// (paper §II-A, "Data Store"). This is the pseudo-labeling operation that
// replaces expensive physics-based label computation. Per-cluster sample
// and fetch round trips run concurrently — the paper's "fetch using
// multiple clients" (§III-D) applied to the lookup path, which overlaps
// network latency when the store is remote and shard locks when it is
// local. Results are assembled in cluster order, so output is
// deterministic regardless of fetch completion order.
func (s *Service) LookupLabeled(x *tensor.Tensor) ([]*codec.Sample, error) {
	return s.LookupLabeledContext(context.Background(), x)
}

// LookupLabeledContext is LookupLabeled with trace-span stages: the PDF
// stages plus a store_lookup span covering the concurrent per-cluster
// round trips (each of which records its own store_sample and
// store_fetch spans).
func (s *Service) LookupLabeledContext(ctx context.Context, x *tensor.Tensor) ([]*codec.Sample, error) {
	if err := s.requireClusters(); err != nil {
		return nil, err
	}
	pdf, err := s.DatasetPDFContext(ctx, x)
	if err != nil {
		return nil, err
	}
	want := x.Dim(0)
	counts := apportion(pdf, want)

	lctx, lookupSpan := obs.StartSpan(ctx, "store_lookup")
	perCluster := make([][]*codec.Sample, len(counts))
	errs := make([]error, len(counts))
	var wg sync.WaitGroup
	for k, n := range counts {
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(k, n int) {
			defer wg.Done()
			_, sp := obs.StartSpan(lctx, "store_sample")
			ids, err := s.store.SampleIDs(docstore.Query{
				Filters: []docstore.Filter{docstore.Eq("cluster", k)},
			}, n, s.cfg.Seed+int64(k))
			sp.End()
			if err != nil {
				errs[k] = fmt.Errorf("fairds: sampling cluster %d: %w", k, err)
				return
			}
			_, sp = obs.StartSpan(lctx, "store_fetch")
			docs, err := s.store.GetMany(ids)
			sp.End()
			if err != nil {
				errs[k] = fmt.Errorf("fairds: fetching cluster %d: %w", k, err)
				return
			}
			samples := make([]*codec.Sample, 0, len(docs))
			for _, d := range docs {
				smp, err := s.decodeDoc(d)
				if err != nil {
					errs[k] = err
					return
				}
				samples = append(samples, smp)
			}
			perCluster[k] = samples
		}(k, n)
	}
	wg.Wait()
	lookupSpan.End()
	var out []*codec.Sample
	for k := range counts {
		if errs[k] != nil {
			return nil, errs[k]
		}
		out = append(out, perCluster[k]...)
	}
	if len(out) == 0 {
		return nil, errors.New("fairds: no labeled historical data matches the input distribution")
	}
	return out, nil
}

// NearestLabeled finds, for one unlabeled sample, the closest labeled
// historical sample in embedding space using two-level search (cluster
// first, then intra-cluster scan). It returns the sample and the embedding
// distance — the |b − p| the Fig. 9 threshold rule compares against T.
func (s *Service) NearestLabeled(sample *codec.Sample) (*codec.Sample, float64, error) {
	_, smp, dist, err := s.NearestLabeledExcluding(sample, nil)
	return smp, dist, err
}

// NearestLabeledExcluding is NearestLabeled with an exclusion set of
// document IDs, letting callers that reuse many labels (Fig. 9's BO
// construction) draw distinct historical samples. It also returns the
// matched document's ID. A nil sample with +Inf distance means the cluster
// holds no eligible documents.
func (s *Service) NearestLabeledExcluding(sample *codec.Sample, exclude map[string]bool) (string, *codec.Sample, float64, error) {
	if err := s.requireClusters(); err != nil {
		return "", nil, 0, err
	}
	x, err := collate([]*codec.Sample{sample})
	if err != nil {
		return "", nil, 0, err
	}
	rows := embed.EmbedRows(s.embedder, x)
	z := rows[0]
	k, _ := s.km.PredictOne(z)

	best := math.Inf(1)
	bestID := ""
	if s.indexReady() {
		// In-process probe: no store round trip at all. An empty exclusion
		// set passes nil so the slab scan skips the per-vector callback.
		s.idxHits.Add(1)
		var excl func(string) bool
		if len(exclude) > 0 {
			excl = func(id string) bool { return exclude[id] }
		}
		if res, ok := s.idx.Nearest(k, z, excl); ok {
			best, bestID = res.Dist2, res.ID
		}
	} else {
		// Cold fallback — projected scan: only embeddings travel, not
		// payloads (the paper's §II-A "efficient lookup by embedding
		// indexing" requirement, minus the in-process index).
		s.idxMisses.Add(1)
		docs, err := s.store.Find(docstore.Query{
			Filters: []docstore.Filter{docstore.Eq("cluster", k)},
			Project: []string{"embedding"},
		})
		if err != nil {
			return "", nil, 0, fmt.Errorf("fairds: scanning cluster %d: %w", k, err)
		}
		for _, d := range docs {
			if exclude[d.ID] {
				continue
			}
			emb, ok := embedding(d, len(z))
			if !ok {
				s.noteCorrupt(d.ID, errBadEmbedding)
				continue
			}
			if dist := tensor.SquaredDistance(z, emb); dist < best {
				best = dist
				bestID = d.ID
			}
		}
	}
	if bestID == "" {
		return "", nil, math.Inf(1), nil
	}
	full, err := s.store.GetMany([]string{bestID})
	if err != nil {
		return "", nil, 0, err
	}
	smp, err := s.decodeDoc(full[0])
	if err != nil {
		return "", nil, 0, err
	}
	return bestID, smp, math.Sqrt(best), nil
}

// Match pairs an input sample with its nearest labeled historical document.
type Match struct {
	DocID string  // "" when the sample's cluster holds no eligible docs
	Dist  float64 // embedding distance (+Inf when DocID is "")
}

// NearestMatches finds the nearest labeled historical document for every
// input sample using one batched embedding pass and one projected
// embedding scan per touched cluster. With distinct=true, each document is
// matched at most once (greedy, in input order). Payloads are not fetched;
// use GetSamples on the IDs the caller decides to reuse. This is the
// high-throughput path for Fig. 9-style bulk label reuse.
func (s *Service) NearestMatches(samples []*codec.Sample, distinct bool) ([]Match, error) {
	return s.NearestMatchesContext(context.Background(), samples, distinct)
}

// NearestMatchesContext is NearestMatches with trace-span stages: embed,
// then index_probe (warm index) or store_scan (cold fallback).
func (s *Service) NearestMatchesContext(ctx context.Context, samples []*codec.Sample, distinct bool) ([]Match, error) {
	return s.NearestMatchesExcluding(ctx, samples, distinct, nil)
}

// NearestMatchesExcluding is NearestMatchesContext with an initial
// exclusion set: documents in exclude are never matched, exactly as if
// they had already been taken by an earlier distinct match. This is the
// primitive the cluster router's iterative distinct-merge is built on —
// re-querying conflicted samples with the globally-taken IDs excluded.
// exclude is read, not mutated.
func (s *Service) NearestMatchesExcluding(ctx context.Context, samples []*codec.Sample, distinct bool, exclude map[string]bool) ([]Match, error) {
	if err := s.requireClusters(); err != nil {
		return nil, err
	}
	_, sp := obs.StartSpan(ctx, "embed")
	x, err := collate(samples)
	if err != nil {
		sp.End()
		return nil, err
	}
	rows := embed.EmbedRows(s.embedder, x)
	assign := s.km.Predict(rows)
	sp.End()

	used := make(map[string]bool, len(exclude))
	for id := range exclude {
		used[id] = true
	}
	out := make([]Match, len(samples))

	if s.indexReady() {
		// In-process probes: one index query per sample, no store traffic.
		s.idxHits.Add(int64(len(samples)))
		_, sp := obs.StartSpan(ctx, "index_probe")
		defer sp.End()
		var skip func(string) bool
		if distinct || len(used) > 0 {
			skip = func(id string) bool { return used[id] }
		}
		for i := range samples {
			res, ok := s.idx.Nearest(assign[i], rows[i], skip)
			if !ok {
				out[i] = Match{Dist: math.Inf(1)}
				continue
			}
			if distinct {
				used[res.ID] = true
			}
			out[i] = Match{DocID: res.ID, Dist: math.Sqrt(res.Dist2)}
		}
		return out, nil
	}

	// Cold fallback: one projected scan per distinct cluster.
	s.idxMisses.Add(int64(len(samples)))
	_, scanSpan := obs.StartSpan(ctx, "store_scan")
	defer scanSpan.End()
	type entry struct {
		id  string
		emb []float64
	}
	clusterDocs := make(map[int][]entry)
	for i, k := range assign {
		if _, done := clusterDocs[k]; done {
			continue
		}
		docs, err := s.store.Find(docstore.Query{
			Filters: []docstore.Filter{docstore.Eq("cluster", k)},
			Project: []string{"embedding"},
		})
		if err != nil {
			return nil, fmt.Errorf("fairds: scanning cluster %d: %w", k, err)
		}
		var entries []entry
		for _, d := range docs {
			emb, ok := embedding(d, len(rows[i]))
			if !ok {
				s.noteCorrupt(d.ID, errBadEmbedding)
				continue
			}
			entries = append(entries, entry{id: d.ID, emb: emb})
		}
		clusterDocs[k] = entries
	}

	for i := range samples {
		best := math.Inf(1)
		bestID := ""
		for _, e := range clusterDocs[assign[i]] {
			if (distinct || len(exclude) > 0) && used[e.id] {
				continue
			}
			if d := tensor.SquaredDistance(rows[i], e.emb); d < best {
				best = d
				bestID = e.id
			}
		}
		if bestID != "" && distinct {
			used[bestID] = true
		}
		out[i] = Match{DocID: bestID, Dist: math.Sqrt(best)}
	}
	return out, nil
}

// DatasetSamples fetches and decodes every stored sample ingested under
// the given dataset tag — the selector the server-side trainer resolves a
// "train on scan X" job against without the samples crossing the wire
// again.
func (s *Service) DatasetSamples(dataset string) ([]*codec.Sample, error) {
	return s.DatasetSamplesContext(context.Background(), dataset)
}

// DatasetSamplesContext is DatasetSamples with trace-span stages
// (store_scan, decode) — the trainer's data-resolution path.
func (s *Service) DatasetSamplesContext(ctx context.Context, dataset string) ([]*codec.Sample, error) {
	if dataset == "" {
		return nil, errors.New("fairds: empty dataset tag")
	}
	_, sp := obs.StartSpan(ctx, "store_scan")
	docs, err := s.store.Find(docstore.Query{
		Filters: []docstore.Filter{docstore.Eq("dataset", dataset)},
	})
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("fairds: fetching dataset %q: %w", dataset, err)
	}
	_, sp = obs.StartSpan(ctx, "decode")
	defer sp.End()
	out := make([]*codec.Sample, len(docs))
	for i, d := range docs {
		smp, err := s.decodeDoc(d)
		if err != nil {
			return nil, err
		}
		out[i] = smp
	}
	return out, nil
}

// GetSamples fetches and decodes the stored samples with the given IDs.
func (s *Service) GetSamples(ids []string) ([]*codec.Sample, error) {
	docs, err := s.store.GetMany(ids)
	if err != nil {
		return nil, err
	}
	out := make([]*codec.Sample, len(docs))
	for i, d := range docs {
		smp, err := s.decodeDoc(d)
		if err != nil {
			return nil, err
		}
		out[i] = smp
	}
	return out, nil
}

// SamplesByIDContext fetches and decodes stored samples by ID. With
// partial, IDs that do not resolve (or decode) are returned in missing
// instead of failing the call — the tolerant path a cluster router uses
// when assembling a lookup from shards that may have compacted between
// the candidate listing and the fetch. Returned samples follow the
// request order with misses skipped.
func (s *Service) SamplesByIDContext(ctx context.Context, ids []string, partial bool) ([]*codec.Sample, []string, error) {
	_, sp := obs.StartSpan(ctx, "store_fetch")
	defer sp.End()
	if !partial {
		out, err := s.GetSamples(ids)
		return out, nil, err
	}
	out := make([]*codec.Sample, 0, len(ids))
	var missing []string
	for _, id := range ids {
		docs, err := s.store.GetMany([]string{id})
		if err != nil {
			missing = append(missing, id)
			continue
		}
		smp, err := s.decodeDoc(docs[0])
		if err != nil {
			missing = append(missing, id)
			continue
		}
		out = append(out, smp)
	}
	return out, missing, nil
}

// ClusterDocIDs lists the document IDs assigned to one cluster, sorted —
// the candidate-set primitive behind the cluster router's lookup merge.
// An out-of-range cluster returns an empty list, not an error: the
// caller's PDF decides which clusters exist.
func (s *Service) ClusterDocIDs(ctx context.Context, cluster int) ([]string, error) {
	if err := s.requireClusters(); err != nil {
		return nil, err
	}
	_, sp := obs.StartSpan(ctx, "store_scan")
	defer sp.End()
	ids, err := s.store.FindIDs(docstore.Query{
		Filters: []docstore.Filter{docstore.Eq("cluster", cluster)},
	})
	if err != nil {
		return nil, fmt.Errorf("fairds: listing cluster %d: %w", cluster, err)
	}
	return ids, nil
}

// StoreCount reports how many labeled samples the store holds.
func (s *Service) StoreCount() int { return s.store.Count() }

// Reindex is the system-plane maintenance pass of paper §II-C: after the
// embedding model has been retrained (or replaced via SetEmbedder), every
// stored document's embedding is recomputed, the clustering model is refit
// with k clusters on the refreshed embeddings, and each document's cluster
// assignment is updated in place. Batched in chunks so memory stays
// bounded on large stores. Returns the number of documents reindexed.
func (s *Service) Reindex(k int) (int, error) {
	ids, err := s.store.FindIDs(docstore.Query{})
	if err != nil {
		return 0, fmt.Errorf("fairds: reindex scan: %w", err)
	}
	if len(ids) == 0 {
		return 0, errors.New("fairds: reindex of an empty store")
	}

	// Pass 1: re-embed every document.
	const chunk = 256
	embeddings := make([][]float64, len(ids))
	for lo := 0; lo < len(ids); lo += chunk {
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		docs, err := s.store.GetMany(ids[lo:hi])
		if err != nil {
			return 0, fmt.Errorf("fairds: reindex fetch: %w", err)
		}
		samples := make([]*codec.Sample, len(docs))
		for i, d := range docs {
			smp, err := s.decodeDoc(d)
			if err != nil {
				return 0, err
			}
			samples[i] = smp
		}
		x, err := collate(samples)
		if err != nil {
			return 0, err
		}
		rows := embed.EmbedRows(s.embedder, x)
		copy(embeddings[lo:hi], rows)
	}

	// Refit the clustering model on the refreshed embeddings.
	km, err := cluster.Fit(embeddings, cluster.Config{K: k, Seed: s.cfg.Seed})
	if err != nil {
		return 0, fmt.Errorf("fairds: reindex clustering: %w", err)
	}
	assign := km.Predict(embeddings)

	// Pass 2: write back embeddings + cluster assignments.
	for i, id := range ids {
		err := s.store.Update(id, docstore.Fields{
			"embedding": embeddings[i],
			"cluster":   assign[i],
		})
		if err != nil {
			return i, fmt.Errorf("fairds: reindex update %s: %w", id, err)
		}
	}
	s.km = km
	s.wss = nil

	// The vector index is rebuilt from the same refreshed embeddings and
	// assignments, so it covers the store again even if it was cold or
	// stale (e.g. after SetEmbedder).
	if s.idx != nil {
		entries := make([]vecindex.Entry, len(ids))
		for i, id := range ids {
			entries[i] = vecindex.Entry{ID: id, Cluster: assign[i], Vec: embeddings[i]}
		}
		if err := s.idx.Rebuild(entries); err != nil {
			s.idxReady.Store(false)
			return len(ids), fmt.Errorf("fairds: reindex vector index: %w", err)
		}
		s.idxReady.Store(true)
	}
	return len(ids), nil
}

// WarmIndex populates the in-process vector index from the store's
// persisted embedding and cluster fields — no embedder pass needed, which
// is what lets a freshly started daemon adopt an existing store cheaply.
// Documents whose fields are missing, mistyped, or of the wrong
// dimensionality are counted as corrupt and skipped (the brute-force scan
// would skip them too). Returns the number of vectors indexed. A no-op
// returning 0 when the index is disabled. Complete the warm before serving
// ingests: a cold service skips index maintenance, so documents ingested
// while WarmIndex is mid-flight may miss both its snapshot and the index.
func (s *Service) WarmIndex() (int, error) {
	if s.idx == nil {
		return 0, nil
	}
	docs, err := s.store.Find(docstore.Query{Project: []string{"embedding", "cluster"}})
	if err != nil {
		return 0, fmt.Errorf("fairds: warming index: %w", err)
	}
	dim := s.embedder.Dim()
	entries := make([]vecindex.Entry, 0, len(docs))
	for _, d := range docs {
		emb, ok := embedding(d, dim)
		if !ok {
			s.noteCorrupt(d.ID, errBadEmbedding)
			continue
		}
		k, ok := d.F["cluster"].(int64)
		if !ok || k < 0 {
			s.noteCorrupt(d.ID, errBadCluster)
			continue
		}
		entries = append(entries, vecindex.Entry{ID: d.ID, Cluster: int(k), Vec: emb})
	}
	if err := s.idx.Rebuild(entries); err != nil {
		return 0, fmt.Errorf("fairds: warming index: %w", err)
	}
	s.idxReady.Store(true)
	return len(entries), nil
}

// SetEmbedder swaps the embedding module (e.g. after system-plane
// retraining). Callers must Reindex afterwards so stored embeddings,
// cluster assignments, and the vector index match the new model; until
// then the vector index is marked cold and lookups fall back to scanning
// the store.
func (s *Service) SetEmbedder(e embed.Embedder) error {
	if e == nil {
		return errors.New("fairds: nil embedder")
	}
	s.embedder = e
	s.idxReady.Store(false)
	return nil
}

// indexReady reports whether the vector index can answer for the whole
// store.
func (s *Service) indexReady() bool {
	return s.idx != nil && s.idxReady.Load()
}

// IndexStats describes the vector index's coverage and effectiveness — the
// fairDS slice of the /statsz payload.
type IndexStats struct {
	// Enabled is false when the service was built with DisableIndex.
	Enabled bool `json:"enabled"`
	// Ready reports whether the index covers the store (queries probe it);
	// false means nearest-label queries are falling back to store scans.
	Ready bool `json:"ready"`
	// Size is the number of indexed vectors.
	Size int `json:"size"`
	// Hits counts nearest-label queries answered by the index; Misses
	// counts queries that fell back to a store scan.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Probed counts vectors distance-compared by the index and ListsProbed
	// the partitions visited; Probed/Hits is the mean in-memory scan width.
	Probed      int64 `json:"probed"`
	ListsProbed int64 `json:"lists_probed"`
	// Corrupt counts corrupt-document observations: every time a scan,
	// warm, or index add encounters a document whose embedding or cluster
	// fields are missing, mistyped, or of the wrong dimensionality — data
	// that silently degraded lookups before it was counted. A cold service
	// re-observes the same document on every scan, so treat this as a
	// rate signal, not a distinct-document census.
	Corrupt int64 `json:"corrupt"`
}

// IndexStats snapshots the vector-index counters. Safe to call
// concurrently with queries and ingests.
func (s *Service) IndexStats() IndexStats {
	st := IndexStats{
		Enabled: s.idx != nil,
		Ready:   s.indexReady(),
		Hits:    s.idxHits.Load(),
		Misses:  s.idxMisses.Load(),
		Corrupt: s.corrupt.Load(),
	}
	if s.idx != nil {
		// Index-level Rejected is not folded in: every rejected Add already
		// passed through noteCorrupt, so Corrupt covers it.
		is := s.idx.Stats()
		st.Size = is.Size
		st.Probed = is.Probed
		st.ListsProbed = is.ListsProbed
	}
	return st
}

// CorruptEmbeddings reports how many times a stored document with corrupt
// embedding or cluster fields has been observed since the service started
// (see IndexStats.Corrupt for the exact counting semantics).
func (s *Service) CorruptEmbeddings() int64 { return s.corrupt.Load() }

var (
	errBadEmbedding = errors.New("embedding field missing, mistyped, or of the wrong dimensionality")
	errBadCluster   = errors.New("cluster field missing, mistyped, or negative")
)

// noteCorrupt counts (and, with a Logger, reports) a document whose
// stored fields cannot participate in nearest-label lookup. Before this
// accounting such documents were silently skipped, which made data
// corruption look like "no close neighbor".
func (s *Service) noteCorrupt(id string, why error) {
	s.corrupt.Add(1)
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("fairds: corrupt document %s: %v", id, why)
	}
}

// embedding extracts a document's embedding field, requiring the expected
// dimensionality.
func embedding(d *docstore.Doc, dim int) ([]float64, bool) {
	emb, ok := d.F["embedding"].([]float64)
	return emb, ok && len(emb) == dim
}

// decodeDoc decodes the payload field of a stored document.
func (s *Service) decodeDoc(d *docstore.Doc) (*codec.Sample, error) {
	raw, ok := d.F["payload"].([]byte)
	if !ok {
		return nil, fmt.Errorf("fairds: doc %s has no []byte payload", d.ID)
	}
	smp, err := s.cfg.Codec.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("fairds: decoding doc %s: %w", d.ID, err)
	}
	return smp, nil
}

// apportion converts a PDF into integer per-cluster counts summing to n
// (largest-remainder method).
func apportion(pdf stats.PDF, n int) []int {
	counts := make([]int, len(pdf))
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, len(pdf))
	total := 0
	for i, p := range pdf {
		exact := p * float64(n)
		counts[i] = int(exact)
		fracs[i] = frac{idx: i, rem: exact - float64(counts[i])}
		total += counts[i]
	}
	// Distribute the remainder to the largest fractional parts.
	for total < n {
		best := -1
		for i := range fracs {
			if best < 0 || fracs[i].rem > fracs[best].rem {
				best = i
			}
		}
		counts[fracs[best].idx]++
		fracs[best].rem = -1
		total++
	}
	return counts
}

// collate stacks samples into a (N, features) tensor.
func collate(samples []*codec.Sample) (*tensor.Tensor, error) {
	if len(samples) == 0 {
		return nil, errors.New("fairds: empty sample set")
	}
	feat := samples[0].Elems()
	x := tensor.New(len(samples), feat)
	for i, smp := range samples {
		if smp.Elems() != feat {
			return nil, fmt.Errorf("fairds: sample %d has %d elements, expected %d", i, smp.Elems(), feat)
		}
		smp.FloatsInto(x.Row(i))
	}
	return x, nil
}

// Collate is the exported form used by callers assembling tensors from
// retrieved samples.
func Collate(samples []*codec.Sample) (*tensor.Tensor, error) { return collate(samples) }

// Apportion is the exported form of the largest-remainder split — the
// cluster router reuses the exact per-cluster counts a single node would
// draw for a lookup, so merged results match single-node semantics.
func Apportion(pdf stats.PDF, n int) []int { return apportion(pdf, n) }
