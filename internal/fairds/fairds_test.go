package fairds

import (
	"math"
	"math/rand"
	"testing"

	"fairdms/internal/codec"
	"fairdms/internal/datagen"
	"fairdms/internal/docstore"
	"fairdms/internal/tensor"
)

// idEmbedder embeds images by simple pooled statistics — deterministic and
// training-free, which keeps service tests focused on the service logic.
type idEmbedder struct{ dim int }

func (e idEmbedder) Dim() int { return e.dim }
func (e idEmbedder) Embed(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Dim(0), e.dim)
	feats := x.Dim(1)
	chunk := (feats + e.dim - 1) / e.dim
	for i := 0; i < x.Dim(0); i++ {
		row := x.Row(i)
		for d := 0; d < e.dim; d++ {
			lo := d * chunk
			hi := lo + chunk
			if hi > feats {
				hi = feats
			}
			s := 0.0
			for _, v := range row[lo:hi] {
				s += v
			}
			if hi > lo {
				out.Set(s/float64(hi-lo), i, d)
			}
		}
	}
	return out
}

// twoRegimes returns labeled samples from two visually distinct regimes.
func twoRegimes(seed int64, n int) (a, b []*codec.Sample) {
	rng := rand.New(rand.NewSource(seed))
	ra := datagen.DefaultBraggRegime()
	ra.Patch = 11
	rb := ra
	rb.WidthMean = 4.0
	rb.AmpMean = 25
	return ra.Generate(rng, n), rb.Generate(rng, n)
}

func newService(t *testing.T) *Service {
	t.Helper()
	store := docstore.NewStore().Collection("peaks")
	svc, err := New(idEmbedder{dim: 6}, store, Config{Seed: 1, KMin: 2, KMax: 6})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestNewValidations(t *testing.T) {
	store := docstore.NewStore().Collection("x")
	if _, err := New(nil, store, Config{}); err == nil {
		t.Fatal("expected error for nil embedder")
	}
	if _, err := New(idEmbedder{dim: 2}, nil, Config{}); err == nil {
		t.Fatal("expected error for nil store")
	}
}

func TestLookupsRequireClusters(t *testing.T) {
	svc := newService(t)
	a, _ := twoRegimes(2, 4)
	x, _ := Collate(a)
	if _, err := svc.DatasetPDF(x); err == nil {
		t.Fatal("expected error before FitClusters")
	}
	if _, err := svc.LookupLabeled(x); err == nil {
		t.Fatal("expected error before FitClusters")
	}
	if _, err := svc.IngestLabeled(a, "d0"); err == nil {
		t.Fatal("expected error before FitClusters")
	}
	if _, err := svc.Certainty(x, 0.5); err == nil {
		t.Fatal("expected error before FitClusters")
	}
}

func TestFitClustersAndPDF(t *testing.T) {
	svc := newService(t)
	a, b := twoRegimes(3, 40)
	all := append(append([]*codec.Sample(nil), a...), b...)
	x, err := Collate(all)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.FitClusters(x); err != nil {
		t.Fatal(err)
	}
	if svc.K() < 2 {
		t.Fatalf("K = %d", svc.K())
	}
	if len(svc.WSSCurve()) == 0 {
		t.Fatal("WSS curve missing")
	}

	// PDFs of the two regimes must differ.
	xa, _ := Collate(a)
	xb, _ := Collate(b)
	pa, err := svc.DatasetPDF(xa)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := svc.DatasetPDF(xb)
	if err != nil {
		t.Fatal(err)
	}
	if err := pa.Validate(); err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for i := range pa {
		diff += math.Abs(pa[i] - pb[i])
	}
	if diff < 0.5 {
		t.Fatalf("regime PDFs too similar: L1 = %g", diff)
	}
}

func TestFitClustersKFixed(t *testing.T) {
	svc := newService(t)
	a, _ := twoRegimes(4, 30)
	x, _ := Collate(a)
	if err := svc.FitClustersK(x, 5); err != nil {
		t.Fatal(err)
	}
	if svc.K() != 5 {
		t.Fatalf("K = %d, want 5", svc.K())
	}
}

func TestIngestAndLookupLabeled(t *testing.T) {
	svc := newService(t)
	a, b := twoRegimes(5, 50)
	all := append(append([]*codec.Sample(nil), a...), b...)
	x, _ := Collate(all)
	if err := svc.FitClustersK(x, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.IngestLabeled(all, "historical"); err != nil {
		t.Fatal(err)
	}
	if svc.StoreCount() != 100 {
		t.Fatalf("store holds %d docs", svc.StoreCount())
	}

	// Query with new regime-A data: retrieved labels must match the input
	// count and be drawn (mostly) from regime A's clusters.
	queryA, _ := twoRegimes(6, 20)
	qx, _ := Collate(queryA)
	got, err := svc.LookupLabeled(qx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("retrieved %d labeled samples, want 20", len(got))
	}
	for _, smp := range got {
		if len(smp.Label) != 2 {
			t.Fatal("retrieved sample lost its label")
		}
	}
	// Retrieved samples should look like regime A (small widths → high
	// peak amplitude relative to mean). Compare mean max-pixel between
	// retrieved set and regime-B samples.
	meanMax := func(ss []*codec.Sample) float64 {
		s := 0.0
		for _, smp := range ss {
			m, _ := tensor.FromSlice(smp.Floats(), smp.Elems()).Max()
			s += m
		}
		return s / float64(len(ss))
	}
	if math.Abs(meanMax(got)-meanMax(a)) > math.Abs(meanMax(got)-meanMax(b)) {
		t.Fatal("retrieved samples resemble the wrong regime")
	}
}

func TestLookupLabeledEmptyStoreFails(t *testing.T) {
	svc := newService(t)
	a, _ := twoRegimes(7, 20)
	x, _ := Collate(a)
	if err := svc.FitClustersK(x, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.LookupLabeled(x); err == nil {
		t.Fatal("expected error with empty store")
	}
}

func TestNearestLabeledFindsSimilar(t *testing.T) {
	svc := newService(t)
	a, b := twoRegimes(8, 40)
	all := append(append([]*codec.Sample(nil), a...), b...)
	x, _ := Collate(all)
	if err := svc.FitClustersK(x, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.IngestLabeled(all, "hist"); err != nil {
		t.Fatal(err)
	}

	probeA, probeB := twoRegimes(9, 1)
	nnA, distA, err := svc.NearestLabeled(probeA[0])
	if err != nil {
		t.Fatal(err)
	}
	if nnA == nil || math.IsInf(distA, 1) {
		t.Fatal("no neighbor found for regime-A probe")
	}
	// The neighbor of an A-probe should be much closer than the distance
	// from an A-probe to a B-probe embedding.
	_, distB, err := svc.NearestLabeled(probeB[0])
	if err != nil {
		t.Fatal(err)
	}
	if distA < 0 || distB < 0 {
		t.Fatal("negative distances")
	}
}

func TestCertaintyDropsOnNovelRegime(t *testing.T) {
	svc := newService(t)
	a, _ := twoRegimes(10, 60)
	xa, _ := Collate(a)
	if err := svc.FitClustersK(xa, 4); err != nil {
		t.Fatal(err)
	}
	certA, err := svc.Certainty(xa, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// A drastically different regime should cluster with lower certainty.
	novel := datagen.DefaultBraggRegime()
	novel.Patch = 11
	novel.WidthMean = 5.5
	novel.AmpMean = 60
	novel.Noise = 2
	rng := rand.New(rand.NewSource(11))
	xn, _ := Collate(novel.Generate(rng, 60))
	certN, err := svc.Certainty(xn, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if certN >= certA {
		t.Fatalf("novel-regime certainty %.3f not below familiar %.3f", certN, certA)
	}
}

func TestRemoteCollectionBackend(t *testing.T) {
	srv := docstore.NewServer(docstore.NewStore(), docstore.ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := docstore.Dial(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	svc, err := New(idEmbedder{dim: 6}, RemoteCollection{Client: cl, Name: "peaks"}, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b := twoRegimes(12, 30)
	all := append(append([]*codec.Sample(nil), a...), b...)
	x, _ := Collate(all)
	if err := svc.FitClustersK(x, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.IngestLabeled(all, "remote"); err != nil {
		t.Fatal(err)
	}
	if svc.StoreCount() != 60 {
		t.Fatalf("remote store holds %d", svc.StoreCount())
	}
	got, err := svc.LookupLabeled(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("retrieved %d over the wire, want 60", len(got))
	}
}

func TestReindexAfterEmbedderSwap(t *testing.T) {
	svc := newService(t)
	a, b := twoRegimes(20, 50)
	all := append(append([]*codec.Sample(nil), a...), b...)
	x, _ := Collate(all)
	if err := svc.FitClustersK(x, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.IngestLabeled(all, "hist"); err != nil {
		t.Fatal(err)
	}

	// Swap in a different embedder (wider dim) and reindex with a new K.
	if err := svc.SetEmbedder(idEmbedder{dim: 10}); err != nil {
		t.Fatal(err)
	}
	n, err := svc.Reindex(5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("reindexed %d docs, want 100", n)
	}
	if svc.K() != 5 {
		t.Fatalf("K after reindex = %d, want 5", svc.K())
	}

	// Lookups work against the refreshed index and embeddings: stored
	// embedding dims must match the new embedder.
	qa, _ := twoRegimes(21, 10)
	got, err := svc.LookupLabeled(mustCollate(t, qa))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("post-reindex lookup returned %d", len(got))
	}
	_, _, dist, err := svc.NearestLabeledExcluding(qa[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(dist, 1) {
		t.Fatal("post-reindex NN search found nothing (stale embedding dims?)")
	}
}

func TestReindexEmptyStoreFails(t *testing.T) {
	svc := newService(t)
	a, _ := twoRegimes(22, 10)
	x, _ := Collate(a)
	if err := svc.FitClustersK(x, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Reindex(2); err == nil {
		t.Fatal("expected error reindexing empty store")
	}
}

func TestSetEmbedderNil(t *testing.T) {
	svc := newService(t)
	if err := svc.SetEmbedder(nil); err == nil {
		t.Fatal("expected error for nil embedder")
	}
}

func mustCollate(t *testing.T, samples []*codec.Sample) *tensor.Tensor {
	t.Helper()
	x, err := Collate(samples)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestApportionSumsToN(t *testing.T) {
	pdf := []float64{0.5, 0.3, 0.2}
	counts := apportion(pdf, 7)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 7 {
		t.Fatalf("apportioned %d, want 7", total)
	}
	// Largest share gets the most.
	if counts[0] < counts[1] || counts[1] < counts[2] {
		t.Fatalf("counts %v not ordered by share", counts)
	}
}

func TestCollateRejectsMixedSizes(t *testing.T) {
	s1 := codec.SampleFromFloats([]float64{1}, []int{1}, codec.F64, nil)
	s2 := codec.SampleFromFloats([]float64{1, 2}, []int{2}, codec.F64, nil)
	if _, err := Collate([]*codec.Sample{s1, s2}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Collate(nil); err == nil {
		t.Fatal("expected error for empty set")
	}
}
