package fairds

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"fairdms/internal/codec"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/obs"
	"fairdms/internal/tensor"
)

// BatchDocError reports one document that could not be ingested within a
// batch. The rest of the batch is unaffected: partial failure is per
// document, not per call.
type BatchDocError struct {
	Index int   // position in the input batch
	Err   error // why this document was rejected
}

// BatchResult is the outcome of IngestLabeledBatch. IDs is aligned with the
// input batch ("" where the document failed); Errors lists the failures in
// ascending input order.
type BatchResult struct {
	IDs    []string
	Errors []BatchDocError
}

// Inserted reports how many documents were committed to the store.
func (r BatchResult) Inserted() int {
	n := 0
	for _, id := range r.IDs {
		if id != "" {
			n++
		}
	}
	return n
}

// BatchOptions tunes the batch-ingest pipeline. The zero value picks
// sensible defaults.
type BatchOptions struct {
	// ChunkSize is the number of documents per embed→store unit (default
	// 512). Each chunk is embedded as one tensor and written with one
	// InsertMany, so it bounds both peak memory and store-call granularity.
	ChunkSize int
	// Workers is the number of chunk pipelines running in parallel (default
	// GOMAXPROCS, capped at the chunk count). Each worker embeds its chunk
	// while other workers' chunks are being written, which is what overlaps
	// CPU (embedding) with store latency.
	Workers int
}

func (o *BatchOptions) defaults() {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 512
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// IngestLabeledBatch is the high-throughput form of IngestLabeled: the batch
// is split into chunks, parallel workers embed each chunk (one embedder
// pass per chunk; the Embedder contract requires concurrent Embed to be
// safe), assign clusters, and feed chunked InsertMany calls — so embedding
// of one chunk overlaps the store write of another instead of the strict
// embed-everything-then-write-everything of the single-call path.
//
// Failure is reported per document: a sample whose feature width disagrees
// with the batch (first sample sets the reference, as in Collate) or whose
// payload cannot be encoded gets a BatchDocError while the rest of the
// batch commits. A store write failure fails only that chunk's documents.
// The returned error is reserved for whole-call problems (unfitted
// clustering model).
func (s *Service) IngestLabeledBatch(samples []*codec.Sample, dataset string, opt BatchOptions) (BatchResult, error) {
	return s.IngestLabeledBatchContext(context.Background(), samples, dataset, opt)
}

// IngestLabeledBatchContext is IngestLabeledBatch with a context carrying
// an optional obs trace: each chunk records encode, embed, store_insert,
// and index_add spans, so a slow batch shows which stage of which chunk
// dominated (chunks run concurrently; their spans interleave under the
// request span).
func (s *Service) IngestLabeledBatchContext(ctx context.Context, samples []*codec.Sample, dataset string, opt BatchOptions) (BatchResult, error) {
	if err := s.requireClusters(); err != nil {
		return BatchResult{}, err
	}
	res := BatchResult{IDs: make([]string, len(samples))}
	if len(samples) == 0 {
		return res, nil
	}
	// The first non-nil sample sets the batch's reference width (nil docs
	// are in-contract: they become per-doc errors in ingestChunk). An
	// all-nil batch falls through with refWidth 0 and every doc reported.
	refWidth := 0
	for _, smp := range samples {
		if smp != nil {
			refWidth = smp.Elems()
			break
		}
	}

	opt.defaults()
	type chunkSpan struct{ lo, hi int }
	var spans []chunkSpan
	for lo := 0; lo < len(samples); lo += opt.ChunkSize {
		hi := lo + opt.ChunkSize
		if hi > len(samples) {
			hi = len(samples)
		}
		spans = append(spans, chunkSpan{lo, hi})
	}
	if opt.Workers > len(spans) {
		opt.Workers = len(spans)
	}

	var (
		mu   sync.Mutex // guards res.Errors (res.IDs is index-disjoint per chunk)
		wg   sync.WaitGroup
		work = make(chan chunkSpan)
	)
	fail := func(idx int, err error) {
		mu.Lock()
		res.Errors = append(res.Errors, BatchDocError{Index: idx, Err: err})
		mu.Unlock()
	}

	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for span := range work {
				s.ingestChunk(ctx, samples, span.lo, span.hi, refWidth, dataset, res.IDs, fail)
			}
		}()
	}
	for _, span := range spans {
		work <- span
	}
	close(work)
	wg.Wait()

	sort.Slice(res.Errors, func(i, j int) bool { return res.Errors[i].Index < res.Errors[j].Index })
	return res, nil
}

// ingestChunk runs one chunk through validate→encode→embed→insert→index.
// ids is the batch-wide result slice; this chunk only writes its own span.
func (s *Service) ingestChunk(ctx context.Context, samples []*codec.Sample, lo, hi, refWidth int, dataset string, ids []string, fail func(int, error)) {
	// Per-document validation and payload encoding. A bad document is
	// reported and dropped; the chunk carries on with the survivors.
	_, sp := obs.StartSpan(ctx, "encode")
	valid := make([]int, 0, hi-lo)       // original indices of surviving docs
	payloads := make([][]byte, 0, hi-lo) // encoded payloads, parallel to valid
	for i := lo; i < hi; i++ {
		smp := samples[i]
		if smp == nil {
			fail(i, fmt.Errorf("fairds: nil sample"))
			continue
		}
		if smp.Elems() != refWidth {
			fail(i, fmt.Errorf("fairds: sample has %d elements, batch expects %d", smp.Elems(), refWidth))
			continue
		}
		if err := smp.Validate(); err != nil {
			fail(i, fmt.Errorf("fairds: invalid sample: %w", err))
			continue
		}
		raw, err := s.cfg.Codec.Encode(smp)
		if err != nil {
			fail(i, fmt.Errorf("fairds: encoding sample: %w", err))
			continue
		}
		valid = append(valid, i)
		payloads = append(payloads, raw)
	}
	sp.End()
	if len(valid) == 0 {
		return
	}

	// One embedder pass for the chunk's survivors. FloatsInto decodes each
	// payload straight into its tensor row — no per-document scratch slice.
	_, sp = obs.StartSpan(ctx, "embed")
	x := tensor.New(len(valid), refWidth)
	for row, i := range valid {
		samples[i].FloatsInto(x.Row(row))
	}
	rows := embed.EmbedRows(s.embedder, x)
	assign := s.km.Predict(rows)
	sp.End()

	fields := make([]docstore.Fields, len(valid))
	for row := range valid {
		fields[row] = docstore.Fields{
			"payload":   payloads[row],
			"cluster":   assign[row],
			"embedding": rows[row],
			"dataset":   dataset,
		}
	}
	_, sp = obs.StartSpan(ctx, "store_insert")
	var chunkIDs []string
	var err error
	if ts, ok := s.store.(TxnStore); ok {
		// One transaction per chunk: on a WAL-durable store the chunk is
		// one commit record (durable and atomic as a unit), and on any
		// store readers never observe a half-ingested chunk.
		ops := make([]docstore.TxnOp, len(fields))
		for row, f := range fields {
			ops[row] = docstore.TxnOp{Kind: docstore.TxnAdd, F: f}
		}
		chunkIDs, err = ts.ApplyTxn(ops)
	} else {
		chunkIDs, err = s.store.InsertMany(fields)
	}
	sp.End()
	if err != nil {
		// InsertMany is atomic per chunk: nothing from this chunk landed.
		err = fmt.Errorf("fairds: storing chunk: %w", err)
		for _, i := range valid {
			fail(i, err)
		}
		return
	}
	for row, i := range valid {
		ids[i] = chunkIDs[row]
	}
	// Same cold-index rule as IngestLabeled: a cold index needs a wholesale
	// WarmIndex/Reindex anyway, so only a ready index is maintained inline.
	if s.indexReady() {
		_, sp = obs.StartSpan(ctx, "index_add")
		for row := range valid {
			if err := s.idx.Add(chunkIDs[row], assign[row], rows[row]); err != nil {
				s.noteCorrupt(chunkIDs[row], err)
			}
		}
		sp.End()
	}
}
