package fairds

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fairdms/internal/codec"
	"fairdms/internal/docstore"
	"fairdms/internal/vecindex"
)

// unreachableCountStore models a remote store whose count RPC fails: the
// plain Count necessarily swallows the error and reports 0.
type unreachableCountStore struct{ DataStore }

func (unreachableCountStore) Count() int                 { return 0 }
func (unreachableCountStore) CountChecked() (int, error) { return 0, errors.New("store unreachable") }

// TestUnreachableStoreStartsCold pins the New readiness decision: a store
// whose emptiness cannot be verified must leave the index cold (store-scan
// fallback), not "ready" over an empty index that would answer no-neighbor
// for every existing document.
func TestUnreachableStoreStartsCold(t *testing.T) {
	backing := docstore.NewStore().Collection("peaks")
	svc, err := New(idEmbedder{dim: 6}, unreachableCountStore{backing}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if svc.IndexStats().Ready {
		t.Fatal("index claims readiness over a store it could not count")
	}
	// The same store reporting a verified empty count starts ready.
	svc2, err := New(idEmbedder{dim: 6}, backing, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !svc2.IndexStats().Ready {
		t.Fatal("verifiably empty store should start ready")
	}
}

// indexedAndScanPair builds two services over the same physical store and
// identical clustering: one answering nearest-label queries from the
// vector index, one forced onto the brute-force store scan. The pair is
// the parity fixture — on identical data the two must agree exactly.
func indexedAndScanPair(t *testing.T, idx vecindex.Index, n int) (indexed, scan *Service, query []*codec.Sample) {
	t.Helper()
	store := docstore.NewStore().Collection("peaks")
	indexed, err := New(idEmbedder{dim: 6}, store, Config{Seed: 1, Index: idx})
	if err != nil {
		t.Fatal(err)
	}
	a, b := twoRegimes(3, n/2)
	hist := append(append([]*codec.Sample{}, a...), b...)
	x, err := Collate(hist)
	if err != nil {
		t.Fatal(err)
	}
	if err := indexed.FitClustersK(x, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := indexed.IngestLabeled(hist, "hist"); err != nil {
		t.Fatal(err)
	}
	if !indexed.IndexStats().Ready {
		t.Fatal("index not ready after ingest into a store born empty")
	}

	scan, err = New(idEmbedder{dim: 6}, store, Config{Seed: 1, DisableIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	// Same rows, same K, same seed — the deterministic fit yields identical
	// centroids, so both services predict identical query clusters.
	if err := scan.FitClustersK(x, 4); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	qa, qb := twoRegimes(17, 8)
	query = append(append([]*codec.Sample{}, qa...), qb...)
	rng.Shuffle(len(query), func(i, j int) { query[i], query[j] = query[j], query[i] })
	return indexed, scan, query
}

// TestIndexParityNearestMatches is the acceptance parity check: on the
// same corpus, the indexed path and the store-scan path return identical
// nearest IDs and distances, with and without distinct draws.
func TestIndexParityNearestMatches(t *testing.T) {
	for _, tc := range []struct {
		name string
		idx  vecindex.Index
	}{
		{"flat", vecindex.NewFlat()},
		// SplitThreshold 32 forces quantized partitions even on a small
		// corpus; the huge NProbe keeps the probe exact.
		{"ivf-exact", vecindex.NewIVF(vecindex.IVFConfig{SplitThreshold: 32, NProbe: 1 << 20, Seed: 5})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			indexed, scan, query := indexedAndScanPair(t, tc.idx, 120)
			for _, distinct := range []bool{false, true} {
				got, err := indexed.NearestMatches(query, distinct)
				if err != nil {
					t.Fatal(err)
				}
				want, err := scan.NearestMatches(query, distinct)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i].DocID != want[i].DocID || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
						t.Fatalf("distinct=%v sample %d: indexed %+v != scan %+v", distinct, i, got[i], want[i])
					}
				}
			}
			st := indexed.IndexStats()
			if st.Hits == 0 || st.Misses != 0 {
				t.Fatalf("indexed service should have answered from the index: %+v", st)
			}
		})
	}
}

// TestIndexParityExcludingDraws runs the Fig. 9 distinct-draw loop through
// NearestLabeledExcluding on both paths and requires identical draws.
func TestIndexParityExcludingDraws(t *testing.T) {
	indexed, scan, query := indexedAndScanPair(t, vecindex.NewFlat(), 60)
	exclI := map[string]bool{}
	exclS := map[string]bool{}
	for draw := 0; draw < 20; draw++ {
		idI, _, distI, err := indexed.NearestLabeledExcluding(query[0], exclI)
		if err != nil {
			t.Fatal(err)
		}
		idS, _, distS, err := scan.NearestLabeledExcluding(query[0], exclS)
		if err != nil {
			t.Fatal(err)
		}
		if idI != idS || math.Abs(distI-distS) > 1e-9 {
			t.Fatalf("draw %d: indexed (%s, %g) != scan (%s, %g)", draw, idI, distI, idS, distS)
		}
		if idI == "" {
			break
		}
		exclI[idI] = true
		exclS[idS] = true
	}
}

// TestWarmIndexAdoptsPrePopulatedStore models a daemon restart: a new
// service over an already-filled store starts cold (scans), and WarmIndex
// flips it to in-memory probes with the same answers.
func TestWarmIndexAdoptsPrePopulatedStore(t *testing.T) {
	indexed, _, query := indexedAndScanPair(t, vecindex.NewFlat(), 80)
	store := indexed.store

	adopted, err := New(idEmbedder{dim: 6}, store, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if adopted.IndexStats().Ready {
		t.Fatal("index claims to cover a store it has never read")
	}
	a, b := twoRegimes(3, 40)
	x, err := Collate(append(append([]*codec.Sample{}, a...), b...))
	if err != nil {
		t.Fatal(err)
	}
	if err := adopted.FitClustersK(x, 4); err != nil {
		t.Fatal(err)
	}

	cold, err := adopted.NearestMatches(query, false)
	if err != nil {
		t.Fatal(err)
	}
	if st := adopted.IndexStats(); st.Misses == 0 || st.Hits != 0 {
		t.Fatalf("cold service should have scanned the store: %+v", st)
	}

	n, err := adopted.WarmIndex()
	if err != nil {
		t.Fatal(err)
	}
	if n != store.Count() {
		t.Fatalf("warmed %d vectors, store holds %d", n, store.Count())
	}
	st := adopted.IndexStats()
	if !st.Ready || st.Size != n {
		t.Fatalf("after warm: %+v", st)
	}

	warm, err := adopted.NearestMatches(query, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		if warm[i].DocID != cold[i].DocID || math.Abs(warm[i].Dist-cold[i].Dist) > 1e-9 {
			t.Fatalf("sample %d: warm %+v != cold %+v", i, warm[i], cold[i])
		}
	}
	if st := adopted.IndexStats(); st.Hits == 0 {
		t.Fatalf("warm service should have hit the index: %+v", st)
	}
}

// TestCorruptEmbeddingsCounted plants documents with missing, mistyped,
// and wrong-dimension embedding fields. The store-scan fallback and
// WarmIndex must count them as corrupt (not silently skip), and lookups
// must still return the best healthy document.
func TestCorruptEmbeddingsCounted(t *testing.T) {
	store := docstore.NewStore().Collection("peaks")
	svc, err := New(idEmbedder{dim: 6}, store, Config{Seed: 1, DisableIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	a, b := twoRegimes(3, 30)
	hist := append(append([]*codec.Sample{}, a...), b...)
	x, err := Collate(hist)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.FitClustersK(x, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.IngestLabeled(hist, "hist"); err != nil {
		t.Fatal(err)
	}

	// One corrupt document per cluster so every query cluster sees them:
	// a wrong-dimension embedding and a missing one.
	for k := 0; k < svc.K(); k++ {
		if _, err := store.InsertMany([]docstore.Fields{
			{"cluster": k, "embedding": []float64{1, 2}, "payload": []byte{0}},
			{"cluster": k, "payload": []byte{0}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	id, _, dist, err := svc.NearestLabeledExcluding(a[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if id == "" || math.IsInf(dist, 1) {
		t.Fatal("corrupt documents masked the healthy nearest neighbor")
	}
	if got := svc.CorruptEmbeddings(); got != 2 {
		t.Fatalf("CorruptEmbeddings = %d after one-cluster scan, want 2", got)
	}
	if _, err := svc.NearestMatches(a[:4], false); err != nil {
		t.Fatal(err)
	}
	// NearestMatches scanned at least one cluster again; the exact count
	// depends on cluster spread, so just require growth past the first scan.
	if got := svc.CorruptEmbeddings(); got <= 2 {
		t.Fatalf("CorruptEmbeddings = %d after NearestMatches, want > 2", got)
	}

	// WarmIndex on a fresh indexed service over the same store skips and
	// counts every planted document.
	adopted, err := New(idEmbedder{dim: 6}, store, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, err := adopted.WarmIndex()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(hist) {
		t.Fatalf("warmed %d, want the %d healthy documents", n, len(hist))
	}
	if got, want := adopted.CorruptEmbeddings(), int64(2*svc.K()); got != want {
		t.Fatalf("CorruptEmbeddings after warm = %d, want %d", got, want)
	}
}

// TestReindexRebuildsIndexAfterEmbedderSwap checks the §II-C maintenance
// path: SetEmbedder cools the index, Reindex rebuilds it against the new
// embedding space and the indexed answers again match a store scan.
func TestReindexRebuildsIndexAfterEmbedderSwap(t *testing.T) {
	indexed, _, query := indexedAndScanPair(t, vecindex.NewFlat(), 60)
	if err := indexed.SetEmbedder(idEmbedder{dim: 4}); err != nil {
		t.Fatal(err)
	}
	if indexed.IndexStats().Ready {
		t.Fatal("index still claims coverage after an embedder swap")
	}
	if _, err := indexed.Reindex(3); err != nil {
		t.Fatal(err)
	}
	st := indexed.IndexStats()
	if !st.Ready || st.Size != indexed.StoreCount() {
		t.Fatalf("after reindex: %+v", st)
	}

	scan, err := New(idEmbedder{dim: 4}, indexed.store, Config{Seed: 1, DisableIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	scan.km = indexed.km // same refitted clustering
	got, err := indexed.NearestMatches(query, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scan.NearestMatches(query, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].DocID != want[i].DocID || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("sample %d after reindex: indexed %+v != scan %+v", i, got[i], want[i])
		}
	}
}
