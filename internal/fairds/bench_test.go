package fairds

import (
	"fmt"
	"math/rand"
	"testing"

	"fairdms/internal/codec"
	"fairdms/internal/datagen"
	"fairdms/internal/docstore"
	"fairdms/internal/tensor"
	"fairdms/internal/vecindex"
)

// benchService builds a fitted service over n historical samples — the
// scalability axis the paper defers to future work (§IV): how lookup cost
// grows with store size.
func benchService(b *testing.B, n int) (*Service, []*codec.Sample) {
	return benchServiceCfg(b, n, Config{Seed: 2})
}

// benchServiceCfg is benchService with a caller-chosen config (cfg.Seed is
// forced for comparability across variants).
func benchServiceCfg(b *testing.B, n int, cfg Config) (*Service, []*codec.Sample) {
	b.Helper()
	cfg.Seed = 2
	rng := rand.New(rand.NewSource(1))
	regime := datagen.DefaultBraggRegime()
	regime.Patch = 9
	hist := regime.Generate(rng, n)
	x, err := Collate(hist)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := New(benchEmbedder{dim: 8}, docstore.NewStore().Collection("bench"), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.FitClustersK(x, 8); err != nil {
		b.Fatal(err)
	}
	if _, err := svc.IngestLabeled(hist, "bench"); err != nil {
		b.Fatal(err)
	}
	query := regime.Generate(rng, 64)
	return svc, query
}

// benchEmbedder is a cheap deterministic embedding for benchmarks.
type benchEmbedder struct{ dim int }

func (e benchEmbedder) Dim() int { return e.dim }
func (e benchEmbedder) Embed(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Dim(0), e.dim)
	feats := x.Dim(1)
	chunk := (feats + e.dim - 1) / e.dim
	for i := 0; i < x.Dim(0); i++ {
		row := x.Row(i)
		for d := 0; d < e.dim; d++ {
			lo, hi := d*chunk, (d+1)*chunk
			if hi > feats {
				hi = feats
			}
			s := 0.0
			for _, v := range row[lo:hi] {
				s += v
			}
			if hi > lo {
				out.Set(s/float64(hi-lo), i, d)
			}
		}
	}
	return out
}

func benchLookup(b *testing.B, n int) {
	svc, query := benchService(b, n)
	qx, err := Collate(query)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.LookupLabeled(qx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "store-size")
}

func BenchmarkLookupLabeled1k(b *testing.B) { benchLookup(b, 1000) }
func BenchmarkLookupLabeled4k(b *testing.B) { benchLookup(b, 4000) }

// BenchmarkNearest is the tentpole acceptance benchmark: the single-query
// nearest-label path at store sizes 1k/10k/50k, store-scan fallback vs the
// in-process vector indexes. The scan path re-fetches every embedding in
// the predicted cluster from the store per query; the indexed paths probe
// memory.
func BenchmarkNearest(b *testing.B) {
	configs := []struct {
		mode string
		cfg  Config
	}{
		{"scan", Config{DisableIndex: true}},
		{"flat", Config{}},
		{"ivf", Config{}}, // Index filled per size below — IVFs are stateful
	}
	for _, n := range []int{1_000, 10_000, 50_000} {
		for _, c := range configs {
			// IVF indexes are stateful across Add calls; give each size its
			// own instance.
			cfg := c.cfg
			if c.mode == "ivf" {
				cfg.Index = vecindex.NewIVF(vecindex.IVFConfig{NProbe: 4, Seed: 2})
			}
			b.Run(fmt.Sprintf("%s/n=%d", c.mode, n), func(b *testing.B) {
				svc, query := benchServiceCfg(b, n, cfg)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, _, err := svc.NearestLabeledExcluding(query[i%len(query)], nil); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(n), "store-size")
			})
		}
	}
}

func BenchmarkNearestMatches(b *testing.B) {
	svc, query := benchService(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.NearestMatches(query, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatasetPDF(b *testing.B) {
	svc, query := benchService(b, 1000)
	qx, err := Collate(query)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.DatasetPDF(qx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestLabeled(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	regime := datagen.DefaultBraggRegime()
	regime.Patch = 9
	batch := regime.Generate(rng, 128)
	svc, _ := benchService(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.IngestLabeled(batch, fmt.Sprintf("b%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}
