package fairds

import (
	"strings"
	"testing"

	"fairdms/internal/codec"
	"fairdms/internal/docstore"
	"fairdms/internal/wal"
)

// fitService returns a service whose clustering model is fitted on regime-a
// data, ready for ingest.
func fitService(t *testing.T) *Service {
	t.Helper()
	svc := newService(t)
	a, _ := twoRegimes(11, 40)
	x, err := Collate(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.FitClustersK(x, 4); err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestIngestBatchMatchesSerial pins parity: the batch path must store the
// same documents (payload, cluster, dataset) as the serial path would.
func TestIngestBatchMatchesSerial(t *testing.T) {
	a, _ := twoRegimes(12, 60)

	serial := fitService(t)
	if _, err := serial.IngestLabeled(a, "run-a"); err != nil {
		t.Fatal(err)
	}

	batched := fitService(t)
	res, err := batched.IngestLabeledBatch(a, "run-a", BatchOptions{ChunkSize: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("unexpected per-doc errors: %v", res.Errors)
	}
	if got := res.Inserted(); got != len(a) {
		t.Fatalf("inserted %d, want %d", got, len(a))
	}
	if batched.StoreCount() != serial.StoreCount() {
		t.Fatalf("store counts diverge: batch %d vs serial %d", batched.StoreCount(), serial.StoreCount())
	}
	for i, id := range res.IDs {
		if id == "" {
			t.Fatalf("doc %d has no ID despite empty error list", i)
		}
	}

	// Every batch-ingested document must round-trip and match its input.
	got, err := batched.GetSamples(res.IDs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if got[i].Elems() != a[i].Elems() {
			t.Fatalf("doc %d: %d elements, want %d", i, got[i].Elems(), a[i].Elems())
		}
		gf, wf := got[i].Floats(), a[i].Floats()
		for j := range wf {
			if gf[j] != wf[j] {
				t.Fatalf("doc %d: payload diverges at elem %d", i, j)
			}
		}
	}

	// And the index must have adopted them: nearest on an ingested sample
	// finds an exact (distance ~0) neighbor.
	_, _, dist, err := batched.NearestLabeledExcluding(a[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if dist > 1e-9 {
		t.Fatalf("nearest distance after batch ingest = %g, want ~0", dist)
	}
}

// TestIngestBatchPartialFailure is the satellite regression: one malformed
// document in a batch yields a per-doc error while the rest commit.
func TestIngestBatchPartialFailure(t *testing.T) {
	svc := fitService(t)
	a, _ := twoRegimes(13, 20)

	// Doc 5: wrong feature width. Doc 11: truncated payload (fails
	// Validate). Doc 17: nil.
	bad := map[int]string{5: "elements", 11: "payload", 17: "nil sample"}
	a[5] = codec.SampleFromFloats([]float64{1, 2, 3}, []int{3}, codec.F64, nil)
	a[11] = &codec.Sample{Shape: a[11].Shape, Dtype: a[11].Dtype, Data: a[11].Data[:4], Label: a[11].Label}
	a[17] = nil

	res, err := svc.IngestLabeledBatch(a, "partial", BatchOptions{ChunkSize: 6, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != len(bad) {
		t.Fatalf("got %d per-doc errors (%v), want %d", len(res.Errors), res.Errors, len(bad))
	}
	for _, de := range res.Errors {
		want, ok := bad[de.Index]
		if !ok {
			t.Fatalf("unexpected error for doc %d: %v", de.Index, de.Err)
		}
		if !strings.Contains(de.Err.Error(), want) {
			t.Errorf("doc %d error %q does not mention %q", de.Index, de.Err, want)
		}
		if res.IDs[de.Index] != "" {
			t.Errorf("failed doc %d has ID %q", de.Index, res.IDs[de.Index])
		}
	}
	if got, want := res.Inserted(), len(a)-len(bad); got != want {
		t.Fatalf("inserted %d, want %d", got, want)
	}
	if svc.StoreCount() != len(a)-len(bad) {
		t.Fatalf("store holds %d docs, want %d", svc.StoreCount(), len(a)-len(bad))
	}
	// Errors must be sorted by input index.
	for i := 1; i < len(res.Errors); i++ {
		if res.Errors[i-1].Index >= res.Errors[i].Index {
			t.Fatalf("errors not ascending: %v", res.Errors)
		}
	}
}

// TestIngestBatchNilFirstSample: a nil leading document must not poison
// the batch's reference width (regression: refWidth came from samples[0]
// unconditionally and dereferenced nil).
func TestIngestBatchNilFirstSample(t *testing.T) {
	svc := fitService(t)
	a, _ := twoRegimes(16, 6)
	a[0] = nil
	res, err := svc.IngestLabeledBatch(a, "x", BatchOptions{ChunkSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted() != 5 || len(res.Errors) != 1 || res.Errors[0].Index != 0 {
		t.Fatalf("nil-first batch: %+v, want 5 inserted and one error at index 0", res)
	}

	// An all-nil batch reports every document and commits nothing.
	res, err = svc.IngestLabeledBatch(make([]*codec.Sample, 4), "x", BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted() != 0 || len(res.Errors) != 4 {
		t.Fatalf("all-nil batch: %+v, want 0 inserted and 4 errors", res)
	}
}

// TestIngestBatchRequiresClusters: the whole-call failure mode.
func TestIngestBatchRequiresClusters(t *testing.T) {
	svc := newService(t)
	a, _ := twoRegimes(14, 4)
	if _, err := svc.IngestLabeledBatch(a, "x", BatchOptions{}); err != ErrNotFitted {
		t.Fatalf("err = %v, want ErrNotFitted", err)
	}
	fitted := fitService(t)
	res, err := fitted.IngestLabeledBatch(nil, "x", BatchOptions{})
	if err != nil || len(res.IDs) != 0 || len(res.Errors) != 0 {
		t.Fatalf("empty batch: res=%+v err=%v, want empty result", res, err)
	}
}

// TestIngestBatchStoreFailureIsPerChunk: a store that rejects one chunk's
// InsertMany fails only that chunk's documents.
func TestIngestBatchStoreFailureIsPerChunk(t *testing.T) {
	svc := fitService(t)
	a, _ := twoRegimes(15, 12)
	// An unindexable field value (slice) in the indexed "cluster" field
	// cannot be simulated from outside, so wrap the store instead.
	inner := svc.store
	svc.store = &failNthInsert{DataStore: inner, failOn: 1}
	res, err := svc.IngestLabeledBatch(a, "x", BatchOptions{ChunkSize: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Inserted(); got != 8 {
		t.Fatalf("inserted %d, want 8 (one failed chunk of 4)", got)
	}
	if len(res.Errors) != 4 {
		t.Fatalf("got %d per-doc errors, want 4: %v", len(res.Errors), res.Errors)
	}
	for _, de := range res.Errors {
		if !strings.Contains(de.Err.Error(), "storing chunk") {
			t.Errorf("doc %d: error %q should be a chunk store failure", de.Index, de.Err)
		}
	}
}

// failNthInsert wraps a DataStore and fails the n-th InsertMany call.
type failNthInsert struct {
	DataStore
	calls  int
	failOn int
}

func (f *failNthInsert) InsertMany(fs []docstore.Fields) ([]string, error) {
	n := f.calls
	f.calls++
	if n == f.failOn {
		return nil, errInjected
	}
	return f.DataStore.InsertMany(fs)
}

var errInjected = &injectedError{}

type injectedError struct{}

func (*injectedError) Error() string { return "injected store failure" }

// TestIngestBatchCommitsChunksAsTransactions: on a WAL-durable store,
// each ingest chunk lands as exactly one commit record — the unit of
// atomicity and durability for batch ingest.
func TestIngestBatchCommitsChunksAsTransactions(t *testing.T) {
	ds, err := docstore.OpenDurable(docstore.DurableOptions{Dir: t.TempDir(), Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	svc, err := New(idEmbedder{dim: 6}, ds.Collection("peaks"), Config{Seed: 1, KMin: 2, KMax: 6})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := twoRegimes(11, 40)
	x, err := Collate(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.FitClustersK(x, 4); err != nil {
		t.Fatal(err)
	}

	before := ds.WalStats().Appends
	docs, _ := twoRegimes(13, 30)
	res, err := svc.IngestLabeledBatch(docs, "run-a", BatchOptions{ChunkSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Inserted(); got != len(docs) {
		t.Fatalf("inserted %d, want %d", got, len(docs))
	}
	wantChunks := int64((len(docs) + 7) / 8)
	if got := ds.WalStats().Appends - before; got != wantChunks {
		t.Fatalf("ingest appended %d WAL records; want one per chunk = %d", got, wantChunks)
	}
}
