// Package trainer is the server-side rapid-train subsystem: an
// asynchronous training-job manager embedded in the fairDMS daemon. It
// closes the loop the paper's Fig. 5 draws — until now this repo trained
// only client-side (cmd/fairdms), with the daemon serving data and
// recommendations; here the daemon itself runs the paper's central action:
//
//  1. a job names a labeled dataset (an already-ingested scan tag or
//     inline samples);
//  2. the manager computes its cluster PDF and asks the fairMS zoo for
//     the closest prior checkpoint under the JSD threshold;
//  3. training warm-starts from that checkpoint (nn.Fit), falling back to
//     a cold start when nothing is close enough — the paper's
//     train-from-scratch branch;
//  4. on success the resulting checkpoint is registered back into the zoo
//     with lineage metadata (parent ID, epochs run, converged-at epoch),
//     the model-provenance thread of the FAIR-for-HEDM follow-up.
//
// Jobs run on a bounded worker pool fed by a bounded queue; a full queue
// surfaces ErrQueueFull so the HTTP front end can shed with 429. Jobs are
// cancellable mid-epoch (nn.TrainConfig.Stop) and report live per-epoch
// train/val loss curves while running. A panicking job marks itself
// failed without taking a worker (or the daemon) down.
package trainer

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/core"
	"fairdms/internal/fairds"
	"fairdms/internal/fairms"
	"fairdms/internal/hdrhist"
	"fairdms/internal/models"
	"fairdms/internal/nn"
	"fairdms/internal/obs"
	"fairdms/internal/tensor"
)

// Defaults for Spec and Config zero values.
const (
	DefaultWorkers   = 2
	DefaultQueue     = 8
	DefaultHistory   = 512
	DefaultEpochs    = 50
	DefaultBatchSize = 16
	DefaultHidden    = 32
)

// Model kinds a Spec may name.
const (
	ModelBraggNN = "braggnn" // conv regressor over square patches, 2-wide center labels
	ModelMLP     = "mlp"     // generic Linear→ReLU→Linear regressor over flat features
)

// State is a job's lifecycle position. Terminal states are Done, Failed,
// and Canceled.
type State string

// The job state machine: Queued → Running → Done | Failed | Canceled
// (a queued job may also go straight to Canceled).
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Sentinel errors surfaced to the API layer.
var (
	// ErrQueueFull means the job queue is saturated; the front end maps it
	// to HTTP 429.
	ErrQueueFull = errors.New("trainer: job queue full")
	// ErrUnknownJob means no job has the given ID.
	ErrUnknownJob = errors.New("trainer: unknown job")
	// ErrShutdown means the manager no longer accepts jobs.
	ErrShutdown = errors.New("trainer: manager shut down")
)

// Spec describes one training job. Zero values pick defaults.
type Spec struct {
	// Dataset selects already-ingested samples by their ingest tag.
	// Ignored when Samples is non-empty.
	Dataset string
	// Samples are inline labeled samples to train on.
	Samples []*codec.Sample
	// Model names the architecture: ModelBraggNN (default) or ModelMLP.
	Model string
	// Hidden is the MLP hidden width (default DefaultHidden).
	Hidden int
	// Epochs caps the run (default DefaultEpochs).
	Epochs int
	// BatchSize is the mini-batch size (default DefaultBatchSize).
	BatchSize int
	// LR overrides the learning rate; 0 picks core.DefaultFineTuneLR for
	// warm starts and core.DefaultScratchLR for cold ones.
	LR float64
	// TargetLoss stops the run once validation loss reaches it (0 disables).
	TargetLoss float64
	// Patience stops after this many epochs without val improvement.
	Patience int
	// MaxJSD is the warm-start distance threshold: 0 means
	// core.DefaultJSDThreshold, negative forces a cold start.
	MaxJSD float64
	// ValFraction of the data is held out (default core.DefaultValFraction).
	ValFraction float64
	// Seed drives model init, shuffling, and the holdout split.
	Seed int64
	// ModelID names the zoo entry registered on success ("" derives it
	// from the job ID).
	ModelID string
	// Meta is attached to the zoo entry; the lineage keys
	// (fairms.MetaParent etc.) are overwritten by the trainer.
	Meta map[string]string
}

func (s *Spec) defaults() {
	if s.Model == "" {
		s.Model = ModelBraggNN
	}
	if s.Hidden <= 0 {
		s.Hidden = DefaultHidden
	}
	if s.Epochs <= 0 {
		s.Epochs = DefaultEpochs
	}
	if s.BatchSize <= 0 {
		s.BatchSize = DefaultBatchSize
	}
	if s.MaxJSD == 0 {
		s.MaxJSD = core.DefaultJSDThreshold
	}
	if s.ValFraction <= 0 || s.ValFraction >= 1 {
		s.ValFraction = core.DefaultValFraction
	}
}

// Status is a point-in-time snapshot of a job, safe to hold after the job
// moves on.
type Status struct {
	ID      string
	State   State
	Model   string
	Dataset string // ingest tag ("" for inline submissions)
	Samples int    // resolved sample count (0 until the job starts)

	Warm       bool    // warm-started from a zoo checkpoint
	Foundation string  // zoo ID of the warm-start parent ("" when cold)
	JSD        float64 // divergence of the foundation's training data

	Epochs      int // epochs actually run so far
	Converged   bool
	ConvergedAt int // 1-based epoch val loss first met TargetLoss (0 = never)
	TrainLoss   []float64
	ValLoss     []float64

	ModelID string // zoo entry registered on success
	Err     string // failure reason (State == StateFailed)

	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
}

// job is the mutable server-side record behind a Status.
type job struct {
	mu     sync.Mutex
	status Status // guarded by mu
	spec   Spec
	cancel context.CancelFunc
	ctx    context.Context
}

// snapshot copies the job's status, deep-copying the loss curves so the
// caller's view cannot race the training loop's appends.
func (j *job) snapshot() *Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.status
	st.TrainLoss = append([]float64(nil), j.status.TrainLoss...)
	st.ValLoss = append([]float64(nil), j.status.ValLoss...)
	return &st
}

// Config wires a Manager to the two services and tunes its pool.
type Config struct {
	// DS is the data service jobs resolve datasets and PDFs against.
	// Required.
	DS *fairds.Service
	// Zoo is the model zoo consulted for warm starts and receiving
	// finished checkpoints. Required.
	Zoo *fairms.Zoo
	// Workers is the parallel-training bound (default DefaultWorkers).
	Workers int
	// Queue bounds jobs waiting for a worker; Submit past it returns
	// ErrQueueFull (default DefaultQueue).
	Queue int
	// History bounds retained jobs: once the total exceeds it, the oldest
	// terminal jobs (and their loss curves) are forgotten, so a long-lived
	// daemon's memory stays flat under sustained train load. Live jobs are
	// never pruned (default DefaultHistory).
	History int
	// Guard, when set, is read-locked around every data-service call so
	// jobs never race an exclusive DS mutation (the dmsapi bootstrap fit).
	Guard *sync.RWMutex
	// OnRegister, when set, fires after a job's checkpoint lands in the
	// zoo — the dmsapi server uses it to invalidate its recommend cache.
	OnRegister func(modelID string)
	// Obs, when set, receives the trainer's metrics: per-epoch wall time
	// under dms_train_epoch_seconds. Registration happens in New, so a
	// registry must not already hold that name.
	Obs *obs.Registry
	// OnTrace, when set, fires as each job reaches a terminal state with
	// its wall time and span tree (resolve_data → pdf → recommend → fit,
	// with fairds stage spans underneath) — the dmsapi server routes these
	// into the same slow-request log as serving traffic.
	OnTrace func(d time.Duration, dump obs.TraceDump)
	// Logger receives job-lifecycle logs; nil silences them.
	Logger *log.Logger
}

// Stats is a point-in-time snapshot of the manager's gauges — the train
// block of /statsz.
type Stats struct {
	Workers    int   `json:"workers"`
	QueueCap   int   `json:"queue_cap"`
	QueueDepth int   `json:"queue_depth"`
	Active     int   `json:"active"`
	Submitted  int64 `json:"submitted"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Canceled   int64 `json:"canceled"`
	WarmStarts int64 `json:"warm_starts"`
	ColdStarts int64 `json:"cold_starts"`
}

// Manager runs training jobs on a bounded worker pool. Safe for
// concurrent use.
type Manager struct {
	cfg Config

	mu sync.Mutex
	// cond signals workers that pending changed (or the manager closed).
	cond *sync.Cond
	// pending is the FIFO of live queued jobs. Canceled-while-queued jobs
	// are removed immediately, so a canceled job never pins a queue slot:
	// Submit's backpressure is len(pending) against cfg.Queue.
	pending []*job          // guarded by mu
	jobs    map[string]*job // guarded by mu
	order   []string        // guarded by mu
	closed  bool            // guarded by mu

	wg      sync.WaitGroup
	started atomic.Bool
	nextID  atomic.Int64

	active     atomic.Int64
	submitted  atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
	canceled   atomic.Int64
	warmStarts atomic.Int64
	coldStarts atomic.Int64

	// epochHist records per-epoch training wall time (nil without cfg.Obs).
	epochHist *hdrhist.Histogram

	// testHookBeforeTrain, when set, runs inside the worker just before
	// training starts — the panic-injection point for crash-safety tests.
	testHookBeforeTrain func(id string)
}

// New validates the config and builds a stopped manager; call Start to
// spin up the worker pool.
func New(cfg Config) (*Manager, error) {
	if cfg.DS == nil || cfg.Zoo == nil {
		return nil, errors.New("trainer: manager needs both a data service and a model zoo")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultQueue
	}
	if cfg.History <= 0 {
		cfg.History = DefaultHistory
	}
	m := &Manager{
		cfg:  cfg,
		jobs: make(map[string]*job),
	}
	if cfg.Obs != nil {
		m.epochHist = cfg.Obs.Histogram("dms_train_epoch_seconds", "training epoch wall time")
	}
	m.cond = sync.NewCond(&m.mu)
	return m, nil
}

// Start launches the worker pool. Calling it twice is a no-op.
func (m *Manager) Start() {
	if m.started.Swap(true) {
		return
	}
	for i := 0; i < m.cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
}

// Shutdown stops accepting jobs, cancels every non-terminal one (queued
// jobs are canceled in place, never picked up), and waits (up to ctx) for
// the workers to drain.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	pending := m.pending
	m.pending = nil
	running := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		running = append(running, j)
	}
	m.cond.Broadcast()
	m.mu.Unlock()

	for _, j := range pending {
		m.finalize(j, StateCanceled, "")
	}
	for _, j := range running {
		j.mu.Lock()
		if !j.status.State.Terminal() && j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
	}

	if !m.started.Load() {
		return nil
	}
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("trainer: shutdown: %w", ctx.Err())
	}
}

// Submit validates and enqueues a job, returning its initial status.
// A saturated queue returns ErrQueueFull without enqueueing.
func (m *Manager) Submit(spec Spec) (*Status, error) {
	spec.defaults()
	if len(spec.Samples) == 0 && spec.Dataset == "" {
		return nil, errors.New("trainer: job needs inline samples or a dataset tag")
	}
	if spec.Model != ModelBraggNN && spec.Model != ModelMLP {
		return nil, fmt.Errorf("trainer: unknown model %q (want %s or %s)",
			spec.Model, ModelBraggNN, ModelMLP)
	}
	for i, smp := range spec.Samples {
		if len(smp.Label) == 0 {
			return nil, fmt.Errorf("trainer: inline sample %d has no label", i)
		}
	}

	id := fmt.Sprintf("job-%06d", m.nextID.Add(1))
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		spec:   spec,
		ctx:    ctx,
		cancel: cancel,
		status: Status{
			ID:          id,
			State:       StateQueued,
			Model:       spec.Model,
			Dataset:     spec.Dataset,
			Samples:     len(spec.Samples),
			SubmittedAt: time.Now(),
		},
	}
	if spec.Dataset != "" && len(spec.Samples) > 0 {
		j.status.Dataset = "" // inline samples win; don't report a misleading tag
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return nil, ErrShutdown
	}
	if len(m.pending) >= m.cfg.Queue {
		m.mu.Unlock()
		cancel()
		return nil, ErrQueueFull
	}
	m.pending = append(m.pending, j)
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.cond.Signal()
	m.mu.Unlock()
	m.submitted.Add(1)
	m.logf("trainer: %s queued (model %s, dataset %q, %d inline samples)",
		id, spec.Model, spec.Dataset, len(spec.Samples))
	return j.snapshot(), nil
}

// Get returns a snapshot of the job with the given ID. Terminal jobs
// older than the history cap have been pruned and report ErrUnknownJob.
func (m *Manager) Get(id string) (*Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j.snapshot(), nil
}

// List returns snapshots of every job in submission order.
func (m *Manager) List() []*Status {
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]*Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	return out
}

// Cancel requests cancellation of a job. Queued jobs are canceled
// immediately and release their queue slot; running jobs stop mid-epoch
// at the next batch boundary. A running job that has already passed its
// commit point (checkpoint registration underway) completes as done.
// Canceling a terminal job is a no-op returning its final status.
func (m *Manager) Cancel(id string) (*Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	// Drop it from the pending FIFO so the slot frees immediately; a job
	// already popped by a worker simply isn't there.
	for i, p := range m.pending {
		if p == j {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			break
		}
	}
	m.mu.Unlock()

	j.mu.Lock()
	var canceledQueued bool
	switch j.status.State {
	case StateQueued:
		// Inline rather than via finalize: the decide-and-act must be
		// atomic under j.mu, or a worker that popped the job before our
		// pending removal could promote it to Running between the check
		// and the transition.
		j.status.State = StateCanceled
		j.status.FinishedAt = time.Now()
		canceledQueued = true
	case StateRunning:
		j.cancel() // the worker observes ctx and finalizes the state
		m.logf("trainer: %s cancellation requested mid-run", id)
	}
	j.mu.Unlock()
	if canceledQueued {
		j.cancel()
		m.canceled.Add(1)
		m.logf("trainer: %s canceled while queued", id)
		m.pruneHistory() // this terminal transition bypassed finalize
	}
	return j.snapshot(), nil
}

// Stats snapshots the manager's gauges.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	depth := len(m.pending)
	m.mu.Unlock()
	return Stats{
		Workers:    m.cfg.Workers,
		QueueCap:   m.cfg.Queue,
		QueueDepth: depth,
		Active:     int(m.active.Load()),
		Submitted:  m.submitted.Load(),
		Completed:  m.completed.Load(),
		Failed:     m.failed.Load(),
		Canceled:   m.canceled.Load(),
		WarmStarts: m.warmStarts.Load(),
		ColdStarts: m.coldStarts.Load(),
	}
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logger != nil {
		m.cfg.Logger.Printf(format, args...)
	}
}

// ---------------------------------------------------------------------------
// Worker pool

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.pending) == 0 { // closed and drained
			m.mu.Unlock()
			return
		}
		j := m.pending[0]
		m.pending = m.pending[1:]
		m.mu.Unlock()

		j.mu.Lock()
		if j.status.State != StateQueued { // canceled while waiting
			j.mu.Unlock()
			continue
		}
		j.status.State = StateRunning
		j.status.StartedAt = time.Now()
		j.mu.Unlock()

		m.active.Add(1)
		m.runSafely(j)
		m.active.Add(-1)
	}
}

// runSafely isolates one job: a panic anywhere in the training pipeline
// marks the job failed and returns the worker to the pool instead of
// crashing the daemon. The terminal state comes from run's own outcome,
// not a fresh ctx poll — once a job passes its commit point (checkpoint
// registration), a cancel racing the finish cannot flip a registered job
// to "canceled".
func (m *Manager) runSafely(j *job) {
	defer func() {
		if r := recover(); r != nil {
			m.finalize(j, StateFailed, fmt.Sprintf("panic: %v", r))
		}
	}()
	committed, err := m.run(j)
	switch {
	case err != nil && j.ctx.Err() != nil:
		m.finalize(j, StateCanceled, "")
	case err != nil:
		m.finalize(j, StateFailed, err.Error())
	case committed:
		m.finalize(j, StateDone, "")
	default:
		m.finalize(j, StateCanceled, "")
	}
}

// finalize moves a job into a terminal state exactly once and bumps the
// matching counter.
func (m *Manager) finalize(j *job, state State, errMsg string) {
	j.mu.Lock()
	if j.status.State.Terminal() {
		j.mu.Unlock()
		return
	}
	j.status.State = state
	j.status.Err = errMsg
	j.status.FinishedAt = time.Now()
	id := j.status.ID
	j.mu.Unlock()
	j.cancel() // release the context either way

	switch state {
	case StateDone:
		m.completed.Add(1)
		m.logf("trainer: %s done", id)
	case StateFailed:
		m.failed.Add(1)
		m.logf("trainer: %s failed: %s", id, errMsg)
	case StateCanceled:
		m.canceled.Add(1)
		m.logf("trainer: %s canceled", id)
	}
	m.pruneHistory()
}

// pruneHistory forgets the oldest terminal jobs once the total exceeds
// cfg.History, keeping a long-lived manager's footprint flat (every
// retained job pins its loss curves and sample references). Live jobs
// are never pruned; Get on a pruned ID reports ErrUnknownJob.
func (m *Manager) pruneHistory() {
	m.mu.Lock()
	defer m.mu.Unlock()
	excess := len(m.order) - m.cfg.History
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		j.mu.Lock()
		terminal := j.status.State.Terminal()
		j.mu.Unlock()
		if excess > 0 && terminal {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// readLocked runs fn under the external read guard (if any) — the same
// lock the dmsapi server's bootstrap fit takes exclusively.
func (m *Manager) readLocked(fn func() error) error {
	if m.cfg.Guard != nil {
		m.cfg.Guard.RLock()
		defer m.cfg.Guard.RUnlock()
	}
	return fn()
}

// run executes the paper's rapid-train action for one job. It returns
// committed=true once the checkpoint is registered (the job's commit
// point); committed=false with a nil error means the job observed its
// cancellation and stopped cleanly.
func (m *Manager) run(j *job) (committed bool, err error) {
	if j.ctx.Err() != nil { // canceled between pickup and start
		return false, nil
	}
	if m.testHookBeforeTrain != nil {
		m.testHookBeforeTrain(j.status.ID)
	}
	spec := j.spec

	// Jobs get the same span treatment as requests: a trace is built only
	// when someone is listening (cfg.OnTrace), otherwise every span call
	// below no-ops on a nil trace. The defer fires on every terminal path —
	// done, failed, canceled, even a panic unwinding through runSafely.
	var tr *obs.Trace
	if m.cfg.OnTrace != nil {
		tr = obs.NewTrace("", false)
	}
	ctx := obs.NewContext(j.ctx, tr)
	ctx, root := obs.StartSpan(ctx, "train_job")
	jobStart := time.Now()
	defer func() {
		root.End()
		if tr != nil {
			m.cfg.OnTrace(time.Since(jobStart), tr.Dump())
		}
	}()

	// Resolve the training set: inline samples or a stored dataset tag.
	samples := spec.Samples
	if len(samples) == 0 {
		rctx, sp := obs.StartSpan(ctx, "resolve_data")
		err := m.readLocked(func() error {
			var err error
			samples, err = m.cfg.DS.DatasetSamplesContext(rctx, spec.Dataset)
			return err
		})
		sp.End()
		if err != nil {
			return false, err
		}
		// Stored datasets get the same label gate as inline submissions:
		// without it, an unlabeled corpus would "train" against an empty
		// target and register a degenerate checkpoint as done.
		for i, smp := range samples {
			if len(smp.Label) == 0 {
				return false, fmt.Errorf("trainer: dataset %q sample %d has no label", spec.Dataset, i)
			}
		}
		j.mu.Lock()
		j.status.Samples = len(samples)
		j.mu.Unlock()
	}
	if len(samples) < 2 {
		return false, fmt.Errorf("trainer: %d labeled samples is not enough to train on (need >= 2)", len(samples))
	}

	x, err := fairds.Collate(samples)
	if err != nil {
		return false, err
	}
	y, model, err := buildModel(spec, x, samples)
	if err != nil {
		return false, err
	}

	// The dataset's cluster PDF — both the warm-start query key and the
	// signature the finished checkpoint is registered under.
	var pdf []float64
	pctx, sp := obs.StartSpan(ctx, "pdf")
	err = m.readLocked(func() error {
		p, err := m.cfg.DS.DatasetPDFContext(pctx, x)
		pdf = p
		return err
	})
	sp.End()
	if err != nil {
		return false, err
	}

	// Warm start: closest zoo checkpoint under the JSD threshold; any
	// incompatibility (or an empty zoo) degrades to the paper's
	// train-from-scratch branch.
	warm := false
	foundation := ""
	jsd := 0.0
	if spec.MaxJSD > 0 {
		_, sp := obs.StartSpan(ctx, "recommend")
		rec, ok := m.cfg.Zoo.RecommendWithThreshold(pdf, spec.MaxJSD)
		sp.End()
		if ok {
			if err := model.LoadState(rec.Record.State); err != nil {
				m.logf("trainer: %s: foundation %s incompatible (%v), cold-starting",
					j.status.ID, rec.Record.ID, err)
			} else {
				warm = true
				foundation = rec.Record.ID
				jsd = rec.JSD
			}
		}
	}
	j.mu.Lock()
	j.status.Warm = warm
	j.status.Foundation = foundation
	j.status.JSD = jsd
	j.mu.Unlock()
	if warm {
		m.warmStarts.Add(1)
	} else {
		m.coldStarts.Add(1)
	}

	lr := spec.LR
	if lr <= 0 {
		if warm {
			lr = core.DefaultFineTuneLR
		} else {
			lr = core.DefaultScratchLR
		}
	}

	trainX, trainY, valX, valY := core.Split(x, y, spec.ValFraction, spec.Seed)
	_, fitSpan := obs.StartSpan(ctx, "fit")
	epochStart := time.Now()
	res := nn.Fit(model, nn.NewAdam(model.Params(), lr), trainX, trainY, valX, valY, nn.TrainConfig{
		Epochs:     spec.Epochs,
		BatchSize:  spec.BatchSize,
		TargetLoss: spec.TargetLoss,
		Patience:   spec.Patience,
		Seed:       spec.Seed,
		OnEpoch: func(epoch int, trainLoss, valLoss float64) bool {
			if m.epochHist != nil {
				now := time.Now()
				m.epochHist.Record(now.Sub(epochStart))
				epochStart = now
			}
			j.mu.Lock()
			j.status.Epochs = epoch
			j.status.TrainLoss = append(j.status.TrainLoss, trainLoss)
			j.status.ValLoss = append(j.status.ValLoss, valLoss)
			j.mu.Unlock()
			return true
		},
		Stop: func() bool { return j.ctx.Err() != nil },
	})
	fitSpan.End()
	// The commit point: a cancel observed here (or earlier, mid-epoch)
	// stops cleanly with nothing registered; past it, the job registers
	// and completes as done even if a cancel races the finish.
	if res.Stopped || j.ctx.Err() != nil {
		return false, nil
	}

	convergedAt := 0
	if res.Converged {
		convergedAt = res.ConvergedAt(spec.TargetLoss)
	}
	j.mu.Lock()
	j.status.Converged = res.Converged
	j.status.ConvergedAt = convergedAt
	j.mu.Unlock()

	// Register the checkpoint with its lineage — what makes the zoo a
	// provenance graph, not just a flat index. The reserved keys are
	// always owned by the trainer: user-supplied values are dropped even
	// when a key does not apply (a cold start must not inherit a bogus
	// "parent").
	modelID := spec.ModelID
	if modelID == "" {
		modelID = j.status.ID + "-model"
	}
	meta := make(map[string]string, len(spec.Meta)+4)
	for k, v := range spec.Meta {
		meta[k] = v
	}
	delete(meta, fairms.MetaParent)
	delete(meta, fairms.MetaConvergedAt)
	meta[fairms.MetaWarmStart] = strconv.FormatBool(warm)
	meta[fairms.MetaEpochs] = strconv.Itoa(res.Epochs)
	if warm {
		meta[fairms.MetaParent] = foundation
	}
	if convergedAt > 0 {
		meta[fairms.MetaConvergedAt] = strconv.Itoa(convergedAt)
	}
	if err := m.cfg.Zoo.Add(modelID, model.State(), pdf, meta); err != nil {
		return false, fmt.Errorf("trainer: registering %s: %w", modelID, err)
	}
	j.mu.Lock()
	j.status.ModelID = modelID
	j.mu.Unlock()
	if m.cfg.OnRegister != nil {
		m.cfg.OnRegister(modelID)
	}
	m.logf("trainer: %s registered %s (warm=%v foundation=%q epochs=%d)",
		j.status.ID, modelID, warm, foundation, res.Epochs)
	return true, nil
}

// buildModel constructs the job's network and target tensor from its spec
// and resolved samples.
func buildModel(spec Spec, x *tensor.Tensor, samples []*codec.Sample) (*tensor.Tensor, *nn.Model, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	features := x.Dim(1)
	switch spec.Model {
	case ModelBraggNN:
		patch := int(math.Round(math.Sqrt(float64(features))))
		if patch < 3 || patch*patch != features {
			return nil, nil, fmt.Errorf("trainer: braggnn needs square patches, got %d features", features)
		}
		y := tensor.New(len(samples), 2)
		for i, smp := range samples {
			if len(smp.Label) < 2 {
				return nil, nil, fmt.Errorf("trainer: braggnn sample %d has %d label values, need 2",
					i, len(smp.Label))
			}
			// Normalize pixel-space centers into the network's (0,1) range,
			// matching models.BraggNN.Targets.
			y.Set(smp.Label[0]/float64(patch-1), i, 0)
			y.Set(smp.Label[1]/float64(patch-1), i, 1)
		}
		return y, models.NewBraggNN(rng, patch).Net, nil
	case ModelMLP:
		labelW := len(samples[0].Label)
		if labelW == 0 {
			return nil, nil, errors.New("trainer: mlp needs labeled samples (first sample has no label)")
		}
		y := tensor.New(len(samples), labelW)
		for i, smp := range samples {
			if len(smp.Label) != labelW {
				return nil, nil, fmt.Errorf("trainer: sample %d has %d label values, expected %d",
					i, len(smp.Label), labelW)
			}
			for c, v := range smp.Label {
				y.Set(v, i, c)
			}
		}
		model := nn.Sequential(
			nn.NewLinear(rng, features, spec.Hidden),
			nn.NewReLU(),
			nn.NewLinear(rng, spec.Hidden, labelW),
		)
		return y, model, nil
	default:
		return nil, nil, fmt.Errorf("trainer: unknown model %q", spec.Model)
	}
}
