package trainer

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/fairds"
	"fairdms/internal/fairms"
)

const (
	testFeatures = 8
	testHidden   = 16
)

// meanSamples builds labeled samples whose label is the feature mean — a
// problem a small MLP learns quickly and deterministically.
func meanSamples(seed int64, n int) []*codec.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*codec.Sample, n)
	for i := range out {
		vals := make([]float64, testFeatures)
		sum := 0.0
		for j := range vals {
			vals[j] = rng.Float64()
			sum += vals[j]
		}
		out[i] = codec.SampleFromFloats(vals, []int{testFeatures}, codec.F64,
			[]float64{sum / testFeatures})
	}
	return out
}

// newFixture builds a fitted data service, an empty zoo, and a started
// manager over them.
func newFixture(t *testing.T, workers, queue int) (*Manager, *fairds.Service, *fairms.Zoo) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	ds, err := fairds.New(
		embed.NewAutoencoder(rng, testFeatures, 16, 4),
		docstore.NewStore().Collection("trainer-test"),
		fairds.Config{Seed: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	x, err := fairds.Collate(meanSamples(99, 64))
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.FitClustersK(x, 2); err != nil {
		t.Fatal(err)
	}
	zoo := fairms.NewZoo()
	m, err := New(Config{DS: ds, Zoo: zoo, Workers: workers, Queue: queue})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return m, ds, zoo
}

// waitState polls a job until pred holds or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, timeout time.Duration, pred func(*Status) bool) *Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not reach the expected state in %v; last: %+v", id, timeout, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitTerminal(t *testing.T, m *Manager, id string) *Status {
	t.Helper()
	return waitState(t, m, id, 60*time.Second, func(st *Status) bool { return st.State.Terminal() })
}

// mlpSpec is the shared small training job used across tests.
func mlpSpec(samples []*codec.Sample) Spec {
	return Spec{
		Samples:    samples,
		Model:      ModelMLP,
		Hidden:     testHidden,
		Epochs:     400,
		BatchSize:  16,
		LR:         0.01,
		TargetLoss: 5e-3,
		Seed:       7,
	}
}

// TestColdThenWarm runs the acceptance scenario at the manager level: a
// cold-started job converges and registers; a second job on the same data
// warm-starts from it, carries parent lineage, and converges in fewer
// epochs (the Figs. 13–14 claim).
func TestColdThenWarm(t *testing.T) {
	m, _, zoo := newFixture(t, 2, 8)
	data := meanSamples(1, 80)

	spec := mlpSpec(data)
	spec.ModelID = "cold-model"
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	cold := waitTerminal(t, m, st.ID)
	if cold.State != StateDone {
		t.Fatalf("cold job ended %s: %s", cold.State, cold.Err)
	}
	if cold.Warm {
		t.Fatal("first job warm-started against an empty zoo")
	}
	if !cold.Converged || cold.Epochs < 2 {
		t.Fatalf("cold job should converge after >= 2 epochs, got converged=%v epochs=%d",
			cold.Converged, cold.Epochs)
	}
	if len(cold.TrainLoss) != cold.Epochs || len(cold.ValLoss) != cold.Epochs {
		t.Fatalf("loss curves (%d, %d) do not match %d epochs",
			len(cold.TrainLoss), len(cold.ValLoss), cold.Epochs)
	}
	rec, err := zoo.Get("cold-model")
	if err != nil {
		t.Fatalf("cold checkpoint not registered: %v", err)
	}
	if rec.WarmStarted() || rec.Parent() != "" {
		t.Fatalf("cold lineage wrong: %+v", rec.Meta)
	}
	if n, ok := rec.Epochs(); !ok || n != cold.Epochs {
		t.Fatalf("lineage epochs %d/%v, want %d", n, ok, cold.Epochs)
	}
	if e, ok := rec.ConvergedAt(); !ok || e != cold.ConvergedAt {
		t.Fatalf("lineage converged_at %d/%v, want %d", e, ok, cold.ConvergedAt)
	}

	spec.ModelID = "warm-model"
	st, err = m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	warm := waitTerminal(t, m, st.ID)
	if warm.State != StateDone {
		t.Fatalf("warm job ended %s: %s", warm.State, warm.Err)
	}
	if !warm.Warm || warm.Foundation != "cold-model" {
		t.Fatalf("second job should warm-start from cold-model, got warm=%v foundation=%q",
			warm.Warm, warm.Foundation)
	}
	if !warm.Converged || warm.Epochs >= cold.Epochs {
		t.Fatalf("warm start should converge in fewer epochs: warm %d vs cold %d (converged=%v)",
			warm.Epochs, cold.Epochs, warm.Converged)
	}
	wrec, err := zoo.Get("warm-model")
	if err != nil {
		t.Fatal(err)
	}
	if !wrec.WarmStarted() || wrec.Parent() != "cold-model" {
		t.Fatalf("warm lineage wrong: %+v", wrec.Meta)
	}

	stats := m.Stats()
	if stats.Completed != 2 || stats.WarmStarts != 1 || stats.ColdStarts != 1 {
		t.Fatalf("stats %+v, want 2 completed / 1 warm / 1 cold", stats)
	}
}

// TestDatasetSelector trains on an already-ingested dataset tag instead of
// inline samples.
func TestDatasetSelector(t *testing.T) {
	m, ds, _ := newFixture(t, 1, 4)
	if _, err := ds.IngestLabeled(meanSamples(2, 48), "scan-07"); err != nil {
		t.Fatal(err)
	}
	spec := mlpSpec(nil)
	spec.Dataset = "scan-07"
	spec.Epochs = 5
	spec.TargetLoss = 0
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("dataset job ended %s: %s", final.State, final.Err)
	}
	if final.Samples != 48 || final.Dataset != "scan-07" {
		t.Fatalf("resolved %d samples from %q, want 48 from scan-07", final.Samples, final.Dataset)
	}
}

// TestQueueSaturation fills the worker and the queue, then asserts the
// next submission is rejected with ErrQueueFull (the API's 429).
func TestQueueSaturation(t *testing.T) {
	m, _, _ := newFixture(t, 1, 1)
	release := make(chan struct{})
	var once sync.Once
	m.testHookBeforeTrain = func(string) { <-release }
	defer once.Do(func() { close(release) })

	spec := mlpSpec(meanSamples(3, 32))
	spec.Epochs = 2
	spec.TargetLoss = 0
	running, err := m.Submit(spec) // occupies the single worker
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, 10*time.Second, func(st *Status) bool { return st.State == StateRunning })

	queued, err := m.Submit(spec) // fills the single queue slot
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(spec); err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("third submit should hit ErrQueueFull, got %v", err)
	}
	if st := m.Stats(); st.QueueDepth != 1 || st.Active != 1 {
		t.Fatalf("stats %+v, want depth 1 / active 1", st)
	}

	once.Do(func() { close(release) })
	if st := waitTerminal(t, m, running.ID); st.State != StateDone {
		t.Fatalf("running job ended %s: %s", st.State, st.Err)
	}
	if st := waitTerminal(t, m, queued.ID); st.State != StateDone {
		t.Fatalf("queued job ended %s: %s", st.State, st.Err)
	}
}

// TestCancelMidRun cancels a long-running job and expects it to stop
// promptly (mid-epoch) without registering a checkpoint.
func TestCancelMidRun(t *testing.T) {
	m, _, zoo := newFixture(t, 1, 4)
	spec := mlpSpec(meanSamples(4, 256))
	spec.BatchSize = 4
	spec.Epochs = 10_000_000 // far longer than the test will allow
	spec.TargetLoss = 0
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, 10*time.Second, func(s *Status) bool { return s.State == StateRunning })

	begin := time.Now()
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, st.ID, 5*time.Second, func(s *Status) bool { return s.State.Terminal() })
	if final.State != StateCanceled {
		t.Fatalf("canceled job ended %s: %s", final.State, final.Err)
	}
	if wait := time.Since(begin); wait > 3*time.Second {
		t.Fatalf("cancellation took %v, want mid-epoch promptness", wait)
	}
	if final.ModelID != "" || zoo.Len() != 0 {
		t.Fatal("canceled job must not register a checkpoint")
	}
	if m.Stats().Canceled != 1 {
		t.Fatalf("stats %+v, want 1 canceled", m.Stats())
	}

	// Canceling a terminal job is a no-op returning the final status.
	again, err := m.Cancel(st.ID)
	if err != nil || again.State != StateCanceled {
		t.Fatalf("re-cancel: %v, %+v", err, again)
	}
}

// TestCancelQueued cancels a job before any worker picks it up and
// asserts the cancellation releases its queue slot immediately (a
// canceled tombstone must not keep shedding new submissions).
func TestCancelQueued(t *testing.T) {
	m, _, _ := newFixture(t, 1, 1)
	release := make(chan struct{})
	m.testHookBeforeTrain = func(string) { <-release }
	defer close(release)

	spec := mlpSpec(meanSamples(5, 32))
	spec.Epochs = 2
	spec.TargetLoss = 0
	blocker, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, 10*time.Second, func(s *Status) bool { return s.State == StateRunning })
	queued, err := m.Submit(spec) // fills the single queue slot
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Cancel(queued.ID)
	if err != nil || st.State != StateCanceled {
		t.Fatalf("cancel queued: %v, state %s", err, st.State)
	}
	if depth := m.Stats().QueueDepth; depth != 0 {
		t.Fatalf("queue depth %d after canceling the only queued job", depth)
	}
	// The freed slot accepts new work while the worker is still blocked.
	refill, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("submit after queued-cancel should reuse the slot: %v", err)
	}
	if st, err := m.Get(refill.ID); err != nil || st.State != StateQueued {
		t.Fatalf("refill job: %v, state %+v", err, st)
	}
}

// TestPanicSafety asserts a panicking job is marked failed and the worker
// keeps serving subsequent jobs.
func TestPanicSafety(t *testing.T) {
	m, _, _ := newFixture(t, 1, 4)
	armed := true
	m.testHookBeforeTrain = func(id string) {
		if armed {
			armed = false
			panic("injected crash in job " + id)
		}
	}

	spec := mlpSpec(meanSamples(6, 32))
	spec.Epochs = 3
	spec.TargetLoss = 0
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	failed := waitTerminal(t, m, st.ID)
	if failed.State != StateFailed || !strings.Contains(failed.Err, "panic") {
		t.Fatalf("panicking job ended %s: %q", failed.State, failed.Err)
	}

	// The worker must have survived: the next job completes.
	st, err = m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, m, st.ID); final.State != StateDone {
		t.Fatalf("post-panic job ended %s: %s", final.State, final.Err)
	}
	if s := m.Stats(); s.Failed != 1 || s.Completed != 1 {
		t.Fatalf("stats %+v, want 1 failed / 1 completed", s)
	}
}

// TestSubmitValidation covers the synchronous rejections.
func TestSubmitValidation(t *testing.T) {
	m, _, _ := newFixture(t, 1, 2)
	if _, err := m.Submit(Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := m.Submit(Spec{Dataset: "x", Model: "transformer"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	unlabeled := meanSamples(7, 4)
	unlabeled[2].Label = nil
	if _, err := m.Submit(Spec{Samples: unlabeled, Model: ModelMLP}); err == nil {
		t.Fatal("unlabeled inline sample accepted")
	}
	if _, err := m.Get("job-999999"); err == nil {
		t.Fatal("unknown job id accepted")
	}
	if _, err := m.Cancel("job-999999"); err == nil {
		t.Fatal("cancel of unknown job accepted")
	}
}

// TestHistoryPruning asserts old terminal jobs are forgotten past the
// history cap, so a long-lived manager's footprint stays flat.
func TestHistoryPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds, err := fairds.New(
		embed.NewAutoencoder(rng, testFeatures, 16, 4),
		docstore.NewStore().Collection("trainer-history"),
		fairds.Config{Seed: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	x, err := fairds.Collate(meanSamples(99, 64))
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.FitClustersK(x, 2); err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{DS: ds, Zoo: fairms.NewZoo(), Workers: 1, Queue: 8, History: 3})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})

	spec := mlpSpec(meanSamples(9, 16))
	spec.Epochs = 1
	spec.TargetLoss = 0
	var first, last string
	for i := 0; i < 5; i++ {
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = st.ID
		}
		last = st.ID
		if final := waitTerminal(t, m, st.ID); final.State != StateDone {
			t.Fatalf("job %d ended %s: %s", i, final.State, final.Err)
		}
	}
	if got := len(m.List()); got > 3 {
		t.Fatalf("history holds %d jobs, cap is 3", got)
	}
	if _, err := m.Get(first); err == nil {
		t.Fatalf("oldest job %s survived pruning", first)
	}
	if _, err := m.Get(last); err != nil {
		t.Fatalf("newest job %s was pruned: %v", last, err)
	}
}

// TestShutdownRejectsSubmit asserts a shut-down manager refuses new work.
func TestShutdownRejectsSubmit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds, err := fairds.New(
		embed.NewAutoencoder(rng, testFeatures, 16, 4),
		docstore.NewStore().Collection("trainer-shutdown"),
		fairds.Config{Seed: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{DS: ds, Zoo: fairms.NewZoo(), Workers: 1, Queue: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(mlpSpec(meanSamples(8, 8))); err == nil {
		t.Fatal("submit accepted after shutdown")
	}
}
