// Package datagen synthesizes the three detector datasets the fairDMS paper
// evaluates with (§III-B), substituting for proprietary APS/LCLS beamline
// data:
//
//   - BraggPeaks: 15×15 float32 patches containing one 2-D pseudo-Voigt
//     diffraction peak each, labeled with the true sub-pixel center. A
//     "regime" fixes the peak-shape distribution; regimes drift across
//     scans, modeling the sample deformation that degrades BraggNN.
//   - CookieBox: square 8-bit images whose rows are per-channel electron
//     energy histograms with Poisson counting noise; the label is the clean
//     energy-angle probability density CookieNetAE must recover.
//   - Tomography: 16-bit phantom slices (nested ellipses) with dose-
//     dependent Poisson noise, used by the storage study.
//
// All generators are deterministic given their *rand.Rand. Generated
// samples are codec.Samples, so they flow unchanged into
// fairds.IngestLabeled, the dataloader pipeline, and the models in
// internal/models; every example under examples/ starts here.
package datagen

import (
	"math"
	"math/rand"

	"fairdms/internal/codec"
	"fairdms/internal/voigt"
)

// Poisson draws a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
func Poisson(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		return math.Round(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return float64(k)
		}
		k++
	}
}

// ---------------------------------------------------------------------------
// BraggPeaks

// BraggRegime is the generative distribution of one experimental condition:
// every peak patch drawn from it shares shape statistics, which is what the
// embedding + clustering pipeline detects and what model transfer exploits.
type BraggRegime struct {
	Patch        int     // square patch size, paper uses 15
	AmpMean      float64 // mean peak amplitude
	AmpStd       float64
	WidthMean    float64 // mean of Sx and Sy
	WidthStd     float64
	EtaMean      float64 // Lorentzian fraction
	EtaStd       float64
	CenterJitter float64 // stddev of the center's offset from patch center (px)
	Noise        float64 // additive Gaussian noise sigma
	Background   float64
}

// DefaultBraggRegime is the paper-like early-experiment condition: compact,
// mostly Gaussian peaks.
func DefaultBraggRegime() BraggRegime {
	return BraggRegime{
		Patch: 15, AmpMean: 10, AmpStd: 1.5,
		WidthMean: 1.6, WidthStd: 0.2,
		EtaMean: 0.3, EtaStd: 0.05,
		CenterJitter: 1.2, Noise: 0.25, Background: 0.5,
	}
}

// GenerateOne draws a single labeled peak patch. The label is the true
// sub-pixel center (cx, cy) — the quantity BraggNN regresses.
func (r BraggRegime) GenerateOne(rng *rand.Rand) *codec.Sample {
	p := r.drawParams(rng)
	img := p.Render(r.Patch, r.Patch)
	if r.Noise > 0 {
		for i := range img {
			img[i] += rng.NormFloat64() * r.Noise
		}
	}
	return codec.SampleFromFloats(img, []int{r.Patch, r.Patch}, codec.F32, []float64{p.Cx, p.Cy})
}

// Generate draws n labeled peak patches.
func (r BraggRegime) Generate(rng *rand.Rand, n int) []*codec.Sample {
	out := make([]*codec.Sample, n)
	for i := range out {
		out[i] = r.GenerateOne(rng)
	}
	return out
}

// drawParams samples peak parameters from the regime.
func (r BraggRegime) drawParams(rng *rand.Rand) voigt.Params {
	c := float64(r.Patch-1) / 2
	width := func() float64 {
		w := r.WidthMean + rng.NormFloat64()*r.WidthStd
		if w < 0.5 {
			w = 0.5
		}
		return w
	}
	eta := r.EtaMean + rng.NormFloat64()*r.EtaStd
	if eta < 0 {
		eta = 0
	}
	if eta > 1 {
		eta = 1
	}
	amp := r.AmpMean + rng.NormFloat64()*r.AmpStd
	if amp < 1 {
		amp = 1
	}
	return voigt.Params{
		Amp: amp,
		Cx:  c + rng.NormFloat64()*r.CenterJitter,
		Cy:  c + rng.NormFloat64()*r.CenterJitter,
		Sx:  width(), Sy: width(),
		Eta: eta, Background: r.Background,
	}
}

// BraggDriftSchedule describes how regimes evolve over a sequence of scans
// (datasets): parameters drift slowly within a phase and jump at DriftAt —
// the "sample deformation" event of the paper's Fig. 2 and Fig. 16.
type BraggDriftSchedule struct {
	Base     BraggRegime
	DriftAt  int     // dataset index where the sharp deformation happens
	SlowRate float64 // per-dataset fractional slow drift of the width (e.g. 0.004)
	// JumpWidth/JumpEta are the post-drift regime shifts: deformed samples
	// produce broader, more Lorentzian peaks.
	JumpWidth float64
	JumpEta   float64
}

// DefaultBraggDrift returns the schedule used by the experiments: a slow
// 0.4%/dataset width drift plus a sharp deformation at DriftAt.
func DefaultBraggDrift(driftAt int) BraggDriftSchedule {
	return BraggDriftSchedule{
		Base:      DefaultBraggRegime(),
		DriftAt:   driftAt,
		SlowRate:  0.004,
		JumpWidth: 1.4,
		JumpEta:   0.45,
	}
}

// RegimeAt returns the generative regime of dataset i under the schedule.
func (s BraggDriftSchedule) RegimeAt(i int) BraggRegime {
	r := s.Base
	r.WidthMean *= 1 + s.SlowRate*float64(i)
	if i >= s.DriftAt {
		r.WidthMean += s.JumpWidth
		r.EtaMean += s.JumpEta
		if r.EtaMean > 1 {
			r.EtaMean = 1
		}
		r.Noise *= 1.5
	}
	return r
}

// BraggExperiment generates a full drifting scan sequence: datasets[i] holds
// perDataset labeled patches drawn from RegimeAt(i).
func (s BraggDriftSchedule) BraggExperiment(seed int64, numDatasets, perDataset int) [][]*codec.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]*codec.Sample, numDatasets)
	for i := range out {
		out[i] = s.RegimeAt(i).Generate(rng, perDataset)
	}
	return out
}

// ---------------------------------------------------------------------------
// CookieBox

// CookieRegime parameterizes the CookieBox detector simulation: each image
// row is the energy histogram of one angular channel; the photoelectron
// energy distribution is a Gaussian whose amplitude is modulated around the
// 16-channel ring by the laser field (β, φ).
type CookieRegime struct {
	Size    int     // square image size (rows = angular channels, cols = energy bins)
	CenterE float64 // central energy as a fraction of Size (0..1)
	WidthE  float64 // energy width as a fraction of Size
	Beta    float64 // angular anisotropy amplitude in [0, 1)
	Phase   float64 // angular phase (radians)
	Counts  float64 // mean counts per channel — low counts = hard inputs
}

// DefaultCookieRegime is a paper-like condition at a reduced 32×32 size
// (the full detector is 128×128; see DESIGN.md on scaling).
func DefaultCookieRegime() CookieRegime {
	return CookieRegime{Size: 32, CenterE: 0.5, WidthE: 0.08, Beta: 0.6, Phase: 0.7, Counts: 220}
}

// Density returns the clean energy-angle density image the detector would
// record with infinite statistics — CookieNetAE's target. The image is
// normalized to unit total mass; the angular modulation (β, φ) is visible
// as per-channel amplitude differences.
func (r CookieRegime) Density() []float64 {
	n := r.Size
	img := make([]float64, n*n)
	total := 0.0
	for ch := 0; ch < n; ch++ {
		theta := 2 * math.Pi * float64(ch) / float64(n)
		amp := 1 + r.Beta*math.Cos(2*(theta-r.Phase))
		for e := 0; e < n; e++ {
			x := (float64(e)/float64(n) - r.CenterE) / r.WidthE
			v := amp * math.Exp(-x*x/2)
			img[ch*n+e] = v
			total += v
		}
	}
	if total > 0 {
		for i := range img {
			img[i] /= total
		}
	}
	return img
}

// GenerateOne draws one noisy detector image: per-bin Poisson counts around
// the density scaled so each channel receives ~Counts electrons on average,
// quantized to 8 bits. The label is the clean density.
func (r CookieRegime) GenerateOne(rng *rand.Rand) *codec.Sample {
	density := r.Density()
	n := r.Size
	img := make([]float64, n*n)
	maxCount := 0.0
	intensity := r.Counts * float64(n) // density has unit total mass
	for i, d := range density {
		img[i] = Poisson(rng, d*intensity)
		if img[i] > maxCount {
			maxCount = img[i]
		}
	}
	// 8-bit quantization, as in the real detector readout.
	scale := 1.0
	if maxCount > 255 {
		scale = 255 / maxCount
	}
	for i := range img {
		img[i] = math.Round(img[i] * scale)
	}
	return codec.SampleFromFloats(img, []int{n, n}, codec.U8, density)
}

// Generate draws n labeled detector images.
func (r CookieRegime) Generate(rng *rand.Rand, n int) []*codec.Sample {
	out := make([]*codec.Sample, n)
	for i := range out {
		out[i] = r.GenerateOne(rng)
	}
	return out
}

// CookieDriftSchedule drifts the central energy and laser phase gradually —
// the paper observes CookieBox data "changes slightly over time", producing
// the near-monotone error-vs-JSD relation of Fig. 11.
type CookieDriftSchedule struct {
	Base        CookieRegime
	EnergyRate  float64 // per-dataset shift of CenterE
	PhaseRate   float64 // per-dataset shift of Phase (radians)
	CountsDecay float64 // per-dataset multiplicative decay of Counts
}

// DefaultCookieDrift returns a gradual drift schedule.
func DefaultCookieDrift() CookieDriftSchedule {
	return CookieDriftSchedule{Base: DefaultCookieRegime(), EnergyRate: 0.012, PhaseRate: 0.05, CountsDecay: 0.995}
}

// RegimeAt returns the regime of dataset i.
func (s CookieDriftSchedule) RegimeAt(i int) CookieRegime {
	r := s.Base
	r.CenterE += s.EnergyRate * float64(i)
	if r.CenterE > 0.85 {
		r.CenterE = 0.85
	}
	r.Phase += s.PhaseRate * float64(i)
	r.Counts *= math.Pow(s.CountsDecay, float64(i))
	return r
}

// CookieExperiment generates a drifting dataset sequence.
func (s CookieDriftSchedule) CookieExperiment(seed int64, numDatasets, perDataset int) [][]*codec.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]*codec.Sample, numDatasets)
	for i := range out {
		out[i] = s.RegimeAt(i).Generate(rng, perDataset)
	}
	return out
}

// ---------------------------------------------------------------------------
// Tomography

// TomoRegime parameterizes synthetic tomography slices: nested ellipses
// (a Shepp-Logan-style phantom) with dose-dependent Poisson noise.
type TomoRegime struct {
	Size     int     // square slice size; the paper's is 2048, we default 64
	Ellipses int     // number of nested ellipses
	Dose     float64 // mean photons at full intensity; lower = noisier
}

// DefaultTomoRegime returns a 64×64 low-dose condition.
func DefaultTomoRegime() TomoRegime {
	return TomoRegime{Size: 64, Ellipses: 5, Dose: 800}
}

// GenerateOne draws one noisy 16-bit slice. The label is empty: tomography
// participates only in the storage study (Fig. 6). Use GeneratePair for
// denoising workloads that need the clean ground truth.
func (r TomoRegime) GenerateOne(rng *rand.Rand) *codec.Sample {
	noisy, _ := r.generate(rng)
	return noisy
}

// GeneratePair draws a (noisy, clean) slice pair for denoiser training —
// the TomoGAN low-dose denoising task the paper cites for this dataset.
// The noisy sample's label is the clean image normalized to [0, 1].
func (r TomoRegime) GeneratePair(rng *rand.Rand) (*codec.Sample, []float64) {
	return r.generate(rng)
}

func (r TomoRegime) generate(rng *rand.Rand) (*codec.Sample, []float64) {
	n := r.Size
	clean := make([]float64, n*n)
	// Random nested ellipses with decreasing intensity.
	for e := 0; e < r.Ellipses; e++ {
		cx := 0.5 + 0.2*rng.NormFloat64()*0.3
		cy := 0.5 + 0.2*rng.NormFloat64()*0.3
		ax := 0.45 * math.Pow(0.75, float64(e)) * (0.8 + 0.4*rng.Float64())
		ay := 0.45 * math.Pow(0.75, float64(e)) * (0.8 + 0.4*rng.Float64())
		rot := rng.Float64() * math.Pi
		val := 0.4 + 0.6*rng.Float64()
		sin, cos := math.Sin(rot), math.Cos(rot)
		for y := 0; y < n; y++ {
			fy := float64(y)/float64(n) - cy
			for x := 0; x < n; x++ {
				fx := float64(x)/float64(n) - cx
				u := (fx*cos + fy*sin) / ax
				v := (-fx*sin + fy*cos) / ay
				if u*u+v*v <= 1 {
					clean[y*n+x] += val
				}
			}
		}
	}
	// Normalize to [0, 1] and apply Poisson counting at the dose level.
	maxv := 0.0
	for _, v := range clean {
		if v > maxv {
			maxv = v
		}
	}
	img := make([]float64, n*n)
	cleanFrac := make([]float64, n*n)
	for i, v := range clean {
		frac := 0.05
		if maxv > 0 {
			frac = 0.05 + 0.95*v/maxv
		}
		cleanFrac[i] = frac
		counts := Poisson(rng, frac*r.Dose)
		img[i] = counts * 65535 / (r.Dose * 1.5)
	}
	return codec.SampleFromFloats(img, []int{n, n}, codec.U16, nil), cleanFrac
}

// Generate draws n slices.
func (r TomoRegime) Generate(rng *rand.Rand, n int) []*codec.Sample {
	out := make([]*codec.Sample, n)
	for i := range out {
		out[i] = r.GenerateOne(rng)
	}
	return out
}
