package datagen

import (
	"math"
	"math/rand"
	"testing"

	"fairdms/internal/codec"
	"fairdms/internal/stats"
)

func TestPoissonMeanAndVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, mean := range []float64{0.5, 4, 30, 200} {
		n := 4000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = Poisson(rng, mean)
		}
		m := stats.Mean(xs)
		v := stats.StdDev(xs)
		if math.Abs(m-mean) > 4*math.Sqrt(mean/float64(n))*math.Sqrt(mean)+0.5 {
			t.Fatalf("mean %g: sample mean %g too far", mean, m)
		}
		// Poisson variance ≈ mean.
		if math.Abs(v*v-mean)/mean > 0.3 {
			t.Fatalf("mean %g: sample variance %g too far from mean", mean, v*v)
		}
	}
	if Poisson(rng, 0) != 0 || Poisson(rng, -3) != 0 {
		t.Fatal("non-positive mean must yield 0")
	}
}

func TestBraggGenerateLabeledPatches(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := DefaultBraggRegime()
	samples := r.Generate(rng, 20)
	if len(samples) != 20 {
		t.Fatalf("generated %d", len(samples))
	}
	for i, s := range samples {
		if s.Dtype != codec.F32 {
			t.Fatalf("sample %d dtype %v", i, s.Dtype)
		}
		if len(s.Shape) != 2 || s.Shape[0] != 15 || s.Shape[1] != 15 {
			t.Fatalf("sample %d shape %v", i, s.Shape)
		}
		if len(s.Label) != 2 {
			t.Fatalf("sample %d label %v", i, s.Label)
		}
		// The true center stays within the patch.
		if s.Label[0] < 0 || s.Label[0] > 14 || s.Label[1] < 0 || s.Label[1] > 14 {
			t.Fatalf("sample %d center out of patch: %v", i, s.Label)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBraggPeakIsNearLabel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := DefaultBraggRegime()
	r.Noise = 0 // noiseless: the brightest pixel must sit at the center
	for trial := 0; trial < 10; trial++ {
		s := r.GenerateOne(rng)
		img := s.Floats()
		best, at := math.Inf(-1), 0
		for i, v := range img {
			if v > best {
				best, at = v, i
			}
		}
		px, py := float64(at%15), float64(at/15)
		if math.Abs(px-s.Label[0]) > 1 || math.Abs(py-s.Label[1]) > 1 {
			t.Fatalf("brightest pixel (%g,%g) far from label %v", px, py, s.Label)
		}
	}
}

func TestBraggDriftShiftsWidths(t *testing.T) {
	s := DefaultBraggDrift(10)
	pre := s.RegimeAt(9)
	post := s.RegimeAt(10)
	if post.WidthMean <= pre.WidthMean+1 {
		t.Fatalf("drift jump too small: %g -> %g", pre.WidthMean, post.WidthMean)
	}
	if post.EtaMean <= pre.EtaMean {
		t.Fatal("eta must jump at drift")
	}
	// Slow drift within a phase.
	if s.RegimeAt(5).WidthMean <= s.RegimeAt(0).WidthMean {
		t.Fatal("slow drift missing")
	}
}

func TestBraggExperimentShape(t *testing.T) {
	seq := DefaultBraggDrift(3).BraggExperiment(7, 5, 8)
	if len(seq) != 5 {
		t.Fatalf("experiment has %d datasets", len(seq))
	}
	for i, ds := range seq {
		if len(ds) != 8 {
			t.Fatalf("dataset %d has %d samples", i, len(ds))
		}
	}
}

func TestBraggExperimentDeterministic(t *testing.T) {
	a := DefaultBraggDrift(2).BraggExperiment(5, 3, 4)
	b := DefaultBraggDrift(2).BraggExperiment(5, 3, 4)
	for i := range a {
		for j := range a[i] {
			if a[i][j].Label[0] != b[i][j].Label[0] {
				t.Fatal("experiment not deterministic for fixed seed")
			}
		}
	}
}

func TestCookieDensityUnitMass(t *testing.T) {
	r := DefaultCookieRegime()
	d := r.Density()
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("density mass %g, want 1", sum)
	}
}

func TestCookieAnisotropyVisible(t *testing.T) {
	r := DefaultCookieRegime()
	d := r.Density()
	n := r.Size
	// Channel intensities must vary around the ring when Beta > 0.
	lo, hi := math.Inf(1), math.Inf(-1)
	for ch := 0; ch < n; ch++ {
		rowSum := 0.0
		for e := 0; e < n; e++ {
			rowSum += d[ch*n+e]
		}
		if rowSum < lo {
			lo = rowSum
		}
		if rowSum > hi {
			hi = rowSum
		}
	}
	// β = 0.6 gives a (1+β)/(1−β) = 4× modulation between the brightest
	// and dimmest channels.
	if hi/lo < 2 {
		t.Fatalf("angular modulation hi/lo = %g, want >= 2", hi/lo)
	}
	// And with Beta = 0 the ring is flat.
	flat := r
	flat.Beta = 0
	df := flat.Density()
	lo, hi = math.Inf(1), math.Inf(-1)
	for ch := 0; ch < n; ch++ {
		rowSum := 0.0
		for e := 0; e < n; e++ {
			rowSum += df[ch*n+e]
		}
		if rowSum < lo {
			lo = rowSum
		}
		if rowSum > hi {
			hi = rowSum
		}
	}
	if hi/lo > 1.0001 {
		t.Fatalf("isotropic regime still modulated: %g", hi/lo)
	}
}

func TestCookieGenerateQuantized(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := DefaultCookieRegime()
	s := r.GenerateOne(rng)
	if s.Dtype != codec.U8 {
		t.Fatalf("dtype %v", s.Dtype)
	}
	if len(s.Label) != r.Size*r.Size {
		t.Fatalf("label dim %d, want %d", len(s.Label), r.Size*r.Size)
	}
	for _, v := range s.Floats() {
		if v < 0 || v > 255 {
			t.Fatalf("pixel %g outside u8 range", v)
		}
	}
}

func TestCookieDriftChangesDensity(t *testing.T) {
	s := DefaultCookieDrift()
	d0 := s.RegimeAt(0).Density()
	d9 := s.RegimeAt(9).Density()
	diff := 0.0
	for i := range d0 {
		diff += math.Abs(d0[i] - d9[i])
	}
	if diff < 0.1 {
		t.Fatalf("drift barely changes density: L1=%g", diff)
	}
	if s.RegimeAt(9).Counts >= s.RegimeAt(0).Counts {
		t.Fatal("counts must decay over time")
	}
}

func TestCookieExperimentShape(t *testing.T) {
	seq := DefaultCookieDrift().CookieExperiment(11, 4, 3)
	if len(seq) != 4 || len(seq[0]) != 3 {
		t.Fatalf("experiment shape %dx%d", len(seq), len(seq[0]))
	}
}

func TestTomoGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := DefaultTomoRegime()
	s := r.GenerateOne(rng)
	if s.Dtype != codec.U16 {
		t.Fatalf("dtype %v", s.Dtype)
	}
	if s.Shape[0] != 64 || s.Shape[1] != 64 {
		t.Fatalf("shape %v", s.Shape)
	}
	// Phantom structure: interior pixels must be brighter than the frame
	// average (ellipses are centered).
	img := s.Floats()
	n := r.Size
	var center, edge float64
	var nc, ne int
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if x > n/3 && x < 2*n/3 && y > n/3 && y < 2*n/3 {
				center += img[y*n+x]
				nc++
			}
			if x < 2 || y < 2 || x >= n-2 || y >= n-2 {
				edge += img[y*n+x]
				ne++
			}
		}
	}
	if center/float64(nc) <= edge/float64(ne) {
		t.Fatal("phantom has no central structure")
	}
}

func TestTomoDoseControlsNoise(t *testing.T) {
	// Relative noise should drop with dose; compare coefficient of
	// variation of a flat region across two doses.
	lowRegime := TomoRegime{Size: 32, Ellipses: 0, Dose: 50}
	highRegime := TomoRegime{Size: 32, Ellipses: 0, Dose: 5000}
	rngA := rand.New(rand.NewSource(6))
	rngB := rand.New(rand.NewSource(6))
	low := lowRegime.GenerateOne(rngA).Floats()
	high := highRegime.GenerateOne(rngB).Floats()
	cv := func(xs []float64) float64 { return stats.StdDev(xs) / stats.Mean(xs) }
	if cv(low) <= cv(high) {
		t.Fatalf("low dose CV %g should exceed high dose CV %g", cv(low), cv(high))
	}
}
