package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fairdms/internal/fsx"
)

func mustOpen(t *testing.T, dir string, opt Options) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return l, recs
}

func appendAll(t *testing.T, l *Log, payloads ...string) []uint64 {
	t.Helper()
	lsns := make([]uint64, len(payloads))
	for i, p := range payloads {
		lsn, err := l.Append([]byte(p))
		if err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
		lsns[i] = lsn
	}
	return lsns
}

func TestAppendReplayRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			l, recs := mustOpen(t, dir, Options{Shards: shards, Policy: SyncAlways})
			if len(recs) != 0 {
				t.Fatalf("fresh log replayed %d records", len(recs))
			}
			want := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
			lsns := appendAll(t, l, want...)
			for i := 1; i < len(lsns); i++ {
				if lsns[i] != lsns[i-1]+1 {
					t.Fatalf("LSNs not contiguous: %v", lsns)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			l2, recs := mustOpen(t, dir, Options{Shards: shards, Policy: SyncAlways})
			defer l2.Close()
			if len(recs) != len(want) {
				t.Fatalf("replayed %d records; want %d", len(recs), len(want))
			}
			for i, r := range recs {
				// Replay is sorted by LSN: the global commit order.
				if r.LSN != lsns[i] || string(r.Payload) != want[i] {
					t.Fatalf("record %d = {%d %q}; want {%d %q}", i, r.LSN, r.Payload, lsns[i], want[i])
				}
			}
			if l2.LastLSN() != lsns[len(lsns)-1] {
				t.Fatalf("LastLSN after replay = %d; want %d", l2.LastLSN(), lsns[len(lsns)-1])
			}
		})
	}
}

func TestReplaySurvivesShardCountChange(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Shards: 4, Policy: SyncAlways})
	appendAll(t, l, "a", "b", "c", "d", "e", "f")
	l.Close()

	// Reopening with a different shard count must still replay everything:
	// old segments are scanned wholesale, only new appends use the new
	// striping.
	l2, recs := mustOpen(t, dir, Options{Shards: 2, Policy: SyncAlways})
	defer l2.Close()
	if len(recs) != 6 {
		t.Fatalf("replayed %d; want 6", len(recs))
	}
}

// walSegments lists the segment files currently in dir.
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if _, _, ok := parseSegmentName(e.Name()); ok {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestTornTailTruncatedAtEveryOffset(t *testing.T) {
	// Build a reference single-shard log with three records, then replay
	// a copy truncated at every byte length. At every cut point the
	// replayed prefix must be exactly the records whose frames fit.
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Shards: 1, Policy: SyncAlways})
	payloads := []string{"first-record", "second", "third-and-longest-record"}
	appendAll(t, l, payloads...)
	l.Close()

	segs := walSegments(t, dir)
	if len(segs) != 1 {
		t.Fatalf("segments = %v; want one", segs)
	}
	full, err := os.ReadFile(filepath.Join(dir, segs[0]))
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries: header, then each record's end offset.
	boundaries := []int{headerSize}
	off := headerSize
	for _, p := range payloads {
		off += recHeaderSize + len(p)
		boundaries = append(boundaries, off)
	}
	if off != len(full) {
		t.Fatalf("frame math: computed %d bytes, file has %d", off, len(full))
	}

	for cut := 0; cut <= len(full); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, segmentName(0, 1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, recs := mustOpen(t, sub, Options{Shards: 1})
		// Complete records strictly below the cut survive.
		want := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= cut {
				want = i
			}
		}
		if len(recs) != want {
			t.Fatalf("cut at %d: replayed %d records; want %d", cut, len(recs), want)
		}
		for i, r := range recs {
			if string(r.Payload) != payloads[i] {
				t.Fatalf("cut at %d: record %d = %q; want %q", cut, i, r.Payload, payloads[i])
			}
		}
		onBoundary := false
		for _, b := range boundaries {
			if cut == b {
				onBoundary = true
			}
		}
		st := l2.Stats()
		if cut > headerSize && !onBoundary && st.TornTruncations == 0 {
			t.Fatalf("cut at %d: torn tail not counted", cut)
		}
		if onBoundary && st.TornTruncations != 0 {
			t.Fatalf("cut at boundary %d counted %d torn truncations", cut, st.TornTruncations)
		}
		l2.Close()
	}
}

func TestCorruptRecordTruncatesAndCounts(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Shards: 1, Policy: SyncAlways})
	appendAll(t, l, "keep-me", "flip-me", "lost-with-the-corruption")
	l.Close()

	seg := filepath.Join(dir, walSegments(t, dir)[0])
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte inside the second record.
	off := headerSize + recHeaderSize + len("keep-me") + recHeaderSize + 2
	data[off] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, recs := mustOpen(t, dir, Options{Shards: 1})
	defer l2.Close()
	if len(recs) != 1 || string(recs[0].Payload) != "keep-me" {
		t.Fatalf("replay after bit flip = %v; want just keep-me", recs)
	}
	st := l2.Stats()
	if st.CorruptRecords == 0 {
		t.Fatal("corrupt record not counted")
	}
	// The corrupt tail was truncated away on disk, not just skipped.
	after, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != headerSize+recHeaderSize+len("keep-me") {
		t.Fatalf("segment not truncated: %d bytes", len(after))
	}
}

func TestGarbageHeaderIgnoresSegment(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(0, 1)), []byte("not-a-wal"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs := mustOpen(t, dir, Options{Shards: 1})
	defer l.Close()
	if len(recs) != 0 {
		t.Fatalf("replayed %d records from garbage", len(recs))
	}
	if l.Stats().CorruptRecords == 0 {
		t.Fatal("garbage header not counted as corruption")
	}
}

func TestRotateAndRemoveSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Shards: 2, Policy: SyncAlways})
	defer l.Close()
	appendAll(t, l, "old-1", "old-2", "old-3")
	gen, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "new-1", "new-2")
	removed, err := l.RemoveSegmentsBefore(gen)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("no old segments removed")
	}
	for _, name := range walSegments(t, dir) {
		if _, g, _ := parseSegmentName(name); g < gen {
			t.Fatalf("pre-rotation segment %s survived removal", name)
		}
	}

	// Only post-rotation records remain for the next replay.
	l.Close()
	l2, recs := mustOpen(t, dir, Options{Shards: 2})
	defer l2.Close()
	got := map[string]bool{}
	for _, r := range recs {
		got[string(r.Payload)] = true
	}
	if len(recs) != 2 || !got["new-1"] || !got["new-2"] {
		t.Fatalf("replay after compaction = %v; want new-1,new-2", got)
	}
}

func TestEnsureLSNMovesForwardOnly(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Shards: 1})
	defer l.Close()
	l.EnsureLSN(10)
	if got := l.LastLSN(); got != 10 {
		t.Fatalf("LastLSN = %d; want 10", got)
	}
	l.EnsureLSN(3) // never moves backwards
	if got := l.LastLSN(); got != 10 {
		t.Fatalf("LastLSN after lower EnsureLSN = %d; want 10", got)
	}
	if lsn, err := l.Append([]byte("x")); err != nil || lsn != 11 {
		t.Fatalf("next append = %d, %v; want 11", lsn, err)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{"always": SyncAlways, "interval": SyncInterval, "off": SyncOff}
	for s, want := range cases {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
		if got.String() != s {
			t.Fatalf("Policy(%v).String() = %q; want %q", got, got.String(), s)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

func TestSyncIntervalEventuallySyncs(t *testing.T) {
	dir := t.TempDir()
	fs := fsx.NewFaultFS(fsx.FaultPlan{DropUnsynced: true})
	l, _ := mustOpen(t, dir, Options{Shards: 1, Policy: SyncInterval, Interval: 5 * time.Millisecond, FS: fs})
	appendAll(t, l, "interval-synced")
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background syncer never ran")
		}
		time.Sleep(time.Millisecond)
	}
	// Simulated power cut: the background fsync already made the record
	// durable, so a crash loses nothing.
	fs.Crash()
	l.Abort()
	l2, recs := mustOpen(t, dir, Options{Shards: 1})
	defer l2.Close()
	if len(recs) != 1 || string(recs[0].Payload) != "interval-synced" {
		t.Fatalf("replay = %v; want the interval-synced record", recs)
	}
}

func TestCleanCloseIsDurableUnderSyncOff(t *testing.T) {
	dir := t.TempDir()
	fs := fsx.NewFaultFS(fsx.FaultPlan{DropUnsynced: true})
	l, _ := mustOpen(t, dir, Options{Shards: 1, Policy: SyncOff, FS: fs})
	appendAll(t, l, "flushed-at-close")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	l2, recs := mustOpen(t, dir, Options{Shards: 1})
	defer l2.Close()
	if len(recs) != 1 {
		t.Fatalf("replay after clean close = %d records; want 1", len(recs))
	}
}

func TestAppendAfterCrashFails(t *testing.T) {
	dir := t.TempDir()
	fs := fsx.NewFaultFS(fsx.FaultPlan{CrashAfterBytes: 1 << 20})
	l, _ := mustOpen(t, dir, Options{Shards: 1, Policy: SyncAlways, FS: fs})
	defer l.Abort()
	fs.Crash()
	if _, err := l.Append([]byte("x")); !errors.Is(err, fsx.ErrInjectedCrash) {
		t.Fatalf("append on crashed fs: %v; want ErrInjectedCrash", err)
	}
}

func TestStatsCountAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Shards: 1, Policy: SyncAlways})
	defer l.Close()
	appendAll(t, l, "aa", "bbbb")
	st := l.Stats()
	if st.Appends != 2 {
		t.Fatalf("Appends = %d; want 2", st.Appends)
	}
	wantBytes := int64(2*recHeaderSize + 6)
	if st.AppendedBytes != wantBytes {
		t.Fatalf("AppendedBytes = %d; want %d", st.AppendedBytes, wantBytes)
	}
	if st.Syncs < 2 {
		t.Fatalf("Syncs = %d; want ≥2 under SyncAlways", st.Syncs)
	}
}

func BenchmarkAppend(b *testing.B) {
	for _, pol := range []Policy{SyncOff, SyncInterval} {
		b.Run(pol.String(), func(b *testing.B) {
			dir := b.TempDir()
			l, _, err := Open(dir, Options{Shards: 4, Policy: pol, Interval: 50 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := bytes.Repeat([]byte("x"), 256)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
