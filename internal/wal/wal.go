// Package wal implements the append-only write-ahead log under the
// docstore's durability plane. Records are opaque payloads framed as
//
//	[u32 length][u32 CRC32-C][u64 LSN][payload]
//
// (all little-endian; the checksum covers LSN and payload) appended to a
// small fixed set of segment files so concurrent committers rarely share
// a file lock. Every append is stamped with a log sequence number from
// one global counter, which gives replay a total order across segments:
// Open merge-sorts recovered records by LSN, and truncates each segment
// at the first torn or corrupt record rather than failing startup — a
// crash mid-append loses at most the record being written.
//
// Durability is a policy knob: SyncAlways fsyncs on every append (commit
// acknowledgement implies durability), SyncInterval fsyncs on a
// background tick (bounded loss window), SyncOff leaves flushing to the
// OS (crash-consistent but lossy). Rotation opens a new segment
// generation after fsyncing the old one; compaction callers fold
// everything up to a rotation point into a snapshot and then delete the
// superseded generations.
//
// All I/O goes through an fsx.FS so the crash-injection harness can cut
// any write short at any byte.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fairdms/internal/fsx"
)

// Policy selects when appended records are fsynced.
type Policy uint8

const (
	// SyncAlways fsyncs every append before it returns: a successful
	// commit is durable against power loss.
	SyncAlways Policy = iota
	// SyncInterval fsyncs on a background tick: commits may be lost
	// within the last interval, never reordered or torn.
	SyncInterval
	// SyncOff never fsyncs (outside rotation and clean close): the OS
	// decides when bytes reach the disk.
	SyncOff
)

func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy maps the -fsync flag values to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
	}
}

const (
	// magic opens every segment file; a file too short to hold it (or
	// holding something else) is treated as torn at byte 0.
	magic      = "FDWAL001"
	headerSize = len(magic)

	// recHeaderSize frames each record: length, checksum, LSN.
	recHeaderSize = 4 + 4 + 8

	// maxRecordSize bounds a single payload; a length field beyond it is
	// corruption, not a 4 GiB allocation.
	maxRecordSize = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open.
type Options struct {
	// Shards is the number of segment files records are striped over
	// (default 4). More shards mean less append-lock contention.
	Shards int
	// Policy is the fsync policy (default SyncAlways).
	Policy Policy
	// Interval is the background fsync period under SyncInterval
	// (default 50ms).
	Interval time.Duration
	// FS is the filesystem (default the real one).
	FS fsx.FS
}

// Record is one recovered log entry.
type Record struct {
	LSN     uint64
	Payload []byte
}

// Stats is a point-in-time copy of the log's counters.
type Stats struct {
	Appends         int64
	AppendedBytes   int64
	Syncs           int64
	Rotations       int64
	Replays         int64
	ReplayedRecords int64
	TornTruncations int64
	CorruptRecords  int64
	SegmentsRemoved int64
}

// Log is an open write-ahead log. Safe for concurrent use.
type Log struct {
	dir    string
	fs     fsx.FS
	policy Policy
	lsn    atomic.Uint64 // last allocated LSN
	gen    atomic.Uint64 // current segment generation
	closed atomic.Bool

	shards []*logShard

	// rotMu serializes rotation and close against each other; appends
	// take only their shard lock (rotation takes all shard locks).
	rotMu sync.Mutex

	stop chan struct{} // closes the interval syncer
	done chan struct{}

	appends         atomic.Int64
	appendedBytes   atomic.Int64
	syncs           atomic.Int64
	rotations       atomic.Int64
	replays         atomic.Int64
	replayedRecords atomic.Int64
	tornTruncations atomic.Int64
	corruptRecords  atomic.Int64
	segmentsRemoved atomic.Int64
}

// logShard is one segment file of the current generation.
type logShard struct {
	mu    sync.Mutex
	f     fsx.File // guarded by mu
	path  string   // guarded by mu
	dirty bool     // guarded by mu; written bytes not yet fsynced
}

// segmentName formats a segment filename; parseSegmentName inverts it.
func segmentName(shard int, gen uint64) string {
	return fmt.Sprintf("wal-%04d-%08d.log", shard, gen)
}

func parseSegmentName(name string) (shard int, gen uint64, ok bool) {
	var s int
	var g uint64
	if n, err := fmt.Sscanf(name, "wal-%04d-%08d.log", &s, &g); err != nil || n != 2 {
		return 0, 0, false
	}
	if segmentName(s, g) != name {
		return 0, 0, false
	}
	return s, g, true
}

// Open replays every segment in dir and returns the log positioned for
// appends plus the recovered records sorted by LSN. Torn or corrupt
// tails are truncated off their segment (and counted) rather than
// failing the open. Appends go to a fresh segment generation, so replay
// never rereads bytes written after this Open.
func Open(dir string, opt Options) (*Log, []Record, error) {
	if opt.Shards < 1 {
		opt.Shards = 4
	}
	if opt.Interval <= 0 {
		opt.Interval = 50 * time.Millisecond
	}
	fsys := opt.FS
	if fsys == nil {
		fsys = fsx.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}

	l := &Log{
		dir:    dir,
		fs:     fsys,
		policy: opt.Policy,
		shards: make([]*logShard, opt.Shards),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}

	records, maxGen, err := l.replay()
	if err != nil {
		return nil, nil, err
	}
	l.gen.Store(maxGen + 1)
	for i := range l.shards {
		sh := &logShard{path: filepath.Join(dir, segmentName(i, l.gen.Load()))}
		f, err := fsys.OpenFile(sh.path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			l.closeShards()
			return nil, nil, fmt.Errorf("wal: open segment %s: %w", sh.path, err)
		}
		sh.f = f
		if _, err := f.Write([]byte(magic)); err != nil {
			l.closeShards()
			return nil, nil, fmt.Errorf("wal: write segment header %s: %w", sh.path, err)
		}
		l.shards[i] = sh
	}

	if opt.Policy == SyncInterval {
		go l.syncLoop(opt.Interval)
	} else {
		close(l.done)
	}
	return l, records, nil
}

// replay scans dir for segments of every generation, decoding records and
// truncating each file at its first torn or corrupt record.
func (l *Log) replay() ([]Record, uint64, error) {
	entries, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: read dir %s: %w", l.dir, err)
	}
	var records []Record
	var maxGen, maxLSN uint64
	for _, e := range entries {
		_, gen, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		if gen > maxGen {
			maxGen = gen
		}
		path := filepath.Join(l.dir, e.Name())
		data, err := l.fs.ReadFile(path)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: read segment %s: %w", path, err)
		}
		recs, keep := l.scanSegment(data)
		if keep < int64(len(data)) {
			if err := l.fs.Truncate(path, keep); err != nil {
				return nil, 0, fmt.Errorf("wal: truncate torn segment %s: %w", path, err)
			}
		}
		for _, r := range recs {
			if r.LSN > maxLSN {
				maxLSN = r.LSN
			}
		}
		records = append(records, recs...)
	}
	sort.Slice(records, func(i, j int) bool { return records[i].LSN < records[j].LSN })
	l.lsn.Store(maxLSN)
	l.replays.Add(1)
	l.replayedRecords.Add(int64(len(records)))
	return records, maxGen, nil
}

// scanSegment decodes records from one segment image and returns them
// with the byte offset up to which the file is valid. Anything past that
// offset is a torn tail (not enough bytes for a whole record) or a
// corrupt record (checksum or length-field mismatch); either way the scan
// stops there.
func (l *Log) scanSegment(data []byte) ([]Record, int64) {
	if len(data) < headerSize || string(data[:headerSize]) != magic {
		if len(data) >= headerSize {
			l.corruptRecords.Add(1)
		} else if len(data) > 0 {
			l.tornTruncations.Add(1)
		}
		return nil, 0
	}
	var recs []Record
	off := int64(headerSize)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, off
		}
		if len(rest) < recHeaderSize {
			l.tornTruncations.Add(1)
			return recs, off
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		lsn := binary.LittleEndian.Uint64(rest[8:16])
		if n > maxRecordSize {
			l.corruptRecords.Add(1)
			return recs, off
		}
		if int64(len(rest)) < int64(recHeaderSize)+int64(n) {
			l.tornTruncations.Add(1)
			return recs, off
		}
		payload := rest[recHeaderSize : recHeaderSize+int(n)]
		crc := crc32.Update(0, crcTable, rest[8:16])
		crc = crc32.Update(crc, crcTable, payload)
		if crc != sum {
			l.corruptRecords.Add(1)
			return recs, off
		}
		p := make([]byte, len(payload))
		copy(p, payload)
		recs = append(recs, Record{LSN: lsn, Payload: p})
		off += int64(recHeaderSize) + int64(n)
	}
}

// Append frames payload as one record, stamps it with the next LSN, and
// writes it to the LSN's segment shard. Under SyncAlways it returns only
// after the record is fsynced.
func (l *Log) Append(payload []byte) (uint64, error) {
	if l.closed.Load() {
		return 0, errors.New("wal: log closed")
	}
	lsn := l.lsn.Add(1)
	sh := l.shards[int(lsn%uint64(len(l.shards)))]

	frame := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(frame[8:16], lsn)
	copy(frame[recHeaderSize:], payload)
	crc := crc32.Update(0, crcTable, frame[8:16])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(frame[4:8], crc)

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if l.closed.Load() {
		return 0, errors.New("wal: log closed")
	}
	if _, err := sh.f.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	sh.dirty = true
	if l.policy == SyncAlways {
		if err := sh.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
		sh.dirty = false
		l.syncs.Add(1)
	}
	l.appends.Add(1)
	l.appendedBytes.Add(int64(len(frame)))
	return lsn, nil
}

// Sync flushes and fsyncs every dirty shard.
func (l *Log) Sync() error {
	var firstErr error
	for _, sh := range l.shards {
		sh.mu.Lock()
		if sh.dirty && sh.f != nil {
			if err := sh.f.Sync(); err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				sh.dirty = false
				l.syncs.Add(1)
			}
		}
		sh.mu.Unlock()
	}
	return firstErr
}

func (l *Log) syncLoop(interval time.Duration) {
	defer close(l.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.Sync()
		}
	}
}

// LastLSN returns the most recently allocated LSN.
func (l *Log) LastLSN() uint64 { return l.lsn.Load() }

// Policy returns the fsync policy the log was opened with.
func (l *Log) Policy() Policy { return l.policy }

// EnsureLSN raises the LSN counter to at least n, so LSNs never repeat
// across a compaction that emptied the log.
func (l *Log) EnsureLSN(n uint64) {
	for {
		cur := l.lsn.Load()
		if cur >= n || l.lsn.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Rotate fsyncs and closes the current segment generation and opens a
// fresh one; subsequent appends land in the new generation. It returns
// the new generation number: every record appended before the call lives
// in a generation strictly below it.
func (l *Log) Rotate() (uint64, error) {
	l.rotMu.Lock()
	defer l.rotMu.Unlock()
	if l.closed.Load() {
		return 0, errors.New("wal: log closed")
	}
	for _, sh := range l.shards {
		sh.mu.Lock()
	}
	defer func() {
		for i := len(l.shards) - 1; i >= 0; i-- {
			l.shards[i].mu.Unlock()
		}
	}()
	gen := l.gen.Load() + 1
	for i, sh := range l.shards {
		if err := sh.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: rotate sync %s: %w", sh.path, err)
		}
		if err := sh.f.Close(); err != nil {
			return 0, fmt.Errorf("wal: rotate close %s: %w", sh.path, err)
		}
		sh.dirty = false
		path := filepath.Join(l.dir, segmentName(i, gen))
		f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return 0, fmt.Errorf("wal: rotate open %s: %w", path, err)
		}
		if _, err := f.Write([]byte(magic)); err != nil {
			f.Close()
			return 0, fmt.Errorf("wal: rotate header %s: %w", path, err)
		}
		sh.f = f
		sh.path = path
	}
	l.gen.Store(gen)
	l.rotations.Add(1)
	return gen, nil
}

// RemoveSegmentsBefore deletes every segment file of a generation below
// gen — the GC step after a checkpoint has made those records redundant.
func (l *Log) RemoveSegmentsBefore(gen uint64) (int, error) {
	entries, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return 0, fmt.Errorf("wal: read dir %s: %w", l.dir, err)
	}
	removed := 0
	for _, e := range entries {
		_, g, ok := parseSegmentName(e.Name())
		if !ok || g >= gen {
			continue
		}
		if err := l.fs.Remove(filepath.Join(l.dir, e.Name())); err != nil {
			return removed, fmt.Errorf("wal: remove segment %s: %w", e.Name(), err)
		}
		removed++
	}
	l.segmentsRemoved.Add(int64(removed))
	return removed, nil
}

// Stats returns a copy of the log's counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:         l.appends.Load(),
		AppendedBytes:   l.appendedBytes.Load(),
		Syncs:           l.syncs.Load(),
		Rotations:       l.rotations.Load(),
		Replays:         l.replays.Load(),
		ReplayedRecords: l.replayedRecords.Load(),
		TornTruncations: l.tornTruncations.Load(),
		CorruptRecords:  l.corruptRecords.Load(),
		SegmentsRemoved: l.segmentsRemoved.Load(),
	}
}

// Close stops the background syncer, fsyncs every shard, and closes the
// segment files. A clean close is durable regardless of policy.
func (l *Log) Close() error {
	l.rotMu.Lock()
	defer l.rotMu.Unlock()
	if !l.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(l.stop)
	<-l.done
	var firstErr error
	for _, sh := range l.shards {
		sh.mu.Lock()
		if sh.f != nil {
			if err := sh.f.Sync(); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := sh.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			sh.f = nil
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// Abort closes the log without flushing or fsyncing — the crash path.
// Tests use it to abandon a log exactly as a dying process would, leaving
// whatever the OS (or the fault-injection layer) already accepted.
func (l *Log) Abort() {
	l.rotMu.Lock()
	defer l.rotMu.Unlock()
	if !l.closed.CompareAndSwap(false, true) {
		return
	}
	close(l.stop)
	<-l.done
	l.closeShards()
}

func (l *Log) closeShards() {
	for _, sh := range l.shards {
		if sh == nil {
			continue
		}
		sh.mu.Lock()
		if sh.f != nil {
			sh.f.Close()
			sh.f = nil
		}
		sh.mu.Unlock()
	}
}
