package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fairdms/internal/tensor"
)

// LossFunc computes a scalar loss and its gradient w.r.t. the prediction.
type LossFunc func(pred, target *tensor.Tensor) (float64, *tensor.Tensor)

// TrainConfig controls a Fit run.
type TrainConfig struct {
	Epochs     int     // maximum epochs
	BatchSize  int     // mini-batch size (clamped to the dataset)
	TargetLoss float64 // stop once validation loss <= TargetLoss (0 disables)
	Patience   int     // stop after this many epochs without val improvement (0 disables)
	ClipNorm   float64 // gradient clipping threshold (0 disables)
	Seed       int64   // shuffling seed
	Loss       LossFunc

	// OnEpoch, when set, receives each completed epoch (1-based) with its
	// train and validation losses — the live progress feed of an async
	// training job. Returning false stops training after that epoch.
	// Leaving it nil changes nothing about the run.
	OnEpoch func(epoch int, trainLoss, valLoss float64) bool
	// Stop, when set, is polled before every mini-batch; a true return
	// aborts the run immediately, mid-epoch, without recording the partial
	// epoch (TrainResult.Stopped reports the abort). Leaving it nil changes
	// nothing about the run.
	Stop func() bool
}

// TrainResult records per-epoch losses and where training stopped.
type TrainResult struct {
	TrainLoss []float64
	ValLoss   []float64
	Epochs    int  // epochs actually run
	Converged bool // true if TargetLoss was reached
	Stopped   bool // true if TrainConfig.Stop aborted the run mid-epoch
}

// ConvergedAt returns the first epoch (1-based) whose validation loss is at
// or below target, or -1 if never reached.
func (r *TrainResult) ConvergedAt(target float64) int {
	for i, v := range r.ValLoss {
		if v <= target {
			return i + 1
		}
	}
	return -1
}

// Gather builds a batch tensor from the given rows of a 2-D tensor.
func Gather(x *tensor.Tensor, rows []int) *tensor.Tensor {
	if x.NDim() != 2 {
		panic(fmt.Sprintf("nn: Gather on %d-dimensional tensor", x.NDim()))
	}
	out := tensor.New(len(rows), x.Dim(1))
	for i, r := range rows {
		copy(out.Row(i), x.Row(r))
	}
	return out
}

// Fit trains the model on (x, y) with mini-batch gradient descent, evaluating
// on (valX, valY) after each epoch. It returns per-epoch loss curves — the
// raw material for the paper's Figs. 13–14 learning-curve comparisons.
func Fit(model *Model, opt Optimizer, x, y, valX, valY *tensor.Tensor, cfg TrainConfig) *TrainResult {
	if cfg.Loss == nil {
		cfg.Loss = MSE
	}
	if cfg.BatchSize <= 0 || cfg.BatchSize > x.Dim(0) {
		cfg.BatchSize = x.Dim(0)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := x.Dim(0)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}

	res := &TrainResult{}
	bestVal := math.Inf(1)
	stale := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		epochLoss := 0.0
		batches := 0
		for lo := 0; lo < n; lo += cfg.BatchSize {
			if cfg.Stop != nil && cfg.Stop() {
				res.Stopped = true
				return res
			}
			hi := lo + cfg.BatchSize
			if hi > n {
				hi = n
			}
			bx := Gather(x, perm[lo:hi])
			by := Gather(y, perm[lo:hi])
			opt.ZeroGrad()
			pred := model.Forward(bx, true)
			loss, grad := cfg.Loss(pred, by)
			model.Backward(grad)
			if cfg.ClipNorm > 0 {
				ClipGradNorm(model, cfg.ClipNorm)
			}
			opt.Step()
			epochLoss += loss
			batches++
		}
		trainLoss := epochLoss / float64(batches)
		res.TrainLoss = append(res.TrainLoss, trainLoss)

		val := Evaluate(model, valX, valY, cfg.Loss)
		res.ValLoss = append(res.ValLoss, val)
		res.Epochs = epoch + 1

		// The progress hook sees every completed epoch, including the one
		// that converges; its stop request only matters if the run was going
		// to continue anyway.
		hookStop := cfg.OnEpoch != nil && !cfg.OnEpoch(epoch+1, trainLoss, val)
		if cfg.TargetLoss > 0 && val <= cfg.TargetLoss {
			res.Converged = true
			break
		}
		if hookStop {
			break
		}
		if val < bestVal-1e-12 {
			bestVal = val
			stale = 0
		} else {
			stale++
			if cfg.Patience > 0 && stale >= cfg.Patience {
				break
			}
		}
	}
	return res
}

// Evaluate returns the loss of the model on (x, y) in inference mode.
func Evaluate(model *Model, x, y *tensor.Tensor, loss LossFunc) float64 {
	if loss == nil {
		loss = MSE
	}
	pred := model.Forward(x, false)
	l, _ := loss(pred, y)
	return l
}
