package nn

import (
	"math/rand"
	"testing"

	"fairdms/internal/tensor"
)

func braggLikeNet(rng *rand.Rand) *Model {
	dims := tensor.ConvDims{InC: 1, InH: 15, InW: 15, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2d(rng, dims, 8)
	return Sequential(
		conv, NewLeakyReLU(0.01),
		NewMaxPool2d(8, 15, 15, 3),
		NewLinear(rng, 8*5*5, 64), NewLeakyReLU(0.01),
		NewLinear(rng, 64, 2), NewSigmoid(),
	)
}

func BenchmarkForwardBraggLike(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := braggLikeNet(rng)
	x := tensor.Randn(rng, 1, 32, 225)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, false)
	}
}

func BenchmarkForwardBackwardBraggLike(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := braggLikeNet(rng)
	x := tensor.Randn(rng, 1, 32, 225)
	y := tensor.RandUniform(rng, 0, 1, 32, 2)
	opt := NewAdam(m.Params(), 1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.ZeroGrad()
		pred := m.Forward(x, true)
		_, grad := MSE(pred, y)
		m.Backward(grad)
		opt.Step()
	}
}

func BenchmarkNTXent(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	za := tensor.Randn(rng, 1, 32, 16)
	zb := tensor.Randn(rng, 1, 32, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NTXent(za, zb, 0.5)
	}
}

func BenchmarkStateDictRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := braggLikeNet(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := m.State().Bytes()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := StateDictFromBytes(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdamStep(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := Sequential(NewLinear(rng, 256, 256))
	opt := NewAdam(m.Params(), 1e-3)
	for _, p := range m.Params() {
		g := p.Grad.Data()
		for i := range g {
			g[i] = 0.01
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step()
	}
}
