package nn

import (
	"fmt"
	"math"

	"fairdms/internal/tensor"
)

// MSE returns the mean-squared-error loss between prediction and target and
// the gradient of the loss with respect to the prediction. The mean is taken
// over every element, matching PyTorch's MSELoss(reduction="mean").
func MSE(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: MSE shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	n := float64(pred.Len())
	grad := tensor.New(pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	loss := 0.0
	for i := range pd {
		d := pd[i] - td[i]
		loss += d * d
		gd[i] = 2 * d / n
	}
	return loss / n, grad
}

// BCE returns the binary cross-entropy loss for predictions in (0,1) and the
// gradient with respect to the predictions. Inputs are clamped away from
// {0,1} for numerical stability.
func BCE(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: BCE shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	const eps = 1e-12
	n := float64(pred.Len())
	grad := tensor.New(pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	loss := 0.0
	for i := range pd {
		p := pd[i]
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		t := td[i]
		loss -= t*math.Log(p) + (1-t)*math.Log(1-p)
		gd[i] = (p - t) / (p * (1 - p)) / n
	}
	return loss / n, grad
}

// L1 returns the mean absolute error and its (sub)gradient.
func L1(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: L1 shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	n := float64(pred.Len())
	grad := tensor.New(pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	loss := 0.0
	for i := range pd {
		d := pd[i] - td[i]
		loss += math.Abs(d)
		switch {
		case d > 0:
			gd[i] = 1 / n
		case d < 0:
			gd[i] = -1 / n
		}
	}
	return loss / n, grad
}

// NTXent computes the normalized-temperature cross-entropy loss of SimCLR
// (Chen et al. 2020) over a batch of paired embeddings: za[i] and zb[i] are
// two augmented views of the same sample. It returns the loss and the
// gradients with respect to za and zb.
//
// The loss for anchor i with positive j uses cosine similarities against all
// 2N-1 other embeddings as negatives.
func NTXent(za, zb *tensor.Tensor, temperature float64) (float64, *tensor.Tensor, *tensor.Tensor) {
	if !za.SameShape(zb) || za.NDim() != 2 {
		panic(fmt.Sprintf("nn: NTXent needs matching 2-D views, got %v vs %v", za.Shape(), zb.Shape()))
	}
	if temperature <= 0 {
		panic("nn: NTXent temperature must be positive")
	}
	n, d := za.Dim(0), za.Dim(1)
	m := 2 * n

	// Stack views and L2-normalize rows; remember norms for backprop.
	z := tensor.New(m, d)
	for i := 0; i < n; i++ {
		copy(z.Row(i), za.Row(i))
		copy(z.Row(n+i), zb.Row(i))
	}
	norms := make([]float64, m)
	zn := tensor.New(m, d)
	for i := 0; i < m; i++ {
		r := z.Row(i)
		s := 0.0
		for _, v := range r {
			s += v * v
		}
		norms[i] = math.Sqrt(s) + 1e-12
		out := zn.Row(i)
		for j, v := range r {
			out[j] = v / norms[i]
		}
	}

	// Similarity matrix s[i][j] = <zn_i, zn_j>/τ with the diagonal masked.
	sim := tensor.MatMulTransB(zn, zn)
	tensor.ScaleInPlace(sim, 1/temperature)
	// Softmax rows (excluding self) and accumulate loss + dL/dsim.
	dSim := tensor.New(m, m)
	loss := 0.0
	for i := 0; i < m; i++ {
		pos := i + n
		if i >= n {
			pos = i - n
		}
		row := sim.Row(i)
		maxv := math.Inf(-1)
		for j := 0; j < m; j++ {
			if j != i && row[j] > maxv {
				maxv = row[j]
			}
		}
		denom := 0.0
		for j := 0; j < m; j++ {
			if j != i {
				denom += math.Exp(row[j] - maxv)
			}
		}
		logDenom := math.Log(denom) + maxv
		loss += logDenom - row[pos]
		dRow := dSim.Row(i)
		for j := 0; j < m; j++ {
			if j == i {
				continue
			}
			p := math.Exp(row[j]-maxv) / denom
			dRow[j] = p / float64(m)
		}
		dRow[pos] -= 1 / float64(m)
	}
	loss /= float64(m)

	// Backprop through sim = zn·znᵀ/τ: dZn = (dSim + dSimᵀ)·zn / τ.
	dSym := tensor.Add(dSim, tensor.Transpose(dSim))
	dZn := tensor.MatMul(dSym, zn)
	tensor.ScaleInPlace(dZn, 1/temperature)

	// Backprop through row normalization: for y = x/|x|,
	// dx = (dy - y·<y, dy>) / |x|.
	dZ := tensor.New(m, d)
	for i := 0; i < m; i++ {
		y := zn.Row(i)
		dy := dZn.Row(i)
		dot := 0.0
		for j := range y {
			dot += y[j] * dy[j]
		}
		out := dZ.Row(i)
		for j := range y {
			out[j] = (dy[j] - y[j]*dot) / norms[i]
		}
	}

	ga := tensor.New(n, d)
	gb := tensor.New(n, d)
	for i := 0; i < n; i++ {
		copy(ga.Row(i), dZ.Row(i))
		copy(gb.Row(i), dZ.Row(n+i))
	}
	return loss, ga, gb
}
