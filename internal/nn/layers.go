package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fairdms/internal/tensor"
)

// Linear is a fully connected layer: y = xW + b with W of shape (in, out).
type Linear struct {
	In, Out int
	w, b    *Param
	lastX   *tensor.Tensor
}

// NewLinear returns a Linear layer with He-initialized weights.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	w := tensor.New(in, out)
	heInit(rng, w, in)
	return &Linear{
		In:  in,
		Out: out,
		w:   newParam(fmt.Sprintf("linear_%dx%d_w", in, out), w),
		b:   newParam(fmt.Sprintf("linear_%dx%d_b", in, out), tensor.New(out)),
	}
}

// Forward computes xW + b. In eval mode (train=false) it caches nothing,
// so concurrent eval-mode forwards on a shared model are race-free — the
// property embedding servers rely on to run parallel Embed workers.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatch("Linear", x, l.In)
	if train {
		l.lastX = x
	}
	// The MatMul result is freshly owned, so the bias folds in without
	// materializing a second activation tensor.
	return tensor.AddRowVectorInPlace(tensor.MatMul(x, l.w.Value), l.b.Value)
}

// Backward accumulates dW = xᵀ·g, db = Σg and returns dX = g·Wᵀ.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.lastX == nil {
		panic("nn: Linear.Backward before Forward")
	}
	tensor.AddInPlace(l.w.Grad, tensor.MatMulTransA(l.lastX, grad))
	tensor.AddInPlace(l.b.Grad, tensor.SumRows(grad))
	return tensor.MatMulTransB(grad, l.w.Value)
}

// Params returns the weight and bias parameters.
func (l *Linear) Params() []*Param { return []*Param{l.w, l.b} }

// ReLU is the rectified linear activation, max(0, x).
type ReLU struct{ lastX *tensor.Tensor }

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward clamps negatives to zero.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		r.lastX = x
	}
	return tensor.Apply(x, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// Backward passes gradient only where the input was positive.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	xd, gd, od := r.lastX.Data(), grad.Data(), out.Data()
	for i := range gd {
		if xd[i] > 0 {
			od[i] = gd[i]
		}
	}
	return out
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// LeakyReLU is max(x, alpha*x), BraggNN's activation.
type LeakyReLU struct {
	Alpha float64
	lastX *tensor.Tensor
}

// NewLeakyReLU returns a LeakyReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// Forward applies the leaky rectifier.
func (r *LeakyReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		r.lastX = x
	}
	a := r.Alpha
	return tensor.Apply(x, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return a * v
	})
}

// Backward scales gradient by 1 or alpha depending on input sign.
func (r *LeakyReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	xd, gd, od := r.lastX.Data(), grad.Data(), out.Data()
	for i := range gd {
		if xd[i] > 0 {
			od[i] = gd[i]
		} else {
			od[i] = r.Alpha * gd[i]
		}
	}
	return out
}

// Params returns nil: LeakyReLU has no parameters.
func (r *LeakyReLU) Params() []*Param { return nil }

// Sigmoid is the logistic activation 1/(1+e^-x).
type Sigmoid struct{ lastY *tensor.Tensor }

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies the logistic function.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.Apply(x, func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	if train {
		s.lastY = y
	}
	return y
}

// Backward multiplies by y(1-y).
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	yd, gd, od := s.lastY.Data(), grad.Data(), out.Data()
	for i := range gd {
		od[i] = gd[i] * yd[i] * (1 - yd[i])
	}
	return out
}

// Params returns nil: Sigmoid has no parameters.
func (s *Sigmoid) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct{ lastY *tensor.Tensor }

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.Apply(x, math.Tanh)
	if train {
		t.lastY = y
	}
	return y
}

// Backward multiplies by 1 - y².
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	yd, gd, od := t.lastY.Data(), grad.Data(), out.Data()
	for i := range gd {
		od[i] = gd[i] * (1 - yd[i]*yd[i])
	}
	return out
}

// Params returns nil: Tanh has no parameters.
func (t *Tanh) Params() []*Param { return nil }

// Dropout randomly zeroes activations with probability P during training,
// scaling survivors by 1/(1-P) (inverted dropout). When MC is true the mask
// is also applied at inference time, which is what Monte-Carlo dropout
// uncertainty quantification (Gal & Ghahramani; paper Fig. 2) requires.
type Dropout struct {
	P   float64
	MC  bool
	rng *rand.Rand

	lastMask []float64
}

// NewDropout returns a dropout layer with drop probability p.
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %g outside [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Forward applies the random mask in training (or MC) mode and is the
// identity otherwise. The plain eval path (train=false, MC off) writes no
// layer state, so it is safe to run concurrently; MC mode draws from the
// layer's RNG and is not.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if (!train && !d.MC) || d.P == 0 {
		if train || d.MC {
			d.lastMask = nil
		}
		return x
	}
	keep := 1 - d.P
	scale := 1 / keep
	mask := make([]float64, x.Len())
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	for i := range xd {
		if d.rng.Float64() < keep {
			mask[i] = scale
			od[i] = xd[i] * scale
		}
	}
	d.lastMask = mask
	return out
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.lastMask == nil {
		return grad
	}
	out := tensor.New(grad.Shape()...)
	gd, od := grad.Data(), out.Data()
	for i := range gd {
		od[i] = gd[i] * d.lastMask[i]
	}
	return out
}

// Params returns nil: Dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

// Identity passes input and gradient through unchanged. It is useful as a
// structural placeholder (e.g. a pooling slot that a geometry doesn't need).
type Identity struct{}

// NewIdentity returns an Identity layer.
func NewIdentity() *Identity { return &Identity{} }

// Forward returns x unchanged.
func (Identity) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }

// Backward returns grad unchanged.
func (Identity) Backward(grad *tensor.Tensor) *tensor.Tensor { return grad }

// Params returns nil: Identity has no parameters.
func (Identity) Params() []*Param { return nil }

// SetMC toggles Monte-Carlo mode on every Dropout layer in the model and
// returns how many layers were affected.
func SetMC(m *Model, on bool) int {
	n := 0
	for _, l := range m.Layers() {
		if d, ok := l.(*Dropout); ok {
			d.MC = on
			n++
		}
	}
	return n
}
