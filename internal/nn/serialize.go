package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"fairdms/internal/tensor"
)

// StateDict is a snapshot of model parameters, keyed by position so that two
// structurally identical models (e.g. a zoo checkpoint and a fresh instance)
// can exchange weights even when layer name strings collide.
type StateDict struct {
	Names  []string
	Shapes [][]int
	Values [][]float64
}

// State extracts a deep-copied state dict from the model.
func (m *Model) State() *StateDict {
	ps := m.Params()
	sd := &StateDict{
		Names:  make([]string, len(ps)),
		Shapes: make([][]int, len(ps)),
		Values: make([][]float64, len(ps)),
	}
	for i, p := range ps {
		sd.Names[i] = p.Name
		sd.Shapes[i] = append([]int(nil), p.Value.Shape()...)
		sd.Values[i] = append([]float64(nil), p.Value.Data()...)
	}
	return sd
}

// LoadState copies weights from sd into the model. The model must have the
// same number of parameters with matching shapes, in the same order.
func (m *Model) LoadState(sd *StateDict) error {
	ps := m.Params()
	if len(ps) != len(sd.Values) {
		return fmt.Errorf("nn: state dict has %d params, model has %d", len(sd.Values), len(ps))
	}
	for i, p := range ps {
		if p.Value.Len() != len(sd.Values[i]) {
			return fmt.Errorf("nn: param %d (%s) has %d elements, state dict has %d",
				i, p.Name, p.Value.Len(), len(sd.Values[i]))
		}
		copy(p.Value.Data(), sd.Values[i])
	}
	return nil
}

// Encode writes the state dict in binary (gob) form.
func (sd *StateDict) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(sd); err != nil {
		return fmt.Errorf("nn: encoding state dict: %w", err)
	}
	return nil
}

// DecodeStateDict reads a state dict written by Encode.
func DecodeStateDict(r io.Reader) (*StateDict, error) {
	var sd StateDict
	if err := gob.NewDecoder(r).Decode(&sd); err != nil {
		return nil, fmt.Errorf("nn: decoding state dict: %w", err)
	}
	return &sd, nil
}

// Bytes serializes the state dict to a byte slice.
func (sd *StateDict) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := sd.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// StateDictFromBytes deserializes a state dict produced by Bytes.
func StateDictFromBytes(b []byte) (*StateDict, error) {
	return DecodeStateDict(bytes.NewReader(b))
}

// CopyWeights copies all parameter values from src into dst. The models must
// be structurally identical. It is used for checkpoint transfer and for the
// BYOL target network.
func CopyWeights(dst, src *Model) error {
	return dst.LoadState(src.State())
}

// EMAUpdate moves dst's parameters toward src with decay τ:
// dst = τ·dst + (1-τ)·src. This is BYOL's target-network update.
func EMAUpdate(dst, src *Model, tau float64) error {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("nn: EMA between models with %d vs %d params", len(dp), len(sp))
	}
	for i := range dp {
		dd, sd := dp[i].Value.Data(), sp[i].Value.Data()
		if len(dd) != len(sd) {
			return fmt.Errorf("nn: EMA param %d size mismatch %d vs %d", i, len(dd), len(sd))
		}
		for j := range dd {
			dd[j] = tau*dd[j] + (1-tau)*sd[j]
		}
	}
	return nil
}

// GradNorm returns the global L2 norm of all parameter gradients, useful for
// debugging training and for gradient clipping.
func GradNorm(m *Model) float64 {
	s := 0.0
	for _, p := range m.Params() {
		s += tensor.Dot(p.Grad, p.Grad)
	}
	return math.Sqrt(s)
}

// ClipGradNorm scales gradients so their global norm is at most maxNorm and
// returns the pre-clip norm.
func ClipGradNorm(m *Model, maxNorm float64) float64 {
	n := GradNorm(m)
	if n > maxNorm && n > 0 {
		scale := maxNorm / n
		for _, p := range m.Params() {
			tensor.ScaleInPlace(p.Grad, scale)
		}
	}
	return n
}
