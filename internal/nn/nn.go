// Package nn is a compact neural-network library over the tensor substrate:
// layers with hand-written backpropagation, losses, and optimizers. It stands
// in for the PyTorch stack the fairDMS paper trains BraggNN, CookieNetAE,
// and the self-supervised embedding models with.
//
// The API follows the familiar layer/module shape:
//
//	model := nn.Sequential(
//		nn.NewLinear(rng, 16, 64), nn.NewReLU(),
//		nn.NewLinear(rng, 64, 2),
//	)
//	out := model.Forward(x, true)  // training mode
//	loss, grad := nn.MSE(out, target)
//	model.Backward(grad)
//	opt.Step()
//
// Inputs are 2-D tensors of shape (batch, features); convolutional layers
// interpret the feature axis as flattened C×H×W with geometry given at
// construction. All layers are deterministic given their *rand.Rand.
// Layers are not safe for concurrent Forward/Backward on the same instance;
// clone the model (via StateDict round-trip) for parallel evaluation.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fairdms/internal/tensor"
)

// Param is a trainable tensor with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// newParam allocates a parameter and a matching zero gradient.
func newParam(name string, v *tensor.Tensor) *Param {
	return &Param{Name: name, Value: v, Grad: tensor.New(v.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	d := p.Grad.Data()
	for i := range d {
		d[i] = 0
	}
}

// Layer is one differentiable stage of a model. Forward stores whatever
// activations Backward needs; Backward consumes the loss gradient w.r.t. the
// layer output and returns the gradient w.r.t. the layer input, accumulating
// parameter gradients along the way.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Model is a sequential stack of layers.
type Model struct {
	layers []Layer
}

// Sequential builds a model from layers applied in order.
func Sequential(layers ...Layer) *Model { return &Model{layers: layers} }

// Append adds layers to the end of the model and returns it.
func (m *Model) Append(layers ...Layer) *Model {
	m.layers = append(m.layers, layers...)
	return m
}

// Layers returns the underlying layer slice (not a copy).
func (m *Model) Layers() []Layer { return m.layers }

// Forward runs the input through every layer.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range m.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the output gradient back through every layer.
func (m *Model) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(m.layers) - 1; i >= 0; i-- {
		grad = m.layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable parameters in layer order.
func (m *Model) Params() []*Param {
	var ps []*Param
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every parameter gradient.
func (m *Model) ZeroGrad() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// NumParams returns the total number of scalar parameters.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.Value.Len()
	}
	return n
}

// heInit fills w with Kaiming-He normal initialization for fanIn inputs.
func heInit(rng *rand.Rand, w *tensor.Tensor, fanIn int) {
	std := 1.0
	if fanIn > 0 {
		std = math.Sqrt(2.0 / float64(fanIn))
	}
	d := w.Data()
	for i := range d {
		d[i] = rng.NormFloat64() * std
	}
}

// checkBatch panics unless x is 2-D with the expected feature width.
func checkBatch(layer string, x *tensor.Tensor, features int) {
	if x.NDim() != 2 {
		panic(fmt.Sprintf("nn: %s expects (batch, features) input, got shape %v", layer, x.Shape()))
	}
	if x.Dim(1) != features {
		panic(fmt.Sprintf("nn: %s expects %d features, got %d", layer, features, x.Dim(1)))
	}
}
