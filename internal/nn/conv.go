package nn

import (
	"fmt"
	"math/rand"

	"fairdms/internal/tensor"
)

// Conv2d is a 2-D convolution over (batch, C*H*W) inputs using im2col +
// matrix multiply. Weights have shape (outC, inC*KH*KW).
type Conv2d struct {
	Dims tensor.ConvDims
	OutC int
	w, b *Param

	lastX    *tensor.Tensor
	lastCols []*tensor.Tensor // per-sample column matrices kept for backward
}

// NewConv2d returns a convolution layer for the given geometry.
func NewConv2d(rng *rand.Rand, dims tensor.ConvDims, outC int) *Conv2d {
	dims.Validate()
	fanIn := dims.InC * dims.KH * dims.KW
	w := tensor.New(outC, fanIn)
	heInit(rng, w, fanIn)
	return &Conv2d{
		Dims: dims,
		OutC: outC,
		w:    newParam(fmt.Sprintf("conv_%dc%dk%d_w", outC, dims.InC, dims.KH), w),
		b:    newParam(fmt.Sprintf("conv_%dc%dk%d_b", outC, dims.InC, dims.KH), tensor.New(outC)),
	}
}

// InFeatures returns the expected flattened input width (C*H*W).
func (c *Conv2d) InFeatures() int { return c.Dims.InC * c.Dims.InH * c.Dims.InW }

// OutFeatures returns the flattened output width (outC*outH*outW).
func (c *Conv2d) OutFeatures() int { return c.OutC * c.Dims.OutH() * c.Dims.OutW() }

// Forward convolves each batch sample in parallel.
func (c *Conv2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatch("Conv2d", x, c.InFeatures())
	n := x.Dim(0)
	outH, outW := c.Dims.OutH(), c.Dims.OutW()
	colRows := c.Dims.InC * c.Dims.KH * c.Dims.KW
	colCols := outH * outW
	out := tensor.New(n, c.OutFeatures())
	// The column matrices exist only to serve Backward; eval-mode forwards
	// (train=false) keep them sample-local and write no layer state, so
	// concurrent eval on a shared model is race-free.
	var cols []*tensor.Tensor
	if train {
		cols = make([]*tensor.Tensor, n)
		c.lastX = x
	}

	tensor.ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			col := tensor.New(colRows, colCols)
			tensor.Im2Col(x.Row(i), c.Dims, col.Data())
			if train {
				cols[i] = col
			}
			// (outC × colRows) · (colRows × colCols) = outC × colCols
			y := tensor.MatMul(c.w.Value, col)
			yd := y.Data()
			orow := out.Row(i)
			for oc := 0; oc < c.OutC; oc++ {
				bias := c.b.Value.Data()[oc]
				for j := 0; j < colCols; j++ {
					orow[oc*colCols+j] = yd[oc*colCols+j] + bias
				}
			}
		}
	})
	if train {
		c.lastCols = cols
	}
	return out
}

// Backward accumulates weight/bias gradients and returns the input gradient.
func (c *Conv2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.lastX == nil {
		panic("nn: Conv2d.Backward before Forward")
	}
	n := grad.Dim(0)
	outH, outW := c.Dims.OutH(), c.Dims.OutW()
	colRows := c.Dims.InC * c.Dims.KH * c.Dims.KW
	colCols := outH * outW
	dx := tensor.New(n, c.InFeatures())

	// Per-sample weight-gradient partials are accumulated into shards and
	// reduced at the end so the parallel loop never contends on c.w.Grad.
	type shard struct {
		dw *tensor.Tensor
		db *tensor.Tensor
	}
	shards := make([]shard, n)

	tensor.ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g := tensor.FromSlice(grad.Row(i), c.OutC, colCols)
			col := c.lastCols[i]
			// dW += g · colᵀ ; dCol = Wᵀ · g
			shards[i].dw = tensor.MatMulTransB(g, col)
			db := tensor.New(c.OutC)
			for oc := 0; oc < c.OutC; oc++ {
				s := 0.0
				for j := 0; j < colCols; j++ {
					s += g.Data()[oc*colCols+j]
				}
				db.Data()[oc] = s
			}
			shards[i].db = db
			dcol := tensor.MatMulTransA(c.w.Value, g)
			tensor.Col2Im(dcol.Data(), c.Dims, dx.Row(i))
		}
	})
	for i := range shards {
		tensor.AddInPlace(c.w.Grad, shards[i].dw)
		tensor.AddInPlace(c.b.Grad, shards[i].db)
	}
	_ = colRows
	return dx
}

// Params returns the kernel and bias parameters.
func (c *Conv2d) Params() []*Param { return []*Param{c.w, c.b} }

// MaxPool2d is a 2-D max pooling layer over (batch, C*H*W) inputs.
type MaxPool2d struct {
	C, H, W int
	Size    int // pooling window and stride (non-overlapping)

	lastArg []int // flat index of each max, for routing gradients
	lastN   int
}

// NewMaxPool2d returns a non-overlapping max-pool of the given window size.
func NewMaxPool2d(c, h, w, size int) *MaxPool2d {
	if size < 1 || h%size != 0 || w%size != 0 {
		panic(fmt.Sprintf("nn: MaxPool2d window %d must evenly divide %dx%d", size, h, w))
	}
	return &MaxPool2d{C: c, H: h, W: w, Size: size}
}

// OutFeatures returns the flattened pooled width.
func (p *MaxPool2d) OutFeatures() int { return p.C * (p.H / p.Size) * (p.W / p.Size) }

// Forward takes the max over each window, remembering argmax positions.
func (p *MaxPool2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatch("MaxPool2d", x, p.C*p.H*p.W)
	n := x.Dim(0)
	oh, ow := p.H/p.Size, p.W/p.Size
	out := tensor.New(n, p.OutFeatures())
	var arg []int
	if train {
		arg = make([]int, n*p.OutFeatures())
	}
	tensor.ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xrow := x.Row(i)
			orow := out.Row(i)
			for c := 0; c < p.C; c++ {
				chOff := c * p.H * p.W
				for y := 0; y < oh; y++ {
					for z := 0; z < ow; z++ {
						best := -1.0
						bestAt := -1
						for dy := 0; dy < p.Size; dy++ {
							for dz := 0; dz < p.Size; dz++ {
								at := chOff + (y*p.Size+dy)*p.W + z*p.Size + dz
								if bestAt < 0 || xrow[at] > best {
									best, bestAt = xrow[at], at
								}
							}
						}
						oat := c*oh*ow + y*ow + z
						orow[oat] = best
						if train {
							arg[i*p.OutFeatures()+oat] = bestAt
						}
					}
				}
			}
		}
	})
	if train {
		p.lastArg = arg
		p.lastN = n
	}
	return out
}

// Backward routes each gradient to the position that produced the max.
func (p *MaxPool2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.lastArg == nil {
		panic("nn: MaxPool2d.Backward before Forward")
	}
	out := tensor.New(p.lastN, p.C*p.H*p.W)
	of := p.OutFeatures()
	for i := 0; i < p.lastN; i++ {
		grow := grad.Row(i)
		orow := out.Row(i)
		for j := 0; j < of; j++ {
			orow[p.lastArg[i*of+j]] += grow[j]
		}
	}
	return out
}

// Params returns nil: pooling has no parameters.
func (p *MaxPool2d) Params() []*Param { return nil }
