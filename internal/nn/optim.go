package nn

import (
	"math"

	"fairdms/internal/tensor"
)

// Optimizer updates model parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients untouched.
	Step()
	// ZeroGrad clears all tracked gradients.
	ZeroGrad()
	// SetLR changes the learning rate (fine-tuning uses a smaller one).
	SetLR(lr float64)
	// LR reports the current learning rate.
	LR() float64
}

// SGD is stochastic gradient descent with optional momentum and weight decay.
type SGD struct {
	params   []*Param
	lr       float64
	momentum float64
	decay    float64
	velocity []*tensor.Tensor
}

// NewSGD returns an SGD optimizer over params.
func NewSGD(params []*Param, lr, momentum, weightDecay float64) *SGD {
	v := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		v[i] = tensor.New(p.Value.Shape()...)
	}
	return &SGD{params: params, lr: lr, momentum: momentum, decay: weightDecay, velocity: v}
}

// Step applies v = μv - lr·(g + λw); w += v.
func (s *SGD) Step() {
	for i, p := range s.params {
		vd := s.velocity[i].Data()
		wd := p.Value.Data()
		gd := p.Grad.Data()
		for j := range wd {
			g := gd[j] + s.decay*wd[j]
			vd[j] = s.momentum*vd[j] - s.lr*g
			wd[j] += vd[j]
		}
	}
}

// ZeroGrad clears all parameter gradients.
func (s *SGD) ZeroGrad() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}

// SetLR changes the learning rate.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR reports the current learning rate.
func (s *SGD) LR() float64 { return s.lr }

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	params []*Param
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	decay  float64
	step   int
	m, v   []*tensor.Tensor
}

// NewAdam returns an Adam optimizer with the standard β₁=0.9, β₂=0.999.
func NewAdam(params []*Param, lr float64) *Adam {
	return NewAdamFull(params, lr, 0.9, 0.999, 1e-8, 0)
}

// NewAdamFull returns an Adam optimizer with every hyperparameter explicit.
func NewAdamFull(params []*Param, lr, beta1, beta2, eps, weightDecay float64) *Adam {
	m := make([]*tensor.Tensor, len(params))
	v := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		m[i] = tensor.New(p.Value.Shape()...)
		v[i] = tensor.New(p.Value.Shape()...)
	}
	return &Adam{params: params, lr: lr, beta1: beta1, beta2: beta2, eps: eps, decay: weightDecay, m: m, v: v}
}

// Step applies one bias-corrected Adam update.
func (a *Adam) Step() {
	a.step++
	c1 := 1 - math.Pow(a.beta1, float64(a.step))
	c2 := 1 - math.Pow(a.beta2, float64(a.step))
	for i, p := range a.params {
		md := a.m[i].Data()
		vd := a.v[i].Data()
		wd := p.Value.Data()
		gd := p.Grad.Data()
		for j := range wd {
			g := gd[j] + a.decay*wd[j]
			md[j] = a.beta1*md[j] + (1-a.beta1)*g
			vd[j] = a.beta2*vd[j] + (1-a.beta2)*g*g
			mhat := md[j] / c1
			vhat := vd[j] / c2
			wd[j] -= a.lr * mhat / (math.Sqrt(vhat) + a.eps)
		}
	}
}

// ZeroGrad clears all parameter gradients.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// SetLR changes the learning rate.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR reports the current learning rate.
func (a *Adam) LR() float64 { return a.lr }
