package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"fairdms/internal/tensor"
)

// numericGrad estimates dLoss/dParam by central differences for one scalar
// parameter element, where loss() runs the full forward + loss pipeline.
func numericGrad(loss func() float64, cell *float64) float64 {
	const h = 1e-6
	orig := *cell
	*cell = orig + h
	up := loss()
	*cell = orig - h
	down := loss()
	*cell = orig
	return (up - down) / (2 * h)
}

// checkModelGradients verifies analytic parameter gradients of model against
// numeric ones on a fixed (x, y) batch with MSE loss.
func checkModelGradients(t *testing.T, model *Model, x, y *tensor.Tensor, tol float64) {
	t.Helper()
	lossFn := func() float64 {
		pred := model.Forward(x, true)
		l, _ := MSE(pred, y)
		return l
	}
	model.ZeroGrad()
	pred := model.Forward(x, true)
	_, grad := MSE(pred, y)
	model.Backward(grad)

	for pi, p := range model.Params() {
		vd := p.Value.Data()
		gd := p.Grad.Data()
		// Check a handful of elements per parameter to keep the test fast.
		step := len(vd)/5 + 1
		for i := 0; i < len(vd); i += step {
			want := numericGrad(lossFn, &vd[i])
			if math.Abs(want-gd[i]) > tol*(1+math.Abs(want)) {
				t.Fatalf("param %d (%s) grad[%d] = %g, numeric %g", pi, p.Name, i, gd[i], want)
			}
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := Sequential(NewLinear(rng, 4, 3))
	x := tensor.Randn(rng, 1, 5, 4)
	y := tensor.Randn(rng, 1, 5, 3)
	checkModelGradients(t, model, x, y, 1e-5)
}

func TestMLPGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := Sequential(
		NewLinear(rng, 6, 8), NewTanh(),
		NewLinear(rng, 8, 5), NewSigmoid(),
		NewLinear(rng, 5, 2),
	)
	x := tensor.Randn(rng, 1, 4, 6)
	y := tensor.Randn(rng, 1, 4, 2)
	checkModelGradients(t, model, x, y, 1e-4)
}

func TestLeakyReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	model := Sequential(NewLinear(rng, 5, 5), NewLeakyReLU(0.1), NewLinear(rng, 5, 1))
	x := tensor.Randn(rng, 1, 6, 5)
	y := tensor.Randn(rng, 1, 6, 1)
	checkModelGradients(t, model, x, y, 1e-4)
}

func TestConv2dGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dims := tensor.ConvDims{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2d(rng, dims, 3)
	model := Sequential(conv, NewReLU(), NewLinear(rng, conv.OutFeatures(), 2))
	x := tensor.Randn(rng, 1, 3, dims.InC*dims.InH*dims.InW)
	y := tensor.Randn(rng, 1, 3, 2)
	checkModelGradients(t, model, x, y, 1e-4)
}

func TestConv2dInputGradient(t *testing.T) {
	// Verify dX numerically as well, since Col2Im handles it.
	rng := rand.New(rand.NewSource(5))
	dims := tensor.ConvDims{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 0}
	conv := NewConv2d(rng, dims, 2)
	x := tensor.Randn(rng, 1, 2, 16)
	y := tensor.Randn(rng, 1, 2, conv.OutFeatures())

	lossFn := func() float64 {
		pred := conv.Forward(x, true)
		l, _ := MSE(pred, y)
		return l
	}
	conv.w.ZeroGrad()
	conv.b.ZeroGrad()
	pred := conv.Forward(x, true)
	_, grad := MSE(pred, y)
	dx := conv.Backward(grad)

	xd := x.Data()
	gd := dx.Data()
	for i := 0; i < len(xd); i += 7 {
		want := numericGrad(lossFn, &xd[i])
		if math.Abs(want-gd[i]) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("dX[%d] = %g, numeric %g", i, gd[i], want)
		}
	}
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pool := NewMaxPool2d(1, 4, 4, 2)
	model := Sequential(NewLinear(rng, 16, 16), pool, NewLinear(rng, 4, 2))
	x := tensor.Randn(rng, 1, 3, 16)
	y := tensor.Randn(rng, 1, 3, 2)
	checkModelGradients(t, model, x, y, 1e-4)
}

func TestMaxPoolForwardValues(t *testing.T) {
	pool := NewMaxPool2d(1, 2, 2, 2)
	x := tensor.FromSlice([]float64{1, 5, 3, 2}, 1, 4)
	out := pool.Forward(x, false)
	if out.Len() != 1 || out.At(0, 0) != 5 {
		t.Fatalf("pooled = %v, want [5]", out.Data())
	}
}

func TestMaxPoolBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-dividing window")
		}
	}()
	NewMaxPool2d(1, 5, 5, 2)
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDropout(rng, 0.5)
	x := tensor.Full(1, 1, 1000)

	// Eval mode: identity.
	out := d.Forward(x, false)
	if !tensor.AllClose(out, x, 0) {
		t.Fatal("eval-mode dropout must be identity")
	}

	// Train mode: roughly half zeroed, survivors scaled by 2.
	out = d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range out.Data() {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %g", v)
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Fatalf("zeroed %d of 1000 at p=0.5", zeros)
	}
	if zeros+twos != 1000 {
		t.Fatal("dropout outputs must be 0 or scaled input")
	}
}

func TestDropoutMCModeActiveAtInference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	model := Sequential(NewLinear(rng, 4, 16), NewReLU(), NewDropout(rng, 0.5), NewLinear(rng, 16, 1))
	x := tensor.Randn(rng, 1, 1, 4)

	// Without MC, repeated inference is deterministic.
	a := model.Forward(x, false).At(0, 0)
	b := model.Forward(x, false).At(0, 0)
	if a != b {
		t.Fatal("inference must be deterministic without MC mode")
	}

	if n := SetMC(model, true); n != 1 {
		t.Fatalf("SetMC touched %d layers, want 1", n)
	}
	seen := map[float64]bool{}
	for i := 0; i < 8; i++ {
		seen[model.Forward(x, false).At(0, 0)] = true
	}
	if len(seen) < 2 {
		t.Fatal("MC dropout must produce varying predictions")
	}
}

func TestDropoutBadProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=1")
		}
	}()
	NewDropout(rand.New(rand.NewSource(0)), 1.0)
}

func TestMSEKnownValue(t *testing.T) {
	pred := tensor.FromSlice([]float64{1, 2}, 1, 2)
	target := tensor.FromSlice([]float64{0, 0}, 1, 2)
	loss, grad := MSE(pred, target)
	if math.Abs(loss-2.5) > 1e-12 {
		t.Fatalf("MSE = %g, want 2.5", loss)
	}
	if grad.At(0, 0) != 1 || grad.At(0, 1) != 2 {
		t.Fatalf("grad = %v", grad.Data())
	}
}

func TestBCEGradientNumeric(t *testing.T) {
	pred := tensor.FromSlice([]float64{0.3, 0.8, 0.5}, 1, 3)
	target := tensor.FromSlice([]float64{0, 1, 1}, 1, 3)
	_, grad := BCE(pred, target)
	pd := pred.Data()
	for i := range pd {
		want := numericGrad(func() float64 {
			l, _ := BCE(pred, target)
			return l
		}, &pd[i])
		if math.Abs(want-grad.Data()[i]) > 1e-5 {
			t.Fatalf("BCE grad[%d] = %g, numeric %g", i, grad.Data()[i], want)
		}
	}
}

func TestL1GradientSigns(t *testing.T) {
	pred := tensor.FromSlice([]float64{2, -3}, 1, 2)
	target := tensor.FromSlice([]float64{0, 0}, 1, 2)
	loss, grad := L1(pred, target)
	if math.Abs(loss-2.5) > 1e-12 {
		t.Fatalf("L1 = %g, want 2.5", loss)
	}
	if grad.At(0, 0) <= 0 || grad.At(0, 1) >= 0 {
		t.Fatalf("L1 grad signs wrong: %v", grad.Data())
	}
}

func TestNTXentGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	za := tensor.Randn(rng, 1, 3, 4)
	zb := tensor.Randn(rng, 1, 3, 4)
	_, ga, gb := NTXent(za, zb, 0.5)

	zad := za.Data()
	for i := 0; i < len(zad); i += 3 {
		want := numericGrad(func() float64 {
			l, _, _ := NTXent(za, zb, 0.5)
			return l
		}, &zad[i])
		if math.Abs(want-ga.Data()[i]) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("NTXent ga[%d] = %g, numeric %g", i, ga.Data()[i], want)
		}
	}
	zbd := zb.Data()
	for i := 0; i < len(zbd); i += 3 {
		want := numericGrad(func() float64 {
			l, _, _ := NTXent(za, zb, 0.5)
			return l
		}, &zbd[i])
		if math.Abs(want-gb.Data()[i]) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("NTXent gb[%d] = %g, numeric %g", i, gb.Data()[i], want)
		}
	}
}

func TestNTXentPositivePairsReduceLoss(t *testing.T) {
	// Identical views should yield lower loss than random views.
	rng := rand.New(rand.NewSource(10))
	z := tensor.Randn(rng, 1, 8, 6)
	same, _, _ := NTXent(z, z.Clone(), 0.5)
	other := tensor.Randn(rng, 1, 8, 6)
	diff, _, _ := NTXent(z, other, 0.5)
	if same >= diff {
		t.Fatalf("loss(identical views) %g >= loss(random views) %g", same, diff)
	}
}

func TestSGDReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	model := Sequential(NewLinear(rng, 2, 8), NewTanh(), NewLinear(rng, 8, 1))
	opt := NewSGD(model.Params(), 0.1, 0.9, 0)

	// Learn y = x0 + x1.
	x := tensor.Randn(rng, 1, 64, 2)
	y := tensor.New(64, 1)
	for i := 0; i < 64; i++ {
		y.Set(x.At(i, 0)+x.At(i, 1), i, 0)
	}
	first := Evaluate(model, x, y, MSE)
	res := Fit(model, opt, x, y, x, y, TrainConfig{Epochs: 60, BatchSize: 16, Seed: 1})
	last := res.ValLoss[len(res.ValLoss)-1]
	if last >= first/10 {
		t.Fatalf("SGD did not learn: %g -> %g", first, last)
	}
}

func TestAdamReducesLossFasterThanNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	model := Sequential(NewLinear(rng, 3, 16), NewReLU(), NewLinear(rng, 16, 1))
	opt := NewAdam(model.Params(), 1e-2)
	x := tensor.Randn(rng, 1, 128, 3)
	y := tensor.New(128, 1)
	for i := 0; i < 128; i++ {
		y.Set(x.At(i, 0)*x.At(i, 1)+x.At(i, 2), i, 0)
	}
	first := Evaluate(model, x, y, MSE)
	Fit(model, opt, x, y, x, y, TrainConfig{Epochs: 80, BatchSize: 32, Seed: 2})
	last := Evaluate(model, x, y, MSE)
	if last >= first/5 {
		t.Fatalf("Adam did not learn: %g -> %g", first, last)
	}
}

func TestFitTargetLossStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	model := Sequential(NewLinear(rng, 1, 1))
	opt := NewAdam(model.Params(), 0.1)
	x := tensor.Randn(rng, 1, 32, 1)
	y := x.Clone()
	res := Fit(model, opt, x, y, x, y, TrainConfig{Epochs: 500, BatchSize: 8, TargetLoss: 1e-3, Seed: 3})
	if !res.Converged {
		t.Fatal("expected convergence on identity regression")
	}
	if res.Epochs >= 500 {
		t.Fatal("expected early stop before 500 epochs")
	}
	if at := res.ConvergedAt(1e-3); at != res.Epochs {
		t.Fatalf("ConvergedAt = %d, want %d", at, res.Epochs)
	}
}

func TestFitPatienceStops(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	model := Sequential(NewLinear(rng, 2, 1))
	// Zero learning rate: no improvement, so patience must fire.
	opt := NewSGD(model.Params(), 0, 0, 0)
	x := tensor.Randn(rng, 1, 16, 2)
	y := tensor.Randn(rng, 1, 16, 1)
	res := Fit(model, opt, x, y, x, y, TrainConfig{Epochs: 100, BatchSize: 4, Patience: 3, Seed: 4})
	if res.Epochs > 10 {
		t.Fatalf("patience did not stop training (ran %d epochs)", res.Epochs)
	}
}

func TestStateDictRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := Sequential(NewLinear(rng, 3, 4), NewReLU(), NewLinear(rng, 4, 2))
	b := Sequential(NewLinear(rng, 3, 4), NewReLU(), NewLinear(rng, 4, 2))

	var buf bytes.Buffer
	if err := a.State().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	sd, err := DecodeStateDict(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadState(sd); err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 1, 5, 3)
	if !tensor.AllClose(a.Forward(x, false), b.Forward(x, false), 1e-12) {
		t.Fatal("models disagree after state-dict round trip")
	}
}

func TestLoadStateShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := Sequential(NewLinear(rng, 3, 4))
	b := Sequential(NewLinear(rng, 3, 5))
	if err := b.LoadState(a.State()); err == nil {
		t.Fatal("expected error loading mismatched state dict")
	}
	c := Sequential(NewLinear(rng, 3, 4), NewLinear(rng, 4, 4))
	if err := c.LoadState(a.State()); err == nil {
		t.Fatal("expected error for differing param counts")
	}
}

func TestStateDictBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := Sequential(NewLinear(rng, 2, 2))
	raw, err := a.State().Bytes()
	if err != nil {
		t.Fatal(err)
	}
	sd, err := StateDictFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(sd.Values) != 2 {
		t.Fatalf("decoded %d params, want 2", len(sd.Values))
	}
}

func TestEMAUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	online := Sequential(NewLinear(rng, 2, 2))
	target := Sequential(NewLinear(rng, 2, 2))
	if err := CopyWeights(target, online); err != nil {
		t.Fatal(err)
	}
	// Nudge online weights, then EMA with tau=0.5 must land halfway.
	before := target.Params()[0].Value.At(0, 0)
	online.Params()[0].Value.Set(before+2, 0, 0)
	if err := EMAUpdate(target, online, 0.5); err != nil {
		t.Fatal(err)
	}
	got := target.Params()[0].Value.At(0, 0)
	if math.Abs(got-(before+1)) > 1e-12 {
		t.Fatalf("EMA value = %g, want %g", got, before+1)
	}
}

func TestClipGradNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	model := Sequential(NewLinear(rng, 2, 2))
	g := model.Params()[0].Grad.Data()
	for i := range g {
		g[i] = 10
	}
	pre := ClipGradNorm(model, 1.0)
	if pre <= 1 {
		t.Fatalf("pre-clip norm = %g, expected > 1", pre)
	}
	if post := GradNorm(model); math.Abs(post-1) > 1e-9 {
		t.Fatalf("post-clip norm = %g, want 1", post)
	}
}

func TestGatherRows(t *testing.T) {
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	b := Gather(x, []int{2, 0})
	if b.At(0, 0) != 5 || b.At(1, 1) != 2 {
		t.Fatalf("Gather = %v", b.Data())
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	m := Sequential(NewLinear(rng, 3, 4)) // 3*4 weights + 4 biases
	if n := m.NumParams(); n != 16 {
		t.Fatalf("NumParams = %d, want 16", n)
	}
}
