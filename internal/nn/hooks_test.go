package nn

import (
	"math/rand"
	"testing"

	"fairdms/internal/tensor"
)

// hookFixture builds a small deterministic regression problem and a fresh
// model for it.
func hookFixture(seed int64) (model *Model, x, y *tensor.Tensor) {
	rng := rand.New(rand.NewSource(seed))
	n, d := 64, 6
	x = tensor.New(n, d)
	y = tensor.New(n, 1)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < d; j++ {
			v := rng.Float64()
			x.Set(v, i, j)
			sum += v
		}
		y.Set(sum/float64(d), i, 0)
	}
	model = Sequential(NewLinear(rng, d, 8), NewReLU(), NewLinear(rng, 8, 1))
	return model, x, y
}

// TestFitHookParity asserts that setting OnEpoch and Stop hooks that never
// interfere leaves the run bit-identical to a hookless one.
func TestFitHookParity(t *testing.T) {
	base, x, y := hookFixture(7)
	cfg := TrainConfig{Epochs: 12, BatchSize: 16, Seed: 3}
	ref := Fit(base, NewSGD(base.Params(), 0.05, 0, 0), x, y, x, y, cfg)

	hooked, _, _ := hookFixture(7)
	var epochs []int
	cfg.OnEpoch = func(epoch int, trainLoss, valLoss float64) bool {
		epochs = append(epochs, epoch)
		return true
	}
	cfg.Stop = func() bool { return false }
	got := Fit(hooked, NewSGD(hooked.Params(), 0.05, 0, 0), x, y, x, y, cfg)

	if got.Epochs != ref.Epochs || got.Converged != ref.Converged || got.Stopped {
		t.Fatalf("hooked run diverged: got %+v want %+v", got, ref)
	}
	for i := range ref.TrainLoss {
		if got.TrainLoss[i] != ref.TrainLoss[i] || got.ValLoss[i] != ref.ValLoss[i] {
			t.Fatalf("epoch %d losses differ: (%g,%g) vs (%g,%g)",
				i+1, got.TrainLoss[i], got.ValLoss[i], ref.TrainLoss[i], ref.ValLoss[i])
		}
	}
	if len(epochs) != ref.Epochs {
		t.Fatalf("OnEpoch fired %d times, want %d", len(epochs), ref.Epochs)
	}
	for i, e := range epochs {
		if e != i+1 {
			t.Fatalf("OnEpoch epoch sequence %v is not 1..N", epochs)
		}
	}
}

// TestFitOnEpochStops asserts a false return ends training after that epoch.
func TestFitOnEpochStops(t *testing.T) {
	model, x, y := hookFixture(11)
	res := Fit(model, NewSGD(model.Params(), 0.05, 0, 0), x, y, x, y, TrainConfig{
		Epochs: 50, BatchSize: 16, Seed: 3,
		OnEpoch: func(epoch int, _, _ float64) bool { return epoch < 4 },
	})
	if res.Epochs != 4 {
		t.Fatalf("expected stop after epoch 4, ran %d", res.Epochs)
	}
	if res.Stopped {
		t.Fatal("OnEpoch stop must not set Stopped (that flags a mid-epoch abort)")
	}
}

// TestFitStopAbortsMidEpoch asserts the Stop signal aborts promptly without
// recording a partial epoch.
func TestFitStopAbortsMidEpoch(t *testing.T) {
	model, x, y := hookFixture(13)
	calls := 0
	res := Fit(model, NewSGD(model.Params(), 0.05, 0, 0), x, y, x, y, TrainConfig{
		Epochs: 50, BatchSize: 8, Seed: 3,
		Stop: func() bool { calls++; return calls > 10 }, // trips mid-epoch 2 (8 batches/epoch)
	})
	if !res.Stopped {
		t.Fatal("expected Stopped=true")
	}
	if res.Epochs != 1 || len(res.TrainLoss) != 1 || len(res.ValLoss) != 1 {
		t.Fatalf("partial epoch leaked into the result: %+v", res)
	}
}
