package voigt

import (
	"math/rand"
	"testing"
)

// benchFit measures the per-peak labeling cost that dominates the
// conventional baseline — the calibration input to the Fig. 15 Voigt-80 /
// Voigt-1440 extrapolation.
func benchFit(b *testing.B, patch int) {
	rng := rand.New(rand.NewSource(1))
	truth := Params{
		Amp: 10, Cx: float64(patch) / 2, Cy: float64(patch)/2 - 0.7,
		Sx: float64(patch) / 8, Sy: float64(patch) / 7, Eta: 0.4, Background: 1,
	}
	img := truth.Render(patch, patch)
	for i := range img {
		img[i] += rng.NormFloat64() * 0.2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(img, patch, patch, FitConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitPatch9(b *testing.B)  { benchFit(b, 9) }
func BenchmarkFitPatch15(b *testing.B) { benchFit(b, 15) }
func BenchmarkFitPatch21(b *testing.B) { benchFit(b, 21) }

func BenchmarkEval(b *testing.B) {
	p := Params{Amp: 10, Cx: 7, Cy: 7, Sx: 2, Sy: 2, Eta: 0.4, Background: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Eval(3.5, 9.1)
	}
}

func BenchmarkCenterOfMass(b *testing.B) {
	p := Params{Amp: 10, Cx: 7, Cy: 7, Sx: 2, Sy: 2, Eta: 0.4}
	img := p.Render(15, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CenterOfMass(img, 15, 15)
	}
}
