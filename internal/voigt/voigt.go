// Package voigt implements the 2-D pseudo-Voigt peak model and a
// Levenberg–Marquardt fitter. In the paper this is the MIDAS pseudo-Voigt
// code: the compute-intensive "conventional method" that labels Bragg
// diffraction peaks with sub-pixel centers-of-mass (§III-H), against which
// fairDS's label reuse is compared. The same profile doubles as the
// generative model for the synthetic BraggPeaks dataset.
package voigt

import (
	"errors"
	"fmt"
	"math"
)

// Params are the seven parameters of a 2-D pseudo-Voigt peak.
type Params struct {
	Amp        float64 // peak amplitude above background
	Cx, Cy     float64 // center (column, row), sub-pixel
	Sx, Sy     float64 // widths along x and y (> 0)
	Eta        float64 // Lorentzian fraction in [0, 1]
	Background float64 // constant background level
}

// Eval returns the profile value at (x, y):
//
//	v = A·(η·L + (1−η)·G) + bg
//	G = exp(−r²/2),  L = 1/(1+r²),  r² = ((x−cx)/sx)² + ((y−cy)/sy)²
func (p Params) Eval(x, y float64) float64 {
	sx, sy := p.Sx, p.Sy
	if sx < 1e-6 {
		sx = 1e-6
	}
	if sy < 1e-6 {
		sy = 1e-6
	}
	eta := clamp01(p.Eta)
	dx := (x - p.Cx) / sx
	dy := (y - p.Cy) / sy
	r2 := dx*dx + dy*dy
	g := math.Exp(-r2 / 2)
	l := 1 / (1 + r2)
	return p.Amp*(eta*l+(1-eta)*g) + p.Background
}

// Render fills an h×w image (row-major) with the profile.
func (p Params) Render(h, w int) []float64 {
	img := make([]float64, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img[y*w+x] = p.Eval(float64(x), float64(y))
		}
	}
	return img
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// vector form used by the optimizer
func (p Params) toVec() [7]float64 {
	return [7]float64{p.Amp, p.Cx, p.Cy, p.Sx, p.Sy, p.Eta, p.Background}
}

func fromVec(v [7]float64) Params {
	return Params{Amp: v[0], Cx: v[1], Cy: v[2], Sx: v[3], Sy: v[4], Eta: v[5], Background: v[6]}
}

// CenterOfMass returns the intensity-weighted centroid (x, y) of an h×w
// image after subtracting its minimum, the standard initial guess for peak
// fitting.
func CenterOfMass(img []float64, h, w int) (float64, float64) {
	lo := math.Inf(1)
	for _, v := range img {
		if v < lo {
			lo = v
		}
	}
	var sx, sy, mass float64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			m := img[y*w+x] - lo
			sx += m * float64(x)
			sy += m * float64(y)
			mass += m
		}
	}
	if mass == 0 {
		return float64(w-1) / 2, float64(h-1) / 2
	}
	return sx / mass, sy / mass
}

// FitResult reports a converged fit.
type FitResult struct {
	Params    Params
	Residual  float64 // final sum of squared residuals
	Iters     int
	Converged bool
}

// FitConfig tunes the Levenberg–Marquardt optimizer.
type FitConfig struct {
	MaxIters int     // default 200
	Tol      float64 // relative residual-improvement tolerance, default 1e-10
}

// Fit fits a 2-D pseudo-Voigt profile to an h×w image with
// Levenberg–Marquardt, starting from a center-of-mass initial guess.
// This is the per-peak unit of work whose cost dominates conventional
// labeling in the paper's case study.
func Fit(img []float64, h, w int, cfg FitConfig) (*FitResult, error) {
	if len(img) != h*w {
		return nil, fmt.Errorf("voigt: image %d elements, expected %d×%d", len(img), h, w)
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 200
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-10
	}

	// Initial guess.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range img {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	cx, cy := CenterOfMass(img, h, w)
	p := Params{
		Amp: hi - lo, Cx: cx, Cy: cy,
		Sx: float64(w) / 6, Sy: float64(h) / 6,
		Eta: 0.5, Background: lo,
	}
	vec := p.toVec()

	n := h * w
	resid := make([]float64, n)
	jac := make([][7]float64, n)
	lambda := 1e-3
	prevSSR := ssr(img, h, w, fromVec(vec), resid)
	iters := 0
	converged := false

	for ; iters < cfg.MaxIters; iters++ {
		// Numeric Jacobian by forward differences.
		for j := 0; j < 7; j++ {
			step := 1e-6 * (1 + math.Abs(vec[j]))
			bumped := vec
			bumped[j] += step
			bp := fromVec(bumped)
			idx := 0
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					base := fromVec(vec).Eval(float64(x), float64(y))
					jac[idx][j] = (bp.Eval(float64(x), float64(y)) - base) / step
					idx++
				}
			}
		}

		// Normal equations: (JᵀJ + λ·diag(JᵀJ))·δ = Jᵀr.
		var jtj [7][7]float64
		var jtr [7]float64
		for i := 0; i < n; i++ {
			for a := 0; a < 7; a++ {
				jtr[a] += jac[i][a] * resid[i]
				for b := a; b < 7; b++ {
					jtj[a][b] += jac[i][a] * jac[i][b]
				}
			}
		}
		for a := 0; a < 7; a++ {
			for b := 0; b < a; b++ {
				jtj[a][b] = jtj[b][a]
			}
		}

		improved := false
		for attempt := 0; attempt < 10; attempt++ {
			aug := jtj
			for a := 0; a < 7; a++ {
				aug[a][a] += lambda * (jtj[a][a] + 1e-12)
			}
			delta, err := solve7(aug, jtr)
			if err != nil {
				lambda *= 10
				continue
			}
			trial := vec
			for a := 0; a < 7; a++ {
				trial[a] += delta[a]
			}
			sanitize(&trial, h, w)
			trialSSR := ssr(img, h, w, fromVec(trial), resid)
			if trialSSR < prevSSR {
				rel := (prevSSR - trialSSR) / (prevSSR + 1e-300)
				vec = trial
				prevSSR = trialSSR
				lambda = math.Max(lambda/10, 1e-12)
				improved = true
				if rel < cfg.Tol {
					converged = true
				}
				break
			}
			lambda *= 10
		}
		if !improved || converged {
			converged = converged || !improved
			break
		}
	}
	// Refresh residuals for the accepted parameters.
	final := ssr(img, h, w, fromVec(vec), resid)
	return &FitResult{Params: fromVec(vec), Residual: final, Iters: iters + 1, Converged: converged}, nil
}

// sanitize keeps parameters in their physical ranges during optimization.
func sanitize(v *[7]float64, h, w int) {
	if v[3] < 0.3 {
		v[3] = 0.3
	}
	if v[4] < 0.3 {
		v[4] = 0.3
	}
	if v[3] > float64(w) {
		v[3] = float64(w)
	}
	if v[4] > float64(h) {
		v[4] = float64(h)
	}
	v[5] = clamp01(v[5])
	if v[1] < -1 {
		v[1] = -1
	}
	if v[1] > float64(w) {
		v[1] = float64(w)
	}
	if v[2] < -1 {
		v[2] = -1
	}
	if v[2] > float64(h) {
		v[2] = float64(h)
	}
}

// ssr computes residuals (data − model) and their sum of squares.
func ssr(img []float64, h, w int, p Params, resid []float64) float64 {
	s := 0.0
	idx := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := img[idx] - p.Eval(float64(x), float64(y))
			resid[idx] = r
			s += r * r
			idx++
		}
	}
	return s
}

// solve7 solves a 7×7 linear system by Gaussian elimination with partial
// pivoting.
func solve7(a [7][7]float64, b [7]float64) ([7]float64, error) {
	const n = 7
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, piv = v, r
			}
		}
		if best < 1e-300 {
			return b, errors.New("voigt: singular normal equations")
		}
		if piv != col {
			a[col], a[piv] = a[piv], a[col]
			b[col], b[piv] = b[piv], b[col]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [7]float64
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}
