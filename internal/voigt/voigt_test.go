package voigt

import (
	"math"
	"math/rand"
	"testing"
)

func TestEvalPeakValueAtCenter(t *testing.T) {
	p := Params{Amp: 10, Cx: 7, Cy: 7, Sx: 2, Sy: 2, Eta: 0.3, Background: 1}
	// At the exact center both G and L are 1, so v = Amp + bg.
	if got := p.Eval(7, 7); math.Abs(got-11) > 1e-12 {
		t.Fatalf("Eval at center = %g, want 11", got)
	}
	// Far away the profile decays toward the background.
	if got := p.Eval(100, 100); got > 1.2 {
		t.Fatalf("Eval far away = %g, want ~background", got)
	}
}

func TestEvalDegenerateWidthsSafe(t *testing.T) {
	p := Params{Amp: 1, Sx: 0, Sy: -5, Eta: 2}
	if v := p.Eval(0, 0); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("degenerate params produced %g", v)
	}
}

func TestRenderShape(t *testing.T) {
	p := Params{Amp: 5, Cx: 2, Cy: 3, Sx: 1, Sy: 1, Eta: 0.5}
	img := p.Render(6, 5)
	if len(img) != 30 {
		t.Fatalf("rendered %d pixels, want 30", len(img))
	}
	// The brightest pixel must be at the integer pixel nearest the center.
	best, at := math.Inf(-1), -1
	for i, v := range img {
		if v > best {
			best, at = v, i
		}
	}
	if at != 3*5+2 {
		t.Fatalf("peak at flat index %d, want 17", at)
	}
}

func TestCenterOfMass(t *testing.T) {
	p := Params{Amp: 10, Cx: 4, Cy: 6, Sx: 1.5, Sy: 1.5, Eta: 0.4, Background: 2}
	img := p.Render(11, 11)
	cx, cy := CenterOfMass(img, 11, 11)
	// Centroid of a peak not centered in the window is biased slightly
	// toward the window center; demand agreement to half a pixel.
	if math.Abs(cx-4) > 0.5 || math.Abs(cy-6) > 0.5 {
		t.Fatalf("CoM = (%g, %g), want ≈ (4, 6)", cx, cy)
	}
}

func TestCenterOfMassFlatImage(t *testing.T) {
	img := make([]float64, 25)
	cx, cy := CenterOfMass(img, 5, 5)
	if cx != 2 || cy != 2 {
		t.Fatalf("flat CoM = (%g, %g), want window center (2, 2)", cx, cy)
	}
}

func TestFitRecoversNoiselessPeak(t *testing.T) {
	truth := Params{Amp: 8, Cx: 7.3, Cy: 6.8, Sx: 1.8, Sy: 2.2, Eta: 0.35, Background: 0.5}
	img := truth.Render(15, 15)
	res, err := Fit(img, 15, 15, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params.Cx-truth.Cx) > 0.02 || math.Abs(res.Params.Cy-truth.Cy) > 0.02 {
		t.Fatalf("fit center = (%g, %g), want (%g, %g)", res.Params.Cx, res.Params.Cy, truth.Cx, truth.Cy)
	}
	if math.Abs(res.Params.Amp-truth.Amp) > 0.5 {
		t.Fatalf("fit amp = %g, want %g", res.Params.Amp, truth.Amp)
	}
}

func TestFitRecoversNoisyPeakCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := Params{Amp: 10, Cx: 6.6, Cy: 8.1, Sx: 2.0, Sy: 1.6, Eta: 0.5, Background: 1}
	img := truth.Render(15, 15)
	for i := range img {
		img[i] += rng.NormFloat64() * 0.3
	}
	res, err := Fit(img, 15, 15, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Sub-pixel accuracy even at SNR ≈ 33.
	if math.Abs(res.Params.Cx-truth.Cx) > 0.15 || math.Abs(res.Params.Cy-truth.Cy) > 0.15 {
		t.Fatalf("noisy fit center = (%g, %g), want ≈ (%g, %g)",
			res.Params.Cx, res.Params.Cy, truth.Cx, truth.Cy)
	}
}

func TestFitImproveOverInitialGuess(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := Params{Amp: 6, Cx: 5.5, Cy: 9.2, Sx: 2.5, Sy: 2.5, Eta: 0.7, Background: 0.2}
	img := truth.Render(15, 15)
	for i := range img {
		img[i] += rng.NormFloat64() * 0.2
	}
	res, err := Fit(img, 15, 15, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The CoM initial guess is biased toward the window center; LM must
	// beat it.
	comX, comY := CenterOfMass(img, 15, 15)
	comErr := math.Hypot(comX-truth.Cx, comY-truth.Cy)
	fitErr := math.Hypot(res.Params.Cx-truth.Cx, res.Params.Cy-truth.Cy)
	if fitErr >= comErr {
		t.Fatalf("fit error %g not better than CoM error %g", fitErr, comErr)
	}
}

func TestFitBadImageSize(t *testing.T) {
	if _, err := Fit(make([]float64, 10), 5, 5, FitConfig{}); err == nil {
		t.Fatal("expected error for wrong image size")
	}
}

func TestFitIterationCapRespected(t *testing.T) {
	truth := Params{Amp: 4, Cx: 7, Cy: 7, Sx: 2, Sy: 2, Eta: 0.5}
	img := truth.Render(15, 15)
	res, err := Fit(img, 15, 15, FitConfig{MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters > 4 {
		t.Fatalf("ran %d iterations with cap 3", res.Iters)
	}
}

func TestSolve7KnownSystem(t *testing.T) {
	// Identity system.
	var a [7][7]float64
	var b [7]float64
	for i := 0; i < 7; i++ {
		a[i][i] = 2
		b[i] = float64(i)
	}
	x, err := solve7(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if math.Abs(x[i]-float64(i)/2) > 1e-12 {
			t.Fatalf("x[%d] = %g", i, x[i])
		}
	}
}

func TestSolve7Singular(t *testing.T) {
	var a [7][7]float64
	var b [7]float64
	if _, err := solve7(a, b); err == nil {
		t.Fatal("expected singularity error")
	}
}
