// Package uq implements the uncertainty-quantification tools fairDMS uses
// to decide when models need attention: Monte-Carlo dropout prediction
// intervals (Gal & Ghahramani 2016), which the paper's Fig. 2 uses to track
// BraggNN degradation as experimental conditions drift.
//
// The companion trigger signal — fuzzy-clustering certainty over the
// embedding space — lives in internal/cluster and is exposed through
// fairds.Service.Certainty; examples/hedm wires both into the full
// monitor-and-refresh loop.
package uq

import (
	"fmt"
	"math"

	"fairdms/internal/nn"
	"fairdms/internal/stats"
	"fairdms/internal/tensor"
)

// MCResult summarizes T stochastic forward passes.
type MCResult struct {
	Mean  *tensor.Tensor // per-output posterior mean (N, outDim)
	Std   *tensor.Tensor // per-output posterior stddev (N, outDim)
	Lo95  *tensor.Tensor // mean − 1.96·std
	Hi95  *tensor.Tensor // mean + 1.96·std
	Width float64        // mean 95% interval width across all outputs
}

// MCDropout runs T forward passes with dropout active at inference and
// aggregates per-output mean, standard deviation, and 95% bounds. The model
// must contain at least one Dropout layer; otherwise an error is returned
// (all passes would be identical and the interval degenerate).
func MCDropout(model *nn.Model, x *tensor.Tensor, T int) (*MCResult, error) {
	if T < 2 {
		return nil, fmt.Errorf("uq: MC dropout needs T >= 2 passes, got %d", T)
	}
	if n := nn.SetMC(model, true); n == 0 {
		return nil, fmt.Errorf("uq: model has no Dropout layers for MC sampling")
	}
	defer nn.SetMC(model, false)

	var sum, sumSq *tensor.Tensor
	for t := 0; t < T; t++ {
		out := model.Forward(x, false)
		if sum == nil {
			sum = tensor.New(out.Shape()...)
			sumSq = tensor.New(out.Shape()...)
		}
		tensor.AddInPlace(sum, out)
		tensor.AddInPlace(sumSq, tensor.Mul(out, out))
	}
	n := float64(T)
	mean := tensor.Scale(sum, 1/n)
	variance := tensor.Sub(tensor.Scale(sumSq, 1/n), tensor.Mul(mean, mean))
	std := tensor.Apply(variance, func(v float64) float64 {
		if v < 0 {
			v = 0 // guard rounding
		}
		return math.Sqrt(v)
	})
	lo := tensor.Sub(mean, tensor.Scale(std, 1.96))
	hi := tensor.Add(mean, tensor.Scale(std, 1.96))
	return &MCResult{
		Mean: mean, Std: std, Lo95: lo, Hi95: hi,
		Width: 2 * 1.96 * std.Mean(),
	}, nil
}

// MeanUncertainty runs MC dropout and returns the scalar mean predictive
// stddev — the degradation signal plotted on Fig. 2's right axis.
func MeanUncertainty(model *nn.Model, x *tensor.Tensor, T int) (float64, error) {
	res, err := MCDropout(model, x, T)
	if err != nil {
		return 0, err
	}
	return res.Std.Mean(), nil
}

// DriftDetector tracks a rolling baseline of an uncertainty (or error)
// signal and fires when the signal exceeds the baseline by a multiplicative
// threshold — the simple trigger rule fairDMS uses to decide that a model
// needs refreshing.
type DriftDetector struct {
	Warmup    int     // observations used to establish the baseline
	Threshold float64 // trigger when value > Threshold × baseline mean

	history []float64
}

// Observe records a value and reports whether drift is detected.
func (d *DriftDetector) Observe(v float64) bool {
	if d.Warmup <= 0 {
		d.Warmup = 5
	}
	if d.Threshold <= 1 {
		d.Threshold = 1.5
	}
	if len(d.history) < d.Warmup {
		d.history = append(d.history, v)
		return false
	}
	baseline := stats.Mean(d.history)
	return v > d.Threshold*baseline
}

// Baseline returns the current baseline mean (NaN during warmup with no
// observations).
func (d *DriftDetector) Baseline() float64 { return stats.Mean(d.history) }
