package uq

import (
	"math/rand"
	"testing"

	"fairdms/internal/nn"
	"fairdms/internal/tensor"
)

func modelWithDropout(seed int64) *nn.Model {
	rng := rand.New(rand.NewSource(seed))
	return nn.Sequential(
		nn.NewLinear(rng, 4, 32), nn.NewReLU(),
		nn.NewDropout(rng, 0.3),
		nn.NewLinear(rng, 32, 2),
	)
}

func TestMCDropoutShapesAndBounds(t *testing.T) {
	m := modelWithDropout(1)
	rng := rand.New(rand.NewSource(2))
	x := tensor.Randn(rng, 1, 5, 4)
	res, err := MCDropout(m, x, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean.Dim(0) != 5 || res.Mean.Dim(1) != 2 {
		t.Fatalf("mean shape %v", res.Mean.Shape())
	}
	for i := range res.Std.Data() {
		if res.Std.Data()[i] < 0 {
			t.Fatal("negative std")
		}
		if res.Lo95.Data()[i] > res.Mean.Data()[i] || res.Hi95.Data()[i] < res.Mean.Data()[i] {
			t.Fatal("bounds do not bracket the mean")
		}
	}
	if res.Width <= 0 {
		t.Fatalf("interval width %g", res.Width)
	}
}

func TestMCDropoutRequiresDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := nn.Sequential(nn.NewLinear(rng, 2, 1))
	if _, err := MCDropout(m, tensor.New(1, 2), 10); err == nil {
		t.Fatal("expected error for dropout-free model")
	}
}

func TestMCDropoutRequiresMultiplePasses(t *testing.T) {
	m := modelWithDropout(4)
	if _, err := MCDropout(m, tensor.New(1, 4), 1); err == nil {
		t.Fatal("expected error for T=1")
	}
}

func TestMCDropoutRestoresEvalMode(t *testing.T) {
	m := modelWithDropout(5)
	x := tensor.New(1, 4)
	if _, err := MCDropout(m, x, 5); err != nil {
		t.Fatal(err)
	}
	// After MC sampling, inference must be deterministic again.
	a := m.Forward(x, false).At(0, 0)
	b := m.Forward(x, false).At(0, 0)
	if a != b {
		t.Fatal("MC mode leaked past MCDropout")
	}
}

func TestMeanUncertaintyPositive(t *testing.T) {
	m := modelWithDropout(6)
	rng := rand.New(rand.NewSource(7))
	x := tensor.Randn(rng, 1, 8, 4)
	u, err := MeanUncertainty(m, x, 15)
	if err != nil {
		t.Fatal(err)
	}
	if u <= 0 {
		t.Fatalf("uncertainty %g, want > 0 with active dropout", u)
	}
}

func TestDriftDetectorFiresOnJump(t *testing.T) {
	d := &DriftDetector{Warmup: 4, Threshold: 1.5}
	for i := 0; i < 4; i++ {
		if d.Observe(1.0) {
			t.Fatal("fired during warmup")
		}
	}
	if d.Observe(1.2) {
		t.Fatal("fired below threshold")
	}
	if !d.Observe(2.0) {
		t.Fatal("did not fire at 2× baseline")
	}
	if d.Baseline() != 1.0 {
		t.Fatalf("baseline = %g", d.Baseline())
	}
}

func TestDriftDetectorDefaults(t *testing.T) {
	d := &DriftDetector{}
	fired := false
	for i := 0; i < 10; i++ {
		fired = d.Observe(1.0) || fired
	}
	if fired {
		t.Fatal("default detector fired on a flat signal")
	}
}
