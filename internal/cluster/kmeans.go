// Package cluster implements the unsupervised grouping layer of fairDS:
// k-means++ clustering with parallel assignment, automatic cluster-count
// selection via the elbow method, and fuzzy c-means memberships for the
// uncertainty quantification that triggers embedding/clustering refresh
// (paper §II-A and §III-I).
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"fairdms/internal/stats"
	"fairdms/internal/tensor"
)

// KMeans holds a fitted k-means model: K centroids in embedding space.
type KMeans struct {
	Centers [][]float64 // K × dim
	Inertia float64     // within-cluster sum of squared distances (WSS)
	Iters   int         // iterations until convergence
}

// Config controls a k-means fit.
type Config struct {
	K        int     // number of clusters (required)
	MaxIters int     // default 100
	Tol      float64 // center-movement convergence tolerance, default 1e-6
	Seed     int64   // for k-means++ seeding
}

// Fit runs k-means++ initialization followed by Lloyd iterations on data
// (n × dim rows). Assignment steps run in parallel across samples.
func Fit(data [][]float64, cfg Config) (*KMeans, error) {
	n := len(data)
	if cfg.K <= 0 {
		return nil, fmt.Errorf("cluster: K = %d must be positive", cfg.K)
	}
	if n < cfg.K {
		return nil, fmt.Errorf("cluster: %d samples < K = %d", n, cfg.K)
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 100
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}
	dim := len(data[0])
	for i, row := range data {
		if len(row) != dim {
			return nil, fmt.Errorf("cluster: row %d has %d features, row 0 has %d", i, len(row), dim)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := seedPlusPlus(data, cfg.K, rng)

	assign := make([]int, n)
	dists := make([]float64, n)
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		assignAll(data, centers, assign, dists)

		// Recompute centers.
		newCenters := make([][]float64, cfg.K)
		counts := make([]int, cfg.K)
		for k := range newCenters {
			newCenters[k] = make([]float64, dim)
		}
		for i, a := range assign {
			counts[a]++
			row := data[i]
			c := newCenters[a]
			for j := range c {
				c[j] += row[j]
			}
		}
		for k := range newCenters {
			if counts[k] == 0 {
				// Re-seed an empty cluster at the farthest point.
				far := argmax(dists)
				copy(newCenters[k], data[far])
				dists[far] = 0
				continue
			}
			inv := 1 / float64(counts[k])
			for j := range newCenters[k] {
				newCenters[k][j] *= inv
			}
		}

		// Convergence: max center movement below tolerance.
		moved := 0.0
		for k := range centers {
			d := tensor.SquaredDistance(centers[k], newCenters[k])
			if d > moved {
				moved = d
			}
		}
		centers = newCenters
		if moved < cfg.Tol*cfg.Tol {
			km := &KMeans{Centers: centers, Iters: iter}
			km.Inertia = km.wss(data, assign, dists)
			return km, nil
		}
	}
	km := &KMeans{Centers: centers, Iters: cfg.MaxIters}
	assignAll(data, centers, assign, dists)
	km.Inertia = km.wss(data, assign, dists)
	return km, nil
}

func (km *KMeans) wss(data [][]float64, assign []int, dists []float64) float64 {
	assignAll(data, km.Centers, assign, dists)
	s := 0.0
	for _, d := range dists {
		s += d
	}
	return s
}

// seedPlusPlus picks K initial centers with the k-means++ D² weighting.
func seedPlusPlus(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(data)
	centers := make([][]float64, 0, k)
	first := rng.Intn(n)
	centers = append(centers, clone(data[first]))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = tensor.SquaredDistance(data[i], centers[0])
	}
	for len(centers) < k {
		total := 0.0
		for _, d := range d2 {
			total += d
		}
		var next int
		if total == 0 {
			next = rng.Intn(n) // all points coincide with a center
		} else {
			r := rng.Float64() * total
			acc := 0.0
			next = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					next = i
					break
				}
			}
		}
		c := clone(data[next])
		centers = append(centers, c)
		for i := range d2 {
			if d := tensor.SquaredDistance(data[i], c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

// assignAll computes the nearest center for every sample in parallel,
// recording squared distances.
func assignAll(data [][]float64, centers [][]float64, assign []int, dists []float64) {
	tensor.ParallelFor(len(data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			best, bestK := math.Inf(1), 0
			for k, c := range centers {
				if d := tensor.SquaredDistance(data[i], c); d < best {
					best, bestK = d, k
				}
			}
			assign[i] = bestK
			dists[i] = best
		}
	})
}

// Predict returns the nearest-center index for each row of data.
func (km *KMeans) Predict(data [][]float64) []int {
	assign := make([]int, len(data))
	dists := make([]float64, len(data))
	assignAll(data, km.Centers, assign, dists)
	return assign
}

// PredictOne returns the nearest center for a single sample and its
// squared distance.
func (km *KMeans) PredictOne(x []float64) (int, float64) {
	best, bestK := math.Inf(1), 0
	for k, c := range km.Centers {
		if d := tensor.SquaredDistance(x, c); d < best {
			best, bestK = d, k
		}
	}
	return bestK, best
}

// K returns the number of clusters.
func (km *KMeans) K() int { return len(km.Centers) }

// PDF returns the cluster probability distribution of a dataset: the
// fraction of samples assigned to each cluster. This is the dataset
// signature fairDS computes and fairMS indexes models by.
func (km *KMeans) PDF(data [][]float64) stats.PDF {
	return stats.NewPDFFromAssignments(km.Predict(data), km.K())
}

// SelectK fits k-means for every k in [kMin, kMax] and picks the elbow of
// the WSS curve (the paper's YellowBrick-based automatic K selection).
// It returns the chosen k, the fitted model for it, and the WSS curve.
func SelectK(data [][]float64, kMin, kMax int, seed int64) (int, *KMeans, []float64, error) {
	if kMin < 1 || kMax < kMin {
		return 0, nil, nil, fmt.Errorf("cluster: invalid K range [%d, %d]", kMin, kMax)
	}
	if kMax-kMin+1 < 3 {
		return 0, nil, nil, errors.New("cluster: elbow selection needs at least 3 candidate K values")
	}
	var (
		wss    []float64
		ks     []float64
		models []*KMeans
	)
	for k := kMin; k <= kMax; k++ {
		km, err := Fit(data, Config{K: k, Seed: seed})
		if err != nil {
			return 0, nil, nil, err
		}
		models = append(models, km)
		wss = append(wss, km.Inertia)
		ks = append(ks, float64(k))
	}
	idx, err := stats.ElbowPoint(ks, wss)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("cluster: elbow detection: %w", err)
	}
	return kMin + idx, models[idx], wss, nil
}

func clone(x []float64) []float64 { return append([]float64(nil), x...) }

func argmax(xs []float64) int {
	best, at := math.Inf(-1), 0
	for i, v := range xs {
		if v > best {
			best, at = v, i
		}
	}
	return at
}
