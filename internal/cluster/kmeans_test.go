package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates n points around each of the given centers with the given
// spread.
func blobs(rng *rand.Rand, centers [][]float64, n int, spread float64) ([][]float64, []int) {
	var data [][]float64
	var labels []int
	for ci, c := range centers {
		for i := 0; i < n; i++ {
			p := make([]float64, len(c))
			for j := range p {
				p[j] = c[j] + rng.NormFloat64()*spread
			}
			data = append(data, p)
			labels = append(labels, ci)
		}
	}
	return data, labels
}

func TestFitSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	data, truth := blobs(rng, centers, 50, 0.5)
	km, err := Fit(data, Config{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	assign := km.Predict(data)
	// Every ground-truth blob must map to exactly one predicted cluster.
	for blob := 0; blob < 3; blob++ {
		seen := map[int]int{}
		for i, a := range assign {
			if truth[i] == blob {
				seen[a]++
			}
		}
		if len(seen) != 1 {
			t.Fatalf("blob %d split across clusters: %v", blob, seen)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([][]float64{{1}}, Config{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := Fit([][]float64{{1}}, Config{K: 2}); err == nil {
		t.Fatal("expected error for n < K")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, Config{K: 1}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestFitDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data, _ := blobs(rng, [][]float64{{0, 0}, {5, 5}}, 30, 0.3)
	a, err := Fit(data, Config{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(data, Config{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia {
		t.Fatalf("same seed, different inertia: %g vs %g", a.Inertia, b.Inertia)
	}
}

func TestPredictOneMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data, _ := blobs(rng, [][]float64{{0, 0}, {8, 8}}, 20, 0.4)
	km, err := Fit(data, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	batch := km.Predict(data)
	for i, row := range data {
		one, d := km.PredictOne(row)
		if one != batch[i] {
			t.Fatalf("sample %d: PredictOne %d != Predict %d", i, one, batch[i])
		}
		if d < 0 {
			t.Fatal("negative squared distance")
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data, _ := blobs(rng, [][]float64{{0, 0}, {6, 0}, {0, 6}, {6, 6}}, 25, 0.8)
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		km, err := Fit(data, Config{K: k, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		// Allow tiny non-monotonicity from local optima, but the trend
		// must be overwhelmingly downward.
		if km.Inertia > prev*1.05 {
			t.Fatalf("inertia rose sharply at k=%d: %g -> %g", k, prev, km.Inertia)
		}
		prev = km.Inertia
	}
}

func TestSelectKFindsBlobCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	centers := [][]float64{{0, 0}, {12, 0}, {0, 12}, {12, 12}}
	data, _ := blobs(rng, centers, 40, 0.5)
	k, km, wss, err := SelectK(data, 1, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Fatalf("SelectK chose %d, want 4 (wss=%v)", k, wss)
	}
	if km.K() != 4 {
		t.Fatalf("returned model has K=%d", km.K())
	}
	if len(wss) != 8 {
		t.Fatalf("wss curve has %d points, want 8", len(wss))
	}
}

func TestSelectKErrors(t *testing.T) {
	data := [][]float64{{1}, {2}, {3}, {4}}
	if _, _, _, err := SelectK(data, 3, 2, 0); err == nil {
		t.Fatal("expected error for inverted range")
	}
	if _, _, _, err := SelectK(data, 1, 2, 0); err == nil {
		t.Fatal("expected error for too-narrow range")
	}
}

func TestPDFSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data, _ := blobs(rng, [][]float64{{0, 0}, {9, 9}}, 32, 0.4)
	km, err := Fit(data, Config{K: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := km.PDF(data)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Balanced blobs → roughly balanced PDF.
	if math.Abs(p[0]-0.5) > 0.1 {
		t.Fatalf("PDF = %v, want ~[0.5 0.5]", p)
	}
}

func TestMembershipsRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data, _ := blobs(rng, [][]float64{{0, 0}, {10, 10}}, 25, 0.6)
	km, err := Fit(data, Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	u := km.Memberships(data, 2)
	for i, row := range u {
		s := 0.0
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("membership out of range: %v", row)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d memberships sum to %g", i, s)
		}
	}
}

func TestMembershipExactCenterIsOne(t *testing.T) {
	km := &KMeans{Centers: [][]float64{{0, 0}, {4, 4}}}
	u := km.Memberships([][]float64{{0, 0}}, 2)
	if u[0][0] != 1 || u[0][1] != 0 {
		t.Fatalf("membership at exact center = %v, want [1 0]", u[0])
	}
}

func TestCertaintyTightVsDiffuse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	centers := [][]float64{{0, 0}, {20, 20}}
	tight, _ := blobs(rng, centers, 40, 0.3)
	km, err := Fit(tight, Config{K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// With two clusters the max membership is always >= 0.5, so a stricter
	// threshold is needed to discriminate confident from boundary samples.
	cTight := km.Certainty(tight, 2, 0.9)
	// Points near the decision boundary have ambiguous membership.
	boundary := make([][]float64, 30)
	for i := range boundary {
		boundary[i] = []float64{10 + rng.NormFloat64(), 10 + rng.NormFloat64()}
	}
	cBoundary := km.Certainty(boundary, 2, 0.9)
	if cTight < 0.95 {
		t.Fatalf("tight-cluster certainty = %g, want near 1", cTight)
	}
	if cBoundary >= cTight {
		t.Fatalf("boundary certainty %g should be below tight certainty %g", cBoundary, cTight)
	}
}

func TestCertaintyEmptyDataIsOne(t *testing.T) {
	km := &KMeans{Centers: [][]float64{{0}}}
	if c := km.Certainty(nil, 2, 0.5); c != 1 {
		t.Fatalf("certainty of empty data = %g, want 1", c)
	}
}

// Property: every sample's assigned center is at least as close as any other
// center (the defining invariant of a Voronoi assignment).
func TestQuickAssignmentIsNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed uint8) bool {
		data, _ := blobs(rng, [][]float64{{0, 0}, {5, 0}, {0, 5}}, 15, 1.0)
		km, err := Fit(data, Config{K: 3, Seed: int64(seed)})
		if err != nil {
			return false
		}
		assign := km.Predict(data)
		for i, row := range data {
			dAssigned := sq(row, km.Centers[assign[i]])
			for _, c := range km.Centers {
				if sq(row, c) < dAssigned-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func sq(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
