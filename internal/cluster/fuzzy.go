package cluster

import (
	"math"

	"fairdms/internal/tensor"
)

// Memberships computes fuzzy c-means style membership weights of each sample
// against the fitted centers, with fuzzifier m (> 1, typically 2):
//
//	u_ik = 1 / Σ_j (d_ik / d_jk)^(2/(m-1))
//
// Rows sum to 1. A sample exactly on a center gets membership 1 there.
// fairDMS uses these memberships to quantify clustering certainty
// (paper §III-I uses fuzzy k-means with a 50% confidence cut).
func (km *KMeans) Memberships(data [][]float64, m float64) [][]float64 {
	if m <= 1 {
		m = 2
	}
	exp := 2 / (m - 1)
	k := km.K()
	out := make([][]float64, len(data))
	tensor.ParallelFor(len(data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u := make([]float64, k)
			d := make([]float64, k)
			exact := -1
			for j, c := range km.Centers {
				d[j] = math.Sqrt(tensor.SquaredDistance(data[i], c))
				if d[j] == 0 {
					exact = j
				}
			}
			if exact >= 0 {
				u[exact] = 1
				out[i] = u
				continue
			}
			for j := range u {
				s := 0.0
				for l := range d {
					s += math.Pow(d[j]/d[l], exp)
				}
				u[j] = 1 / s
			}
			out[i] = u
		}
	})
	return out
}

// Certainty returns the fraction of samples whose maximum fuzzy membership
// is at least threshold — the paper's clustering-certainty metric: "the
// percentage of the dataset that are assigned to their respective cluster
// with at least 50% confidence" (§III-I). fairDMS triggers a system-plane
// refresh when this drops below its trigger level (80% in Fig. 16).
func (km *KMeans) Certainty(data [][]float64, fuzzifier, threshold float64) float64 {
	if len(data) == 0 {
		return 1
	}
	u := km.Memberships(data, fuzzifier)
	hit := 0
	for _, row := range u {
		best := 0.0
		for _, v := range row {
			if v > best {
				best = v
			}
		}
		if best >= threshold {
			hit++
		}
	}
	return float64(hit) / float64(len(data))
}
