package cluster

import (
	"math/rand"
	"testing"
)

func benchData(n, dim, centers int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	data := make([][]float64, n)
	for i := range data {
		c := i % centers
		row := make([]float64, dim)
		for j := range row {
			row[j] = float64(c*10) + rng.NormFloat64()
		}
		data[i] = row
	}
	return data
}

func BenchmarkFitK8(b *testing.B) {
	data := benchData(2048, 8, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(data, Config{K: 8, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	data := benchData(2048, 8, 8)
	km, err := Fit(data, Config{K: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		km.Predict(data)
	}
}

func BenchmarkMemberships(b *testing.B) {
	data := benchData(1024, 8, 8)
	km, err := Fit(data, Config{K: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		km.Memberships(data, 2)
	}
}

func BenchmarkSelectK(b *testing.B) {
	data := benchData(512, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := SelectK(data, 2, 8, 1); err != nil {
			b.Fatal(err)
		}
	}
}
