// Fixture: every guarded access happens with the documented lock held.
package clean

import "sync"

type box struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

func (b *box) get() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.v
}

func (b *box) set(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.v = v
}
