// Fixture: guarded-field discipline, with each recognized exemption
// exercised once — locked access, constructor (fresh composite literal),
// lint:holds, and the lint:ignore escape hatch — plus a prose comment
// that must NOT be read as an annotation.
package a

import "sync"

type registry struct {
	mu    sync.Mutex
	items map[string]int // guarded by mu

	// Prose like this must not become an annotation: "the" is not a
	// sibling mutex field.
	notes []string // guarded by the registry lock
}

func newRegistry() *registry {
	r := &registry{items: make(map[string]int)}
	r.items["boot"] = 1 // fresh composite literal: not yet shared
	return r
}

func (r *registry) add(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.items[k] = v
}

func (r *registry) peek(k string) int {
	return r.items[k] // want `items is guarded by mu but accessed without r\.mu held in peek`
}

// lockedLen reports the item count.
// lint:holds r.mu
func (r *registry) lockedLen() int {
	return len(r.items)
}

func (r *registry) sweep() {
	//lint:ignore guardedby called only from the single-threaded test driver
	clear(r.items)
}

func (r *registry) takeNotes(s string) {
	r.notes = append(r.notes, s) // unannotated (prose only): no finding
}
