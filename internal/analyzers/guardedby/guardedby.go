// Package guardedby enforces documented lock discipline: a struct field
// annotated with a comment of the form
//
//	jobs map[string]*job // guarded by mu
//
// may only be read or written in functions that visibly hold that mutex —
// i.e. the enclosing function (closures included) also calls
// <base>.mu.Lock() / RLock(), where <base> is the same expression the
// field is accessed through (s.jobs requires s.mu, sh.docs requires
// sh.mu). The check is flow-insensitive by design: it asks "does this
// function ever take the lock", not "is it held at this statement", which
// is cheap, has no false negatives for the unlocked-function bug class,
// and stays predictable to suppress.
//
// Two idioms are recognized as safe without a lock call:
//
//   - accesses through a variable freshly built from a composite literal
//     in the same function (constructors publish after initialization);
//   - functions whose doc comment carries `lint:holds <base>.<mu>`,
//     declaring that callers hold the lock.
//
// Anything else needs a `//lint:ignore guardedby <reason>`.
package guardedby

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"fairdms/internal/analyzers/anzkit"
)

// Analyzer is the package-level instance registered with fairvet.
var Analyzer = &anzkit.Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated '// guarded by <mu>' must only be accessed with that mutex held in the same function",
	Run:  run,
}

var guardRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// lockMethods are the sync.Mutex / sync.RWMutex acquisition methods.
var lockMethods = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}

func run(pass *anzkit.Pass) error {
	guarded := collectAnnotations(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guarded)
		}
	}
	return nil
}

// collectAnnotations maps annotated field objects to their mutex names.
// "guarded by X" only counts as an annotation when X names a sibling
// field of sync.Mutex/sync.RWMutex type in the same struct — that keeps
// prose like "guarded by the shard locks" from being misread as a
// directive, and pins every annotation to a real lock.
func collectAnnotations(pass *anzkit.Pass) map[types.Object]string {
	out := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			mutexes := make(map[string]bool)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil && isSyncMutex(obj.Type()) {
						mutexes[name.Name] = true
					}
				}
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" || !mutexes[mu] {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						out[obj] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

// isSyncMutex reports whether t is sync.Mutex, sync.RWMutex, or a pointer
// to either.
func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment, "" when unannotated.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkFunc verifies every guarded-field access in one function.
func checkFunc(pass *anzkit.Pass, fd *ast.FuncDecl, guarded map[types.Object]string) {
	held := heldLocks(pass, fd)
	fresh := freshLocals(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.Info.Selections[sel]
		if !ok {
			return true
		}
		mu, ok := guarded[s.Obj()]
		if !ok {
			return true
		}
		base := types.ExprString(sel.X)
		want := base + "." + mu
		if held[want] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && fresh[pass.Info.ObjectOf(id)] {
			return true // freshly constructed in this function, not yet shared
		}
		pass.Reportf(sel.Pos(), "%s is guarded by %s but accessed without %s held in %s", s.Obj().Name(), mu, want, fd.Name.Name)
		return true
	})
}

// heldLocks collects the receiver expressions of every mutex acquisition
// in the function (closures included), plus lint:holds declarations from
// its doc comment. Keys are rendered expressions like "s.mu" or "sh.mu".
func heldLocks(pass *anzkit.Pass, fd *ast.FuncDecl) map[string]bool {
	held := make(map[string]bool)
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "lint:holds "); ok {
				for _, expr := range strings.Fields(rest) {
					held[expr] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !lockMethods[sel.Sel.Name] {
			return true
		}
		fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		held[types.ExprString(sel.X)] = true
		return true
	})
	return held
}

// freshLocals returns the local variables assigned from composite
// literals (or addresses of them) anywhere in the function — values under
// construction that no other goroutine can see yet.
func freshLocals(pass *anzkit.Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		if u, ok := rhs.(*ast.UnaryExpr); ok {
			rhs = u.X
		}
		if _, ok := rhs.(*ast.CompositeLit); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				fresh[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return fresh
}
