package guardedby_test

import (
	"testing"

	"fairdms/internal/analyzers/anzkit/analysistest"
	"fairdms/internal/analyzers/guardedby"
)

func TestGuardedBy(t *testing.T) {
	diags := analysistest.Run(t, "testdata", guardedby.Analyzer, "a")
	// The fixture has exactly one true violation; the constructor,
	// lint:holds, and lint:ignore sites must all stay quiet.
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
}

func TestClean(t *testing.T) {
	if diags := analysistest.Run(t, "testdata", guardedby.Analyzer, "clean"); len(diags) != 0 {
		t.Fatalf("clean fixture produced diagnostics: %v", diags)
	}
}
