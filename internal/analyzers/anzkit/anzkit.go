// Package anzkit is a self-contained static-analysis kit in the spirit of
// golang.org/x/tools/go/analysis, built only on the standard library so the
// repo's analyzers (cmd/fairvet) need no network or module downloads. It
// mirrors the pieces of the upstream framework fairvet needs:
//
//   - Analyzer / Pass / Diagnostic, the unit of checking (anzkit.go);
//   - a package loader that parses and type-checks module packages offline,
//     resolving stdlib imports from $GOROOT source and module-internal
//     imports recursively from the repo tree (loader.go);
//   - a runner that expands "./..."-style patterns and applies a suite of
//     analyzers to the loaded packages (runner.go);
//   - a fixture harness replicating analysistest's "// want" convention
//     (analysistest/).
//
// Suppression: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line or the line directly above it silences those
// analyzers there; `//lint:file-ignore <analyzer> <reason>` anywhere in a
// file silences the analyzer for the whole file. A reason is mandatory —
// directives without one are reported as diagnostics themselves.
package anzkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis: a named invariant plus the function
// that checks a single package for violations of it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects the package behind pass and reports violations via
	// pass.Reportf. A returned error aborts the whole run (reserved for
	// analyzer bugs, not findings).
	Run func(pass *Pass) error
}

// A Pass connects an Analyzer to the single package it is checking.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's syntax, comments included.
	Files []*ast.File
	// Pkg and Info are the type-checked forms.
	Pkg  *types.Package
	Info *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// A Diagnostic is one finding: a position, a message, and the analyzer
// that raised it.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// sortDiagnostics orders findings by file, line, column, then analyzer,
// for deterministic output.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ignoreTable holds the suppression directives of one package.
type ignoreTable struct {
	// line maps filename → line → analyzer names ignored on that line and
	// the next.
	line map[string]map[int][]string
	// file maps filename → analyzer names ignored across the file.
	file map[string][]string
	// malformed directives (missing reason) become diagnostics.
	malformed []Diagnostic
}

const (
	ignorePrefix     = "lint:ignore "
	fileIgnorePrefix = "lint:file-ignore "
)

// buildIgnoreTable scans a package's comments for lint:ignore directives.
func buildIgnoreTable(fset *token.FileSet, files []*ast.File) *ignoreTable {
	t := &ignoreTable{
		line: make(map[string]map[int][]string),
		file: make(map[string][]string),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				var names []string
				var ok bool
				var whole bool
				switch {
				case strings.HasPrefix(text, ignorePrefix):
					names, ok = parseIgnore(strings.TrimPrefix(text, ignorePrefix))
				case strings.HasPrefix(text, fileIgnorePrefix):
					names, ok = parseIgnore(strings.TrimPrefix(text, fileIgnorePrefix))
					whole = true
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				if !ok {
					t.malformed = append(t.malformed, Diagnostic{
						Pos:      pos,
						Message:  "malformed lint directive: want //lint:ignore <analyzer> <reason>",
						Analyzer: "anzkit",
					})
					continue
				}
				if whole {
					t.file[pos.Filename] = append(t.file[pos.Filename], names...)
					continue
				}
				m := t.line[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					t.line[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], names...)
			}
		}
	}
	return t
}

// parseIgnore splits "name1,name2 reason..." into analyzer names, failing
// when no reason follows.
func parseIgnore(rest string) ([]string, bool) {
	fields := strings.Fields(rest)
	if len(fields) < 2 { // names + at least one reason word
		return nil, false
	}
	return strings.Split(fields[0], ","), true
}

// suppressed reports whether d is silenced by a directive: a matching
// file-ignore, or a matching line directive on d's line or the line above.
func (t *ignoreTable) suppressed(d Diagnostic) bool {
	match := func(names []string) bool {
		for _, n := range names {
			if n == d.Analyzer || n == "all" {
				return true
			}
		}
		return false
	}
	if match(t.file[d.Pos.Filename]) {
		return true
	}
	m := t.line[d.Pos.Filename]
	if m == nil {
		return false
	}
	return match(m[d.Pos.Line]) || match(m[d.Pos.Line-1])
}
