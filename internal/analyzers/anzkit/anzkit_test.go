package anzkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const directiveSrc = `package p

//lint:file-ignore wiretags generated file
var a int

//lint:ignore atomicstat,guardedby benign startup read
var b int

//lint:ignore errboundary
var c int

//lint:ignore all refactor tracked in the roadmap
var d int
`

func buildTable(t *testing.T) (*token.FileSet, *ignoreTable) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, buildIgnoreTable(fset, []*ast.File{f})
}

func TestMalformedDirectiveReported(t *testing.T) {
	_, tbl := buildTable(t)
	if len(tbl.malformed) != 1 {
		t.Fatalf("malformed = %v, want exactly the reason-less errboundary directive", tbl.malformed)
	}
	if got := tbl.malformed[0].Pos.Line; got != 9 {
		t.Fatalf("malformed directive reported at line %d, want 9", got)
	}
}

func TestSuppressed(t *testing.T) {
	_, tbl := buildTable(t)
	at := func(line int, analyzer string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: "p.go", Line: line}, Analyzer: analyzer}
	}
	cases := []struct {
		d    Diagnostic
		want bool
		why  string
	}{
		{at(999, "wiretags"), true, "file-ignore covers any line"},
		{at(7, "atomicstat"), true, "directive on the line above"},
		{at(6, "guardedby"), true, "directive on the same line"},
		{at(7, "fsyncrename"), false, "directive names other analyzers"},
		{at(10, "errboundary"), false, "malformed directive must not suppress"},
		{at(13, "errboundary"), true, "'all' suppresses every analyzer"},
		{at(7, "atomicstat"), true, "repeat lookup is stable"},
	}
	for _, c := range cases {
		if got := tbl.suppressed(c.d); got != c.want {
			t.Errorf("suppressed(%s line %d) = %v, want %v (%s)", c.d.Analyzer, c.d.Pos.Line, got, c.want, c.why)
		}
	}
}

func TestParseIgnore(t *testing.T) {
	if names, ok := parseIgnore("atomicstat,guardedby some reason"); !ok || len(names) != 2 {
		t.Fatalf("parseIgnore = %v, %v; want two names, ok", names, ok)
	}
	if _, ok := parseIgnore("atomicstat"); ok {
		t.Fatal("directive without a reason must be rejected")
	}
}
