package anzkit

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package: the unit a Pass runs over.
type Package struct {
	// Path is the import path ("fairdms/internal/stats").
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages without the go command or a
// module proxy: module-internal imports resolve against ModuleRoot,
// GOPATH-style roots (fixture trees) against SrcDirs, and everything else
// — the standard library — from $GOROOT source via go/importer's "source"
// compiler. Loaded packages are cached, so a loader amortizes the cost of
// type-checking shared dependencies across a whole run. Not safe for
// concurrent use.
type Loader struct {
	Fset *token.FileSet
	// ModuleRoot is the directory holding go.mod; ModulePath its module
	// path. Both empty for pure fixture loading.
	ModuleRoot string
	ModulePath string
	// SrcDirs are GOPATH-style source roots searched for import paths that
	// are not module-internal (analysistest fixture trees).
	SrcDirs []string

	base    types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module directory (which must
// contain go.mod, unless empty).
func NewLoader(moduleRoot string) (*Loader, error) {
	l := &Loader{
		Fset:    token.NewFileSet(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.base = importer.ForCompiler(l.Fset, "source", nil).(types.ImporterFrom)
	if moduleRoot == "" {
		return l, nil
	}
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	l.ModuleRoot = abs
	l.ModulePath = modPath
	return l, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("anzkit: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("anzkit: no module directive in %s", gomod)
}

// dirFor resolves an import path to a source directory, or "" when the
// path is not ours to load from source (i.e. standard library).
func (l *Loader) dirFor(path string) string {
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.ModuleRoot
		}
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest))
		}
	}
	for _, src := range l.SrcDirs {
		dir := filepath.Join(src, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir
		}
	}
	return ""
}

// Load parses and type-checks the package at the given import path
// (module-internal or under a SrcDir), returning the cached result on
// repeat calls.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("anzkit: import cycle through %s", path)
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("anzkit: cannot resolve %s to a source directory", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("anzkit: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("anzkit: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the non-test Go files of dir, comments included, in
// stable filename order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("anzkit: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("anzkit: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal and fixture
// paths load from source through this loader (sharing its cache); anything
// else is standard library, resolved from $GOROOT source.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if l.dirFor(path) != "" {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.base.ImportFrom(path, dir, mode)
}
