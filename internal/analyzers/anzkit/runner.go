package anzkit

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// ExpandPatterns resolves package patterns to import paths under the
// loader's module. Supported forms: "./..." and "./dir/..." (recursive),
// "./dir" (single directory), and plain import paths, mirroring the go
// command's spelling. Directories named testdata or vendor, and hidden
// directories, are skipped — the same pruning go build applies.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	if l.ModuleRoot == "" {
		return nil, fmt.Errorf("anzkit: pattern expansion needs a module root")
	}
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		switch {
		case strings.HasSuffix(pat, "/..."):
			rel := strings.TrimSuffix(pat, "/...")
			rel = strings.TrimPrefix(rel, "./")
			if rel == "." {
				rel = ""
			}
			root := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
			err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if !hasGoFiles(p) {
					return nil
				}
				relDir, err := filepath.Rel(l.ModuleRoot, p)
				if err != nil {
					return err
				}
				add(importPathFor(l.ModulePath, relDir))
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("anzkit: expanding %s: %w", pat, err)
			}
		case strings.HasPrefix(pat, "./") || pat == ".":
			rel := strings.TrimPrefix(pat, "./")
			if rel == "." {
				rel = ""
			}
			add(importPathFor(l.ModulePath, filepath.FromSlash(rel)))
		default:
			add(pat)
		}
	}
	return out, nil
}

func importPathFor(modulePath, relDir string) string {
	rel := filepath.ToSlash(relDir)
	if rel == "" || rel == "." {
		return modulePath
	}
	return modulePath + "/" + rel
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// Run loads every package and applies every analyzer to it, returning the
// surviving findings (lint:ignore directives applied) in deterministic
// order. The error return is for infrastructure failures — unresolvable
// packages, type errors, analyzer bugs — never for findings.
func (l *Loader) Run(analyzers []*Analyzer, paths []string) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		ignores := buildIgnoreTable(l.Fset, pkg.Files)
		all = append(all, ignores.malformed...)
		for _, a := range analyzers {
			var found []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     l.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(d Diagnostic) { found = append(found, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("anzkit: analyzer %s on %s: %w", a.Name, path, err)
			}
			for _, d := range found {
				if !ignores.suppressed(d) {
					all = append(all, d)
				}
			}
		}
	}
	sortDiagnostics(all)
	return all, nil
}
