// Package analysistest runs an anzkit analyzer over fixture packages and
// checks its findings against "// want" expectations, replicating the
// golang.org/x/tools/go/analysis/analysistest convention:
//
//	var x = racy // want `accessed atomically elsewhere`
//
// Each want comment carries one or more backquoted regular expressions;
// every reported diagnostic must match a want on its line, and every want
// must be matched by a diagnostic. Fixtures live under
// <testdata>/src/<importpath>/ and may import the standard library and
// each other.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"fairdms/internal/analyzers/anzkit"
)

// Run loads each fixture package from testdata/src and applies the
// analyzer, failing t on any mismatch between findings and want comments.
// It returns the surviving diagnostics for additional assertions.
func Run(t *testing.T, testdata string, a *anzkit.Analyzer, pkgPaths ...string) []anzkit.Diagnostic {
	t.Helper()
	src, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader, err := anzkit.NewLoader("")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader.SrcDirs = []string{src}

	var all []anzkit.Diagnostic
	for _, path := range pkgPaths {
		diags, err := loader.Run([]*anzkit.Analyzer{a}, []string{path})
		if err != nil {
			t.Fatalf("analysistest: running %s on %s: %v", a.Name, path, err)
		}
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		checkWants(t, loader.Fset, pkg.Files, diags)
		all = append(all, diags...)
	}
	return all
}

// expectation is one backquoted regexp from a want comment.
type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("`([^`]*)`")

// checkWants cross-checks diagnostics against the fixture's want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []anzkit.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*expectation) // "file:line" → expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				matches := wantRe.FindAllStringSubmatch(text[idx+len("want "):], -1)
				if len(matches) == 0 {
					t.Errorf("%s: want comment without a backquoted pattern", key)
					continue
				}
				for _, m := range matches {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", key, m[1], err)
						continue
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.rx.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: no diagnostic matching %q", key, exp.rx)
			}
		}
	}
}
