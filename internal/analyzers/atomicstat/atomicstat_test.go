package atomicstat_test

import (
	"testing"

	"fairdms/internal/analyzers/anzkit/analysistest"
	"fairdms/internal/analyzers/atomicstat"
)

func TestAtomicStat(t *testing.T) {
	analysistest.Run(t, "testdata", atomicstat.Analyzer, "a")
}

// TestEscapeHatch checks that a //lint:ignore atomicstat directive
// silences exactly the annotated access and nothing else.
func TestEscapeHatch(t *testing.T) {
	diags := analysistest.Run(t, "testdata", atomicstat.Analyzer, "ignored")
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the unsuppressed one: %v", len(diags), diags)
	}
}

func TestClean(t *testing.T) {
	if diags := analysistest.Run(t, "testdata", atomicstat.Analyzer, "clean"); len(diags) != 0 {
		t.Fatalf("clean fixture produced diagnostics: %v", diags)
	}
}
