// Package atomicstat flags mixed atomic/plain access to the same variable:
// any field or package-level variable whose address is passed to a
// sync/atomic operation anywhere in the package must be accessed through
// sync/atomic everywhere in the package. A single plain read of an
// atomically-written counter is a data race the race detector only catches
// when a test happens to exercise both sides concurrently; this analyzer
// catches it at CI time, unconditionally.
//
// Typed atomics (atomic.Int64 and friends) are immune by construction —
// their value is unreachable except through Load/Store — and are the
// repo's preferred spelling; this analyzer exists for the function-style
// escapes (atomic.AddInt64(&s.n, 1)) that leave the field plainly
// addressable.
package atomicstat

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fairdms/internal/analyzers/anzkit"
)

// Analyzer is the package-level instance registered with fairvet.
var Analyzer = &anzkit.Analyzer{
	Name: "atomicstat",
	Doc:  "variables accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  run,
}

// atomicFuncs are the sync/atomic operations whose first argument is the
// address of the shared variable.
var atomicFuncPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

func isAtomicFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, p := range atomicFuncPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			return true
		}
	}
	return false
}

func run(pass *anzkit.Pass) error {
	// Pass 1: collect every variable whose address feeds a sync/atomic
	// call, remembering the exact operand expressions so pass 2 does not
	// count the atomic sites themselves as plain accesses.
	atomicVars := make(map[types.Object]token.Pos) // var → first atomic site
	atomicOperands := make(map[ast.Expr]bool)      // the x in atomic.AddT(&x, …)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
			if !isAtomicFunc(fn) {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if obj := addressedVar(pass, addr.X); obj != nil {
				if _, seen := atomicVars[obj]; !seen {
					atomicVars[obj] = addr.X.Pos()
				}
				atomicOperands[addr.X] = true
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: flag every other access to those variables.
	for _, f := range pass.Files {
		// Idents that are the Sel of a selector are reported via the
		// selector; skip them in the bare-ident case to avoid doubles.
		selSels := make(map[*ast.Ident]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if s, ok := n.(*ast.SelectorExpr); ok {
				selSels[s.Sel] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			if expr, ok := n.(ast.Expr); ok && atomicOperands[expr] {
				return false // the blessed atomic access itself
			}
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if obj := selectedVar(pass, n); obj != nil {
					if _, yes := atomicVars[obj]; yes {
						report(pass, n.Pos(), obj)
					}
				}
			case *ast.Ident:
				if selSels[n] {
					return true
				}
				obj := pass.Info.Uses[n]
				if obj == nil {
					return true
				}
				if _, yes := atomicVars[obj]; yes {
					report(pass, n.Pos(), obj)
				}
			}
			return true
		})
	}
	return nil
}

func report(pass *anzkit.Pass, pos token.Pos, obj types.Object) {
	pass.Reportf(pos, "%s is accessed with sync/atomic elsewhere in this package; this plain access can race — use sync/atomic (or an atomic.Int64-style field) consistently", obj.Name())
}

// addressedVar resolves the operand of &x in an atomic call to the
// variable (struct field or package-level var) being shared.
func addressedVar(pass *anzkit.Pass, x ast.Expr) types.Object {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		return selectedVar(pass, x)
	case *ast.Ident:
		return pass.Info.Uses[x]
	case *ast.IndexExpr:
		// &arr[i]: per-element atomics (e.g. a bucket array). Track the
		// backing variable so plain whole-array reads are still flagged.
		return addressedVar(pass, x.X)
	}
	return nil
}

// selectedVar resolves x.f to the field variable f, or nil when the
// selector is a method or package-qualified name.
func selectedVar(pass *anzkit.Pass, sel *ast.SelectorExpr) types.Object {
	if s, ok := pass.Info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
		return nil
	}
	// Package-qualified: pkg.Var.
	if _, ok := sel.X.(*ast.Ident); ok {
		if v, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}
