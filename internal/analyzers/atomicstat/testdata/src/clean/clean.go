// Fixture: consistent atomic access and typed atomics — nothing to flag.
package clean

import "sync/atomic"

type counter struct {
	n     int64
	typed atomic.Int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
	c.typed.Add(1)
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.n) + c.typed.Load()
}

var plain int64

func bumpPlain() {
	plain++ // never touched by sync/atomic: plain access is fine
}
