// Fixture: mixed atomic/plain access, both through a struct field and a
// package-level variable. Every plain access is a finding.
package a

import "sync/atomic"

type counter struct {
	n int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return c.n // want `n is accessed with sync/atomic elsewhere`
}

var hits int64

func bump() {
	atomic.AddInt64(&hits, 1)
}

func report() int64 {
	return hits // want `hits is accessed with sync/atomic elsewhere`
}
