// Fixture: the lint:ignore escape hatch. The suppressed access produces
// no diagnostic; the unsuppressed one still does, proving the analyzer
// fires and only the directive silences it.
package ignored

import "sync/atomic"

var gauge int64

func set(v int64) {
	atomic.StoreInt64(&gauge, v)
}

func leak() int64 {
	return gauge // want `gauge is accessed with sync/atomic elsewhere`
}

func boot() int64 {
	//lint:ignore atomicstat runs before any writer goroutine starts
	return gauge
}
