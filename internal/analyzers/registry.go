// Package analyzers collects the repo's fairvet analyzer suite: five
// mechanical checks for the concurrency, durability, and wire-protocol
// conventions PRs 1–5 established but nothing enforced. See
// docs/ANALYZERS.md for each invariant, example diagnostics, and the
// suppression policy.
package analyzers

import (
	"fairdms/internal/analyzers/anzkit"
	"fairdms/internal/analyzers/atomicstat"
	"fairdms/internal/analyzers/errboundary"
	"fairdms/internal/analyzers/fsyncrename"
	"fairdms/internal/analyzers/guardedby"
	"fairdms/internal/analyzers/wiretags"
)

// All returns the full suite in stable order.
func All() []*anzkit.Analyzer {
	return []*anzkit.Analyzer{
		atomicstat.Analyzer,
		errboundary.Analyzer,
		fsyncrename.Analyzer,
		guardedby.Analyzer,
		wiretags.Analyzer,
	}
}
