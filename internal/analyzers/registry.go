// Package analyzers collects the repo's fairvet analyzer suite: six
// mechanical checks for the concurrency, durability, wire-protocol, and
// observability-naming conventions PRs 1–6 established but nothing
// enforced. See docs/ANALYZERS.md for each invariant, example
// diagnostics, and the suppression policy.
package analyzers

import (
	"fairdms/internal/analyzers/anzkit"
	"fairdms/internal/analyzers/atomicstat"
	"fairdms/internal/analyzers/errboundary"
	"fairdms/internal/analyzers/fsyncrename"
	"fairdms/internal/analyzers/guardedby"
	"fairdms/internal/analyzers/obsnames"
	"fairdms/internal/analyzers/wiretags"
)

// All returns the full suite in stable order.
func All() []*anzkit.Analyzer {
	return []*anzkit.Analyzer{
		atomicstat.Analyzer,
		errboundary.Analyzer,
		fsyncrename.Analyzer,
		guardedby.Analyzer,
		obsnames.Analyzer,
		wiretags.Analyzer,
	}
}
