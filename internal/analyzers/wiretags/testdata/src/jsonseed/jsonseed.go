// Fixture: structs flowing into encoding/json calls are wire structs even
// outside types.go, and the check closes over nested struct-typed fields.
package jsonseed

import "encoding/json"

type payload struct {
	ID   string `json:"id"`
	Body string // want `exported field Body has no json tag`
}

type inner struct {
	Val int // want `exported field Val has no json tag`
}

type outer struct {
	ID    string  `json:"id"`
	Items []inner `json:"items"`
}

type untouched struct {
	Free int // never serialized: no tag needed
}

func encode(p payload, o *outer) ([]byte, error) {
	if _, err := json.Marshal(o); err != nil {
		return nil, err
	}
	return json.Marshal(p)
}

func keep(u untouched) int { return u.Free }
