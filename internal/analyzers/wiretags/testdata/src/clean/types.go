// Fixture: a fully, uniquely tagged wire contract.
package clean

type Doc struct {
	ID     string            `json:"id"`
	Fields map[string]string `json:"fields,omitempty"`
	note   string            // unexported: out of the wire contract
	Local  string            `json:"-"`
}

type Page struct {
	Docs  []Doc `json:"docs"`
	Total int   `json:"total"`
}

func use() string { return Doc{note: "x"}.note }
