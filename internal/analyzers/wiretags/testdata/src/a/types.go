// Fixture: structs in a types.go file are wire structs by convention.
package a

type Status struct {
	Name    string `json:"name"`
	Count   int    // want `exported field Count has no json tag`
	Renamed string `json:"name"` // want `json tag "name" on Renamed duplicates`
	Opts    string `json:",omitempty"` // want `has options but no name`
	hidden  int
	Skip    string `json:"-"`
}

// aliases are skipped: the contract belongs to the aliased type.
type StatusAlias = Status

func use() int { return Status{hidden: 1}.hidden }
