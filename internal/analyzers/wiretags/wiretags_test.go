package wiretags_test

import (
	"testing"

	"fairdms/internal/analyzers/anzkit/analysistest"
	"fairdms/internal/analyzers/wiretags"
)

func TestWireTags(t *testing.T) {
	analysistest.Run(t, "testdata", wiretags.Analyzer, "a", "jsonseed")
}

func TestClean(t *testing.T) {
	if diags := analysistest.Run(t, "testdata", wiretags.Analyzer, "clean"); len(diags) != 0 {
		t.Fatalf("clean fixture produced diagnostics: %v", diags)
	}
}
