// Package wiretags enforces the wire contract of JSON-serialized structs:
// every exported, non-embedded field of a wire struct must carry an
// explicit json tag with a non-empty name (or "-"), and tag names must be
// unique within the struct. Implicit field-name fallback is how silent
// wire breaks happen — a rename refactor changes the public API without
// any diff to a tag — so the tags must be spelled out.
//
// A struct counts as a wire struct when it is
//
//   - declared in a file named types.go (the repo convention for wire
//     contracts, e.g. internal/dmsapi/types.go), or
//   - passed to encoding/json (Marshal, MarshalIndent, Unmarshal,
//     Encoder.Encode, Decoder.Decode) anywhere in its package, or
//   - reachable from either through exported struct-typed fields
//     (pointers, slices, arrays, and map values included).
//
// Gob-serialized protocol structs (docstore's wire protocol) are out of
// scope: gob ignores tags.
package wiretags

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"reflect"
	"strings"

	"fairdms/internal/analyzers/anzkit"
)

// Analyzer is the package-level instance registered with fairvet.
var Analyzer = &anzkit.Analyzer{
	Name: "wiretags",
	Doc:  "exported fields of JSON wire structs need explicit, unique json tags",
	Run:  run,
}

// wireFiles are the basenames whose struct declarations are wire structs
// by convention, before any json call-site analysis.
var wireFiles = map[string]bool{"types.go": true, "wire.go": true}

func run(pass *anzkit.Pass) error {
	seeds := make(map[*types.Named]bool)
	collectConventionSeeds(pass, seeds)
	collectJSONSeeds(pass, seeds)
	if len(seeds) == 0 {
		return nil
	}
	// Close over struct-typed fields so nested payload types are held to
	// the same contract as their containers.
	work := make([]*types.Named, 0, len(seeds))
	for n := range seeds {
		work = append(work, n)
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if fn := namedStructOf(pass, st.Field(i).Type()); fn != nil && !seeds[fn] {
				seeds[fn] = true
				work = append(work, fn)
			}
		}
	}
	for n := range seeds {
		checkStruct(pass, n)
	}
	return nil
}

// collectConventionSeeds marks every struct declared in a wire-convention
// file.
func collectConventionSeeds(pass *anzkit.Pass, seeds map[*types.Named]bool) {
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if !wireFiles[name] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Assign.IsValid() { // skip aliases
				return true
			}
			if _, ok := ts.Type.(*ast.StructType); !ok {
				return true
			}
			if obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName); ok {
				if named, ok := obj.Type().(*types.Named); ok {
					seeds[named] = true
				}
			}
			return true
		})
	}
}

// jsonArgIndex maps encoding/json entry points to the index of the
// serialized argument, -1 for "not a serialization call".
func jsonArgIndex(fn *types.Func) int {
	if fn == nil || fn.Pkg() == nil {
		return -1
	}
	switch {
	case fn.Pkg().Path() == "encoding/json":
		switch fn.Name() {
		case "Marshal", "MarshalIndent":
			return 0
		case "Unmarshal":
			return 1
		case "Encode", "Decode": // (*Encoder).Encode / (*Decoder).Decode
			return 0
		}
	}
	return -1
}

// collectJSONSeeds marks package-local named structs flowing into
// encoding/json calls.
func collectJSONSeeds(pass *anzkit.Pass, seeds map[*types.Named]bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
			idx := jsonArgIndex(fn)
			if idx < 0 || idx >= len(call.Args) {
				return true
			}
			tv, ok := pass.Info.Types[call.Args[idx]]
			if !ok {
				return true
			}
			if named := namedStructOf(pass, tv.Type); named != nil {
				seeds[named] = true
			}
			return true
		})
	}
}

// namedStructOf unwraps pointers, slices, arrays, and map values down to a
// named struct type declared in the package under analysis.
func namedStructOf(pass *anzkit.Pass, t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		default:
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() != pass.Pkg {
				return nil
			}
			if _, ok := named.Underlying().(*types.Struct); !ok {
				return nil
			}
			return named
		}
	}
}

// checkStruct verifies one wire struct's tags.
func checkStruct(pass *anzkit.Pass, n *types.Named) {
	st := n.Underlying().(*types.Struct)
	names := make(map[string]string) // tag name → field name
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() || f.Embedded() {
			continue
		}
		tag, ok := reflect.StructTag(st.Tag(i)).Lookup("json")
		if !ok {
			pass.Reportf(f.Pos(), "wire struct %s: exported field %s has no json tag (implicit names break silently on rename)", n.Obj().Name(), f.Name())
			continue
		}
		name, _, _ := strings.Cut(tag, ",")
		if name == "" {
			pass.Reportf(f.Pos(), "wire struct %s: field %s's json tag has options but no name", n.Obj().Name(), f.Name())
			continue
		}
		if name == "-" {
			continue
		}
		if prev, dup := names[name]; dup {
			pass.Reportf(f.Pos(), "wire struct %s: json tag %q on %s duplicates the one on %s", n.Obj().Name(), name, f.Name(), prev)
			continue
		}
		names[name] = f.Name()
	}
}
