// Fixture: lint:ignore suppresses the annotated site only.
package ignored

import "internal/obs"

func register(r *obs.Registry) {
	//lint:ignore obsnames legacy dashboard expects this exact name
	r.Counter("legacy-name", "grandfathered")
	r.Counter("another-bad", "not suppressed") // want `metric name "another-bad" is not lowercase_snake`
}
