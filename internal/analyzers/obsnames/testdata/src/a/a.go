// Fixture: naming violations across registrations and spans.
package a

import (
	"context"

	"internal/obs"
)

func register(r *obs.Registry) {
	r.Counter("good_total", "fine")
	r.Counter("Bad-Name", "uppercase and dash")       // want `metric name "Bad-Name" is not lowercase_snake`
	r.CounterFunc("good_total", "second time", nil)   // want `metric "good_total" is already registered`
	r.CounterVec("vec_total", "fine", "opLabel")      // want `label name "opLabel" is not lowercase_snake`
	r.HistogramVec("lat_seconds", "fine", "endpoint") // clean
	r.Histogram("9starts_with_digit", "bad")          // want `metric name "9starts_with_digit" is not lowercase_snake`
	r.Gauge("dms_slo_budget", "fine")
	r.Gauge("dms_slo_budget", "again")           // want `metric "dms_slo_budget" is already registered`
	r.GaugeVec("dms_slo_burn", "fine", "SLO-ID") // want `label name "SLO-ID" is not lowercase_snake`
}

func spans(ctx context.Context) {
	ctx, _ = obs.StartSpan(ctx, "store_insert")
	_, _ = obs.StartSpan(ctx, "httpRoundtrip") // want `span name "httpRoundtrip" is not lowercase_snake`
	_, _ = obs.StartSpan(ctx, "store_insert")  // repeated span names are fine
}

// dynamic names are out of static reach and left to the runtime check.
func dynamic(r *obs.Registry, name string) {
	r.Counter(name, "runtime-checked")
}
