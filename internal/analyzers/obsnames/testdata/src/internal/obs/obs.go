// Fixture stub of the real internal/obs surface: just enough signatures
// for the analyzer's suffix-matched call-site checks to resolve.
package obs

import "context"

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type CounterVec struct{}
type GaugeVec struct{}
type HistogramVec struct{}
type Span struct{}

func (r *Registry) Counter(name, help string) *Counter                  { return nil }
func (r *Registry) CounterFunc(name, help string, fn func() int64)      {}
func (r *Registry) Gauge(name, help string) *Gauge                      { return nil }
func (r *Registry) GaugeFunc(name, help string, fn func() float64)      {}
func (r *Registry) Histogram(name, help string) *Histogram              { return nil }
func (r *Registry) CounterVec(name, help, label string) *CounterVec     { return nil }
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec         { return nil }
func (r *Registry) HistogramVec(name, help, label string) *HistogramVec { return nil }

func (v *CounterVec) With(value string) *Counter { return nil }
func (v *GaugeVec) With(value string) *Gauge     { return nil }

func StartSpan(ctx context.Context, name string) (context.Context, *Span) { return ctx, nil }
