// Fixture: conforming names — nothing to flag. The vector's With value is
// a label value, not a name, so any string goes.
package clean

import (
	"context"

	"internal/obs"
)

func register(r *obs.Registry) {
	r.Counter("dms_requests_total", "requests handled")
	r.GaugeFunc("dms_in_flight", "requests in flight", nil)
	v := r.CounterVec("dms_endpoint_errors_total", "errors by endpoint", "endpoint")
	v.With("data.ingest")
}

// The fleet-observability families follow the same contract: federation
// aggregates under dms_fleet_*, SLO burn rates under dms_slo_*.
func registerFleet(r *obs.Registry) {
	r.Counter("dms_fleet_requests_total", "fleet-wide requests")
	g := r.GaugeVec("dms_fleet_in_flight", "in-flight by stat", "stat")
	g.With("mean")
	r.GaugeVec("dms_slo_fast_burn", "fast-window burn rate", "objective")
	r.CounterVec("dms_slo_breaches_total", "fast-burn breaches observed", "objective")
	r.Gauge("dms_slo_budget_seconds", "example settable gauge")
}

func spans(ctx context.Context) {
	ctx, _ = obs.StartSpan(ctx, "request")
	_, _ = obs.StartSpan(ctx, "index_probe")
}
