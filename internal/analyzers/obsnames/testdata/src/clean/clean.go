// Fixture: conforming names — nothing to flag. The vector's With value is
// a label value, not a name, so any string goes.
package clean

import (
	"context"

	"internal/obs"
)

func register(r *obs.Registry) {
	r.Counter("dms_requests_total", "requests handled")
	r.GaugeFunc("dms_in_flight", "requests in flight", nil)
	v := r.CounterVec("dms_endpoint_errors_total", "errors by endpoint", "endpoint")
	v.With("data.ingest")
}

func spans(ctx context.Context) {
	ctx, _ = obs.StartSpan(ctx, "request")
	_, _ = obs.StartSpan(ctx, "index_probe")
}
