package obsnames_test

import (
	"testing"

	"fairdms/internal/analyzers/anzkit/analysistest"
	"fairdms/internal/analyzers/obsnames"
)

func TestObsNames(t *testing.T) {
	analysistest.Run(t, "testdata", obsnames.Analyzer, "a")
}

func TestClean(t *testing.T) {
	if diags := analysistest.Run(t, "testdata", obsnames.Analyzer, "clean"); len(diags) != 0 {
		t.Fatalf("clean fixture produced diagnostics: %v", diags)
	}
}

// TestEscapeHatch checks that a //lint:ignore obsnames directive silences
// exactly the annotated registration and nothing else.
func TestEscapeHatch(t *testing.T) {
	diags := analysistest.Run(t, "testdata", obsnames.Analyzer, "ignored")
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the unsuppressed one: %v", len(diags), diags)
	}
}
