// Package obsnames enforces the observability naming contract of
// internal/obs (see docs/OBSERVABILITY.md): every metric, label, and span
// name handed to the obs API as a string literal must be lowercase_snake
// ([a-z][a-z0-9_]*), and a metric name must be registered at most once per
// package. The registry panics on both violations at runtime — but a
// scrape-path panic fires at first scrape, not first test, so this
// analyzer moves the failure to CI time. Dynamic (non-literal) names are
// out of static reach and left to the runtime check.
package obsnames

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"fairdms/internal/analyzers/anzkit"
	"fairdms/internal/obs"
)

// Analyzer is the package-level instance registered with fairvet.
var Analyzer = &anzkit.Analyzer{
	Name: "obsnames",
	Doc:  "obs metric/span names must be lowercase_snake and each metric registered once per package",
	Run:  run,
}

// nameArg maps obs call names to the index of their name argument.
// Registration calls additionally participate in the once-per-package
// check; StartSpan names recur freely (one per request).
var registrations = map[string]int{
	"Counter":      0,
	"CounterFunc":  0,
	"Gauge":        0,
	"GaugeFunc":    0,
	"Histogram":    0,
	"CounterVec":   0,
	"GaugeVec":     0,
	"HistogramVec": 0,
}

// labelArg is the label-name position of the vector registrations.
var labelArg = map[string]int{
	"CounterVec":   2,
	"GaugeVec":     2,
	"HistogramVec": 2,
}

func run(pass *anzkit.Pass) error {
	registered := make(map[string]token.Position) // metric name → first site
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/obs") {
				return true
			}
			switch {
			case fn.Name() == "StartSpan":
				if name, pos, ok := literalArg(call, 1); ok && !obs.ValidName(name) {
					pass.Reportf(pos, "span name %q is not lowercase_snake ([a-z][a-z0-9_]*)", name)
				}
			default:
				idx, isReg := registrations[fn.Name()]
				if !isReg {
					return true
				}
				if li, pos, ok := literalArg(call, labelArg[fn.Name()]); ok && labelArg[fn.Name()] > 0 && !obs.ValidName(li) {
					pass.Reportf(pos, "label name %q is not lowercase_snake ([a-z][a-z0-9_]*)", li)
				}
				name, pos, ok := literalArg(call, idx)
				if !ok {
					return true
				}
				if !obs.ValidName(name) {
					pass.Reportf(pos, "metric name %q is not lowercase_snake ([a-z][a-z0-9_]*)", name)
					return true
				}
				if first, dup := registered[name]; dup {
					pass.Reportf(pos, "metric %q is already registered at %s; a second registration panics at runtime", name, first)
					return true
				}
				registered[name] = pass.Fset.Position(call.Pos())
			}
			return true
		})
	}
	return nil
}

// literalArg extracts call argument i when it is a string literal.
func literalArg(call *ast.CallExpr, i int) (string, token.Pos, bool) {
	if i < 0 || i >= len(call.Args) {
		return "", token.NoPos, false
	}
	lit, ok := call.Args[i].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", token.NoPos, false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", token.NoPos, false
	}
	return s, lit.Pos(), true
}

func calleeFunc(pass *anzkit.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}
