// Fixture service package: the "internal" dependency whose errors the
// handler package must map at the boundary.
package svc

import "errors"

// ErrMissing is the sentinel the handler package must map to 404.
var ErrMissing = errors.New("svc: missing")

// Fetch returns the value for id, or ErrMissing.
func Fetch(id string) (string, error) {
	if id == "" {
		return "", ErrMissing
	}
	return "value-" + id, nil
}
