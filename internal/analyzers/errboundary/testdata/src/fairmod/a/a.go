// Fixture handler package violating all three boundary rules: a raw
// internal return, an http.Error call, and a never-mapped sentinel.
package a

import (
	"net/http"

	"fairmod/svc"
)

type server struct{}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) error { // want `never maps fairmod/svc\.ErrMissing`
	val, err := svc.Fetch(r.URL.Query().Get("id"))
	if err != nil {
		return err // want `returns the raw error from fairmod/svc\.Fetch`
	}
	_, werr := w.Write([]byte(val))
	return werr
}

func (s *server) handlePing(w http.ResponseWriter, r *http.Request) error {
	http.Error(w, "nope", http.StatusTeapot) // want `http\.Error writes a plain-text body`
	return nil
}
