// Fixture handler package violating all four boundary rules: a raw
// internal return, an http.Error call, a never-mapped sentinel, and an
// ad-hoc error status written outside an envelope helper.
package a

import (
	"net/http"

	"fairmod/svc"
)

type server struct{}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) error { // want `never maps fairmod/svc\.ErrMissing`
	val, err := svc.Fetch(r.URL.Query().Get("id"))
	if err != nil {
		return err // want `returns the raw error from fairmod/svc\.Fetch`
	}
	_, werr := w.Write([]byte(val))
	return werr
}

func (s *server) handlePing(w http.ResponseWriter, r *http.Request) error {
	http.Error(w, "nope", http.StatusTeapot) // want `http\.Error writes a plain-text body`
	return nil
}

func (s *server) handleFail(w http.ResponseWriter, r *http.Request) error {
	w.WriteHeader(http.StatusInternalServerError) // want `ad-hoc WriteHeader\(500\) in handleFail bypasses the JSON error envelope`
	w.Write([]byte("boom"))
	return nil
}
