// Fixture handler package that respects the boundary: the sentinel is
// mapped with errors.Is and every failure goes through the JSON writer.
package ok

import (
	"encoding/json"
	"errors"
	"net/http"

	"fairmod/svc"
)

func writeErr(w http.ResponseWriter, status int, msg string) {
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// writeError is an envelope writer by name: a constant error status
// inside it is the sanctioned path, not an ad-hoc escape.
func writeError(w http.ResponseWriter, msg string) {
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func handlePost(w http.ResponseWriter, r *http.Request) error {
	if r.URL.Query().Get("id") == "" {
		writeError(w, "missing id")
		return nil
	}
	w.WriteHeader(http.StatusAccepted) // non-error statuses stay free-form
	return nil
}

func handleGet(w http.ResponseWriter, r *http.Request) error {
	val, err := svc.Fetch(r.URL.Query().Get("id"))
	if err != nil {
		if errors.Is(err, svc.ErrMissing) {
			writeErr(w, http.StatusNotFound, "no such id")
			return nil
		}
		writeErr(w, http.StatusInternalServerError, "internal error")
		return nil
	}
	_, werr := w.Write([]byte(val))
	return werr
}
