// Fixture handler package that respects the boundary: the sentinel is
// mapped with errors.Is and every failure goes through the JSON writer.
package ok

import (
	"encoding/json"
	"errors"
	"net/http"

	"fairmod/svc"
)

func writeErr(w http.ResponseWriter, status int, msg string) {
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func handleGet(w http.ResponseWriter, r *http.Request) error {
	val, err := svc.Fetch(r.URL.Query().Get("id"))
	if err != nil {
		if errors.Is(err, svc.ErrMissing) {
			writeErr(w, http.StatusNotFound, "no such id")
			return nil
		}
		writeErr(w, http.StatusInternalServerError, "internal error")
		return nil
	}
	_, werr := w.Write([]byte(val))
	return werr
}
