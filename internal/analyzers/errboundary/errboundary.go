// Package errboundary enforces the HTTP error boundary of handler
// packages (internal/dmsapi): internal errors must be mapped to explicit
// HTTP statuses at the boundary, never leaked raw to clients. A handler is
// any function or method with the repo's handler shape,
//
//	func (…) handleX(w http.ResponseWriter, r *http.Request) error
//
// and a package containing at least one handler is held to three rules:
//
//  1. No raw internal returns: a handler must not `return err` bare when
//     err's nearest preceding assignment came from another package of this
//     module (a service call). Such errors must pass through a mapping
//     (errf, serviceError, an errors.Is switch) that picks the status and
//     the client-safe message.
//  2. No http.Error: plain-text error bodies bypass the package's JSON
//     error writer; every failure must go through the boundary's encoder.
//  3. Sentinel coverage: for each known sentinel (fairds.ErrNotFitted,
//     trainer.ErrQueueFull, trainer.ErrShutdown, fairms.ErrDuplicateID),
//     a package that calls error-returning functions of the sentinel's
//     package must map it with errors.Is somewhere — deleting the mapping
//     turns a typed 409/429/503 into an anonymous 500.
//  4. Envelope helper only: an error status (WriteHeader with a constant
//     >= 400) may be written only inside an envelope writer — a function
//     named writeError, WriteError, or WriteStatusError. An ad-hoc
//     WriteHeader(500) elsewhere ships a body without the unified
//     {"error": {code, message, retryable}} envelope, which clients and
//     the cluster router parse.
package errboundary

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"fairdms/internal/analyzers/anzkit"
)

// A Sentinel names one error value handlers must map, identified by the
// trailing part of its package's import path (suffix match keeps fixture
// modules testable).
type Sentinel struct {
	PkgSuffix string // e.g. "internal/fairds"
	Name      string // e.g. "ErrNotFitted"
	Status    string // documented target, e.g. "409 Conflict"
}

// Config parameterizes the analyzer; tests inject fixture sentinels.
type Config struct {
	Sentinels []Sentinel
}

// DefaultConfig is the repo's boundary contract.
var DefaultConfig = Config{
	Sentinels: []Sentinel{
		{PkgSuffix: "internal/fairds", Name: "ErrNotFitted", Status: "409 Conflict"},
		{PkgSuffix: "internal/trainer", Name: "ErrQueueFull", Status: "429 Too Many Requests"},
		{PkgSuffix: "internal/trainer", Name: "ErrShutdown", Status: "503 Service Unavailable"},
		{PkgSuffix: "internal/fairms", Name: "ErrDuplicateID", Status: "409 Conflict"},
		{PkgSuffix: "internal/obs", Name: "ErrDisabled", Status: "404 Not Found"},
	},
}

// Analyzer is the package-level instance registered with fairvet.
var Analyzer = NewAnalyzer(DefaultConfig)

// NewAnalyzer builds an errboundary analyzer over a sentinel contract.
func NewAnalyzer(cfg Config) *anzkit.Analyzer {
	return &anzkit.Analyzer{
		Name: "errboundary",
		Doc:  "HTTP handlers must map internal errors (and known sentinels) to statuses, not leak them raw",
		Run:  func(pass *anzkit.Pass) error { return run(pass, cfg) },
	}
}

func run(pass *anzkit.Pass, cfg Config) error {
	handlers := collectHandlers(pass)
	if len(handlers) == 0 {
		return nil
	}
	for _, fd := range handlers {
		checkRawReturns(pass, fd)
	}
	checkHTTPError(pass)
	checkAdHocStatus(pass)
	checkSentinels(pass, cfg, handlers[0])
	return nil
}

// collectHandlers finds handler-shaped functions: parameters
// (http.ResponseWriter, *http.Request), single error result.
func collectHandlers(pass *anzkit.Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if sig.Params().Len() != 2 || sig.Results().Len() != 1 {
				continue
			}
			if !isNetHTTP(sig.Params().At(0).Type(), "ResponseWriter", false) ||
				!isNetHTTP(sig.Params().At(1).Type(), "Request", true) {
				continue
			}
			if !types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type()) {
				continue
			}
			out = append(out, fd)
		}
	}
	return out
}

func isNetHTTP(t types.Type, name string, ptr bool) bool {
	if ptr {
		p, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == name
}

// moduleOf returns the leading path segment ("fairdms" for
// "fairdms/internal/dmsapi"), the cheap module identity shared by every
// internal package.
func moduleOf(path string) string {
	seg, _, _ := strings.Cut(path, "/")
	return seg
}

// checkRawReturns flags `return err` where err's nearest preceding
// assignment in the handler is a call into another package of this module.
func checkRawReturns(pass *anzkit.Pass, fd *ast.FuncDecl) {
	module := moduleOf(pass.Pkg.Path())

	// taints: positions of assignments whose RHS is an internal
	// cross-package call, per assigned error object.
	taints := make(map[types.Object][]taint)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass, call)
		internal := callee != nil && callee.Pkg() != nil &&
			callee.Pkg() != pass.Pkg && moduleOf(callee.Pkg().Path()) == module
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Info.ObjectOf(id)
			if obj == nil || !types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
				continue
			}
			t := taint{pos: as.Pos(), internal: internal}
			if internal {
				t.callee = callee.Pkg().Path() + "." + callee.Name()
			}
			taints[obj] = append(taints[obj], t)
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		id, ok := ret.Results[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		// Nearest assignment before this return decides the error's origin.
		var last *taint
		for i := range taints[obj] {
			t := &taints[obj][i]
			if t.pos < ret.Pos() && (last == nil || t.pos > last.pos) {
				last = t
			}
		}
		if last != nil && last.internal {
			pass.Reportf(ret.Pos(), "handler %s returns the raw error from %s to the client; map it to an HTTP status (errf/serviceError) at the boundary", fd.Name.Name, last.callee)
		}
		return true
	})
}

type taint struct {
	pos      token.Pos
	internal bool
	callee   string
}

func calleeFunc(pass *anzkit.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

// checkHTTPError flags http.Error calls anywhere in a handler package.
func checkHTTPError(pass *anzkit.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "Error" {
				pass.Reportf(call.Pos(), "http.Error writes a plain-text body, bypassing the JSON error boundary; use the package's error writer")
			}
			return true
		})
	}
}

// envelopeWriters are the function names allowed to write error
// statuses directly: the package-local helper and the shared dmsapi
// envelope writers it delegates to.
var envelopeWriters = map[string]bool{
	"writeError":       true,
	"WriteError":       true,
	"WriteStatusError": true,
}

// checkAdHocStatus flags WriteHeader calls with a constant status >= 400
// outside an envelope writer (rule 4).
func checkAdHocStatus(pass *anzkit.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || envelopeWriters[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				fn := calleeFunc(pass, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" || fn.Name() != "WriteHeader" {
					return true
				}
				tv, ok := pass.Info.Types[call.Args[0]]
				if !ok || tv.Value == nil {
					return true
				}
				if status, ok := constant.Int64Val(tv.Value); ok && status >= 400 {
					pass.Reportf(call.Pos(), "ad-hoc WriteHeader(%d) in %s bypasses the JSON error envelope; route the failure through writeError/WriteError", status, fd.Name.Name)
				}
				return true
			})
		}
	}
}

// checkSentinels verifies every applicable sentinel is mapped with
// errors.Is somewhere in the package.
func checkSentinels(pass *anzkit.Pass, cfg Config, anchor *ast.FuncDecl) {
	callsInto := make(map[string]bool) // pkg path suffix key: calls error-returning fn of that pkg
	mapped := make(map[string]bool)    // "suffix.Name" mapped via errors.Is
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "errors" && fn.Name() == "Is" && len(call.Args) == 2 {
				if obj := exprObject(pass, call.Args[1]); obj != nil && obj.Pkg() != nil {
					for _, s := range cfg.Sentinels {
						if obj.Name() == s.Name && strings.HasSuffix(obj.Pkg().Path(), s.PkgSuffix) {
							mapped[s.PkgSuffix+"."+s.Name] = true
						}
					}
				}
				return true
			}
			if fn.Pkg() != pass.Pkg && returnsError(fn) {
				for _, s := range cfg.Sentinels {
					if strings.HasSuffix(fn.Pkg().Path(), s.PkgSuffix) {
						callsInto[s.PkgSuffix] = true
					}
				}
			}
			return true
		})
	}
	for _, s := range cfg.Sentinels {
		if callsInto[s.PkgSuffix] && !mapped[s.PkgSuffix+"."+s.Name] {
			pass.Reportf(anchor.Pos(), "handler package calls %s but never maps %s.%s (→ %s) with errors.Is; clients would see an anonymous 500", s.PkgSuffix, s.PkgSuffix, s.Name, s.Status)
		}
	}
}

func exprObject(pass *anzkit.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return pass.Info.Uses[e.Sel]
	case *ast.Ident:
		return pass.Info.ObjectOf(e)
	}
	return nil
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}
