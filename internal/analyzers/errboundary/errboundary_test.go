package errboundary_test

import (
	"testing"

	"fairdms/internal/analyzers/anzkit/analysistest"
	"fairdms/internal/analyzers/errboundary"
)

// fixtureAnalyzer swaps the repo's sentinel contract for the fixture
// module's, exercising the same code paths over a tiny dependency graph.
var fixtureAnalyzer = errboundary.NewAnalyzer(errboundary.Config{
	Sentinels: []errboundary.Sentinel{
		{PkgSuffix: "fairmod/svc", Name: "ErrMissing", Status: "404 Not Found"},
	},
})

func TestErrBoundary(t *testing.T) {
	analysistest.Run(t, "testdata", fixtureAnalyzer, "fairmod/a")
}

func TestClean(t *testing.T) {
	if diags := analysistest.Run(t, "testdata", fixtureAnalyzer, "fairmod/ok"); len(diags) != 0 {
		t.Fatalf("clean fixture produced diagnostics: %v", diags)
	}
}
