// Package fsyncrename enforces crash-safe persistence: code that writes
// files must follow the tmp+fsync+rename discipline the repo's snapshot
// paths rely on (docstore.Store.Save, fairms.Zoo.Save — now factored into
// internal/fsx). Concretely, per function:
//
//   - os.WriteFile is always flagged: it cannot fsync, so a crash after
//     rename (or mid-write, without a rename) can surface a truncated or
//     empty file. Use fsx.WriteFileAtomic.
//   - os.Create is flagged unless the same function also calls
//     (*os.File).Sync and os.Rename — the full atomic-replace shape. Use
//     fsx.WriteAtomic, or keep all three steps together.
//   - os.OpenFile for writing is flagged unless the function also calls
//     Sync (append-style logs need durability too, but not rename).
//
// Read-only opens (os.Open, os.OpenFile with O_RDONLY) are exempt, and a
// call to (*wal.Log).Append counts as a durable-write sink (the WAL owns
// the fsync discipline per its policy), as does File.Sync on the fsx.File
// interface. The legitimate homes for the raw pattern are internal/fsx
// and internal/wal; anything else needs a
// `//lint:ignore fsyncrename <reason>` with a justification.
package fsyncrename

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"strings"

	"fairdms/internal/analyzers/anzkit"
)

// Analyzer is the package-level instance registered with fairvet.
var Analyzer = &anzkit.Analyzer{
	Name: "fsyncrename",
	Doc:  "file writes must follow the tmp+fsync+rename pattern (use internal/fsx helpers)",
	Run:  run,
}

func run(pass *anzkit.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

type writeSite struct {
	call *ast.CallExpr
	kind string // "create" or "openfile"
}

func checkFunc(pass *anzkit.Pass, fd *ast.FuncDecl) {
	var sites []writeSite
	hasSync, hasRename := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "os" && fn.Name() == "WriteFile":
			pass.Reportf(call.Pos(), "os.WriteFile cannot fsync and is not crash-safe; use fsx.WriteFileAtomic (tmp+fsync+rename)")
		case fn.Pkg().Path() == "os" && fn.Name() == "Create":
			sites = append(sites, writeSite{call, "create"})
		case fn.Pkg().Path() == "os" && fn.Name() == "OpenFile":
			if openFileWrites(pass, call) {
				sites = append(sites, writeSite{call, "openfile"})
			}
		case fn.Pkg().Path() == "os" && fn.Name() == "Rename":
			hasRename = true
		case fn.Name() == "Sync" && (isOSFileMethod(fn) || isRepoFSMethod(fn, "internal/fsx")):
			hasSync = true
		case fn.Name() == "Append" && isRepoFSMethod(fn, "internal/wal"):
			// The WAL owns the fsync discipline (per its policy), so handing
			// bytes to it is this function's durable-write sink.
			hasSync = true
		}
		return true
	})
	for _, s := range sites {
		switch {
		case s.kind == "create" && (!hasSync || !hasRename):
			pass.Reportf(s.call.Pos(), "os.Create outside the tmp+fsync+rename pattern (%s missing in %s); use fsx.WriteAtomic", missing(hasSync, hasRename), fd.Name.Name)
		case s.kind == "openfile" && !hasSync:
			pass.Reportf(s.call.Pos(), "os.OpenFile for writing without a Sync in %s; durable writes must fsync", fd.Name.Name)
		}
	}
}

func missing(hasSync, hasRename bool) string {
	var parts []string
	if !hasSync {
		parts = append(parts, "Sync")
	}
	if !hasRename {
		parts = append(parts, "Rename")
	}
	return strings.Join(parts, " and ")
}

// isRepoFSMethod reports whether fn belongs to one of the repo's
// durability packages, matched by import-path suffix (e.g. "internal/fsx"
// catches both fairdms/internal/fsx and a vendored rename). Interface
// methods (fsx.File.Sync) carry their defining package, so they match too.
func isRepoFSMethod(fn *types.Func, suffix string) bool {
	return fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), suffix)
}

// isOSFileMethod reports whether fn is a method on *os.File.
func isOSFileMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}

// openFileWrites reports whether an os.OpenFile call opens for writing.
// When the flag argument is not a compile-time constant, it is assumed to
// write (conservative).
func openFileWrites(pass *anzkit.Pass, call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return true
	}
	tv, ok := pass.Info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return true
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return true
	}
	const writeBits = os.O_WRONLY | os.O_RDWR | os.O_APPEND | os.O_CREATE | os.O_TRUNC
	return v&int64(writeBits) != 0
}
