// Fixture: the three non-crash-safe write shapes, one finding each.
package a

import "os"

func saveNaive(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `cannot fsync`
}

func saveHalf(path string, data []byte) error {
	f, err := os.Create(path) // want `os\.Create outside`
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

func appendLog(path string, line []byte) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644) // want `without a Sync`
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(line)
	return err
}
