// Fixture: the full tmp+fsync+rename shape, a durable append (OpenFile +
// Sync), and read-only opens — none are findings.
package clean

import (
	"io"
	"os"
)

func saveAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func appendDurable(path string, line []byte) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(line); err != nil {
		return err
	}
	return f.Sync()
}

func readBack(path string) ([]byte, error) {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
