// Fixture: the full tmp+fsync+rename shape, a durable append (OpenFile +
// Sync), a WAL-backed write (wal.Append is the durable sink), and
// read-only opens — none are findings.
package clean

import (
	"io"
	"os"

	"internal/wal"
)

func saveAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func appendDurable(path string, line []byte) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(line); err != nil {
		return err
	}
	return f.Sync()
}

func spillWithWAL(l *wal.Log, path string, line []byte) error {
	// The scratch copy need not be synced: handing the bytes to the WAL is
	// the durable write, and the log owns the fsync discipline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(line); err != nil {
		return err
	}
	_, err = l.Append(line)
	return err
}

func readBack(path string) ([]byte, error) {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
