// Fixture stub of the real internal/wal surface: just enough for the
// analyzer's suffix-matched durable-sink check to resolve.
package wal

type Log struct{}

func (l *Log) Append(payload []byte) (uint64, error) { return 0, nil }
