package fsyncrename_test

import (
	"testing"

	"fairdms/internal/analyzers/anzkit/analysistest"
	"fairdms/internal/analyzers/fsyncrename"
)

func TestFsyncRename(t *testing.T) {
	analysistest.Run(t, "testdata", fsyncrename.Analyzer, "a")
}

func TestClean(t *testing.T) {
	if diags := analysistest.Run(t, "testdata", fsyncrename.Analyzer, "clean"); len(diags) != 0 {
		t.Fatalf("clean fixture produced diagnostics: %v", diags)
	}
}
