package transfer

import (
	"context"
	"testing"
	"time"
)

func TestEndpointPutGetIsolated(t *testing.T) {
	e := NewEndpoint("aps")
	data := []byte{1, 2, 3}
	e.Put("scan", data)
	data[0] = 99 // caller mutation must not reach the store
	got, err := e.Get("scan")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("Put did not copy the blob")
	}
	got[1] = 99 // returned copy must not alias the store
	again, _ := e.Get("scan")
	if again[1] != 2 {
		t.Fatal("Get did not copy the blob")
	}
	if !e.Has("scan") || e.Has("nope") {
		t.Fatal("Has wrong")
	}
	e.Delete("scan")
	if e.Has("scan") {
		t.Fatal("Delete failed")
	}
}

func TestGetMissingBlob(t *testing.T) {
	e := NewEndpoint("x")
	if _, err := e.Get("missing"); err == nil {
		t.Fatal("expected error for missing blob")
	}
}

func TestLinkDuration(t *testing.T) {
	l := Link{Bandwidth: 1000, Latency: 10 * time.Millisecond}
	// 500 bytes at 1000 B/s = 500 ms + 10 ms latency.
	want := 510 * time.Millisecond
	if got := l.Duration(500); got != want {
		t.Fatalf("Duration = %v, want %v", got, want)
	}
	// Zero bandwidth degenerates to latency only.
	if got := (Link{Latency: time.Second}).Duration(100); got != time.Second {
		t.Fatalf("degenerate link = %v", got)
	}
}

func TestTransferMovesBlobAndModelsTime(t *testing.T) {
	s := NewService(0) // no sleeping in tests
	src := NewEndpoint("facility")
	dst := NewEndpoint("hpc")
	s.SetLink("facility", "hpc", Link{Bandwidth: 1e6, Latency: time.Millisecond})

	payload := make([]byte, 2_000_000)
	src.Put("dataset", payload)
	res, err := s.Transfer(context.Background(), src, dst, "dataset")
	if err != nil {
		t.Fatal(err)
	}
	if !dst.Has("dataset") {
		t.Fatal("blob not delivered")
	}
	if res.Bytes != len(payload) {
		t.Fatalf("Bytes = %d", res.Bytes)
	}
	// 2 MB at 1 MB/s = 2 s + 1 ms.
	want := 2*time.Second + time.Millisecond
	if res.Modeled != want {
		t.Fatalf("Modeled = %v, want %v", res.Modeled, want)
	}
	if res.Slept != 0 {
		t.Fatalf("Slept = %v with TimeScale 0", res.Slept)
	}
}

func TestTransferTimeScaleSleeps(t *testing.T) {
	s := NewService(0.001)
	src := NewEndpoint("a")
	dst := NewEndpoint("b")
	s.SetLink("a", "b", Link{Bandwidth: 1e3, Latency: 0})
	src.Put("x", make([]byte, 10_000)) // modeled: 10 s → slept: 10 ms
	start := time.Now()
	res, err := s.Transfer(context.Background(), src, dst, "x")
	if err != nil {
		t.Fatal(err)
	}
	if res.Slept < 5*time.Millisecond {
		t.Fatalf("Slept = %v, want ≈ 10 ms", res.Slept)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("wall time %v too short to have slept", elapsed)
	}
}

func TestTransferMissingBlobFails(t *testing.T) {
	s := NewService(0)
	if _, err := s.Transfer(context.Background(), NewEndpoint("a"), NewEndpoint("b"), "ghost"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTransferCancellation(t *testing.T) {
	s := NewService(1) // full-speed simulation
	src := NewEndpoint("a")
	dst := NewEndpoint("b")
	s.SetLink("a", "b", Link{Bandwidth: 1, Latency: 0}) // 1 B/s: very slow
	src.Put("big", make([]byte, 100))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := s.Transfer(ctx, src, dst, "big"); err == nil {
		t.Fatal("expected cancellation")
	}
	if dst.Has("big") {
		t.Fatal("canceled transfer must not deliver")
	}
}

func TestTransferAllConcurrent(t *testing.T) {
	s := NewService(0)
	src := NewEndpoint("a")
	dst := NewEndpoint("b")
	names := []string{"m0", "m1", "m2", "m3"}
	for _, n := range names {
		src.Put(n, []byte(n))
	}
	results, err := s.TransferAll(context.Background(), src, dst, names)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Name != names[i] {
			t.Fatalf("result %d is %s", i, r.Name)
		}
		if !dst.Has(names[i]) {
			t.Fatalf("blob %s missing at destination", names[i])
		}
	}
	// IDs are unique.
	seen := map[int64]bool{}
	for _, r := range results {
		if seen[r.ID] {
			t.Fatal("duplicate transfer ID")
		}
		seen[r.ID] = true
	}
}

func TestTransferAllReportsError(t *testing.T) {
	s := NewService(0)
	src := NewEndpoint("a")
	dst := NewEndpoint("b")
	src.Put("ok", []byte{1})
	if _, err := s.TransferAll(context.Background(), src, dst, []string{"ok", "missing"}); err == nil {
		t.Fatal("expected error for missing blob")
	}
}

func TestDefaultLinkUsedWhenUnset(t *testing.T) {
	s := NewService(0)
	src := NewEndpoint("a")
	dst := NewEndpoint("b")
	src.Put("x", make([]byte, 1024))
	res, err := s.Transfer(context.Background(), src, dst, "x")
	if err != nil {
		t.Fatal(err)
	}
	if res.Modeled <= 0 {
		t.Fatalf("Modeled = %v", res.Modeled)
	}
}
