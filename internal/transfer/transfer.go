// Package transfer is fairDMS's stand-in for Globus transfer
// (paper §III-C): it moves named byte blobs between in-memory endpoints
// over links with a configured bandwidth and latency, sleeping a scaled
// simulated duration so end-to-end workflow timings include data-movement
// cost. Endpoints model the experimental facility and the compute cluster.
//
// Pair with internal/flow and internal/funcx, which orchestrate and
// execute the work these transfers feed.
package transfer

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Endpoint is a named in-memory object store (a simulated filesystem).
type Endpoint struct {
	Name string

	mu    sync.RWMutex
	blobs map[string][]byte
}

// NewEndpoint returns an empty endpoint.
func NewEndpoint(name string) *Endpoint {
	return &Endpoint{Name: name, blobs: make(map[string][]byte)}
}

// Put stores a blob under name (copying it).
func (e *Endpoint) Put(name string, data []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.blobs[name] = append([]byte(nil), data...)
}

// Get returns a copy of the named blob.
func (e *Endpoint) Get(name string) ([]byte, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	b, ok := e.blobs[name]
	if !ok {
		return nil, fmt.Errorf("transfer: blob %q not found on endpoint %q", name, e.Name)
	}
	return append([]byte(nil), b...), nil
}

// Has reports whether the named blob exists.
func (e *Endpoint) Has(name string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.blobs[name]
	return ok
}

// Delete removes the named blob if present.
func (e *Endpoint) Delete(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.blobs, name)
}

// Link models a network path between two endpoints.
type Link struct {
	Bandwidth float64       // bytes per second (required > 0)
	Latency   time.Duration // per-transfer setup latency
}

// Duration returns the simulated wall time to move size bytes.
func (l Link) Duration(size int) time.Duration {
	if l.Bandwidth <= 0 {
		return l.Latency
	}
	return l.Latency + time.Duration(float64(size)/l.Bandwidth*float64(time.Second))
}

// Service routes transfers between endpoints. TimeScale compresses
// simulated time: a TimeScale of 0.01 sleeps 1% of the modeled duration
// while still reporting the full modeled duration in results.
type Service struct {
	TimeScale float64

	mu     sync.RWMutex
	links  map[string]Link
	nextID atomic.Int64
}

// NewService returns a service with the given time compression
// (values <= 0 mean "do not sleep at all").
func NewService(timeScale float64) *Service {
	return &Service{TimeScale: timeScale, links: make(map[string]Link)}
}

func linkKey(src, dst string) string { return src + "→" + dst }

// SetLink configures the link from src to dst endpoints (directional).
func (s *Service) SetLink(src, dst string, l Link) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.links[linkKey(src, dst)] = l
}

// linkFor returns the configured link or a default fast LAN link.
func (s *Service) linkFor(src, dst string) Link {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if l, ok := s.links[linkKey(src, dst)]; ok {
		return l
	}
	return Link{Bandwidth: 12.5e9, Latency: 100 * time.Microsecond} // 100 Gb/s
}

// Result describes a completed transfer.
type Result struct {
	ID       int64
	Name     string
	Bytes    int
	Modeled  time.Duration // modeled wall time on the simulated link
	Slept    time.Duration // actual time spent sleeping (Modeled × TimeScale)
	Src, Dst string
}

// Transfer copies the named blob from src to dst, sleeping the scaled
// modeled duration. It fails if the blob is missing or ctx is canceled
// during the simulated movement.
func (s *Service) Transfer(ctx context.Context, src, dst *Endpoint, name string) (*Result, error) {
	data, err := src.Get(name)
	if err != nil {
		return nil, err
	}
	link := s.linkFor(src.Name, dst.Name)
	modeled := link.Duration(len(data))
	var slept time.Duration
	if s.TimeScale > 0 {
		slept = time.Duration(float64(modeled) * s.TimeScale)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(slept):
		}
	}
	dst.Put(name, data)
	return &Result{
		ID:   s.nextID.Add(1),
		Name: name, Bytes: len(data),
		Modeled: modeled, Slept: slept,
		Src: src.Name, Dst: dst.Name,
	}, nil
}

// TransferAll moves several blobs concurrently and returns their results in
// input order; the first error is reported after all transfers settle.
func (s *Service) TransferAll(ctx context.Context, src, dst *Endpoint, names []string) ([]*Result, error) {
	results := make([]*Result, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			results[i], errs[i] = s.Transfer(ctx, src, dst, name)
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("transfer: blob %q: %w", names[i], err)
		}
	}
	return results, nil
}
