// Package models defines the two benchmark DNNs of the fairDMS evaluation
// (paper §III-A), scaled to run on commodity CPUs:
//
//   - BraggNN: a convolutional regressor that predicts the sub-pixel center
//     of mass of a Bragg diffraction peak from its patch — the fast
//     surrogate for pseudo-Voigt fitting.
//   - CookieNetAE: a convolutional encoder-decoder that recovers the clean
//     energy-angle probability density from a noisy, low-count CookieBox
//     detector image.
//
// Both expose plain nn.Model values so the fairMS zoo can checkpoint and
// fine-tune them, plus helpers mapping dataset labels to network targets.
package models

import (
	"math"
	"math/rand"

	"fairdms/internal/nn"
	"fairdms/internal/tensor"
)

// BraggNN bundles the network with its patch geometry.
type BraggNN struct {
	Net   *nn.Model
	Patch int
}

// NewBraggNN builds a BraggNN-style model for patch×patch inputs:
// conv → leaky-ReLU → pool → two fully connected stages with dropout
// (the dropout doubles as the MC-dropout source for uncertainty).
func NewBraggNN(rng *rand.Rand, patch int) *BraggNN {
	dims := tensor.ConvDims{InC: 1, InH: patch, InW: patch, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := nn.NewConv2d(rng, dims, 8)
	pool := poolFor(8, patch)
	flat := 8 * (patch / poolSize(patch)) * (patch / poolSize(patch))
	net := nn.Sequential(
		conv,
		nn.NewLeakyReLU(0.01),
		pool,
		nn.NewLinear(rng, flat, 64),
		nn.NewLeakyReLU(0.01),
		nn.NewDropout(rng, 0.1),
		nn.NewLinear(rng, 64, 32),
		nn.NewLeakyReLU(0.01),
		nn.NewLinear(rng, 32, 2),
		nn.NewSigmoid(), // centers are normalized into (0, 1)
	)
	return &BraggNN{Net: net, Patch: patch}
}

// poolSize picks the largest window ≤ 3 that divides the patch.
func poolSize(patch int) int {
	for _, s := range []int{3, 2} {
		if patch%s == 0 {
			return s
		}
	}
	return 1
}

func poolFor(c, patch int) nn.Layer {
	s := poolSize(patch)
	if s == 1 {
		return nn.NewIdentity()
	}
	return nn.NewMaxPool2d(c, patch, patch, s)
}

// Targets converts pixel-space center labels (cx, cy) to the network's
// normalized (0,1) targets.
func (b *BraggNN) Targets(labels *tensor.Tensor) *tensor.Tensor {
	return tensor.Scale(labels, 1/float64(b.Patch-1))
}

// ErrorsPx returns per-sample Euclidean prediction errors in pixels —
// the metric of Figs. 2, 9, 10. Inference runs in eval mode.
func (b *BraggNN) ErrorsPx(x, labels *tensor.Tensor) []float64 {
	pred := b.Net.Forward(x, false)
	n := pred.Dim(0)
	scale := float64(b.Patch - 1)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		dx := pred.At(i, 0)*scale - labels.At(i, 0)
		dy := pred.At(i, 1)*scale - labels.At(i, 1)
		out[i] = math.Hypot(dx, dy)
	}
	return out
}

// MeanErrorPx returns the mean pixel error over a labeled set.
func (b *BraggNN) MeanErrorPx(x, labels *tensor.Tensor) float64 {
	errs := b.ErrorsPx(x, labels)
	s := 0.0
	for _, e := range errs {
		s += e
	}
	return s / float64(len(errs))
}

// CookieNetAE bundles the encoder-decoder with its image geometry.
type CookieNetAE struct {
	Net  *nn.Model
	Size int
}

// NewCookieNetAE builds a CookieNetAE-style model for size×size inputs:
// conv encoder to a dense bottleneck, then a dense decoder that emits the
// per-pixel density (scaled: see Targets).
func NewCookieNetAE(rng *rand.Rand, size int) *CookieNetAE {
	dims := tensor.ConvDims{InC: 1, InH: size, InW: size, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := nn.NewConv2d(rng, dims, 4)
	pool := nn.NewMaxPool2d(4, size, size, 2)
	flat := 4 * (size / 2) * (size / 2)
	net := nn.Sequential(
		conv,
		nn.NewReLU(),
		pool,
		nn.NewLinear(rng, flat, 128),
		nn.NewReLU(),
		nn.NewDropout(rng, 0.1),
		nn.NewLinear(rng, 128, size*size),
	)
	return &CookieNetAE{Net: net, Size: size}
}

// Targets scales clean density labels (unit total mass, so per-pixel values
// of order 1/size²) by size² so the regression operates on O(1) values.
func (c *CookieNetAE) Targets(labels *tensor.Tensor) *tensor.Tensor {
	return tensor.Scale(labels, float64(c.Size*c.Size))
}

// ScaleInputs maps 8-bit detector counts into [0, 1] for the network.
func ScaleInputs(x *tensor.Tensor) *tensor.Tensor {
	return tensor.Scale(x, 1.0/255.0)
}

// Loss returns the evaluation loss (MSE on scaled densities) over a set.
func (c *CookieNetAE) Loss(x, labels *tensor.Tensor) float64 {
	return nn.Evaluate(c.Net, x, c.Targets(labels), nn.MSE)
}

// DenoiseNet is a TomoGAN-role denoiser for low-dose tomography slices: a
// convolutional residual network that maps a noisy normalized slice to the
// clean image (the third application the paper's storage study draws its
// Tomography dataset from).
type DenoiseNet struct {
	Net  *nn.Model
	Size int
}

// NewDenoiseNet builds a compact conv denoiser for size×size slices.
func NewDenoiseNet(rng *rand.Rand, size int) *DenoiseNet {
	d1 := tensor.ConvDims{InC: 1, InH: size, InW: size, KH: 3, KW: 3, Stride: 1, Pad: 1}
	c1 := nn.NewConv2d(rng, d1, 4)
	d2 := tensor.ConvDims{InC: 4, InH: size, InW: size, KH: 3, KW: 3, Stride: 1, Pad: 1}
	c2 := nn.NewConv2d(rng, d2, 1)
	net := nn.Sequential(
		c1, nn.NewReLU(),
		c2, nn.NewSigmoid(), // clean image is normalized to (0, 1)
	)
	return &DenoiseNet{Net: net, Size: size}
}

// NormalizeInputs maps 16-bit counts into [0, 1].
func (d *DenoiseNet) NormalizeInputs(x *tensor.Tensor) *tensor.Tensor {
	return tensor.Scale(x, 1.0/65535.0)
}

// PSNR returns the mean peak signal-to-noise ratio (dB) of the network's
// denoised output against the clean targets, the standard denoising
// quality metric.
func (d *DenoiseNet) PSNR(x, clean *tensor.Tensor) float64 {
	pred := d.Net.Forward(x, false)
	n := pred.Dim(0)
	total := 0.0
	for i := 0; i < n; i++ {
		mse := 0.0
		pr, cr := pred.Row(i), clean.Row(i)
		for j := range pr {
			diff := pr[j] - cr[j]
			mse += diff * diff
		}
		mse /= float64(len(pr))
		if mse < 1e-12 {
			mse = 1e-12
		}
		total += 10 * math.Log10(1/mse) // peak value is 1 after normalization
	}
	return total / float64(n)
}
