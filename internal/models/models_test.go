package models

import (
	"math"
	"math/rand"
	"testing"

	"fairdms/internal/datagen"
	"fairdms/internal/dataloader"
	"fairdms/internal/nn"
	"fairdms/internal/stats"
	"fairdms/internal/tensor"
)

func braggData(t *testing.T, n, patch int, seed int64) (*tensor.Tensor, *tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	regime := datagen.DefaultBraggRegime()
	regime.Patch = patch
	b, err := dataloader.Collate(regime.Generate(rng, n))
	if err != nil {
		t.Fatal(err)
	}
	return b.X, b.Y
}

func TestBraggNNForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewBraggNN(rng, 15)
	x, _ := braggData(t, 4, 15, 2)
	out := m.Net.Forward(x, false)
	if out.Dim(0) != 4 || out.Dim(1) != 2 {
		t.Fatalf("output shape %v", out.Shape())
	}
	for _, v := range out.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("sigmoid output %g outside (0,1)", v)
		}
	}
}

func TestBraggNNLearnsCenters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	patch := 9
	m := NewBraggNN(rng, patch)
	x, y := braggData(t, 200, patch, 4)
	valX, valY := braggData(t, 60, patch, 5)

	before := m.MeanErrorPx(valX, valY)
	opt := nn.NewAdam(m.Net.Params(), 2e-3)
	nn.Fit(m.Net, opt, x, m.Targets(y), valX, m.Targets(valY), nn.TrainConfig{
		Epochs: 30, BatchSize: 32, Seed: 6,
	})
	after := m.MeanErrorPx(valX, valY)
	if after >= before/2 {
		t.Fatalf("BraggNN did not learn: %.3f -> %.3f px", before, after)
	}
	// Sub-pixel-ish accuracy on easy synthetic data.
	if after > 1.5 {
		t.Fatalf("BraggNN error %.3f px too high after training", after)
	}
}

func TestBraggNNErrorsPxPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewBraggNN(rng, 15)
	x, y := braggData(t, 8, 15, 8)
	errs := m.ErrorsPx(x, y)
	if len(errs) != 8 {
		t.Fatalf("got %d errors", len(errs))
	}
	for _, e := range errs {
		if e < 0 || e > 25 {
			t.Fatalf("implausible pixel error %g", e)
		}
	}
}

func TestBraggNNStateRoundTripPreservesPredictions(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewBraggNN(rng, 9)
	b := NewBraggNN(rng, 9)
	if err := b.Net.LoadState(a.Net.State()); err != nil {
		t.Fatal(err)
	}
	x, _ := braggData(t, 4, 9, 10)
	pa := a.Net.Forward(x, false)
	pb := b.Net.Forward(x, false)
	if !tensor.AllClose(pa, pb, 1e-12) {
		t.Fatal("models disagree after weight transfer")
	}
}

func TestBraggNNHasMCDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewBraggNN(rng, 9)
	if n := nn.SetMC(m.Net, true); n == 0 {
		t.Fatal("BraggNN must contain a Dropout layer for MC uncertainty")
	}
}

func cookieData(t *testing.T, n, size int, seed int64) (*tensor.Tensor, *tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	regime := datagen.DefaultCookieRegime()
	regime.Size = size
	b, err := dataloader.Collate(regime.Generate(rng, n))
	if err != nil {
		t.Fatal(err)
	}
	return ScaleInputs(b.X), b.Y
}

func TestCookieNetAELearnsDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	size := 16
	m := NewCookieNetAE(rng, size)
	x, y := cookieData(t, 80, size, 13)
	valX, valY := cookieData(t, 24, size, 14)

	before := m.Loss(valX, valY)
	opt := nn.NewAdam(m.Net.Params(), 1e-3)
	nn.Fit(m.Net, opt, x, m.Targets(y), valX, m.Targets(valY), nn.TrainConfig{
		Epochs: 25, BatchSize: 16, Seed: 15,
	})
	after := m.Loss(valX, valY)
	if after >= before/2 {
		t.Fatalf("CookieNetAE did not learn: %.4f -> %.4f", before, after)
	}
}

func TestCookieTargetsScaling(t *testing.T) {
	m := &CookieNetAE{Size: 4}
	labels := tensor.Full(0.0625, 1, 16) // uniform density over 16 pixels
	targets := m.Targets(labels)
	for _, v := range targets.Data() {
		if v != 1 {
			t.Fatalf("scaled target = %g, want 1", v)
		}
	}
}

func TestScaleInputsRange(t *testing.T) {
	x := tensor.FromSlice([]float64{0, 255}, 1, 2)
	s := ScaleInputs(x)
	if s.At(0, 0) != 0 || s.At(0, 1) != 1 {
		t.Fatalf("scaled = %v", s.Data())
	}
}

func TestPoolSizeSelection(t *testing.T) {
	if poolSize(15) != 3 || poolSize(16) != 2 || poolSize(9) != 3 || poolSize(7) != 1 {
		t.Fatal("poolSize selection wrong")
	}
}

func tomoPairs(t *testing.T, n, size int, seed int64) (*tensor.Tensor, *tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	regime := datagen.TomoRegime{Size: size, Ellipses: 3, Dose: 300}
	x := tensor.New(n, size*size)
	y := tensor.New(n, size*size)
	for i := 0; i < n; i++ {
		noisy, clean := regime.GeneratePair(rng)
		copy(x.Row(i), noisy.Floats())
		copy(y.Row(i), clean)
	}
	return x, y
}

func TestDenoiseNetImprovesPSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	size := 16
	d := NewDenoiseNet(rng, size)
	x, y := tomoPairs(t, 40, size, 31)
	nx := d.NormalizeInputs(x)
	valX, valY := tomoPairs(t, 12, size, 32)
	nvx := d.NormalizeInputs(valX)

	before := d.PSNR(nvx, valY)
	opt := nn.NewAdam(d.Net.Params(), 2e-3)
	nn.Fit(d.Net, opt, nx, y, nvx, valY, nn.TrainConfig{Epochs: 25, BatchSize: 8, Seed: 33})
	after := d.PSNR(nvx, valY)
	if after <= before+1 {
		t.Fatalf("denoiser PSNR %.2f dB -> %.2f dB, want > +1 dB", before, after)
	}
	// And the denoised output beats the raw noisy input.
	noisyPSNR := psnrOf(nvx, valY)
	if after <= noisyPSNR {
		t.Fatalf("denoised PSNR %.2f dB not above noisy input %.2f dB", after, noisyPSNR)
	}
}

// psnrOf computes PSNR of raw images against clean targets.
func psnrOf(x, clean *tensor.Tensor) float64 {
	total := 0.0
	n := x.Dim(0)
	for i := 0; i < n; i++ {
		mse := 0.0
		xr, cr := x.Row(i), clean.Row(i)
		for j := range xr {
			d := xr[j] - cr[j]
			mse += d * d
		}
		mse /= float64(len(xr))
		if mse < 1e-12 {
			mse = 1e-12
		}
		total += 10 * mathLog10(1/mse)
	}
	return total / float64(n)
}

func mathLog10(v float64) float64 {
	return math.Log10(v)
}

func TestTomoGeneratePairConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	regime := datagen.TomoRegime{Size: 16, Ellipses: 3, Dose: 5000}
	noisy, clean := regime.GeneratePair(rng)
	if len(clean) != 256 {
		t.Fatalf("clean label has %d pixels", len(clean))
	}
	for _, v := range clean {
		if v < 0 || v > 1 {
			t.Fatalf("clean pixel %g outside [0,1]", v)
		}
	}
	// At high dose, the normalized noisy image correlates strongly with
	// the clean one.
	nf := noisy.Floats()
	var xs, ys []float64
	for i := range nf {
		xs = append(xs, nf[i]/65535)
		ys = append(ys, clean[i])
	}
	if r := stats.PearsonCorrelation(xs, ys); r < 0.9 {
		t.Fatalf("high-dose noisy/clean correlation %.3f, want > 0.9", r)
	}
}
