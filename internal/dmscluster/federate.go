package dmscluster

import (
	"context"
	"sync"
	"time"

	"fairdms/internal/dmsapi"
	"fairdms/internal/obs"
)

// Fleet metrics scraping: the router-side half of metrics federation.
// Each federated /metricsz request scrapes the currently healthy shard
// set live, so an ejected shard's series age out of the merged exposition
// the moment health probing drops it — no TTL bookkeeping.

// defaultScrapeTimeout bounds one fleet scrape; a shard slower than this
// is simply absent from that scrape (and the transport failure counts
// against its health like any serving call).
const defaultScrapeTimeout = 2 * time.Second

// ScrapeFleet fetches and parses every healthy shard's /metricsz
// concurrently, returning one NodeExposition per shard that answered
// with a parseable exposition. The node identity is the shard address —
// the one name the routing tier knows shards by. Transport failures are
// charged against shard health; parse failures are not (the shard
// answered; its exposition is just unusable this scrape).
func (c *Cluster) ScrapeFleet(ctx context.Context, timeout time.Duration) []obs.NodeExposition {
	if timeout <= 0 {
		timeout = defaultScrapeTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	nodes := c.healthyNodes()
	out := make([]obs.NodeExposition, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			raw, err := n.client.DoRaw(ctx, "GET", dmsapi.PathMetrics, nil)
			if err != nil {
				c.shardFailure(n, err)
				c.cfg.Logger.Warn("fleet metrics scrape failed", "node", n.addr, "err", err)
				return
			}
			c.noteSuccess(n)
			fams, err := obs.ParseExposition(raw)
			if err != nil {
				c.cfg.Logger.Warn("fleet metrics unparseable", "node", n.addr, "err", err)
				return
			}
			out[i] = obs.NodeExposition{Node: n.addr, Families: fams}
		}(i, n)
	}
	wg.Wait()

	scraped := out[:0]
	for _, ne := range out {
		if ne.Node != "" {
			scraped = append(scraped, ne)
		}
	}
	return scraped
}
