package dmscluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"fairdms/internal/dmsapi"
	"fairdms/internal/fairds"
	"fairdms/internal/obs"
	"fairdms/internal/stats"
)

// shardResult is one shard's answer to a fan-out call.
type shardResult[T any] struct {
	node *node
	val  T
	err  error
}

// fanOut runs f against every node concurrently and collects the
// results. Transport-level failures are charged against the shard's
// health; status responses are not (the shard answered).
func fanOut[T any](c *Cluster, ctx context.Context, nodes []*node, f func(context.Context, *node) (T, error)) []shardResult[T] {
	out := make([]shardResult[T], len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			v, err := f(ctx, n)
			if err != nil {
				c.shardFailure(n, err)
			} else {
				c.noteSuccess(n)
			}
			out[i] = shardResult[T]{node: n, val: v, err: err}
		}(i, n)
	}
	wg.Wait()
	return out
}

// splitResults separates a fan-out into successes and failures.
func splitResults[T any](rs []shardResult[T]) (ok []shardResult[T], failed []shardResult[T]) {
	for _, r := range rs {
		if r.err == nil {
			ok = append(ok, r)
		} else {
			failed = append(failed, r)
		}
	}
	return ok, failed
}

// mergeFailure turns an all-shards-failed fan-out into the error the
// caller should see: a shard's own status response passes through
// verbatim (so 409/429/503 round-trip losslessly), and pure transport
// failure becomes a retryable 503.
func mergeFailure[T any](failed []shardResult[T], op string) error {
	for _, r := range failed {
		var se *dmsapi.StatusError
		if errors.As(r.err, &se) {
			return r.err
		}
	}
	msg := op + ": every shard failed"
	if len(failed) > 0 {
		msg = fmt.Sprintf("%s: every shard failed (shard %d: %v)", op, failed[0].node.idx, failed[0].err)
	}
	return &dmsapi.StatusError{
		Code:      http.StatusServiceUnavailable,
		ErrCode:   dmsapi.CodeDegraded,
		Message:   msg,
		Retryable: true,
	}
}

// errNoShards is the response when the healthy set is empty.
func errNoShards(op string) error {
	return &dmsapi.StatusError{
		Code:      http.StatusServiceUnavailable,
		ErrCode:   dmsapi.CodeUnavailable,
		Message:   op + ": no healthy shard",
		Retryable: true,
	}
}

// reqFlagsKey carries a per-request degraded marker through the scatter
// path. The router injects one so tail-based trace retention can tell a
// degraded merge apart without re-parsing response bodies; noteDegraded
// is the single choke point every degraded merge passes through.
type reqFlagsKey struct{}

type reqFlags struct{ degraded atomic.Bool }

// withReqFlags arms a request context with a degraded marker.
func withReqFlags(ctx context.Context) (context.Context, *reqFlags) {
	f := &reqFlags{}
	return context.WithValue(ctx, reqFlagsKey{}, f), f
}

// noteDegraded flags a merged response assembled without every shard,
// both on the cluster-wide counter and on the request's own marker.
func (c *Cluster) noteDegraded(ctx context.Context) {
	c.degraded.Add(1)
	if f, _ := ctx.Value(reqFlagsKey{}).(*reqFlags); f != nil {
		f.degraded.Store(true)
	}
}

// partial reports whether a fan-out over nodes with the given failure
// count covered less than the full membership: either a shard failed
// mid-request, or one was already ejected and never asked. Both mean
// the merge may be missing that shard's documents, so the response
// carries the Degraded flag.
func (c *Cluster) partial(nodes []*node, failed int) bool {
	return failed > 0 || len(nodes) < len(c.nodes)
}

// ---------------------------------------------------------------------------
// Bootstrap

// ensureFitted runs the coordinated bootstrap: the first ingest batch
// fits every healthy shard's clustering model on the same full batch
// through the idempotent clusters:fit endpoint. All shards share an
// embedder/k-means seed, so the replicated models agree and every
// scatter-gather reduction over them is exact. Serialized on bootMu —
// one router instance coordinates a given cluster's bootstrap (see
// docs/ARCHITECTURE.md for the multi-router caveat).
func (c *Cluster) ensureFitted(ctx context.Context, samples []dmsapi.Sample) error {
	if c.fitted.Load() || c.cfg.BootstrapK <= 0 {
		return nil
	}
	c.bootMu.Lock()
	defer c.bootMu.Unlock()
	if c.fitted.Load() {
		return nil
	}
	nodes := c.healthyNodes()
	if len(nodes) == 0 {
		return errNoShards("fit")
	}
	ctx, sp := obs.StartSpan(ctx, "cluster_fit")
	defer sp.End()
	req := dmsapi.FitRequest{Samples: samples, K: c.cfg.BootstrapK}
	rs := fanOut(c, ctx, nodes, func(ctx context.Context, n *node) (dmsapi.FitResponse, error) {
		var out dmsapi.FitResponse
		err := n.client.DoJSON(ctx, "POST", dmsapi.PathFit, req, &out)
		return out, err
	})
	ok, failed := splitResults(rs)
	if len(ok) == 0 {
		return mergeFailure(failed, "fit")
	}
	// Shards that missed the bootstrap (transport failure) stay ejected
	// until they answer probes again; they will hold an unfitted model
	// and answer not_fitted, which fan-out reads tolerate as a degraded
	// merge. Static membership means no automatic re-fit — see the
	// rebalance caveats in docs/ARCHITECTURE.md.
	if len(failed) > 0 {
		c.cfg.Logger.Warn("bootstrap fit incomplete", "fitted", len(ok), "shards", len(nodes))
	}
	c.fitted.Store(true)
	return nil
}

// ---------------------------------------------------------------------------
// Ingest (hash-routed)

// Ingest routes a batch across shards by content hash with per-shard
// sub-batching. A dead owner is routed around (ring successor); a
// sub-batch whose shard dies mid-request is rerouted once to the next
// healthy shard. Per-document failures ride the response's Errors array
// exactly like the single-node batch endpoint.
func (c *Cluster) Ingest(ctx context.Context, req dmsapi.IngestBatchRequest) (dmsapi.IngestBatchResponse, error) {
	resp := dmsapi.IngestBatchResponse{IDs: make([]string, len(req.Samples))}
	if len(req.Samples) == 0 {
		return resp, &dmsapi.StatusError{
			Code: http.StatusBadRequest, ErrCode: dmsapi.CodeBadRequest,
			Message: "ingest-batch: empty sample batch",
		}
	}
	if err := c.ensureFitted(ctx, req.Samples); err != nil {
		return resp, err
	}

	// Partition positions by the first healthy shard on each document's
	// successor list (fail-open around ejected owners).
	groups := make(map[int][]int)
	for i := range req.Samples {
		key := ContentKey(req.Samples[i].Data, req.Samples[i].Label)
		target := -1
		for _, si := range c.ring.Successors(key) {
			if c.nodes[si].healthy.Load() {
				target = si
				break
			}
		}
		if target < 0 {
			return resp, errNoShards("ingest")
		}
		groups[target] = append(groups[target], i)
	}

	ctx, sp := obs.StartSpan(ctx, "scatter_ingest")
	defer sp.End()
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for target, positions := range groups {
		wg.Add(1)
		go func(target int, positions []int) {
			defer wg.Done()
			sub := dmsapi.IngestBatchRequest{Dataset: req.Dataset, Samples: make([]dmsapi.Sample, len(positions))}
			for j, pos := range positions {
				sub.Samples[j] = req.Samples[pos]
			}
			out, err := c.sendSubBatch(ctx, target, sub)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				// The whole sub-batch failed (both attempts): per-doc errors,
				// batch semantics preserved.
				for _, pos := range positions {
					resp.Errors = append(resp.Errors, dmsapi.DocError{Index: pos, Error: err.Error()})
				}
				return
			}
			for j, id := range out.IDs {
				resp.IDs[positions[j]] = id
			}
			for _, de := range out.Errors {
				resp.Errors = append(resp.Errors, dmsapi.DocError{Index: positions[de.Index], Error: de.Error})
			}
		}(target, positions)
	}
	wg.Wait()
	sort.Slice(resp.Errors, func(i, j int) bool { return resp.Errors[i].Index < resp.Errors[j].Index })
	for _, id := range resp.IDs {
		if id != "" {
			resp.Inserted++
		}
	}
	return resp, nil
}

// sendSubBatch sends one shard's sub-batch, rerouting once to the next
// healthy shard on a transport-level failure (fail-open: the documents
// land off their hash owner rather than being lost — content-hash
// lookup never depends on placement, only ingest balance does).
func (c *Cluster) sendSubBatch(ctx context.Context, target int, sub dmsapi.IngestBatchRequest) (dmsapi.IngestBatchResponse, error) {
	var out dmsapi.IngestBatchResponse
	n := c.nodes[target]
	err := n.client.DoJSON(ctx, "POST", dmsapi.PathIngestBatch, sub, &out)
	if err == nil {
		c.noteSuccess(n)
		return out, nil
	}
	c.shardFailure(n, err)
	var se *dmsapi.StatusError
	if errors.As(err, &se) {
		return out, err // the shard answered; rerouting would duplicate semantics, not fix them
	}
	for off := 1; off < len(c.nodes); off++ {
		alt := c.nodes[(target+off)%len(c.nodes)]
		if !alt.healthy.Load() {
			continue
		}
		c.reroutes.Add(1)
		c.cfg.Logger.Warn("rerouting ingest sub-batch",
			"docs", len(sub.Samples), "from_shard", target, "to_shard", alt.idx)
		if err2 := alt.client.DoJSON(ctx, "POST", dmsapi.PathIngestBatch, sub, &out); err2 == nil {
			c.noteSuccess(alt)
			return out, nil
		} else {
			c.shardFailure(alt, err2)
			err = err2
		}
		break // one reroute hop: bounded work under cascading failure
	}
	return out, err
}

// ---------------------------------------------------------------------------
// Fan-out reads

// Certainty scatters the certainty computation and reduces by mean. The
// clustering model is replicated and the computation is model-only, so
// every shard returns the same value — the reduction is exact, and a
// partial-failure merge (Degraded=true) still is.
func (c *Cluster) Certainty(ctx context.Context, req dmsapi.CertaintyRequest) (dmsapi.CertaintyResponse, error) {
	nodes := c.healthyNodes()
	if len(nodes) == 0 {
		return dmsapi.CertaintyResponse{}, errNoShards("certainty")
	}
	ctx, sp := obs.StartSpan(ctx, "scatter_certainty")
	defer sp.End()
	rs := fanOut(c, ctx, nodes, func(ctx context.Context, n *node) (dmsapi.CertaintyResponse, error) {
		var out dmsapi.CertaintyResponse
		err := n.client.DoJSON(ctx, "POST", dmsapi.PathCertainty, req, &out)
		return out, err
	})
	ok, failed := splitResults(rs)
	if len(ok) == 0 {
		return dmsapi.CertaintyResponse{}, mergeFailure(failed, "certainty")
	}
	var sum float64
	for _, r := range ok {
		sum += r.val.Certainty
	}
	resp := dmsapi.CertaintyResponse{Certainty: sum / float64(len(ok)), Degraded: c.partial(nodes, len(failed))}
	if resp.Degraded {
		c.noteDegraded(ctx)
	}
	return resp, nil
}

// PDF scatters the PDF computation and reduces by element-wise mean
// (exact for agreeing replicated models, robust if a shard drifts).
func (c *Cluster) PDF(ctx context.Context, req dmsapi.PDFRequest) (dmsapi.PDFResponse, error) {
	nodes := c.healthyNodes()
	if len(nodes) == 0 {
		return dmsapi.PDFResponse{}, errNoShards("pdf")
	}
	ctx, sp := obs.StartSpan(ctx, "scatter_pdf")
	defer sp.End()
	rs := fanOut(c, ctx, nodes, func(ctx context.Context, n *node) (dmsapi.PDFResponse, error) {
		var out dmsapi.PDFResponse
		err := n.client.DoJSON(ctx, "POST", dmsapi.PathPDF, req, &out)
		return out, err
	})
	ok, failed := splitResults(rs)
	if len(ok) == 0 {
		return dmsapi.PDFResponse{}, mergeFailure(failed, "pdf")
	}
	pdf := make([]float64, len(ok[0].val.PDF))
	contrib := 0
	for _, r := range ok {
		if len(r.val.PDF) != len(pdf) {
			continue // shard with a divergent K (missed bootstrap): skip
		}
		for i, p := range r.val.PDF {
			pdf[i] += p
		}
		contrib++
	}
	for i := range pdf {
		pdf[i] /= float64(contrib)
	}
	resp := dmsapi.PDFResponse{PDF: pdf, K: len(pdf), Degraded: c.partial(nodes, len(failed)) || contrib < len(ok)}
	if resp.Degraded {
		c.noteDegraded(ctx)
	}
	return resp, nil
}

// Nearest scatters nearest-neighbor matching and merges by per-sample
// minimum distance — with replicated embedder and clustering models the
// union of per-shard minima is exactly the single-node answer. Distinct
// matching resolves iteratively: fan out without distinctness, commit
// matches greedily in input order until the first intra-round conflict,
// then re-query the unresolved tail with the committed document IDs
// excluded. The committed prefix is provably what a single node's greedy
// pass would produce, and each round commits at least one sample, so the
// loop is bounded by the sample count (conflicts are rare in practice).
func (c *Cluster) Nearest(ctx context.Context, req dmsapi.NearestRequest) (dmsapi.NearestResponse, error) {
	nodes := c.healthyNodes()
	if len(nodes) == 0 {
		return dmsapi.NearestResponse{}, errNoShards("nearest")
	}
	ctx, sp := obs.StartSpan(ctx, "scatter_nearest")
	defer sp.End()

	out := make([]dmsapi.Match, len(req.Samples))
	taken := make(map[string]bool, len(req.Exclude))
	exclude := append([]string(nil), req.Exclude...)
	for _, id := range req.Exclude {
		taken[id] = true
	}
	pending := make([]int, len(req.Samples))
	for i := range pending {
		pending[i] = i
	}
	degraded := c.partial(nodes, 0)

	for round := 0; len(pending) > 0; round++ {
		if round > len(req.Samples) {
			return dmsapi.NearestResponse{}, &dmsapi.StatusError{
				Code: http.StatusInternalServerError, ErrCode: dmsapi.CodeInternal,
				Message: "nearest: distinct merge failed to converge",
			}
		}
		sub := dmsapi.NearestRequest{Samples: make([]dmsapi.Sample, len(pending)), Exclude: exclude}
		for j, pos := range pending {
			sub.Samples[j] = req.Samples[pos]
		}
		rs := fanOut(c, ctx, c.healthyNodes(), func(ctx context.Context, n *node) (dmsapi.NearestResponse, error) {
			var o dmsapi.NearestResponse
			err := n.client.DoJSON(ctx, "POST", dmsapi.PathNearest, sub, &o)
			return o, err
		})
		ok, failed := splitResults(rs)
		if len(ok) == 0 {
			return dmsapi.NearestResponse{}, mergeFailure(failed, "nearest")
		}
		degraded = degraded || len(failed) > 0

		// Per-sample minimum across shards.
		best := make([]dmsapi.Match, len(pending))
		for _, r := range ok {
			if len(r.val.Matches) != len(pending) {
				continue
			}
			for j, m := range r.val.Matches {
				if m.Found && (!best[j].Found || m.Dist < best[j].Dist) {
					best[j] = m
				}
			}
		}

		if !req.Distinct {
			for j, pos := range pending {
				out[pos] = best[j]
			}
			break
		}

		// Greedy prefix commit: stop at the first conflict within this
		// round; everything after it re-queries with the grown exclusion.
		conflictAt := -1
		roundTaken := make(map[string]bool)
		for j, pos := range pending {
			m := best[j]
			if !m.Found {
				out[pos] = m
				continue
			}
			if roundTaken[m.DocID] {
				conflictAt = j
				break
			}
			roundTaken[m.DocID] = true
			taken[m.DocID] = true
			exclude = append(exclude, m.DocID)
			out[pos] = m
		}
		if conflictAt < 0 {
			pending = nil
		} else {
			pending = pending[conflictAt:]
		}
	}

	if degraded {
		c.noteDegraded(ctx)
	}
	return dmsapi.NearestResponse{Matches: out, Degraded: degraded}, nil
}

// Lookup reproduces single-node lookup semantics across the partition:
// compute the fan-out PDF, apportion the request size into per-cluster
// counts exactly as one node would, gather each cluster's candidate IDs
// from every shard, draw the count deterministically (seeded by cluster,
// like the single-node sampler), and fetch each draw from the shard that
// owns it. Per-cluster counts therefore match the single-node result on
// the same corpus; the concrete IDs differ only by namespace.
func (c *Cluster) Lookup(ctx context.Context, req dmsapi.LookupRequest) (dmsapi.LookupResponse, error) {
	pdfResp, err := c.PDF(ctx, dmsapi.PDFRequest{Samples: req.Samples})
	if err != nil {
		return dmsapi.LookupResponse{}, err
	}
	counts := fairds.Apportion(stats.PDF(pdfResp.PDF), len(req.Samples))
	degraded := pdfResp.Degraded

	ctx, sp := obs.StartSpan(ctx, "scatter_lookup")
	defer sp.End()

	// Gather candidates per active cluster from every healthy shard,
	// remembering which shard owns each ID.
	type clusterSet struct {
		ids   []string
		owner map[string]*node
	}
	sets := make([]clusterSet, len(counts))
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	var anyShardFailed atomic.Bool
	for k, want := range counts {
		if want == 0 {
			continue
		}
		sets[k].owner = make(map[string]*node)
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rs := fanOut(c, ctx, c.healthyNodes(), func(ctx context.Context, n *node) (dmsapi.ClusterIDsResponse, error) {
				var o dmsapi.ClusterIDsResponse
				err := n.client.DoJSON(ctx, "POST", dmsapi.PathClusterIDs, dmsapi.ClusterIDsRequest{Cluster: k}, &o)
				return o, err
			})
			ok, failed := splitResults(rs)
			if len(failed) > 0 {
				anyShardFailed.Store(true)
			}
			mu.Lock()
			defer mu.Unlock()
			for _, r := range ok {
				for _, id := range r.val.IDs {
					if _, dup := sets[k].owner[id]; !dup {
						sets[k].owner[id] = r.node
						sets[k].ids = append(sets[k].ids, id)
					}
				}
			}
		}(k)
	}
	wg.Wait()
	degraded = degraded || anyShardFailed.Load()

	// Draw each cluster's count deterministically and group the draws by
	// owning shard for batched fetches.
	perShard := make(map[*node][]string)
	drawOrder := make([][]string, len(counts))
	for k, want := range counts {
		if want == 0 || len(sets[k].ids) == 0 {
			continue
		}
		ids := sets[k].ids
		sort.Strings(ids)
		if want < len(ids) {
			rng := rand.New(rand.NewSource(c.cfg.Seed + int64(k)))
			rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
			ids = ids[:want]
			sort.Strings(ids)
		}
		drawOrder[k] = ids
		for _, id := range ids {
			n := sets[k].owner[id]
			perShard[n] = append(perShard[n], id)
		}
	}

	// Fetch the draws from their owners.
	fetched := make(map[string]dmsapi.Sample)
	var fetchWG sync.WaitGroup
	var fetchFailed atomic.Bool
	for n, ids := range perShard {
		fetchWG.Add(1)
		go func(n *node, ids []string) {
			defer fetchWG.Done()
			var o dmsapi.SamplesResponse
			err := n.client.DoJSON(ctx, "POST", dmsapi.PathSamples, dmsapi.SamplesRequest{IDs: ids, Partial: true}, &o)
			if err != nil {
				c.shardFailure(n, err)
				fetchFailed.Store(true)
				return
			}
			c.noteSuccess(n)
			if len(o.Missing) > 0 {
				fetchFailed.Store(true)
			}
			mu.Lock()
			defer mu.Unlock()
			// Partial mode skips misses, so align by walking the request
			// IDs against the response order minus the missing set.
			missing := make(map[string]bool, len(o.Missing))
			for _, id := range o.Missing {
				missing[id] = true
			}
			j := 0
			for _, id := range ids {
				if missing[id] {
					continue
				}
				if j < len(o.Samples) {
					fetched[id] = o.Samples[j]
					j++
				}
			}
		}(n, ids)
	}
	fetchWG.Wait()
	degraded = degraded || fetchFailed.Load()

	// Assemble in cluster order, sorted IDs within each cluster — the
	// single-node assembly order.
	resp := dmsapi.LookupResponse{Degraded: degraded}
	for k := range drawOrder {
		for _, id := range drawOrder[k] {
			if s, ok := fetched[id]; ok {
				resp.Samples = append(resp.Samples, s)
			}
		}
	}
	if len(resp.Samples) == 0 {
		return resp, &dmsapi.StatusError{
			Code: http.StatusInternalServerError, ErrCode: dmsapi.CodeInternal,
			Message: "lookup: no labeled historical data matches the input distribution",
		}
	}
	if degraded {
		c.noteDegraded(ctx)
	}
	return resp, nil
}

// ---------------------------------------------------------------------------
// Model plane (replicated)

// AddModel replicates a model registration to every healthy shard, so
// recommend/checkpoint/train stay local wherever they land. A shard
// answering duplicate counts as replicated (idempotent re-registration);
// the call fails only when no shard accepted or already had it.
func (c *Cluster) AddModel(ctx context.Context, req dmsapi.AddModelRequest) (dmsapi.ModelInfo, error) {
	nodes := c.healthyNodes()
	if len(nodes) == 0 {
		return dmsapi.ModelInfo{}, errNoShards("models")
	}
	ctx, sp := obs.StartSpan(ctx, "replicate_model")
	defer sp.End()
	rs := fanOut(c, ctx, nodes, func(ctx context.Context, n *node) (dmsapi.ModelInfo, error) {
		var out dmsapi.ModelInfo
		err := n.client.DoJSON(ctx, "POST", dmsapi.PathModels, req, &out)
		return out, err
	})
	var firstErr error
	accepted, duplicates := 0, 0
	info := dmsapi.ModelInfo{ID: req.ID, K: len(req.PDF), Meta: req.Meta}
	for _, r := range rs {
		switch {
		case r.err == nil:
			accepted++
			info = r.val
		case errors.Is(r.err, dmsapi.ErrDuplicateModel):
			duplicates++
		case firstErr == nil:
			firstErr = r.err
		}
	}
	if accepted > 0 {
		if accepted+duplicates < len(nodes) {
			c.cfg.Logger.Warn("model replication incomplete",
				"model", req.ID, "replicated", accepted+duplicates, "shards", len(nodes))
		}
		return info, nil
	}
	if duplicates == len(nodes) {
		// Uniform duplicate: pass the conflict through losslessly.
		for _, r := range rs {
			if errors.Is(r.err, dmsapi.ErrDuplicateModel) {
				return dmsapi.ModelInfo{}, r.err
			}
		}
	}
	if firstErr != nil {
		return dmsapi.ModelInfo{}, firstErr
	}
	return dmsapi.ModelInfo{}, mergeFailure(rs, "models")
}

// Models lists the union of every healthy shard's zoo (deduplicated by
// ID, ordered by registration time).
func (c *Cluster) Models(ctx context.Context) (dmsapi.ModelsResponse, error) {
	nodes := c.healthyNodes()
	if len(nodes) == 0 {
		return dmsapi.ModelsResponse{}, errNoShards("models")
	}
	rs := fanOut(c, ctx, nodes, func(ctx context.Context, n *node) (dmsapi.ModelsResponse, error) {
		var out dmsapi.ModelsResponse
		err := n.client.DoJSON(ctx, "GET", dmsapi.PathModels, nil, &out)
		return out, err
	})
	ok, failed := splitResults(rs)
	if len(ok) == 0 {
		return dmsapi.ModelsResponse{}, mergeFailure(failed, "models")
	}
	seen := make(map[string]bool)
	var models []dmsapi.ModelInfo
	for _, r := range ok {
		for _, m := range r.val.Models {
			if !seen[m.ID] {
				seen[m.ID] = true
				models = append(models, m)
			}
		}
	}
	sort.Slice(models, func(i, j int) bool {
		if !models[i].AddedAt.Equal(models[j].AddedAt) {
			return models[i].AddedAt.Before(models[j].AddedAt)
		}
		return models[i].ID < models[j].ID
	})
	return dmsapi.ModelsResponse{Models: models}, nil
}

// Recommend scatters the recommendation and keeps the best answer
// (lowest JSD among OK responses) — with replicated zoos every shard
// agrees, and a train-produced model that exists on only one shard is
// still found by the fan-out.
func (c *Cluster) Recommend(ctx context.Context, req dmsapi.RecommendRequest) (dmsapi.RecommendResponse, error) {
	nodes := c.healthyNodes()
	if len(nodes) == 0 {
		return dmsapi.RecommendResponse{}, errNoShards("recommend")
	}
	ctx, sp := obs.StartSpan(ctx, "scatter_recommend")
	defer sp.End()
	rs := fanOut(c, ctx, nodes, func(ctx context.Context, n *node) (dmsapi.RecommendResponse, error) {
		var out dmsapi.RecommendResponse
		err := n.client.DoJSON(ctx, "POST", dmsapi.PathRecommend, req, &out)
		return out, err
	})
	ok, failed := splitResults(rs)
	if len(ok) == 0 {
		return dmsapi.RecommendResponse{}, mergeFailure(failed, "recommend")
	}
	best := dmsapi.RecommendResponse{}
	for _, r := range ok {
		v := r.val
		switch {
		case v.OK && (!best.OK || v.JSD < best.JSD):
			best = v
		case !best.OK && !v.OK && v.JSD > 0 && (best.JSD == 0 || v.JSD < best.JSD):
			best.JSD = v.JSD // closest-but-rejected divergence, for diagnostics
		}
	}
	best.Degraded = c.partial(nodes, len(failed))
	if best.Degraded {
		c.noteDegraded(ctx)
	}
	return best, nil
}

// Checkpoint fetches a model's weights from the first shard that has
// them (replicated models live everywhere; train-produced ones on their
// training shard).
func (c *Cluster) Checkpoint(ctx context.Context, id string) ([]byte, error) {
	nodes := c.healthyNodes()
	if len(nodes) == 0 {
		return nil, errNoShards("checkpoint")
	}
	path := strings.Replace(dmsapi.PathCheckpoint, "{id}", url.PathEscape(id), 1)
	var lastErr error
	for _, n := range nodes {
		blob, err := n.client.DoRaw(ctx, "GET", path, nil)
		if err == nil {
			c.noteSuccess(n)
			return blob, nil
		}
		c.shardFailure(n, err)
		lastErr = err
		if !errors.Is(err, dmsapi.ErrNotFound) {
			var se *dmsapi.StatusError
			if errors.As(err, &se) {
				return nil, err // a real status answer other than 404: stop
			}
		}
	}
	return nil, lastErr
}

// ---------------------------------------------------------------------------
// Training plane (job affinity via ID prefix)

// trainPrefix tags a job ID with its shard ("s2!<id>"): training jobs
// have shard affinity, and the prefix routes every status poll and
// cancel to the right shard without a lookup table. '!' is path-safe
// and cannot appear in trainer IDs.
func trainPrefix(shard int, id string) string {
	return "s" + strconv.Itoa(shard) + "!" + id
}

// splitTrainID reverses trainPrefix.
func (c *Cluster) splitTrainID(id string) (*node, string, error) {
	rest, found := strings.CutPrefix(id, "s")
	if found {
		if si, raw, ok := strings.Cut(rest, "!"); ok {
			if idx, err := strconv.Atoi(si); err == nil && idx >= 0 && idx < len(c.nodes) {
				return c.nodes[idx], raw, nil
			}
		}
	}
	return nil, "", &dmsapi.StatusError{
		Code: http.StatusNotFound, ErrCode: dmsapi.CodeNotFound,
		Message: fmt.Sprintf("train: job id %q carries no shard tag", id),
	}
}

// SubmitTrain places a training job on one healthy shard (round-robin),
// trying the next shard on transport failure. The returned job ID is
// shard-tagged for later polls.
func (c *Cluster) SubmitTrain(ctx context.Context, req dmsapi.TrainRequest) (dmsapi.TrainJob, error) {
	nodes := c.healthyNodes()
	if len(nodes) == 0 {
		return dmsapi.TrainJob{}, errNoShards("train")
	}
	start := int(c.rr.Add(1)) % len(nodes)
	var lastErr error
	for off := 0; off < len(nodes); off++ {
		n := nodes[(start+off)%len(nodes)]
		var job dmsapi.TrainJob
		err := n.client.DoJSON(ctx, "POST", dmsapi.PathTrain, req, &job)
		if err == nil {
			c.noteSuccess(n)
			job.ID = trainPrefix(n.idx, job.ID)
			return job, nil
		}
		c.shardFailure(n, err)
		lastErr = err
		var se *dmsapi.StatusError
		if errors.As(err, &se) {
			return dmsapi.TrainJob{}, err // queue-full 429 etc. pass through
		}
	}
	return dmsapi.TrainJob{}, lastErr
}

// TrainJob fetches one job's status from its shard.
func (c *Cluster) TrainJob(ctx context.Context, id string) (dmsapi.TrainJob, error) {
	n, raw, err := c.splitTrainID(id)
	if err != nil {
		return dmsapi.TrainJob{}, err
	}
	var job dmsapi.TrainJob
	path := strings.Replace(dmsapi.PathTrainJob, "{id}", url.PathEscape(raw), 1)
	if err := n.client.DoJSON(ctx, "GET", path, nil, &job); err != nil {
		c.shardFailure(n, err)
		return dmsapi.TrainJob{}, err
	}
	c.noteSuccess(n)
	job.ID = trainPrefix(n.idx, job.ID)
	return job, nil
}

// CancelTrain cancels a job on its shard.
func (c *Cluster) CancelTrain(ctx context.Context, id string) (dmsapi.TrainJob, error) {
	n, raw, err := c.splitTrainID(id)
	if err != nil {
		return dmsapi.TrainJob{}, err
	}
	var job dmsapi.TrainJob
	path := strings.Replace(dmsapi.PathTrainCancel, "{id}", url.PathEscape(raw), 1)
	if err := n.client.DoJSON(ctx, "POST", path, struct{}{}, &job); err != nil {
		c.shardFailure(n, err)
		return dmsapi.TrainJob{}, err
	}
	c.noteSuccess(n)
	job.ID = trainPrefix(n.idx, job.ID)
	return job, nil
}

// TrainJobs lists every shard's jobs (shard-tagged IDs, submission
// order).
func (c *Cluster) TrainJobs(ctx context.Context) (dmsapi.TrainListResponse, error) {
	nodes := c.healthyNodes()
	if len(nodes) == 0 {
		return dmsapi.TrainListResponse{}, errNoShards("train")
	}
	rs := fanOut(c, ctx, nodes, func(ctx context.Context, n *node) (dmsapi.TrainListResponse, error) {
		var out dmsapi.TrainListResponse
		err := n.client.DoJSON(ctx, "GET", dmsapi.PathTrain, nil, &out)
		return out, err
	})
	ok, failed := splitResults(rs)
	if len(ok) == 0 {
		return dmsapi.TrainListResponse{}, mergeFailure(failed, "train")
	}
	var jobs []dmsapi.TrainJob
	for _, r := range ok {
		for _, j := range r.val.Jobs {
			j.ID = trainPrefix(r.node.idx, j.ID)
			jobs = append(jobs, j)
		}
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].SubmittedAt.Before(jobs[j].SubmittedAt) })
	return dmsapi.TrainListResponse{Jobs: jobs}, nil
}

// ---------------------------------------------------------------------------
// Health

// Health aggregates shard health: sample counts sum across the
// partition, the cluster count and zoo size are replicated maxima, and
// the status degrades (not fails) while any shard is out.
func (c *Cluster) Health(ctx context.Context) (dmsapi.HealthResponse, error) {
	nodes := c.healthyNodes()
	if len(nodes) == 0 {
		return dmsapi.HealthResponse{}, errNoShards("health")
	}
	rs := fanOut(c, ctx, nodes, func(ctx context.Context, n *node) (dmsapi.HealthResponse, error) {
		var out dmsapi.HealthResponse
		err := n.client.DoJSON(ctx, "GET", dmsapi.PathHealth, nil, &out)
		return out, err
	})
	ok, failed := splitResults(rs)
	if len(ok) == 0 {
		return dmsapi.HealthResponse{}, mergeFailure(failed, "health")
	}
	out := dmsapi.HealthResponse{Status: "ok"}
	for _, r := range ok {
		out.Samples += r.val.Samples
		out.K = max(out.K, r.val.K)
		out.Models = max(out.Models, r.val.Models)
	}
	if len(failed) > 0 || len(ok) < len(c.nodes) {
		out.Status = "degraded"
	}
	return out, nil
}
