package dmscluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fairdms/internal/dmsapi"
	"fairdms/internal/obs"
)

// Config wires a Cluster to its shard set and tunes its behavior.
type Config struct {
	// Shards lists the dmsd addresses ("host:port"), in ring order.
	// Required, at least one. Every shard must run with the same -seed
	// and a distinct -node-id (distinct document-ID namespaces).
	Shards []string
	// Vnodes is the virtual-node count per shard on the hash ring
	// (default 128).
	Vnodes int
	// BootstrapK, when positive, lets the cluster start against unfitted
	// shards: the first ingest fits every shard's clustering model on
	// that same full batch (coordinated bootstrap), so the replicated
	// models agree. Zero requires pre-fitted shards.
	BootstrapK int
	// Seed feeds the lookup merge's deterministic per-cluster sampling;
	// it should match the shards' -seed. Zero is a valid seed.
	Seed int64
	// ProbeInterval is the active health-probe cadence (default 1s;
	// negative disables active probing — serving-path failures still
	// eject).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 500ms).
	ProbeTimeout time.Duration
	// FailAfter is the consecutive-failure count that ejects a shard
	// (default 2). Probe failures and serving-path transport failures
	// both count; any success resets.
	FailAfter int
	// Retries/Backoff tune each per-shard HTTP exchange (defaults 1 and
	// 25ms — the cluster layer adds its own fail-open, so per-call
	// retries stay small to bound fan-out tail latency).
	Retries int
	Backoff time.Duration
	// Timeout bounds each per-shard HTTP exchange (default 30s).
	Timeout time.Duration
	// Logger receives membership transitions and reroutes as leveled
	// key=value events; nil silences.
	Logger *obs.Logger
}

func (c *Config) defaults() {
	if c.Vnodes <= 0 {
		c.Vnodes = defaultVnodes
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.Retries <= 0 {
		c.Retries = 1
	}
	if c.Backoff <= 0 {
		c.Backoff = 25 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
}

// node is one shard's client plus health state.
type node struct {
	idx    int
	addr   string
	client *dmsapi.Client

	healthy   atomic.Bool
	fails     atomic.Int32 // consecutive failures
	ejections atomic.Int64
	mu        sync.Mutex // guards lastErr
	lastErr   string
}

// Cluster is the smart cluster client: the routing tier as an embeddable
// Go API. It consistent-hashes ingest across shards, scatters queries
// and merges results, and replicates model writes. Safe for concurrent
// use. Construct with New, call Start to begin active health probing,
// Close to stop.
type Cluster struct {
	cfg   Config
	ring  *Ring
	nodes []*node

	// epoch counts membership transitions (ejections and recoveries).
	// Static membership means the shard set never changes — the epoch
	// versions the *health view* of it.
	epoch atomic.Int64

	// fitted latches once the coordinated bootstrap has run (or a shard
	// reported a fitted model); bootMu serializes the bootstrap itself.
	fitted atomic.Bool
	bootMu sync.Mutex

	// Serving counters surfaced in Stats.
	degraded atomic.Int64 // responses served with the Degraded flag
	reroutes atomic.Int64 // ingest sub-batches rerouted to a successor
	rr       atomic.Int64 // round-robin cursor for train placement

	stop chan struct{}
	done sync.WaitGroup
}

// New builds the cluster client. Shards are assumed healthy until a
// probe or serving call says otherwise; no connection is attempted here,
// so a cluster can be constructed before its shards finish booting.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("dmscluster: no shards configured")
	}
	cfg.defaults()
	c := &Cluster{
		cfg:  cfg,
		ring: NewRing(len(cfg.Shards), cfg.Vnodes),
		stop: make(chan struct{}),
	}
	for i, addr := range cfg.Shards {
		cl, err := dmsapi.NewClient(addr,
			dmsapi.WithoutPing(),
			dmsapi.WithRetry(cfg.Retries, cfg.Backoff),
			dmsapi.WithTimeout(cfg.Timeout),
		)
		if err != nil {
			return nil, fmt.Errorf("dmscluster: shard %d (%s): %w", i, addr, err)
		}
		n := &node{idx: i, addr: addr, client: cl}
		n.healthy.Store(true)
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// Start launches the active health-probe loop (no-op when
// ProbeInterval < 0).
func (c *Cluster) Start() {
	if c.cfg.ProbeInterval < 0 {
		return
	}
	c.done.Add(1)
	go func() {
		defer c.done.Done()
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

// Close stops probing and releases the per-shard connection pools.
func (c *Cluster) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.done.Wait()
	for _, n := range c.nodes {
		n.client.Close()
	}
}

// Epoch returns the membership epoch: the count of health transitions
// since construction.
func (c *Cluster) Epoch() int64 { return c.epoch.Load() }

// probeAll probes every shard's /healthz concurrently.
func (c *Cluster) probeAll() {
	var wg sync.WaitGroup
	for _, n := range c.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
			defer cancel()
			var hr dmsapi.HealthResponse
			if err := n.client.DoJSON(ctx, "GET", dmsapi.PathHealth, nil, &hr); err != nil {
				c.noteFailure(n, err)
				return
			}
			c.noteSuccess(n)
		}(n)
	}
	wg.Wait()
}

// noteFailure records a transport-level failure against a shard,
// ejecting it once FailAfter consecutive failures accumulate. Serving
// paths call this too, so a crashed shard is ejected at request speed,
// not probe speed.
func (c *Cluster) noteFailure(n *node, err error) {
	n.mu.Lock()
	n.lastErr = err.Error()
	n.mu.Unlock()
	if f := n.fails.Add(1); int(f) >= c.cfg.FailAfter && n.healthy.CompareAndSwap(true, false) {
		n.ejections.Add(1)
		c.epoch.Add(1)
		c.cfg.Logger.Warn("shard ejected",
			"shard", n.idx, "node", n.addr, "fails", f, "epoch", c.epoch.Load(), "err", err)
	}
}

// noteSuccess resets a shard's failure streak, re-admitting it if it was
// ejected.
func (c *Cluster) noteSuccess(n *node) {
	n.fails.Store(0)
	if n.healthy.CompareAndSwap(false, true) {
		c.epoch.Add(1)
		c.cfg.Logger.Info("shard re-admitted",
			"shard", n.idx, "node", n.addr, "epoch", c.epoch.Load())
	}
}

// shardFailure classifies an error from a per-shard call: only
// transport-level failures (the server never answered) count against
// health — a typed status response means the shard is alive and said no.
func (c *Cluster) shardFailure(n *node, err error) {
	var se *dmsapi.StatusError
	if errors.As(err, &se) {
		return
	}
	c.noteFailure(n, err)
}

// healthyNodes snapshots the currently healthy shard set.
func (c *Cluster) healthyNodes() []*node {
	out := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.healthy.Load() {
			out = append(out, n)
		}
	}
	return out
}

// NodeStatus is one shard's health view in ClusterStats.
type NodeStatus struct {
	Addr             string `json:"addr"`
	Healthy          bool   `json:"healthy"`
	ConsecutiveFails int    `json:"consecutive_fails"`
	Ejections        int64  `json:"ejections"`
	LastError        string `json:"last_error,omitempty"`
}

// ClusterStats is the cluster-membership block of the router's /statsz:
// per-node health, the membership epoch, and the routing tier's own
// serving counters.
type ClusterStats struct {
	Epoch             int64        `json:"epoch"`
	Shards            int          `json:"shards"`
	HealthyShards     int          `json:"healthy_shards"`
	UnhealthyShards   int          `json:"unhealthy_shards"`
	Fitted            bool         `json:"fitted"`
	DegradedResponses int64        `json:"degraded_responses"`
	Reroutes          int64        `json:"reroutes"`
	Nodes             []NodeStatus `json:"nodes"`
}

// Stats snapshots the cluster's membership and serving counters.
func (c *Cluster) Stats() ClusterStats {
	st := ClusterStats{
		Epoch:             c.epoch.Load(),
		Shards:            len(c.nodes),
		Fitted:            c.fitted.Load(),
		DegradedResponses: c.degraded.Load(),
		Reroutes:          c.reroutes.Load(),
		Nodes:             make([]NodeStatus, len(c.nodes)),
	}
	for i, n := range c.nodes {
		n.mu.Lock()
		lastErr := n.lastErr
		n.mu.Unlock()
		healthy := n.healthy.Load()
		if healthy {
			st.HealthyShards++
		} else {
			st.UnhealthyShards++
		}
		st.Nodes[i] = NodeStatus{
			Addr:             n.addr,
			Healthy:          healthy,
			ConsecutiveFails: int(n.fails.Load()),
			Ejections:        n.ejections.Load(),
			LastError:        lastErr,
		}
	}
	return st
}
