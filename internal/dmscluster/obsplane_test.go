package dmscluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"fairdms/internal/dmsapi"
	"fairdms/internal/dmscluster"
	"fairdms/internal/obs"
)

// httpGet fetches a router path and returns status + body.
func httpGet(t *testing.T, addr, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, body
}

func findFam(fams []obs.Family, name string) *obs.Family {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}

// TestRouterObservabilityPlane is the end-to-end acceptance test for the
// fleet observability plane: one federated /metricsz scrape carries every
// shard's series node-labeled plus dms_fleet_* aggregates; killing a
// shard mid-workload leaves degraded and errored traces in /debug/tracez,
// burns the SLO error budget visibly in /statsz and dms_slo_* families,
// and ages the dead shard's series out of the next scrape.
func TestRouterObservabilityPlane(t *testing.T) {
	ctx := context.Background()
	slos, err := obs.ParseSLOs("certainty:p99<5s,err<1%;nearest:p99<5s")
	if err != nil {
		t.Fatal(err)
	}
	cluster, servers := startCluster(t, 3, dmscluster.Config{
		BootstrapK: 4, Seed: 1, ProbeInterval: -1, FailAfter: 1,
	})
	router := dmscluster.NewRouter(cluster, dmscluster.RouterConfig{
		SLOs:      slos,
		TraceRing: 64,
	})
	addr, err := router.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		router.Shutdown(sctx)
	})
	client, err := dmsapi.NewClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	all := braggCorpus(29, 96)
	corpus, queries := all[:80], all[80:]
	if resp, err := client.IngestBatch("obs", corpus); err != nil || len(resp.Errors) > 0 {
		t.Fatalf("ingest: err=%v, doc errors=%v", err, resp.Errors)
	}
	for i := 0; i < 5; i++ {
		if _, err := client.Certainty(queries[:8], 0.5); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Nearest(queries[8:], true); err != nil {
			t.Fatal(err)
		}
	}

	shardAddrs := make([]string, 0, 3)
	for _, n := range cluster.Stats().Nodes {
		shardAddrs = append(shardAddrs, n.Addr)
	}

	// Phase 1: the federated exposition. One GET must yield a valid
	// exposition carrying every shard's series under its node label plus
	// the fleet aggregates and SLO families.
	code, body := httpGet(t, addr, dmsapi.PathMetrics)
	if code != http.StatusOK {
		t.Fatalf("GET /metricsz: status %d", code)
	}
	if _, err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("federated exposition invalid: %v", err)
	}
	for _, sa := range shardAddrs {
		if !strings.Contains(string(body), `node="`+sa+`"`) {
			t.Fatalf("federated exposition has no series for shard %s", sa)
		}
	}
	fams, err := obs.ParseExposition(body)
	if err != nil {
		t.Fatalf("re-parsing federated exposition: %v", err)
	}
	perNode := findFam(fams, "dms_requests_total")
	if perNode == nil {
		t.Fatal("per-node dms_requests_total family missing")
	}
	nodes := make(map[string]bool)
	var perNodeSum float64
	for _, s := range perNode.Samples {
		nodes[s.Get(obs.NodeLabel)] = true
		perNodeSum += s.Value
	}
	if len(nodes) != 3 {
		t.Fatalf("dms_requests_total covers %d nodes, want 3: %v", len(nodes), nodes)
	}
	fleet := findFam(fams, "dms_fleet_requests_total")
	if fleet == nil || len(fleet.Samples) != 1 {
		t.Fatalf("dms_fleet_requests_total missing or multi-sample: %+v", fleet)
	}
	if got := fleet.Samples[0].Value; got != perNodeSum || got <= 0 {
		t.Fatalf("fleet counter %v != per-node sum %v", got, perNodeSum)
	}
	for _, name := range []string{"dms_slo_budget", "dms_slo_fast_burn", "dms_slo_slow_burn"} {
		if findFam(fams, name) == nil {
			t.Fatalf("SLO family %s missing from exposition", name)
		}
	}

	// Phase 2: kill one shard mid-workload. Queries keep succeeding
	// degraded; one malformed request burns the certainty error budget.
	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	servers[2].Shutdown(shutCtx)
	for i := 0; i < 3; i++ {
		var cr dmsapi.CertaintyResponse
		req := dmsapi.CertaintyRequest{Samples: dmsapi.FromCodecSlice(queries[:8]), Threshold: 0.5}
		if err := client.DoJSON(ctx, "POST", dmsapi.PathCertainty, req, &cr); err != nil {
			t.Fatalf("certainty with one shard down: %v", err)
		}
		if !cr.Degraded {
			t.Fatal("post-kill certainty must be flagged degraded")
		}
	}
	badResp, err := http.Post("http://"+addr+dmsapi.PathCertainty, "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed certainty: status %d, want 400", badResp.StatusCode)
	}

	// Tail-based retention: the degraded and errored requests were kept.
	var tracez struct {
		Total  int64            `json:"total_retained"`
		Traces []obs.TraceEntry `json:"traces"`
	}
	code, body = httpGet(t, addr, dmsapi.PathTraces+"?degraded=true")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/tracez: status %d", code)
	}
	if err := json.Unmarshal(body, &tracez); err != nil {
		t.Fatalf("tracez response: %v", err)
	}
	if len(tracez.Traces) < 3 || tracez.Total < 3 {
		t.Fatalf("tracez retained %d degraded traces (total %d), want >= 3", len(tracez.Traces), tracez.Total)
	}
	for _, e := range tracez.Traces {
		if !e.Degraded || e.Op != "data.certainty" || len(e.Trace.Spans) == 0 {
			t.Fatalf("retained degraded trace malformed: %+v", e)
		}
	}
	code, body = httpGet(t, addr, dmsapi.PathTraces+"?error=true")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/tracez?error=true: status %d", code)
	}
	if err := json.Unmarshal(body, &tracez); err != nil {
		t.Fatal(err)
	}
	if len(tracez.Traces) == 0 || tracez.Traces[0].Error == "" {
		t.Fatalf("errored request not retained: %+v", tracez.Traces)
	}

	// SLO burn: one error among the certainty requests blows the 1%
	// budget, so the fast burn must exceed 1 and flag breaching.
	var stats dmscluster.RouterStats
	code, body = httpGet(t, addr, dmsapi.PathStats)
	if code != http.StatusOK {
		t.Fatalf("GET /statsz: status %d", code)
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.UptimeSeconds <= 0 || stats.GoVersion == "" {
		t.Fatalf("statsz identity block incomplete: uptime=%v go=%q", stats.UptimeSeconds, stats.GoVersion)
	}
	if len(stats.SLO) != 3 {
		t.Fatalf("statsz slo block has %d objectives, want 3: %+v", len(stats.SLO), stats.SLO)
	}
	var errObj *obs.SLOStatus
	for i := range stats.SLO {
		if stats.SLO[i].ID == "certainty_err" {
			errObj = &stats.SLO[i]
		}
	}
	if errObj == nil {
		t.Fatalf("certainty_err objective missing: %+v", stats.SLO)
	}
	if errObj.FastBurn <= 1 || !errObj.Breaching {
		t.Fatalf("certainty error budget should be burning: %+v", errObj)
	}

	// Phase 3: the dead shard's series age out — the next scrape covers
	// only the surviving membership, and the exposition stays valid.
	st := cluster.Stats()
	var dead string
	for _, n := range st.Nodes {
		if !n.Healthy {
			dead = n.Addr
		}
	}
	if dead == "" {
		t.Fatalf("no shard ejected after kill: %+v", st.Nodes)
	}
	code, body = httpGet(t, addr, dmsapi.PathMetrics)
	if code != http.StatusOK {
		t.Fatalf("GET /metricsz after kill: status %d", code)
	}
	if _, err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("post-kill exposition invalid: %v", err)
	}
	if strings.Contains(string(body), `node="`+dead+`"`) {
		t.Fatalf("dead shard %s still present in federated exposition", dead)
	}
	live := 0
	for _, sa := range shardAddrs {
		if sa != dead && strings.Contains(string(body), `node="`+sa+`"`) {
			live++
		}
	}
	if live != 2 {
		t.Fatalf("post-kill exposition covers %d surviving shards, want 2", live)
	}
	if !strings.Contains(string(body), fmt.Sprintf("dms_slo_fast_burn{objective=%q}", "certainty_err")) {
		t.Fatal("dms_slo_fast_burn{objective=\"certainty_err\"} series missing")
	}
	_ = ctx
}
