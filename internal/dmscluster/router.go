package dmscluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"fairdms/internal/dmsapi"
	"fairdms/internal/hdrhist"
	"fairdms/internal/obs"
)

// RouterConfig tunes the router's observability plane; the zero value is
// a working router with tracing retention and SLOs off.
type RouterConfig struct {
	// Logger receives request errors as leveled key=value events; nil
	// silences.
	Logger *obs.Logger
	// SLOs are the per-endpoint objectives evaluated over rolling windows
	// (parse with obs.ParseSLOs). Empty disables the SLO layer.
	SLOs []obs.SLO
	// TraceRing sizes the tail-based trace retention ring behind
	// GET /debug/tracez. Zero or negative disables retention (the route
	// answers 404).
	TraceRing int
	// TraceSlow is the latency threshold above which a request's span
	// tree is retained even when it succeeded cleanly. Zero or negative
	// means only errored and degraded requests are retained.
	TraceSlow time.Duration
	// ScrapeTimeout bounds the per-request fleet metrics scrape behind
	// the federated /metricsz (default 2s).
	ScrapeTimeout time.Duration
}

// Router serves the dmsapi /v1 surface over HTTP on top of a Cluster:
// the standalone routing tier (cmd/dmsrouter) for callers that cannot
// embed the smart client. Handlers are thin — every routing decision
// and merge lives on Cluster — plus the router's own observability:
// /statsz with per-node health and the membership epoch, a federated
// /metricsz merging every healthy shard's exposition under its own,
// tail-based trace retention at /debug/tracez, SLO burn rates, and
// X-Dms-Trace propagation so a sampled client sees one contiguous span
// tree across client, router, and shards.
type Router struct {
	cluster *Cluster
	cfg     RouterConfig
	logger  *obs.Logger
	mux     *http.ServeMux
	reg     *obs.Registry

	slo      *obs.SLOEvaluator
	tracelog *obs.TraceLog

	start     time.Time
	requests  atomic.Int64
	metrics   map[string]*routeMetrics
	epCount   *obs.CounterVec
	epErrors  *obs.CounterVec
	epLatency *obs.HistogramVec

	lis  net.Listener
	http *http.Server
}

type routeMetrics struct {
	count  *obs.Counter
	errors *obs.Counter
	hist   *hdrhist.Histogram
}

// RouterStats is the body of the router's GET /statsz. It carries the
// same uptime and build-identity block dmsd's Stats does, so fleet
// tooling (dmstop) reads one shape from both tiers.
type RouterStats struct {
	UptimeSeconds float64                        `json:"uptime_seconds"`
	GoVersion     string                         `json:"go_version"`
	Version       string                         `json:"version"`
	Revision      string                         `json:"revision"`
	Requests      int64                          `json:"requests"`
	Cluster       ClusterStats                   `json:"cluster"`
	Endpoints     map[string]RouterEndpointStats `json:"endpoints"`
	SLO           []obs.SLOStatus                `json:"slo,omitempty"`
}

// RouterEndpointStats is one endpoint's counters in RouterStats.
type RouterEndpointStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// NewRouter builds the HTTP tier over an existing cluster client. The
// caller owns the cluster's lifecycle (Start/Close).
func NewRouter(c *Cluster, cfg RouterConfig) *Router {
	rt := &Router{
		cluster:  c,
		cfg:      cfg,
		logger:   cfg.Logger,
		mux:      http.NewServeMux(),
		reg:      obs.NewRegistry(),
		slo:      obs.NewSLOEvaluator(cfg.SLOs),
		tracelog: obs.NewTraceLog(cfg.TraceRing),
		start:    time.Now(),
		metrics:  make(map[string]*routeMetrics),
	}
	rt.registerMetrics()
	rt.slo.Register(rt.reg)

	rt.route("POST "+dmsapi.PathIngest, "data.ingest", rt.handleIngest)
	rt.route("POST "+dmsapi.PathIngestBatch, "data.ingest_batch", rt.handleIngestBatch)
	rt.route("POST "+dmsapi.PathCertainty, "data.certainty", rt.handleCertainty)
	rt.route("POST "+dmsapi.PathLookup, "data.lookup", rt.handleLookup)
	rt.route("POST "+dmsapi.PathNearest, "data.nearest", rt.handleNearest)
	rt.route("POST "+dmsapi.PathPDF, "data.pdf", rt.handlePDF)
	rt.route("GET "+dmsapi.PathModels, "models.list", rt.handleModels)
	rt.route("POST "+dmsapi.PathModels, "models.add", rt.handleAddModel)
	rt.route("POST "+dmsapi.PathRecommend, "models.recommend", rt.handleRecommend)
	rt.route("GET "+dmsapi.PathCheckpoint, "models.checkpoint", rt.handleCheckpoint)
	rt.route("POST "+dmsapi.PathTrain, "train.submit", rt.handleTrainSubmit)
	rt.route("GET "+dmsapi.PathTrain, "train.list", rt.handleTrainList)
	rt.route("GET "+dmsapi.PathTrainJob, "train.get", rt.handleTrainGet)
	rt.route("POST "+dmsapi.PathTrainJob, "train.cancel", rt.handleTrainCancel)
	rt.route("GET "+dmsapi.PathHealth, "healthz", rt.handleHealth)
	rt.route("GET "+dmsapi.PathStats, "statsz", rt.handleStats)
	rt.route("GET "+dmsapi.PathMetrics, "metricsz", rt.handleMetrics)
	rt.route("GET "+dmsapi.PathTraces, "tracez", rt.handleTraces)
	return rt
}

// metaEndpoints are the router's own observability surfaces: they are
// excluded from SLO scoring and trace retention so a dashboard polling
// /statsz cannot burn an error budget or wash real traces out of the
// ring.
var metaEndpoints = map[string]bool{
	"healthz": true, "statsz": true, "metricsz": true, "tracez": true,
}

func (rt *Router) registerMetrics() {
	r := rt.reg
	r.CounterFunc("dms_router_requests_total", "requests handled by the router", rt.requests.Load)
	r.GaugeFunc("dms_router_shards", "configured shard count",
		func() float64 { return float64(len(rt.cluster.nodes)) })
	r.GaugeFunc("dms_router_healthy_shards", "shards currently admitted by health probing",
		func() float64 { return float64(len(rt.cluster.healthyNodes())) })
	r.CounterFunc("dms_router_membership_epoch", "membership health transitions since start",
		rt.cluster.epoch.Load)
	r.CounterFunc("dms_router_degraded_responses_total", "responses merged without every shard",
		rt.cluster.degraded.Load)
	r.CounterFunc("dms_router_reroutes_total", "ingest sub-batches rerouted off their hash owner",
		rt.cluster.reroutes.Load)
	r.CounterFunc("dms_router_retained_traces_total", "span trees retained by tail-based sampling",
		func() int64 { return rt.tracelog.Total() })
	rt.epCount = r.CounterVec("dms_router_endpoint_requests_total", "requests by endpoint", "endpoint")
	rt.epErrors = r.CounterVec("dms_router_endpoint_errors_total", "error responses by endpoint", "endpoint")
	rt.epLatency = r.HistogramVec("dms_router_endpoint_latency_seconds", "request latency by endpoint", "endpoint")
}

// route registers one handler with metrics, trace propagation, SLO
// scoring, and tail-based trace retention. The router rebuilds the
// inbound X-Dms-Trace as its own trace; per-shard calls attach each
// shard's span trailer to it, so the trailer the router sends back is
// the grafted router+shards subtree and the client's joined trace shows
// all four tiers contiguously. When the trace-retention ring is armed,
// the router builds that same tree for every non-meta request — not just
// client-sampled ones — and keeps it if the request turned out slow,
// errored, or degraded (tail-based sampling: decide after the outcome is
// known).
func (rt *Router) route(pattern, name string, h func(w http.ResponseWriter, r *http.Request) error) {
	m := &routeMetrics{
		count:  rt.epCount.With(name),
		errors: rt.epErrors.With(name),
		hist:   rt.epLatency.With(name),
	}
	rt.metrics[name] = m
	rt.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		rt.requests.Add(1)
		m.count.Inc()
		meta := metaEndpoints[name]

		id, sampled := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
		var tr *obs.Trace
		var root *obs.Span
		var flags *reqFlags
		if sampled || (!meta && rt.tracelog.Enabled()) {
			// The trace is marked sampled internally so shard calls carry
			// the header and the four-tier tree assembles even when only
			// the retention ring asked for it.
			tr = obs.NewTrace(id, true)
			ctx := obs.NewContext(r.Context(), tr)
			ctx, root = obs.StartSpan(ctx, "route")
			r = r.WithContext(ctx)
		}
		if !meta {
			ctx, f := withReqFlags(r.Context())
			r = r.WithContext(ctx)
			flags = f
		}
		if sampled {
			w.Header().Set("Trailer", obs.SpanHeader)
		}

		begin := time.Now()
		err := h(w, r)
		root.End()
		dur := time.Since(begin)
		m.hist.Record(dur)
		if sampled {
			w.Header().Set(obs.SpanHeader, obs.EncodeDump(tr.Dump()))
		}
		if err != nil {
			m.errors.Inc()
			rt.logger.Warn("request failed",
				"endpoint", name, "method", r.Method, "path", r.URL.Path,
				"dur", dur, "err", err)
			dmsapi.WriteStatusError(w, err)
		}
		if !meta {
			rt.slo.Observe(name, dur, err != nil)
			rt.retainTrace(name, dur, err, flags, tr)
		}
	})
}

// retainTrace applies the tail-based retention decision to one finished
// request.
func (rt *Router) retainTrace(name string, dur time.Duration, err error, flags *reqFlags, tr *obs.Trace) {
	if !rt.tracelog.Enabled() {
		return
	}
	degraded := flags != nil && flags.degraded.Load()
	slow := rt.cfg.TraceSlow > 0 && dur >= rt.cfg.TraceSlow
	if err == nil && !degraded && !slow {
		return
	}
	entry := obs.TraceEntry{
		Op:       name,
		DurMS:    float64(dur) / float64(time.Millisecond),
		At:       time.Now(),
		Degraded: degraded,
		Trace:    tr.Dump(),
	}
	if err != nil {
		entry.Error = err.Error()
	}
	rt.tracelog.Add(entry)
}

func decodeBody(r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return &dmsapi.StatusError{
			Code: http.StatusBadRequest, ErrCode: dmsapi.CodeBadRequest,
			Message: "invalid request body: " + err.Error(),
		}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.IngestRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	// The non-batch endpoint is all-or-nothing on a single node; the
	// router preserves that contract over the batch-shaped scatter.
	resp, err := rt.cluster.Ingest(r.Context(), dmsapi.IngestBatchRequest{Dataset: req.Dataset, Samples: req.Samples})
	if err != nil {
		return err
	}
	if len(resp.Errors) > 0 {
		return &dmsapi.StatusError{
			Code: http.StatusBadRequest, ErrCode: dmsapi.CodeBadRequest,
			Message: resp.Errors[0].Error,
		}
	}
	return writeJSON(w, dmsapi.IngestResponse{IDs: resp.IDs})
}

func (rt *Router) handleIngestBatch(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.IngestBatchRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	resp, err := rt.cluster.Ingest(r.Context(), req)
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleCertainty(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.CertaintyRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	resp, err := rt.cluster.Certainty(r.Context(), req)
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleLookup(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.LookupRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	resp, err := rt.cluster.Lookup(r.Context(), req)
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleNearest(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.NearestRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	resp, err := rt.cluster.Nearest(r.Context(), req)
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handlePDF(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.PDFRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	resp, err := rt.cluster.PDF(r.Context(), req)
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleModels(w http.ResponseWriter, r *http.Request) error {
	resp, err := rt.cluster.Models(r.Context())
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleAddModel(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.AddModelRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	resp, err := rt.cluster.AddModel(r.Context(), req)
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleRecommend(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.RecommendRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	resp, err := rt.cluster.Recommend(r.Context(), req)
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleCheckpoint(w http.ResponseWriter, r *http.Request) error {
	blob, err := rt.cluster.Checkpoint(r.Context(), r.PathValue("id"))
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, err = w.Write(blob)
	return err
}

func (rt *Router) handleTrainSubmit(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.TrainRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	job, err := rt.cluster.SubmitTrain(r.Context(), req)
	if err != nil {
		return err
	}
	w.WriteHeader(http.StatusAccepted)
	return writeJSON(w, job)
}

func (rt *Router) handleTrainList(w http.ResponseWriter, r *http.Request) error {
	resp, err := rt.cluster.TrainJobs(r.Context())
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleTrainGet(w http.ResponseWriter, r *http.Request) error {
	job, err := rt.cluster.TrainJob(r.Context(), r.PathValue("id"))
	if err != nil {
		return err
	}
	return writeJSON(w, job)
}

// handleTrainCancel serves POST /v1/train/{id}:cancel. Like the dmsapi
// server, the wildcard spans the whole segment and the ":cancel" action
// suffix is peeled off here.
func (rt *Router) handleTrainCancel(w http.ResponseWriter, r *http.Request) error {
	id, ok := strings.CutSuffix(r.PathValue("id"), ":cancel")
	if !ok {
		return &dmsapi.StatusError{
			Code: http.StatusNotFound, ErrCode: dmsapi.CodeNotFound,
			Message: fmt.Sprintf("train: POST %s is not an action (want {id}:cancel)", r.URL.Path),
		}
	}
	job, err := rt.cluster.CancelTrain(r.Context(), id)
	if err != nil {
		return err
	}
	return writeJSON(w, job)
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) error {
	resp, err := rt.cluster.Health(r.Context())
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) error {
	goVersion, version, revision := dmsapi.BuildIdentity()
	st := RouterStats{
		UptimeSeconds: time.Since(rt.start).Seconds(),
		GoVersion:     goVersion,
		Version:       version,
		Revision:      revision,
		Requests:      rt.requests.Load(),
		Cluster:       rt.cluster.Stats(),
		Endpoints:     make(map[string]RouterEndpointStats, len(rt.metrics)),
		SLO:           rt.slo.Status(),
	}
	for name, m := range rt.metrics {
		snap := m.hist.Snapshot()
		st.Endpoints[name] = RouterEndpointStats{
			Count:  m.count.Value(),
			Errors: m.errors.Value(),
			P50MS:  float64(snap.Quantile(0.50)) / float64(time.Millisecond),
			P99MS:  float64(snap.Quantile(0.99)) / float64(time.Millisecond),
			MaxMS:  float64(snap.Max()) / float64(time.Millisecond),
		}
	}
	return writeJSON(w, st)
}

// handleMetrics serves the federated exposition: the router's own
// dms_router_*/dms_slo_* families first, then every healthy shard's
// families relabeled with node=<addr>, then the dms_fleet_* aggregates —
// one scrape point for the whole cluster. Shard and fleet family names
// never collide with the router's own (dms_* vs dms_router_*), so the
// concatenation stays a valid exposition.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	rt.slo.Status() // refresh burn-rate gauges before rendering
	var b strings.Builder
	if err := rt.reg.WritePrometheus(&b); err != nil {
		// obs surfaces report ErrDisabled for switched-off subsystems;
		// map it to 404 at the boundary like dmsd does.
		if errors.Is(err, obs.ErrDisabled) {
			return &dmsapi.StatusError{Code: http.StatusNotFound, ErrCode: dmsapi.CodeNotFound, Message: err.Error()}
		}
		return &dmsapi.StatusError{Code: http.StatusInternalServerError, ErrCode: dmsapi.CodeInternal, Message: "metrics export: " + err.Error()}
	}
	fleet := obs.Federate(rt.cluster.ScrapeFleet(r.Context(), rt.cfg.ScrapeTimeout))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	_, err := w.Write(obs.RenderExposition(fleet))
	return err
}

// handleTraces serves GET /debug/tracez: the tail-retained span trees,
// newest first, filterable by ?op=&min_ms=&error=&degraded=.
func (rt *Router) handleTraces(w http.ResponseWriter, r *http.Request) error {
	q := obs.TraceQuery{Op: r.URL.Query().Get("op")}
	if v := r.URL.Query().Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return &dmsapi.StatusError{
				Code: http.StatusBadRequest, ErrCode: dmsapi.CodeBadRequest,
				Message: "tracez: bad min_ms: " + err.Error(),
			}
		}
		q.MinMS = ms
	}
	for _, f := range []struct {
		name string
		dst  **bool
	}{{"error", &q.Error}, {"degraded", &q.Degraded}} {
		if v := r.URL.Query().Get(f.name); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return &dmsapi.StatusError{
					Code: http.StatusBadRequest, ErrCode: dmsapi.CodeBadRequest,
					Message: "tracez: bad " + f.name + ": " + err.Error(),
				}
			}
			*f.dst = &b
		}
	}
	entries, err := rt.tracelog.Query(q)
	if errors.Is(err, obs.ErrDisabled) {
		return &dmsapi.StatusError{Code: http.StatusNotFound, ErrCode: dmsapi.CodeNotFound, Message: err.Error()}
	}
	if err != nil {
		return &dmsapi.StatusError{Code: http.StatusInternalServerError, ErrCode: dmsapi.CodeInternal, Message: "tracez: " + err.Error()}
	}
	return writeJSON(w, struct {
		Total  int64            `json:"total_retained"`
		Traces []obs.TraceEntry `json:"traces"`
	}{Total: rt.tracelog.Total(), Traces: entries})
}

// Handler exposes the routing table (e.g. for httptest).
func (rt *Router) Handler() http.Handler { return rt.mux }

// Listen binds to addr and serves in a background goroutine, returning
// the bound address.
func (rt *Router) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	rt.lis = lis
	rt.http = &http.Server{
		Handler:           rt.mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go rt.http.Serve(lis)
	return lis.Addr().String(), nil
}

// Shutdown gracefully stops the HTTP tier (the cluster's lifecycle is
// the caller's).
func (rt *Router) Shutdown(ctx context.Context) error {
	if rt.http == nil {
		return nil
	}
	return rt.http.Shutdown(ctx)
}
