package dmscluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"fairdms/internal/dmsapi"
	"fairdms/internal/hdrhist"
	"fairdms/internal/obs"
)

// Router serves the dmsapi /v1 surface over HTTP on top of a Cluster:
// the standalone routing tier (cmd/dmsrouter) for callers that cannot
// embed the smart client. Handlers are thin — every routing decision
// and merge lives on Cluster — plus the router's own observability:
// /statsz with per-node health and the membership epoch, /metricsz in
// Prometheus text form, and X-Dms-Trace propagation so a sampled client
// sees one contiguous span tree across client, router, and shards.
type Router struct {
	cluster *Cluster
	logger  *log.Logger
	mux     *http.ServeMux
	reg     *obs.Registry

	start     time.Time
	requests  atomic.Int64
	metrics   map[string]*routeMetrics
	epCount   *obs.CounterVec
	epErrors  *obs.CounterVec
	epLatency *obs.HistogramVec

	lis  net.Listener
	http *http.Server
}

type routeMetrics struct {
	count  *obs.Counter
	errors *obs.Counter
	hist   *hdrhist.Histogram
}

// RouterStats is the body of the router's GET /statsz.
type RouterStats struct {
	UptimeSeconds float64                        `json:"uptime_seconds"`
	Requests      int64                          `json:"requests"`
	Cluster       ClusterStats                   `json:"cluster"`
	Endpoints     map[string]RouterEndpointStats `json:"endpoints"`
}

// RouterEndpointStats is one endpoint's counters in RouterStats.
type RouterEndpointStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// NewRouter builds the HTTP tier over an existing cluster client. The
// caller owns the cluster's lifecycle (Start/Close).
func NewRouter(c *Cluster, logger *log.Logger) *Router {
	rt := &Router{
		cluster: c,
		logger:  logger,
		mux:     http.NewServeMux(),
		reg:     obs.NewRegistry(),
		start:   time.Now(),
		metrics: make(map[string]*routeMetrics),
	}
	rt.registerMetrics()

	rt.route("POST "+dmsapi.PathIngest, "data.ingest", rt.handleIngest)
	rt.route("POST "+dmsapi.PathIngestBatch, "data.ingest_batch", rt.handleIngestBatch)
	rt.route("POST "+dmsapi.PathCertainty, "data.certainty", rt.handleCertainty)
	rt.route("POST "+dmsapi.PathLookup, "data.lookup", rt.handleLookup)
	rt.route("POST "+dmsapi.PathNearest, "data.nearest", rt.handleNearest)
	rt.route("POST "+dmsapi.PathPDF, "data.pdf", rt.handlePDF)
	rt.route("GET "+dmsapi.PathModels, "models.list", rt.handleModels)
	rt.route("POST "+dmsapi.PathModels, "models.add", rt.handleAddModel)
	rt.route("POST "+dmsapi.PathRecommend, "models.recommend", rt.handleRecommend)
	rt.route("GET "+dmsapi.PathCheckpoint, "models.checkpoint", rt.handleCheckpoint)
	rt.route("POST "+dmsapi.PathTrain, "train.submit", rt.handleTrainSubmit)
	rt.route("GET "+dmsapi.PathTrain, "train.list", rt.handleTrainList)
	rt.route("GET "+dmsapi.PathTrainJob, "train.get", rt.handleTrainGet)
	rt.route("POST "+dmsapi.PathTrainJob, "train.cancel", rt.handleTrainCancel)
	rt.route("GET "+dmsapi.PathHealth, "healthz", rt.handleHealth)
	rt.route("GET "+dmsapi.PathStats, "statsz", rt.handleStats)
	rt.route("GET "+dmsapi.PathMetrics, "metricsz", rt.handleMetrics)
	return rt
}

func (rt *Router) registerMetrics() {
	r := rt.reg
	r.CounterFunc("dms_router_requests_total", "requests handled by the router", rt.requests.Load)
	r.GaugeFunc("dms_router_shards", "configured shard count",
		func() float64 { return float64(len(rt.cluster.nodes)) })
	r.GaugeFunc("dms_router_healthy_shards", "shards currently admitted by health probing",
		func() float64 { return float64(len(rt.cluster.healthyNodes())) })
	r.CounterFunc("dms_router_membership_epoch", "membership health transitions since start",
		rt.cluster.epoch.Load)
	r.CounterFunc("dms_router_degraded_responses_total", "responses merged without every shard",
		rt.cluster.degraded.Load)
	r.CounterFunc("dms_router_reroutes_total", "ingest sub-batches rerouted off their hash owner",
		rt.cluster.reroutes.Load)
	rt.epCount = r.CounterVec("dms_router_endpoint_requests_total", "requests by endpoint", "endpoint")
	rt.epErrors = r.CounterVec("dms_router_endpoint_errors_total", "error responses by endpoint", "endpoint")
	rt.epLatency = r.HistogramVec("dms_router_endpoint_latency_seconds", "request latency by endpoint", "endpoint")
}

// route registers one handler with metrics and trace propagation. The
// router rebuilds the inbound X-Dms-Trace as its own trace; per-shard
// calls attach each shard's span trailer to it, so the trailer the
// router sends back is the grafted router+shards subtree and the
// client's joined trace shows all four tiers contiguously.
func (rt *Router) route(pattern, name string, h func(w http.ResponseWriter, r *http.Request) error) {
	m := &routeMetrics{
		count:  rt.epCount.With(name),
		errors: rt.epErrors.With(name),
		hist:   rt.epLatency.With(name),
	}
	rt.metrics[name] = m
	rt.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		rt.requests.Add(1)
		m.count.Inc()

		id, sampled := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
		var tr *obs.Trace
		var root *obs.Span
		if sampled {
			tr = obs.NewTrace(id, sampled)
			ctx := obs.NewContext(r.Context(), tr)
			ctx, root = obs.StartSpan(ctx, "route")
			r = r.WithContext(ctx)
			w.Header().Set("Trailer", obs.SpanHeader)
		}

		begin := time.Now()
		err := h(w, r)
		root.End()
		m.hist.Record(time.Since(begin))
		if tr.Sampled() {
			w.Header().Set(obs.SpanHeader, obs.EncodeDump(tr.Dump()))
		}
		if err != nil {
			m.errors.Inc()
			if rt.logger != nil {
				rt.logger.Printf("dmsrouter: %s %s: %v", r.Method, r.URL.Path, err)
			}
			dmsapi.WriteStatusError(w, err)
		}
	})
}

func decodeBody(r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return &dmsapi.StatusError{
			Code: http.StatusBadRequest, ErrCode: dmsapi.CodeBadRequest,
			Message: "invalid request body: " + err.Error(),
		}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.IngestRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	// The non-batch endpoint is all-or-nothing on a single node; the
	// router preserves that contract over the batch-shaped scatter.
	resp, err := rt.cluster.Ingest(r.Context(), dmsapi.IngestBatchRequest{Dataset: req.Dataset, Samples: req.Samples})
	if err != nil {
		return err
	}
	if len(resp.Errors) > 0 {
		return &dmsapi.StatusError{
			Code: http.StatusBadRequest, ErrCode: dmsapi.CodeBadRequest,
			Message: resp.Errors[0].Error,
		}
	}
	return writeJSON(w, dmsapi.IngestResponse{IDs: resp.IDs})
}

func (rt *Router) handleIngestBatch(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.IngestBatchRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	resp, err := rt.cluster.Ingest(r.Context(), req)
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleCertainty(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.CertaintyRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	resp, err := rt.cluster.Certainty(r.Context(), req)
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleLookup(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.LookupRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	resp, err := rt.cluster.Lookup(r.Context(), req)
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleNearest(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.NearestRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	resp, err := rt.cluster.Nearest(r.Context(), req)
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handlePDF(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.PDFRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	resp, err := rt.cluster.PDF(r.Context(), req)
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleModels(w http.ResponseWriter, r *http.Request) error {
	resp, err := rt.cluster.Models(r.Context())
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleAddModel(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.AddModelRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	resp, err := rt.cluster.AddModel(r.Context(), req)
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleRecommend(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.RecommendRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	resp, err := rt.cluster.Recommend(r.Context(), req)
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleCheckpoint(w http.ResponseWriter, r *http.Request) error {
	blob, err := rt.cluster.Checkpoint(r.Context(), r.PathValue("id"))
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, err = w.Write(blob)
	return err
}

func (rt *Router) handleTrainSubmit(w http.ResponseWriter, r *http.Request) error {
	var req dmsapi.TrainRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	job, err := rt.cluster.SubmitTrain(r.Context(), req)
	if err != nil {
		return err
	}
	w.WriteHeader(http.StatusAccepted)
	return writeJSON(w, job)
}

func (rt *Router) handleTrainList(w http.ResponseWriter, r *http.Request) error {
	resp, err := rt.cluster.TrainJobs(r.Context())
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleTrainGet(w http.ResponseWriter, r *http.Request) error {
	job, err := rt.cluster.TrainJob(r.Context(), r.PathValue("id"))
	if err != nil {
		return err
	}
	return writeJSON(w, job)
}

// handleTrainCancel serves POST /v1/train/{id}:cancel. Like the dmsapi
// server, the wildcard spans the whole segment and the ":cancel" action
// suffix is peeled off here.
func (rt *Router) handleTrainCancel(w http.ResponseWriter, r *http.Request) error {
	id, ok := strings.CutSuffix(r.PathValue("id"), ":cancel")
	if !ok {
		return &dmsapi.StatusError{
			Code: http.StatusNotFound, ErrCode: dmsapi.CodeNotFound,
			Message: fmt.Sprintf("train: POST %s is not an action (want {id}:cancel)", r.URL.Path),
		}
	}
	job, err := rt.cluster.CancelTrain(r.Context(), id)
	if err != nil {
		return err
	}
	return writeJSON(w, job)
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) error {
	resp, err := rt.cluster.Health(r.Context())
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) error {
	st := RouterStats{
		UptimeSeconds: time.Since(rt.start).Seconds(),
		Requests:      rt.requests.Load(),
		Cluster:       rt.cluster.Stats(),
		Endpoints:     make(map[string]RouterEndpointStats, len(rt.metrics)),
	}
	for name, m := range rt.metrics {
		snap := m.hist.Snapshot()
		st.Endpoints[name] = RouterEndpointStats{
			Count:  m.count.Value(),
			Errors: m.errors.Value(),
			P50MS:  float64(snap.Quantile(0.50)) / float64(time.Millisecond),
			P99MS:  float64(snap.Quantile(0.99)) / float64(time.Millisecond),
			MaxMS:  float64(snap.Max()) / float64(time.Millisecond),
		}
	}
	return writeJSON(w, st)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := rt.reg.WritePrometheus(w); err != nil {
		// obs surfaces report ErrDisabled for switched-off subsystems;
		// map it to 404 at the boundary like dmsd does.
		if errors.Is(err, obs.ErrDisabled) {
			return &dmsapi.StatusError{Code: http.StatusNotFound, ErrCode: dmsapi.CodeNotFound, Message: err.Error()}
		}
		return &dmsapi.StatusError{Code: http.StatusInternalServerError, ErrCode: dmsapi.CodeInternal, Message: "metrics export: " + err.Error()}
	}
	return nil
}

// Handler exposes the routing table (e.g. for httptest).
func (rt *Router) Handler() http.Handler { return rt.mux }

// Listen binds to addr and serves in a background goroutine, returning
// the bound address.
func (rt *Router) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	rt.lis = lis
	rt.http = &http.Server{
		Handler:           rt.mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go rt.http.Serve(lis)
	return lis.Addr().String(), nil
}

// Shutdown gracefully stops the HTTP tier (the cluster's lifecycle is
// the caller's).
func (rt *Router) Shutdown(ctx context.Context) error {
	if rt.http == nil {
		return nil
	}
	return rt.http.Shutdown(ctx)
}
