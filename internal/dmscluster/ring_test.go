package dmscluster

import (
	"fmt"
	"testing"
)

// TestRingDeterminism pins the property every tier relies on: two rings
// built alike route every key alike — a router restart (or a second
// router instance) must not move documents.
func TestRingDeterminism(t *testing.T) {
	a := NewRing(5, 0)
	b := NewRing(5, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q owner differs across identical rings: %d vs %d", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingDistribution checks virtual nodes keep the load split usable:
// no shard owns more than twice its fair share over a large key set.
func TestRingDistribution(t *testing.T) {
	const n, keys = 4, 20000
	r := NewRing(n, 0)
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("doc-%d", i))]++
	}
	fair := keys / n
	for shard, c := range counts {
		if c > 2*fair || c < fair/2 {
			t.Fatalf("shard %d owns %d of %d keys (fair share %d): distribution too skewed: %v",
				shard, c, keys, fair, counts)
		}
	}
}

// TestRingSuccessors checks the fail-open fallback order: every key's
// successor list covers all shards exactly once, starting at the owner.
func TestRingSuccessors(t *testing.T) {
	const n = 5
	r := NewRing(n, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("doc-%d", i)
		succ := r.Successors(key)
		if len(succ) != n {
			t.Fatalf("key %q: successor list has %d entries, want %d", key, len(succ), n)
		}
		if succ[0] != r.Owner(key) {
			t.Fatalf("key %q: successors start at %d, owner is %d", key, succ[0], r.Owner(key))
		}
		seen := make(map[int]bool)
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %q: shard %d appears twice in %v", key, s, succ)
			}
			seen[s] = true
		}
	}
}

// TestContentKey pins routing as a pure content function: identical
// payloads agree, any payload or label change moves the key.
func TestContentKey(t *testing.T) {
	data := []byte{1, 2, 3, 4}
	label := []float64{0.5, 1.5}
	k1 := ContentKey(data, label)
	k2 := ContentKey([]byte{1, 2, 3, 4}, []float64{0.5, 1.5})
	if k1 != k2 {
		t.Fatalf("identical content produced different keys: %q vs %q", k1, k2)
	}
	if ContentKey([]byte{1, 2, 3, 5}, label) == k1 {
		t.Fatal("payload change did not move the content key")
	}
	if ContentKey(data, []float64{0.5, 1.6}) == k1 {
		t.Fatal("label change did not move the content key")
	}
	if ContentKey(data, nil) == k1 {
		t.Fatal("dropping labels did not move the content key")
	}
}
