package dmscluster_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/datagen"
	"fairdms/internal/dmsapi"
	"fairdms/internal/dmscluster"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/fairds"
	"fairdms/internal/fairms"
	"fairdms/internal/nn"
	"fairdms/internal/obs"
	"fairdms/internal/tensor"
)

// poolEmbedder embeds by pooled statistics — deterministic and
// training-free, so every shard (and the single-node reference) embeds
// identically, which is the replicated-model premise the scatter merges
// rely on.
type poolEmbedder struct{ dim int }

func (e poolEmbedder) Dim() int { return e.dim }
func (e poolEmbedder) Embed(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Dim(0), e.dim)
	feats := x.Dim(1)
	chunk := (feats + e.dim - 1) / e.dim
	for i := 0; i < x.Dim(0); i++ {
		row := x.Row(i)
		for d := 0; d < e.dim; d++ {
			lo := d * chunk
			hi := min(lo+chunk, feats)
			s := 0.0
			for _, v := range row[lo:hi] {
				s += v
			}
			if hi > lo {
				out.Set(s/float64(hi-lo), i, d)
			}
		}
	}
	return out
}

var _ embed.Embedder = poolEmbedder{}

// startShard boots one dmsd-shaped server with its own document-ID
// namespace (per-shard collection, like dmsd -node-id) and the shared
// determinism seed.
func startShard(t *testing.T, name string, trainWorkers int) (*dmsapi.Server, string) {
	t.Helper()
	store := docstore.NewStore().Collection("peaks-" + name)
	svc, err := fairds.New(poolEmbedder{dim: 6}, store, fairds.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dmsapi.NewServer(dmsapi.ServerConfig{
		DS: svc, Zoo: fairms.NewZoo(),
		TrainWorkers: trainWorkers, TrainQueue: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, addr
}

// startCluster boots n shards and a cluster client over them.
func startCluster(t *testing.T, n int, cfg dmscluster.Config) (*dmscluster.Cluster, []*dmsapi.Server) {
	t.Helper()
	servers := make([]*dmsapi.Server, n)
	for i := 0; i < n; i++ {
		srv, addr := startShard(t, fmt.Sprintf("s%d", i), 0)
		servers[i] = srv
		cfg.Shards = append(cfg.Shards, addr)
	}
	c, err := dmscluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, servers
}

// braggCorpus generates n labeled samples mixing two regimes.
func braggCorpus(seed int64, n int) []*codec.Sample {
	rng := rand.New(rand.NewSource(seed))
	ra := datagen.DefaultBraggRegime()
	ra.Patch = 11
	rb := ra
	rb.WidthMean = 4.0
	rb.AmpMean = 25
	out := append(ra.Generate(rng, n/2), rb.Generate(rng, n-n/2)...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

const floatTol = 1e-9

// TestClusterMergeEqualsSingleNode is the core property of the scatter
// tier: a cluster over N shards answers nearest / certainty / PDF /
// lookup exactly like one node holding the same corpus — the partition
// is invisible to readers.
func TestClusterMergeEqualsSingleNode(t *testing.T) {
	all := braggCorpus(11, 136)
	corpus, queries := all[:120], all[120:]
	const k = 4
	ctx := context.Background()

	// Single-node reference: explicit fit on the full corpus (the same
	// batch the cluster bootstrap fits on), then ingest it.
	_, refAddr := startShard(t, "ref", 0)
	ref, err := dmsapi.NewClient(refAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Close)
	if _, err := ref.Fit(ctx, corpus, k); err != nil {
		t.Fatal(err)
	}
	if resp, err := ref.IngestBatch("ref", corpus); err != nil || len(resp.Errors) > 0 {
		t.Fatalf("reference ingest: err=%v, doc errors=%v", err, resp.Errors)
	}

	// Cluster under test: the first ingest runs the coordinated bootstrap
	// (every shard fitted on the full batch) and hash-partitions the docs.
	cluster, _ := startCluster(t, 3, dmscluster.Config{BootstrapK: k, Seed: 1, ProbeInterval: -1})
	ingest, err := cluster.Ingest(ctx, dmsapi.IngestBatchRequest{Dataset: "clu", Samples: dmsapi.FromCodecSlice(corpus)})
	if err != nil {
		t.Fatal(err)
	}
	if len(ingest.Errors) > 0 || ingest.Inserted != len(corpus) {
		t.Fatalf("cluster ingest: inserted %d/%d, errors %v", ingest.Inserted, len(corpus), ingest.Errors)
	}

	wireQ := dmsapi.FromCodecSlice(queries)

	// Certainty: fan-out mean over replicated models == single value.
	singleCert, err := ref.Certainty(queries, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	clusterCert, err := cluster.Certainty(ctx, dmsapi.CertaintyRequest{Samples: wireQ, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(singleCert-clusterCert.Certainty) > floatTol {
		t.Fatalf("certainty diverged: single %v, cluster %v", singleCert, clusterCert.Certainty)
	}
	if clusterCert.Degraded {
		t.Fatal("healthy cluster flagged certainty degraded")
	}

	// PDF: element-wise equal.
	singlePDF, err := ref.PDF(queries)
	if err != nil {
		t.Fatal(err)
	}
	clusterPDF, err := cluster.PDF(ctx, dmsapi.PDFRequest{Samples: wireQ})
	if err != nil {
		t.Fatal(err)
	}
	if len(singlePDF) != len(clusterPDF.PDF) {
		t.Fatalf("pdf length diverged: single %d, cluster %d", len(singlePDF), len(clusterPDF.PDF))
	}
	for i := range singlePDF {
		if math.Abs(singlePDF[i]-clusterPDF.PDF[i]) > floatTol {
			t.Fatalf("pdf[%d] diverged: single %v, cluster %v", i, singlePDF[i], clusterPDF.PDF[i])
		}
	}

	// Nearest, plain and distinct: per-position distances equal (document
	// IDs live in different namespaces, so distance is the comparable).
	for _, distinct := range []bool{false, true} {
		singleNear, err := ref.NearestExcluding(ctx, queries, distinct, nil)
		if err != nil {
			t.Fatal(err)
		}
		clusterNear, err := cluster.Nearest(ctx, dmsapi.NearestRequest{Samples: wireQ, Distinct: distinct})
		if err != nil {
			t.Fatal(err)
		}
		if len(clusterNear.Matches) != len(singleNear.Matches) {
			t.Fatalf("distinct=%v: match count diverged", distinct)
		}
		for i := range singleNear.Matches {
			s, c := singleNear.Matches[i], clusterNear.Matches[i]
			if s.Found != c.Found {
				t.Fatalf("distinct=%v match[%d]: found diverged (single %v, cluster %v)", distinct, i, s.Found, c.Found)
			}
			if s.Found && math.Abs(s.Dist-c.Dist) > floatTol {
				t.Fatalf("distinct=%v match[%d]: dist diverged (single %v, cluster %v)", distinct, i, s.Dist, c.Dist)
			}
		}
		if distinct {
			seen := make(map[string]bool)
			for _, m := range clusterNear.Matches {
				if m.Found && seen[m.DocID] {
					t.Fatalf("distinct cluster match reused document %s", m.DocID)
				}
				seen[m.DocID] = true
			}
		}
	}

	// Exclusion predicates travel the wire: excluding each side's best
	// match for a query yields the same next-best distance.
	q0 := queries[:1]
	singleBest, err := ref.NearestExcluding(ctx, q0, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	clusterBest, err := cluster.Nearest(ctx, dmsapi.NearestRequest{Samples: dmsapi.FromCodecSlice(q0)})
	if err != nil {
		t.Fatal(err)
	}
	singleNext, err := ref.NearestExcluding(ctx, q0, false, []string{singleBest.Matches[0].DocID})
	if err != nil {
		t.Fatal(err)
	}
	clusterNext, err := cluster.Nearest(ctx, dmsapi.NearestRequest{
		Samples: dmsapi.FromCodecSlice(q0),
		Exclude: []string{clusterBest.Matches[0].DocID},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(singleNext.Matches[0].Dist-clusterNext.Matches[0].Dist) > floatTol {
		t.Fatalf("excluded next-best diverged: single %v, cluster %v",
			singleNext.Matches[0].Dist, clusterNext.Matches[0].Dist)
	}
	if clusterNext.Matches[0].DocID == clusterBest.Matches[0].DocID {
		t.Fatal("cluster nearest returned an excluded document")
	}

	// Lookup: per-cluster apportioned counts match, and every returned
	// sample is a real corpus member.
	singleLook, err := ref.Lookup(queries)
	if err != nil {
		t.Fatal(err)
	}
	clusterLook, err := cluster.Lookup(ctx, dmsapi.LookupRequest{Samples: wireQ})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusterLook.Samples) != len(singleLook) {
		t.Fatalf("lookup size diverged: single %d, cluster %d", len(singleLook), len(clusterLook.Samples))
	}
	corpusKeys := make(map[string]bool, len(corpus))
	for _, s := range corpus {
		corpusKeys[dmscluster.ContentKey(s.Data, s.Label)] = true
	}
	for i, s := range clusterLook.Samples {
		if !corpusKeys[dmscluster.ContentKey(s.Data, s.Label)] {
			t.Fatalf("cluster lookup sample %d is not a corpus member", i)
		}
	}
}

// TestClusterModelPlane checks zoo replication: one registration reaches
// every shard, recommend/checkpoint answer from any, and both survive a
// shard loss.
func TestClusterModelPlane(t *testing.T) {
	ctx := context.Background()
	cluster, servers := startCluster(t, 3, dmscluster.Config{Seed: 1, ProbeInterval: -1, FailAfter: 1})

	rng := rand.New(rand.NewSource(3))
	state := nn.Sequential(nn.NewLinear(rng, 4, 2)).State()
	blob, err := state.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	pdf := []float64{0.5, 0.3, 0.2}
	if _, err := cluster.AddModel(ctx, dmsapi.AddModelRequest{ID: "m1", PDF: pdf, State: blob}); err != nil {
		t.Fatal(err)
	}
	// Re-registering is replication-idempotent, surfaced as the conflict
	// the single-node API would return.
	_, err = cluster.AddModel(ctx, dmsapi.AddModelRequest{ID: "m1", PDF: pdf, State: blob})
	if !errors.Is(err, dmsapi.ErrDuplicateModel) {
		t.Fatalf("duplicate registration: got %v, want ErrDuplicateModel", err)
	}

	models, err := cluster.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models.Models) != 1 || models.Models[0].ID != "m1" {
		t.Fatalf("cluster models: %+v", models.Models)
	}

	rec, err := cluster.Recommend(ctx, dmsapi.RecommendRequest{PDF: pdf})
	if err != nil || !rec.OK || rec.ID != "m1" {
		t.Fatalf("recommend: %+v, err %v", rec, err)
	}
	if _, err := cluster.Checkpoint(ctx, "m1"); err != nil {
		t.Fatal(err)
	}

	// Kill one shard: the replicated zoo keeps serving.
	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	servers[0].Shutdown(shutCtx)
	rec, err = cluster.Recommend(ctx, dmsapi.RecommendRequest{PDF: pdf})
	if err != nil || !rec.OK || rec.ID != "m1" {
		t.Fatalf("recommend after shard loss: %+v, err %v", rec, err)
	}
	if !rec.Degraded {
		t.Fatal("recommend after shard loss should be flagged degraded")
	}
	if _, err := cluster.Checkpoint(ctx, "m1"); err != nil {
		t.Fatalf("checkpoint after shard loss: %v", err)
	}
}

// TestClusterDegradedReads checks partial-failure semantics: with one of
// three shards down, fan-out reads keep answering from the survivors
// with the Degraded flag set, ingest routes around the dead owner, and
// the membership view records the ejection.
func TestClusterDegradedReads(t *testing.T) {
	ctx := context.Background()
	all := braggCorpus(13, 96)
	corpus, queries := all[:80], all[80:]
	cluster, servers := startCluster(t, 3, dmscluster.Config{
		BootstrapK: 4, Seed: 1, ProbeInterval: -1, FailAfter: 1,
	})
	if _, err := cluster.Ingest(ctx, dmsapi.IngestBatchRequest{Dataset: "d", Samples: dmsapi.FromCodecSlice(corpus)}); err != nil {
		t.Fatal(err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	servers[1].Shutdown(shutCtx)

	resp, err := cluster.Certainty(ctx, dmsapi.CertaintyRequest{Samples: dmsapi.FromCodecSlice(queries), Threshold: 0.5})
	if err != nil {
		t.Fatalf("certainty with one shard down: %v", err)
	}
	if !resp.Degraded {
		t.Fatal("certainty served without a shard must be flagged degraded")
	}

	near, err := cluster.Nearest(ctx, dmsapi.NearestRequest{Samples: dmsapi.FromCodecSlice(queries), Distinct: true})
	if err != nil {
		t.Fatalf("nearest with one shard down: %v", err)
	}
	if !near.Degraded {
		t.Fatal("nearest served without a shard must be flagged degraded")
	}

	// Ingest fail-open: documents owned by the dead shard land on its
	// ring successor instead of failing.
	more := braggCorpus(17, 30)
	ing, err := cluster.Ingest(ctx, dmsapi.IngestBatchRequest{Dataset: "d", Samples: dmsapi.FromCodecSlice(more)})
	if err != nil {
		t.Fatalf("ingest with one shard down: %v", err)
	}
	if ing.Inserted != len(more) || len(ing.Errors) > 0 {
		t.Fatalf("fail-open ingest landed %d/%d docs, errors %v", ing.Inserted, len(more), ing.Errors)
	}

	st := cluster.Stats()
	if st.UnhealthyShards != 1 || st.HealthyShards != 2 {
		t.Fatalf("membership after shard loss: %+v", st)
	}
	if st.Epoch == 0 {
		t.Fatal("ejection must bump the membership epoch")
	}
	if st.DegradedResponses == 0 {
		t.Fatal("degraded responses must be counted")
	}
	unhealthy := 0
	for _, n := range st.Nodes {
		if !n.Healthy {
			unhealthy++
			if n.Ejections == 0 || n.LastError == "" {
				t.Fatalf("ejected node carries no diagnosis: %+v", n)
			}
		}
	}
	if unhealthy != 1 {
		t.Fatalf("want exactly one unhealthy node, got %d", unhealthy)
	}
}

// TestClusterStatusPassthrough checks envelope losslessness: a typed
// shard status (409 not_fitted) crosses the scatter layer with its
// status, code, and sentinel identity intact.
func TestClusterStatusPassthrough(t *testing.T) {
	ctx := context.Background()
	// BootstrapK 0: the cluster never fits, so unfitted shards answer 409.
	cluster, _ := startCluster(t, 2, dmscluster.Config{Seed: 1, ProbeInterval: -1})

	q := braggCorpus(5, 4)
	_, err := cluster.Certainty(ctx, dmsapi.CertaintyRequest{Samples: dmsapi.FromCodecSlice(q), Threshold: 0.5})
	var se *dmsapi.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("want *StatusError, got %v", err)
	}
	if se.Code != http.StatusConflict || se.ErrCode != dmsapi.CodeNotFitted {
		t.Fatalf("shard 409 not_fitted did not survive the scatter: %+v", se)
	}
	if !errors.Is(err, dmsapi.ErrNotFitted) {
		t.Fatal("passthrough error lost its sentinel identity")
	}
}

// TestClusterTrainRouting checks train-plane affinity: jobs land on one
// shard round-robin, their IDs carry the shard tag, and status polls and
// listings route by it.
func TestClusterTrainRouting(t *testing.T) {
	ctx := context.Background()
	var addrs []string
	for i := 0; i < 2; i++ {
		_, addr := startShard(t, fmt.Sprintf("t%d", i), 1)
		addrs = append(addrs, addr)
	}
	cluster, err := dmscluster.New(dmscluster.Config{Shards: addrs, BootstrapK: 2, Seed: 1, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)

	corpus := braggCorpus(19, 40)
	if _, err := cluster.Ingest(ctx, dmsapi.IngestBatchRequest{Dataset: "train", Samples: dmsapi.FromCodecSlice(corpus)}); err != nil {
		t.Fatal(err)
	}

	job, err := cluster.SubmitTrain(ctx, dmsapi.TrainRequest{
		Samples: dmsapi.FromCodecSlice(corpus[:16]),
		Model:   "mlp", Hidden: 8, Epochs: 2, BatchSize: 8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(job.ID) < 3 || job.ID[0] != 's' {
		t.Fatalf("train job ID %q carries no shard tag", job.ID)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		job, err = cluster.TrainJob(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if job.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("train job %s stuck in state %s", job.ID, job.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if job.State != "done" {
		t.Fatalf("train job ended %s: %s", job.State, job.Error)
	}

	list, err := cluster.TrainJobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID {
		t.Fatalf("cluster train listing: %+v", list.Jobs)
	}

	// The trained model is registered on its shard only; the recommend
	// fan-out still finds it.
	rec, err := cluster.Recommend(ctx, dmsapi.RecommendRequest{PDF: []float64{0.5, 0.5}})
	if err != nil || !rec.OK {
		t.Fatalf("recommend after train: %+v, err %v", rec, err)
	}
}

// TestRouterFourTierTrace checks end-to-end trace propagation through
// the standalone router: a sampled client request produces ONE
// contiguous span tree covering client → router → every shard.
func TestRouterFourTierTrace(t *testing.T) {
	ctx := context.Background()
	cluster, _ := startCluster(t, 2, dmscluster.Config{BootstrapK: 3, Seed: 1, ProbeInterval: -1})
	router := dmscluster.NewRouter(cluster, dmscluster.RouterConfig{})
	addr, err := router.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		router.Shutdown(sctx)
	})

	var mu sync.Mutex
	var dumps []obs.TraceDump
	client, err := dmsapi.NewClient(addr, dmsapi.WithTraceSample(1, func(op string, d obs.TraceDump) {
		mu.Lock()
		dumps = append(dumps, d)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	corpus := braggCorpus(23, 60)
	if resp, err := client.IngestBatch("traced", corpus[:40]); err != nil || len(resp.Errors) > 0 {
		t.Fatalf("ingest through router: err=%v, doc errors=%v", err, resp.Errors)
	}
	if _, err := client.Certainty(corpus[40:48], 0.5); err != nil {
		t.Fatal(err)
	}
	_ = ctx

	mu.Lock()
	defer mu.Unlock()
	if len(dumps) == 0 {
		t.Fatal("no trace dumps collected")
	}
	d := dumps[len(dumps)-1] // the certainty request

	// Contiguity: exactly one root, every parent index in range.
	roots := 0
	for i, sp := range d.Spans {
		if sp.Parent == -1 {
			roots++
		} else if sp.Parent < 0 || sp.Parent >= len(d.Spans) || sp.Parent == i {
			t.Fatalf("span %d (%s) has out-of-tree parent %d", i, sp.Name, sp.Parent)
		}
	}
	if roots != 1 {
		t.Fatalf("span tree has %d roots, want 1:\n%+v", roots, d.Spans)
	}

	// All four tiers present: client root and round trip, the router's
	// route + scatter spans, and each shard's request span.
	index := func(name string) []int {
		var out []int
		for i, sp := range d.Spans {
			if sp.Name == name {
				out = append(out, i)
			}
		}
		return out
	}
	hasAncestor := func(i int, anc int) bool {
		for p := d.Spans[i].Parent; p != -1; p = d.Spans[p].Parent {
			if p == anc {
				return true
			}
		}
		return false
	}
	clientRoot := index("client_request")
	roundTrips := index("http_roundtrip")
	routes := index("route")
	scatters := index("scatter_certainty")
	shardReqs := index("request")
	if len(clientRoot) != 1 || len(roundTrips) == 0 {
		t.Fatalf("client tier incomplete: roots %v, round trips %v", clientRoot, roundTrips)
	}
	if len(routes) != 1 {
		t.Fatalf("router tier: %d route spans, want 1", len(routes))
	}
	if len(scatters) != 1 {
		t.Fatalf("router scatter: %d scatter_certainty spans, want 1", len(scatters))
	}
	if len(shardReqs) != 2 {
		t.Fatalf("shard tier: %d request spans, want one per shard (2)", len(shardReqs))
	}
	if !hasAncestor(routes[0], clientRoot[0]) {
		t.Fatal("router route span is not under the client root")
	}
	for _, sr := range shardReqs {
		if !hasAncestor(sr, routes[0]) {
			t.Fatalf("shard request span %d is not under the router's route span", sr)
		}
		if !hasAncestor(sr, clientRoot[0]) {
			t.Fatalf("shard request span %d is not under the client root", sr)
		}
	}
}

// TestClusterChaos is the acceptance chaos test: a mixed workload runs
// against a 3-shard cluster through the HTTP router while one shard is
// killed mid-run. The cluster must keep serving (bounded errors during
// the transition), record the ejection, and answer degraded reads from
// the survivors.
func TestClusterChaos(t *testing.T) {
	all := braggCorpus(29, 140)
	corpus, queries := all[:120], all[120:]

	cluster, servers := startCluster(t, 3, dmscluster.Config{
		BootstrapK:    4,
		Seed:          1,
		ProbeInterval: 25 * time.Millisecond,
		FailAfter:     2,
		Retries:       1,
		Backoff:       5 * time.Millisecond,
	})
	cluster.Start()
	router := dmscluster.NewRouter(cluster, dmscluster.RouterConfig{})
	addr, err := router.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		router.Shutdown(sctx)
	})

	seedClient, err := dmsapi.NewClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(seedClient.Close)
	if resp, err := seedClient.IngestBatch("chaos", corpus); err != nil || len(resp.Errors) > 0 {
		t.Fatalf("seeding through router: err=%v, doc errors=%v", err, resp.Errors)
	}

	const workers = 4
	duration := 1500 * time.Millisecond
	var ops, failures atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc, err := dmsapi.NewClient(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer wc.Close()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			for time.Now().Before(deadline) {
				var err error
				switch rng.Intn(3) {
				case 0:
					_, err = wc.Certainty(queries, 0.5)
				case 1:
					_, err = wc.Nearest(queries, false)
				default:
					lo := rng.Intn(len(corpus) - 8)
					_, err = wc.IngestBatch("chaos", corpus[lo:lo+8])
				}
				ops.Add(1)
				if err != nil {
					failures.Add(1)
				}
			}
		}(w)
	}

	// Kill one shard mid-workload, hard.
	time.Sleep(duration / 3)
	killCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	servers[2].Shutdown(killCtx)
	cancel()

	wg.Wait()
	total, failed := ops.Load(), failures.Load()
	if total == 0 {
		t.Fatal("chaos workload issued no operations")
	}
	// The transition window may fail a handful of in-flight requests;
	// sustained failure means the cluster never recovered.
	if failed*4 > total {
		t.Fatalf("chaos workload: %d/%d operations failed — cluster did not stay available", failed, total)
	}

	// The router still serves, flags degradation, and reports the
	// ejection on /statsz.
	resp, err := seedClient.DoRaw(context.Background(), "GET", dmsapi.PathStats, nil)
	if err != nil {
		t.Fatalf("router /statsz after chaos: %v", err)
	}
	var st dmscluster.RouterStats
	if err := json.Unmarshal(resp, &st); err != nil {
		t.Fatalf("decoding router stats: %v", err)
	}
	if st.Cluster.UnhealthyShards != 1 || st.Cluster.HealthyShards != 2 {
		t.Fatalf("router stats after kill: %+v", st.Cluster)
	}
	if st.Cluster.Epoch == 0 {
		t.Fatal("shard kill did not bump the membership epoch")
	}
	ejected := false
	for _, n := range st.Cluster.Nodes {
		if !n.Healthy && n.Ejections > 0 {
			ejected = true
		}
	}
	if !ejected {
		t.Fatalf("no node reports an ejection: %+v", st.Cluster.Nodes)
	}

	cert, err := seedClient.DoRaw(context.Background(), "GET", dmsapi.PathHealth, nil)
	if err != nil {
		t.Fatalf("router /healthz after chaos: %v", err)
	}
	var h dmsapi.HealthResponse
	if err := json.Unmarshal(cert, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Fatalf("cluster health after shard loss: %q, want degraded", h.Status)
	}
}
