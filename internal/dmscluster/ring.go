// Package dmscluster is the scale-out tier over N dmsd shards: a
// consistent-hash ring partitions documents by content, serving queries
// scatter to every shard and merge (top-k/min for nearest, probability
// reduction for certainty/PDF, apportioned union for lookup), and the
// model zoo replicates to every node so recommend/checkpoint/train stay
// local to whichever shard serves them — the split the FAIR-model
// companion work assumes (small read-heavy registry everywhere, data
// partitioned). Cluster is the embeddable smart client; Router serves
// the same dmsapi /v1 surface over HTTP for non-Go callers
// (cmd/dmsrouter).
//
// Membership is static with active health probing: a dead shard is
// ejected after consecutive failures, ingest routes around it to the
// ring successor, fan-out reads return the survivors' merge with the
// response's Degraded flag set, and recovery re-admits the shard and
// bumps the membership epoch.
package dmscluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is the number of virtual nodes per shard on the ring.
// 128 keeps the max/min load ratio within a few percent for small N
// while the ring stays tiny (N*128 entries, binary-searched).
const defaultVnodes = 128

// Ring is a consistent-hash ring over shard indices with virtual nodes.
// It is immutable after construction — membership changes in this tier
// are health-state only (static membership), so the document → owner
// mapping never moves while a deployment lives, and a rebalance is an
// explicit re-ingest (see docs/ARCHITECTURE.md, "rebalance caveats").
type Ring struct {
	hashes []uint64 // sorted vnode hashes
	owner  []int    // owner[i] = shard index of hashes[i]
	n      int
}

// NewRing builds a ring over n shards with the given virtual nodes per
// shard (<= 0 uses the default 128).
func NewRing(n, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &Ring{
		hashes: make([]uint64, 0, n*vnodes),
		owner:  make([]int, 0, n*vnodes),
		n:      n,
	}
	type vn struct {
		h     uint64
		shard int
	}
	all := make([]vn, 0, n*vnodes)
	for shard := 0; shard < n; shard++ {
		for v := 0; v < vnodes; v++ {
			all = append(all, vn{h: hash64(fmt.Sprintf("shard-%d#%d", shard, v)), shard: shard})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].h < all[j].h })
	for _, e := range all {
		r.hashes = append(r.hashes, e.h)
		r.owner = append(r.owner, e.shard)
	}
	return r
}

// N returns the shard count.
func (r *Ring) N() int { return r.n }

// Owner returns the shard index owning key.
func (r *Ring) Owner(key string) int {
	return r.owner[r.find(hash64(key))]
}

// Successors returns the distinct shard indices encountered walking the
// ring clockwise from key's position: the owner first, then each
// fail-open fallback in preference order. Always length N.
func (r *Ring) Successors(key string) []int {
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i, steps := r.find(hash64(key)), 0; len(out) < r.n && steps < len(r.hashes); steps++ {
		if s := r.owner[i]; !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
		i++
		if i == len(r.hashes) {
			i = 0
		}
	}
	return out
}

// find locates the first vnode at or after h, wrapping at the end.
func (r *Ring) find(h uint64) int {
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		return 0
	}
	return i
}

// hash64 is FNV-64a with a 64-bit avalanche finalizer: stdlib-only,
// stable across processes and platforms — the routing decision must be
// reproducible by any tier. Raw FNV clusters on the short, similar
// vnode labels ("shard-0#0", "shard-0#1", ...), which skews the ring
// badly; the multiply-xorshift finalizer spreads those outputs over the
// full 64-bit range.
func hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ContentKey derives a document's ring key from its payload bytes, so
// routing is a pure function of content: any router instance (or a
// re-sent duplicate) routes the same document to the same shard without
// coordination.
func ContentKey(data []byte, label []float64) string {
	h := fnv.New64a()
	h.Write(data)
	for _, l := range label {
		fmt.Fprintf(h, "|%g", l)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
