package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPDFFromCounts(t *testing.T) {
	p := NewPDFFromCounts([]int{1, 3}, 2)
	if p[0] != 0.25 || p[1] != 0.75 {
		t.Fatalf("PDF = %v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewPDFFromCountsEmptyIsUniform(t *testing.T) {
	p := NewPDFFromCounts(nil, 4)
	for _, v := range p {
		if v != 0.25 {
			t.Fatalf("PDF = %v, want uniform", p)
		}
	}
}

func TestNewPDFFromAssignments(t *testing.T) {
	p := NewPDFFromAssignments([]int{0, 0, 1, 2, -1, 9}, 3)
	want := PDF{0.5, 0.25, 0.25}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("PDF = %v, want %v", p, want)
		}
	}
}

func TestNormalizeZeroBecomesUniform(t *testing.T) {
	p := PDF{0, 0, 0}.Normalize()
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("PDF = %v", p)
		}
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	if err := (PDF{1.5, -0.5}).Validate(); err == nil {
		t.Fatal("expected error for negative mass")
	}
	if err := (PDF{}).Validate(); err == nil {
		t.Fatal("expected error for empty PDF")
	}
	if err := (PDF{0.3, 0.3}).Validate(); err == nil {
		t.Fatal("expected error for mass != 1")
	}
}

func TestEntropyUniformIsLogK(t *testing.T) {
	p := NewPDFFromCounts(nil, 8)
	if math.Abs(p.Entropy()-math.Log(8)) > 1e-12 {
		t.Fatalf("entropy = %g, want ln 8", p.Entropy())
	}
}

func TestKLDivergenceIdenticalIsZero(t *testing.T) {
	p := PDF{0.2, 0.3, 0.5}
	if d := KLDivergence(p, p); d != 0 {
		t.Fatalf("KL(p‖p) = %g", d)
	}
}

func TestKLDivergenceDisjointIsInf(t *testing.T) {
	if d := KLDivergence(PDF{1, 0}, PDF{0, 1}); !math.IsInf(d, 1) {
		t.Fatalf("KL of disjoint = %g, want +Inf", d)
	}
}

func TestJSDivergenceBoundsAndKnownValues(t *testing.T) {
	// Identical distributions → 0.
	p := PDF{0.25, 0.75}
	if d := JSDivergence(p, p); d != 0 {
		t.Fatalf("JSD(p,p) = %g", d)
	}
	// Fully disjoint distributions → exactly 1 bit.
	if d := JSDivergence(PDF{1, 0}, PDF{0, 1}); math.Abs(d-1) > 1e-12 {
		t.Fatalf("JSD disjoint = %g, want 1", d)
	}
}

func TestJSDivergenceSymmetric(t *testing.T) {
	p := PDF{0.1, 0.2, 0.7}
	q := PDF{0.5, 0.25, 0.25}
	if math.Abs(JSDivergence(p, q)-JSDivergence(q, p)) > 1e-14 {
		t.Fatal("JSD must be symmetric")
	}
}

func TestQuickJSDProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randPDF := func(k int) PDF {
		p := make(PDF, k)
		for i := range p {
			p[i] = rng.Float64()
		}
		return p.Normalize()
	}
	f := func(kSeed uint8) bool {
		k := int(kSeed%7) + 2
		p, q := randPDF(k), randPDF(k)
		d := JSDivergence(p, q)
		dRev := JSDivergence(q, p)
		// Bounded, symmetric, zero on self.
		return d >= 0 && d <= 1 &&
			math.Abs(d-dRev) < 1e-12 &&
			JSDivergence(p, p) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJSDistanceTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	randPDF := func(k int) PDF {
		p := make(PDF, k)
		for i := range p {
			p[i] = rng.Float64()
		}
		return p.Normalize()
	}
	for trial := 0; trial < 100; trial++ {
		p, q, r := randPDF(5), randPDF(5), randPDF(5)
		if JSDistance(p, r) > JSDistance(p, q)+JSDistance(q, r)+1e-12 {
			t.Fatalf("triangle inequality violated at trial %d", trial)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("P50 = %g", Percentile(xs, 50))
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("P0/P100 wrong")
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("P25 = %g, want 2", got)
	}
	// Interpolated.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Fatalf("interpolated P50 = %g, want 5", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("P50 of empty must be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %g", Mean(xs))
	}
	if math.Abs(StdDev(xs)-2.13808993) > 1e-6 {
		t.Fatalf("StdDev = %g", StdDev(xs))
	}
	if StdDev([]float64{1}) != 0 {
		t.Fatal("StdDev of singleton must be 0")
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0.1, 0.9, 0.5, -5, 99}, 0, 1, 2)
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("Histogram = %v", counts)
	}
}

func TestPearsonCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := PearsonCorrelation(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %g, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := PearsonCorrelation(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %g, want -1", r)
	}
	if r := PearsonCorrelation(xs, []float64{5, 5, 5, 5}); r != 0 {
		t.Fatalf("r against constant = %g, want 0", r)
	}
}

func TestElbowPoint(t *testing.T) {
	// A classic WSS curve: steep drop then flat — elbow at k=3 (index 2).
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{100, 40, 15, 12, 10, 9}
	idx, err := ElbowPoint(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("elbow at index %d, want 2", idx)
	}
}

func TestElbowPointErrors(t *testing.T) {
	if _, err := ElbowPoint([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for too few points")
	}
	if _, err := ElbowPoint([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
	if _, err := ElbowPoint([]float64{1, 1, 1}, []float64{2, 2, 2}); err == nil {
		t.Fatal("expected error for degenerate curve")
	}
}
