// Package stats provides the probability and summary-statistics primitives
// fairDMS relies on: discrete probability distributions (cluster PDFs),
// Kullback–Leibler and Jensen–Shannon divergences for model ranking,
// percentile summaries for error histograms, and knee-point ("elbow")
// detection for choosing the number of k-means clusters.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// PDF is a discrete probability distribution over a fixed number of bins
// (in fairDMS, over cluster IDs). Entries are non-negative and sum to 1
// after Normalize.
type PDF []float64

// NewPDFFromCounts builds a normalized PDF over k bins from integer counts.
// A total count of zero yields the uniform distribution so that downstream
// divergences stay defined.
func NewPDFFromCounts(counts []int, k int) PDF {
	if k < len(counts) {
		k = len(counts)
	}
	p := make(PDF, k)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		for i := range p {
			p[i] = 1 / float64(k)
		}
		return p
	}
	for i, c := range counts {
		p[i] = float64(c) / float64(total)
	}
	return p
}

// NewPDFFromAssignments builds a PDF over k bins from per-sample bin labels.
// Labels outside [0, k) are ignored.
func NewPDFFromAssignments(labels []int, k int) PDF {
	counts := make([]int, k)
	for _, l := range labels {
		if l >= 0 && l < k {
			counts[l]++
		}
	}
	return NewPDFFromCounts(counts, k)
}

// Normalize scales p in place to sum to 1. A zero-sum PDF becomes uniform.
func (p PDF) Normalize() PDF {
	s := 0.0
	for _, v := range p {
		s += v
	}
	if s <= 0 {
		for i := range p {
			p[i] = 1 / float64(len(p))
		}
		return p
	}
	for i := range p {
		p[i] /= s
	}
	return p
}

// Validate returns an error unless p is a proper distribution (non-negative,
// sums to 1 within tolerance).
func (p PDF) Validate() error {
	if len(p) == 0 {
		return errors.New("stats: empty PDF")
	}
	s := 0.0
	for i, v := range p {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("stats: PDF bin %d has invalid mass %g", i, v)
		}
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("stats: PDF mass %g != 1", s)
	}
	return nil
}

// Entropy returns the Shannon entropy of p in nats.
func (p PDF) Entropy() float64 {
	h := 0.0
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// KLDivergence returns D_KL(p ‖ q) in bits (log base 2). Bins where p has
// mass but q does not contribute +Inf, matching the information-theoretic
// definition; callers that need a bounded metric should use JSDivergence.
func KLDivergence(p, q PDF) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("stats: KL between PDFs of different lengths %d vs %d", len(p), len(q)))
	}
	d := 0.0
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1)
		}
		d += p[i] * math.Log2(p[i]/q[i])
	}
	return d
}

// JSDivergence returns the Jensen–Shannon divergence between p and q in bits.
// It is symmetric and bounded in [0, 1]: 0 for identical distributions and 1
// for distributions with disjoint support. This is the metric fairMS uses to
// rank zoo models against an input dataset (paper §II-B).
func JSDivergence(p, q PDF) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("stats: JSD between PDFs of different lengths %d vs %d", len(p), len(q)))
	}
	m := make(PDF, len(p))
	for i := range p {
		m[i] = 0.5 * (p[i] + q[i])
	}
	d := 0.5*klSafe(p, m) + 0.5*klSafe(q, m)
	// Clamp tiny negative values from floating-point rounding.
	if d < 0 {
		d = 0
	}
	if d > 1 {
		d = 1
	}
	return d
}

// JSDistance returns the Jensen–Shannon distance, the square root of the
// divergence, which satisfies the triangle inequality.
func JSDistance(p, q PDF) float64 { return math.Sqrt(JSDivergence(p, q)) }

// klSafe computes KL(p‖m) where m is guaranteed to dominate p.
func klSafe(p, m PDF) float64 {
	d := 0.0
	for i := range p {
		if p[i] > 0 && m[i] > 0 {
			d += p[i] * math.Log2(p[i]/m[i])
		}
	}
	return d
}

// Percentile returns the q-th percentile (0 <= q <= 100) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := q / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for n < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Histogram bins xs into nbins equal-width bins over [lo, hi] and returns
// the per-bin counts. Values outside the range are clamped to the end bins.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	counts := make([]int, nbins)
	if nbins == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(nbins)
	for _, v := range xs {
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}

// PearsonCorrelation returns the sample correlation coefficient of (xs, ys).
// It panics if the lengths differ and returns 0 when either side is constant.
func PearsonCorrelation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: correlation between slices of lengths %d and %d", len(xs), len(ys)))
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ElbowPoint finds the "knee" of a monotonically decreasing curve ys sampled
// at xs (e.g. k-means within-cluster sum of squares as a function of k) by
// the maximum-distance-to-chord method used by the YellowBrick KneeLocator:
// the point farthest from the straight line joining the first and last
// samples. It returns the index of the elbow. This is fairDS's automatic
// cluster-count selector (paper §II-A).
func ElbowPoint(xs, ys []float64) (int, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: elbow inputs of different lengths %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 3 {
		return 0, errors.New("stats: elbow needs at least 3 points")
	}
	x0, y0 := xs[0], ys[0]
	x1, y1 := xs[len(xs)-1], ys[len(ys)-1]
	dx, dy := x1-x0, y1-y0
	norm := math.Hypot(dx, dy)
	if norm == 0 {
		return 0, errors.New("stats: degenerate elbow curve (identical endpoints)")
	}
	best, bestI := -1.0, 0
	for i := range xs {
		// Perpendicular distance from (xs[i], ys[i]) to the chord.
		d := math.Abs(dy*xs[i]-dx*ys[i]+x1*y0-y1*x0) / norm
		if d > best {
			best, bestI = d, i
		}
	}
	return bestI, nil
}
