package loadgen

import (
	"fmt"
	"sort"
	"time"

	"fairdms/internal/obs"
)

// CheckSLOs evaluates a finished run against a set of objectives (the
// same grammar the router's -slo flag accepts) and returns one violation
// string per failed objective, ordered by objective ID. An empty result
// means every objective that matched an exercised op held.
//
// Latency objectives check the matching op's client-side quantile against
// the bound; the report records p50/p95/p99/p999, so those are the only
// quantiles an objective may name (ParseSLOs enforces the same set).
// Error objectives check errors/count against the budget. Objectives that
// match no op in the report are skipped, not failed — a bench that never
// exercised "recommend" cannot vouch for it either way.
func CheckSLOs(rep *Report, slos []obs.SLO) []string {
	var out []string
	for _, slo := range slos {
		for op, st := range rep.Ops {
			if !slo.MatchesEndpoint(op) || st.Count == 0 {
				continue
			}
			if slo.Name == "err" {
				rate := float64(st.Errors) / float64(st.Count)
				if rate > slo.ErrRate {
					out = append(out, fmt.Sprintf("%s: error rate %.3f%% > %s (%d/%d failed)",
						op, rate*100, slo, st.Errors, st.Count))
				}
				continue
			}
			var gotMS float64
			switch slo.Name {
			case "p50":
				gotMS = st.P50MS
			case "p95":
				gotMS = st.P95MS
			case "p99":
				gotMS = st.P99MS
			case "p999":
				gotMS = st.P999MS
			}
			boundMS := float64(slo.Latency) / float64(time.Millisecond)
			if gotMS > boundMS {
				out = append(out, fmt.Sprintf("%s: %s %.2fms > %s", op, slo.Name, gotMS, slo))
			}
		}
	}
	sort.Strings(out)
	return out
}
