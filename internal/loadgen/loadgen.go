// Package loadgen is a closed-loop load generator for a live dmsd: a pool
// of workers drives the daemon with a weighted mix of the serving-path
// operations (batch ingest, certainty, nearest-label, recommend, and
// end-to-end server-side train jobs), measures
// client-side latency into lock-free histograms (internal/hdrhist), and
// emits a machine-readable report — the BENCH_dmsapi.json artifact that
// records the serving tier's performance trajectory across PRs.
//
// Closed-loop means each worker issues its next request only after the
// previous one completes, so offered load adapts to server capacity
// instead of overrunning it; throughput × latency ≈ worker count
// (Little's law) is the sanity check on every report.
package loadgen

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/datagen"
	"fairdms/internal/dmsapi"
	"fairdms/internal/fsx"
	"fairdms/internal/hdrhist"
	"fairdms/internal/nn"
	"fairdms/internal/obs"
	"fairdms/internal/stats"
)

// Op is one operation type in the workload mix.
type Op string

// The drivable operations. OpIngestBatch lands BatchSize documents per
// request through /v1/data/ingest:batch; the read ops exercise the three
// serving paths of the paper's action loop (certainty trigger, nearest
// label reuse, model recommendation). OpTrain submits one small inline
// /v1/train job and polls it to a terminal state, so its latency is the
// end-to-end server-side training time (queue wait included) — weight it
// low: every completed job also registers a checkpoint in the zoo.
const (
	OpIngestBatch Op = "ingest_batch"
	OpCertainty   Op = "certainty"
	OpNearest     Op = "nearest"
	OpRecommend   Op = "recommend"
	OpTrain       Op = "train"
)

var allOps = []Op{OpIngestBatch, OpCertainty, OpNearest, OpRecommend, OpTrain}

// Config tunes a load-generation run. Zero values pick defaults.
type Config struct {
	// Addr is the dmsd address ("host:port"). Required.
	Addr string
	// Workers is the closed-loop concurrency (default 4).
	Workers int
	// Duration bounds the measured phase (default 5s).
	Duration time.Duration
	// Mix weights operations (default 1:2:4:4 ingest:certainty:nearest:
	// recommend — reads dominate, as in the paper's serving phase; train
	// is excluded by default because each op runs a whole training job).
	// Ops with weight <= 0 are excluded.
	Mix map[Op]int
	// TrainEpochs caps each train op's job (default 3 — enough to cross
	// the whole submit→queue→train→register path without dominating the
	// run).
	TrainEpochs int
	// BatchSize is documents per ingest_batch request (default 64).
	BatchSize int
	// QuerySize is samples per certainty/nearest request (default 8).
	QuerySize int
	// Patch is the square Bragg patch edge for generated samples
	// (default 11).
	Patch int
	// SetupDocs seeds the corpus before measuring (default 256), which
	// bootstrap-fits a fresh daemon and gives nearest/certainty something
	// to probe.
	SetupDocs int
	// Seed drives deterministic sample generation and op scheduling.
	Seed int64
	// TraceSample, when > 0, traces every Nth request end to end (client
	// span tree with the server's grafted underneath) and retains the
	// slowest trees in the report's trace_samples — the "why was p99 slow"
	// artifact next to the latency numbers. Zero disables tracing.
	TraceSample int
	// TraceKeep bounds retained trace samples (default 8).
	TraceKeep int
	// Cluster marks Addr as a dmsrouter rather than a single dmsd. The
	// /v1 surface is identical, so the workload runs unchanged; only the
	// /statsz before/after delta is skipped (the router's stats schema is
	// cluster-shaped, not dmsapi.Stats), leaving Report.Server nil.
	Cluster bool
	// Logf, when set, receives progress lines (e.g. log.Printf).
	Logf func(format string, args ...any)
}

func (c *Config) defaults() error {
	if c.Addr == "" {
		return errors.New("loadgen: no daemon address")
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.QuerySize <= 0 {
		c.QuerySize = 8
	}
	if c.Patch <= 0 {
		c.Patch = 11
	}
	if c.SetupDocs <= 0 {
		c.SetupDocs = 256
	}
	if c.TrainEpochs <= 0 {
		c.TrainEpochs = 3
	}
	if c.TraceKeep <= 0 {
		c.TraceKeep = 8
	}
	if len(c.Mix) == 0 {
		c.Mix = map[Op]int{OpIngestBatch: 1, OpCertainty: 2, OpNearest: 4, OpRecommend: 4}
	}
	total := 0
	for op, w := range c.Mix {
		if !validOp(op) {
			return fmt.Errorf("loadgen: unknown op %q (want %s)", op, opList())
		}
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return errors.New("loadgen: operation mix has no positive weights")
	}
	return nil
}

func validOp(op Op) bool {
	for _, o := range allOps {
		if o == op {
			return true
		}
	}
	return false
}

func opList() string {
	names := make([]string, len(allOps))
	for i, o := range allOps {
		names[i] = string(o)
	}
	return strings.Join(names, ", ")
}

// ParseMix parses a "op:weight,op:weight" flag value (e.g.
// "ingest_batch:1,certainty:2,nearest:4,recommend:4").
func ParseMix(s string) (map[Op]int, error) {
	out := make(map[Op]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op, weight, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("loadgen: mix entry %q is not op:weight", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(weight))
		if err != nil || w < 0 {
			return nil, fmt.Errorf("loadgen: mix entry %q has invalid weight", part)
		}
		o := Op(strings.TrimSpace(op))
		if !validOp(o) {
			return nil, fmt.Errorf("loadgen: unknown op %q (want %s)", op, opList())
		}
		out[o] = w
	}
	if len(out) == 0 {
		return nil, errors.New("loadgen: empty operation mix")
	}
	return out, nil
}

// OpStats is the per-operation slice of a Report.
type OpStats struct {
	Count      int64   `json:"count"`
	Errors     int64   `json:"errors"`
	Throughput float64 `json:"throughput_rps"`
	MeanMS     float64 `json:"mean_ms"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	P999MS     float64 `json:"p999_ms"`
	MaxMS      float64 `json:"max_ms"`
}

// TraceSample is one retained end-to-end span tree: the wire op that
// produced it, its total duration, and the merged client+server tree.
type TraceSample struct {
	Op    string        `json:"op"`
	DurMS float64       `json:"dur_ms"`
	Trace obs.TraceDump `json:"trace"`
}

// ServerDelta is what the run did to the daemon, from /statsz snapshots
// taken before and after the measured phase. Endpoint percentiles are
// lifetime values (histograms are cumulative), so only counts are deltas.
type ServerDelta struct {
	Requests  int64                           `json:"requests"`
	Shed      int64                           `json:"shed"`
	Errors    int64                           `json:"errors"`
	Endpoints map[string]dmsapi.EndpointStats `json:"endpoints"`
}

// Report is the machine-readable outcome of a run — the schema of
// BENCH_dmsapi.json (see docs/BENCHMARKS.md).
type Report struct {
	// Provenance.
	Addr      string    `json:"addr"`
	StartedAt time.Time `json:"started_at"`

	// Effective configuration.
	Workers         int            `json:"workers"`
	DurationSeconds float64        `json:"duration_seconds"`
	Mix             map[string]int `json:"mix"`
	BatchSize       int            `json:"batch_size"`
	QuerySize       int            `json:"query_size"`
	Seed            int64          `json:"seed"`

	// Aggregate outcome.
	TotalRequests int64   `json:"total_requests"`
	TotalErrors   int64   `json:"total_errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// DocsIngested counts documents landed by ingest_batch ops (each such
	// op carries BatchSize documents).
	DocsIngested int64 `json:"docs_ingested"`

	// Per-operation latency distributions (client-side).
	Ops map[string]OpStats `json:"ops"`

	// Server-side view of the same window.
	Server *ServerDelta `json:"server,omitempty"`

	// TraceSamples are the slowest sampled span trees (Config.TraceSample),
	// slowest first — the diagnosis companion to the tail percentiles.
	TraceSamples []TraceSample `json:"trace_samples,omitempty"`
}

// WriteFile writes the report as indented JSON, crash-safely (tmp +
// fsync + rename via fsx.WriteFileAtomic).
func (r *Report) WriteFile(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return fsx.WriteFileAtomic(path, append(blob, '\n'), 0o644)
}

// opCounters pairs a histogram with an error count, shared by all workers
// driving that op.
type opCounters struct {
	count  atomic.Int64
	errors atomic.Int64
	docs   atomic.Int64
	hist   hdrhist.Histogram
}

// Run executes the workload against a live daemon and returns the report.
// The daemon is left running (and fuller than before: ingest ops are real).
func Run(cfg Config) (*Report, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	traces := &traceCollector{keep: cfg.TraceKeep}
	ccfg := dmsapi.ClientConfig{}
	if cfg.TraceSample > 0 {
		ccfg.TraceSample = cfg.TraceSample
		ccfg.OnTrace = traces.add
	}
	client, err := dmsapi.DialConfig(cfg.Addr, ccfg)
	if err != nil {
		return nil, fmt.Errorf("loadgen: dialing %s: %w", cfg.Addr, err)
	}
	defer client.Close()

	// Sample pool: enough distinct documents that rotating windows never
	// hand two workers identical requests back to back (identical bodies
	// would be answered by the server's coalescing cache, understating
	// real work), and always strictly larger than any single request so
	// window() can slide.
	poolSize := cfg.SetupDocs + cfg.Workers*cfg.BatchSize
	if poolSize < 1024 {
		poolSize = 1024
	}
	if poolSize <= cfg.BatchSize {
		poolSize = cfg.BatchSize + 1
	}
	if poolSize <= cfg.QuerySize {
		poolSize = cfg.QuerySize + 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	regime := datagen.DefaultBraggRegime()
	regime.Patch = cfg.Patch
	pool := regime.Generate(rng, poolSize)
	logf("loadgen: generated %d %dx%d samples", poolSize, cfg.Patch, cfg.Patch)

	// Setup phase: seed the corpus (bootstrap-fits a fresh daemon) and make
	// sure the zoo can answer recommends.
	seedResp, err := client.IngestBatch("loadgen-seed", pool[:cfg.SetupDocs])
	if err != nil {
		return nil, fmt.Errorf("loadgen: seeding corpus: %w", err)
	}
	if len(seedResp.Errors) > 0 {
		return nil, fmt.Errorf("loadgen: seeding corpus: %d documents rejected, first: %+v",
			len(seedResp.Errors), seedResp.Errors[0])
	}
	seedPDF, err := client.PDF(pool[:cfg.QuerySize])
	if err != nil {
		return nil, fmt.Errorf("loadgen: probing dataset PDF: %w", err)
	}
	if err := registerSeedModel(client, seedPDF, cfg.Seed); err != nil {
		return nil, err
	}
	logf("loadgen: corpus seeded (%d docs), zoo primed", seedResp.Inserted)

	// Recommend queries are perturbed per request (see runOp): a fixed
	// body set would fit inside the server's response LRU after one pass
	// and the recorded latencies would measure cache lookups, not
	// recommendation work.

	// Weighted op schedule.
	var schedule []Op
	for _, op := range allOps { // deterministic order
		for i := 0; i < cfg.Mix[op]; i++ {
			schedule = append(schedule, op)
		}
	}

	counters := make(map[Op]*opCounters, len(allOps))
	for _, op := range allOps {
		if cfg.Mix[op] > 0 {
			counters[op] = &opCounters{}
		}
	}

	var before dmsapi.Stats
	if !cfg.Cluster {
		before, err = client.ServerStats()
		if err != nil {
			return nil, fmt.Errorf("loadgen: /statsz before: %w", err)
		}
	}

	logf("loadgen: driving %s with %d workers for %v (mix %v)",
		cfg.Addr, cfg.Workers, cfg.Duration, cfg.Mix)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			for time.Now().Before(deadline) {
				op := schedule[wrng.Intn(len(schedule))]
				c := counters[op]
				begin := time.Now()
				docs, err := runOp(client, op, cfg, wrng, pool, seedPDF)
				c.hist.Record(time.Since(begin))
				c.count.Add(1)
				// docs counts commits even when the op also reports an
				// error (a partial batch rejection still landed the rest).
				c.docs.Add(docs)
				if err != nil {
					c.errors.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var after dmsapi.Stats
	if !cfg.Cluster {
		after, err = client.ServerStats()
		if err != nil {
			return nil, fmt.Errorf("loadgen: /statsz after: %w", err)
		}
	}

	rep := assemble(cfg, start, elapsed, counters, before, after)
	rep.TraceSamples = traces.snapshot()
	if cfg.TraceSample > 0 {
		logf("loadgen: retained %d trace samples (every %dth request traced)",
			len(rep.TraceSamples), cfg.TraceSample)
	}
	return rep, nil
}

// traceCollector keeps the slowest sampled span trees. The client calls
// add synchronously on worker goroutines, so it holds its own lock and
// stays cheap: one duration computation plus an insertion into a small
// sorted slice.
type traceCollector struct {
	mu      sync.Mutex
	keep    int
	samples []TraceSample
}

func (tc *traceCollector) add(op string, dump obs.TraceDump) {
	s := TraceSample{Op: op, DurMS: durMS(dump.Duration()), Trace: dump}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	i := sort.Search(len(tc.samples), func(i int) bool { return tc.samples[i].DurMS < s.DurMS })
	if i >= tc.keep {
		return
	}
	tc.samples = append(tc.samples, TraceSample{})
	copy(tc.samples[i+1:], tc.samples[i:])
	tc.samples[i] = s
	if len(tc.samples) > tc.keep {
		tc.samples = tc.samples[:tc.keep]
	}
}

// snapshot returns the retained samples, slowest first.
func (tc *traceCollector) snapshot() []TraceSample {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return append([]TraceSample(nil), tc.samples...)
}

// runOp executes one operation, returning how many documents it ingested.
func runOp(client *dmsapi.Client, op Op, cfg Config, rng *rand.Rand, pool []*codec.Sample, seedPDF stats.PDF) (int64, error) {
	window := func(n int) []*codec.Sample {
		lo := rng.Intn(len(pool) - n)
		return pool[lo : lo+n]
	}
	switch op {
	case OpIngestBatch:
		resp, err := client.IngestBatch("loadgen", window(cfg.BatchSize))
		if err != nil {
			return 0, err
		}
		if len(resp.Errors) > 0 {
			return int64(resp.Inserted), fmt.Errorf("loadgen: %d documents rejected", len(resp.Errors))
		}
		return int64(resp.Inserted), nil
	case OpCertainty:
		_, err := client.Certainty(window(cfg.QuerySize), 0.5)
		return 0, err
	case OpNearest:
		_, err := client.Nearest(window(cfg.QuerySize), false)
		return 0, err
	case OpRecommend:
		// A fresh perturbation per request keeps the body out of the
		// server's response LRU, so latency measures zoo ranking.
		_, err := client.Recommend(perturbPDF(rng, seedPDF), 0)
		return 0, err
	case OpTrain:
		// One whole server-side training job, submit to terminal state.
		// The auto-derived model ID keeps repeated ops from colliding in
		// the zoo. A 429 on submit is the trainer's designed backpressure
		// (worker pool + queue smaller than the bench's concurrency), not
		// a failure — the op records the shed round trip and moves on.
		job, err := client.SubmitTrain(dmsapi.TrainRequest{
			Samples:   dmsapi.FromCodecSlice(window(cfg.QuerySize)),
			Model:     "mlp",
			Hidden:    16,
			Epochs:    cfg.TrainEpochs,
			BatchSize: 16,
			Seed:      rng.Int63(),
		})
		var se *dmsapi.StatusError
		if errors.As(err, &se) && se.Code == 429 {
			return 0, nil
		}
		if err != nil {
			return 0, err
		}
		job, err = client.WaitTrain(job.ID, 10*time.Millisecond, 2*time.Minute)
		if err != nil {
			return 0, err
		}
		if job.State != "done" {
			return 0, fmt.Errorf("loadgen: train job %s ended %s: %s", job.ID, job.State, job.Error)
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("loadgen: unknown op %q", op)
	}
}

// registerSeedModel ensures at least one zoo entry exists so recommends
// return a ranked answer. A duplicate ID from a previous run is fine.
func registerSeedModel(client *dmsapi.Client, pdf stats.PDF, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	state := nn.Sequential(nn.NewLinear(rng, 4, 2)).State()
	err := client.AddModel("loadgen-seed", state, pdf, map[string]string{"origin": "loadgen"})
	var se *dmsapi.StatusError
	if errors.As(err, &se) && se.Code == 409 {
		return nil // already registered by an earlier run against this daemon
	}
	if err != nil {
		return fmt.Errorf("loadgen: priming model zoo: %w", err)
	}
	return nil
}

// perturbPDF jitters a PDF and renormalizes, keeping it a valid
// distribution of the same dimension.
func perturbPDF(rng *rand.Rand, pdf stats.PDF) stats.PDF {
	out := make(stats.PDF, len(pdf))
	total := 0.0
	for i, p := range pdf {
		v := p * (1 + 0.3*rng.Float64())
		if v <= 0 {
			v = 1e-9
		}
		out[i] = v
		total += v
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

func assemble(cfg Config, start time.Time, elapsed time.Duration, counters map[Op]*opCounters, before, after dmsapi.Stats) *Report {
	rep := &Report{
		Addr:            cfg.Addr,
		StartedAt:       start.UTC(),
		Workers:         cfg.Workers,
		DurationSeconds: elapsed.Seconds(),
		Mix:             make(map[string]int, len(cfg.Mix)),
		BatchSize:       cfg.BatchSize,
		QuerySize:       cfg.QuerySize,
		Seed:            cfg.Seed,
		Ops:             make(map[string]OpStats, len(counters)),
	}
	for op, w := range cfg.Mix {
		if w > 0 {
			rep.Mix[string(op)] = w
		}
	}
	for op, c := range counters {
		snap := c.hist.Snapshot()
		st := OpStats{
			Count:  c.count.Load(),
			Errors: c.errors.Load(),
			MeanMS: durMS(snap.Mean()),
			P50MS:  durMS(snap.Quantile(0.50)),
			P95MS:  durMS(snap.Quantile(0.95)),
			P99MS:  durMS(snap.Quantile(0.99)),
			P999MS: durMS(snap.Quantile(0.999)),
			MaxMS:  durMS(snap.Max()),
		}
		if elapsed > 0 {
			st.Throughput = float64(st.Count) / elapsed.Seconds()
		}
		rep.Ops[string(op)] = st
		rep.TotalRequests += st.Count
		rep.TotalErrors += st.Errors
		rep.DocsIngested += c.docs.Load()
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.TotalRequests) / elapsed.Seconds()
	}
	if cfg.Cluster {
		return rep // no single-daemon /statsz delta behind a router
	}

	delta := &ServerDelta{
		Requests:  after.Requests - before.Requests,
		Shed:      after.Shed - before.Shed,
		Endpoints: make(map[string]dmsapi.EndpointStats, len(after.Endpoints)),
	}
	for name, ep := range after.Endpoints {
		prev := before.Endpoints[name]
		ep.Count -= prev.Count
		ep.Errors -= prev.Errors
		ep.TotalMS -= prev.TotalMS
		if ep.Count == 0 {
			continue // endpoint not touched during the window
		}
		ep.AverageMS = ep.TotalMS / float64(ep.Count)
		delta.Errors += ep.Errors
		delta.Endpoints[name] = ep
	}
	rep.Server = delta
	return rep
}

// Summary renders a human-readable table of the report for terminal use.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %s — %d workers, %.1fs, %d requests (%.1f req/s), %d errors, %d docs ingested\n",
		r.Addr, r.Workers, r.DurationSeconds, r.TotalRequests, r.ThroughputRPS, r.TotalErrors, r.DocsIngested)
	ops := make([]string, 0, len(r.Ops))
	for op := range r.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	fmt.Fprintf(&b, "%-14s %8s %7s %10s %9s %9s %9s %9s\n",
		"op", "count", "errors", "rps", "p50 ms", "p95 ms", "p99 ms", "max ms")
	for _, op := range ops {
		st := r.Ops[op]
		fmt.Fprintf(&b, "%-14s %8d %7d %10.1f %9.3f %9.3f %9.3f %9.3f\n",
			op, st.Count, st.Errors, st.Throughput, st.P50MS, st.P95MS, st.P99MS, st.MaxMS)
	}
	if r.Server != nil {
		fmt.Fprintf(&b, "server: %d requests (%d shed, %d errors) during the window\n",
			r.Server.Requests, r.Server.Shed, r.Server.Errors)
	}
	return b.String()
}

// durMS converts a duration to fractional milliseconds.
func durMS(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
