package loadgen

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fairdms/internal/dmsapi"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/fairds"
	"fairdms/internal/fairms"
	"fairdms/internal/tensor"
	"fairdms/internal/vecindex"
)

// poolEmbedder is the deterministic training-free embedder used across the
// repo's service tests.
type poolEmbedder struct{ dim int }

func (e poolEmbedder) Dim() int { return e.dim }
func (e poolEmbedder) Embed(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Dim(0), e.dim)
	feats := x.Dim(1)
	chunk := (feats + e.dim - 1) / e.dim
	for i := 0; i < x.Dim(0); i++ {
		row := x.Row(i)
		for d := 0; d < e.dim; d++ {
			lo := d * chunk
			hi := min(lo+chunk, feats)
			s := 0.0
			for _, v := range row[lo:hi] {
				s += v
			}
			if hi > lo {
				out.Set(s/float64(hi-lo), i, d)
			}
		}
	}
	return out
}

var _ embed.Embedder = poolEmbedder{}

// startDaemon boots a daemon-shaped dmsapi server over real TCP.
func startDaemon(t *testing.T) string {
	t.Helper()
	store := docstore.NewStore().Collection("peaks")
	ds, err := fairds.New(poolEmbedder{dim: 6}, store, fairds.Config{Seed: 1, Index: vecindex.NewFlat()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dmsapi.NewServer(dmsapi.ServerConfig{
		DS: ds, Zoo: fairms.NewZoo(), BootstrapK: 4, TrainWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return addr
}

// TestRunMixedWorkload drives a live server with every op for a short
// window and checks the report is complete and error-free: counts, ordered
// percentiles, server delta, docs ingested.
func TestRunMixedWorkload(t *testing.T) {
	addr := startDaemon(t)
	rep, err := Run(Config{
		Addr:     addr,
		Workers:  3,
		Duration: 600 * time.Millisecond,
		Mix: map[Op]int{
			OpIngestBatch: 1, OpCertainty: 1, OpNearest: 1, OpRecommend: 1,
		},
		BatchSize: 16,
		QuerySize: 4,
		SetupDocs: 64,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors != 0 {
		t.Fatalf("run produced %d errors: %+v", rep.TotalErrors, rep.Ops)
	}
	if rep.TotalRequests == 0 {
		t.Fatal("no requests issued")
	}
	for _, op := range []Op{OpIngestBatch, OpCertainty, OpNearest, OpRecommend} {
		st, ok := rep.Ops[string(op)]
		if !ok || st.Count == 0 {
			t.Fatalf("op %s missing from report or never ran: %+v", op, rep.Ops)
		}
		if st.P50MS <= 0 || st.P50MS > st.P95MS || st.P95MS > st.P99MS {
			t.Fatalf("op %s percentiles malformed: %+v", op, st)
		}
		if st.P99MS > st.MaxMS*1.01 {
			t.Fatalf("op %s p99 %g exceeds max %g", op, st.P99MS, st.MaxMS)
		}
	}
	if rep.DocsIngested < int64(rep.Ops[string(OpIngestBatch)].Count)*16 {
		t.Fatalf("docs ingested %d < ingest ops × batch", rep.DocsIngested)
	}
	if rep.Server == nil || rep.Server.Requests < rep.TotalRequests {
		t.Fatalf("server delta missing or undercounted: %+v (client saw %d)", rep.Server, rep.TotalRequests)
	}
	if rep.Server.Errors != 0 {
		t.Fatalf("server endpoint errors during window: %+v", rep.Server)
	}
	if rep.ThroughputRPS <= 0 || rep.DurationSeconds <= 0 {
		t.Fatalf("throughput/duration not populated: %+v", rep)
	}
}

// TestRunTrainOp drives the server-side training path: a low-weight train
// op in the mix must complete jobs end to end (submit → poll → done) with
// zero errors and record their latency like any other op.
func TestRunTrainOp(t *testing.T) {
	addr := startDaemon(t)
	rep, err := Run(Config{
		Addr:        addr,
		Workers:     2,
		Duration:    600 * time.Millisecond,
		Mix:         map[Op]int{OpNearest: 2, OpTrain: 1},
		QuerySize:   8,
		SetupDocs:   64,
		TrainEpochs: 2,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors != 0 {
		t.Fatalf("run produced %d errors: %+v", rep.TotalErrors, rep.Ops)
	}
	st, ok := rep.Ops[string(OpTrain)]
	if !ok || st.Count == 0 {
		t.Fatalf("train op missing from report or never ran: %+v", rep.Ops)
	}
	if st.P50MS <= 0 {
		t.Fatalf("train op latency not recorded: %+v", st)
	}
	// Each completed job registered a checkpoint, and the /statsz delta
	// covers the submit/get traffic.
	client, err := dmsapi.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	stats, err := client.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Train == nil || stats.Train.Completed < st.Count {
		t.Fatalf("server train gauges %+v, want >= %d completed", stats.Train, st.Count)
	}
}

// TestReportRoundTripsAsJSON pins the BENCH_dmsapi.json contract: the file
// is valid JSON carrying throughput and p50/p95/p99 for every op in the mix.
func TestReportRoundTripsAsJSON(t *testing.T) {
	addr := startDaemon(t)
	rep, err := Run(Config{
		Addr:      addr,
		Workers:   2,
		Duration:  300 * time.Millisecond,
		Mix:       map[Op]int{OpIngestBatch: 1, OpNearest: 2},
		SetupDocs: 32,
		BatchSize: 8,
		Seed:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_dmsapi.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("BENCH_dmsapi.json is not valid JSON: %v", err)
	}
	if back.TotalRequests != rep.TotalRequests || back.ThroughputRPS != rep.ThroughputRPS {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, rep)
	}
	for op := range rep.Mix {
		st, ok := back.Ops[op]
		if !ok {
			t.Fatalf("op %s missing from serialized report", op)
		}
		if st.Throughput <= 0 || st.P50MS <= 0 || st.P95MS <= 0 || st.P99MS <= 0 {
			t.Fatalf("op %s missing throughput/percentiles after round trip: %+v", op, st)
		}
	}
	// Ops excluded from the mix must not appear.
	if _, ok := back.Ops[string(OpRecommend)]; ok {
		t.Fatal("recommend ran despite zero weight")
	}
	if back.Summary() == "" {
		t.Fatal("empty human summary")
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("ingest_batch:1, certainty:2,nearest:0,recommend:5,train:1")
	if err != nil {
		t.Fatal(err)
	}
	want := map[Op]int{OpIngestBatch: 1, OpCertainty: 2, OpNearest: 0, OpRecommend: 5, OpTrain: 1}
	for op, w := range want {
		if mix[op] != w {
			t.Fatalf("mix[%s] = %d, want %d", op, mix[op], w)
		}
	}
	for _, bad := range []string{"", "certainty", "certainty:x", "certainty:-1", "frobnicate:3"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) should fail", bad)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("Run without an address should fail")
	}
	if _, err := Run(Config{Addr: "127.0.0.1:1", Mix: map[Op]int{"bogus": 1}}); err == nil {
		t.Fatal("Run with an unknown op should fail")
	}
	if _, err := Run(Config{Addr: "127.0.0.1:1", Mix: map[Op]int{OpNearest: 0}}); err == nil {
		t.Fatal("Run with an all-zero mix should fail")
	}
}
