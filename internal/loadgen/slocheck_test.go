package loadgen

import (
	"strings"
	"testing"

	"fairdms/internal/obs"
)

func TestCheckSLOs(t *testing.T) {
	rep := &Report{Ops: map[string]OpStats{
		"nearest":   {Count: 1000, Errors: 5, P50MS: 1.2, P95MS: 3.8, P99MS: 6.5, P999MS: 12.0},
		"recommend": {Count: 400, Errors: 0, P50MS: 2.0, P95MS: 8.0, P99MS: 15.0, P999MS: 30.0},
		"lookup":    {Count: 0},
	}}

	slos, err := obs.ParseSLOs("nearest:p99<5ms,err<0.1%;recommend:p95<20ms;certainty:p50<1ms;lookup:p50<1ms")
	if err != nil {
		t.Fatalf("ParseSLOs: %v", err)
	}
	got := CheckSLOs(rep, slos)

	// nearest fails both objectives: p99 6.5ms > 5ms, err 0.5% > 0.1%.
	// recommend passes; certainty matched nothing and lookup had no
	// traffic, so neither can fail.
	if len(got) != 2 {
		t.Fatalf("violations = %v, want exactly 2", got)
	}
	if !strings.Contains(got[0], "nearest: error rate 0.500%") {
		t.Errorf("violation[0] = %q, want nearest error-rate breach", got[0])
	}
	if !strings.Contains(got[1], "nearest: p99 6.50ms") {
		t.Errorf("violation[1] = %q, want nearest p99 breach", got[1])
	}
}

func TestCheckSLOsAllPass(t *testing.T) {
	rep := &Report{Ops: map[string]OpStats{
		"nearest": {Count: 100, Errors: 0, P99MS: 2.0},
	}}
	slos, err := obs.ParseSLOs("nearest:p99<5ms,err<1%")
	if err != nil {
		t.Fatalf("ParseSLOs: %v", err)
	}
	if got := CheckSLOs(rep, slos); len(got) != 0 {
		t.Fatalf("violations = %v, want none", got)
	}
}

func TestCheckSLOsSuffixMatch(t *testing.T) {
	// An objective on the bare name covers dotted server-side endpoint
	// names, matching SLO.MatchesEndpoint semantics.
	rep := &Report{Ops: map[string]OpStats{
		"data.nearest": {Count: 10, Errors: 0, P99MS: 9.0},
	}}
	slos, err := obs.ParseSLOs("nearest:p99<5ms")
	if err != nil {
		t.Fatalf("ParseSLOs: %v", err)
	}
	got := CheckSLOs(rep, slos)
	if len(got) != 1 || !strings.Contains(got[0], "data.nearest: p99 9.00ms") {
		t.Fatalf("violations = %v, want one data.nearest breach", got)
	}
}
