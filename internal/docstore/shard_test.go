package docstore

import (
	"encoding/gob"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestShardCountIsPowerOfTwo(t *testing.T) {
	for _, want := range []struct{ ask, got int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		c := newCollectionShards("x", want.ask)
		if c.NumShards() != want.got {
			t.Fatalf("shards(%d) = %d, want %d", want.ask, c.NumShards(), want.got)
		}
	}
	if n := newCollection("x").NumShards(); n&(n-1) != 0 || n < 1 {
		t.Fatalf("default shard count %d is not a power of two", n)
	}
}

// TestShardedMatchesSingleShard runs the same workload against a 1-shard
// and an 8-shard collection and requires identical query results — the
// stripe layout must be invisible to callers.
func TestShardedMatchesSingleShard(t *testing.T) {
	one := newCollectionShards("c", 1)
	many := newCollectionShards("c", 8)
	for _, c := range []*Collection{one, many} {
		if err := c.CreateHashIndex("k"); err != nil {
			t.Fatal(err)
		}
		if err := c.CreateOrderedIndex("t"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			id := fmt.Sprintf("d%04d", i)
			if _, err := c.Insert(id, Fields{"k": i % 7, "t": float64(i % 13), "v": i}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 200; i += 9 {
			if err := c.Delete(fmt.Sprintf("d%04d", i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 1; i < 200; i += 17 {
			if i%9 == 0 {
				continue // deleted above
			}
			if err := c.Update(fmt.Sprintf("d%04d", i), Fields{"k": 99}); err != nil {
				t.Fatal(err)
			}
		}
	}
	queries := []Query{
		{},
		{Filters: []Filter{Eq("k", 3)}},
		{Filters: []Filter{Eq("k", 99)}},
		{Filters: []Filter{Lte("t", 6)}},
		{Filters: []Filter{Gt("t", 6), Eq("k", 2)}},
		{SortBy: "t", Limit: 10, Offset: 5},
		{SortBy: "t", Desc: true, Limit: 7},
		{Filters: []Filter{In("k", 1, 4)}, SortBy: "v", Desc: true},
	}
	for _, q := range queries {
		a, err := one.FindIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := many.FindIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(a, b) {
			t.Fatalf("query %+v: 1-shard %v vs 8-shard %v", q, a, b)
		}
		na, _ := one.CountWhere(q)
		nb, _ := many.CountWhere(q)
		if na != nb {
			t.Fatalf("query %+v: counts %d vs %d", q, na, nb)
		}
	}
	if !equalIDs(one.AllIDs(), many.AllIDs()) {
		t.Fatal("AllIDs differ between shard layouts")
	}
}

// TestShardedConcurrentMutations drives concurrent Insert/Update/Delete/
// Find/Count across shards; run under -race this is the striped-locking
// soundness check.
func TestShardedConcurrentMutations(t *testing.T) {
	c := newCollectionShards("c", 8)
	if err := c.CreateHashIndex("k"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateOrderedIndex("t"); err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 60
	var wg sync.WaitGroup
	errs := make(chan error, writers*4)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []string
			for i := 0; i < perWriter; i++ {
				id, err := c.Insert("", Fields{"k": i % 5, "t": float64(i), "w": w})
				if err != nil {
					errs <- err
					return
				}
				mine = append(mine, id)
				if i%3 == 0 {
					if err := c.Update(id, Fields{"k": (i + 1) % 5}); err != nil {
						errs <- err
						return
					}
				}
				if i%7 == 0 && len(mine) > 1 {
					if err := c.Delete(mine[0]); err != nil {
						errs <- err
						return
					}
					mine = mine[1:]
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				if _, err := c.FindIDs(Query{Filters: []Filter{Eq("k", i%5)}}); err != nil {
					errs <- err
					return
				}
				if _, err := c.CountWhere(Query{Filters: []Filter{Gte("t", float64(i%20))}}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Final state: indexes agree with a brute-force scan.
	for k := 0; k < 5; k++ {
		indexed, err := c.FindIDs(Query{Filters: []Filter{Eq("k", k)}})
		if err != nil {
			t.Fatal(err)
		}
		brute := bruteFind(c, "k", int64(k))
		if !equalIDs(indexed, brute) {
			t.Fatalf("k=%d: index disagrees with scan after concurrent ops", k)
		}
	}
}

// TestShardedSaveLoadRoundTrip snapshots a multi-shard store and reloads
// it, verifying docs, indexes, and the ID sequence survive regardless of
// the in-memory stripe layout.
func TestShardedSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.gob.gz")
	s := NewStore()
	c := s.Collection("peaks")
	if c.NumShards() < 1 {
		t.Fatal("collection has no shards")
	}
	if err := c.CreateHashIndex("cluster"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateOrderedIndex("t"); err != nil {
		t.Fatal(err)
	}
	batch := make([]Fields, 120)
	for i := range batch {
		batch[i] = Fields{"cluster": i % 6, "t": float64(i)}
	}
	if _, err := c.InsertMany(batch); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	// The temp file must not linger after a successful save.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("stale temp snapshot left behind: %v", err)
	}

	s2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	c2 := s2.Collection("peaks")
	if c2.Count() != 120 {
		t.Fatalf("reloaded %d docs, want 120", c2.Count())
	}
	if !equalIDs(c.AllIDs(), c2.AllIDs()) {
		t.Fatal("IDs differ after reload")
	}
	for k := 0; k < 6; k++ {
		q := Query{Filters: []Filter{Eq("cluster", k)}}
		a, _ := c.FindIDs(q)
		b, _ := c2.FindIDs(q)
		if !equalIDs(a, b) {
			t.Fatalf("cluster %d differs after reload", k)
		}
	}
	// ID sequence continues without collision.
	id, err := c2.Insert("", Fields{"cluster": 0, "t": 999.0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Get(id); err != nil {
		t.Fatal(err)
	}
}

// TestLoadRejectsPartialWrite simulates a crash mid-copy: a truncated
// snapshot file must fail to load rather than yield a silently incomplete
// store.
func TestLoadRejectsPartialWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.gob.gz")
	s := NewStore()
	c := s.Collection("x")
	batch := make([]Fields, 500)
	for i := range batch {
		batch[i] = Fields{"v": i, "pad": make([]byte, 512)}
	}
	if _, err := c.InsertMany(batch); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.25, 0.6, 0.95} {
		cut := int(float64(len(raw)) * frac)
		trunc := filepath.Join(dir, fmt.Sprintf("trunc-%d", cut))
		if err := os.WriteFile(trunc, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(trunc); err == nil {
			t.Fatalf("Load accepted a snapshot truncated to %d/%d bytes", cut, len(raw))
		}
	}
}

// TestClientPoolIsHardCap is the regression test for the unbounded-dial
// bug: M goroutines hammering one server through a poolSize-connection
// client must never open more than poolSize simultaneous TCP connections.
func TestClientPoolIsHardCap(t *testing.T) {
	const poolSize, workers, perWorker = 4, 32, 25
	srv, addr := startTestServer(t, ServerConfig{})
	cl, err := Dial(addr, poolSize)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if _, err := cl.Insert("c", id, Fields{"w": w}); err != nil {
					errs <- err
					return
				}
				if _, err := cl.Get("c", id); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if peak := srv.PeakConns(); peak > poolSize {
		t.Fatalf("server saw %d simultaneous connections; pool cap is %d", peak, poolSize)
	}
	n, err := cl.Count("c", Query{})
	if err != nil || n != workers*perWorker {
		t.Fatalf("count = %d err=%v", n, err)
	}
}

// TestServerHandlesPipelinedRequestsConcurrently speaks the wire protocol
// directly: K requests pipelined on one connection against a server with
// per-request latency must complete in roughly one latency period (worker
// pool), not K of them (sequential), and every response's Seq must match a
// request.
func TestServerHandlesPipelinedRequestsConcurrently(t *testing.T) {
	const latency = 100 * time.Millisecond
	const k = 4
	_, addr := startTestServer(t, ServerConfig{Latency: latency, ConnWorkers: k})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)

	start := time.Now()
	for i := 1; i <= k; i++ {
		if err := enc.Encode(&request{Seq: uint64(i), Op: opPing}); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint64]bool{}
	for i := 0; i < k; i++ {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.Err != "" {
			t.Fatalf("ping %d: %s", resp.Seq, resp.Err)
		}
		if resp.Seq < 1 || resp.Seq > k || seen[resp.Seq] {
			t.Fatalf("bad or duplicate response seq %d", resp.Seq)
		}
		seen[resp.Seq] = true
	}
	elapsed := time.Since(start)
	if sequential := time.Duration(k) * latency; elapsed >= sequential-latency/2 {
		t.Fatalf("pipelined requests took %v; sequential handling would take %v", elapsed, sequential)
	}
}

// TestFindIDsDeterministicSortTies: equal sort keys are ordered by ID, so
// results are reproducible across shard layouts and runs.
func TestFindIDsDeterministicSortTies(t *testing.T) {
	for _, shards := range []int{1, 4} {
		c := newCollectionShards("c", shards)
		for i := 0; i < 30; i++ {
			if _, err := c.Insert(fmt.Sprintf("d%02d", i), Fields{"t": float64(i % 3)}); err != nil {
				t.Fatal(err)
			}
		}
		first, err := c.FindIDs(Query{SortBy: "t"})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			again, err := c.FindIDs(Query{SortBy: "t"})
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(first, again) {
				t.Fatalf("shards=%d: sort with ties is not deterministic", shards)
			}
		}
		// Ties must be ID-ascending within each key group.
		for i := 1; i < len(first); i++ {
			a, _ := c.Get(first[i-1])
			b, _ := c.Get(first[i])
			if a.F["t"] == b.F["t"] && first[i-1] >= first[i] {
				t.Fatalf("shards=%d: tie at %d not ID-ordered", shards, i)
			}
		}
	}
}

// TestFailedOrderedIndexKeepsHashIndex: when an ordered-index build on a
// field fails partway, the rollback must not destroy a previously built
// hash index on the same field.
func TestFailedOrderedIndexKeepsHashIndex(t *testing.T) {
	c := newCollectionShards("c", 4)
	if err := c.CreateHashIndex("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.Insert("", Fields{"t": "label"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateOrderedIndex("t"); err == nil {
		t.Fatal("expected ordered index over strings to fail")
	}
	hash, ordered := c.Indexes()
	if len(hash) != 1 || hash[0] != "t" || len(ordered) != 0 {
		t.Fatalf("indexes after failed build: hash=%v ordered=%v", hash, ordered)
	}
	ids, err := c.FindIDs(Query{Filters: []Filter{Eq("t", "label")}})
	if err != nil || len(ids) != 20 {
		t.Fatalf("hash index broken after failed ordered build: %d ids, err=%v", len(ids), err)
	}
}

// TestInsertManyRollsBackAtomically: a batch with an unindexable value
// stores nothing.
func TestInsertManyRollsBackAtomically(t *testing.T) {
	c := newCollectionShards("c", 4)
	if err := c.CreateOrderedIndex("t"); err != nil {
		t.Fatal(err)
	}
	batch := []Fields{
		{"t": 1.0}, {"t": 2.0}, {"t": "not numeric"}, {"t": 4.0},
	}
	if _, err := c.InsertMany(batch); err == nil {
		t.Fatal("expected error for non-numeric ordered-index value")
	}
	if n := c.Count(); n != 0 {
		t.Fatalf("failed batch left %d documents behind", n)
	}
	// The collection remains usable and the index consistent.
	if _, err := c.Insert("", Fields{"t": 9.0}); err != nil {
		t.Fatal(err)
	}
	ids, err := c.FindIDs(Query{Filters: []Filter{Gte("t", 0)}})
	if err != nil || len(ids) != 1 {
		t.Fatalf("ids=%v err=%v", ids, err)
	}
}
