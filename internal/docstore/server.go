package docstore

import (
	"encoding/gob"
	"errors"
	"io"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// defaultConnWorkers is the per-connection request concurrency when
// ServerConfig.ConnWorkers is zero.
const defaultConnWorkers = 8

// ServerConfig tunes a document-store server.
type ServerConfig struct {
	// Latency is an artificial per-request delay, used to emulate the
	// paper's remote (100 GbE) MongoDB placement in benchmarks. Zero means
	// no added delay.
	Latency time.Duration
	// ConnWorkers bounds how many requests from one connection are handled
	// concurrently. Pipelined requests are dispatched to this per-connection
	// worker pool and responses are matched by sequence number, so a slow
	// Find does not head-of-line-block a fast Get behind it. Zero means
	// defaultConnWorkers; 1 restores strictly sequential handling.
	ConnWorkers int
	// FaultRate, if positive, is the probability that the server abruptly
	// drops a connection after serving a request — failure injection for
	// client-resilience tests.
	FaultRate float64
	// FaultSeed seeds the fault generator.
	FaultSeed int64
	// Logger receives error logs; nil silences them.
	Logger *log.Logger
}

// Server exposes a Store over TCP. Each accepted connection is served by
// its own goroutine, and each connection's requests are dispatched to a
// bounded worker pool, so parallel clients (and pipelined requests within
// one connection) read and write concurrently — the store's shard locks
// are the only serialization point.
type Server struct {
	store *Store
	cfg   ServerConfig
	lis   net.Listener

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	peakConns int
	closed    atomic.Bool
	wg        sync.WaitGroup
	served    atomic.Int64
	faultMu   sync.Mutex
	faultRN   *rand.Rand
}

// NewServer wraps store with a protocol server; call Serve to start.
func NewServer(store *Store, cfg ServerConfig) *Server {
	if cfg.ConnWorkers <= 0 {
		cfg.ConnWorkers = defaultConnWorkers
	}
	return &Server{
		store:   store,
		cfg:     cfg,
		conns:   make(map[net.Conn]struct{}),
		faultRN: rand.New(rand.NewSource(cfg.FaultSeed)),
	}
}

// Listen binds to addr ("127.0.0.1:0" picks a free port) and starts
// serving in background goroutines. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.lis = lis
	s.wg.Add(1)
	go s.acceptLoop()
	return lis.Addr().String(), nil
}

// Requests reports how many requests have been served.
func (s *Server) Requests() int64 { return s.served.Load() }

// OpenConns reports how many client connections are currently live.
func (s *Server) OpenConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// PeakConns reports the highest number of simultaneously live client
// connections seen since the server started — the observable a client
// pool-size cap is asserted against.
func (s *Server) PeakConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peakConns
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		if n := len(s.conns); n > s.peakConns {
			s.peakConns = n
		}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn decodes requests off the connection and hands each to the
// per-connection worker pool. The decode loop never waits on request
// handling (only on pool admission), so up to ConnWorkers pipelined
// requests run concurrently; responses carry the request's Seq and are
// serialized onto the connection by a write mutex in completion order.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	var handlers sync.WaitGroup
	defer func() {
		handlers.Wait()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var wmu sync.Mutex
	pool := make(chan struct{}, s.cfg.ConnWorkers)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !s.closed.Load() && s.cfg.Logger != nil {
				s.cfg.Logger.Printf("docstore server: decode: %v", err)
			}
			return
		}
		pool <- struct{}{}
		handlers.Add(1)
		go func(req request) {
			defer func() {
				<-pool
				handlers.Done()
			}()
			if s.cfg.Latency > 0 {
				time.Sleep(s.cfg.Latency)
			}
			resp := s.handle(&req)
			resp.Seq = req.Seq
			s.served.Add(1)
			wmu.Lock()
			err := enc.Encode(resp)
			wmu.Unlock()
			if err != nil {
				if s.cfg.Logger != nil {
					s.cfg.Logger.Printf("docstore server: encode: %v", err)
				}
				conn.Close() // unblocks the decode loop
				return
			}
			if s.cfg.FaultRate > 0 {
				s.faultMu.Lock()
				drop := s.faultRN.Float64() < s.cfg.FaultRate
				s.faultMu.Unlock()
				if drop {
					conn.Close() // abruptly drop the connection
				}
			}
		}(req)
	}
}

func (s *Server) handle(req *request) *response {
	resp := &response{}
	fail := func(err error) *response {
		resp.Err = err.Error()
		return resp
	}
	switch req.Op {
	case opPing:
		return resp
	case opNames:
		resp.Names = s.store.Names()
		return resp
	case opDrop:
		s.store.Drop(req.Collection)
		return resp
	}

	c := s.store.Collection(req.Collection)
	switch req.Op {
	case opInsert:
		id, err := c.Insert(req.ID, req.Fields)
		if err != nil {
			return fail(err)
		}
		resp.ID = id
	case opInsertMany:
		ids, err := c.InsertMany(req.Batch)
		if err != nil {
			return fail(err)
		}
		resp.IDs = ids
	case opTxn:
		ids, err := c.ApplyTxn(req.Ops)
		if err != nil {
			return fail(err)
		}
		resp.IDs = ids
	case opGet:
		d, err := c.Get(req.ID)
		if err != nil {
			return fail(err)
		}
		resp.Docs = []Doc{*d}
	case opGetMany:
		ds, err := c.GetMany(req.IDs)
		if err != nil {
			return fail(err)
		}
		for _, d := range ds {
			resp.Docs = append(resp.Docs, *d)
		}
	case opUpdate:
		if err := c.Update(req.ID, req.Fields); err != nil {
			return fail(err)
		}
	case opDelete:
		if err := c.Delete(req.ID); err != nil {
			return fail(err)
		}
	case opFind:
		ds, err := c.Find(req.Query)
		if err != nil {
			return fail(err)
		}
		for _, d := range ds {
			resp.Docs = append(resp.Docs, *d)
		}
	case opFindIDs:
		ids, err := c.FindIDs(req.Query)
		if err != nil {
			return fail(err)
		}
		resp.IDs = ids
	case opCount:
		n, err := c.CountWhere(req.Query)
		if err != nil {
			return fail(err)
		}
		resp.Count = n
	case opSample:
		ids, err := c.SampleIDs(req.Query, req.N, req.Seed)
		if err != nil {
			return fail(err)
		}
		resp.IDs = ids
	case opCreateHashIndex:
		if err := c.CreateHashIndex(req.Field); err != nil {
			return fail(err)
		}
	case opCreateOrderedIndex:
		if err := c.CreateOrderedIndex(req.Field); err != nil {
			return fail(err)
		}
	default:
		resp.Err = "docstore: unknown operation"
	}
	return resp
}

// Close stops accepting, closes live connections, and waits for handler
// goroutines to finish.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}
