package docstore

import (
	"encoding/gob"
	"errors"
	"io"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ServerConfig tunes a document-store server.
type ServerConfig struct {
	// Latency is an artificial per-request delay, used to emulate the
	// paper's remote (100 GbE) MongoDB placement in benchmarks. Zero means
	// no added delay.
	Latency time.Duration
	// FaultRate, if positive, is the probability that the server abruptly
	// drops a connection after serving a request — failure injection for
	// client-resilience tests.
	FaultRate float64
	// FaultSeed seeds the fault generator.
	FaultSeed int64
	// Logger receives error logs; nil silences them.
	Logger *log.Logger
}

// Server exposes a Store over TCP. Each accepted connection is served by
// its own goroutine, so parallel clients read and write concurrently —
// the store's collection locks are the only serialization point.
type Server struct {
	store *Store
	cfg   ServerConfig
	lis   net.Listener

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  atomic.Bool
	wg      sync.WaitGroup
	served  atomic.Int64
	faultMu sync.Mutex
	faultRN *rand.Rand
}

// NewServer wraps store with a protocol server; call Serve to start.
func NewServer(store *Store, cfg ServerConfig) *Server {
	return &Server{
		store:   store,
		cfg:     cfg,
		conns:   make(map[net.Conn]struct{}),
		faultRN: rand.New(rand.NewSource(cfg.FaultSeed)),
	}
}

// Listen binds to addr ("127.0.0.1:0" picks a free port) and starts
// serving in background goroutines. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.lis = lis
	s.wg.Add(1)
	go s.acceptLoop()
	return lis.Addr().String(), nil
}

// Requests reports how many requests have been served.
func (s *Server) Requests() int64 { return s.served.Load() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !s.closed.Load() && s.cfg.Logger != nil {
				s.cfg.Logger.Printf("docstore server: decode: %v", err)
			}
			return
		}
		if s.cfg.Latency > 0 {
			time.Sleep(s.cfg.Latency)
		}
		resp := s.handle(&req)
		s.served.Add(1)
		if err := enc.Encode(resp); err != nil {
			if s.cfg.Logger != nil {
				s.cfg.Logger.Printf("docstore server: encode: %v", err)
			}
			return
		}
		if s.cfg.FaultRate > 0 {
			s.faultMu.Lock()
			drop := s.faultRN.Float64() < s.cfg.FaultRate
			s.faultMu.Unlock()
			if drop {
				return // abruptly close the connection
			}
		}
	}
}

func (s *Server) handle(req *request) *response {
	resp := &response{}
	fail := func(err error) *response {
		resp.Err = err.Error()
		return resp
	}
	switch req.Op {
	case opPing:
		return resp
	case opNames:
		resp.Names = s.store.Names()
		return resp
	case opDrop:
		s.store.Drop(req.Collection)
		return resp
	}

	c := s.store.Collection(req.Collection)
	switch req.Op {
	case opInsert:
		id, err := c.Insert(req.ID, req.Fields)
		if err != nil {
			return fail(err)
		}
		resp.ID = id
	case opInsertMany:
		ids, err := c.InsertMany(req.Batch)
		if err != nil {
			return fail(err)
		}
		resp.IDs = ids
	case opGet:
		d, err := c.Get(req.ID)
		if err != nil {
			return fail(err)
		}
		resp.Docs = []Doc{*d}
	case opGetMany:
		ds, err := c.GetMany(req.IDs)
		if err != nil {
			return fail(err)
		}
		for _, d := range ds {
			resp.Docs = append(resp.Docs, *d)
		}
	case opUpdate:
		if err := c.Update(req.ID, req.Fields); err != nil {
			return fail(err)
		}
	case opDelete:
		if err := c.Delete(req.ID); err != nil {
			return fail(err)
		}
	case opFind:
		ds, err := c.Find(req.Query)
		if err != nil {
			return fail(err)
		}
		for _, d := range ds {
			resp.Docs = append(resp.Docs, *d)
		}
	case opFindIDs:
		ids, err := c.FindIDs(req.Query)
		if err != nil {
			return fail(err)
		}
		resp.IDs = ids
	case opCount:
		n, err := c.CountWhere(req.Query)
		if err != nil {
			return fail(err)
		}
		resp.Count = n
	case opSample:
		ids, err := c.SampleIDs(req.Query, req.N, req.Seed)
		if err != nil {
			return fail(err)
		}
		resp.IDs = ids
	case opCreateHashIndex:
		if err := c.CreateHashIndex(req.Field); err != nil {
			return fail(err)
		}
	case opCreateOrderedIndex:
		if err := c.CreateOrderedIndex(req.Field); err != nil {
			return fail(err)
		}
	default:
		resp.Err = "docstore: unknown operation"
	}
	return resp
}

// Close stops accepting, closes live connections, and waits for handler
// goroutines to finish.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}
