package docstore

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Collection is a concurrently accessible set of documents with optional
// secondary indexes. All exported methods are safe for parallel use.
//
// Storage is lock-striped: documents are spread over a power-of-two number
// of shards by document-ID hash, each shard guarded by its own RWMutex and
// carrying its own fragment of every index. Writers touching different
// shards proceed in parallel, and full scans fan out one goroutine per
// shard — the store's "parallel reads during training / parallel writes
// during data updates" requirements (paper §II-A) at the lock level.
type Collection struct {
	name   string
	nextID atomic.Uint64
	shards []*shard
	mask   uint32

	// idxMu guards the index registry: the authoritative set of indexed
	// fields. Per-shard index fragments are guarded by the shard locks.
	idxMu      sync.Mutex
	hashFields map[string]struct{} // guarded by idxMu
	ordFields  map[string]struct{} // guarded by idxMu

	// logger, when set, makes every write durable: single-document ops
	// route through ApplyTxn and each commit becomes one WAL record.
	// Installed once by DurableStore before the store is shared; nil on
	// plain in-memory stores.
	logger commitLogger
}

// shard is one lock stripe: a slice of the document space plus its
// fragment of every secondary index.
type shard struct {
	mu      sync.RWMutex
	docs    map[string]*Doc                           // guarded by mu
	hashIdx map[string]map[string]map[string]struct{} // guarded by mu; field → key → id set
	ordIdx  map[string][]ordEntry                     // guarded by mu; field → sorted entries
}

type ordEntry struct {
	key float64
	id  string
}

// defaultShardCount picks a power of two near GOMAXPROCS, clamped to
// [1, 32]: enough stripes that writers rarely collide, few enough that
// per-shard maps stay dense.
func defaultShardCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 32 {
		n = 32
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func newCollection(name string) *Collection {
	return newCollectionShards(name, defaultShardCount())
}

// newCollectionShards builds a collection with an explicit shard count
// (rounded up to a power of two); tests and benchmarks use it to pin the
// stripe layout.
func newCollectionShards(name string, n int) *Collection {
	if n < 1 {
		n = 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	c := &Collection{
		name:       name,
		shards:     make([]*shard, p),
		mask:       uint32(p - 1),
		hashFields: make(map[string]struct{}),
		ordFields:  make(map[string]struct{}),
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			docs:    make(map[string]*Doc),
			hashIdx: make(map[string]map[string]map[string]struct{}),
			ordIdx:  make(map[string][]ordEntry),
		}
	}
	return c
}

// shardIndexFor maps a document ID to its stripe index by inlined
// FNV-1a, keeping the per-operation hash allocation-free. Multi-shard
// paths use the index to acquire locks in ascending stripe order.
func (c *Collection) shardIndexFor(id string) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h & c.mask)
}

// shardFor maps a document ID to its stripe.
func (c *Collection) shardFor(id string) *shard {
	return c.shards[c.shardIndexFor(id)]
}

// NumShards reports the stripe count.
func (c *Collection) NumShards() int { return len(c.shards) }

// forEachShard runs fn once per shard, in parallel when the collection has
// more than one stripe. fn receives the shard index and must do its own
// locking.
func (c *Collection) forEachShard(fn func(i int, s *shard)) {
	if len(c.shards) == 1 {
		fn(0, c.shards[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(c.shards))
	for i, s := range c.shards {
		go func(i int, s *shard) {
			defer wg.Done()
			fn(i, s)
		}(i, s)
	}
	wg.Wait()
}

// Name returns the collection's name.
func (c *Collection) Name() string { return c.name }

// Count returns the number of stored documents.
func (c *Collection) Count() int {
	total := 0
	for _, s := range c.shards {
		s.mu.RLock()
		total += len(s.docs)
		s.mu.RUnlock()
	}
	return total
}

// CreateHashIndex builds an equality index over field, indexing existing
// documents. Indexing a field twice is a no-op.
func (c *Collection) CreateHashIndex(field string) error {
	c.idxMu.Lock()
	defer c.idxMu.Unlock()
	if _, ok := c.hashFields[field]; ok {
		return nil
	}
	for i, s := range c.shards {
		s.mu.Lock()
		idx := make(map[string]map[string]struct{})
		var err error
		for id, d := range s.docs {
			if v, ok := d.F[field]; ok {
				key, kerr := indexKey(v)
				if kerr != nil {
					err = fmt.Errorf("docstore: indexing %s.%s: %w", c.name, field, kerr)
					break
				}
				addToHash(idx, key, id)
			}
		}
		if err == nil {
			s.hashIdx[field] = idx
		}
		s.mu.Unlock()
		if err != nil {
			c.dropIndexFragments(field, i, indexHash)
			return err
		}
	}
	c.hashFields[field] = struct{}{}
	return c.logMeta(txnCreateHashIndex, field)
}

type indexKind uint8

const (
	indexHash indexKind = iota
	indexOrdered
)

// dropIndexFragments removes the field's fragment of one index kind from
// shards [0, upto) — the rollback path when index creation fails partway.
// Only the kind being created is dropped: the same field may legitimately
// carry the other kind from an earlier successful build.
func (c *Collection) dropIndexFragments(field string, upto int, kind indexKind) {
	for _, s := range c.shards[:upto] {
		s.mu.Lock()
		if kind == indexHash {
			delete(s.hashIdx, field)
		} else {
			delete(s.ordIdx, field)
		}
		s.mu.Unlock()
	}
}

// CreateOrderedIndex builds a range index over a numeric field.
func (c *Collection) CreateOrderedIndex(field string) error {
	c.idxMu.Lock()
	defer c.idxMu.Unlock()
	if _, ok := c.ordFields[field]; ok {
		return nil
	}
	for i, s := range c.shards {
		s.mu.Lock()
		var entries []ordEntry
		var err error
		for id, d := range s.docs {
			if v, ok := d.F[field]; ok {
				f, ok := asFloat(v)
				if !ok {
					err = fmt.Errorf("docstore: ordered index %s.%s: non-numeric value %T", c.name, field, v)
					break
				}
				entries = append(entries, ordEntry{key: f, id: id})
			}
		}
		if err == nil {
			sortOrd(entries)
			s.ordIdx[field] = entries
		}
		s.mu.Unlock()
		if err != nil {
			c.dropIndexFragments(field, i, indexOrdered)
			return err
		}
	}
	c.ordFields[field] = struct{}{}
	return c.logMeta(txnCreateOrderedIndex, field)
}

// logMeta writes an index-create metadata record to the WAL so the index
// survives a crash before the next compaction folds it into the
// snapshot. The in-memory index already exists when this runs; an error
// therefore means "built but possibly not durable", which callers
// surface rather than roll back.
func (c *Collection) logMeta(kind TxnKind, field string) error {
	if c.logger == nil {
		return nil
	}
	rec := walCommit{Collection: c.name, NextID: c.nextID.Load(), Ops: []TxnOp{{Kind: kind, ID: field}}}
	release, err := c.logger.logTxn(&rec)
	if err != nil {
		return fmt.Errorf("docstore: logging index creation on %s.%s: %w", c.name, field, err)
	}
	release()
	return nil
}

// Indexes lists indexed fields (hash and ordered).
func (c *Collection) Indexes() (hash, ordered []string) {
	c.idxMu.Lock()
	defer c.idxMu.Unlock()
	for f := range c.hashFields {
		hash = append(hash, f)
	}
	for f := range c.ordFields {
		ordered = append(ordered, f)
	}
	sort.Strings(hash)
	sort.Strings(ordered)
	return
}

// genID reserves the next sequential document ID.
func (c *Collection) genID() string {
	return fmt.Sprintf("%s-%08d", c.name, c.nextID.Add(1))
}

// Insert stores a document. If id is empty a sequential one is assigned.
// It returns the document's ID, or an error if the ID already exists or a
// field type is unsupported.
func (c *Collection) Insert(id string, f Fields) (string, error) {
	if c.logger != nil {
		ids, err := c.ApplyTxn([]TxnOp{{Kind: TxnAdd, ID: id, F: f}})
		if err != nil {
			return "", err
		}
		return ids[0], nil
	}
	nf, err := normalizeFields(f)
	if err != nil {
		return "", err
	}
	if id == "" {
		id = c.genID()
	}
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.docs[id]; exists {
		return "", fmt.Errorf("docstore: duplicate id %q in collection %q", id, c.name)
	}
	d := &Doc{ID: id, F: nf}
	s.docs[id] = d
	if err := s.indexDocLocked(c.name, d); err != nil {
		s.unindexDocLocked(d)
		delete(s.docs, id)
		return "", err
	}
	return id, nil
}

// InsertMany stores a batch of documents under generated IDs, returning
// them in order. Documents are grouped by shard and the groups inserted in
// parallel, one lock acquisition per touched shard — the paper's "parallel
// writes during the data update phase" fast path for bulk label ingestion.
// On error the whole batch is rolled back, so the end state holds either
// every document or none; this is not snapshot isolation, though —
// concurrent readers may briefly observe part of a batch that is then
// rolled back, since shard locks are released before the cross-shard
// error check.
func (c *Collection) InsertMany(fs []Fields) ([]string, error) {
	if c.logger != nil {
		// Durable path: the batch is one transaction and one WAL commit
		// record, which also upgrades it to snapshot isolation (readers
		// never observe part of the batch).
		ops := make([]TxnOp, len(fs))
		for i, f := range fs {
			ops[i] = TxnOp{Kind: TxnAdd, F: f}
		}
		ids, err := c.ApplyTxn(ops)
		if err != nil {
			return nil, err
		}
		return ids, nil
	}
	norm := make([]Fields, len(fs))
	for i, f := range fs {
		nf, err := normalizeFields(f)
		if err != nil {
			return nil, fmt.Errorf("docstore: batch item %d: %w", i, err)
		}
		norm[i] = nf
	}
	ids := make([]string, len(norm))
	groups := make(map[*shard][]*Doc, len(c.shards))
	for i, nf := range norm {
		id := c.genID()
		ids[i] = id
		s := c.shardFor(id)
		groups[s] = append(groups[s], &Doc{ID: id, F: nf})
	}

	var (
		mu       sync.Mutex
		firstErr error
		done     []*shard // shards fully inserted, for rollback
	)
	var wg sync.WaitGroup
	for s, docs := range groups {
		wg.Add(1)
		go func(s *shard, docs []*Doc) {
			defer wg.Done()
			s.mu.Lock()
			var err error
			var inserted []*Doc
			for _, d := range docs {
				s.docs[d.ID] = d
				if err = s.indexDocLocked(c.name, d); err != nil {
					s.unindexDocLocked(d)
					delete(s.docs, d.ID)
					break
				}
				inserted = append(inserted, d)
			}
			if err != nil {
				// Roll back this shard's portion of the batch.
				for _, d := range inserted {
					s.unindexDocLocked(d)
					delete(s.docs, d.ID)
				}
			}
			s.mu.Unlock()
			mu.Lock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				done = append(done, s)
			}
			mu.Unlock()
		}(s, docs)
	}
	wg.Wait()
	if firstErr != nil {
		for _, s := range done {
			s.mu.Lock()
			for _, d := range groups[s] {
				s.unindexDocLocked(d)
				delete(s.docs, d.ID)
			}
			s.mu.Unlock()
		}
		return nil, firstErr
	}
	return ids, nil
}

// Get returns a copy of the document with the given ID.
func (c *Collection) Get(id string) (*Doc, error) {
	s := c.shardFor(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.docs[id]
	if !ok {
		return nil, fmt.Errorf("docstore: id %q not found in collection %q", id, c.name)
	}
	return &Doc{ID: d.ID, F: cloneFields(d.F)}, nil
}

// GetMany returns copies of the documents with the given IDs, in order.
// Missing IDs produce an error naming the first absent one. IDs are
// fetched shard-by-shard, so the result is not a single atomic snapshot
// under concurrent writers.
func (c *Collection) GetMany(ids []string) ([]*Doc, error) {
	out := make([]*Doc, len(ids))
	missing := -1
	c.eachShardGroup(ids, func(s *shard, positions []int) {
		s.mu.RLock()
		defer s.mu.RUnlock()
		for _, i := range positions {
			d, ok := s.docs[ids[i]]
			if !ok {
				if missing < 0 || i < missing {
					missing = i
				}
				continue
			}
			out[i] = &Doc{ID: d.ID, F: cloneFields(d.F)}
		}
	})
	if missing >= 0 {
		return nil, fmt.Errorf("docstore: id %q not found in collection %q", ids[missing], c.name)
	}
	return out, nil
}

// eachShardGroup groups input positions by owning shard and runs fn once
// per touched shard, sequentially (callers hold no locks; fn locks).
func (c *Collection) eachShardGroup(ids []string, fn func(s *shard, positions []int)) {
	if len(c.shards) == 1 {
		positions := make([]int, len(ids))
		for i := range ids {
			positions[i] = i
		}
		fn(c.shards[0], positions)
		return
	}
	groups := make(map[*shard][]int)
	for i, id := range ids {
		s := c.shardFor(id)
		groups[s] = append(groups[s], i)
	}
	for s, positions := range groups {
		fn(s, positions)
	}
}

// Update merges fields into an existing document (set semantics), updating
// any affected indexes. The merged document replaces the old one
// copy-on-write, so snapshots handed out by NewReadTxn keep observing
// the pre-update value.
func (c *Collection) Update(id string, f Fields) error {
	if c.logger != nil {
		_, err := c.ApplyTxn([]TxnOp{{Kind: TxnUpdate, ID: id, F: f}})
		return err
	}
	nf, err := normalizeFields(f)
	if err != nil {
		return err
	}
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[id]
	if !ok {
		return fmt.Errorf("docstore: id %q not found in collection %q", id, c.name)
	}
	merged := &Doc{ID: id, F: cloneFields(d.F)}
	for k, v := range nf {
		merged.F[k] = v
	}
	s.unindexDocLocked(d)
	s.docs[id] = merged
	if err := s.indexDocLocked(c.name, merged); err != nil {
		// Roll the replacement back so a rejected update leaves the old
		// document fully indexed and intact.
		s.unindexDocLocked(merged)
		s.docs[id] = d
		if rerr := s.indexDocLocked(c.name, d); rerr != nil {
			return fmt.Errorf("docstore: update rollback reindex: %w", rerr)
		}
		return err
	}
	return nil
}

// Delete removes a document.
func (c *Collection) Delete(id string) error {
	if c.logger != nil {
		_, err := c.ApplyTxn([]TxnOp{{Kind: TxnDelete, ID: id}})
		return err
	}
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[id]
	if !ok {
		return fmt.Errorf("docstore: id %q not found in collection %q", id, c.name)
	}
	s.unindexDocLocked(d)
	delete(s.docs, id)
	return nil
}

// Find returns copies of documents matching the query, using indexes when
// the query's filters allow it. With Query.Project set, returned documents
// carry only the projected fields.
func (c *Collection) Find(q Query) ([]*Doc, error) {
	ids, err := c.FindIDs(q)
	if err != nil {
		return nil, err
	}
	if len(q.Project) == 0 {
		return c.GetMany(ids)
	}
	out := make([]*Doc, len(ids))
	missing := -1
	c.eachShardGroup(ids, func(s *shard, positions []int) {
		s.mu.RLock()
		defer s.mu.RUnlock()
		for _, i := range positions {
			d, ok := s.docs[ids[i]]
			if !ok {
				if missing < 0 || i < missing {
					missing = i
				}
				continue
			}
			f := make(Fields, len(q.Project))
			for _, field := range q.Project {
				if v, ok := d.F[field]; ok {
					f[field] = v
				}
			}
			out[i] = &Doc{ID: d.ID, F: f}
		}
	})
	if missing >= 0 {
		return nil, fmt.Errorf("docstore: id %q not found in collection %q", ids[missing], c.name)
	}
	return out, nil
}

// shardMatch is one shard's contribution to a query: matched IDs plus, when
// the query sorts by a field, the sort-key value captured under the shard
// lock so the global merge needs no re-locking.
type shardMatch struct {
	ids  []string
	keys []any
}

// scanShards evaluates the query's filters on every shard in parallel and
// returns the per-shard matches (unsorted, unpaginated).
func (c *Collection) scanShards(q Query) []shardMatch {
	results := make([]shardMatch, len(c.shards))
	c.forEachShard(func(i int, s *shard) {
		s.mu.RLock()
		defer s.mu.RUnlock()
		candidates, rest := s.candidateIDsLocked(q)
		var m shardMatch
		for _, id := range candidates {
			d := s.docs[id]
			if d == nil {
				continue
			}
			ok := true
			for _, f := range rest {
				if !f.matches(d) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			m.ids = append(m.ids, id)
			if q.SortBy != "" {
				m.keys = append(m.keys, d.F[q.SortBy])
			}
		}
		results[i] = m
	})
	return results
}

// FindIDs returns the IDs of matching documents in deterministic order:
// by the sort field (ties broken by ID) when SortBy is set, else by ID.
func (c *Collection) FindIDs(q Query) ([]string, error) {
	parts := c.scanShards(q)
	total := 0
	for _, p := range parts {
		total += len(p.ids)
	}
	matched := make([]string, 0, total)
	if q.SortBy == "" {
		for _, p := range parts {
			matched = append(matched, p.ids...)
		}
		sortIDs(matched)
		if q.Desc {
			for i, j := 0, len(matched)-1; i < j; i, j = i+1, j-1 {
				matched[i], matched[j] = matched[j], matched[i]
			}
		}
	} else {
		keys := make([]any, 0, total)
		for _, p := range parts {
			matched = append(matched, p.ids...)
			keys = append(keys, p.keys...)
		}
		sort.Sort(&sortByKey{ids: matched, keys: keys, desc: q.Desc})
	}

	if q.Offset > 0 {
		if q.Offset >= len(matched) {
			return nil, nil
		}
		matched = matched[q.Offset:]
	}
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
	}
	return matched, nil
}

// sortByKey orders IDs by their captured sort-key values, breaking ties
// (and incomparable pairs) by ID so results are deterministic across runs
// and shard layouts.
type sortByKey struct {
	ids  []string
	keys []any
	desc bool
}

func (s *sortByKey) Len() int { return len(s.ids) }
func (s *sortByKey) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}
func (s *sortByKey) Less(i, j int) bool {
	cmp, ok := compareValues(s.keys[i], s.keys[j])
	if !ok || cmp == 0 {
		return s.ids[i] < s.ids[j]
	}
	if s.desc {
		return cmp > 0
	}
	return cmp < 0
}

// CountWhere returns how many documents match the query. It counts
// per-shard in parallel with no global sort or ID materialization.
func (c *Collection) CountWhere(q Query) (int, error) {
	q.Limit = 0
	q.Offset = 0
	q.SortBy = ""
	parts := c.scanShards(q)
	n := 0
	for _, p := range parts {
		n += len(p.ids)
	}
	return n, nil
}

// SampleIDs returns up to n document IDs drawn uniformly without
// replacement from documents matching the query, using the given seed.
// fairDS uses this to draw labeled historical samples per cluster
// according to the input dataset's PDF.
func (c *Collection) SampleIDs(q Query, n int, seed int64) ([]string, error) {
	ids, err := c.FindIDs(q)
	if err != nil {
		return nil, err
	}
	if n >= len(ids) {
		return ids, nil
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	out := ids[:n]
	sortIDs(out)
	return out, nil
}

// AllIDs returns every document ID in sorted order.
func (c *Collection) AllIDs() []string {
	var ids []string
	for _, s := range c.shards {
		s.mu.RLock()
		for id := range s.docs {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	sortIDs(ids)
	return ids
}

// candidateIDsLocked picks the cheapest access path for the query within
// one shard: the smallest matching hash-index bucket, an ordered-index
// range scan, or a full shard scan. It returns candidate IDs plus the
// filters that still need evaluation. Caller holds at least the shard's
// read lock. Different shards may pick different access paths for the same
// query; correctness only requires that each shard's candidates cover its
// matches.
// lint:holds s.mu
func (s *shard) candidateIDsLocked(q Query) ([]string, []Filter) {
	bestSize := -1
	bestFilter := -1
	var bestIDs []string

	// Equality filters on hash-indexed fields.
	for i, f := range q.Filters {
		if f.Op != OpEq {
			continue
		}
		idx, ok := s.hashIdx[f.Field]
		if !ok {
			continue
		}
		key, err := indexKey(f.Value)
		if err != nil {
			continue
		}
		bucket := idx[key]
		if bestSize < 0 || len(bucket) < bestSize {
			bestSize = len(bucket)
			bestFilter = i
			bestIDs = bestIDs[:0]
			for id := range bucket {
				bestIDs = append(bestIDs, id)
			}
		}
	}
	if bestFilter >= 0 {
		rest := make([]Filter, 0, len(q.Filters)-1)
		rest = append(rest, q.Filters[:bestFilter]...)
		rest = append(rest, q.Filters[bestFilter+1:]...)
		return bestIDs, rest
	}

	// Range filters on ordered-indexed fields.
	for i, f := range q.Filters {
		if f.Op != OpLt && f.Op != OpLte && f.Op != OpGt && f.Op != OpGte {
			continue
		}
		entries, ok := s.ordIdx[f.Field]
		if !ok {
			continue
		}
		pivot, ok := asFloat(f.Value)
		if !ok {
			continue
		}
		var ids []string
		switch f.Op {
		case OpLt:
			hi := sort.Search(len(entries), func(j int) bool { return entries[j].key >= pivot })
			for _, e := range entries[:hi] {
				ids = append(ids, e.id)
			}
		case OpLte:
			hi := sort.Search(len(entries), func(j int) bool { return entries[j].key > pivot })
			for _, e := range entries[:hi] {
				ids = append(ids, e.id)
			}
		case OpGt:
			lo := sort.Search(len(entries), func(j int) bool { return entries[j].key > pivot })
			for _, e := range entries[lo:] {
				ids = append(ids, e.id)
			}
		case OpGte:
			lo := sort.Search(len(entries), func(j int) bool { return entries[j].key >= pivot })
			for _, e := range entries[lo:] {
				ids = append(ids, e.id)
			}
		}
		rest := make([]Filter, 0, len(q.Filters)-1)
		rest = append(rest, q.Filters[:i]...)
		rest = append(rest, q.Filters[i+1:]...)
		return ids, rest
	}

	// Full shard scan.
	ids := make([]string, 0, len(s.docs))
	for id := range s.docs {
		ids = append(ids, id)
	}
	return ids, q.Filters
}

// indexDocLocked adds the document to every index fragment covering its
// fields. Caller holds the shard's write lock.
// lint:holds s.mu
func (s *shard) indexDocLocked(collection string, d *Doc) error {
	for field, idx := range s.hashIdx {
		v, ok := d.F[field]
		if !ok {
			continue
		}
		key, err := indexKey(v)
		if err != nil {
			return fmt.Errorf("docstore: indexing %s.%s: %w", collection, field, err)
		}
		addToHash(idx, key, d.ID)
	}
	for field := range s.ordIdx {
		v, ok := d.F[field]
		if !ok {
			continue
		}
		f, ok := asFloat(v)
		if !ok {
			return fmt.Errorf("docstore: ordered index %s.%s: non-numeric value %T", collection, field, v)
		}
		entries := s.ordIdx[field]
		at := sort.Search(len(entries), func(j int) bool { return entries[j].key >= f })
		entries = append(entries, ordEntry{})
		copy(entries[at+1:], entries[at:])
		entries[at] = ordEntry{key: f, id: d.ID}
		s.ordIdx[field] = entries
	}
	return nil
}

// unindexDocLocked removes the document from every index fragment. Caller
// holds the shard's write lock.
// lint:holds s.mu
func (s *shard) unindexDocLocked(d *Doc) {
	for field, idx := range s.hashIdx {
		v, ok := d.F[field]
		if !ok {
			continue
		}
		key, err := indexKey(v)
		if err != nil {
			continue
		}
		if bucket, ok := idx[key]; ok {
			delete(bucket, d.ID)
			if len(bucket) == 0 {
				delete(idx, key)
			}
		}
	}
	for field, entries := range s.ordIdx {
		v, ok := d.F[field]
		if !ok {
			continue
		}
		f, ok := asFloat(v)
		if !ok {
			continue
		}
		lo := sort.Search(len(entries), func(j int) bool { return entries[j].key >= f })
		for i := lo; i < len(entries) && entries[i].key == f; i++ {
			if entries[i].id == d.ID {
				s.ordIdx[field] = append(entries[:i], entries[i+1:]...)
				break
			}
		}
	}
}

func addToHash(idx map[string]map[string]struct{}, key, id string) {
	bucket, ok := idx[key]
	if !ok {
		bucket = make(map[string]struct{})
		idx[key] = bucket
	}
	bucket[id] = struct{}{}
}

func sortOrd(entries []ordEntry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		return entries[i].id < entries[j].id
	})
}
