package docstore

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Collection is a concurrently accessible set of documents with optional
// secondary indexes. All exported methods are safe for parallel use.
type Collection struct {
	mu      sync.RWMutex
	name    string
	docs    map[string]*Doc
	nextID  uint64
	hashIdx map[string]map[string]map[string]struct{} // field → key → id set
	ordIdx  map[string][]ordEntry                     // field → sorted entries
}

type ordEntry struct {
	key float64
	id  string
}

func newCollection(name string) *Collection {
	return &Collection{
		name:    name,
		docs:    make(map[string]*Doc),
		hashIdx: make(map[string]map[string]map[string]struct{}),
		ordIdx:  make(map[string][]ordEntry),
	}
}

// Name returns the collection's name.
func (c *Collection) Name() string { return c.name }

// Count returns the number of stored documents.
func (c *Collection) Count() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// CreateHashIndex builds an equality index over field, indexing existing
// documents. Indexing a field twice is a no-op.
func (c *Collection) CreateHashIndex(field string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.hashIdx[field]; ok {
		return nil
	}
	idx := make(map[string]map[string]struct{})
	for id, d := range c.docs {
		if v, ok := d.F[field]; ok {
			key, err := indexKey(v)
			if err != nil {
				return fmt.Errorf("docstore: indexing %s.%s: %w", c.name, field, err)
			}
			addToHash(idx, key, id)
		}
	}
	c.hashIdx[field] = idx
	return nil
}

// CreateOrderedIndex builds a range index over a numeric field.
func (c *Collection) CreateOrderedIndex(field string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.ordIdx[field]; ok {
		return nil
	}
	var entries []ordEntry
	for id, d := range c.docs {
		if v, ok := d.F[field]; ok {
			f, ok := asFloat(v)
			if !ok {
				return fmt.Errorf("docstore: ordered index %s.%s: non-numeric value %T", c.name, field, v)
			}
			entries = append(entries, ordEntry{key: f, id: id})
		}
	}
	sortOrd(entries)
	c.ordIdx[field] = entries
	return nil
}

// Indexes lists indexed fields (hash and ordered).
func (c *Collection) Indexes() (hash, ordered []string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for f := range c.hashIdx {
		hash = append(hash, f)
	}
	for f := range c.ordIdx {
		ordered = append(ordered, f)
	}
	sort.Strings(hash)
	sort.Strings(ordered)
	return
}

// Insert stores a document. If id is empty a sequential one is assigned.
// It returns the document's ID, or an error if the ID already exists or a
// field type is unsupported.
func (c *Collection) Insert(id string, f Fields) (string, error) {
	nf, err := normalizeFields(f)
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if id == "" {
		c.nextID++
		id = fmt.Sprintf("%s-%08d", c.name, c.nextID)
	}
	if _, exists := c.docs[id]; exists {
		return "", fmt.Errorf("docstore: duplicate id %q in collection %q", id, c.name)
	}
	d := &Doc{ID: id, F: nf}
	c.docs[id] = d
	if err := c.indexDocLocked(d); err != nil {
		delete(c.docs, id)
		return "", err
	}
	return id, nil
}

// InsertMany stores a batch of documents under generated IDs, returning
// them in order. It acquires the write lock once for the whole batch,
// which is the paper's "parallel writes during the data update phase"
// fast path for bulk label ingestion.
func (c *Collection) InsertMany(fs []Fields) ([]string, error) {
	norm := make([]Fields, len(fs))
	for i, f := range fs {
		nf, err := normalizeFields(f)
		if err != nil {
			return nil, fmt.Errorf("docstore: batch item %d: %w", i, err)
		}
		norm[i] = nf
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, len(norm))
	for i, nf := range norm {
		c.nextID++
		id := fmt.Sprintf("%s-%08d", c.name, c.nextID)
		d := &Doc{ID: id, F: nf}
		c.docs[id] = d
		if err := c.indexDocLocked(d); err != nil {
			// Roll back this batch item and stop; earlier items remain.
			delete(c.docs, id)
			return ids[:i], err
		}
		ids[i] = id
	}
	return ids, nil
}

// Get returns a copy of the document with the given ID.
func (c *Collection) Get(id string) (*Doc, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[id]
	if !ok {
		return nil, fmt.Errorf("docstore: id %q not found in collection %q", id, c.name)
	}
	return &Doc{ID: d.ID, F: cloneFields(d.F)}, nil
}

// GetMany returns copies of the documents with the given IDs, in order.
// Missing IDs produce an error naming the first absent one.
func (c *Collection) GetMany(ids []string) ([]*Doc, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Doc, len(ids))
	for i, id := range ids {
		d, ok := c.docs[id]
		if !ok {
			return nil, fmt.Errorf("docstore: id %q not found in collection %q", id, c.name)
		}
		out[i] = &Doc{ID: d.ID, F: cloneFields(d.F)}
	}
	return out, nil
}

// Update merges fields into an existing document (set semantics), updating
// any affected indexes.
func (c *Collection) Update(id string, f Fields) error {
	nf, err := normalizeFields(f)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.docs[id]
	if !ok {
		return fmt.Errorf("docstore: id %q not found in collection %q", id, c.name)
	}
	c.unindexDocLocked(d)
	for k, v := range nf {
		d.F[k] = v
	}
	return c.indexDocLocked(d)
}

// Delete removes a document.
func (c *Collection) Delete(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.docs[id]
	if !ok {
		return fmt.Errorf("docstore: id %q not found in collection %q", id, c.name)
	}
	c.unindexDocLocked(d)
	delete(c.docs, id)
	return nil
}

// Find returns copies of documents matching the query, using indexes when
// the query's filters allow it. With Query.Project set, returned documents
// carry only the projected fields.
func (c *Collection) Find(q Query) ([]*Doc, error) {
	ids, err := c.FindIDs(q)
	if err != nil {
		return nil, err
	}
	if len(q.Project) == 0 {
		return c.GetMany(ids)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Doc, len(ids))
	for i, id := range ids {
		d, ok := c.docs[id]
		if !ok {
			return nil, fmt.Errorf("docstore: id %q not found in collection %q", id, c.name)
		}
		f := make(Fields, len(q.Project))
		for _, field := range q.Project {
			if v, ok := d.F[field]; ok {
				f[field] = v
			}
		}
		out[i] = &Doc{ID: d.ID, F: f}
	}
	return out, nil
}

// FindIDs returns the IDs of matching documents in deterministic order.
func (c *Collection) FindIDs(q Query) ([]string, error) {
	c.mu.RLock()
	candidates, rest := c.candidateIDsLocked(q)
	var matched []string
	for _, id := range candidates {
		d := c.docs[id]
		if d == nil {
			continue
		}
		ok := true
		for _, f := range rest {
			if !f.matches(d) {
				ok = false
				break
			}
		}
		if ok {
			matched = append(matched, id)
		}
	}
	// Ordering: by sort field if given, else by ID.
	if q.SortBy != "" {
		docs := c.docs
		sort.SliceStable(matched, func(i, j int) bool {
			vi, vj := docs[matched[i]].F[q.SortBy], docs[matched[j]].F[q.SortBy]
			cmp, ok := compareValues(vi, vj)
			if !ok {
				return matched[i] < matched[j]
			}
			if q.Desc {
				return cmp > 0
			}
			return cmp < 0
		})
	} else {
		sortIDs(matched)
		if q.Desc {
			for i, j := 0, len(matched)-1; i < j; i, j = i+1, j-1 {
				matched[i], matched[j] = matched[j], matched[i]
			}
		}
	}
	c.mu.RUnlock()

	if q.Offset > 0 {
		if q.Offset >= len(matched) {
			return nil, nil
		}
		matched = matched[q.Offset:]
	}
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
	}
	return matched, nil
}

// CountWhere returns how many documents match the query.
func (c *Collection) CountWhere(q Query) (int, error) {
	q.Limit = 0
	q.Offset = 0
	ids, err := c.FindIDs(q)
	return len(ids), err
}

// SampleIDs returns up to n document IDs drawn uniformly without
// replacement from documents matching the query, using the given seed.
// fairDS uses this to draw labeled historical samples per cluster
// according to the input dataset's PDF.
func (c *Collection) SampleIDs(q Query, n int, seed int64) ([]string, error) {
	ids, err := c.FindIDs(q)
	if err != nil {
		return nil, err
	}
	if n >= len(ids) {
		return ids, nil
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	out := ids[:n]
	sortIDs(out)
	return out, nil
}

// AllIDs returns every document ID in sorted order.
func (c *Collection) AllIDs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]string, 0, len(c.docs))
	for id := range c.docs {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

// candidateIDsLocked picks the cheapest access path for the query: the
// smallest matching hash-index bucket, an ordered-index range scan, or a
// full collection scan. It returns candidate IDs plus the filters that
// still need evaluation. Caller holds at least the read lock.
func (c *Collection) candidateIDsLocked(q Query) ([]string, []Filter) {
	bestSize := -1
	bestFilter := -1
	var bestIDs []string

	// Equality filters on hash-indexed fields.
	for i, f := range q.Filters {
		if f.Op != OpEq {
			continue
		}
		idx, ok := c.hashIdx[f.Field]
		if !ok {
			continue
		}
		key, err := indexKey(f.Value)
		if err != nil {
			continue
		}
		bucket := idx[key]
		if bestSize < 0 || len(bucket) < bestSize {
			bestSize = len(bucket)
			bestFilter = i
			bestIDs = bestIDs[:0]
			for id := range bucket {
				bestIDs = append(bestIDs, id)
			}
		}
	}
	if bestFilter >= 0 {
		rest := make([]Filter, 0, len(q.Filters)-1)
		rest = append(rest, q.Filters[:bestFilter]...)
		rest = append(rest, q.Filters[bestFilter+1:]...)
		return bestIDs, rest
	}

	// Range filters on ordered-indexed fields.
	for i, f := range q.Filters {
		if f.Op != OpLt && f.Op != OpLte && f.Op != OpGt && f.Op != OpGte {
			continue
		}
		entries, ok := c.ordIdx[f.Field]
		if !ok {
			continue
		}
		pivot, ok := asFloat(f.Value)
		if !ok {
			continue
		}
		var ids []string
		switch f.Op {
		case OpLt:
			hi := sort.Search(len(entries), func(j int) bool { return entries[j].key >= pivot })
			for _, e := range entries[:hi] {
				ids = append(ids, e.id)
			}
		case OpLte:
			hi := sort.Search(len(entries), func(j int) bool { return entries[j].key > pivot })
			for _, e := range entries[:hi] {
				ids = append(ids, e.id)
			}
		case OpGt:
			lo := sort.Search(len(entries), func(j int) bool { return entries[j].key > pivot })
			for _, e := range entries[lo:] {
				ids = append(ids, e.id)
			}
		case OpGte:
			lo := sort.Search(len(entries), func(j int) bool { return entries[j].key >= pivot })
			for _, e := range entries[lo:] {
				ids = append(ids, e.id)
			}
		}
		rest := make([]Filter, 0, len(q.Filters)-1)
		rest = append(rest, q.Filters[:i]...)
		rest = append(rest, q.Filters[i+1:]...)
		return ids, rest
	}

	// Full scan.
	ids := make([]string, 0, len(c.docs))
	for id := range c.docs {
		ids = append(ids, id)
	}
	return ids, q.Filters
}

// indexDocLocked adds the document to every index covering its fields.
func (c *Collection) indexDocLocked(d *Doc) error {
	for field, idx := range c.hashIdx {
		v, ok := d.F[field]
		if !ok {
			continue
		}
		key, err := indexKey(v)
		if err != nil {
			return fmt.Errorf("docstore: indexing %s.%s: %w", c.name, field, err)
		}
		addToHash(idx, key, d.ID)
	}
	for field := range c.ordIdx {
		v, ok := d.F[field]
		if !ok {
			continue
		}
		f, ok := asFloat(v)
		if !ok {
			return fmt.Errorf("docstore: ordered index %s.%s: non-numeric value %T", c.name, field, v)
		}
		entries := c.ordIdx[field]
		at := sort.Search(len(entries), func(j int) bool { return entries[j].key >= f })
		entries = append(entries, ordEntry{})
		copy(entries[at+1:], entries[at:])
		entries[at] = ordEntry{key: f, id: d.ID}
		c.ordIdx[field] = entries
	}
	return nil
}

// unindexDocLocked removes the document from every index.
func (c *Collection) unindexDocLocked(d *Doc) {
	for field, idx := range c.hashIdx {
		v, ok := d.F[field]
		if !ok {
			continue
		}
		key, err := indexKey(v)
		if err != nil {
			continue
		}
		if bucket, ok := idx[key]; ok {
			delete(bucket, d.ID)
			if len(bucket) == 0 {
				delete(idx, key)
			}
		}
	}
	for field, entries := range c.ordIdx {
		v, ok := d.F[field]
		if !ok {
			continue
		}
		f, ok := asFloat(v)
		if !ok {
			continue
		}
		lo := sort.Search(len(entries), func(j int) bool { return entries[j].key >= f })
		for i := lo; i < len(entries) && entries[i].key == f; i++ {
			if entries[i].id == d.ID {
				c.ordIdx[field] = append(entries[:i], entries[i+1:]...)
				break
			}
		}
	}
}

func addToHash(idx map[string]map[string]struct{}, key, id string) {
	bucket, ok := idx[key]
	if !ok {
		bucket = make(map[string]struct{})
		idx[key] = bucket
	}
	bucket[id] = struct{}{}
}

func sortOrd(entries []ordEntry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		return entries[i].id < entries[j].id
	})
}
