package docstore

import (
	"fmt"
	"sort"
)

// TxnKind discriminates the operations a transaction can carry.
type TxnKind uint8

const (
	// TxnAdd inserts a new document (ID assigned when empty).
	TxnAdd TxnKind = iota + 1
	// TxnUpdate merges fields into an existing document.
	TxnUpdate
	// TxnDelete removes an existing document.
	TxnDelete

	// Metadata kinds below only ever appear inside WAL commit records
	// (so index creation and collection drops replay after a crash);
	// ApplyTxn rejects them, keeping the public transaction surface to
	// the three document ops above.
	txnCreateHashIndex
	txnCreateOrderedIndex
	txnDropCollection
)

// TxnOp is one operation of a transaction. For TxnAdd an empty ID asks
// the collection to assign a sequential one; TxnUpdate and TxnDelete
// require the ID. F is ignored for TxnDelete.
type TxnOp struct {
	Kind TxnKind
	ID   string
	F    Fields
}

// walCommit is the payload of one WAL record: a whole transaction
// against one collection, with IDs assigned and fields normalized.
// NextID is the collection's ID-sequence watermark after assignment, so
// replay never re-issues an ID a committed transaction consumed.
type walCommit struct {
	Collection string
	NextID     uint64
	Ops        []TxnOp
}

// commitLogger is the durability hook a DurableStore installs on every
// collection. logTxn must make rec durable (per the fsync policy) before
// returning; the returned release func must be called after the ops are
// applied to memory — it closes the window during which a checkpoint
// must not cut the log.
type commitLogger interface {
	logTxn(rec *walCommit) (release func(), err error)
}

// Txn batches Add/Update/Delete operations for one all-or-nothing
// commit. A Txn is not safe for concurrent use; build it on one
// goroutine and Commit once. Nothing is visible — or written to the WAL
// — until Commit.
type Txn struct {
	c   *Collection
	ops []TxnOp
}

// NewTxn starts an empty transaction against the collection.
func (c *Collection) NewTxn() *Txn { return &Txn{c: c} }

// Add queues an insert. An empty id gets a sequential one at commit.
func (t *Txn) Add(id string, f Fields) *Txn {
	t.ops = append(t.ops, TxnOp{Kind: TxnAdd, ID: id, F: f})
	return t
}

// Update queues a field merge into an existing document.
func (t *Txn) Update(id string, f Fields) *Txn {
	t.ops = append(t.ops, TxnOp{Kind: TxnUpdate, ID: id, F: f})
	return t
}

// Delete queues a document removal.
func (t *Txn) Delete(id string) *Txn {
	t.ops = append(t.ops, TxnOp{Kind: TxnDelete, ID: id})
	return t
}

// Len reports the number of queued operations.
func (t *Txn) Len() int { return len(t.ops) }

// Commit applies every queued operation atomically and returns the
// document ID each operation targeted (assigned IDs included), aligned
// with the queue order. On success the queue is cleared so the Txn can
// be reused; on error nothing was applied and the queue is kept for
// inspection or retry.
func (t *Txn) Commit() ([]string, error) {
	ids, err := t.c.ApplyTxn(t.ops)
	if err != nil {
		return nil, err
	}
	t.ops = nil
	return ids, nil
}

// ApplyTxn commits ops as one all-or-nothing transaction: either every
// operation applies and the whole batch is one durable WAL commit
// record, or none apply and the error names the first offending
// operation. Within the batch later operations see earlier ones (an Add
// followed by an Update of the same ID is legal). All shards the batch
// touches stay write-locked from validation through apply, so no reader
// or ReadTxn ever observes a partial transaction. Returns the target
// document ID of each op, aligned with ops.
//
// lint:holds c.shardFor(id).mu s.mu
// (every touched shard is write-locked by lockShards before any docs
// access; the analyzer cannot see through the helper.)
func (c *Collection) ApplyTxn(ops []TxnOp) ([]string, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	// Stage: normalize fields, assign IDs, and reject unknown kinds
	// before taking any lock.
	staged := make([]TxnOp, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case TxnAdd:
			nf, err := normalizeFields(op.F)
			if err != nil {
				return nil, fmt.Errorf("docstore: txn op %d: %w", i, err)
			}
			id := op.ID
			if id == "" {
				id = c.genID()
			}
			staged[i] = TxnOp{Kind: TxnAdd, ID: id, F: nf}
		case TxnUpdate:
			if op.ID == "" {
				return nil, fmt.Errorf("docstore: txn op %d: update needs an id", i)
			}
			nf, err := normalizeFields(op.F)
			if err != nil {
				return nil, fmt.Errorf("docstore: txn op %d: %w", i, err)
			}
			staged[i] = TxnOp{Kind: TxnUpdate, ID: op.ID, F: nf}
		case TxnDelete:
			if op.ID == "" {
				return nil, fmt.Errorf("docstore: txn op %d: delete needs an id", i)
			}
			staged[i] = TxnOp{Kind: TxnDelete, ID: op.ID}
		default:
			return nil, fmt.Errorf("docstore: txn op %d: unknown kind %d", i, op.Kind)
		}
	}

	// Write-lock every touched shard in ascending stripe order (the
	// same order every multi-shard path uses, so lock cycles cannot
	// form) and hold them through WAL append and apply.
	unlock := c.lockShards(staged)
	defer unlock()

	// Validate against the locked shards with a transaction-local
	// overlay, building each document's final state as we go. pending
	// with a nil doc is a tombstone.
	type pending struct{ d *Doc }
	over := make(map[string]*pending, len(staged))
	lookup := func(id string) (*Doc, bool) {
		if p, ok := over[id]; ok {
			return p.d, p.d != nil
		}
		d, ok := c.shardFor(id).docs[id]
		return d, ok
	}
	for i, op := range staged {
		switch op.Kind {
		case TxnAdd:
			if _, exists := lookup(op.ID); exists {
				return nil, fmt.Errorf("docstore: txn op %d: duplicate id %q in collection %q", i, op.ID, c.name)
			}
			d := &Doc{ID: op.ID, F: op.F}
			if err := c.shardFor(op.ID).checkIndexableLocked(c.name, d); err != nil {
				return nil, fmt.Errorf("docstore: txn op %d: %w", i, err)
			}
			over[op.ID] = &pending{d: d}
		case TxnUpdate:
			cur, ok := lookup(op.ID)
			if !ok {
				return nil, fmt.Errorf("docstore: txn op %d: id %q not found in collection %q", i, op.ID, c.name)
			}
			f := cloneFields(cur.F)
			for k, v := range op.F {
				f[k] = v
			}
			d := &Doc{ID: op.ID, F: f}
			if err := c.shardFor(op.ID).checkIndexableLocked(c.name, d); err != nil {
				return nil, fmt.Errorf("docstore: txn op %d: %w", i, err)
			}
			over[op.ID] = &pending{d: d}
		case TxnDelete:
			if _, ok := lookup(op.ID); !ok {
				return nil, fmt.Errorf("docstore: txn op %d: id %q not found in collection %q", i, op.ID, c.name)
			}
			over[op.ID] = &pending{}
		}
	}

	// Durability point: one WAL commit record for the whole batch. The
	// release callback ends the checkpoint-exclusion window after the
	// in-memory apply below.
	if c.logger != nil {
		rec := walCommit{Collection: c.name, NextID: c.nextID.Load(), Ops: staged}
		release, err := c.logger.logTxn(&rec)
		if err != nil {
			return nil, err
		}
		defer release()
	}

	// Apply the final overlay states. Validation above checked exactly
	// the conditions under which indexing can fail, and the shards have
	// stayed locked since, so this cannot error.
	for id, p := range over {
		s := c.shardFor(id)
		if old, ok := s.docs[id]; ok {
			s.unindexDocLocked(old)
			delete(s.docs, id)
		}
		if p.d != nil {
			s.docs[id] = p.d
			if err := s.indexDocLocked(c.name, p.d); err != nil {
				return nil, fmt.Errorf("docstore: txn apply (unreachable after validation): %w", err)
			}
		}
	}

	ids := make([]string, len(staged))
	for i, op := range staged {
		ids[i] = op.ID
	}
	return ids, nil
}

// lockShards write-locks the distinct shards the staged ops touch, in
// ascending stripe order, and returns the matching unlock.
func (c *Collection) lockShards(staged []TxnOp) (unlock func()) {
	seen := make(map[int]struct{}, len(staged))
	idxs := make([]int, 0, len(staged))
	for _, op := range staged {
		i := c.shardIndexFor(op.ID)
		if _, ok := seen[i]; !ok {
			seen[i] = struct{}{}
			idxs = append(idxs, i)
		}
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		c.shards[i].mu.Lock()
	}
	return func() {
		for j := len(idxs) - 1; j >= 0; j-- {
			c.shards[idxs[j]].mu.Unlock()
		}
	}
}

// checkIndexableLocked verifies the document can enter every index
// fragment of its shard — the exact failure conditions of
// indexDocLocked, checked before any state changes. Caller holds the
// shard's write lock.
// lint:holds s.mu
func (s *shard) checkIndexableLocked(collection string, d *Doc) error {
	for field := range s.hashIdx {
		v, ok := d.F[field]
		if !ok {
			continue
		}
		if _, err := indexKey(v); err != nil {
			return fmt.Errorf("docstore: indexing %s.%s: %w", collection, field, err)
		}
	}
	for field := range s.ordIdx {
		v, ok := d.F[field]
		if !ok {
			continue
		}
		if _, ok := asFloat(v); !ok {
			return fmt.Errorf("docstore: ordered index %s.%s: non-numeric value %T", collection, field, v)
		}
	}
	return nil
}

// ReadTxn is a consistent point-in-time view of a collection: the
// document set as of NewReadTxn, unaffected by writers committing
// afterwards. Because every write path replaces documents copy-on-write
// and multi-op transactions hold all their shard locks through apply, a
// ReadTxn never sees half a transaction. It holds no locks after
// construction, so writers proceed while readers iterate.
type ReadTxn struct {
	name string
	docs map[string]*Doc
}

// NewReadTxn captures a consistent snapshot of the collection. The
// capture briefly read-locks every shard simultaneously (in stripe
// order) and clones only the ID → document map, not the documents.
func (c *Collection) NewReadTxn() *ReadTxn {
	for _, s := range c.shards {
		s.mu.RLock()
	}
	total := 0
	for _, s := range c.shards {
		total += len(s.docs)
	}
	docs := make(map[string]*Doc, total)
	for _, s := range c.shards {
		for id, d := range s.docs {
			docs[id] = d
		}
	}
	for i := len(c.shards) - 1; i >= 0; i-- {
		c.shards[i].mu.RUnlock()
	}
	return &ReadTxn{name: c.name, docs: docs}
}

// Count reports the snapshot's document count.
func (r *ReadTxn) Count() int { return len(r.docs) }

// Get returns a copy of the snapshot's document with the given ID.
func (r *ReadTxn) Get(id string) (*Doc, error) {
	d, ok := r.docs[id]
	if !ok {
		return nil, fmt.Errorf("docstore: id %q not found in collection %q", id, r.name)
	}
	return &Doc{ID: d.ID, F: cloneFields(d.F)}, nil
}

// GetMany returns copies of the snapshot's documents, in order, erroring
// on the first missing ID.
func (r *ReadTxn) GetMany(ids []string) ([]*Doc, error) {
	out := make([]*Doc, len(ids))
	for i, id := range ids {
		d, ok := r.docs[id]
		if !ok {
			return nil, fmt.Errorf("docstore: id %q not found in collection %q", id, r.name)
		}
		out[i] = &Doc{ID: d.ID, F: cloneFields(d.F)}
	}
	return out, nil
}

// AllIDs returns every snapshot document ID in sorted order.
func (r *ReadTxn) AllIDs() []string {
	ids := make([]string, 0, len(r.docs))
	for id := range r.docs {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

// FindIDs evaluates the query against the snapshot by full scan (no
// index acceleration — indexes move on with the live collection) with
// the same ordering, pagination, and determinism as Collection.FindIDs.
func (r *ReadTxn) FindIDs(q Query) ([]string, error) {
	var matched []string
	var keys []any
	for id, d := range r.docs {
		ok := true
		for _, f := range q.Filters {
			if !f.matches(d) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		matched = append(matched, id)
		if q.SortBy != "" {
			keys = append(keys, d.F[q.SortBy])
		}
	}
	if q.SortBy == "" {
		sortIDs(matched)
		if q.Desc {
			for i, j := 0, len(matched)-1; i < j; i, j = i+1, j-1 {
				matched[i], matched[j] = matched[j], matched[i]
			}
		}
	} else {
		sort.Sort(&sortByKey{ids: matched, keys: keys, desc: q.Desc})
	}
	if q.Offset > 0 {
		if q.Offset >= len(matched) {
			return nil, nil
		}
		matched = matched[q.Offset:]
	}
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
	}
	return matched, nil
}

// Find returns copies of snapshot documents matching the query,
// honoring Query.Project.
func (r *ReadTxn) Find(q Query) ([]*Doc, error) {
	ids, err := r.FindIDs(q)
	if err != nil {
		return nil, err
	}
	out := make([]*Doc, len(ids))
	for i, id := range ids {
		d := r.docs[id]
		if len(q.Project) == 0 {
			out[i] = &Doc{ID: d.ID, F: cloneFields(d.F)}
			continue
		}
		f := make(Fields, len(q.Project))
		for _, field := range q.Project {
			if v, ok := d.F[field]; ok {
				f[field] = v
			}
		}
		out[i] = &Doc{ID: d.ID, F: f}
	}
	return out, nil
}
