package docstore

// Op is a filter comparison operator.
type Op uint8

// Supported filter operators.
const (
	OpEq  Op = iota + 1 // field == value
	OpNe                // field != value
	OpLt                // field < value
	OpLte               // field <= value
	OpGt                // field > value
	OpGte               // field >= value
	OpIn                // field ∈ values
)

// Filter is one predicate on a document field.
type Filter struct {
	Field  string
	Op     Op
	Value  any
	Values []any // for OpIn
}

// Query is a conjunction of filters with optional ordering, limits, and
// field projection.
type Query struct {
	Filters []Filter
	SortBy  string // field to order by ("" = order by ID)
	Desc    bool
	Limit   int // 0 = unlimited
	Offset  int
	// Project restricts returned documents to these fields (IDs are always
	// included). Empty means all fields. Projection reduces copy and wire
	// cost for scans that only need an index-like field (e.g. embeddings).
	Project []string
}

// Eq builds an equality filter.
func Eq(field string, value any) Filter { return Filter{Field: field, Op: OpEq, Value: value} }

// Ne builds an inequality filter.
func Ne(field string, value any) Filter { return Filter{Field: field, Op: OpNe, Value: value} }

// Lt builds a less-than filter.
func Lt(field string, value any) Filter { return Filter{Field: field, Op: OpLt, Value: value} }

// Lte builds a less-than-or-equal filter.
func Lte(field string, value any) Filter { return Filter{Field: field, Op: OpLte, Value: value} }

// Gt builds a greater-than filter.
func Gt(field string, value any) Filter { return Filter{Field: field, Op: OpGt, Value: value} }

// Gte builds a greater-than-or-equal filter.
func Gte(field string, value any) Filter { return Filter{Field: field, Op: OpGte, Value: value} }

// In builds a membership filter.
func In(field string, values ...any) Filter {
	return Filter{Field: field, Op: OpIn, Values: values}
}

// matches evaluates the filter against a document.
func (f Filter) matches(d *Doc) bool {
	v, ok := d.F[f.Field]
	if !ok {
		return false
	}
	switch f.Op {
	case OpEq:
		return valuesEqual(v, f.Value)
	case OpNe:
		return !valuesEqual(v, f.Value)
	case OpIn:
		for _, want := range f.Values {
			if valuesEqual(v, want) {
				return true
			}
		}
		return false
	case OpLt, OpLte, OpGt, OpGte:
		c, ok := compareValues(v, f.Value)
		if !ok {
			return false
		}
		switch f.Op {
		case OpLt:
			return c < 0
		case OpLte:
			return c <= 0
		case OpGt:
			return c > 0
		case OpGte:
			return c >= 0
		}
	}
	return false
}
