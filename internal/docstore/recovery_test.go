package docstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fairdms/internal/fsx"
	"fairdms/internal/wal"
)

// crashTxn applies the i-th workload transaction to c. Every txn touches
// two documents plus (past the first) an update of the previous txn's
// doc, so a partially applied txn is detectable from the recovered state.
func crashTxn(c *Collection, i int) error {
	txn := c.NewTxn().
		Add(fmt.Sprintf("t%02d-a", i), Fields{"n": i}).
		Add(fmt.Sprintf("t%02d-b", i), Fields{"n": i})
	if i > 0 {
		txn.Update(fmt.Sprintf("t%02d-a", i-1), Fields{"bumped": i})
	}
	_, err := txn.Commit()
	return err
}

// crashModel returns the expected document state after the first k
// workload transactions.
func crashModel(k int) map[string]Fields {
	m := make(map[string]Fields)
	for i := 0; i < k; i++ {
		m[fmt.Sprintf("t%02d-a", i)] = Fields{"n": int64(i)}
		m[fmt.Sprintf("t%02d-b", i)] = Fields{"n": int64(i)}
		if i > 0 {
			m[fmt.Sprintf("t%02d-a", i-1)]["bumped"] = int64(i)
		}
	}
	return m
}

// matchesModel reports whether c holds exactly the documents of model.
func matchesModel(c *Collection, model map[string]Fields) error {
	if c.Count() != len(model) {
		return fmt.Errorf("count = %d; model has %d", c.Count(), len(model))
	}
	for id, want := range model {
		d, err := c.Get(id)
		if err != nil {
			return fmt.Errorf("doc %s missing: %w", id, err)
		}
		if len(d.F) != len(want) {
			return fmt.Errorf("doc %s = %v; want %v", id, d.F, want)
		}
		for k, v := range want {
			if d.F[k] != v {
				return fmt.Errorf("doc %s field %s = %v; want %v", id, k, d.F[k], v)
			}
		}
	}
	return nil
}

// workloadBytes measures how many bytes the crash workload writes through
// the filesystem, so the sweep can place a crash at every offset.
func workloadBytes(t *testing.T, txns int) int64 {
	t.Helper()
	dir := t.TempDir()
	ds := openDurable(t, dir, DurableOptions{Policy: wal.SyncAlways, WalShards: 1})
	for i := 0; i < txns; i++ {
		if err := crashTxn(ds.Collection("peaks"), i); err != nil {
			t.Fatal(err)
		}
	}
	ds.Close()
	var total int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestCrashSweepCommittedSurviveUncommittedVanish is the core recovery
// guarantee: with fsync=always, for a crash injected at EVERY byte offset
// of the workload, every transaction that returned success is intact
// after reopen and no partial transaction ever applies. Both post-crash
// disk models are swept: process kill (torn tail survives) and power cut
// (unsynced bytes vanish).
func TestCrashSweepCommittedSurviveUncommittedVanish(t *testing.T) {
	const txns = 4
	total := workloadBytes(t, txns)
	step := int64(1)
	if testing.Short() {
		step = 17
	}
	for _, dropUnsynced := range []bool{false, true} {
		name := "process-kill"
		if dropUnsynced {
			name = "power-cut"
		}
		t.Run(name, func(t *testing.T) {
			for cut := int64(1); cut <= total; cut += step {
				dir := t.TempDir()
				ffs := fsx.NewFaultFS(fsx.FaultPlan{CrashAfterBytes: cut, DropUnsynced: dropUnsynced})
				ds, err := OpenDurable(DurableOptions{Dir: dir, Policy: wal.SyncAlways, WalShards: 1, FS: ffs})
				committed := 0
				if err == nil {
					for i := 0; i < txns; i++ {
						if err := crashTxn(ds.Collection("peaks"), i); err != nil {
							break
						}
						committed++
					}
					ds.Abort()
				} else if !errors.Is(err, fsx.ErrInjectedCrash) {
					t.Fatalf("cut %d: open failed with non-injected error: %v", cut, err)
				}
				if !ffs.Crashed() && committed < txns {
					t.Fatalf("cut %d: workload stopped early without a crash", cut)
				}

				// Recover on the real filesystem, as a restarted process would.
				rec, err := OpenDurable(DurableOptions{Dir: dir, Policy: wal.SyncAlways, WalShards: 1})
				if err != nil {
					t.Fatalf("cut %d: recovery open failed: %v", cut, err)
				}
				c := rec.Collection("peaks")
				// Committed txns must survive; the in-flight txn may have
				// fully reached disk before the crash (committed+1) under
				// the process-kill model, but under a power cut it was
				// never fsynced and must vanish.
				allowed := []int{committed}
				if !dropUnsynced && committed < txns {
					allowed = append(allowed, committed+1)
				}
				var match error
				for _, k := range allowed {
					if match = matchesModel(c, crashModel(k)); match == nil {
						break
					}
				}
				if match != nil {
					t.Fatalf("cut %d (%s, %d committed): recovered state matches no allowed prefix: %v",
						cut, name, committed, match)
				}
				rec.Close()
			}
		})
	}
}

// TestCrashSweepSyncOffStillPrefixConsistent: with fsync=off a power cut
// may lose committed transactions, but recovery must still land on a
// whole-transaction prefix — never a partial txn.
func TestCrashSweepSyncOffStillPrefixConsistent(t *testing.T) {
	const txns = 4
	total := workloadBytes(t, txns)
	step := int64(3)
	if testing.Short() {
		step = 29
	}
	for cut := int64(1); cut <= total; cut += step {
		dir := t.TempDir()
		ffs := fsx.NewFaultFS(fsx.FaultPlan{CrashAfterBytes: cut, DropUnsynced: true})
		ds, err := OpenDurable(DurableOptions{Dir: dir, Policy: wal.SyncOff, WalShards: 1, FS: ffs})
		committed := 0
		if err == nil {
			for i := 0; i < txns; i++ {
				if err := crashTxn(ds.Collection("peaks"), i); err != nil {
					break
				}
				committed++
			}
			ds.Abort()
		}

		rec, err := OpenDurable(DurableOptions{Dir: dir, Policy: wal.SyncOff, WalShards: 1})
		if err != nil {
			t.Fatalf("cut %d: recovery open failed: %v", cut, err)
		}
		c := rec.Collection("peaks")
		var match error
		for k := 0; k <= committed+1 && k <= txns; k++ {
			if match = matchesModel(c, crashModel(k)); match == nil {
				break
			}
		}
		if match != nil {
			t.Fatalf("cut %d: recovered state is not a whole-txn prefix (last mismatch: %v)", cut, match)
		}
		rec.Close()
	}
}

// TestCrashSweepPolicyFromEnv re-runs a coarse power-cut sweep under the
// fsync policy named by FAIRDMS_FSYNC — the CI recovery job's matrix
// axis; without the variable it covers all three policies. fsync=always
// must recover exactly the committed prefix; interval and off may lose a
// suffix of committed transactions but must still land on a whole-txn
// boundary.
func TestCrashSweepPolicyFromEnv(t *testing.T) {
	policies := []string{"always", "interval", "off"}
	if env := os.Getenv("FAIRDMS_FSYNC"); env != "" {
		policies = []string{env}
	}
	const txns = 4
	total := workloadBytes(t, txns)
	for _, name := range policies {
		t.Run(name, func(t *testing.T) {
			policy, err := wal.ParsePolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			for cut := int64(1); cut <= total; cut += 13 {
				dir := t.TempDir()
				ffs := fsx.NewFaultFS(fsx.FaultPlan{CrashAfterBytes: cut, DropUnsynced: true})
				ds, err := OpenDurable(DurableOptions{Dir: dir, Policy: policy, WalShards: 1, FS: ffs})
				committed := 0
				if err == nil {
					for i := 0; i < txns; i++ {
						if err := crashTxn(ds.Collection("peaks"), i); err != nil {
							break
						}
						committed++
					}
					ds.Abort()
				}

				rec, err := OpenDurable(DurableOptions{Dir: dir, WalShards: 1})
				if err != nil {
					t.Fatalf("cut %d: recovery open failed: %v", cut, err)
				}
				c := rec.Collection("peaks")
				lo := 0
				if policy == wal.SyncAlways {
					// A power cut drops every unsynced byte, and under
					// fsync=always the in-flight frame is never synced, so
					// recovery lands on exactly the committed prefix.
					lo = committed
				}
				var match error
				for k := lo; k <= committed+1 && k <= txns; k++ {
					if match = matchesModel(c, crashModel(k)); match == nil {
						break
					}
					if policy == wal.SyncAlways {
						break // exact match required
					}
				}
				if match != nil {
					t.Fatalf("cut %d (%s, %d committed): recovered state is not an allowed prefix: %v",
						cut, name, committed, match)
				}
				rec.Close()
			}
		})
	}
}

// TestCrashMultiShardTxnsStayAtomic: records striped over several WAL
// shards must still recover transaction-atomically — for every txn,
// either both of its documents are present or neither is.
func TestCrashMultiShardTxnsStayAtomic(t *testing.T) {
	const txns = 6
	for _, cut := range []int64{64, 200, 400, 700, 1000, 1500, 2200} {
		dir := t.TempDir()
		ffs := fsx.NewFaultFS(fsx.FaultPlan{CrashAfterBytes: cut, DropUnsynced: true})
		ds, err := OpenDurable(DurableOptions{Dir: dir, Policy: wal.SyncAlways, WalShards: 4, FS: ffs})
		if err != nil {
			continue // crashed inside Open; nothing to assert
		}
		c := ds.Collection("peaks")
		committed := 0
		for i := 0; i < txns; i++ {
			if _, err := c.NewTxn().
				Add(fmt.Sprintf("t%02d-a", i), Fields{"n": i}).
				Add(fmt.Sprintf("t%02d-b", i), Fields{"n": i}).
				Commit(); err != nil {
				break
			}
			committed++
		}
		ds.Abort()

		rec, err := OpenDurable(DurableOptions{Dir: dir, Policy: wal.SyncAlways, WalShards: 4})
		if err != nil {
			t.Fatalf("cut %d: recovery open failed: %v", cut, err)
		}
		rc := rec.Collection("peaks")
		for i := 0; i < txns; i++ {
			_, errA := rc.Get(fmt.Sprintf("t%02d-a", i))
			_, errB := rc.Get(fmt.Sprintf("t%02d-b", i))
			if (errA == nil) != (errB == nil) {
				t.Fatalf("cut %d: txn %d recovered partially (a=%v b=%v)", cut, i, errA, errB)
			}
			if i < committed && errA != nil {
				t.Fatalf("cut %d: committed txn %d lost under fsync=always", cut, i)
			}
		}
		rec.Close()
	}
}

// TestTornWriteMatrixAtStoreLevel truncates the WAL's final commit record
// at every byte offset, and separately flips every byte in it, asserting
// recovery stops at the last valid commit and counts the damage.
func TestTornWriteMatrixAtStoreLevel(t *testing.T) {
	const txns = 3
	build := func(t *testing.T) string {
		dir := t.TempDir()
		ds := openDurable(t, dir, DurableOptions{Policy: wal.SyncAlways, WalShards: 1})
		for i := 0; i < txns; i++ {
			if err := crashTxn(ds.Collection("peaks"), i); err != nil {
				t.Fatal(err)
			}
		}
		ds.Close()
		return dir
	}
	segPath := func(t *testing.T, dir string) string {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if filepath.Ext(e.Name()) == ".log" {
				return filepath.Join(dir, e.Name())
			}
		}
		t.Fatal("no WAL segment found")
		return ""
	}

	ref := build(t)
	full, err := os.ReadFile(segPath(t, ref))
	if err != nil {
		t.Fatal(err)
	}
	// Locate the final record's start by replaying sizes: record i's frame
	// is 16 bytes of header plus the length field's payload.
	offsets := []int{8} // segment header
	for off := 8; off < len(full); {
		payloadLen := int(uint32(full[off]) | uint32(full[off+1])<<8 | uint32(full[off+2])<<16 | uint32(full[off+3])<<24)
		off += 16 + payloadLen
		offsets = append(offsets, off)
	}
	lastStart := offsets[len(offsets)-2]

	t.Run("truncate", func(t *testing.T) {
		for cut := lastStart; cut < len(full); cut++ {
			dir := build(t)
			if err := os.WriteFile(segPath(t, dir), full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			rec, err := OpenDurable(DurableOptions{Dir: dir, WalShards: 1})
			if err != nil {
				t.Fatalf("cut %d: open: %v", cut, err)
			}
			if err := matchesModel(rec.Collection("peaks"), crashModel(txns-1)); err != nil {
				t.Fatalf("cut %d: recovery did not stop at the last valid commit: %v", cut, err)
			}
			st := rec.WalStats()
			if cut > lastStart && st.TornTruncations == 0 {
				t.Fatalf("cut %d: torn tail not counted in wal stats", cut)
			}
			rec.Close()
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		for pos := lastStart; pos < len(full); pos += 3 {
			dir := build(t)
			mut := append([]byte(nil), full...)
			mut[pos] ^= 0x01
			if err := os.WriteFile(segPath(t, dir), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			rec, err := OpenDurable(DurableOptions{Dir: dir, WalShards: 1})
			if err != nil {
				t.Fatalf("flip at %d: open: %v", pos, err)
			}
			if err := matchesModel(rec.Collection("peaks"), crashModel(txns-1)); err != nil {
				t.Fatalf("flip at %d: recovery did not stop at the last valid commit: %v", pos, err)
			}
			st := rec.WalStats()
			if st.TornTruncations+st.CorruptRecords == 0 {
				t.Fatalf("flip at %d: damage not counted (stats %+v)", pos, st)
			}
			rec.Close()
		}
	})
}

// TestCrashDuringCompactionKeepsData: a crash at any point inside Compact
// must never lose committed documents — either the old snapshot+log or
// the new snapshot recovers them.
func TestCrashDuringCompactionKeepsData(t *testing.T) {
	// Measure compaction's write volume first.
	probeDir := t.TempDir()
	probe := openDurable(t, probeDir, DurableOptions{Policy: wal.SyncAlways, WalShards: 1})
	for i := 0; i < 10; i++ {
		if _, err := probe.Collection("peaks").Insert(fmt.Sprintf("d%02d", i), Fields{"n": i}); err != nil {
			t.Fatal(err)
		}
	}
	preCompact := int64(0)
	if ents, err := os.ReadDir(probeDir); err == nil {
		for _, e := range ents {
			if fi, err := e.Info(); err == nil {
				preCompact += fi.Size()
			}
		}
	}
	if err := probe.Compact(); err != nil {
		t.Fatal(err)
	}
	postCompact := int64(0)
	if ents, err := os.ReadDir(probeDir); err == nil {
		for _, e := range ents {
			if fi, err := e.Info(); err == nil {
				postCompact += fi.Size()
			}
		}
	}
	probe.Close()

	span := postCompact + preCompact
	for cut := preCompact + 1; cut <= preCompact+span; cut += 41 {
		dir := t.TempDir()
		ffs := fsx.NewFaultFS(fsx.FaultPlan{CrashAfterBytes: cut, DropUnsynced: true})
		ds, err := OpenDurable(DurableOptions{Dir: dir, Policy: wal.SyncAlways, WalShards: 1, FS: ffs})
		if err != nil {
			continue
		}
		inserted := 0
		for i := 0; i < 10; i++ {
			if _, err := ds.Collection("peaks").Insert(fmt.Sprintf("d%02d", i), Fields{"n": i}); err != nil {
				break
			}
			inserted++
		}
		ds.Compact() // may fail mid-way from the injected crash; that's the point
		ds.Abort()

		rec, err := OpenDurable(DurableOptions{Dir: dir, WalShards: 1})
		if err != nil {
			t.Fatalf("cut %d: recovery after crashed compaction failed: %v", cut, err)
		}
		c := rec.Collection("peaks")
		for i := 0; i < inserted; i++ {
			if _, err := c.Get(fmt.Sprintf("d%02d", i)); err != nil {
				t.Fatalf("cut %d: committed doc d%02d lost across a crashed compaction", cut, i)
			}
		}
		rec.Close()
	}
}
