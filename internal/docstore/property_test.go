package docstore

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"fairdms/internal/wal"
)

// TestQuickRandomOpsKeepIndexesConsistent drives a collection through a
// random sequence of inserts, updates, and deletes and verifies that both
// index kinds agree with a brute-force replay on an unindexed collection.
func TestQuickRandomOpsKeepIndexesConsistent(t *testing.T) {
	f := func(ops []uint16) bool {
		indexed := NewStore().Collection("a")
		if err := indexed.CreateHashIndex("k"); err != nil {
			return false
		}
		if err := indexed.CreateOrderedIndex("t"); err != nil {
			return false
		}
		plain := NewStore().Collection("b")
		rng := rand.New(rand.NewSource(42))

		var ids []string
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // insert (weighted)
				k := int(op>>2) % 5
				ts := float64(op>>4) / 7
				id := fmt.Sprintf("d%04d", len(ids))
				if _, err := indexed.Insert(id, Fields{"k": k, "t": ts}); err != nil {
					return false
				}
				if _, err := plain.Insert(id, Fields{"k": k, "t": ts}); err != nil {
					return false
				}
				ids = append(ids, id)
			case 2: // update
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				nk := int(op>>2) % 5
				// Both may fail if the doc was deleted; outcomes must agree.
				e1 := indexed.Update(id, Fields{"k": nk})
				e2 := plain.Update(id, Fields{"k": nk})
				if (e1 == nil) != (e2 == nil) {
					return false
				}
			case 3: // delete
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				e1 := indexed.Delete(id)
				e2 := plain.Delete(id)
				if (e1 == nil) != (e2 == nil) {
					return false
				}
			}
		}

		// Every query must agree between the indexed and plain collections.
		for k := 0; k < 5; k++ {
			qi, err := indexed.FindIDs(Query{Filters: []Filter{Eq("k", k)}})
			if err != nil {
				return false
			}
			qp, err := plain.FindIDs(Query{Filters: []Filter{Eq("k", k)}})
			if err != nil {
				return false
			}
			if !equalIDs(qi, qp) {
				return false
			}
		}
		for _, pivot := range []float64{0.5, 2, 100} {
			qi, err := indexed.FindIDs(Query{Filters: []Filter{Lte("t", pivot)}})
			if err != nil {
				return false
			}
			qp, err := plain.FindIDs(Query{Filters: []Filter{Lte("t", pivot)}})
			if err != nil {
				return false
			}
			if !equalIDs(qi, qp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func equalIDs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQuickWALReplayMatchesModel drives a WAL-durable store through a
// random sequence of inserts, updates, deletes, and multi-op transactions
// with simulated crashes (Abort: the process dies without flushing) and
// reopens interleaved, and asserts after every reopen that the replayed
// store is byte-for-byte the in-memory model. With fsync=always a
// committed op can never be lost, so equality is exact.
func TestQuickWALReplayMatchesModel(t *testing.T) {
	f := func(ops []uint16) bool {
		dir := t.TempDir()
		ds, err := OpenDurable(DurableOptions{Dir: dir, Policy: wal.SyncAlways, WalShards: 2})
		if err != nil {
			t.Logf("open: %v", err)
			return false
		}
		defer func() { ds.Close() }()
		model := map[string]int64{} // id → n
		var ids []string
		rng := rand.New(rand.NewSource(7))

		check := func() bool {
			c := ds.Collection("a")
			if c.Count() != len(model) {
				t.Logf("count = %d; model has %d", c.Count(), len(model))
				return false
			}
			for id, n := range model {
				d, err := c.Get(id)
				if err != nil || d.F["n"] != n {
					t.Logf("doc %s = %v, %v; model wants n=%d", id, d, err, n)
					return false
				}
			}
			return true
		}

		for _, op := range ops {
			c := ds.Collection("a")
			switch op % 8 {
			case 0, 1, 2: // insert
				id := fmt.Sprintf("d%04d", len(ids))
				n := int64(op >> 3)
				if _, err := c.Insert(id, Fields{"n": n}); err != nil {
					t.Logf("insert: %v", err)
					return false
				}
				model[id] = n
				ids = append(ids, id)
			case 3: // update
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				n := int64(op >> 3)
				err := c.Update(id, Fields{"n": n})
				if _, live := model[id]; live != (err == nil) {
					t.Logf("update %s: err=%v but model live=%v", id, err, live)
					return false
				}
				if err == nil {
					model[id] = n
				}
			case 4: // delete
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				err := c.Delete(id)
				if _, live := model[id]; live != (err == nil) {
					t.Logf("delete %s: err=%v but model live=%v", id, err, live)
					return false
				}
				delete(model, id)
			case 5: // multi-op txn: two inserts and maybe a delete
				a := fmt.Sprintf("d%04d", len(ids))
				b := fmt.Sprintf("d%04d", len(ids)+1)
				n := int64(op >> 3)
				txn := c.NewTxn().Add(a, Fields{"n": n}).Add(b, Fields{"n": n + 1})
				victim := ""
				if len(ids) > 0 {
					id := ids[rng.Intn(len(ids))]
					if _, live := model[id]; live {
						txn.Delete(id)
						victim = id
					}
				}
				if _, err := txn.Commit(); err != nil {
					t.Logf("txn: %v", err)
					return false
				}
				model[a], model[b] = n, n+1
				ids = append(ids, a, b)
				if victim != "" {
					delete(model, victim)
				}
			case 6: // crash (no flush) and reopen: replay must equal model
				ds.Abort()
				ds, err = OpenDurable(DurableOptions{Dir: dir, Policy: wal.SyncAlways, WalShards: 2})
				if err != nil {
					t.Logf("reopen after abort: %v", err)
					return false
				}
				if !check() {
					return false
				}
			case 7: // compact, sometimes followed by a crash-reopen
				if err := ds.Compact(); err != nil {
					t.Logf("compact: %v", err)
					return false
				}
				if op>>3%2 == 0 {
					ds.Abort()
					ds, err = OpenDurable(DurableOptions{Dir: dir, Policy: wal.SyncAlways, WalShards: 2})
					if err != nil {
						t.Logf("reopen after compact: %v", err)
						return false
					}
				}
				if !check() {
					return false
				}
			}
		}
		return check()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSampleIsSubsetOfMatches: sampling never fabricates documents.
func TestQuickSampleIsSubsetOfMatches(t *testing.T) {
	c := NewStore().Collection("x")
	c.CreateHashIndex("k")
	for i := 0; i < 60; i++ {
		c.Insert("", Fields{"k": i % 3})
	}
	f := func(nSeed uint8, seed int64) bool {
		n := int(nSeed % 40)
		q := Query{Filters: []Filter{Eq("k", 1)}}
		sampled, err := c.SampleIDs(q, n, seed)
		if err != nil {
			return false
		}
		all, err := c.FindIDs(q)
		if err != nil {
			return false
		}
		universe := map[string]bool{}
		for _, id := range all {
			universe[id] = true
		}
		for _, id := range sampled {
			if !universe[id] {
				return false
			}
		}
		want := n
		if want > len(all) {
			want = len(all)
		}
		return len(sampled) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
