package docstore

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickRandomOpsKeepIndexesConsistent drives a collection through a
// random sequence of inserts, updates, and deletes and verifies that both
// index kinds agree with a brute-force replay on an unindexed collection.
func TestQuickRandomOpsKeepIndexesConsistent(t *testing.T) {
	f := func(ops []uint16) bool {
		indexed := NewStore().Collection("a")
		if err := indexed.CreateHashIndex("k"); err != nil {
			return false
		}
		if err := indexed.CreateOrderedIndex("t"); err != nil {
			return false
		}
		plain := NewStore().Collection("b")
		rng := rand.New(rand.NewSource(42))

		var ids []string
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // insert (weighted)
				k := int(op>>2) % 5
				ts := float64(op>>4) / 7
				id := fmt.Sprintf("d%04d", len(ids))
				if _, err := indexed.Insert(id, Fields{"k": k, "t": ts}); err != nil {
					return false
				}
				if _, err := plain.Insert(id, Fields{"k": k, "t": ts}); err != nil {
					return false
				}
				ids = append(ids, id)
			case 2: // update
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				nk := int(op>>2) % 5
				// Both may fail if the doc was deleted; outcomes must agree.
				e1 := indexed.Update(id, Fields{"k": nk})
				e2 := plain.Update(id, Fields{"k": nk})
				if (e1 == nil) != (e2 == nil) {
					return false
				}
			case 3: // delete
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				e1 := indexed.Delete(id)
				e2 := plain.Delete(id)
				if (e1 == nil) != (e2 == nil) {
					return false
				}
			}
		}

		// Every query must agree between the indexed and plain collections.
		for k := 0; k < 5; k++ {
			qi, err := indexed.FindIDs(Query{Filters: []Filter{Eq("k", k)}})
			if err != nil {
				return false
			}
			qp, err := plain.FindIDs(Query{Filters: []Filter{Eq("k", k)}})
			if err != nil {
				return false
			}
			if !equalIDs(qi, qp) {
				return false
			}
		}
		for _, pivot := range []float64{0.5, 2, 100} {
			qi, err := indexed.FindIDs(Query{Filters: []Filter{Lte("t", pivot)}})
			if err != nil {
				return false
			}
			qp, err := plain.FindIDs(Query{Filters: []Filter{Lte("t", pivot)}})
			if err != nil {
				return false
			}
			if !equalIDs(qi, qp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func equalIDs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQuickSampleIsSubsetOfMatches: sampling never fabricates documents.
func TestQuickSampleIsSubsetOfMatches(t *testing.T) {
	c := NewStore().Collection("x")
	c.CreateHashIndex("k")
	for i := 0; i < 60; i++ {
		c.Insert("", Fields{"k": i % 3})
	}
	f := func(nSeed uint8, seed int64) bool {
		n := int(nSeed % 40)
		q := Query{Filters: []Filter{Eq("k", 1)}}
		sampled, err := c.SampleIDs(q, n, seed)
		if err != nil {
			return false
		}
		all, err := c.FindIDs(q)
		if err != nil {
			return false
		}
		universe := map[string]bool{}
		for _, id := range all {
			universe[id] = true
		}
		for _, id := range sampled {
			if !universe[id] {
				return false
			}
		}
		want := n
		if want > len(all) {
			want = len(all)
		}
		return len(sampled) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
