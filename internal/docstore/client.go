package docstore

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Client is a pooled TCP client for a docstore Server. A pool of up to
// poolSize persistent connections lets many goroutines (e.g. DataLoader
// workers) issue requests concurrently — the paper's "fetch using multiple
// clients" extension of the PyTorch DataLoader (§III-D). poolSize is a hard
// cap: when all connections are in flight, further requests block on a
// semaphore until one frees up (or the acquire timeout expires), so the
// client never opens more than poolSize simultaneous connections no matter
// how many goroutines hammer it. Client is safe for concurrent use.
type Client struct {
	addr    string
	timeout time.Duration
	seq     atomic.Uint64

	// slots is the concurrency semaphore: one token per permitted
	// connection. acquire takes a token before using (or dialing) a
	// connection; release/discard return it.
	slots chan struct{}

	mu     sync.Mutex
	idle   []*clientConn
	closed bool

	// instrument, when set, observes every round trip (op name, wall time
	// including pool wait and retry, outcome). See Instrument.
	instrument atomic.Pointer[func(op string, d time.Duration, err error)]
}

type clientConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects a client pool of up to poolSize persistent connections to
// the server at addr. Connections are created lazily.
func Dial(addr string, poolSize int) (*Client, error) {
	if poolSize < 1 {
		poolSize = 1
	}
	c := &Client{addr: addr, timeout: 10 * time.Second, slots: make(chan struct{}, poolSize)}
	for i := 0; i < poolSize; i++ {
		c.slots <- struct{}{}
	}
	// Probe connectivity eagerly so misconfiguration fails fast.
	if err := c.Ping(); err != nil {
		return nil, fmt.Errorf("docstore: dial %s: %w", addr, err)
	}
	return c, nil
}

// acquire blocks until a pool slot is free, then returns an idle
// connection or dials a new one. The caller owns both the slot and the
// connection until it calls release or discard.
func (c *Client) acquire() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("docstore: client closed")
	}
	c.mu.Unlock()

	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	select {
	case <-c.slots:
	case <-timer.C:
		return nil, fmt.Errorf("docstore: pool exhausted for %v", c.timeout)
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.slots <- struct{}{}
		return nil, errors.New("docstore: client closed")
	}
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()

	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		c.slots <- struct{}{}
		return nil, err
	}
	return &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// release returns a healthy connection to the idle list (or closes it if
// the client shut down) and frees the caller's pool slot.
func (c *Client) release(cc *clientConn) {
	c.mu.Lock()
	if !c.closed {
		c.idle = append(c.idle, cc)
		c.mu.Unlock()
		c.slots <- struct{}{}
		return
	}
	c.mu.Unlock()
	cc.conn.Close()
	c.slots <- struct{}{}
}

// discard closes a broken connection and frees the caller's pool slot.
func (c *Client) discard(cc *clientConn) {
	cc.conn.Close()
	c.slots <- struct{}{}
}

// Instrument installs a hook observing every round trip: the wire op's
// lowercase_snake name ("get_many", "insert_many", ...), its wall time —
// pool wait and the single broken-connection retry included, so the hook
// sees what the caller experienced — and the outcome. The daemon uses it
// to surface store RPC counters and latency on /metricsz. Pass nil to
// uninstall. Safe to call concurrently with in-flight requests; keep the
// hook cheap, it runs on the request path.
func (c *Client) Instrument(fn func(op string, d time.Duration, err error)) {
	var p *func(op string, d time.Duration, err error)
	if fn != nil {
		p = &fn
	}
	c.instrument.Store(p)
}

// roundTrip sends one request and reads one response, retrying once on a
// broken pooled connection (the peer may have dropped it between uses).
// Responses are matched to requests by sequence number; a mismatch means
// the connection carries a stale or reordered stream and is discarded.
func (c *Client) roundTrip(req *request) (*response, error) {
	if fn := c.instrument.Load(); fn != nil {
		begin := time.Now()
		resp, err := c.roundTripUninstrumented(req)
		(*fn)(req.Op.opName(), time.Since(begin), err)
		return resp, err
	}
	return c.roundTripUninstrumented(req)
}

func (c *Client) roundTripUninstrumented(req *request) (*response, error) {
	req.Seq = c.seq.Add(1)
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		cc, err := c.acquire()
		if err != nil {
			return nil, err
		}
		if err := cc.enc.Encode(req); err != nil {
			c.discard(cc)
			lastErr = err
			continue
		}
		var resp response
		if err := cc.dec.Decode(&resp); err != nil {
			c.discard(cc)
			lastErr = err
			continue
		}
		if resp.Seq != req.Seq {
			c.discard(cc)
			lastErr = fmt.Errorf("docstore: response seq %d for request %d", resp.Seq, req.Seq)
			continue
		}
		c.release(cc)
		if resp.Err != "" {
			return nil, errors.New(resp.Err)
		}
		return &resp, nil
	}
	return nil, fmt.Errorf("docstore: request failed after retry: %w", lastErr)
}

// Ping verifies connectivity.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&request{Op: opPing})
	return err
}

// Insert stores a document in the named collection, returning its ID.
func (c *Client) Insert(collection, id string, f Fields) (string, error) {
	resp, err := c.roundTrip(&request{Op: opInsert, Collection: collection, ID: id, Fields: f})
	if err != nil {
		return "", err
	}
	return resp.ID, nil
}

// InsertMany bulk-inserts documents, returning their IDs in order.
func (c *Client) InsertMany(collection string, batch []Fields) ([]string, error) {
	resp, err := c.roundTrip(&request{Op: opInsertMany, Collection: collection, Batch: batch})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// ApplyTxn commits ops against the named collection as one
// all-or-nothing transaction (one WAL commit record on a durable
// server), returning each op's target document ID in order. Note the
// client retries once on a broken pooled connection: if the connection
// dies after the server applied the transaction but before the response
// arrived, the retry can re-submit it — the guarantee over the wire is
// atomicity, not exactly-once (a re-submitted Add with explicit IDs
// fails as a duplicate; with generated IDs it can double-insert).
func (c *Client) ApplyTxn(collection string, ops []TxnOp) ([]string, error) {
	resp, err := c.roundTrip(&request{Op: opTxn, Collection: collection, Ops: ops})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// ClientTxn batches Add/Update/Delete operations for one all-or-nothing
// commit over the wire — the client-side mirror of Collection.NewTxn.
// Not safe for concurrent use.
type ClientTxn struct {
	c          *Client
	collection string
	ops        []TxnOp
}

// NewTxn starts an empty transaction against the named collection.
func (c *Client) NewTxn(collection string) *ClientTxn {
	return &ClientTxn{c: c, collection: collection}
}

// Add queues an insert. An empty id gets a server-assigned one.
func (t *ClientTxn) Add(id string, f Fields) *ClientTxn {
	t.ops = append(t.ops, TxnOp{Kind: TxnAdd, ID: id, F: f})
	return t
}

// Update queues a field merge into an existing document.
func (t *ClientTxn) Update(id string, f Fields) *ClientTxn {
	t.ops = append(t.ops, TxnOp{Kind: TxnUpdate, ID: id, F: f})
	return t
}

// Delete queues a document removal.
func (t *ClientTxn) Delete(id string) *ClientTxn {
	t.ops = append(t.ops, TxnOp{Kind: TxnDelete, ID: id})
	return t
}

// Len reports the number of queued operations.
func (t *ClientTxn) Len() int { return len(t.ops) }

// Commit submits the batch. On success the queue is cleared; on error it
// is kept, and nothing was applied server-side.
func (t *ClientTxn) Commit() ([]string, error) {
	ids, err := t.c.ApplyTxn(t.collection, t.ops)
	if err != nil {
		return nil, err
	}
	t.ops = nil
	return ids, nil
}

// Get fetches one document by ID.
func (c *Client) Get(collection, id string) (*Doc, error) {
	resp, err := c.roundTrip(&request{Op: opGet, Collection: collection, ID: id})
	if err != nil {
		return nil, err
	}
	if len(resp.Docs) != 1 {
		return nil, fmt.Errorf("docstore: get returned %d docs", len(resp.Docs))
	}
	d := resp.Docs[0]
	return &d, nil
}

// GetMany fetches documents by ID, in order.
func (c *Client) GetMany(collection string, ids []string) ([]*Doc, error) {
	resp, err := c.roundTrip(&request{Op: opGetMany, Collection: collection, IDs: ids})
	if err != nil {
		return nil, err
	}
	out := make([]*Doc, len(resp.Docs))
	for i := range resp.Docs {
		d := resp.Docs[i]
		out[i] = &d
	}
	return out, nil
}

// Update merges fields into an existing document.
func (c *Client) Update(collection, id string, f Fields) error {
	_, err := c.roundTrip(&request{Op: opUpdate, Collection: collection, ID: id, Fields: f})
	return err
}

// Delete removes a document.
func (c *Client) Delete(collection, id string) error {
	_, err := c.roundTrip(&request{Op: opDelete, Collection: collection, ID: id})
	return err
}

// Find returns documents matching the query.
func (c *Client) Find(collection string, q Query) ([]*Doc, error) {
	resp, err := c.roundTrip(&request{Op: opFind, Collection: collection, Query: q})
	if err != nil {
		return nil, err
	}
	out := make([]*Doc, len(resp.Docs))
	for i := range resp.Docs {
		d := resp.Docs[i]
		out[i] = &d
	}
	return out, nil
}

// FindIDs returns the IDs of documents matching the query.
func (c *Client) FindIDs(collection string, q Query) ([]string, error) {
	resp, err := c.roundTrip(&request{Op: opFindIDs, Collection: collection, Query: q})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Count returns how many documents match the query.
func (c *Client) Count(collection string, q Query) (int, error) {
	resp, err := c.roundTrip(&request{Op: opCount, Collection: collection, Query: q})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// SampleIDs draws up to n matching document IDs uniformly at random.
func (c *Client) SampleIDs(collection string, q Query, n int, seed int64) ([]string, error) {
	resp, err := c.roundTrip(&request{Op: opSample, Collection: collection, Query: q, N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// CreateHashIndex builds an equality index on the server.
func (c *Client) CreateHashIndex(collection, field string) error {
	_, err := c.roundTrip(&request{Op: opCreateHashIndex, Collection: collection, Field: field})
	return err
}

// CreateOrderedIndex builds a range index on the server.
func (c *Client) CreateOrderedIndex(collection, field string) error {
	_, err := c.roundTrip(&request{Op: opCreateOrderedIndex, Collection: collection, Field: field})
	return err
}

// Collections lists collection names.
func (c *Client) Collections() ([]string, error) {
	resp, err := c.roundTrip(&request{Op: opNames})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Drop removes a collection.
func (c *Client) Drop(collection string) error {
	_, err := c.roundTrip(&request{Op: opDrop, Collection: collection})
	return err
}

// Close shuts the pool down. In-flight requests finish; their connections
// are closed on release.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, cc := range c.idle {
		cc.conn.Close()
	}
	c.idle = nil
}
