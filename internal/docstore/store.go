package docstore

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync"

	"fairdms/internal/fsx"
)

// Store is a set of named collections. The zero value is not usable;
// construct with NewStore.
type Store struct {
	mu          sync.RWMutex
	collections map[string]*Collection // guarded by mu
	onNew       func(*Collection)      // guarded by mu; durability hook for new collections
	onDrop      func(name string)      // guarded by mu; durability hook for drops

	// saveMu serializes snapshot writes: concurrent Save calls (e.g. a
	// periodic snapshotter racing the shutdown save) queue up instead of
	// interleaving, so the file at path always ends as the most recently
	// captured state.
	saveMu sync.Mutex
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{collections: make(map[string]*Collection)}
}

// Collection returns the named collection, creating it if absent.
func (s *Store) Collection(name string) *Collection {
	s.mu.RLock()
	c, ok := s.collections[name]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.collections[name]; ok {
		return c
	}
	c = newCollection(name)
	if s.onNew != nil {
		s.onNew(c)
	}
	s.collections[name] = c
	return c
}

// Drop removes the named collection and all its documents.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.collections[name]; ok && s.onDrop != nil {
		s.onDrop(name)
	}
	delete(s.collections, name)
}

// attachLogger installs the durability hook on every current and future
// collection and arranges for drops to be logged. Called once by
// OpenDurable after snapshot load and WAL replay, before the store is
// shared.
func (s *Store) attachLogger(lg commitLogger, onDrop func(name string)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onNew = func(c *Collection) { c.logger = lg }
	s.onDrop = onDrop
	for _, c := range s.collections {
		c.logger = lg
	}
}

// Names lists collection names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.collections))
	for n := range s.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// snapshot is the persisted form of a store. The on-disk layout is
// shard-agnostic: each collection serializes as one ID-sorted document
// list, so snapshots survive changes to the in-memory stripe count.
// WALSeq is the durability watermark of a compaction checkpoint: every
// WAL record with LSN ≤ WALSeq is folded into this snapshot, so replay
// skips them. Plain Save writes 0 (replay everything); old snapshots
// without the field decode as 0, which is the same thing.
type snapshot struct {
	Collections map[string]collectionSnapshot
	WALSeq      uint64
}

type collectionSnapshot struct {
	NextID  uint64
	Docs    []Doc
	HashIdx []string
	OrdIdx  []string
}

// Save writes a gzip-compressed snapshot of every collection to path.
// It holds read locks shard-by-shard, so concurrent writers are only
// briefly blocked. The snapshot is written to a temporary sibling file,
// synced, and atomically renamed into place: a crash mid-save can never
// truncate or corrupt an existing snapshot at path.
func (s *Store) Save(path string) error {
	return s.saveSnapshotFS(fsx.OS{}, path, 0)
}

func (s *Store) saveSnapshotFS(fsys fsx.FS, path string, walSeq uint64) error {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	snap := snapshot{Collections: make(map[string]collectionSnapshot), WALSeq: walSeq}
	for _, name := range s.Names() {
		c := s.Collection(name)
		var cs collectionSnapshot
		for _, sh := range c.shards {
			sh.mu.RLock()
			for _, d := range sh.docs {
				cs.Docs = append(cs.Docs, Doc{ID: d.ID, F: cloneFields(d.F)})
			}
			sh.mu.RUnlock()
		}
		// Read the ID sequence after the shard scan: a concurrent Insert
		// can commit a doc with sequence N+1 while we scan, and the saved
		// NextID must be ≥ any captured doc's sequence number or reloads
		// would re-issue it. Over-reserving (counting an insert we did not
		// capture) is harmless.
		cs.NextID = c.nextID.Load()
		cs.HashIdx, cs.OrdIdx = c.Indexes()
		sort.Slice(cs.Docs, func(i, j int) bool { return cs.Docs[i].ID < cs.Docs[j].ID })
		snap.Collections[name] = cs
	}

	err := fsx.WriteAtomicFS(fsys, path, func(w io.Writer) error {
		zw := gzip.NewWriter(w)
		if err := gob.NewEncoder(zw).Encode(snap); err != nil {
			return err
		}
		return zw.Close()
	})
	if err != nil {
		return fmt.Errorf("docstore: save: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save, replacing the store's contents.
// Truncated or corrupt snapshots (e.g. from a partial copy) are rejected
// with an error rather than yielding a silently incomplete store.
func Load(path string) (*Store, error) {
	s, _, err := loadSnapshotFS(fsx.OS{}, path)
	return s, err
}

func loadSnapshotFS(fsys fsx.FS, path string) (*Store, uint64, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("docstore: load: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, 0, fmt.Errorf("docstore: load gzip: %w", err)
	}
	var snap snapshot
	if err := gob.NewDecoder(zr).Decode(&snap); err != nil {
		return nil, 0, fmt.Errorf("docstore: load decode: %w", err)
	}
	// A well-formed gob stream can still sit in a truncated gzip member;
	// draining to EOF forces the checksum verification.
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return nil, 0, fmt.Errorf("docstore: load verify: %w", err)
	}
	s := NewStore()
	for name, cs := range snap.Collections {
		c := s.Collection(name)
		for _, field := range cs.HashIdx {
			if err := c.CreateHashIndex(field); err != nil {
				return nil, 0, err
			}
		}
		for _, field := range cs.OrdIdx {
			if err := c.CreateOrderedIndex(field); err != nil {
				return nil, 0, err
			}
		}
		for _, d := range cs.Docs {
			if _, err := c.Insert(d.ID, d.F); err != nil {
				return nil, 0, fmt.Errorf("docstore: load doc %q: %w", d.ID, err)
			}
		}
		c.nextID.Store(cs.NextID)
	}
	return s, snap.WALSeq, nil
}
