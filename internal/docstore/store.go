package docstore

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"
	"sort"
	"sync"
)

// Store is a set of named collections. The zero value is not usable;
// construct with NewStore.
type Store struct {
	mu          sync.RWMutex
	collections map[string]*Collection
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{collections: make(map[string]*Collection)}
}

// Collection returns the named collection, creating it if absent.
func (s *Store) Collection(name string) *Collection {
	s.mu.RLock()
	c, ok := s.collections[name]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.collections[name]; ok {
		return c
	}
	c = newCollection(name)
	s.collections[name] = c
	return c
}

// Drop removes the named collection and all its documents.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.collections, name)
}

// Names lists collection names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.collections))
	for n := range s.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// snapshot is the persisted form of a store.
type snapshot struct {
	Collections map[string]collectionSnapshot
}

type collectionSnapshot struct {
	NextID  uint64
	Docs    []Doc
	HashIdx []string
	OrdIdx  []string
}

// Save writes a gzip-compressed snapshot of every collection to path.
// It holds read locks collection-by-collection, so concurrent writers are
// only briefly blocked.
func (s *Store) Save(path string) error {
	snap := snapshot{Collections: make(map[string]collectionSnapshot)}
	for _, name := range s.Names() {
		c := s.Collection(name)
		c.mu.RLock()
		cs := collectionSnapshot{NextID: c.nextID}
		for _, d := range c.docs {
			cs.Docs = append(cs.Docs, Doc{ID: d.ID, F: cloneFields(d.F)})
		}
		for f := range c.hashIdx {
			cs.HashIdx = append(cs.HashIdx, f)
		}
		for f := range c.ordIdx {
			cs.OrdIdx = append(cs.OrdIdx, f)
		}
		c.mu.RUnlock()
		sort.Slice(cs.Docs, func(i, j int) bool { return cs.Docs[i].ID < cs.Docs[j].ID })
		snap.Collections[name] = cs
	}

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("docstore: save: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(snap); err != nil {
		return fmt.Errorf("docstore: save encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("docstore: save close: %w", err)
	}
	return f.Sync()
}

// Load reads a snapshot written by Save, replacing the store's contents.
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("docstore: load: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("docstore: load gzip: %w", err)
	}
	var snap snapshot
	if err := gob.NewDecoder(zr).Decode(&snap); err != nil {
		return nil, fmt.Errorf("docstore: load decode: %w", err)
	}
	s := NewStore()
	for name, cs := range snap.Collections {
		c := s.Collection(name)
		for _, field := range cs.HashIdx {
			if err := c.CreateHashIndex(field); err != nil {
				return nil, err
			}
		}
		for _, field := range cs.OrdIdx {
			if err := c.CreateOrderedIndex(field); err != nil {
				return nil, err
			}
		}
		for _, d := range cs.Docs {
			if _, err := c.Insert(d.ID, d.F); err != nil {
				return nil, fmt.Errorf("docstore: load doc %q: %w", d.ID, err)
			}
		}
		c.mu.Lock()
		c.nextID = cs.NextID
		c.mu.Unlock()
	}
	return s, nil
}
