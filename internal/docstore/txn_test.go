package docstore

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
)

func TestApplyTxnAllOps(t *testing.T) {
	c := NewStore().Collection("peaks")
	if _, err := c.Insert("seed", Fields{"n": 0}); err != nil {
		t.Fatal(err)
	}
	ids, err := c.ApplyTxn([]TxnOp{
		{Kind: TxnAdd, F: Fields{"n": 1}},
		{Kind: TxnAdd, ID: "named", F: Fields{"n": 2}},
		{Kind: TxnUpdate, ID: "seed", F: Fields{"n": 10}},
		{Kind: TxnDelete, ID: "named"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 || ids[0] == "" || ids[1] != "named" || ids[2] != "seed" || ids[3] != "named" {
		t.Fatalf("ids = %v", ids)
	}
	if d, err := c.Get("seed"); err != nil || d.F["n"] != int64(10) {
		t.Fatalf("seed after txn = %v, %v; want n=10", d, err)
	}
	// The Add→Delete pair within one txn nets out to absence.
	if _, err := c.Get("named"); err == nil {
		t.Fatal("named should have been deleted by the same txn")
	}
	if c.Count() != 2 {
		t.Fatalf("count = %d; want 2 (seed + generated)", c.Count())
	}
}

func TestApplyTxnIsAllOrNothing(t *testing.T) {
	c := NewStore().Collection("peaks")
	if _, err := c.Insert("a", Fields{"n": 1}); err != nil {
		t.Fatal(err)
	}
	// Op 1 is fine, op 2 updates a missing doc: nothing may apply.
	_, err := c.ApplyTxn([]TxnOp{
		{Kind: TxnUpdate, ID: "a", F: Fields{"n": 99}},
		{Kind: TxnUpdate, ID: "ghost", F: Fields{"n": 1}},
	})
	if err == nil || !strings.Contains(err.Error(), "txn op 1") {
		t.Fatalf("err = %v; want failure naming op 1", err)
	}
	if d, _ := c.Get("a"); d.F["n"] != int64(1) {
		t.Fatalf("a.n = %v after failed txn; want untouched 1", d.F["n"])
	}

	// Duplicate Add against an existing doc rolls everything back too.
	_, err = c.ApplyTxn([]TxnOp{
		{Kind: TxnAdd, ID: "b", F: Fields{"n": 2}},
		{Kind: TxnAdd, ID: "a", F: Fields{"n": 3}},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate id") {
		t.Fatalf("err = %v; want duplicate id", err)
	}
	if _, gerr := c.Get("b"); gerr == nil {
		t.Fatal("b leaked from a failed txn")
	}
}

func TestApplyTxnValidatesIndexability(t *testing.T) {
	c := NewStore().Collection("peaks")
	if err := c.CreateOrderedIndex("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert("ok", Fields{"t": 1.0}); err != nil {
		t.Fatal(err)
	}
	_, err := c.ApplyTxn([]TxnOp{
		{Kind: TxnAdd, ID: "fine", F: Fields{"t": 2.0}},
		{Kind: TxnAdd, ID: "bad", F: Fields{"t": "not-a-number"}},
	})
	if err == nil {
		t.Fatal("non-numeric value slipped past an ordered index")
	}
	if _, gerr := c.Get("fine"); gerr == nil {
		t.Fatal("fine leaked from a txn rejected by index validation")
	}
	// Index stayed consistent: query still answers.
	ids, err := c.FindIDs(Query{Filters: []Filter{Lte("t", 5.0)}})
	if err != nil || len(ids) != 1 || ids[0] != "ok" {
		t.Fatalf("index query after failed txn = %v, %v", ids, err)
	}
}

func TestTxnBuilderCommit(t *testing.T) {
	c := NewStore().Collection("peaks")
	txn := c.NewTxn().Add("x", Fields{"n": 1}).Add("y", Fields{"n": 2}).Update("x", Fields{"n": 3})
	if txn.Len() != 3 {
		t.Fatalf("Len = %d; want 3", txn.Len())
	}
	ids, err := txn.Commit()
	if err != nil || len(ids) != 3 {
		t.Fatalf("Commit = %v, %v", ids, err)
	}
	if txn.Len() != 0 {
		t.Fatal("ops not cleared after successful commit")
	}
	if d, _ := c.Get("x"); d.F["n"] != int64(3) {
		t.Fatalf("x.n = %v; want 3 (later op sees earlier ones)", d.F["n"])
	}

	// A failed commit keeps the ops for inspection or retry.
	bad := c.NewTxn().Delete("ghost")
	if _, err := bad.Commit(); err == nil {
		t.Fatal("deleting a missing doc should fail")
	}
	if bad.Len() != 1 {
		t.Fatal("failed commit cleared the ops")
	}
}

func TestReadTxnSeesConsistentViewWhileWritersProceed(t *testing.T) {
	c := NewStore().Collection("peaks")
	for i := 0; i < 100; i++ {
		if _, err := c.Insert("", Fields{"n": i}); err != nil {
			t.Fatal(err)
		}
	}
	rt := c.NewReadTxn()
	if rt.Count() != 100 {
		t.Fatalf("snapshot count = %d; want 100", rt.Count())
	}

	// Writers proceed underneath; the snapshot must not move.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.Insert("", Fields{"n": 1000 + w*50 + i})
			}
		}(w)
	}
	wg.Wait()

	if rt.Count() != 100 {
		t.Fatalf("snapshot count moved to %d after concurrent writes", rt.Count())
	}
	if c.Count() != 300 {
		t.Fatalf("live count = %d; want 300", c.Count())
	}
	ids, err := rt.FindIDs(Query{Filters: []Filter{Lte("n", 99.0)}})
	if err != nil || len(ids) != 100 {
		t.Fatalf("snapshot FindIDs = %d ids, %v; want 100", len(ids), err)
	}
}

func TestReadTxnUnaffectedByUpdateAndDelete(t *testing.T) {
	c := NewStore().Collection("peaks")
	if _, err := c.Insert("a", Fields{"n": 1}); err != nil {
		t.Fatal(err)
	}
	rt := c.NewReadTxn()
	if err := c.Update("a", Fields{"n": 2}); err != nil {
		t.Fatal(err)
	}
	if d, err := rt.Get("a"); err != nil || d.F["n"] != int64(1) {
		t.Fatalf("snapshot sees n=%v, %v; want the pre-update 1", d.F["n"], err)
	}
	if err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Get("a"); err != nil {
		t.Fatal("snapshot lost a doc deleted after the snapshot was taken")
	}
}

// --- Wire-level transaction tests ---

func TestTxnOverWire(t *testing.T) {
	srv, addr := startTestServer(t, ServerConfig{})
	cl, err := Dial(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ids, err := cl.NewTxn("peaks").
		Add("a", Fields{"n": 1}).
		Add("", Fields{"n": 2}).
		Update("a", Fields{"n": 10}).
		Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != "a" || ids[1] == "" {
		t.Fatalf("ids = %v", ids)
	}
	d, err := cl.Get("peaks", "a")
	if err != nil || d.F["n"] != int64(10) {
		t.Fatalf("a over wire = %v, %v; want n=10", d, err)
	}

	// Server-side atomicity surfaces as a client error with nothing applied.
	if _, err := cl.ApplyTxn("peaks", []TxnOp{
		{Kind: TxnAdd, ID: "c", F: Fields{"n": 3}},
		{Kind: TxnDelete, ID: "ghost"},
	}); err == nil {
		t.Fatal("txn with a bad op should fail over the wire")
	}
	if _, err := cl.Get("peaks", "c"); err == nil {
		t.Fatal("c leaked from a failed wire txn")
	}
	_ = srv
}

// TestTxnSurvivesMidTxnConnectionDrop routes the client through a proxy
// that kills the first connection mid-request: the partial transaction
// must not apply on the server, and the client's retry must land it
// exactly once afterwards.
func TestTxnSurvivesMidTxnConnectionDrop(t *testing.T) {
	srv, addr := startTestServer(t, ServerConfig{})

	proxy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	var once sync.Once
	go func() {
		for {
			conn, err := proxy.Accept()
			if err != nil {
				return
			}
			killed := false
			once.Do(func() {
				// Forward half the request bytes, then cut the link: the
				// server sees a truncated gob stream, never a full txn.
				buf := make([]byte, 64)
				n, _ := conn.Read(buf)
				if n > 0 {
					if back, err := net.Dial("tcp", addr); err == nil {
						back.Write(buf[:n/2])
						back.Close()
					}
				}
				conn.Close()
				killed = true
			})
			if killed {
				continue
			}
			back, err := net.Dial("tcp", addr)
			if err != nil {
				conn.Close()
				continue
			}
			go func() { io.Copy(back, conn); back.Close() }()
			go func() { io.Copy(conn, back); conn.Close() }()
		}
	}()

	cl, err := Dial(proxy.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ids, err := cl.ApplyTxn("peaks", []TxnOp{
		{Kind: TxnAdd, ID: "a", F: Fields{"n": 1}},
		{Kind: TxnAdd, ID: "b", F: Fields{"n": 2}},
	})
	if err != nil {
		t.Fatalf("txn through flaky proxy should retry and succeed: %v", err)
	}
	if len(ids) != 2 {
		t.Fatalf("ids = %v", ids)
	}
	// Exactly one application: the torn first attempt must not have
	// half-applied (or double-applied after the retry).
	c := srv.store.Collection("peaks")
	if c.Count() != 2 {
		t.Fatalf("server count = %d; want exactly 2", c.Count())
	}
	for _, id := range []string{"a", "b"} {
		if _, err := c.Get(id); err != nil {
			t.Fatalf("doc %s missing after retried txn: %v", id, err)
		}
	}
}
