package docstore

// Wire protocol between Client and Server: each connection carries a
// stream of gob-encoded requests and responses. One persistent gob
// encoder/decoder pair per connection amortizes type descriptors.
//
// Requests carry a connection-scoped sequence number and the server
// echoes it back on the matching response. Because the server hands
// decoded requests to a per-connection worker pool, responses may come
// back in a different order than the requests were sent; clients MUST
// match responses to requests by Seq rather than by position. A client
// that pipelines several requests on one connection therefore no longer
// pays head-of-line blocking for a slow query.

type reqOp uint8

const (
	opPing reqOp = iota + 1
	opInsert
	opInsertMany
	opGet
	opGetMany
	opUpdate
	opDelete
	opFind
	opFindIDs
	opCount
	opSample
	opCreateHashIndex
	opCreateOrderedIndex
	opNames
	opDrop
	opTxn
)

// opName maps wire ops to the lowercase_snake names used as metric label
// values by Client.Instrument hooks.
func (op reqOp) opName() string {
	switch op {
	case opPing:
		return "ping"
	case opInsert:
		return "insert"
	case opInsertMany:
		return "insert_many"
	case opGet:
		return "get"
	case opGetMany:
		return "get_many"
	case opUpdate:
		return "update"
	case opDelete:
		return "delete"
	case opFind:
		return "find"
	case opFindIDs:
		return "find_ids"
	case opCount:
		return "count"
	case opSample:
		return "sample"
	case opCreateHashIndex:
		return "create_hash_index"
	case opCreateOrderedIndex:
		return "create_ordered_index"
	case opNames:
		return "names"
	case opDrop:
		return "drop"
	case opTxn:
		return "txn"
	default:
		return "unknown"
	}
}

// request is the client→server message.
type request struct {
	Seq        uint64
	Op         reqOp
	Collection string
	ID         string
	IDs        []string
	Fields     Fields
	Batch      []Fields
	Query      Query
	N          int
	Seed       int64
	Field      string
	Ops        []TxnOp
}

// response is the server→client message. Err is empty on success. Seq
// echoes the request's sequence number.
type response struct {
	Seq   uint64
	Err   string
	ID    string
	IDs   []string
	Docs  []Doc
	Count int
	Names []string
}
