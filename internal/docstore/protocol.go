package docstore

// Wire protocol between Client and Server: each connection carries an
// alternating stream of gob-encoded request/response pairs. One persistent
// gob encoder/decoder pair per connection amortizes type descriptors.

type reqOp uint8

const (
	opPing reqOp = iota + 1
	opInsert
	opInsertMany
	opGet
	opGetMany
	opUpdate
	opDelete
	opFind
	opFindIDs
	opCount
	opSample
	opCreateHashIndex
	opCreateOrderedIndex
	opNames
	opDrop
)

// request is the client→server message.
type request struct {
	Op         reqOp
	Collection string
	ID         string
	IDs        []string
	Fields     Fields
	Batch      []Fields
	Query      Query
	N          int
	Seed       int64
	Field      string
}

// response is the server→client message. Err is empty on success.
type response struct {
	Err   string
	ID    string
	IDs   []string
	Docs  []Doc
	Count int
	Names []string
}
