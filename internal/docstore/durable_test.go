package docstore

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"fairdms/internal/wal"
)

func openDurable(t *testing.T, dir string, opts DurableOptions) *DurableStore {
	t.Helper()
	opts.Dir = dir
	ds, err := OpenDurable(opts)
	if err != nil {
		t.Fatalf("OpenDurable(%s): %v", dir, err)
	}
	return ds
}

func TestDurableRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, DurableOptions{Policy: wal.SyncAlways})
	c := ds.Collection("peaks")
	if _, err := c.Insert("a", Fields{"n": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert("b", Fields{"n": 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Update("a", Fields{"n": 10}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewTxn().Add("c", Fields{"n": 3}).Add("d", Fields{"n": 4}).Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds2 := openDurable(t, dir, DurableOptions{Policy: wal.SyncAlways})
	defer ds2.Close()
	c2 := ds2.Collection("peaks")
	if c2.Count() != 3 {
		t.Fatalf("count after replay = %d; want 3", c2.Count())
	}
	for id, n := range map[string]int64{"a": 10, "c": 3, "d": 4} {
		d, err := c2.Get(id)
		if err != nil || d.F["n"] != n {
			t.Fatalf("%s after replay = %v, %v; want n=%d", id, d, err, n)
		}
	}
	if _, err := c2.Get("b"); err == nil {
		t.Fatal("deleted doc resurrected by replay")
	}
	if st := ds2.WalStats(); st.ReplayedTxns != 5 {
		t.Fatalf("ReplayedTxns = %d; want 5", st.ReplayedTxns)
	}
}

func TestDurableReplayRebuildsIndexes(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, DurableOptions{Policy: wal.SyncAlways})
	c := ds.Collection("peaks")
	if err := c.CreateHashIndex("k"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateOrderedIndex("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.Insert("", Fields{"k": i % 3, "t": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ds.Close()

	ds2 := openDurable(t, dir, DurableOptions{Policy: wal.SyncAlways})
	defer ds2.Close()
	c2 := ds2.Collection("peaks")
	// Index creation was WAL-logged, so the reopened collection answers
	// indexed queries identically to a brute-force scan.
	ids, err := c2.FindIDs(Query{Filters: []Filter{Eq("k", 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 7 {
		t.Fatalf("Eq(k,1) after replay = %d ids; want 7", len(ids))
	}
	ids, err = c2.FindIDs(Query{Filters: []Filter{Lte("t", 9.0)}})
	if err != nil || len(ids) != 10 {
		t.Fatalf("Lte(t,9) after replay = %d ids, %v; want 10", len(ids), err)
	}
}

func TestDurableReplayRespectsDrop(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, DurableOptions{Policy: wal.SyncAlways})
	ds.Collection("doomed").Insert("x", Fields{"n": 1})
	ds.Collection("kept").Insert("y", Fields{"n": 2})
	ds.Drop("doomed")
	ds.Close()

	ds2 := openDurable(t, dir, DurableOptions{Policy: wal.SyncAlways})
	defer ds2.Close()
	names := ds2.Names()
	if len(names) != 1 || names[0] != "kept" {
		t.Fatalf("collections after replay = %v; want [kept]", names)
	}
}

func TestDurableNoIDReuseAfterReplay(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, DurableOptions{Policy: wal.SyncAlways})
	c := ds.Collection("peaks")
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := c.Insert("", Fields{"n": i})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Delete them all: replay must still not hand the same IDs out again.
	for _, id := range ids {
		if err := c.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	ds.Close()

	ds2 := openDurable(t, dir, DurableOptions{Policy: wal.SyncAlways})
	defer ds2.Close()
	seen := map[string]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	for i := 0; i < 5; i++ {
		id, err := ds2.Collection("peaks").Insert("", Fields{"n": i})
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("generated id %s reused after replay", id)
		}
	}
}

func TestCompactFoldsWALIntoSnapshot(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, DurableOptions{Policy: wal.SyncAlways})
	c := ds.Collection("peaks")
	for i := 0; i < 50; i++ {
		if _, err := c.Insert(fmt.Sprintf("d%02d", i), Fields{"n": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Compact(); err != nil {
		t.Fatal(err)
	}
	st := ds.WalStats()
	if st.Compactions != 1 || st.SegmentsRemoved == 0 {
		t.Fatalf("stats after compact = %+v; want 1 compaction with segments removed", st)
	}
	// Post-compaction writes land in the new generation.
	if _, err := c.Insert("post", Fields{"n": 999}); err != nil {
		t.Fatal(err)
	}
	ds.Close()

	ds2 := openDurable(t, dir, DurableOptions{Policy: wal.SyncAlways})
	defer ds2.Close()
	c2 := ds2.Collection("peaks")
	if c2.Count() != 51 {
		t.Fatalf("count after compact+reopen = %d; want 51", c2.Count())
	}
	st2 := ds2.WalStats()
	// Only the post-compaction txn should have replayed from the log;
	// everything else came from the snapshot.
	if st2.ReplayedTxns != 1 {
		t.Fatalf("ReplayedTxns after compaction = %d; want 1", st2.ReplayedTxns)
	}
}

func TestCompactConcurrentWithWriters(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, DurableOptions{Policy: wal.SyncOff})
	c := ds.Collection("peaks")
	const writers, docs = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docs; i++ {
				if _, err := c.Insert(fmt.Sprintf("w%d-%03d", w, i), Fields{"n": i}); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			if err := ds.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	ds.Close()

	ds2 := openDurable(t, dir, DurableOptions{Policy: wal.SyncOff})
	defer ds2.Close()
	if got := ds2.Collection("peaks").Count(); got != writers*docs {
		t.Fatalf("count after concurrent compactions = %d; want %d", got, writers*docs)
	}
}

// TestConcurrentSavesKeepSnapshotCoherent is the regression test for the
// periodic-save vs shutdown-save race: concurrent Save calls on one store
// must serialize, and the surviving file must decode to a complete store.
func TestConcurrentSavesKeepSnapshotCoherent(t *testing.T) {
	s := NewStore()
	c := s.Collection("peaks")
	for i := 0; i < 200; i++ {
		if _, err := c.Insert("", Fields{"n": i}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "snap.gz")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Save(path); err != nil {
				t.Errorf("concurrent Save: %v", err)
			}
		}()
	}
	wg.Wait()
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("snapshot corrupted by concurrent saves: %v", err)
	}
	if got := loaded.Collection("peaks").Count(); got != 200 {
		t.Fatalf("loaded count = %d; want 200", got)
	}
}

func TestDurableStoreRejectsEmptyDir(t *testing.T) {
	if _, err := OpenDurable(DurableOptions{}); err == nil {
		t.Fatal("OpenDurable with no dir should fail")
	}
}
