package docstore

import (
	"fmt"
	"testing"
)

func benchCollection(n int) *Collection {
	return benchCollectionShards(n, defaultShardCount())
}

func benchCollectionShards(n, shards int) *Collection {
	c := newCollectionShards("bench", shards)
	c.CreateHashIndex("cluster")
	batch := make([]Fields, n)
	for i := range batch {
		batch[i] = Fields{"cluster": i % 16, "v": float64(i), "payload": make([]byte, 256)}
	}
	c.InsertMany(batch)
	return c
}

func BenchmarkInsert(b *testing.B) {
	c := NewStore().Collection("bench")
	c.CreateHashIndex("cluster")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Insert("", Fields{"cluster": i % 16, "v": i}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertMany100(b *testing.B) {
	c := NewStore().Collection("bench")
	batch := make([]Fields, 100)
	for i := range batch {
		batch[i] = Fields{"cluster": i % 16}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.InsertMany(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFindIndexed vs BenchmarkFindScan is the index ablation: the
// same equality query against an indexed vs unindexed field.
func BenchmarkFindIndexed(b *testing.B) {
	c := benchCollection(4096)
	q := Query{Filters: []Filter{Eq("cluster", 7)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.FindIDs(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindScan(b *testing.B) {
	c := benchCollection(4096)
	q := Query{Filters: []Filter{Eq("v", 7.0)}} // unindexed field
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.FindIDs(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFindScanShards is the sharding ablation: the same unindexed
// full-scan query against stripe counts from 1 (the seed's single-lock
// layout) up to 16. Scan work fans out one goroutine per shard, so
// throughput should rise with the stripe count on multi-core machines.
func BenchmarkFindScanShards(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := benchCollectionShards(65536, shards)
			q := Query{Filters: []Filter{Eq("v", 7.0)}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.FindIDs(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFindScanParallelClients adds concurrent readers on top: many
// goroutines issuing full scans at once, which on the single-stripe
// layout all serialize behind one RWMutex.
func BenchmarkFindScanParallelClients(b *testing.B) {
	for _, shards := range []int{1, defaultShardCount()} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := benchCollectionShards(16384, shards)
			q := Query{Filters: []Filter{Eq("v", 7.0)}}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := c.FindIDs(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkCountWhereShards measures the sort-free parallel count path.
func BenchmarkCountWhereShards(b *testing.B) {
	for _, shards := range []int{1, defaultShardCount()} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := benchCollectionShards(65536, shards)
			q := Query{Filters: []Filter{Gte("v", 1024.0)}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.CountWhere(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInsertParallelShards measures striped-lock write throughput:
// concurrent single-doc inserts against 1 vs N stripes.
func BenchmarkInsertParallelShards(b *testing.B) {
	for _, shards := range []int{1, defaultShardCount()} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := newCollectionShards("bench", shards)
			c.CreateHashIndex("cluster")
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := c.Insert("", Fields{"cluster": i % 16, "v": float64(i)}); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkFindProjected vs BenchmarkFindFull is the projection ablation:
// fetching only a small field vs whole documents with payloads.
func BenchmarkFindProjected(b *testing.B) {
	c := benchCollection(2048)
	q := Query{Filters: []Filter{Eq("cluster", 3)}, Project: []string{"v"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Find(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindFull(b *testing.B) {
	c := benchCollection(2048)
	q := Query{Filters: []Filter{Eq("cluster", 3)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Find(q); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRemote(b *testing.B, pool int) {
	srv := NewServer(NewStore(), ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(addr, pool)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	var ids []string
	for i := 0; i < 64; i++ {
		id, err := cl.Insert("c", "", Fields{"payload": make([]byte, 1024)})
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := cl.Get("c", ids[i%len(ids)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkRemoteGetPool1(b *testing.B) { benchRemote(b, 1) }
func BenchmarkRemoteGetPool8(b *testing.B) { benchRemote(b, 8) }

func BenchmarkSampleIDs(b *testing.B) {
	c := benchCollection(4096)
	q := Query{Filters: []Filter{Eq("cluster", 5)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SampleIDs(q, 32, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink []string

func BenchmarkAllIDs(b *testing.B) {
	c := benchCollection(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = c.AllIDs()
	}
	_ = fmt.Sprint(len(benchSink))
}
