package docstore

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestInsertGetRoundTrip(t *testing.T) {
	c := NewStore().Collection("peaks")
	id, err := c.Insert("", Fields{"cluster": 3, "score": 0.5, "name": "p1"})
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if d.F["cluster"] != int64(3) {
		t.Fatalf("cluster = %v (%T), want int64(3)", d.F["cluster"], d.F["cluster"])
	}
	if d.F["score"] != 0.5 || d.F["name"] != "p1" {
		t.Fatalf("fields = %v", d.F)
	}
}

func TestInsertExplicitAndDuplicateID(t *testing.T) {
	c := NewStore().Collection("x")
	if _, err := c.Insert("a1", Fields{"v": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert("a1", Fields{"v": 2}); err == nil {
		t.Fatal("expected duplicate-id error")
	}
}

func TestInsertRejectsUnsupportedType(t *testing.T) {
	c := NewStore().Collection("x")
	if _, err := c.Insert("", Fields{"bad": struct{}{}}); err == nil {
		t.Fatal("expected unsupported-type error")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	c := NewStore().Collection("x")
	id, _ := c.Insert("", Fields{"v": 1})
	d, _ := c.Get(id)
	d.F["v"] = int64(99)
	d2, _ := c.Get(id)
	if d2.F["v"] != int64(1) {
		t.Fatal("Get must return an isolated copy")
	}
}

func TestUpdateMergesAndDeleteRemoves(t *testing.T) {
	c := NewStore().Collection("x")
	id, _ := c.Insert("", Fields{"a": 1, "b": 2})
	if err := c.Update(id, Fields{"b": 20, "c": 30}); err != nil {
		t.Fatal(err)
	}
	d, _ := c.Get(id)
	if d.F["a"] != int64(1) || d.F["b"] != int64(20) || d.F["c"] != int64(30) {
		t.Fatalf("after update: %v", d.F)
	}
	if err := c.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(id); err == nil {
		t.Fatal("expected not-found after delete")
	}
	if err := c.Update(id, Fields{"a": 1}); err == nil {
		t.Fatal("expected error updating deleted doc")
	}
}

func TestFindFiltersAndOrdering(t *testing.T) {
	c := NewStore().Collection("x")
	for i := 0; i < 10; i++ {
		if _, err := c.Insert("", Fields{"k": i % 3, "v": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	docs, err := c.Find(Query{Filters: []Filter{Eq("k", 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 { // i in [0,10) with i%3==1 → 1, 4, 7
		t.Fatalf("Eq(k,1) matched %d docs, want 3", len(docs))
	}
	// Range query + sort descending by v.
	docs, err = c.Find(Query{Filters: []Filter{Gte("v", 5)}, SortBy: "v", Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 5 {
		t.Fatalf("Gte(v,5) matched %d docs", len(docs))
	}
	if docs[0].F["v"] != 9.0 || docs[4].F["v"] != 5.0 {
		t.Fatalf("descending sort wrong: first=%v last=%v", docs[0].F["v"], docs[4].F["v"])
	}
	// Limit + offset.
	ids, err := c.FindIDs(Query{SortBy: "v", Limit: 2, Offset: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("limit/offset returned %d ids", len(ids))
	}
}

func TestFindInAndNe(t *testing.T) {
	c := NewStore().Collection("x")
	for i := 0; i < 6; i++ {
		c.Insert("", Fields{"k": i})
	}
	n, err := c.CountWhere(Query{Filters: []Filter{In("k", 1, 3, 5)}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("In matched %d", n)
	}
	n, _ = c.CountWhere(Query{Filters: []Filter{Ne("k", 0)}})
	if n != 5 {
		t.Fatalf("Ne matched %d", n)
	}
}

func TestFindMissingFieldNeverMatches(t *testing.T) {
	c := NewStore().Collection("x")
	c.Insert("", Fields{"a": 1})
	n, _ := c.CountWhere(Query{Filters: []Filter{Eq("missing", 1)}})
	if n != 0 {
		t.Fatalf("matched %d docs on missing field", n)
	}
	n, _ = c.CountWhere(Query{Filters: []Filter{Lt("missing", 5)}})
	if n != 0 {
		t.Fatalf("range matched %d docs on missing field", n)
	}
}

func TestHashIndexConsistentWithScan(t *testing.T) {
	c := NewStore().Collection("x")
	if err := c.CreateHashIndex("cluster"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.Insert("", Fields{"cluster": i % 5, "v": i})
	}
	// Delete some, update some — index must track.
	ids := c.AllIDs()
	c.Delete(ids[0])
	c.Update(ids[1], Fields{"cluster": 99})

	for k := 0; k < 5; k++ {
		indexed, err := c.FindIDs(Query{Filters: []Filter{Eq("cluster", k)}})
		if err != nil {
			t.Fatal(err)
		}
		// Brute-force check against unindexed collection.
		brute := bruteFind(c, "cluster", int64(k))
		if len(indexed) != len(brute) {
			t.Fatalf("cluster %d: index %d vs scan %d", k, len(indexed), len(brute))
		}
		for i := range indexed {
			if indexed[i] != brute[i] {
				t.Fatalf("cluster %d: index/scan mismatch at %d", k, i)
			}
		}
	}
	got, _ := c.FindIDs(Query{Filters: []Filter{Eq("cluster", 99)}})
	if len(got) != 1 || got[0] != ids[1] {
		t.Fatalf("updated doc not reindexed: %v", got)
	}
}

// bruteFind scans every doc without using indexes.
func bruteFind(c *Collection, field string, want int64) []string {
	var out []string
	for _, id := range c.AllIDs() {
		d, err := c.Get(id)
		if err != nil {
			continue
		}
		if v, ok := d.F[field]; ok && valuesEqual(v, want) {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}

func TestOrderedIndexConsistentWithScan(t *testing.T) {
	c := NewStore().Collection("x")
	if err := c.CreateOrderedIndex("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		c.Insert("", Fields{"t": float64(i % 10)})
	}
	ids := c.AllIDs()
	c.Delete(ids[3])
	c.Update(ids[4], Fields{"t": 100.0})

	for _, q := range []Query{
		{Filters: []Filter{Lt("t", 5)}},
		{Filters: []Filter{Lte("t", 5)}},
		{Filters: []Filter{Gt("t", 5)}},
		{Filters: []Filter{Gte("t", 5)}},
	} {
		indexed, err := c.FindIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		// Compare against a collection with no index.
		c2 := NewStore().Collection("y")
		for _, id := range c.AllIDs() {
			d, _ := c.Get(id)
			c2.Insert(id, d.F)
		}
		scanned, err := c2.FindIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(indexed) != len(scanned) {
			t.Fatalf("query %+v: index %d vs scan %d", q.Filters[0], len(indexed), len(scanned))
		}
		for i := range indexed {
			if indexed[i] != scanned[i] {
				t.Fatalf("query %+v: mismatch at %d", q.Filters[0], i)
			}
		}
	}
}

func TestOrderedIndexRejectsNonNumeric(t *testing.T) {
	c := NewStore().Collection("x")
	c.Insert("", Fields{"t": "not a number"})
	if err := c.CreateOrderedIndex("t"); err == nil {
		t.Fatal("expected error indexing string field")
	}
	// And inserting a bad value into an existing ordered index fails too.
	c2 := NewStore().Collection("y")
	if err := c2.CreateOrderedIndex("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Insert("", Fields{"t": "nope"}); err == nil {
		t.Fatal("expected insert error for non-numeric indexed field")
	}
}

func TestSampleIDs(t *testing.T) {
	c := NewStore().Collection("x")
	for i := 0; i < 20; i++ {
		c.Insert("", Fields{"cluster": i % 2})
	}
	ids, err := c.SampleIDs(Query{Filters: []Filter{Eq("cluster", 0)}}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("sampled %d ids, want 4", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("sample contains duplicates")
		}
		seen[id] = true
		d, _ := c.Get(id)
		if d.F["cluster"] != int64(0) {
			t.Fatal("sampled doc violates filter")
		}
	}
	// Asking for more than available returns all matches.
	ids, _ = c.SampleIDs(Query{Filters: []Filter{Eq("cluster", 0)}}, 100, 7)
	if len(ids) != 10 {
		t.Fatalf("oversample returned %d, want 10", len(ids))
	}
	// Deterministic for a given seed.
	a, _ := c.SampleIDs(Query{}, 5, 3)
	b, _ := c.SampleIDs(Query{}, 5, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic for fixed seed")
		}
	}
}

func TestInsertManyAndCount(t *testing.T) {
	c := NewStore().Collection("x")
	batch := make([]Fields, 100)
	for i := range batch {
		batch[i] = Fields{"i": i}
	}
	ids, err := c.InsertMany(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 100 || c.Count() != 100 {
		t.Fatalf("InsertMany stored %d/%d", len(ids), c.Count())
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	c := NewStore().Collection("x")
	if err := c.CreateHashIndex("k"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := c.Insert("", Fields{"k": i % 5, "w": w}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := c.FindIDs(Query{Filters: []Filter{Eq("k", i%5)}}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.Count() != 200 {
		t.Fatalf("count = %d, want 200", c.Count())
	}
}

func TestFindProjection(t *testing.T) {
	c := NewStore().Collection("x")
	id, _ := c.Insert("", Fields{"a": 1, "b": "keep", "big": []byte{1, 2, 3}})
	docs, err := c.Find(Query{Project: []string{"b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0].ID != id {
		t.Fatalf("docs = %v", docs)
	}
	if docs[0].F["b"] != "keep" {
		t.Fatal("projected field missing")
	}
	if _, ok := docs[0].F["a"]; ok {
		t.Fatal("unprojected field leaked")
	}
	if _, ok := docs[0].F["big"]; ok {
		t.Fatal("payload leaked through projection")
	}
	// Projecting a nonexistent field yields empty field maps, not errors.
	docs, err = c.Find(Query{Project: []string{"missing"}})
	if err != nil || len(docs) != 1 || len(docs[0].F) != 0 {
		t.Fatalf("missing-field projection: %v, %v", docs, err)
	}
}

func TestFindProjectionOverWire(t *testing.T) {
	_, addr := startTestServer(t, ServerConfig{})
	cl, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Insert("c", "", Fields{"keep": 1, "drop": 2}); err != nil {
		t.Fatal(err)
	}
	docs, err := cl.Find("c", Query{Project: []string{"keep"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0].F["keep"] != int64(1) {
		t.Fatalf("docs = %v", docs)
	}
	if _, ok := docs[0].F["drop"]; ok {
		t.Fatal("unprojected field crossed the wire")
	}
}

func TestStoreNamesAndDrop(t *testing.T) {
	s := NewStore()
	s.Collection("b")
	s.Collection("a")
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	s.Drop("a")
	if len(s.Names()) != 1 {
		t.Fatal("Drop failed")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.gob.gz")

	s := NewStore()
	c := s.Collection("peaks")
	if err := c.CreateHashIndex("cluster"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateOrderedIndex("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := c.Insert("", Fields{"cluster": i % 5, "t": float64(i), "blob": []byte{1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	c2 := s2.Collection("peaks")
	if c2.Count() != 25 {
		t.Fatalf("loaded %d docs, want 25", c2.Count())
	}
	// Indexes survive the round trip.
	hash, ordered := c2.Indexes()
	if len(hash) != 1 || hash[0] != "cluster" || len(ordered) != 1 || ordered[0] != "t" {
		t.Fatalf("indexes = %v / %v", hash, ordered)
	}
	ids, err := c2.FindIDs(Query{Filters: []Filter{Eq("cluster", 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 {
		t.Fatalf("cluster 2 has %d docs after reload", len(ids))
	}
	// New inserts continue the ID sequence without collision.
	if _, err := c2.Insert("", Fields{"cluster": 0, "t": 99.0}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMissingFileFails(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error for missing snapshot")
	}
}

// Property: after any sequence of inserts with cluster labels, the hash
// index returns exactly the docs a full scan would.
func TestQuickIndexMatchesScan(t *testing.T) {
	f := func(labels []uint8) bool {
		c := NewStore().Collection("x")
		if err := c.CreateHashIndex("k"); err != nil {
			return false
		}
		for _, l := range labels {
			if _, err := c.Insert("", Fields{"k": int(l % 4)}); err != nil {
				return false
			}
		}
		for k := 0; k < 4; k++ {
			indexed, err := c.FindIDs(Query{Filters: []Filter{Eq("k", k)}})
			if err != nil {
				return false
			}
			brute := bruteFind(c, "k", int64(k))
			if len(indexed) != len(brute) {
				return false
			}
			for i := range indexed {
				if indexed[i] != brute[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- Server / client tests ---

func startTestServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	srv := NewServer(NewStore(), cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func TestClientServerCRUD(t *testing.T) {
	_, addr := startTestServer(t, ServerConfig{})
	cl, err := Dial(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.CreateHashIndex("peaks", "cluster"); err != nil {
		t.Fatal(err)
	}
	id, err := cl.Insert("peaks", "", Fields{"cluster": 1, "payload": []byte{9, 8}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := cl.Get("peaks", id)
	if err != nil {
		t.Fatal(err)
	}
	if d.F["cluster"] != int64(1) {
		t.Fatalf("cluster = %v", d.F["cluster"])
	}
	payload, ok := d.F["payload"].([]byte)
	if !ok || len(payload) != 2 || payload[0] != 9 {
		t.Fatalf("payload = %v", d.F["payload"])
	}

	if err := cl.Update("peaks", id, Fields{"cluster": 2}); err != nil {
		t.Fatal(err)
	}
	n, err := cl.Count("peaks", Query{Filters: []Filter{Eq("cluster", 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("count = %d", n)
	}

	ids, err := cl.InsertMany("peaks", []Fields{{"cluster": 3}, {"cluster": 3}})
	if err != nil || len(ids) != 2 {
		t.Fatalf("InsertMany ids=%v err=%v", ids, err)
	}
	docs, err := cl.GetMany("peaks", ids)
	if err != nil || len(docs) != 2 {
		t.Fatalf("GetMany docs=%d err=%v", len(docs), err)
	}

	sampled, err := cl.SampleIDs("peaks", Query{Filters: []Filter{Eq("cluster", 3)}}, 1, 5)
	if err != nil || len(sampled) != 1 {
		t.Fatalf("SampleIDs = %v err=%v", sampled, err)
	}

	if err := cl.Delete("peaks", id); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("peaks", id); err == nil {
		t.Fatal("expected not-found over the wire")
	}

	names, err := cl.Collections()
	if err != nil || len(names) != 1 || names[0] != "peaks" {
		t.Fatalf("Collections = %v err=%v", names, err)
	}
	if err := cl.Drop("peaks"); err != nil {
		t.Fatal(err)
	}
}

func TestClientParallelRequests(t *testing.T) {
	_, addr := startTestServer(t, ServerConfig{})
	cl, err := Dial(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if _, err := cl.Insert("c", id, Fields{"w": w}); err != nil {
					errs <- err
					return
				}
				if _, err := cl.Get("c", id); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	n, err := cl.Count("c", Query{})
	if err != nil || n != 160 {
		t.Fatalf("count = %d err=%v", n, err)
	}
}

func TestClientSurvivesInjectedConnectionDrops(t *testing.T) {
	// The server drops connections after ~30% of requests; the pooled
	// client must retry on a fresh connection and still complete.
	_, addr := startTestServer(t, ServerConfig{FaultRate: 0.3, FaultSeed: 42})
	cl, err := Dial(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 50; i++ {
		if _, err := cl.Insert("c", "", Fields{"i": i}); err != nil {
			t.Fatalf("insert %d failed despite retry: %v", i, err)
		}
	}
	n, err := cl.Count("c", Query{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("count = %d, want 50", n)
	}
}

func TestDialFailsFastOnBadAddress(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 1); err == nil {
		t.Fatal("expected connection error")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startTestServer(t, ServerConfig{})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestValueComparisons(t *testing.T) {
	if c, ok := compareValues(int64(2), 2.5); !ok || c != -1 {
		t.Fatal("mixed numeric comparison failed")
	}
	if !valuesEqual(int64(2), 2.0) {
		t.Fatal("int64(2) must equal 2.0")
	}
	if _, ok := compareValues("a", int64(1)); ok {
		t.Fatal("string vs int must be incomparable")
	}
	if c, ok := compareValues(false, true); !ok || c != -1 {
		t.Fatal("bool comparison failed")
	}
}
