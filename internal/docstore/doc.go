// Package docstore is fairDMS's stand-in for MongoDB (paper §II-A): an
// in-memory NoSQL document store with named collections, schemaless
// JSON-like documents, primary and secondary indexes (hash for equality,
// ordered for ranges), and concurrent reads/writes. A TCP server and a
// pooled client make it a remote store, which is how the paper hosts
// MongoDB across a 100 GbE link for the Figs. 6–8 storage study.
//
// The store supports the five Data Store requirements the paper lists:
// (i) large stores, (ii) efficient lookup via embedding/cluster indexing,
// (iii) updates for newly labeled data, (iv) parallel reads during
// training, and (v) parallel writes during data updates.
package docstore

import (
	"encoding/gob"
	"fmt"
	"sort"
)

// Fields holds a document's named values. Supported value types are the
// normalized set: string, int64, float64, bool, []byte, []float64, []string.
// Insert normalizes int and int32 to int64 and float32 to float64.
type Fields map[string]any

// Doc is a stored document: an immutable ID plus its fields.
type Doc struct {
	ID string
	F  Fields
}

func init() {
	// Register field value types for gob transport.
	gob.Register(map[string]any{})
	gob.Register([]byte(nil))
	gob.Register([]float64(nil))
	gob.Register([]string(nil))
	gob.Register([]any(nil))
}

// normalizeValue converts ints and float32s to the canonical wire types and
// rejects unsupported types.
func normalizeValue(v any) (any, error) {
	switch x := v.(type) {
	case nil, string, int64, float64, bool, []byte, []float64, []string:
		return v, nil
	case int:
		return int64(x), nil
	case int32:
		return int64(x), nil
	case uint:
		return int64(x), nil
	case uint32:
		return int64(x), nil
	case float32:
		return float64(x), nil
	default:
		return nil, fmt.Errorf("docstore: unsupported field type %T", v)
	}
}

// normalizeFields returns a normalized copy of f.
func normalizeFields(f Fields) (Fields, error) {
	out := make(Fields, len(f))
	for k, v := range f {
		nv, err := normalizeValue(v)
		if err != nil {
			return nil, fmt.Errorf("docstore: field %q: %w", k, err)
		}
		out[k] = nv
	}
	return out, nil
}

// cloneFields deep-copies scalar fields; slices are copied shallowly since
// the store treats stored documents as immutable snapshots.
func cloneFields(f Fields) Fields {
	out := make(Fields, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// compareValues orders two normalized values of the same kind. Mixed
// numeric kinds (int64 vs float64) compare numerically. It returns
// -1, 0, or +1, and false if the values are not comparable.
func compareValues(a, b any) (int, bool) {
	af, aok := asFloat(a)
	bf, bok := asFloat(b)
	if aok && bok {
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	as, aok := a.(string)
	bs, bok2 := b.(string)
	if aok && bok2 {
		switch {
		case as < bs:
			return -1, true
		case as > bs:
			return 1, true
		default:
			return 0, true
		}
	}
	ab, aok := a.(bool)
	bb, bok3 := b.(bool)
	if aok && bok3 {
		switch {
		case ab == bb:
			return 0, true
		case !ab:
			return -1, true
		default:
			return 1, true
		}
	}
	return 0, false
}

// asFloat widens any numeric value — including query-supplied ints that
// never passed through insert normalization — to float64.
func asFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case int:
		return float64(x), true
	case int32:
		return float64(x), true
	case uint:
		return float64(x), true
	case uint32:
		return float64(x), true
	case float32:
		return float64(x), true
	}
	return 0, false
}

// valuesEqual reports whether two normalized values are equal, treating
// int64/float64 numerically.
func valuesEqual(a, b any) bool {
	if c, ok := compareValues(a, b); ok {
		return c == 0
	}
	return false
}

// indexKey renders a value as a map key for hash indexes. The value is
// normalized first so query-side ints and stored int64s share a key.
func indexKey(v any) (string, error) {
	v, err := normalizeValue(v)
	if err != nil {
		return "", err
	}
	switch x := v.(type) {
	case string:
		return "s:" + x, nil
	case int64:
		// All numerics share one key space so int64(3) and float64(3)
		// hash identically, matching valuesEqual's numeric semantics.
		return fmt.Sprintf("n:%g", float64(x)), nil
	case float64:
		return fmt.Sprintf("n:%g", x), nil
	case bool:
		return fmt.Sprintf("b:%t", x), nil
	default:
		return "", fmt.Errorf("docstore: cannot index value of type %T", v)
	}
}

// sortIDs sorts document IDs for deterministic results.
func sortIDs(ids []string) { sort.Strings(ids) }
