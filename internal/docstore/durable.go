package docstore

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	iofs "io/fs"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"fairdms/internal/fsx"
	"fairdms/internal/wal"
)

// snapshotFile is the checkpoint filename inside a durable store's
// directory; WAL segments live beside it.
const snapshotFile = "snapshot.gz"

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Dir holds the WAL segments and the compaction snapshot.
	Dir string
	// Policy is the WAL fsync policy (default wal.SyncAlways).
	Policy wal.Policy
	// Interval is the background fsync period under wal.SyncInterval.
	Interval time.Duration
	// WalShards is the number of WAL segment files (default 4).
	WalShards int
	// FS substitutes a filesystem; tests inject faults through it.
	FS fsx.FS
}

// DurableStore is a Store whose every committed write survives a crash
// (to the extent the fsync policy promises): commits append one WAL
// record before they apply, startup replays the log over the latest
// snapshot, and Compact folds the log into a fresh snapshot so replay
// stays cheap. All Store and Collection APIs work unchanged; writes on
// any collection of this store are logged automatically.
type DurableStore struct {
	*Store
	dir      string
	fs       fsx.FS
	log      *wal.Log
	snapPath string

	// ckptMu fences commits against the compaction cut: every commit
	// holds the read side from WAL append through in-memory apply, and
	// Compact briefly takes the write side to rotate the log and read
	// the cut LSN. That makes the cut a consistent point — every record
	// at or below it is fully applied before the snapshot scan starts,
	// and every later commit lands in segments the checkpoint keeps.
	ckptMu sync.RWMutex

	// compactMu serializes whole compactions (a periodic compactor
	// racing a shutdown compaction must queue, not interleave).
	compactMu sync.Mutex

	compactions   atomic.Int64
	replayedTxns  atomic.Int64
	replaySkipped atomic.Int64
}

// WalStats is a point-in-time copy of a durable store's WAL counters,
// surfaced on /statsz and /metricsz by the daemons.
type WalStats struct {
	Enabled          bool
	Policy           string
	Appends          int64
	AppendedBytes    int64
	Syncs            int64
	Replays          int64
	ReplayedRecords  int64
	ReplayedTxns     int64
	ReplaySkippedOps int64
	TornTruncations  int64
	CorruptRecords   int64
	Rotations        int64
	Compactions      int64
	SegmentsRemoved  int64
}

// OpenDurable opens (or creates) a WAL-durable store in dir: it loads
// the latest snapshot if one exists, replays every WAL record past the
// snapshot's watermark — truncating torn or corrupt tails rather than
// failing — and returns the store ready for reads and durable writes.
func OpenDurable(opts DurableOptions) (*DurableStore, error) {
	if opts.Dir == "" {
		return nil, errors.New("docstore: durable store needs a directory")
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = fsx.OS{}
	}
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("docstore: durable dir %s: %w", opts.Dir, err)
	}
	snapPath := filepath.Join(opts.Dir, snapshotFile)

	store := NewStore()
	var walSeq uint64
	switch _, err := fsys.Stat(snapPath); {
	case err == nil:
		store, walSeq, err = loadSnapshotFS(fsys, snapPath)
		if err != nil {
			return nil, err
		}
	case errors.Is(err, iofs.ErrNotExist):
		// Fresh store: everything comes from the WAL (if any).
	default:
		return nil, fmt.Errorf("docstore: durable snapshot stat: %w", err)
	}

	lg, records, err := wal.Open(opts.Dir, wal.Options{
		Shards:   opts.WalShards,
		Policy:   opts.Policy,
		Interval: opts.Interval,
		FS:       fsys,
	})
	if err != nil {
		return nil, fmt.Errorf("docstore: %w", err)
	}

	ds := &DurableStore{Store: store, dir: opts.Dir, fs: fsys, log: lg, snapPath: snapPath}
	for _, rec := range records {
		if rec.LSN <= walSeq {
			// Already folded into the snapshot by a compaction whose
			// segment GC did not finish before a crash.
			continue
		}
		var commit walCommit
		if err := gob.NewDecoder(bytes.NewReader(rec.Payload)).Decode(&commit); err != nil {
			// The frame checksum passed, so this is a version skew or
			// encoder bug, not disk corruption; skip rather than refuse
			// to start, and surface it in the counters.
			ds.replaySkipped.Add(1)
			continue
		}
		ds.replayCommit(commit)
	}
	// LSNs must never repeat across a compaction that emptied the log.
	lg.EnsureLSN(walSeq)

	store.attachLogger(ds, ds.logDrop)
	return ds, nil
}

// replayCommit re-applies one decoded WAL record leniently: replay after
// a fuzzy checkpoint may meet records whose effects the snapshot already
// holds, so inserts overwrite, updates and deletes of missing documents
// are skipped (and counted), and index creation is idempotent.
func (ds *DurableStore) replayCommit(commit walCommit) {
	if len(commit.Ops) == 1 && commit.Ops[0].Kind == txnDropCollection {
		ds.Store.Drop(commit.Collection)
		ds.replayedTxns.Add(1)
		return
	}
	c := ds.Store.Collection(commit.Collection)
	for _, op := range commit.Ops {
		switch op.Kind {
		case TxnAdd, TxnUpdate, TxnDelete:
			if !c.replayOp(op) {
				ds.replaySkipped.Add(1)
			}
		case txnCreateHashIndex:
			if err := c.CreateHashIndex(op.ID); err != nil {
				ds.replaySkipped.Add(1)
			}
		case txnCreateOrderedIndex:
			if err := c.CreateOrderedIndex(op.ID); err != nil {
				ds.replaySkipped.Add(1)
			}
		default:
			ds.replaySkipped.Add(1)
		}
	}
	c.ensureNextID(commit.NextID)
	ds.replayedTxns.Add(1)
}

// logTxn implements commitLogger: it gob-encodes the commit, appends it
// as one WAL record under the checkpoint fence, and hands the caller the
// fence release to run after the in-memory apply.
func (ds *DurableStore) logTxn(rec *walCommit) (func(), error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("docstore: encoding wal commit: %w", err)
	}
	ds.ckptMu.RLock()
	if _, err := ds.log.Append(buf.Bytes()); err != nil {
		ds.ckptMu.RUnlock()
		return nil, err
	}
	return ds.ckptMu.RUnlock, nil
}

// logDrop records a collection drop. Store.Drop has no error surface, so
// a failed append is swallowed: the drop applies in memory and merely
// might resurrect on replay — the lenient, documented failure mode.
func (ds *DurableStore) logDrop(name string) {
	rec := walCommit{Collection: name, Ops: []TxnOp{{Kind: txnDropCollection}}}
	if release, err := ds.logTxn(&rec); err == nil {
		release()
	}
}

// Compact folds everything the WAL holds into a fresh snapshot and
// deletes the superseded segments, bounding both replay time and disk
// growth. Writers keep committing during the snapshot scan; only the
// rotation instant excludes them. Safe to call concurrently (calls
// serialize) and at any time.
func (ds *DurableStore) Compact() error {
	ds.compactMu.Lock()
	defer ds.compactMu.Unlock()

	ds.ckptMu.Lock()
	gen, err := ds.log.Rotate()
	cut := ds.log.LastLSN()
	ds.ckptMu.Unlock()
	if err != nil {
		return fmt.Errorf("docstore: compact rotate: %w", err)
	}

	// The scan is fuzzy: commits with LSN > cut may or may not be
	// captured. Either way is correct — they live in generation ≥ gen,
	// which survives the GC below, and replay re-applies them leniently
	// and idempotently over the snapshot.
	if err := ds.Store.saveSnapshotFS(ds.fs, ds.snapPath, cut); err != nil {
		return err
	}
	// Make the snapshot's rename durable before deleting the segments it
	// supersedes; without the barrier the disk could persist the unlinks
	// but not the rename, losing committed data.
	if err := ds.fs.SyncDir(ds.dir); err != nil {
		return fmt.Errorf("docstore: compact sync dir: %w", err)
	}
	if _, err := ds.log.RemoveSegmentsBefore(gen); err != nil {
		return err
	}
	ds.compactions.Add(1)
	return nil
}

// WalStats returns a copy of the durability counters.
func (ds *DurableStore) WalStats() WalStats {
	ls := ds.log.Stats()
	return WalStats{
		Enabled:          true,
		Policy:           ds.log.Policy().String(),
		Appends:          ls.Appends,
		AppendedBytes:    ls.AppendedBytes,
		Syncs:            ls.Syncs,
		Replays:          ls.Replays,
		ReplayedRecords:  ls.ReplayedRecords,
		ReplayedTxns:     ds.replayedTxns.Load(),
		ReplaySkippedOps: ds.replaySkipped.Load(),
		TornTruncations:  ls.TornTruncations,
		CorruptRecords:   ls.CorruptRecords,
		Rotations:        ls.Rotations,
		Compactions:      ds.compactions.Load(),
		SegmentsRemoved:  ls.SegmentsRemoved,
	}
}

// Close fsyncs outstanding WAL writes and closes the log. The store
// remains readable; further writes fail. Daemons wanting a fast next
// startup call Compact first.
func (ds *DurableStore) Close() error {
	return ds.log.Close()
}

// Abort drops the store without flushing — the simulated-crash path used
// by recovery tests. Buffered, unsynced WAL bytes are abandoned exactly
// as a dying process would abandon them.
func (ds *DurableStore) Abort() {
	ds.log.Abort()
}

// Dir returns the durable directory.
func (ds *DurableStore) Dir() string { return ds.dir }

// replayOp applies one document op leniently and reports whether it had
// effect. Used only during replay (single-goroutine, store not yet
// shared), but it still takes the shard locks it needs.
func (c *Collection) replayOp(op TxnOp) bool {
	s := c.shardFor(op.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	switch op.Kind {
	case TxnAdd:
		if old, ok := s.docs[op.ID]; ok {
			s.unindexDocLocked(old)
		}
		d := &Doc{ID: op.ID, F: op.F}
		s.docs[op.ID] = d
		if err := s.indexDocLocked(c.name, d); err != nil {
			s.unindexDocLocked(d)
			delete(s.docs, op.ID)
			return false
		}
		return true
	case TxnUpdate:
		old, ok := s.docs[op.ID]
		if !ok {
			return false
		}
		merged := &Doc{ID: op.ID, F: cloneFields(old.F)}
		for k, v := range op.F {
			merged.F[k] = v
		}
		s.unindexDocLocked(old)
		s.docs[op.ID] = merged
		if err := s.indexDocLocked(c.name, merged); err != nil {
			s.unindexDocLocked(merged)
			s.docs[op.ID] = old
			s.indexDocLocked(c.name, old)
			return false
		}
		return true
	case TxnDelete:
		d, ok := s.docs[op.ID]
		if !ok {
			return false
		}
		s.unindexDocLocked(d)
		delete(s.docs, op.ID)
		return true
	}
	return false
}

// ensureNextID raises the ID sequence to at least n so replayed commits
// never cause a future generated ID to collide with a recovered one.
func (c *Collection) ensureNextID(n uint64) {
	for {
		cur := c.nextID.Load()
		if cur >= n || c.nextID.CompareAndSwap(cur, n) {
			return
		}
	}
}
