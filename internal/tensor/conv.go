package tensor

import "fmt"

// ConvDims describes a 2-D convolution geometry over NCHW tensors.
type ConvDims struct {
	InC, InH, InW int // input channels, height, width
	KH, KW        int // kernel height, width
	Stride        int // common stride for both axes (>= 1)
	Pad           int // symmetric zero padding
}

// OutH returns the output height for the geometry.
func (c ConvDims) OutH() int { return (c.InH+2*c.Pad-c.KH)/c.Stride + 1 }

// OutW returns the output width for the geometry.
func (c ConvDims) OutW() int { return (c.InW+2*c.Pad-c.KW)/c.Stride + 1 }

// Validate panics if the geometry is degenerate.
func (c ConvDims) Validate() {
	if c.Stride < 1 {
		panic(fmt.Sprintf("tensor: conv stride %d < 1", c.Stride))
	}
	if c.OutH() <= 0 || c.OutW() <= 0 {
		panic(fmt.Sprintf("tensor: conv geometry %+v yields non-positive output", c))
	}
}

// Im2Col unrolls one image (C×H×W, flat) into a (C*KH*KW) × (OutH*OutW)
// column matrix so convolution becomes a matrix multiply. The result is
// written into cols, which must have length C*KH*KW*OutH*OutW.
func Im2Col(img []float64, d ConvDims, cols []float64) {
	outH, outW := d.OutH(), d.OutW()
	ncol := outH * outW
	idx := 0
	for c := 0; c < d.InC; c++ {
		chOff := c * d.InH * d.InW
		for kh := 0; kh < d.KH; kh++ {
			for kw := 0; kw < d.KW; kw++ {
				for oh := 0; oh < outH; oh++ {
					ih := oh*d.Stride + kh - d.Pad
					base := chOff + ih*d.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*d.Stride + kw - d.Pad
						if ih < 0 || ih >= d.InH || iw < 0 || iw >= d.InW {
							cols[idx] = 0
						} else {
							cols[idx] = img[base+iw]
						}
						idx++
					}
				}
			}
		}
	}
	_ = ncol
}

// Col2Im scatters a column matrix gradient back into an image gradient,
// accumulating overlapping contributions. img must have length C*H*W and is
// accumulated into (callers zero it first).
func Col2Im(cols []float64, d ConvDims, img []float64) {
	outH, outW := d.OutH(), d.OutW()
	idx := 0
	for c := 0; c < d.InC; c++ {
		chOff := c * d.InH * d.InW
		for kh := 0; kh < d.KH; kh++ {
			for kw := 0; kw < d.KW; kw++ {
				for oh := 0; oh < outH; oh++ {
					ih := oh*d.Stride + kh - d.Pad
					base := chOff + ih*d.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*d.Stride + kw - d.Pad
						if ih >= 0 && ih < d.InH && iw >= 0 && iw < d.InW {
							img[base+iw] += cols[idx]
						}
						idx++
					}
				}
			}
		}
	}
}
