package tensor

import (
	"runtime"
	"sync"
)

// minParallelWork is the smallest iteration count worth fanning out across
// goroutines; below it, the scheduling overhead dominates.
const minParallelWork = 64

// ParallelFor splits [0, n) into contiguous blocks and runs body(lo, hi) on
// each block, using up to GOMAXPROCS goroutines. body must be safe to run
// concurrently on disjoint ranges. Small n runs inline on the caller.
func ParallelFor(n int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < minParallelWork || workers <= 1 {
		body(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelMap runs f(i) for every i in [0, n) across a bounded worker pool
// and reports results via out, which must have length n.
func ParallelMap(n int, out []float64, f func(i int) float64) {
	ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f(i)
		}
	})
}
