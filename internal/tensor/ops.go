package tensor

import (
	"fmt"
	"math"
)

// binaryCheck panics unless a and b share a shape.
func binaryCheck(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// Add returns a + b element-wise.
func Add(a, b *Tensor) *Tensor {
	binaryCheck("Add", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// Sub returns a - b element-wise.
func Sub(a, b *Tensor) *Tensor {
	binaryCheck("Sub", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Mul returns a * b element-wise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	binaryCheck("Mul", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// AddInPlace accumulates b into a and returns a.
func AddInPlace(a, b *Tensor) *Tensor {
	binaryCheck("AddInPlace", a, b)
	for i := range a.data {
		a.data[i] += b.data[i]
	}
	return a
}

// AxpyInPlace computes a += alpha*b and returns a.
func AxpyInPlace(a *Tensor, alpha float64, b *Tensor) *Tensor {
	binaryCheck("AxpyInPlace", a, b)
	for i := range a.data {
		a.data[i] += alpha * b.data[i]
	}
	return a
}

// Scale returns alpha * a.
func Scale(a *Tensor, alpha float64) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = alpha * a.data[i]
	}
	return out
}

// ScaleInPlace multiplies every element by alpha and returns a.
func ScaleInPlace(a *Tensor, alpha float64) *Tensor {
	for i := range a.data {
		a.data[i] *= alpha
	}
	return a
}

// Apply returns f applied element-wise.
func Apply(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i])
	}
	return out
}

// ApplyInPlace applies f element-wise in place and returns a.
func ApplyInPlace(a *Tensor, f func(float64) float64) *Tensor {
	for i := range a.data {
		a.data[i] = f(a.data[i])
	}
	return a
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element and its flat index.
// It panics on an empty tensor.
func (t *Tensor) Max() (float64, int) {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	best, at := t.data[0], 0
	for i, v := range t.data {
		if v > best {
			best, at = v, i
		}
	}
	return best, at
}

// Min returns the minimum element and its flat index.
// It panics on an empty tensor.
func (t *Tensor) Min() (float64, int) {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	best, at := t.data[0], 0
	for i, v := range t.data {
		if v < best {
			best, at = v, i
		}
	}
	return best, at
}

// Dot returns the inner product of two equal-shape tensors.
func Dot(a, b *Tensor) float64 {
	binaryCheck("Dot", a, b)
	s := 0.0
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s
}

// Norm2 returns the Euclidean (Frobenius) norm.
func (t *Tensor) Norm2() float64 {
	return math.Sqrt(Dot(t, t))
}

// MatMul returns the matrix product of two 2-D tensors, a (m×k) by b (k×n).
// The inner loops run in parallel across row blocks.
func MatMul(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D operands, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	ParallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*n : (i+1)*n : (i+1)*n]
			// Four b-rows per pass over orow: the accumulator row is read
			// and written once per four inner products instead of once per
			// one, which is the dominant memory traffic of the ikj order.
			p := 0
			for ; p+3 < k; p += 4 {
				av0, av1, av2, av3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
				b0 := b.data[p*n : (p+1)*n : (p+1)*n]
				b1 := b.data[(p+1)*n : (p+2)*n : (p+2)*n]
				b2 := b.data[(p+2)*n : (p+3)*n : (p+3)*n]
				b3 := b.data[(p+3)*n : (p+4)*n : (p+4)*n]
				if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
					continue
				}
				for j := range orow {
					orow[j] += av0*b0[j] + av1*b1[j] + av2*b2[j] + av3*b3[j]
				}
			}
			for ; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b.data[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MatMulTransB returns a × bᵀ for 2-D a (m×k) and b (n×k).
// It avoids materializing the transpose.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB needs 2-D operands, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v × %vᵀ", a.shape, b.shape))
	}
	out := New(m, n)
	ParallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.data[j*k : (j+1)*k]
				s := 0.0
				for p := range arow {
					s += arow[p] * brow[p]
				}
				orow[j] = s
			}
		}
	})
	return out
}

// MatMulTransA returns aᵀ × b for 2-D a (k×m) and b (k×n).
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA needs 2-D operands, got %vᵀ × %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ × %v", a.shape, b.shape))
	}
	out := New(m, n)
	ParallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a.data[p*m+i]
				if av == 0 {
					continue
				}
				brow := b.data[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.NDim() != 2 {
		panic(fmt.Sprintf("tensor: Transpose on %d-dimensional tensor", a.NDim()))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// AddRowVector adds a length-n vector to every row of an m×n matrix.
func AddRowVector(a, v *Tensor) *Tensor {
	if a.NDim() != 2 || v.Len() != a.shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVector shape mismatch %v + %v", a.shape, v.shape))
	}
	out := New(a.shape...)
	n := a.shape[1]
	for i := 0; i < a.shape[0]; i++ {
		row := a.data[i*n : (i+1)*n]
		orow := out.data[i*n : (i+1)*n]
		for j := range row {
			orow[j] = row[j] + v.data[j]
		}
	}
	return out
}

// AddRowVectorInPlace adds v to every row of a, mutating and returning a.
// For callers that own a freshly computed a (e.g. a MatMul result), this
// avoids materializing a second (rows × cols) tensor on the hot path.
func AddRowVectorInPlace(a, v *Tensor) *Tensor {
	if a.NDim() != 2 || v.Len() != a.shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVectorInPlace shape mismatch %v + %v", a.shape, v.shape))
	}
	n := a.shape[1]
	for i := 0; i < a.shape[0]; i++ {
		row := a.data[i*n : (i+1)*n]
		for j := range row {
			row[j] += v.data[j]
		}
	}
	return a
}

// SumRows returns the column-wise sums of an m×n matrix as a length-n tensor.
func SumRows(a *Tensor) *Tensor {
	if a.NDim() != 2 {
		panic("tensor: SumRows needs a 2-D tensor")
	}
	n := a.shape[1]
	out := New(n)
	for i := 0; i < a.shape[0]; i++ {
		row := a.data[i*n : (i+1)*n]
		for j := range row {
			out.data[j] += row[j]
		}
	}
	return out
}

// SquaredDistance returns the squared Euclidean distance between two
// equal-length float64 slices. It is the hot inner loop of k-means.
func SquaredDistance(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
