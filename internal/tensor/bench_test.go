package tensor

import (
	"math/rand"
	"testing"
)

func benchMatMul(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, n, n)
	y := Randn(rng, 1, n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
	b.SetBytes(int64(8 * n * n))
}

func BenchmarkMatMul64(b *testing.B)  { benchMatMul(b, 64) }
func BenchmarkMatMul256(b *testing.B) { benchMatMul(b, 256) }

func BenchmarkMatMulTransB128(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := Randn(rng, 1, 128, 128)
	y := Randn(rng, 1, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransB(x, y)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	d := ConvDims{InC: 8, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	img := make([]float64, d.InC*d.InH*d.InW)
	cols := make([]float64, d.InC*d.KH*d.KW*d.OutH()*d.OutW())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(img, d, cols)
	}
}

func BenchmarkSquaredDistance(b *testing.B) {
	x := make([]float64, 128)
	y := make([]float64, 128)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i) * 1.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SquaredDistance(x, y)
	}
}

func BenchmarkParallelFor(b *testing.B) {
	out := make([]float64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelFor(len(out), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				out[j] = float64(j) * 1.0001
			}
		})
	}
}
