package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	a := New(2, 3)
	if a.Len() != 6 {
		t.Fatalf("Len = %d, want 6", a.Len())
	}
	for i, v := range a.Data() {
		if v != 0 {
			t.Fatalf("element %d = %g, want 0", i, v)
		}
	}
}

func TestNewNegativeDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched length")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(3, 4)
	a.Set(7.5, 2, 1)
	if got := a.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %g, want 7.5", got)
	}
	if got := a.Data()[2*4+1]; got != 7.5 {
		t.Fatalf("flat layout wrong: got %g at offset 9", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	a.At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(99, 0, 1)
	if a.At(0, 1) != 99 {
		t.Fatal("Reshape must share backing data")
	}
}

func TestReshapeInferred(t *testing.T) {
	a := New(4, 6)
	b := a.Reshape(2, -1)
	if b.Dim(1) != 12 {
		t.Fatalf("inferred dim = %d, want 12", b.Dim(1))
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	a := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reshaping 6 elements to 4")
		}
	}()
	a.Reshape(2, 2)
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Set(5, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone must not share data")
	}
}

func TestRowSharesStorage(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	r := a.Row(1)
	r[0] = 42
	if a.At(1, 0) != 42 {
		t.Fatal("Row must alias tensor storage")
	}
}

func TestAddSubMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	if got := Add(a, b).Data(); got[2] != 33 {
		t.Fatalf("Add wrong: %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 9 {
		t.Fatalf("Sub wrong: %v", got)
	}
	if got := Mul(a, b).Data(); got[1] != 40 {
		t.Fatalf("Mul wrong: %v", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	Add(New(2), New(3))
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{19, 22, 43, 50}, 2, 2)
	if !AllClose(got, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 5, 5)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(1, i, i)
	}
	if !AllClose(MatMul(a, id), a, 1e-12) {
		t.Fatal("A × I must equal A")
	}
}

func TestMatMulTransBMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 1, 4, 7)
	b := Randn(rng, 1, 3, 7)
	got := MatMulTransB(a, b)
	want := MatMul(a, Transpose(b))
	if !AllClose(got, want, 1e-10) {
		t.Fatal("MatMulTransB disagrees with explicit transpose")
	}
}

func TestMatMulTransAMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 1, 7, 4)
	b := Randn(rng, 1, 7, 3)
	got := MatMulTransA(a, b)
	want := MatMul(Transpose(a), b)
	if !AllClose(got, want, 1e-10) {
		t.Fatal("MatMulTransA disagrees with explicit transpose")
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Large enough to trigger the parallel path; verify against a naive
	// serial triple loop.
	rng := rand.New(rand.NewSource(4))
	m, k, n := 70, 33, 41
	a := Randn(rng, 1, m, k)
	b := Randn(rng, 1, k, n)
	got := MatMul(a, b)
	want := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			want.Set(s, i, j)
		}
	}
	if !AllClose(got, want, 1e-9) {
		t.Fatal("parallel MatMul disagrees with naive serial product")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Randn(rng, 1, 3, 8)
	if !AllClose(Transpose(Transpose(a)), a, 0) {
		t.Fatal("transpose of transpose must be identity")
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{3, -1, 4, 1}, 4)
	if a.Sum() != 7 {
		t.Fatalf("Sum = %g", a.Sum())
	}
	if a.Mean() != 1.75 {
		t.Fatalf("Mean = %g", a.Mean())
	}
	if v, i := a.Max(); v != 4 || i != 2 {
		t.Fatalf("Max = %g@%d", v, i)
	}
	if v, i := a.Min(); v != -1 || i != 1 {
		t.Fatalf("Min = %g@%d", v, i)
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float64{10, 20}, 2)
	got := AddRowVector(a, v)
	want := FromSlice([]float64{11, 22, 13, 24}, 2, 2)
	if !AllClose(got, want, 0) {
		t.Fatalf("AddRowVector = %v", got)
	}
	s := SumRows(a)
	if s.At(0) != 4 || s.At(1) != 6 {
		t.Fatalf("SumRows = %v", s)
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// A 1×1 kernel with stride 1 and no padding must reproduce the image.
	img := []float64{1, 2, 3, 4}
	d := ConvDims{InC: 1, InH: 2, InW: 2, KH: 1, KW: 1, Stride: 1}
	d.Validate()
	cols := make([]float64, 4)
	Im2Col(img, d, cols)
	for i := range img {
		if cols[i] != img[i] {
			t.Fatalf("cols = %v, want %v", cols, img)
		}
	}
}

func TestIm2ColPaddingZeroes(t *testing.T) {
	img := []float64{1}
	d := ConvDims{InC: 1, InH: 1, InW: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
	d.Validate()
	cols := make([]float64, 9)
	Im2Col(img, d, cols)
	// Only the center tap sees the pixel; the rest are zero padding.
	sum := 0.0
	for _, v := range cols {
		sum += v
	}
	if sum != 1 || cols[4] != 1 {
		t.Fatalf("cols = %v, want single 1 at center", cols)
	}
}

func TestCol2ImRoundTripAdjoint(t *testing.T) {
	// <Im2Col(x), y> must equal <x, Col2Im(y)> — the two are adjoint maps.
	rng := rand.New(rand.NewSource(6))
	d := ConvDims{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 2, Pad: 1}
	d.Validate()
	nimg := d.InC * d.InH * d.InW
	ncols := d.InC * d.KH * d.KW * d.OutH() * d.OutW()
	x := make([]float64, nimg)
	y := make([]float64, ncols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	cx := make([]float64, ncols)
	Im2Col(x, d, cx)
	lhs := 0.0
	for i := range cx {
		lhs += cx[i] * y[i]
	}
	gx := make([]float64, nimg)
	Col2Im(y, d, gx)
	rhs := 0.0
	for i := range gx {
		rhs += gx[i] * x[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint identity violated: %g vs %g", lhs, rhs)
	}
}

func TestParallelForCoversRangeOnce(t *testing.T) {
	n := 1000
	hits := make([]int32, n)
	ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestParallelForSmallRunsInline(t *testing.T) {
	count := 0
	ParallelFor(3, func(lo, hi int) { count += hi - lo })
	if count != 3 {
		t.Fatalf("covered %d of 3", count)
	}
}

// Property: vector addition is commutative and associative within tolerance.
func TestQuickAddCommutative(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		a := FromSlice(append([]float64(nil), xs[:n]...), n)
		b := FromSlice(append([]float64(nil), ys[:n]...), n)
		return AllClose(Add(a, b), Add(b, a), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot(a,a) >= 0 and equals Norm2 squared.
func TestQuickDotPositiveSemidefinite(t *testing.T) {
	f := func(xs []float64) bool {
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological float inputs
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := FromSlice(append([]float64(nil), xs...), len(xs))
		d := Dot(a, a)
		n := a.Norm2()
		return d >= 0 && math.Abs(d-n*n) <= 1e-6*(1+d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random small matrices.
func TestQuickMatMulTransposeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(mSeed, nSeed, kSeed uint8) bool {
		m := int(mSeed%5) + 1
		n := int(nSeed%5) + 1
		k := int(kSeed%5) + 1
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return AllClose(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSquaredDistance(t *testing.T) {
	if d := SquaredDistance([]float64{0, 3}, []float64{4, 0}); d != 25 {
		t.Fatalf("SquaredDistance = %g, want 25", d)
	}
}
