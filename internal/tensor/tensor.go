// Package tensor implements dense, row-major float64 tensors with the small
// set of parallel linear-algebra operations the fairDMS neural-network and
// clustering substrates need: element-wise arithmetic, matrix multiplication,
// im2col-based convolution support, reductions, and shape manipulation.
//
// Tensors are deliberately simple: a shape vector and a flat backing slice.
// Operations that cannot fail return tensors; shape violations are programmer
// errors and panic with a descriptive message (they indicate a bug in the
// calling model code, not a runtime condition to handle).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense, row-major array of float64 values.
// The zero value is an empty tensor; use New or the constructors below.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape.
// A tensor with no dimensions holds a single scalar element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Randn returns a tensor with elements drawn from N(0, stddev²) using rng.
func Randn(rng *rand.Rand, stddev float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * stddev
	}
	return t
}

// RandUniform returns a tensor with elements drawn uniformly from [lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// Shape returns the tensor's dimensions. The caller must not modify it.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the flat backing slice in row-major order.
// Mutations are visible to the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NDim returns the number of dimensions.
func (t *Tensor) NDim() int { return len(t.shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float64, len(t.data))
	copy(d, t.data)
	return &Tensor{shape: append([]int(nil), t.shape...), data: d}
}

// Reshape returns a tensor sharing t's data with a new shape of equal element
// count. One dimension may be -1, which is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	n := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape with more than one inferred dimension")
			}
			infer = i
			continue
		}
		n *= d
	}
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.data) / n
		n *= shape[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: shape, data: t.data}
}

// index converts multi-dimensional indices to a flat offset.
func (t *Tensor) index(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-dimensional tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.index(idx...)] }

// Set stores v at the given indices.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.index(idx...)] = v }

// Row returns row i of a 2-D tensor as a slice sharing t's storage.
func (t *Tensor) Row(i int) []float64 {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on %d-dimensional tensor", len(t.shape)))
	}
	c := t.shape[1]
	return t.data[i*c : (i+1)*c]
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large tensors as a summary.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g %g ... %g] n=%d", t.data[0], t.data[1], t.data[2], t.data[len(t.data)-1], len(t.data))
	}
	return b.String()
}

// AllClose reports whether every pair of elements differs by at most tol.
func AllClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}
