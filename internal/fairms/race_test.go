package fairms

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"fairdms/internal/stats"
)

// TestZooConcurrentUse hammers one zoo with concurrent Add, Recommend,
// Rank, Get, IDs, and Save callers. The zoo is documented as safe for
// concurrent use; under -race this test is what holds it to that.
func TestZooConcurrentUse(t *testing.T) {
	z := NewZoo()
	if err := z.Add("seed", dummyState(0), stats.PDF{0.5, 0.5}, nil); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	query := stats.PDF{0.6, 0.4}

	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0:
					pdf := stats.PDF{float64(i%10+1) / 20, 1 - float64(i%10+1)/20}
					id := fmt.Sprintf("w%d-i%d", w, i)
					if err := z.Add(id, dummyState(int64(w*1000+i)), pdf, map[string]string{"w": fmt.Sprint(w)}); err != nil {
						errs <- err
					}
				case 1:
					if _, err := z.Recommend(query); err != nil {
						errs <- err
					}
				case 2:
					ranked, err := z.Rank(query)
					if err != nil {
						errs <- err
					}
					for j := 1; j < len(ranked); j++ {
						if ranked[j].JSD < ranked[j-1].JSD {
							errs <- fmt.Errorf("rank order broken under concurrency")
						}
					}
				case 3:
					for _, id := range z.IDs() {
						if _, err := z.Get(id); err != nil {
							errs <- err
						}
					}
				case 4:
					// Per-worker path: Save itself must tolerate concurrent
					// mutation; distinct paths keep the tmp+rename dance of
					// different workers from interleaving on one file.
					if err := z.Save(filepath.Join(dir, fmt.Sprintf("zoo-%d.gob", w))); err != nil {
						errs <- err
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every successful Add is visible and every saved snapshot loads.
	want := 1 + workers*(iters/5) // seed + each worker's case-0 adds (i = 0,5,10,15,20 → 5 per worker)
	if z.Len() != want {
		t.Fatalf("zoo holds %d records, want %d", z.Len(), want)
	}
	for w := 0; w < workers; w++ {
		loaded, err := LoadZoo(filepath.Join(dir, fmt.Sprintf("zoo-%d.gob", w)))
		if err != nil {
			t.Fatalf("snapshot from worker %d: %v", w, err)
		}
		if loaded.Len() == 0 {
			t.Fatalf("worker %d snapshot is empty", w)
		}
	}
}
