package fairms

import (
	"os"
	"path/filepath"
	"testing"

	"fairdms/internal/stats"
)

// TestLoadRejectsTruncatedSnapshot corrupts a saved zoo by truncation and
// checks that LoadZoo fails cleanly — and leaves the file on disk exactly
// as found rather than clobbering it.
func TestLoadRejectsTruncatedSnapshot(t *testing.T) {
	z := NewZoo()
	if err := z.Add("m1", dummyState(1), stats.PDF{0.25, 0.75}, nil); err != nil {
		t.Fatal(err)
	}
	if err := z.Add("m2", dummyState(2), stats.PDF{0.5, 0.5}, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "zoo.gob")
	if err := z.Save(path); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int{1, len(full) / 2, len(full) - 1} {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadZoo(path); err == nil {
			t.Fatalf("truncated snapshot (%d of %d bytes) loaded without error", cut, len(full))
		}
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(after) != cut {
			t.Fatal("failed load modified the snapshot file")
		}
	}

	// Garbage bytes are rejected too.
	if err := os.WriteFile(path, []byte("not a gob stream at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadZoo(path); err == nil {
		t.Fatal("garbage snapshot loaded without error")
	}
}

// TestSaveIsAtomicOverExistingSnapshot checks the tmp+rename discipline:
// saving over an existing snapshot never leaves a temp file behind, and the
// result is a complete, loadable snapshot of the new state.
func TestSaveIsAtomicOverExistingSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "zoo.gob")

	z := NewZoo()
	if err := z.Add("m1", dummyState(1), stats.PDF{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := z.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := z.Add("m2", dummyState(2), stats.PDF{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := z.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after save")
	}
	loaded, err := LoadZoo(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d records, want 2", loaded.Len())
	}
}

// TestSaveFailureLeavesOriginal points Save at a path whose temp file
// cannot be created and checks the existing snapshot survives.
func TestSaveFailureLeavesOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "zoo.gob")
	z := NewZoo()
	if err := z.Add("m1", dummyState(1), stats.PDF{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := z.Save(path); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A directory at the temp path blocks os.Create(path + ".tmp").
	if err := os.Mkdir(path+".tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := z.Save(path); err == nil {
		t.Fatal("expected save failure when temp path is unavailable")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(orig) {
		t.Fatal("failed save modified the existing snapshot")
	}
}

// TestLoadRejectsInvalidRecords feeds structurally decodable but invalid
// snapshots through the save path by constructing them directly.
func TestLoadRejectsInvalidRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "zoo.gob")

	// A record with an invalid PDF (sums to 1.4) must be rejected.
	z := NewZoo()
	z.records["bad"] = &Record{ID: "bad", State: dummyState(1), TrainPDF: stats.PDF{0.7, 0.7}}
	z.order = append(z.order, "bad")
	if err := z.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadZoo(path); err == nil {
		t.Fatal("snapshot with invalid PDF loaded without error")
	}

	// A record with no weights must be rejected.
	z = NewZoo()
	z.records["hollow"] = &Record{ID: "hollow", State: nil, TrainPDF: stats.PDF{1}}
	z.order = append(z.order, "hollow")
	if err := z.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadZoo(path); err == nil {
		t.Fatal("snapshot with nil state loaded without error")
	}
}
