package fairms

import (
	"encoding/gob"
	"io"
)

func encodeGob(w io.Writer, v any) error { return gob.NewEncoder(w).Encode(v) }

func decodeGob(r io.Reader, v any) error { return gob.NewDecoder(r).Decode(v) }
