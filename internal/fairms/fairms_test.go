package fairms

import (
	"math/rand"
	"path/filepath"
	"testing"

	"fairdms/internal/nn"
	"fairdms/internal/stats"
)

func dummyState(seed int64) *nn.StateDict {
	rng := rand.New(rand.NewSource(seed))
	return nn.Sequential(nn.NewLinear(rng, 2, 2)).State()
}

func TestAddValidations(t *testing.T) {
	z := NewZoo()
	good := stats.PDF{0.5, 0.5}
	if err := z.Add("", dummyState(1), good, nil); err == nil {
		t.Fatal("expected error for empty id")
	}
	if err := z.Add("m", nil, good, nil); err == nil {
		t.Fatal("expected error for nil state")
	}
	if err := z.Add("m", dummyState(1), stats.PDF{0.7, 0.7}, nil); err == nil {
		t.Fatal("expected error for invalid PDF")
	}
	if err := z.Add("m", dummyState(1), good, nil); err != nil {
		t.Fatal(err)
	}
	if err := z.Add("m", dummyState(2), good, nil); err == nil {
		t.Fatal("expected duplicate-id error")
	}
	if z.Len() != 1 {
		t.Fatalf("Len = %d", z.Len())
	}
}

func TestAddCopiesPDF(t *testing.T) {
	z := NewZoo()
	pdf := stats.PDF{1, 0}
	if err := z.Add("m", dummyState(1), pdf, nil); err != nil {
		t.Fatal(err)
	}
	pdf[0] = 0.25 // caller mutation must not corrupt the zoo
	r, err := z.Get("m")
	if err != nil {
		t.Fatal(err)
	}
	if r.TrainPDF[0] != 1 {
		t.Fatal("zoo stored an aliased PDF")
	}
}

func TestRankOrdersByJSD(t *testing.T) {
	z := NewZoo()
	z.Add("exact", dummyState(1), stats.PDF{0.6, 0.4}, nil)
	z.Add("close", dummyState(2), stats.PDF{0.5, 0.5}, nil)
	z.Add("far", dummyState(3), stats.PDF{0.02, 0.98}, nil)

	ranked, err := z.Rank(stats.PDF{0.6, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked %d", len(ranked))
	}
	if ranked[0].Record.ID != "exact" || ranked[2].Record.ID != "far" {
		t.Fatalf("order: %s, %s, %s", ranked[0].Record.ID, ranked[1].Record.ID, ranked[2].Record.ID)
	}
	if ranked[0].JSD != 0 {
		t.Fatalf("exact match JSD = %g", ranked[0].JSD)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].JSD < ranked[i-1].JSD {
			t.Fatal("ranking not ascending")
		}
	}
}

func TestRankSkipsIncompatiblePDFLengths(t *testing.T) {
	z := NewZoo()
	z.Add("old-gen", dummyState(1), stats.PDF{0.5, 0.3, 0.2}, nil)
	z.Add("new-gen", dummyState(2), stats.PDF{0.5, 0.5}, nil)
	ranked, err := z.Rank(stats.PDF{0.4, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 1 || ranked[0].Record.ID != "new-gen" {
		t.Fatalf("ranked = %v", ranked)
	}
}

func TestRankRejectsInvalidQuery(t *testing.T) {
	z := NewZoo()
	if _, err := z.Rank(stats.PDF{2, 3}); err == nil {
		t.Fatal("expected error for invalid query PDF")
	}
}

func TestRecommendEmptyZoo(t *testing.T) {
	z := NewZoo()
	if _, err := z.Recommend(stats.PDF{1}); err == nil {
		t.Fatal("expected error for empty zoo")
	}
}

func TestRecommendWithThreshold(t *testing.T) {
	z := NewZoo()
	z.Add("far", dummyState(1), stats.PDF{0.02, 0.98}, nil)
	// Query nearly disjoint from the only model.
	if _, ok := z.RecommendWithThreshold(stats.PDF{0.98, 0.02}, 0.1); ok {
		t.Fatal("threshold should have rejected the distant model")
	}
	z.Add("near", dummyState(2), stats.PDF{0.9, 0.1}, nil)
	rec, ok := z.RecommendWithThreshold(stats.PDF{0.98, 0.02}, 0.1)
	if !ok || rec.Record.ID != "near" {
		t.Fatalf("rec = %+v ok = %v", rec, ok)
	}
}

func TestBestMedianWorst(t *testing.T) {
	z := NewZoo()
	z.Add("a", dummyState(1), stats.PDF{0.5, 0.5}, nil)
	z.Add("b", dummyState(2), stats.PDF{0.7, 0.3}, nil)
	z.Add("c", dummyState(3), stats.PDF{0.05, 0.95}, nil)
	best, median, worst, err := z.BestMedianWorst(stats.PDF{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if best.Record.ID != "a" || worst.Record.ID != "c" {
		t.Fatalf("best=%s median=%s worst=%s", best.Record.ID, median.Record.ID, worst.Record.ID)
	}
	if best.JSD > median.JSD || median.JSD > worst.JSD {
		t.Fatal("B/M/W not ordered")
	}
	if _, _, _, err := NewZoo().BestMedianWorst(stats.PDF{1}); err == nil {
		t.Fatal("expected error for empty zoo")
	}
}

func TestMetaIsCopied(t *testing.T) {
	z := NewZoo()
	meta := map[string]string{"app": "braggnn"}
	z.Add("m", dummyState(1), stats.PDF{1}, meta)
	meta["app"] = "mutated"
	r, _ := z.Get("m")
	if r.Meta["app"] != "braggnn" {
		t.Fatal("zoo stored aliased metadata")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	z := NewZoo()
	z.Add("m1", dummyState(1), stats.PDF{0.25, 0.75}, map[string]string{"ds": "scan-5"})
	z.Add("m2", dummyState(2), stats.PDF{0.5, 0.5}, nil)

	path := filepath.Join(t.TempDir(), "zoo.gob")
	if err := z.Save(path); err != nil {
		t.Fatal(err)
	}
	z2, err := LoadZoo(path)
	if err != nil {
		t.Fatal(err)
	}
	if z2.Len() != 2 {
		t.Fatalf("loaded %d records", z2.Len())
	}
	ids := z2.IDs()
	if ids[0] != "m1" || ids[1] != "m2" {
		t.Fatalf("order lost: %v", ids)
	}
	r, err := z2.Get("m1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta["ds"] != "scan-5" || r.TrainPDF[1] != 0.75 {
		t.Fatalf("record corrupted: %+v", r)
	}
	// Weights survive the round trip: load them into a model.
	rng := rand.New(rand.NewSource(9))
	m := nn.Sequential(nn.NewLinear(rng, 2, 2))
	if err := m.LoadState(r.State); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadZoo(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("expected error")
	}
}
