// Package fairms implements the FAIR Model Service (paper Fig. 4, §II-B):
// a Model Zoo that indexes every trained checkpoint by the cluster PDF of
// its training dataset, and a Model Manager that ranks zoo entries against
// a new dataset's PDF by Jensen–Shannon divergence, recommending the
// closest model as the foundation for fine-tuning. A user-defined JSD
// threshold falls back to train-from-scratch when no historical model is
// close enough (§II-C).
package fairms

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"fairdms/internal/fsx"
	"fairdms/internal/nn"
	"fairdms/internal/stats"
)

// Reserved Meta keys written by the server-side trainer (internal/trainer)
// when it registers a checkpoint — the model-provenance lineage of the
// FAIR-for-HEDM follow-up. They travel inside Record.Meta, so any
// Save/Load round trip preserves them; the typed accessors on Record read
// them back.
const (
	// MetaParent is the zoo ID of the checkpoint this model was
	// warm-started from ("" / absent for a cold start).
	MetaParent = "parent"
	// MetaEpochs is the number of training epochs actually run, as a
	// decimal integer.
	MetaEpochs = "epochs"
	// MetaConvergedAt is the 1-based epoch whose validation loss first met
	// the target loss, as a decimal integer; absent when no target was set
	// or it was never reached.
	MetaConvergedAt = "converged_at"
	// MetaWarmStart is "true" when the model was fine-tuned from a parent
	// checkpoint and "false" for a from-scratch run.
	MetaWarmStart = "warm_start"
)

// Record is one zoo entry: a checkpoint plus the signature of the data it
// was trained on.
type Record struct {
	ID       string
	State    *nn.StateDict
	TrainPDF stats.PDF
	Meta     map[string]string
	AddedAt  time.Time
}

// Parent returns the zoo ID of the checkpoint this model was warm-started
// from, or "" for a cold start (or when no lineage was recorded).
func (r *Record) Parent() string { return r.Meta[MetaParent] }

// Epochs returns the recorded training epoch count; ok is false when the
// record carries no (or a malformed) epochs entry.
func (r *Record) Epochs() (n int, ok bool) { return r.metaInt(MetaEpochs) }

// ConvergedAt returns the recorded 1-based epoch at which validation loss
// first met the target; ok is false when the run never converged or no
// lineage was recorded.
func (r *Record) ConvergedAt() (epoch int, ok bool) { return r.metaInt(MetaConvergedAt) }

// WarmStarted reports whether the record is flagged as a warm start.
func (r *Record) WarmStarted() bool { return r.Meta[MetaWarmStart] == "true" }

func (r *Record) metaInt(key string) (int, bool) {
	v, present := r.Meta[key]
	if !present {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Ranked pairs a zoo record with its divergence from a query PDF.
type Ranked struct {
	Record *Record
	JSD    float64
}

// Zoo stores model records. Safe for concurrent use.
type Zoo struct {
	mu      sync.RWMutex
	records map[string]*Record // guarded by mu
	order   []string           // guarded by mu; insertion order for deterministic iteration
	clock   func() time.Time
}

// NewZoo returns an empty zoo.
func NewZoo() *Zoo {
	return &Zoo{records: make(map[string]*Record), clock: time.Now}
}

// ErrDuplicateID is wrapped by Add when the model ID is already taken,
// letting callers (e.g. a service front end mapping to HTTP 409) tell
// "already registered" apart from validation failures.
var ErrDuplicateID = errors.New("fairms: duplicate model id")

// Add registers a checkpoint under id with its training-data PDF. The PDF
// must be a valid distribution; duplicate IDs are rejected with an error
// wrapping ErrDuplicateID.
func (z *Zoo) Add(id string, state *nn.StateDict, trainPDF stats.PDF, meta map[string]string) error {
	if id == "" {
		return errors.New("fairms: empty model id")
	}
	if state == nil {
		return fmt.Errorf("fairms: model %q has nil state", id)
	}
	if err := trainPDF.Validate(); err != nil {
		return fmt.Errorf("fairms: model %q: %w", id, err)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	if _, dup := z.records[id]; dup {
		return fmt.Errorf("%w: model %q already in zoo", ErrDuplicateID, id)
	}
	m := make(map[string]string, len(meta))
	for k, v := range meta {
		m[k] = v
	}
	z.records[id] = &Record{
		ID: id, State: state,
		TrainPDF: append(stats.PDF(nil), trainPDF...),
		Meta:     m, AddedAt: z.clock(),
	}
	z.order = append(z.order, id)
	return nil
}

// Get returns the record with the given ID.
func (z *Zoo) Get(id string) (*Record, error) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	r, ok := z.records[id]
	if !ok {
		return nil, fmt.Errorf("fairms: model %q not in zoo", id)
	}
	return r, nil
}

// Len returns the number of stored models.
func (z *Zoo) Len() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return len(z.records)
}

// IDs returns model IDs in insertion order.
func (z *Zoo) IDs() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return append([]string(nil), z.order...)
}

// Rank scores every zoo model against the input PDF, ascending by JSD
// (best foundation first). Ties break by insertion order for determinism.
// PDFs of a different cluster count than the input are skipped: they were
// indexed under an incompatible clustering generation.
func (z *Zoo) Rank(input stats.PDF) ([]Ranked, error) {
	if err := input.Validate(); err != nil {
		return nil, fmt.Errorf("fairms: query PDF: %w", err)
	}
	z.mu.RLock()
	defer z.mu.RUnlock()
	var out []Ranked
	for _, id := range z.order {
		r := z.records[id]
		if len(r.TrainPDF) != len(input) {
			continue
		}
		out = append(out, Ranked{Record: r, JSD: stats.JSDivergence(input, r.TrainPDF)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].JSD < out[j].JSD })
	return out, nil
}

// Recommend returns the best foundation model for the input PDF, or an
// error if the zoo holds no compatible models.
func (z *Zoo) Recommend(input stats.PDF) (*Ranked, error) {
	ranked, err := z.Rank(input)
	if err != nil {
		return nil, err
	}
	if len(ranked) == 0 {
		return nil, errors.New("fairms: no compatible models in zoo")
	}
	best := ranked[0]
	return &best, nil
}

// RecommendWithThreshold applies the paper's distance threshold: it returns
// (recommendation, true) when the best model's JSD is within maxJSD, and
// (nil, false) when the caller should train from scratch instead.
func (z *Zoo) RecommendWithThreshold(input stats.PDF, maxJSD float64) (*Ranked, bool) {
	best, err := z.Recommend(input)
	if err != nil || best.JSD > maxJSD {
		return nil, false
	}
	return best, true
}

// BestMedianWorst returns the best, median, and worst ranked models for an
// input PDF — the FineTune-B/M/W comparison of Figs. 13–14.
func (z *Zoo) BestMedianWorst(input stats.PDF) (best, median, worst *Ranked, err error) {
	ranked, err := z.Rank(input)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(ranked) == 0 {
		return nil, nil, nil, errors.New("fairms: no compatible models in zoo")
	}
	b, m, w := ranked[0], ranked[len(ranked)/2], ranked[len(ranked)-1]
	return &b, &m, &w, nil
}

// ---------------------------------------------------------------------------
// Persistence

// zooSnapshot is the gob-serializable form.
type zooSnapshot struct {
	Order   []string
	Records map[string]recordSnapshot
}

type recordSnapshot struct {
	State    *nn.StateDict
	TrainPDF []float64
	Meta     map[string]string
	AddedAt  time.Time
}

// Save writes the zoo to a file crash-safely via fsx.WriteAtomic: the
// snapshot is encoded into path+".tmp", fsynced, and atomically renamed
// over path (the same discipline as docstore.Store.Save), so a crash
// mid-write leaves the previous snapshot intact instead of a truncated
// file.
func (z *Zoo) Save(path string) error {
	z.mu.RLock()
	snap := zooSnapshot{Order: append([]string(nil), z.order...), Records: make(map[string]recordSnapshot)}
	for id, r := range z.records {
		snap.Records[id] = recordSnapshot{
			State: r.State, TrainPDF: r.TrainPDF, Meta: r.Meta, AddedAt: r.AddedAt,
		}
	}
	z.mu.RUnlock()

	if err := fsx.WriteAtomic(path, func(w io.Writer) error {
		return encodeGob(w, &snap)
	}); err != nil {
		return fmt.Errorf("fairms: save: %w", err)
	}
	return nil
}

// LoadZoo reads a zoo written by Save. Truncated or otherwise corrupt
// snapshots are rejected with an error — and since LoadZoo never writes,
// the file at path is left exactly as found for forensics or retry.
func LoadZoo(path string) (*Zoo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fairms: load: %w", err)
	}
	defer f.Close()
	var snap zooSnapshot
	if err := decodeGob(f, &snap); err != nil {
		return nil, fmt.Errorf("fairms: load decode: %w", err)
	}
	if len(snap.Order) != len(snap.Records) {
		return nil, fmt.Errorf("fairms: snapshot order lists %d records, map holds %d",
			len(snap.Order), len(snap.Records))
	}
	z := NewZoo()
	for _, id := range snap.Order {
		rs, ok := snap.Records[id]
		if !ok {
			return nil, fmt.Errorf("fairms: snapshot order references missing record %q", id)
		}
		if rs.State == nil {
			return nil, fmt.Errorf("fairms: snapshot record %q has no weights", id)
		}
		if err := stats.PDF(rs.TrainPDF).Validate(); err != nil {
			return nil, fmt.Errorf("fairms: snapshot record %q: %w", id, err)
		}
		//lint:ignore guardedby z is freshly built by NewZoo and not yet shared
		z.records[id] = &Record{
			ID: id, State: rs.State, TrainPDF: rs.TrainPDF,
			Meta: rs.Meta, AddedAt: rs.AddedAt,
		}
		//lint:ignore guardedby z is freshly built by NewZoo and not yet shared
		z.order = append(z.order, id)
	}
	return z, nil
}
